// Peak supply-current example: the proximity of input transitions sets not
// only the delay but also the peak Vdd current a gate draws — the quantity
// the inverter-collapse literature (the paper's reference [13]) was built
// for. This example sweeps the separation of two falling NAND3 inputs and
// reports the peak current and the delay side by side, then shows the same
// circuit expressed as a SPICE-flavored text deck driving the simulator
// directly.
//
//	go run ./examples/current
package main

import (
	"fmt"
	"log"
	"strings"

	prox "repro"
	"repro/internal/deck"
	"repro/internal/macromodel"
	"repro/internal/spice"
)

func main() {
	gate, err := prox.BuildGate(prox.NAND, 3, prox.DefaultProcess(), prox.DefaultGeometry())
	if err != nil {
		log.Fatal(err)
	}
	sim := gate.Sim()

	fmt.Println("NAND3: a falls 500ps, b falls 100ps, c at Vdd — sweep separation s:")
	fmt.Printf("%10s %14s %16s\n", "s (ps)", "delay (ps)", "peak I(Vdd) (mA)")
	for _, s := range []float64{-400, -200, 0, 150, 300, 500, 800} {
		res, err := sim.Run([]macromodel.PinStim{
			{Pin: 0, Dir: prox.Falling, TT: 500 * prox.Picosecond, Cross: 0},
			{Pin: 1, Dir: prox.Falling, TT: 100 * prox.Picosecond, Cross: s * prox.Picosecond},
		})
		if err != nil {
			log.Fatal(err)
		}
		d, err := res.DelayFrom(0)
		if err != nil {
			log.Fatal(err)
		}
		peak, _ := res.PeakSupplyCurrent()
		fmt.Printf("%10.0f %14.1f %16.3f\n", s, d/prox.Picosecond, peak*1e3)
	}

	// The same physics from a plain text deck (see internal/deck).
	const invDeck = `
* inverter driven by a slow ramp
Vdd vdd 0 5
Vin in  0 PWL(0 0 0.3n 0 1.3n 5)
M1  out in vdd vdd pmos W=8u L=1u
M2  out in 0   0   nmos W=8u L=1u
C1  out 0 100f
.model nmos nmos KP=60u VTO=0.8 LAMBDA=0.05 GAMMA=0.4 PHI=0.65
.model pmos pmos KP=25u VTO=-0.9 LAMBDA=0.05 GAMMA=0.5 PHI=0.65
.tran 4n
.end
`
	d, err := deck.Parse(strings.NewReader(invDeck))
	if err != nil {
		log.Fatal(err)
	}
	eng, err := spice.New(d.Circuit, spice.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	tr, err := eng.Transient(spice.TranSpec{Stop: d.TranStop, Breakpoints: d.Breakpoints})
	if err != nil {
		log.Fatal(err)
	}
	peak, at, err := tr.PeakSourceCurrent(d.Sources["Vdd"])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndeck-driven inverter: output settles at %.2f V; peak supply current %.3f mA at %.0f ps\n",
		tr.TraceName("out").Final(), peak*1e3, at/prox.Picosecond)
	fmt.Println("(the slow input ramp keeps both devices conducting — the crowbar current")
	fmt.Println(" spike lands mid-transition, exactly where proximity analysis looks)")
}
