// Glitch / inertial-delay example (Section 6 of the paper): opposite
// transitions on two NAND inputs in close temporal proximity produce a runt
// pulse at the output; the minimum separation for a complete transition is
// the gate's inertial delay.
//
//	go run ./examples/glitch
package main

import (
	"fmt"
	"log"

	prox "repro"
	"repro/internal/macromodel"
)

func main() {
	gate, err := prox.BuildGate(prox.NAND, 3, prox.DefaultProcess(), prox.DefaultGeometry())
	if err != nil {
		log.Fatal(err)
	}
	cfg := prox.FastCharacterization()
	cfg.Spec.SkipDual = true // only the glitch and pulse models are needed here
	cfg.Glitch = [][2]int{{0, 1}}
	cfg.GlitchGrid = macromodel.GlitchGridSpec{
		TausFall: []float64{100 * prox.Picosecond, 500 * prox.Picosecond, 2 * prox.Nanosecond},
		TausRise: []float64{100 * prox.Picosecond, 500 * prox.Picosecond, 2 * prox.Nanosecond},
		Seps:     sweep(-1.5*prox.Nanosecond, 1.5*prox.Nanosecond, 25),
	}
	cfg.Pulse = []int{0}
	cfg.PulseGrid = macromodel.PulseGridSpec{
		TausFirst:  []float64{100 * prox.Picosecond, 600 * prox.Picosecond},
		TausSecond: []float64{100 * prox.Picosecond, 600 * prox.Picosecond},
		Widths:     sweep(100*prox.Picosecond, 2.2*prox.Nanosecond, 12),
	}
	model, err := gate.Characterize(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Input a falls (τ=500ps) while input b rises; sweep their separation
	// and watch the output dip (simulated directly for ground truth).
	sim := gate.Sim()
	fmt.Printf("output minimum voltage vs. separation (a falls 500ps, b rises 500ps):\n")
	fmt.Printf("%10s %12s %s\n", "s (ps)", "Vmin (V)", "complete transition?")
	for _, s := range sweep(-400*prox.Picosecond, 1200*prox.Picosecond, 9) {
		v, err := sim.RunGlitch(0, 1, 500*prox.Picosecond, 500*prox.Picosecond, s)
		if err != nil {
			log.Fatal(err)
		}
		complete := "no (glitch filtered)"
		if v <= gate.Th.Vil {
			complete = "yes"
		}
		fmt.Printf("%10.0f %12.3f %s\n", s/prox.Picosecond, v, complete)
	}

	// The characterized inertial delay across transition-time corners.
	fmt.Printf("\ninertial delay (minimum separation for a complete output transition):\n")
	for _, tf := range []float64{100, 500, 2000} {
		for _, tr := range []float64{100, 500, 2000} {
			sep, ok, err := model.InertialDelay(0, 1, tf*prox.Picosecond, tr*prox.Picosecond)
			if err != nil {
				log.Fatal(err)
			}
			if !ok {
				fmt.Printf("  τfall=%4.0fps τrise=%4.0fps: never completes in range\n", tf, tr)
				continue
			}
			fmt.Printf("  τfall=%4.0fps τrise=%4.0fps: s_min = %4.0f ps\n", tf, tr, sep/prox.Picosecond)
		}
	}
	// Same-pin pulses: how narrow can a low pulse on input a be and still
	// flip the output?
	fmt.Printf("\nminimum transmittable LOW pulse on input a (output glitches toward Vdd):\n")
	for _, tf := range []float64{100, 600} {
		for _, tr := range []float64{100, 600} {
			w, ok, err := model.MinPulseWidth(0, tf*prox.Picosecond, tr*prox.Picosecond)
			if err != nil {
				log.Fatal(err)
			}
			if !ok {
				fmt.Printf("  edges %3.0f/%3.0fps: never completes in range\n", tf, tr)
				continue
			}
			fmt.Printf("  edges %3.0f/%3.0fps: width >= %3.0f ps\n", tf, tr, w/prox.Picosecond)
		}
	}

	fmt.Println("\nA pulse narrower than the inertial delay never produces a full output")
	fmt.Println("transition — the paper's Section 6 links this classic abstraction to the")
	fmt.Println("same proximity physics the delay model captures.")
}

// sweep returns n evenly spaced values over [lo, hi].
func sweep(lo, hi float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = lo + (hi-lo)*float64(i)/float64(n-1)
	}
	return out
}
