// STA example: time a small combinational circuit (a 2-bit ripple-carry
// adder's carry chain built from NAND2 gates and inverters) with the
// proximity-aware analyzer, and compare against the conventional
// single-switching-input analysis the paper criticizes.
//
// The interesting effect: near-simultaneous arrivals at a NAND's inputs make
// the conventional analysis optimistic on series stacks (the real pull-down
// is slower while both inputs are mid-transit) and pessimistic on parallel
// pull-ups (the real output starts moving with the first faller).
//
//	go run ./examples/sta
package main

import (
	"fmt"
	"log"

	prox "repro"
	"repro/internal/sta"
	"repro/internal/waveform"
)

func main() {
	// Characterize the two library cells (coarse grids for example speed).
	lib := sta.NewLibrary()
	for _, spec := range []struct {
		name   string
		kind   prox.GateKind
		inputs int
	}{
		{"nand2", prox.NAND, 2},
		{"inv", prox.INV, 1},
	} {
		gate, err := prox.BuildGate(spec.kind, spec.inputs, prox.DefaultProcess(), prox.DefaultGeometry())
		if err != nil {
			log.Fatal(err)
		}
		model, err := gate.Characterize(prox.FastCharacterization())
		if err != nil {
			log.Fatal(err)
		}
		lib.Add(spec.name, model.Calculator())
		fmt.Printf("characterized %s (thresholds %.2f/%.2f V)\n", spec.name, gate.Th.Vil, gate.Th.Vih)
	}

	// Build a NAND-only full adder carry: cout = NAND(NAND(a,b), NAND(cin, NAND-pair...)).
	// Here: g = NAND(a,b); p1 = NAND(a, b') is elided — we use the classic
	// 5-NAND carry structure on (a, b, cin).
	c := sta.NewCircuit(lib)
	a := c.Input("a")
	b := c.Input("b")
	cin := c.Input("cin")

	must := func(n *sta.Net, err error) *sta.Net {
		if err != nil {
			log.Fatal(err)
		}
		return n
	}
	nab := must(c.AddGate("g1", "nand2", "nab", a, b))       // NAND(a,b)
	nac := must(c.AddGate("g2", "nand2", "nac", a, cin))     // NAND(a,cin)
	nbc := must(c.AddGate("g3", "nand2", "nbc", b, cin))     // NAND(b,cin)
	t1 := must(c.AddGate("g4", "nand2", "t1", nab, nac))     // NAND of NANDs
	t1i := must(c.AddGate("g5", "inv", "t1i", t1))           // invert
	cout := must(c.AddGate("g6", "nand2", "cout", t1i, nbc)) // carry out
	c.MarkOutput(cout)

	// Stimulus: a, b, cin all rise within 60 ps of each other — exactly the
	// temporal proximity regime.
	events := []sta.PIEvent{
		{Net: a, Dir: waveform.Rising, Time: 0, TT: 300 * prox.Picosecond},
		{Net: b, Dir: waveform.Rising, Time: 30 * prox.Picosecond, TT: 200 * prox.Picosecond},
		{Net: cin, Dir: waveform.Rising, Time: 60 * prox.Picosecond, TT: 400 * prox.Picosecond},
	}

	for _, mode := range []sta.Mode{sta.Conventional, sta.Proximity} {
		res, err := c.Analyze(events, mode)
		if err != nil {
			log.Fatal(err)
		}
		arr, ok := res.Latest(cout)
		if !ok {
			log.Fatal("no arrival at cout")
		}
		fmt.Printf("\n%-12s: cout %s at %.0f ps (transition %.0f ps)\n",
			mode, arr.Dir, arr.Time/prox.Picosecond, arr.TT/prox.Picosecond)
		path, err := res.CriticalPath(cout, arr.Dir)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  critical path:")
		for _, step := range path {
			fmt.Printf(" %s@%.0fps", step.Net.Name, step.Arrival.Time/prox.Picosecond)
		}
		fmt.Println()
	}
	fmt.Println("\nThe proximity-aware arrival differs from the conventional one because")
	fmt.Println("near-simultaneous NAND input transitions are evaluated together instead")
	fmt.Println("of one at a time.")
}
