// Characterization flow example: extract a cell's VTC family, build its
// macromodels, inspect the paper's dimensionless single-input form
// (equations 3.7/3.8), save the model to JSON, and reload it for
// table-only evaluation (no simulator needed downstream).
//
//	go run ./examples/characterize
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	prox "repro"
	"repro/internal/vtc"
)

func main() {
	gate, err := prox.BuildGate(prox.NAND, 2, prox.DefaultProcess(), prox.DefaultGeometry())
	if err != nil {
		log.Fatal(err)
	}

	// The VTC family behind the threshold choice (Section 2).
	fmt.Println("VTC family of the NAND2:")
	for _, c := range gate.Family.Curves {
		fmt.Printf("  switching {%-3s}: Vil=%.3f Vih=%.3f Vm=%.3f\n",
			vtc.SubsetName(c.Subset), c.Vil, c.Vih, c.Vm)
	}
	fmt.Printf("chosen thresholds: Vil=%.3f (min), Vih=%.3f (max)\n\n", gate.Th.Vil, gate.Th.Vih)

	model, err := gate.Characterize(prox.FastCharacterization())
	if err != nil {
		log.Fatal(err)
	}

	// The paper's dimensionless single-input macromodel (eq. 3.7): delay/τ
	// as a function of the normalized load u = CL/(K·Vdd·τ).
	single := model.Data.Single(0, prox.Falling)
	u, dOverTau := single.NormalizedDelay()
	fmt.Println("dimensionless single-input delay model D(1) (pin a, falling):")
	fmt.Printf("%16s %12s\n", "u=CL/(K·Vdd·τ)", "Δ/τ")
	for i := range u {
		fmt.Printf("%16.4f %12.4f\n", u[i], dOverTau[i])
	}

	// Persist and reload: the JSON payload carries everything needed for
	// evaluation, so deployment needs no circuit simulation.
	dir, err := os.MkdirTemp("", "proxmodel")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "nand2.json")
	if err := model.Save(path); err != nil {
		log.Fatal(err)
	}
	info, _ := os.Stat(path)
	fmt.Printf("\nsaved model to %s (%d bytes)\n", path, info.Size())

	loaded, err := prox.LoadModel(path)
	if err != nil {
		log.Fatal(err)
	}
	res, err := loaded.Delay([]prox.Transition{
		{Pin: 0, Dir: prox.Falling, TT: 400 * prox.Picosecond, At: 0},
		{Pin: 1, Dir: prox.Falling, TT: 150 * prox.Picosecond, At: 80 * prox.Picosecond},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reloaded model evaluation: delay %.1f ps, output transition %.1f ps (dominant %c)\n",
		res.Delay/prox.Picosecond, res.OutTT/prox.Picosecond, 'a'+rune(res.Dominant))
}
