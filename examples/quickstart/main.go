// Quickstart: build the paper's 3-input NAND, characterize it, and compute
// proximity-aware delays for a few input scenarios.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	prox "repro"
)

func main() {
	// 1. Build the gate: transistor netlist + VTC thresholds (Section 2).
	gate, err := prox.BuildGate(prox.NAND, 3, prox.DefaultProcess(), prox.DefaultGeometry())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("NAND3 measurement thresholds: Vil=%.2fV Vih=%.2fV (Vdd=%.1fV)\n",
		gate.Th.Vil, gate.Th.Vih, gate.Th.Vdd)

	// 2. Characterize the macromodels with the built-in simulator. Fast
	// grids keep this example quick; DefaultCharacterization() is the
	// production setting.
	model, err := gate.Characterize(prox.FastCharacterization())
	if err != nil {
		log.Fatal(err)
	}

	// 3. Single-input reference: input a falling alone with τ = 500 ps.
	d1, tt1, err := model.SingleDelay(0, prox.Falling, 500*prox.Picosecond)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ninput a alone (fall 500ps): delay %.0f ps, output rise time %.0f ps\n",
		d1/prox.Picosecond, tt1/prox.Picosecond)

	// 4. Proximity: input b (fall 100 ps) arrives at several separations.
	fmt.Println("\nwith input b falling 100ps at separation s (Fig. 1-2a shape):")
	fmt.Printf("%10s %12s %12s %10s\n", "s (ps)", "delay (ps)", "rise (ps)", "dominant")
	for _, s := range []float64{-200, -100, 0, 100, 200, 400, 800} {
		res, err := model.Delay([]prox.Transition{
			{Pin: 0, Dir: prox.Falling, TT: 500 * prox.Picosecond, At: 0},
			{Pin: 1, Dir: prox.Falling, TT: 100 * prox.Picosecond, At: s * prox.Picosecond},
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%10.0f %12.1f %12.1f %10c\n",
			s, res.Delay/prox.Picosecond, res.OutTT/prox.Picosecond, 'a'+rune(res.Dominant))
	}

	// 5. All three inputs switching together: the case that needs the
	// Section-4 correction.
	res, err := model.Delay([]prox.Transition{
		{Pin: 0, Dir: prox.Falling, TT: 200 * prox.Picosecond, At: 0},
		{Pin: 1, Dir: prox.Falling, TT: 200 * prox.Picosecond, At: 0},
		{Pin: 2, Dir: prox.Falling, TT: 200 * prox.Picosecond, At: 0},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nall three falling together (200ps): delay %.0f ps (correction %.1f ps), %d inputs in window\n",
		res.Delay/prox.Picosecond, res.CorrectionApplied/prox.Picosecond, res.UsedDelay)
}
