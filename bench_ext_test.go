package prox

// Extension benchmarks: experiments beyond the paper's own evaluation that
// exercise its stated future work (technology portability, closed-form
// macromodels) and the downstream application (proximity-aware STA verified
// against composed transistor-level simulation).

import (
	"fmt"
	"testing"

	"repro/internal/cells"
	"repro/internal/chain"
	"repro/internal/core"
	"repro/internal/macromodel"
	"repro/internal/spice"
	"repro/internal/sta"
	"repro/internal/validate"
	"repro/internal/vtc"
	"repro/internal/waveform"
)

// BenchmarkExtCascadeSTA times proximity-aware STA on a two-stage cascade
// and prints its accuracy against the composed-circuit golden simulation.
func BenchmarkExtCascadeSTA(b *testing.B) {
	proc := cells.DefaultProcess()
	geom := cells.DefaultGeometry()
	wire := 40e-15

	mkCalc := func(load float64) (*core.Calculator, waveform.Thresholds) {
		g := geom
		g.CLoad = load
		cell := cells.MustNew(cells.Nand, 2, proc, g)
		fam, err := vtc.Extract(cell, spice.DefaultOptions(), 0.02)
		if err != nil {
			b.Fatal(err)
		}
		sim := macromodel.NewGateSim(cell, spice.DefaultOptions(), fam.Thresholds)
		model, err := macromodel.CharacterizeGate(sim, macromodel.CoarseCharSpec())
		if err != nil {
			b.Fatal(err)
		}
		calc := core.NewCalculator(model)
		if err := core.CalibrateCorrection(calc, sim); err != nil {
			b.Fatal(err)
		}
		return calc, fam.Thresholds
	}
	calc1, th := mkCalc(cells.InputCapacitance(proc, geom) + wire)
	calc2, _ := mkCalc(100e-15)
	lib := sta.NewLibrary()
	lib.Add("s1", calc1)
	lib.Add("s2", calc2)
	c := sta.NewCircuit(lib)
	a, bn, cin := c.Input("a"), c.Input("b"), c.Input("c")
	n1, err := c.AddGate("g1", "s1", "n1", a, bn)
	if err != nil {
		b.Fatal(err)
	}
	out, err := c.AddGate("g2", "s2", "out", n1, cin)
	if err != nil {
		b.Fatal(err)
	}
	events := []sta.PIEvent{
		{Net: a, Dir: waveform.Falling, Time: 0, TT: 400e-12},
		{Net: bn, Dir: waveform.Falling, Time: 30e-12, TT: 250e-12},
	}

	if _, loaded := printOnce.LoadOrStore("ext-cascade", true); !loaded {
		nl, err := chain.Build(proc, []chain.GateSpec{
			{Name: "g1", Kind: cells.Nand, Geom: geom, Inputs: []string{"a", "b"}, Output: "n1", ExtraLoad: wire},
			{Name: "g2", Kind: cells.Nand, Geom: geom, Inputs: []string{"n1", "c"}, Output: "out", ExtraLoad: 100e-15},
		})
		if err != nil {
			b.Fatal(err)
		}
		run, err := nl.Run([]chain.Stimulus{
			{Net: "a", Dir: waveform.Falling, TT: 400e-12, Cross: 0},
			{Net: "b", Dir: waveform.Falling, TT: 250e-12, Cross: 30e-12},
		}, th, spice.DefaultOptions(), 0)
		if err != nil {
			b.Fatal(err)
		}
		golden, err := run.CrossTime("out", waveform.Falling)
		if err != nil {
			b.Fatal(err)
		}
		pr, err := c.Analyze(events, sta.Proximity)
		if err != nil {
			b.Fatal(err)
		}
		cv, err := c.Analyze(events, sta.Conventional)
		if err != nil {
			b.Fatal(err)
		}
		pa, _ := pr.Arrival(out, waveform.Falling)
		ca, _ := cv.Arrival(out, waveform.Falling)
		fmt.Printf("ext-cascade: golden %.0fps | proximity STA %.0fps (%.1f%%) | conventional %.0fps (%.1f%%)\n",
			golden*1e12, pa.Time*1e12, (pa.Time-golden)/golden*100,
			ca.Time*1e12, (ca.Time-golden)/golden*100)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Analyze(events, sta.Proximity); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtTechnologyPortability characterizes the NAND3 on the CGaAs
// process and reports a mini validation — the paper's stated future target.
func BenchmarkExtTechnologyPortability(b *testing.B) {
	proc := cells.CGaAsProcess()
	geom := cells.Geometry{WN: 6e-6, WP: 6e-6, L: 0.8e-6, CLoad: 60e-15}
	cell := cells.MustNew(cells.Nand, 3, proc, geom)
	fam, err := vtc.Extract(cell, spice.DefaultOptions(), 0.005)
	if err != nil {
		b.Fatal(err)
	}
	sim := macromodel.NewGateSim(cell, spice.DefaultOptions(), fam.Thresholds)
	if _, loaded := printOnce.LoadOrStore("ext-cgaas", true); !loaded {
		model, err := macromodel.CharacterizeGate(sim, macromodel.CoarseCharSpec())
		if err != nil {
			b.Fatal(err)
		}
		calc := core.NewCalculator(model)
		if err := core.CalibrateCorrection(calc, sim); err != nil {
			b.Fatal(err)
		}
		spec := validate.DefaultSpec()
		spec.N = 12
		cmp, err := validate.Run(calc, sim, spec)
		if err != nil {
			b.Fatal(err)
		}
		ds := cmp.DelaySummary()
		fmt.Printf("ext-cgaas: %s Vdd=%.1fV — delay errors mean=%.2f%% std=%.2f%% [%.2f, %.2f]\n",
			proc.Name, proc.Vdd, ds.Mean, ds.StdDev, ds.Min, ds.Max)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := sim.RunSingle(0, waveform.Falling, 300e-12); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtNORValidation exercises the last-cause (series pull-up) path
// on a NOR3 and times its model evaluation.
func BenchmarkExtNORValidation(b *testing.B) {
	cell := cells.MustNew(cells.Nor, 3, cells.DefaultProcess(), cells.DefaultGeometry())
	fam, err := vtc.Extract(cell, spice.DefaultOptions(), 0.01)
	if err != nil {
		b.Fatal(err)
	}
	sim := macromodel.NewGateSim(cell, spice.DefaultOptions(), fam.Thresholds)
	model, err := macromodel.CharacterizeGate(sim, macromodel.CoarseCharSpec())
	if err != nil {
		b.Fatal(err)
	}
	calc := core.NewCalculator(model)
	if err := core.CalibrateCorrection(calc, sim); err != nil {
		b.Fatal(err)
	}
	if _, loaded := printOnce.LoadOrStore("ext-nor", true); !loaded {
		for _, dir := range []waveform.Direction{waveform.Rising, waveform.Falling} {
			spec := validate.DefaultSpec()
			spec.N = 10
			spec.Dir = dir
			cmp, err := validate.Run(calc, sim, spec)
			if err != nil {
				b.Fatal(err)
			}
			ds := cmp.DelaySummary()
			fmt.Printf("ext-nor: %v inputs (%v) delay errors mean=%.2f%% std=%.2f%% [%.2f, %.2f]\n",
				dir, model.Causation(dir), ds.Mean, ds.StdDev, ds.Min, ds.Max)
		}
	}
	events := []core.InputEvent{
		{Pin: 0, Dir: waveform.Falling, TT: 400e-12, Cross: 0},
		{Pin: 1, Dir: waveform.Falling, TT: 250e-12, Cross: -50e-12},
		{Pin: 2, Dir: waveform.Falling, TT: 700e-12, Cross: 40e-12},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := calc.Evaluate(events); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationPairPolicy compares the paper's per-reference economy
// (2n dual tables) against the full n(n-1) matrix on identical samples.
func BenchmarkAblationPairPolicy(b *testing.B) {
	r := getBenchRig(b)
	if _, loaded := printOnce.LoadOrStore("abl-pairs", true); !loaded {
		spec := macromodel.CoarseCharSpec()
		spec.Pairs = macromodel.FullMatrix
		matrixModel, err := macromodel.CharacterizeGate(r.sim, spec)
		if err != nil {
			b.Fatal(err)
		}
		matrixCalc := core.NewCalculator(matrixModel)
		if err := core.CalibrateCorrection(matrixCalc, r.sim); err != nil {
			b.Fatal(err)
		}
		vspec := validate.DefaultSpec()
		vspec.N = 15
		per, err := validate.Run(r.calc, r.sim, vspec)
		if err != nil {
			b.Fatal(err)
		}
		mat, err := validate.Run(matrixCalc, r.sim, vspec)
		if err != nil {
			b.Fatal(err)
		}
		fmt.Printf("ablation-pairs: rise-time err std — per-ref %.2f%% vs full matrix %.2f%% (delay stds %.2f%% vs %.2f%%)\n",
			per.TTSummary().StdDev, mat.TTSummary().StdDev,
			per.DelaySummary().StdDev, mat.DelaySummary().StdDev)
	}
	events := []core.InputEvent{
		{Pin: 2, Dir: waveform.Falling, TT: 700e-12, Cross: 0},
		{Pin: 0, Dir: waveform.Falling, TT: 400e-12, Cross: -100e-12},
		{Pin: 1, Dir: waveform.Falling, TT: 900e-12, Cross: 80e-12},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.calc.Evaluate(events); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationCubicTables compares multilinear and cubic table
// interpolation (accuracy line + eval cost).
func BenchmarkAblationCubicTables(b *testing.B) {
	r := getBenchRig(b)
	cubic := &core.Calculator{Model: r.model, CubicTables: true}
	if _, loaded := printOnce.LoadOrStore("abl-cubic", true); !loaded {
		vspec := validate.DefaultSpec()
		vspec.N = 15
		lin, err := validate.Run(r.calc, r.sim, vspec)
		if err != nil {
			b.Fatal(err)
		}
		// Same model and correction; only the interpolation differs.
		cub, err := validate.Run(cubic, r.sim, vspec)
		if err != nil {
			b.Fatal(err)
		}
		fmt.Printf("ablation-cubic: delay err std — linear %.2f%% vs cubic %.2f%%\n",
			lin.DelaySummary().StdDev, cub.DelaySummary().StdDev)
	}
	events := []core.InputEvent{
		{Pin: 0, Dir: waveform.Falling, TT: 400e-12, Cross: 0},
		{Pin: 1, Dir: waveform.Falling, TT: 250e-12, Cross: 60e-12},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cubic.Evaluate(events); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtAnalyticBackend compares eval speed of the fitted closed-form
// backend against the interpolated tables and reports its accuracy.
func BenchmarkExtAnalyticBackend(b *testing.B) {
	r := getBenchRig(b)
	am, err := macromodel.FitGate(r.model, 4)
	if err != nil {
		b.Fatal(err)
	}
	analytic := &core.Calculator{Model: r.model, Dual: &core.AnalyticBackend{Model: am}}
	if _, loaded := printOnce.LoadOrStore("ext-analytic", true); !loaded {
		spec := validate.DefaultSpec()
		spec.N = 15
		at, err := validate.Run(analytic, r.sim, spec)
		if err != nil {
			b.Fatal(err)
		}
		tb, err := validate.Run(r.calc, r.sim, spec)
		if err != nil {
			b.Fatal(err)
		}
		fmt.Printf("ext-analytic: delay errors — table mean=%.2f%% std=%.2f%%, analytic mean=%.2f%% std=%.2f%%\n",
			tb.DelaySummary().Mean, tb.DelaySummary().StdDev,
			at.DelaySummary().Mean, at.DelaySummary().StdDev)
	}
	events := []core.InputEvent{
		{Pin: 0, Dir: waveform.Falling, TT: 400e-12, Cross: 0},
		{Pin: 1, Dir: waveform.Falling, TT: 250e-12, Cross: 60e-12},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := analytic.Evaluate(events); err != nil {
			b.Fatal(err)
		}
	}
}
