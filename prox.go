// Package prox is the public facade of the temporal-proximity gate-delay
// library, a from-scratch reproduction of V. Chandramouli and K. A.
// Sakallah, "Modeling the Effects of Temporal Proximity of Input Transitions
// on Gate Propagation Delay and Transition Time" (Univ. of Michigan
// CSE-TR-262-95 / DAC 1996).
//
// The facade wires together the full flow:
//
//	proc := prox.DefaultProcess()
//	gate, err := prox.BuildGate(prox.NAND, 3, proc, prox.DefaultGeometry())   // transistor netlist + VTC thresholds
//	model, err := gate.Characterize(prox.DefaultCharacterization())           // macromodels via the built-in simulator
//	res, err := model.Delay([]prox.Transition{
//	    {Pin: 0, Dir: prox.Falling, TT: 500 * prox.Picosecond, At: 0},
//	    {Pin: 1, Dir: prox.Falling, TT: 100 * prox.Picosecond, At: 120 * prox.Picosecond},
//	})
//
// Everything underneath — the Newton/trapezoidal circuit simulator, the CMOS
// cell factory, VTC extraction, table interpolation, the ProximityDelay
// algorithm, the inverter-collapse baseline and a proximity-aware static
// timing analyzer — lives in internal/ packages; this package exposes the
// types a downstream user needs.
package prox

import (
	"fmt"

	"repro/internal/cells"
	"repro/internal/core"
	"repro/internal/macromodel"
	"repro/internal/spice"
	"repro/internal/vtc"
	"repro/internal/waveform"
)

// Convenient time units (seconds).
const (
	Picosecond = 1e-12
	Nanosecond = 1e-9
	Femtofarad = 1e-15
	Micron     = 1e-6
)

// Direction re-exports the transition sense.
type Direction = waveform.Direction

// Transition directions.
const (
	Rising  = waveform.Rising
	Falling = waveform.Falling
)

// GateKind selects the logic function of a gate.
type GateKind = cells.Kind

// Gate kinds.
const (
	INV  = cells.Inv
	NAND = cells.Nand
	NOR  = cells.Nor
)

// Process and Geometry re-export the technology description.
type (
	Process  = cells.Process
	Geometry = cells.Geometry
)

// DefaultProcess returns the repo's 5V CMOS process (see internal/cells).
func DefaultProcess() Process { return cells.DefaultProcess() }

// AlphaPowerProcess returns the alpha-power-law variant of DefaultProcess.
func AlphaPowerProcess() Process { return cells.AlphaPowerProcess() }

// DefaultGeometry returns the default transistor sizing and 100 fF load.
func DefaultGeometry() Geometry { return cells.DefaultGeometry() }

// Thresholds re-exports the measurement thresholds (Vil/Vih/Vdd).
type Thresholds = waveform.Thresholds

// Network re-exports the series-parallel pull-down expression used to build
// complex (AOI/OAI) gates with cells.NewComplex. Complex-gate proximity is
// evaluated per sensitized input pair — each pair carries its own causation
// (AND-like series completion vs OR-like parallel conduction) — so complex
// gates are characterized pair by pair with the internal APIs rather than
// through Gate.Characterize; see internal/core's AOI21 validation and
// `cmd/repro -ext aoi` for the full recipe.
type Network = cells.Network

// Gate is a constructed cell with extracted measurement thresholds, ready
// for characterization or direct simulation.
type Gate struct {
	cell *cells.Cell
	// Family is the extracted VTC family (Section 2 of the paper).
	Family *vtc.Family
	// Th are the selected thresholds: min Vil / max Vih over the family.
	Th Thresholds

	opt spice.Options
}

// BuildGate constructs a transistor-level cell and extracts its VTC family
// and measurement thresholds.
func BuildGate(kind GateKind, inputs int, proc Process, geom Geometry) (*Gate, error) {
	cell, err := cells.New(kind, inputs, proc, geom)
	if err != nil {
		return nil, err
	}
	opt := spice.DefaultOptions()
	fam, err := vtc.Extract(cell, opt, 0.01)
	if err != nil {
		return nil, fmt.Errorf("prox: VTC extraction: %w", err)
	}
	return &Gate{cell: cell, Family: fam, Th: fam.Thresholds, opt: opt}, nil
}

// Cell exposes the underlying transistor netlist for advanced use.
func (g *Gate) Cell() *cells.Cell { return g.cell }

// Sim returns a measurement harness over the gate (golden reference runs).
func (g *Gate) Sim() *macromodel.GateSim {
	return macromodel.NewGateSim(g.cell, g.opt, g.Th)
}

// Characterization configures model building.
type Characterization struct {
	Spec macromodel.CharSpec
	// Glitch lists opposite-direction pin pairs (fall, rise) to
	// characterize for the Section-6 inertial-delay model.
	Glitch [][2]int
	// GlitchGrid sizes the glitch sweep (zero value = default grid).
	GlitchGrid macromodel.GlitchGridSpec
	// Pulse lists pins to characterize for same-pin pulse filtering
	// (the minimum transmittable pulse width). The leading edge direction
	// is the transition away from the gate's non-controlling level.
	Pulse []int
	// PulseGrid sizes the pulse sweep (zero value = default grid).
	PulseGrid macromodel.PulseGridSpec
	// SkipCorrection skips the step-input correction calibration.
	SkipCorrection bool
}

// DefaultCharacterization uses the full default grids.
func DefaultCharacterization() Characterization {
	return Characterization{Spec: macromodel.DefaultCharSpec()}
}

// FastCharacterization uses coarse grids (tests, demos).
func FastCharacterization() Characterization {
	return Characterization{Spec: macromodel.CoarseCharSpec()}
}

// Model is a characterized gate: the proximity macromodels plus the
// calculator implementing Algorithm ProximityDelay.
type Model struct {
	// Gate is the characterized gate (nil for models loaded from disk).
	Gate *Gate
	// Data is the serializable characterization payload.
	Data *macromodel.GateModel
	calc *core.Calculator
}

// Characterize builds the gate's macromodels with the built-in simulator
// and calibrates the step-input correction.
func (g *Gate) Characterize(cfg Characterization) (*Model, error) {
	sim := g.Sim()
	data, err := macromodel.CharacterizeGate(sim, cfg.Spec)
	if err != nil {
		return nil, err
	}
	calc := core.NewCalculator(data)
	if !cfg.SkipCorrection && !cfg.Spec.SkipDual && g.cell.N() >= 2 {
		if err := core.CalibrateCorrection(calc, sim, cfg.Spec.Directions...); err != nil {
			return nil, err
		}
	}
	for _, pair := range cfg.Glitch {
		grid := cfg.GlitchGrid
		if len(grid.TausFall) == 0 {
			grid = macromodel.DefaultGlitchGrid()
		}
		gm, err := sim.CharacterizeGlitch(pair[0], pair[1], grid)
		if err != nil {
			return nil, err
		}
		data.Glitches = append(data.Glitches, gm)
	}
	for _, pin := range cfg.Pulse {
		grid := cfg.PulseGrid
		if len(grid.TausFirst) == 0 {
			grid = macromodel.DefaultPulseGrid()
		}
		// The physical pulse leads away from the non-controlling level:
		// falling for NAND/INV (parked at Vdd), rising for NOR.
		firstDir := waveform.Falling
		if g.cell.Kind == cells.Nor {
			firstDir = waveform.Rising
		}
		pm, err := sim.CharacterizePulse(pin, firstDir, grid)
		if err != nil {
			return nil, err
		}
		data.Pulses = append(data.Pulses, pm)
	}
	return &Model{Gate: g, Data: data, calc: calc}, nil
}

// MinPulseWidth returns the narrowest pulse on a pin that still produces a
// complete output transition (requires the pin to be listed in
// Characterization.Pulse).
func (m *Model) MinPulseWidth(pin int, ttFirst, ttSecond float64) (width float64, ok bool, err error) {
	for _, pm := range m.Data.Pulses {
		if pm.Pin == pin {
			w, ok := pm.MinWidth(ttFirst, ttSecond, m.Data.Th)
			return w, ok, nil
		}
	}
	return 0, false, fmt.Errorf("prox: no pulse model characterized for pin %d", pin)
}

// Calculator exposes the underlying core calculator (backend overrides,
// ablation flags).
func (m *Model) Calculator() *core.Calculator { return m.calc }

// Save writes the characterization payload as JSON.
func (m *Model) Save(path string) error { return m.Data.Save(path) }

// LoadModel restores a model saved with Save. The returned model evaluates
// from tables only (no gate attached).
func LoadModel(path string) (*Model, error) {
	data, err := macromodel.Load(path)
	if err != nil {
		return nil, err
	}
	return &Model{Data: data, calc: core.NewCalculator(data)}, nil
}

// Transition is one switching input presented to the model.
type Transition struct {
	Pin int
	Dir Direction
	// TT is the input transition time (full-swing ramp duration).
	TT float64
	// At is the absolute time the input crosses its measurement level.
	At float64
}

// Result re-exports the proximity evaluation outcome.
type Result = core.Result

// Delay evaluates the proximity delay and output transition time for a set
// of same-direction transitions (Algorithm ProximityDelay, Fig. 4-1).
func (m *Model) Delay(ts []Transition) (*Result, error) {
	evs := make([]core.InputEvent, len(ts))
	for i, t := range ts {
		evs[i] = core.InputEvent{Pin: t.Pin, Dir: t.Dir, TT: t.TT, Cross: t.At}
	}
	return m.calc.Evaluate(evs)
}

// SingleDelay returns the single-input delay and output transition time.
func (m *Model) SingleDelay(pin int, dir Direction, tt float64) (delay, outTT float64, err error) {
	return m.calc.SingleDelay(pin, dir, tt)
}

// InertialDelay returns the minimum output pulse width (trailing blocking
// cause measured from the leading unblocking one: fall − rise for
// NAND-style pairs, rise − fall for NOR-style) that still yields a complete
// output transition (Section 6). Requires the pair to have been listed in
// Characterization.Glitch.
func (m *Model) InertialDelay(fallPin, risePin int, ttFall, ttRise float64) (sep float64, ok bool, err error) {
	return core.InertialDelay(m.Data, fallPin, risePin, ttFall, ttRise)
}
