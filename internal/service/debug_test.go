package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// postTraced posts JSON with explicit request-id and traceparent headers,
// returning the status and response headers.
func postTraced(t *testing.T, url string, body any, reqID, traceparent string, out any) (int, http.Header) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if reqID != "" {
		req.Header.Set("X-Request-Id", reqID)
	}
	if traceparent != "" {
		req.Header.Set("traceparent", traceparent)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s answer: %v", url, err)
		}
	}
	return resp.StatusCode, resp.Header
}

// getStatus GETs a URL, decoding JSON into out when 200.
func getStatus(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

// debugRecord mirrors the /v1/debug/requests/{id} response shape.
type debugRecord struct {
	Request obs.WideEvent   `json:"request"`
	Trace   json.RawMessage `json:"trace"`
}

// TestDebugSlowRequestEndToEnd is the acceptance path: a traceparent-carrying
// analyze lands in the flight recorder, its trace is tail-sampled as slow,
// and /v1/debug/requests/{id} reproduces the phase breakdown plus a
// ValidateChromeTrace-clean artifact carrying the propagated trace id.
func TestDebugSlowRequestEndToEnd(t *testing.T) {
	// Nanosecond threshold: every request is in the "slow tail".
	_, ts := newTestServer(t, Config{TailThreshold: time.Nanosecond})
	up := uploadTestNetlist(t, ts.URL)

	const (
		callerTrace = "0af7651916cd43dd8448eb211c80319c"
		callerSpan  = "b7ad6b7169203331"
		reqID       = "debug-e2e-1"
	)
	var ar AnalyzeResponse
	code, hdr := postTraced(t, ts.URL+"/v1/analyze",
		AnalyzeRequest{Netlist: up.ID, Vector: testVector(0)},
		reqID, "00-"+callerTrace+"-"+callerSpan+"-01", &ar)
	if code != 200 {
		t.Fatalf("analyze status %d", code)
	}
	if got := hdr.Get("X-Request-Id"); got != reqID {
		t.Errorf("X-Request-Id = %q, want %q", got, reqID)
	}
	tc, ok := obs.ParseTraceparent(hdr.Get("traceparent"))
	if !ok {
		t.Fatalf("response traceparent %q does not parse", hdr.Get("traceparent"))
	}
	if tc.TraceID != callerTrace {
		t.Errorf("trace id not propagated: %q", tc.TraceID)
	}
	if tc.SpanID == callerSpan {
		t.Error("server echoed the caller's span id instead of minting its own")
	}
	if ar.Trace != nil {
		t.Error("untraced request got an inline trace (tail sampling must not leak into responses)")
	}

	var rec debugRecord
	if code := getStatus(t, ts.URL+"/v1/debug/requests/"+reqID, &rec); code != 200 {
		t.Fatalf("debug fetch status %d", code)
	}
	ev := rec.Request
	if ev.ID != reqID || ev.Endpoint != "analyze" || ev.Status != 200 {
		t.Fatalf("wide event identity: %+v", ev)
	}
	if ev.TraceID != callerTrace {
		t.Errorf("wide event trace id %q, want %q", ev.TraceID, callerTrace)
	}
	if ev.Netlist != up.ID || !ev.CacheHit {
		t.Errorf("netlist attribution: netlist=%q hit=%v", ev.Netlist, ev.CacheHit)
	}
	if ev.Wall <= 0 || ev.Vectors != 1 || ev.GatesEvaluated == 0 {
		t.Errorf("workload counters: wall=%v vectors=%d gates=%d", ev.Wall, ev.Vectors, ev.GatesEvaluated)
	}
	if ev.Phases[obs.PhaseEval] <= 0 {
		t.Errorf("phase breakdown missing eval time: %+v", ev.Phases)
	}
	if !ev.TraceRetained || ev.RetainReason != "slow" {
		t.Fatalf("tail sampling: retained=%v reason=%q, want slow retention", ev.TraceRetained, ev.RetainReason)
	}

	if len(rec.Trace) == 0 {
		t.Fatal("retained trace missing from debug response")
	}
	evs, err := obs.ValidateChromeTrace(rec.Trace)
	if err != nil {
		t.Fatalf("retained trace invalid: %v", err)
	}
	var marker, analyzeSpan bool
	for _, e := range evs {
		if e.Name == "trace_id" && e.Args["traceId"] == callerTrace {
			marker = true
		}
		if e.Name == "analyze" && e.Args["traceId"] == callerTrace {
			analyzeSpan = true
		}
	}
	if !marker {
		t.Error("trace artifact lacks the trace_id marker with the propagated id")
	}
	if !analyzeSpan {
		t.Error("engine analyze span does not carry the request's trace id")
	}

	// The list view finds it under the slow filter.
	var list struct {
		Total    int             `json:"total"`
		Count    int             `json:"count"`
		Requests []obs.WideEvent `json:"requests"`
	}
	if code := getStatus(t, ts.URL+"/v1/debug/requests?slowest=5", &list); code != 200 {
		t.Fatalf("debug list status %d", code)
	}
	found := false
	for _, ev := range list.Requests {
		if ev.ID == reqID {
			found = true
		}
	}
	if !found {
		t.Errorf("slowest=5 does not contain %s: %+v", reqID, list.Requests)
	}
}

// TestDebugRequestsFilters drives every documented filter plus the rejection
// of malformed ones.
func TestDebugRequestsFilters(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	up := uploadTestNetlist(t, ts.URL)

	for i := 0; i < 2; i++ {
		var ar AnalyzeResponse
		if code := post(t, ts.URL+"/v1/analyze", AnalyzeRequest{Netlist: up.ID, Vector: testVector(float64(i))}, &ar); code != 200 {
			t.Fatalf("analyze %d status %d", i, code)
		}
	}
	var er ErrorResponse
	if code := post(t, ts.URL+"/v1/analyze", AnalyzeRequest{Netlist: "nope", Vector: testVector(0)}, &er); code != 404 {
		t.Fatalf("missing-netlist status %d", code)
	}
	if code := post(t, ts.URL+"/v1/analyze", AnalyzeRequest{Netlist: up.ID, Mode: "bogus", Vector: testVector(0)}, &er); code != 400 {
		t.Fatalf("bad-mode status %d", code)
	}

	type list struct {
		Total    int             `json:"total"`
		Count    int             `json:"count"`
		Requests []obs.WideEvent `json:"requests"`
	}
	fetch := func(query string) list {
		t.Helper()
		var l list
		if code := getStatus(t, ts.URL+"/v1/debug/requests"+query, &l); code != 200 {
			t.Fatalf("debug list %q status %d", query, code)
		}
		return l
	}

	all := fetch("")
	if all.Total != 5 { // upload + 2 analyzes + 404 + 400
		t.Fatalf("ring holds %d events, want 5", all.Total)
	}
	if l := fetch("?status=4xx"); l.Count != 2 {
		t.Errorf("status=4xx count %d, want 2 (got %+v)", l.Count, l.Requests)
	} else {
		for _, ev := range l.Requests {
			if ev.Error == "" {
				t.Errorf("4xx wide event %s lacks the error body prefix", ev.ID)
			}
		}
	}
	if l := fetch("?status=404"); l.Count != 1 {
		t.Errorf("status=404 count %d, want 1", l.Count)
	}
	if l := fetch("?endpoint=analyze&status=2xx"); l.Count != 2 {
		t.Errorf("endpoint+status count %d, want 2", l.Count)
	}
	if l := fetch("?endpoint=netlists"); l.Count != 1 {
		t.Errorf("endpoint=netlists count %d, want 1", l.Count)
	}
	if l := fetch("?slowest=1"); l.Count != 1 {
		t.Errorf("slowest=1 count %d, want 1", l.Count)
	}
	if l := fetch("?limit=2"); l.Count != 2 || l.Total != 5 {
		t.Errorf("limit=2: count %d total %d", l.Count, l.Total)
	}
	future := time.Now().Add(time.Hour).UTC().Format(time.RFC3339)
	if l := fetch("?since=" + future); l.Count != 0 {
		t.Errorf("since=<future> count %d, want 0", l.Count)
	}
	if l := fetch("?since=1h"); l.Count != 5 {
		t.Errorf("since=1h count %d, want 5", l.Count)
	}

	for _, bad := range []string{"?status=9xx", "?status=banana", "?slowest=x", "?slowest=-1", "?since=bogus", "?limit=0"} {
		if code := getStatus(t, ts.URL+"/v1/debug/requests"+bad, nil); code != 400 {
			t.Errorf("filter %q status %d, want 400", bad, code)
		}
	}
	if code := getStatus(t, ts.URL+"/v1/debug/requests/no-such-id", nil); code != 404 {
		t.Errorf("unknown id status %d, want 404", code)
	}
}

// TestDebugDisabled: a negative FlightRecorderSize turns the subsystem off —
// debug endpoints 404, analysis still works, and explicit ?trace=1 still
// returns the inline trace (the pre-existing contract).
func TestDebugDisabled(t *testing.T) {
	_, ts := newTestServer(t, Config{FlightRecorderSize: -1})
	up := uploadTestNetlist(t, ts.URL)

	var ar AnalyzeResponse
	if code := post(t, ts.URL+"/v1/analyze", AnalyzeRequest{Netlist: up.ID, Vector: testVector(0)}, &ar); code != 200 {
		t.Fatalf("analyze status %d", code)
	}
	if ar.Trace != nil {
		t.Error("recorder-off analyze returned a trace")
	}
	if code := getStatus(t, ts.URL+"/v1/debug/requests", nil); code != 404 {
		t.Errorf("debug list status %d, want 404", code)
	}
	if code := getStatus(t, ts.URL+"/v1/debug/requests/x", nil); code != 404 {
		t.Errorf("debug get status %d, want 404", code)
	}
	// ?trace=1 still works: the per-request recorder is created on demand.
	if code := post(t, ts.URL+"/v1/analyze?trace=1", AnalyzeRequest{Netlist: up.ID, Vector: testVector(0)}, &ar); code != 200 {
		t.Fatalf("traced analyze status %d", code)
	}
	if ar.Trace == nil {
		t.Fatal("?trace=1 lost its inline trace with the recorder off")
	}
}

// TestFlaggedAndErrorRetention: ?trace=1 and 4xx responses are retained
// regardless of latency; a plain fast request is not.
func TestFlaggedAndErrorRetention(t *testing.T) {
	// Negative threshold: nothing is "slow", only flagged/errored retain.
	_, ts := newTestServer(t, Config{TailThreshold: -1})
	up := uploadTestNetlist(t, ts.URL)

	var ar AnalyzeResponse
	postTraced(t, ts.URL+"/v1/analyze?trace=1", AnalyzeRequest{Netlist: up.ID, Vector: testVector(0)}, "flagged-1", "", &ar)
	var er ErrorResponse
	postTraced(t, ts.URL+"/v1/analyze", AnalyzeRequest{Netlist: "nope", Vector: testVector(0)}, "errored-1", "", &er)
	postTraced(t, ts.URL+"/v1/analyze", AnalyzeRequest{Netlist: up.ID, Vector: testVector(0)}, "plain-1", "", &ar)

	check := func(id, wantReason string, wantTrace bool) {
		t.Helper()
		var rec debugRecord
		if code := getStatus(t, ts.URL+"/v1/debug/requests/"+id, &rec); code != 200 {
			t.Fatalf("fetch %s: status %d", id, code)
		}
		if rec.Request.RetainReason != wantReason {
			t.Errorf("%s retain reason %q, want %q", id, rec.Request.RetainReason, wantReason)
		}
		if (len(rec.Trace) > 0) != wantTrace {
			t.Errorf("%s trace present=%v, want %v", id, len(rec.Trace) > 0, wantTrace)
		}
	}
	check("flagged-1", "flagged", true)
	check("errored-1", "error", true)
	check("plain-1", "", false)
}

// TestServiceWideLog: the -wide-log sink receives one parseable JSON line
// per request.
func TestServiceWideLog(t *testing.T) {
	var mu sync.Mutex
	var buf bytes.Buffer
	lockedWriter := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	})
	_, ts := newTestServer(t, Config{WideLog: lockedWriter})
	up := uploadTestNetlist(t, ts.URL)
	var ar AnalyzeResponse
	if code := post(t, ts.URL+"/v1/analyze", AnalyzeRequest{Netlist: up.ID, Vector: testVector(0)}, &ar); code != 200 {
		t.Fatalf("analyze status %d", code)
	}

	// finishRequest runs after the response is written, so poll briefly.
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
		mu.Unlock()
		if len(lines) >= 2 && lines[0] != "" {
			byEndpoint := map[string]obs.WideEvent{}
			for i, line := range lines {
				var ev obs.WideEvent
				if err := json.Unmarshal([]byte(line), &ev); err != nil {
					t.Fatalf("wide log line %d: %v (%s)", i, err, line)
				}
				byEndpoint[ev.Endpoint] = ev
			}
			an, ok := byEndpoint["analyze"]
			if !ok {
				t.Fatalf("no analyze line in wide log: %v", lines)
			}
			if an.Status != 200 || an.GatesEvaluated == 0 {
				t.Fatalf("analyze wide event: %+v", an)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("wide log never got 2 lines: %q", buf.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

type writerFunc func([]byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

// TestHistogramSnapshotConsistent: with every observation the same duration,
// a consistent snapshot must report sum == count*d exactly — the invariant
// the pre-seqlock implementation violated (count could include observations
// whose sum had not landed).
func TestHistogramSnapshotConsistent(t *testing.T) {
	h := newHistogram(histBounds)
	const (
		d         = 3 * time.Millisecond
		writers   = 4
		perWriter = 20000
	)
	var wg sync.WaitGroup
	done := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				h.Observe(d)
			}
		}()
	}
	go func() { wg.Wait(); close(done) }()
	for running := true; running; {
		select {
		case <-done:
			running = false
		default:
			runtime.Gosched() // single-CPU friendly: let the writers in
		}
		counts, total, sum := h.snapshot()
		var bucketSum int64
		for _, c := range counts {
			bucketSum += c
		}
		if bucketSum != total {
			t.Fatalf("buckets sum to %d, reported total %d", bucketSum, total)
		}
		if sum != time.Duration(total)*d {
			t.Fatalf("inconsistent snapshot: count %d but sum %v (want %v)", total, sum, time.Duration(total)*d)
		}
	}
	if _, total, _ := h.snapshot(); total != writers*perWriter {
		t.Fatalf("final count %d, want %d", total, writers*perWriter)
	}
}

// TestHealthzFlightOccupancy: the black-box gauges surface on /healthz.
func TestHealthzFlightOccupancy(t *testing.T) {
	_, ts := newTestServer(t, Config{TailThreshold: time.Nanosecond})
	up := uploadTestNetlist(t, ts.URL)
	var ar AnalyzeResponse
	post(t, ts.URL+"/v1/analyze", AnalyzeRequest{Netlist: up.ID, Vector: testVector(0)}, &ar)

	var hz struct {
		FlightEvents   int `json:"flightEvents"`
		FlightCap      int `json:"flightCap"`
		RetainedTraces int `json:"retainedTraces"`
	}
	if code := getStatus(t, ts.URL+"/healthz", &hz); code != 200 {
		t.Fatalf("healthz status %d", code)
	}
	if hz.FlightEvents < 2 || hz.FlightCap != obs.DefaultFlightSize {
		t.Errorf("flight occupancy %d/%d", hz.FlightEvents, hz.FlightCap)
	}
	if hz.RetainedTraces < 1 {
		t.Errorf("retainedTraces = %d, want >= 1 (nanosecond threshold retains everything)", hz.RetainedTraces)
	}
}

// TestBuildInfoExposed: stad_build_info appears in both metrics formats.
func TestBuildInfoExposed(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/metrics?format=prom")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var prom bytes.Buffer
	prom.ReadFrom(resp.Body)
	if !strings.Contains(prom.String(), "stad_build_info{") || !strings.Contains(prom.String(), "goversion=") {
		t.Errorf("prom exposition lacks stad_build_info: %s", firstLines(prom.String(), 5))
	}

	var js struct {
		BuildInfo struct {
			Version    string `json:"version"`
			GoVersion  string `json:"goVersion"`
			GOMAXPROCS int    `json:"gomaxprocs"`
		} `json:"buildInfo"`
	}
	if code := getStatus(t, ts.URL+"/metrics", &js); code != 200 {
		t.Fatalf("metrics status %d", code)
	}
	if js.BuildInfo.GoVersion == "" || js.BuildInfo.GOMAXPROCS < 1 {
		t.Errorf("json buildInfo incomplete: %+v", js.BuildInfo)
	}
	bi := ReadBuildInfo()
	if bi.Version == "" || bi.GoVersion == "" {
		t.Errorf("ReadBuildInfo incomplete: %+v", bi)
	}
}

func firstLines(s string, n int) string {
	lines := strings.SplitN(s, "\n", n+1)
	if len(lines) > n {
		lines = lines[:n]
	}
	return strings.Join(lines, "\n")
}

// TestMCWideEvent: the Monte-Carlo endpoint attributes samples and admission
// wait to its wide event.
func TestMCWideEvent(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	up := uploadTestNetlist(t, ts.URL)
	var mr MCResponse
	code, _ := postTraced(t, ts.URL+"/v1/analyze:mc",
		MCRequest{Netlist: up.ID, Vector: testVector(0), Samples: 64, Seed: 1},
		"mc-req-1", "", &mr)
	if code != 200 {
		t.Fatalf("mc status %d", code)
	}
	var rec debugRecord
	if code := getStatus(t, ts.URL+"/v1/debug/requests/mc-req-1", &rec); code != 200 {
		t.Fatalf("debug fetch status %d", code)
	}
	if rec.Request.MCSamples != 64 {
		t.Errorf("wide event mcSamples = %d, want 64", rec.Request.MCSamples)
	}
	if rec.Request.Endpoint != "analyze:mc" || rec.Request.Netlist != up.ID {
		t.Errorf("mc wide event: %+v", rec.Request)
	}
}

var _ = fmt.Sprintf // keep fmt imported if assertions above change
