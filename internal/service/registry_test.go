package service

import (
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/macromodel"
)

// writeSynthLibrary fills dir with synthetic characterized models (the same
// JSON shape charz emits) and returns the directory.
func writeSynthLibrary(t *testing.T, dir string, cells ...string) {
	t.Helper()
	for _, cell := range cells {
		var m *macromodel.GateModel
		switch {
		case cell == "inv":
			m = macromodel.SynthModel("inv", 1)
		case strings.HasPrefix(cell, "nand"):
			n := int(cell[len(cell)-1] - '0')
			m = macromodel.SynthModel("nand", n)
		default:
			t.Fatalf("writeSynthLibrary: unknown cell %q", cell)
		}
		if err := m.Save(filepath.Join(dir, cell+".json")); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRegistryHitMiss(t *testing.T) {
	dir := t.TempDir()
	writeSynthLibrary(t, dir, "nand2", "nand3")
	r := NewRegistry(dir, 8)

	c1, err := r.Get("nand2")
	if err != nil {
		t.Fatal(err)
	}
	c2, err := r.Get("nand2")
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Fatal("second Get returned a different calculator (cache missed)")
	}
	if _, err := r.Get("nand3"); err != nil {
		t.Fatal(err)
	}
	st := r.Stats()
	if st.Misses != 2 || st.Hits != 1 || st.Resident != 2 {
		t.Fatalf("stats %+v, want 2 misses / 1 hit / 2 resident", st)
	}
}

// TestRegistrySingleflight holds the first load open while more requests
// for the same cell queue up: exactly one file load must happen, and every
// waiter must receive the same calculator.
func TestRegistrySingleflight(t *testing.T) {
	dir := t.TempDir()
	writeSynthLibrary(t, dir, "nand2")
	r := NewRegistry(dir, 8)

	const waiters = 16
	loading := make(chan struct{}) // closed when the loader is inside load()
	release := make(chan struct{}) // closed once the waiters have launched
	var hookOnce sync.Once         // the hook only gates the first load
	r.testLoadHook = func(string) {
		hookOnce.Do(func() {
			close(loading)
			<-release
		})
	}

	results := make(chan interface{}, waiters+1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c, err := r.Get("nand2")
		if err != nil {
			results <- err
			return
		}
		results <- c
	}()
	<-loading

	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := r.Get("nand2")
			if err != nil {
				results <- err
				return
			}
			results <- c
		}()
	}
	// Every waiter either blocks on the in-flight entry or, launching after
	// the release, hits the resident one — both count as cache hits.
	close(release)
	wg.Wait()
	close(results)

	var first interface{}
	n := 0
	for res := range results {
		if err, ok := res.(error); ok {
			t.Fatal(err)
		}
		if first == nil {
			first = res
		} else if res != first {
			t.Fatal("waiters got different calculators")
		}
		n++
	}
	if n != waiters+1 {
		t.Fatalf("collected %d results, want %d", n, waiters+1)
	}
	st := r.Stats()
	if st.Misses != 1 {
		t.Fatalf("%d loads for %d concurrent requests, want exactly 1 (stats %+v)", st.Misses, waiters+1, st)
	}
	if st.Hits != int64(waiters) {
		t.Fatalf("hits %d, want %d", st.Hits, waiters)
	}
}

func TestRegistryEviction(t *testing.T) {
	dir := t.TempDir()
	writeSynthLibrary(t, dir, "nand2", "nand3", "inv")
	r := NewRegistry(dir, 2)
	for _, cell := range []string{"nand2", "nand3", "inv"} {
		if _, err := r.Get(cell); err != nil {
			t.Fatal(err)
		}
	}
	st := r.Stats()
	if st.Resident != 2 || st.Evictions != 1 {
		t.Fatalf("stats %+v, want 2 resident / 1 eviction", st)
	}
	// nand2 was the LRU victim: getting it again is a fresh load.
	if _, err := r.Get("nand2"); err != nil {
		t.Fatal(err)
	}
	if st = r.Stats(); st.Misses != 4 {
		t.Fatalf("misses %d, want 4 (evicted cell reloaded)", st.Misses)
	}
}

func TestRegistryBadNamesAndMissingFiles(t *testing.T) {
	dir := t.TempDir()
	writeSynthLibrary(t, dir, "nand2")
	r := NewRegistry(dir, 4)
	for _, name := range []string{"", "../nand2", "a/b", "nand2.json", "x y"} {
		if _, err := r.Get(name); err == nil {
			t.Fatalf("name %q accepted", name)
		}
	}
	// A missing file errors but is not cached: creating it makes the next
	// Get succeed.
	if _, err := r.Get("inv"); err == nil {
		t.Fatal("missing cell loaded")
	}
	writeSynthLibrary(t, dir, "inv")
	if _, err := r.Get("inv"); err != nil {
		t.Fatalf("cell not retried after failed load: %v", err)
	}
	if st := r.Stats(); st.LoadErrors != 1 {
		t.Fatalf("loadErrors %d, want 1", st.LoadErrors)
	}
}
