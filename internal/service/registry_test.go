package service

import (
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/macromodel"
)

// writeSynthLibrary fills dir with synthetic characterized models (the same
// JSON shape charz emits) and returns the directory.
func writeSynthLibrary(t *testing.T, dir string, cells ...string) {
	t.Helper()
	for _, cell := range cells {
		var m *macromodel.GateModel
		switch {
		case cell == "inv":
			m = macromodel.SynthModel("inv", 1)
		case strings.HasPrefix(cell, "nand"):
			n := int(cell[len(cell)-1] - '0')
			m = macromodel.SynthModel("nand", n)
		default:
			t.Fatalf("writeSynthLibrary: unknown cell %q", cell)
		}
		if err := m.Save(filepath.Join(dir, cell+".json")); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRegistryHitMiss(t *testing.T) {
	dir := t.TempDir()
	writeSynthLibrary(t, dir, "nand2", "nand3")
	r := NewRegistry(dir, 8)

	c1, err := r.Get("nand2")
	if err != nil {
		t.Fatal(err)
	}
	c2, err := r.Get("nand2")
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Fatal("second Get returned a different calculator (cache missed)")
	}
	if _, err := r.Get("nand3"); err != nil {
		t.Fatal(err)
	}
	st := r.Stats()
	if st.Misses != 2 || st.Hits != 1 || st.Resident != 2 {
		t.Fatalf("stats %+v, want 2 misses / 1 hit / 2 resident", st)
	}
}

// TestRegistrySingleflight holds the first load open while more requests
// for the same cell queue up: exactly one file load must happen, and every
// waiter must receive the same calculator.
func TestRegistrySingleflight(t *testing.T) {
	dir := t.TempDir()
	writeSynthLibrary(t, dir, "nand2")
	r := NewRegistry(dir, 8)

	const waiters = 16
	loading := make(chan struct{}) // closed when the loader is inside load()
	release := make(chan struct{}) // closed once the waiters have launched
	var hookOnce sync.Once         // the hook only gates the first load
	r.testLoadHook = func(string) {
		hookOnce.Do(func() {
			close(loading)
			<-release
		})
	}

	results := make(chan interface{}, waiters+1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c, err := r.Get("nand2")
		if err != nil {
			results <- err
			return
		}
		results <- c
	}()
	<-loading

	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := r.Get("nand2")
			if err != nil {
				results <- err
				return
			}
			results <- c
		}()
	}
	// Every waiter either blocks on the in-flight entry or, launching after
	// the release, hits the resident one — both count as cache hits.
	close(release)
	wg.Wait()
	close(results)

	var first interface{}
	n := 0
	for res := range results {
		if err, ok := res.(error); ok {
			t.Fatal(err)
		}
		if first == nil {
			first = res
		} else if res != first {
			t.Fatal("waiters got different calculators")
		}
		n++
	}
	if n != waiters+1 {
		t.Fatalf("collected %d results, want %d", n, waiters+1)
	}
	st := r.Stats()
	if st.Misses != 1 {
		t.Fatalf("%d loads for %d concurrent requests, want exactly 1 (stats %+v)", st.Misses, waiters+1, st)
	}
	if st.Hits != int64(waiters) {
		t.Fatalf("hits %d, want %d", st.Hits, waiters)
	}
}

func TestRegistryEviction(t *testing.T) {
	dir := t.TempDir()
	writeSynthLibrary(t, dir, "nand2", "nand3", "inv")
	r := NewRegistry(dir, 2)
	for _, cell := range []string{"nand2", "nand3", "inv"} {
		if _, err := r.Get(cell); err != nil {
			t.Fatal(err)
		}
	}
	st := r.Stats()
	if st.Resident != 2 || st.Evictions != 1 {
		t.Fatalf("stats %+v, want 2 resident / 1 eviction", st)
	}
	// nand2 was the LRU victim: getting it again is a fresh load.
	if _, err := r.Get("nand2"); err != nil {
		t.Fatal(err)
	}
	if st = r.Stats(); st.Misses != 4 {
		t.Fatalf("misses %d, want 4 (evicted cell reloaded)", st.Misses)
	}
}

// TestRegistryEvictionSkipsInflight applies eviction pressure while a slow
// load is in flight: a capacity-1 registry is overflowed with other cells
// while the first cell's file read is held open and waiters are parked on
// it. The in-flight entry must survive the evictions — every waiter gets
// the one shared calculator, and the cell is loaded exactly once. Runs in
// the -race matrix: the loader, the waiters and the evicting Gets all touch
// the entry concurrently.
func TestRegistryEvictionSkipsInflight(t *testing.T) {
	dir := t.TempDir()
	writeSynthLibrary(t, dir, "nand2", "nand3", "inv")
	r := NewRegistry(dir, 1)

	loading := make(chan struct{}) // closed when the nand2 loader is inside load()
	release := make(chan struct{}) // closed once eviction pressure has been applied
	var hookOnce sync.Once
	r.testLoadHook = func(name string) {
		if name == "nand2" {
			hookOnce.Do(func() {
				close(loading)
				<-release
			})
		}
	}

	const waiters = 8
	results := make(chan interface{}, waiters+1)
	var wg sync.WaitGroup
	get := func() {
		defer wg.Done()
		c, err := r.Get("nand2")
		if err != nil {
			results <- err
			return
		}
		results <- c
	}
	wg.Add(1)
	go get()
	<-loading
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go get()
	}

	// While nand2's load is open, churn the single cache slot: nand3 fills
	// it, inv overflows it and forces an eviction pass. Neither may disturb
	// the in-flight nand2 entry.
	if _, err := r.Get("nand3"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Get("inv"); err != nil {
		t.Fatal(err)
	}

	close(release)
	wg.Wait()
	close(results)

	var first interface{}
	for res := range results {
		if err, ok := res.(error); ok {
			t.Fatal(err)
		}
		if first == nil {
			first = res
		} else if res != first {
			t.Fatal("waiters got different calculators — in-flight entry was dropped and reloaded")
		}
	}
	st := r.Stats()
	if st.Misses != 3 {
		t.Fatalf("misses %d, want 3 (one per cell; an evicted in-flight entry would reload nand2)", st.Misses)
	}
	if st.Hits != waiters {
		t.Fatalf("hits %d, want %d (every waiter coalesces onto the in-flight load)", st.Hits, waiters)
	}
	if st.Resident != 1 {
		t.Fatalf("resident %d, want 1 (capacity enforced after the slow load lands)", st.Resident)
	}
	if st.Evictions != 2 {
		t.Fatalf("evictions %d, want 2 (nand3 by inv, inv by nand2)", st.Evictions)
	}
}

func TestRegistryBadNamesAndMissingFiles(t *testing.T) {
	dir := t.TempDir()
	writeSynthLibrary(t, dir, "nand2")
	r := NewRegistry(dir, 4)
	for _, name := range []string{"", "../nand2", "a/b", "nand2.json", "x y"} {
		if _, err := r.Get(name); err == nil {
			t.Fatalf("name %q accepted", name)
		}
	}
	// A missing file errors but is not cached: creating it makes the next
	// Get succeed.
	if _, err := r.Get("inv"); err == nil {
		t.Fatal("missing cell loaded")
	}
	writeSynthLibrary(t, dir, "inv")
	if _, err := r.Get("inv"); err != nil {
		t.Fatalf("cell not retried after failed load: %v", err)
	}
	if st := r.Stats(); st.LoadErrors != 1 {
		t.Fatalf("loadErrors %d, want 1", st.LoadErrors)
	}
}
