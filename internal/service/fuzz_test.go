package service

import (
	"encoding/json"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/macromodel"
)

// fuzzPaths are the POST endpoints FuzzServerJSON exercises. The selector
// byte indexes this list so arbitrary fuzz bytes cannot form an invalid
// request URL (httptest.NewRequest panics on those).
var fuzzPaths = []string{"/v1/netlists", "/v1/analyze", "/v1/analyze:batch"}

// FuzzServerJSON throws arbitrary bodies at the service's POST endpoints
// through ServeHTTP directly (no network) and checks the boundary contract:
// no panic, only documented status codes, every answer a JSON document, and
// every non-200 answer an ErrorResponse with a non-empty message.
func FuzzServerJSON(f *testing.F) {
	dir := f.TempDir()
	for _, cell := range []struct {
		name string
		kind string
		n    int
	}{{"inv", "inv", 1}, {"nand2", "nand", 2}, {"nand3", "nand", 3}} {
		m := macromodel.SynthModel(cell.kind, cell.n)
		if err := m.Save(filepath.Join(dir, cell.name+".json")); err != nil {
			f.Fatal(err)
		}
	}
	srv := New(Config{Registry: NewRegistry(dir, 8), MaxNetlists: 32})

	// Preload one netlist so seed analyze bodies can reference a live ID.
	// Fuzzed uploads may later evict it (MaxNetlists), which only turns
	// those requests into 404s — still within the contract.
	upBody, _ := json.Marshal(UploadRequest{Netlist: testNetlist})
	upReq := httptest.NewRequest("POST", "/v1/netlists", strings.NewReader(string(upBody)))
	upRec := httptest.NewRecorder()
	srv.ServeHTTP(upRec, upReq)
	var up UploadResponse
	if err := json.Unmarshal(upRec.Body.Bytes(), &up); err != nil || upRec.Code != 200 {
		f.Fatalf("seed upload failed: status %d body %s", upRec.Code, upRec.Body)
	}

	seeds := []struct {
		sel  byte
		body string
	}{
		{0, `{"netlist":"input a\ngate g1 inv y a\noutput y"}`},
		{0, `{"netlist":""}`},
		{0, `{"netlist":"input a\ngate g1 inv y a\noutput y"}{"junk":1}`},
		{1, `{"netlist":"` + up.ID + `","vector":[{"net":"a","dir":"rise","ttPs":300,"timePs":0}]}`},
		{1, `{"netlist":"` + up.ID + `","mode":"conv","nets":"all","vector":[{"net":"a","dir":"fall","ttPs":200,"timePs":5}]}`},
		{1, `{"netlist":"` + up.ID + `","vector":[{"net":"a","dir":"rise","ttPs":NaN,"timePs":0}]}`},
		{1, `{"netlist":"` + up.ID + `","vector":[{"net":"a","dir":"rise","ttPs":-3,"timePs":0}]}`},
		{1, `{"netlist":"n999","vector":[{"net":"a","dir":"rise","ttPs":300,"timePs":0}]}`},
		{1, `{"netlist":"` + up.ID + `","nets":"al","vector":[{"net":"a","dir":"rise","ttPs":300,"timePs":0}]}`},
		{2, `{"netlist":"` + up.ID + `","vectors":[[{"net":"a","dir":"rise","ttPs":300,"timePs":0}]]}`},
		{2, `{"netlist":"` + up.ID + `","vectors":[]}`},
		{2, `not json at all`},
		{1, `[]`},
		{0, `{"unknown_field":true}`},
	}
	for _, s := range seeds {
		f.Add(s.sel, s.body)
	}

	f.Fuzz(func(t *testing.T, sel byte, body string) {
		if len(body) > 1<<16 {
			return
		}
		path := fuzzPaths[int(sel)%len(fuzzPaths)]
		req := httptest.NewRequest("POST", path, strings.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		switch rec.Code {
		case 200, 400, 404, 429, 504:
		default:
			t.Fatalf("%s answered undocumented status %d: %s", path, rec.Code, rec.Body)
		}
		var doc any
		if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
			t.Fatalf("%s answered non-JSON body %q", path, rec.Body)
		}
		if rec.Code != 200 {
			var er ErrorResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil || er.Error == "" {
				t.Fatalf("%s %d answer is not an ErrorResponse: %q", path, rec.Code, rec.Body)
			}
		}
	})
}
