package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"testing"
	"time"
)

// TestBenchGuardFlightRecorder guards the flight recorder's hot-path cost:
// the standard 4096-vector / 8-client batch workload must run within
// BENCH_GUARD_MARGIN (default 5%) of the recorder-off configuration.
// Opt-in because wall-clock assertions are meaningless on noisy CI workers:
//
//	BENCH_GUARD=1 go test ./internal/service -run TestBenchGuardFlightRecorder -v
//
// Both configurations run in the same process back to back, so machine speed
// cancels out of the ratio.
func TestBenchGuardFlightRecorder(t *testing.T) {
	if os.Getenv("BENCH_GUARD") == "" {
		t.Skip("set BENCH_GUARD=1 to enforce the flight-recorder overhead bound")
	}
	margin := 1.05
	if v := os.Getenv("BENCH_GUARD_MARGIN"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil || f < 1 {
			t.Fatalf("bad BENCH_GUARD_MARGIN %q", v)
		}
		margin = f
	}

	const (
		clients         = 8
		batchesPerRun   = 128
		vectorsPerBatch = 32 // 128*32 = 4096 vectors per measured run
		reps            = 24
	)

	// setup builds a server plus a timed workload pass: 8 clients draining
	// 128 pre-marshaled batch bodies.
	setup := func(flightSize int) func() time.Duration {
		_, ts := newTestServer(t, Config{
			MaxInflight: clients, FlightRecorderSize: flightSize,
		})
		up := uploadTestNetlist(t, ts.URL)
		bodies := make([][]byte, batchesPerRun)
		for b := range bodies {
			vecs := make([][]Event, vectorsPerBatch)
			for v := range vecs {
				vecs[v] = testVector(float64((b*vectorsPerBatch + v) % 97))
			}
			data, err := json.Marshal(BatchRequest{Netlist: up.ID, Mode: "prox", Vectors: vecs})
			if err != nil {
				t.Fatal(err)
			}
			bodies[b] = data
		}
		// A dedicated client with enough idle connections for every worker:
		// the default transport keeps only 2 per host, and the constant
		// redialing would drown the measurement in connection-setup noise.
		client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: clients}}
		t.Cleanup(client.CloseIdleConnections)
		return func() time.Duration {
			runtime.GC() // start every pass from the same heap state
			work := make(chan []byte, batchesPerRun)
			for _, b := range bodies {
				work <- b
			}
			close(work)
			start := time.Now()
			var wg sync.WaitGroup
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for body := range work {
						resp, err := client.Post(ts.URL+"/v1/analyze:batch", "application/json", bytes.NewReader(body))
						if err != nil {
							t.Error(err)
							return
						}
						if resp.StatusCode != http.StatusOK {
							t.Errorf("batch status %d", resp.StatusCode)
						}
						resp.Body.Close()
						if t.Failed() {
							return
						}
					}
				}()
			}
			wg.Wait()
			return time.Since(start)
		}
	}

	offPass := setup(-1) // recorder disabled: no ring, no per-request trace
	onPass := setup(0)   // recorder at the default size, default tail threshold
	for w := 0; w < 2; w++ {
		offPass() // warm-up both servers: page in netlists, grow pools
		onPass()
	}

	// Interleave the passes so machine-wide noise (a shared-CPU steal, a
	// background daemon) lands on both configurations instead of biasing
	// whichever happened to run second — and alternate which config goes
	// first within each pair, so drift across a pair (thermal throttling,
	// a GC left over from the first pass) doesn't systematically charge one
	// side. Each rep yields one pairwise ratio of adjacent-in-time passes;
	// the enforced statistic is the trimmed mean of those ratios (outer
	// quartiles dropped), which rejects the multi-second noise windows a
	// shared host inflicts on single passes, while a real regression shifts
	// every pair and survives the trimming.
	ratios := make([]float64, reps)
	var offTotal, onTotal time.Duration
	for r := 0; r < reps; r++ {
		var dOff, dOn time.Duration
		if r%2 == 0 {
			dOff = offPass()
			dOn = onPass()
		} else {
			dOn = onPass()
			dOff = offPass()
		}
		ratios[r] = dOn.Seconds() / dOff.Seconds()
		offTotal += dOff
		onTotal += dOn
	}
	if t.Failed() {
		t.Fatal("workload errored; overhead ratio is meaningless")
	}
	sort.Float64s(ratios)
	trimmed := ratios[reps/4 : reps-reps/4]
	ratio := 0.0
	for _, r := range trimmed {
		ratio += r
	}
	ratio /= float64(len(trimmed))
	vecsPerSec := func(total time.Duration) float64 {
		return float64(reps*batchesPerRun*vectorsPerBatch) / total.Seconds()
	}
	t.Logf("recorder off: %v total (%.0f vec/s), on: %v total (%.0f vec/s), trimmed-mean ratio %.3f (margin %.2f, %d interleaved reps)",
		offTotal, vecsPerSec(offTotal), onTotal, vecsPerSec(onTotal), ratio, margin, reps)
	// A guard can only enforce a margin it can resolve. When the spread of
	// pairwise ratios dwarfs the margin band, the host is in a noise storm
	// (shared-CPU steal windows lasting whole seconds) and any verdict would
	// be a coin flip — report that honestly instead of failing at random.
	if iqr := ratios[reps-reps/4-1] - ratios[reps/4]; iqr > 2*(margin-1) {
		t.Skipf("host too noisy to resolve a %.0f%% margin (pairwise ratio IQR %.1f%%); rerun on quieter hardware",
			(margin-1)*100, iqr*100)
	}
	if ratio > margin {
		t.Errorf("flight recorder costs %.1f%% throughput (> %.0f%% budget): on %v vs off %v over %d reps",
			(ratio-1)*100, (margin-1)*100, onTotal, offTotal, reps)
	}
}
