package service

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

// postRaw sends an unmarshaled body (for malformed-payload cases the typed
// helper can't express) and returns status plus the decoded error message.
func postRaw(t *testing.T, url, body string) (int, string) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	var er ErrorResponse
	json.Unmarshal(data, &er)
	return resp.StatusCode, er.Error
}

// TestNetsFieldValidated: an unrecognized nets value (e.g. the typo "al")
// must be a 400 naming the bad value — the old code silently treated
// anything but "all" as "outputs".
func TestNetsFieldValidated(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	up := uploadTestNetlist(t, ts.URL)
	for _, endpoint := range []struct {
		url  string
		body any
	}{
		{"/v1/analyze", AnalyzeRequest{Netlist: up.ID, Nets: "al", Vector: testVector(0)}},
		{"/v1/analyze:batch", BatchRequest{Netlist: up.ID, Nets: "al", Vectors: [][]Event{testVector(0)}}},
	} {
		var er ErrorResponse
		code := post(t, ts.URL+endpoint.url, endpoint.body, &er)
		if code != http.StatusBadRequest {
			t.Fatalf("%s with nets=al answered %d, want 400", endpoint.url, code)
		}
		if !strings.Contains(er.Error, `"al"`) {
			t.Fatalf("%s error %q does not name the bad nets value", endpoint.url, er.Error)
		}
	}
	// Valid spellings still work.
	for _, nets := range []string{"", "outputs", "all"} {
		var resp AnalyzeResponse
		if code := post(t, ts.URL+"/v1/analyze",
			AnalyzeRequest{Netlist: up.ID, Nets: nets, Vector: testVector(0)}, &resp); code != 200 {
			t.Fatalf("nets=%q answered %d, want 200", nets, code)
		}
	}
}

// TestTrailingGarbageRejected: the body must be exactly one JSON document;
// `{"netlist":"n1"}{"junk":1}` was previously half-read and accepted.
func TestTrailingGarbageRejected(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	up := uploadTestNetlist(t, ts.URL)
	bodies := []struct {
		name, url, body string
	}{
		{"second document", "/v1/analyze",
			`{"netlist":"` + up.ID + `","vector":[{"net":"a","dir":"rise","ttPs":300,"timePs":0}]}{"junk":1}`},
		{"trailing token", "/v1/analyze",
			`{"netlist":"` + up.ID + `","vector":[{"net":"a","dir":"rise","ttPs":300,"timePs":0}]} true`},
		{"upload second document", "/v1/netlists",
			`{"netlist":"input a\ngate g1 inv y a\noutput y"}{"junk":1}`},
	}
	for _, tc := range bodies {
		code, msg := postRaw(t, ts.URL+tc.url, tc.body)
		if code != http.StatusBadRequest {
			t.Fatalf("%s: status %d (%s), want 400", tc.name, code, msg)
		}
	}
	// JSON cannot carry NaN/Inf numbers; verify they are rejected at decode,
	// not smuggled into the engine.
	code, _ := postRaw(t, ts.URL+"/v1/analyze",
		`{"netlist":"`+up.ID+`","vector":[{"net":"a","dir":"rise","ttPs":NaN,"timePs":0}]}`)
	if code != http.StatusBadRequest {
		t.Fatalf("NaN literal answered %d, want 400", code)
	}
}

// TestEmptySlicesMarshalAsArrays: a netlist with no declared outputs must
// answer outputs:[] (not null), and its analyses arrivals:[] (not null).
func TestEmptySlicesMarshalAsArrays(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	data, _ := json.Marshal(UploadRequest{Netlist: "input a\ngate g1 inv y a"})
	resp, err := http.Post(ts.URL+"/v1/netlists", "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != 200 {
		t.Fatalf("upload status %d: %s", resp.StatusCode, raw)
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if string(doc["outputs"]) != "[]" {
		t.Fatalf("outputs marshaled as %s, want []", doc["outputs"])
	}
	if string(doc["inputs"]) == "null" {
		t.Fatalf("inputs marshaled as null")
	}
	var up UploadResponse
	json.Unmarshal(raw, &up)

	body, _ := json.Marshal(AnalyzeRequest{Netlist: up.ID,
		Vector: []Event{{Net: "a", Dir: "rise", TTPs: 300, TimePs: 0}}})
	ar, err := http.Post(ts.URL+"/v1/analyze", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer ar.Body.Close()
	araw, _ := io.ReadAll(ar.Body)
	if ar.StatusCode != 200 {
		t.Fatalf("analyze status %d: %s", ar.StatusCode, araw)
	}
	var adoc map[string]json.RawMessage
	if err := json.Unmarshal(araw, &adoc); err != nil {
		t.Fatal(err)
	}
	if string(adoc["arrivals"]) != "[]" {
		t.Fatalf("arrivals marshaled as %s, want []", adoc["arrivals"])
	}
}

// TestDuplicateOutputDeclarationsDeduped: `output y\noutput y` must not
// duplicate y's arrivals in the response.
func TestDuplicateOutputDeclarationsDeduped(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var up UploadResponse
	code := post(t, ts.URL+"/v1/netlists",
		UploadRequest{Netlist: "input a\ngate g1 inv y a\noutput y\noutput y y"}, &up)
	if code != 200 {
		t.Fatalf("upload status %d", code)
	}
	if len(up.Outputs) != 1 {
		t.Fatalf("outputs %v, want exactly [y]", up.Outputs)
	}
	var resp AnalyzeResponse
	if code := post(t, ts.URL+"/v1/analyze", AnalyzeRequest{Netlist: up.ID,
		Vector: []Event{{Net: "a", Dir: "rise", TTPs: 300, TimePs: 0}}}, &resp); code != 200 {
		t.Fatalf("analyze status %d", code)
	}
	seen := map[string]int{}
	for _, a := range resp.Arrivals {
		seen[a.Net+"/"+a.Dir]++
		if seen[a.Net+"/"+a.Dir] > 1 {
			t.Fatalf("arrival %s/%s reported %d times", a.Net, a.Dir, seen[a.Net+"/"+a.Dir])
		}
	}
	if len(resp.Arrivals) == 0 {
		t.Fatal("no arrivals — test is vacuous")
	}
}

// TestHTTPBoundaryContract mirrors the engine's rejection table at the HTTP
// boundary: every bad request is a 400/404 whose message names the
// offending field or net.
func TestHTTPBoundaryContract(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	up := uploadTestNetlist(t, ts.URL)
	cases := []struct {
		name     string
		url      string
		body     any
		want     int
		wantName string
	}{
		{"unknown netlist", "/v1/analyze",
			AnalyzeRequest{Netlist: "n999", Vector: testVector(0)}, 404, "n999"},
		{"unknown net", "/v1/analyze",
			AnalyzeRequest{Netlist: up.ID, Vector: []Event{{Net: "nope", Dir: "rise", TTPs: 100}}}, 400, "nope"},
		{"event on internal net", "/v1/analyze",
			AnalyzeRequest{Netlist: up.ID, Vector: []Event{{Net: "x", Dir: "rise", TTPs: 100}}}, 400, "x"},
		{"duplicate event", "/v1/analyze",
			AnalyzeRequest{Netlist: up.ID, Vector: []Event{
				{Net: "a", Dir: "rise", TTPs: 100, TimePs: 0},
				{Net: "a", Dir: "rise", TTPs: 120, TimePs: 5}}}, 400, "a"},
		{"zero tt", "/v1/analyze",
			AnalyzeRequest{Netlist: up.ID, Vector: []Event{{Net: "a", Dir: "rise", TTPs: 0}}}, 400, "a"},
		{"negative tt", "/v1/analyze",
			AnalyzeRequest{Netlist: up.ID, Vector: []Event{{Net: "a", Dir: "rise", TTPs: -3}}}, 400, "a"},
		{"bad dir", "/v1/analyze",
			AnalyzeRequest{Netlist: up.ID, Vector: []Event{{Net: "a", Dir: "sideways", TTPs: 100}}}, 400, "sideways"},
		{"bad mode", "/v1/analyze",
			AnalyzeRequest{Netlist: up.ID, Mode: "psychic", Vector: testVector(0)}, 400, "psychic"},
		{"bad nets", "/v1/analyze",
			AnalyzeRequest{Netlist: up.ID, Nets: "everything", Vector: testVector(0)}, 400, "everything"},
		{"empty vector", "/v1/analyze", AnalyzeRequest{Netlist: up.ID}, 400, "vector"},
		{"batch empty vector set", "/v1/analyze:batch", BatchRequest{Netlist: up.ID}, 400, "vector"},
		{"batch bad vector indexed", "/v1/analyze:batch",
			BatchRequest{Netlist: up.ID, Vectors: [][]Event{
				testVector(0), {{Net: "a", Dir: "rise", TTPs: -1}}}}, 400, "vector 1"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var er ErrorResponse
			if code := post(t, ts.URL+tc.url, tc.body, &er); code != tc.want {
				t.Fatalf("status %d (%s), want %d", code, er.Error, tc.want)
			}
			if !strings.Contains(er.Error, tc.wantName) {
				t.Fatalf("error %q does not name %q", er.Error, tc.wantName)
			}
		})
	}
}
