// The debug query surface over the flight recorder: request finalization
// (wide-event assembly + the tail-sampling decision), the bounded store of
// retained Chrome trace artifacts, and the two read-only endpoints that make
// the black box queryable after an anomaly.
package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/obs"
)

// retainedTrace is one tail-sampled Chrome trace artifact plus why it was
// kept.
type retainedTrace struct {
	data   json.RawMessage
	reason string
}

// traceStore holds the retained trace artifacts, FIFO-bounded: the black box
// keeps the recent anomalies, not an archive. A nil *traceStore (flight
// recorder disabled) no-ops, mirroring the obs nil-recorder convention.
type traceStore struct {
	mu     sync.Mutex
	max    int
	traces map[string]retainedTrace
	order  []string // retention order; front = oldest = next eviction victim
}

func newTraceStore(max int) *traceStore {
	if max <= 0 {
		max = 32
	}
	return &traceStore{max: max, traces: make(map[string]retainedTrace, max)}
}

// put retains a trace under a request id, evicting the oldest beyond the
// bound. A re-sent request id overwrites in place without a second order slot.
func (ts *traceStore) put(id string, data []byte, reason string) {
	if ts == nil {
		return
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if _, exists := ts.traces[id]; !exists {
		ts.order = append(ts.order, id)
		for len(ts.order) > ts.max {
			delete(ts.traces, ts.order[0])
			ts.order = ts.order[1:]
		}
	}
	ts.traces[id] = retainedTrace{data: data, reason: reason}
}

// get returns the retained trace for a request id, if still held.
func (ts *traceStore) get(id string) (retainedTrace, bool) {
	if ts == nil {
		return retainedTrace{}, false
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	rt, ok := ts.traces[id]
	return rt, ok
}

// len reports how many traces are currently retained.
func (ts *traceStore) len() int {
	if ts == nil {
		return 0
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return len(ts.traces)
}

// finishRequest assembles the request's wide event from everything the
// handler chain learned, makes the tail-sampling retention decision, records
// the event into the ring and the wide log, and returns it for the request
// log line. Called by instrument after the handler returns.
func (s *Server) finishRequest(st *reqState, name string, r *http.Request,
	sw *statusWriter, status int, start time.Time, d time.Duration) obs.WideEvent {
	if st == nil {
		return obs.WideEvent{}
	}
	ev := st.wide
	ev.ID = st.id
	ev.TraceID = st.tc.TraceID
	ev.Endpoint = name
	ev.Method = r.Method
	ev.Path = r.URL.Path
	ev.Status = status
	ev.Start = start
	ev.Wall = d
	ev.AdmissionWait = st.admissionWait
	if status >= 400 && len(sw.errBody) > 0 {
		ev.Error = string(sw.errBody)
	}
	ev.TraceDropped = st.tr.Dropped()

	// The tail-sampling decision point: spans were recorded for every request;
	// the artifact is persisted only when the request turned out to matter —
	// explicitly flagged (?trace=1), errored, or in the slow tail. Everything
	// else lets its recorder go to the garbage collector.
	if st.tr != nil && s.traces != nil {
		reason := ""
		switch {
		case st.forceTrace:
			reason = "flagged"
		case status >= 400:
			reason = "error"
		case s.cfg.TailThreshold > 0 && d >= s.cfg.TailThreshold:
			reason = "slow"
		}
		if reason != "" {
			var buf bytes.Buffer
			if err := st.tr.WriteJSON(&buf); err == nil {
				s.traces.put(st.id, buf.Bytes(), reason)
				ev.TraceRetained = true
				ev.RetainReason = reason
			} else {
				s.log.Warn("trace serialization failed", "id", st.id, "err", err)
			}
		}
	}

	// The recorder is done (serialized above if retained): hand its storage
	// back to the pool so steady-state tail sampling allocates nothing per
	// request. The ?trace=1 inline copy was serialized into the response
	// before the handler returned, so it is already safe too.
	st.tr.Release()

	ev.Seq = s.flight.Record(ev)
	if err := s.wideLog.Write(&ev); err != nil {
		// The wide log is best-effort durability; a full disk must not fail
		// the request that already succeeded.
		s.log.Warn("wide log write failed", "id", st.id, "err", err)
	}
	return ev
}

// debugRequestsResponse answers GET /v1/debug/requests.
type debugRequestsResponse struct {
	// Total is how many events the ring holds before filtering.
	Total int `json:"total"`
	// Count is how many survived the filters (= len(Requests)).
	Count    int             `json:"count"`
	Requests []obs.WideEvent `json:"requests"`
}

// statusFilter matches a wide event's status against a class selector.
type statusFilter func(int) bool

// parseStatusFilter accepts a class ("2xx", "4xx", "5xx") or an exact code.
// "4xx" deliberately excludes 499: client-closed-request is its own class
// (the nginx convention the service adopted), and an operator hunting real
// client errors does not want it mixed in.
func parseStatusFilter(v string) (statusFilter, error) {
	switch v {
	case "2xx":
		return func(s int) bool { return s >= 200 && s < 300 }, nil
	case "4xx":
		return func(s int) bool { return s >= 400 && s < 499 }, nil
	case "5xx":
		return func(s int) bool { return s >= 500 && s < 600 }, nil
	}
	code, err := strconv.Atoi(v)
	if err != nil || code < 100 || code > 599 {
		return nil, fmt.Errorf("bad status filter %q (want 2xx, 4xx, 5xx, or an exact code like 499)", v)
	}
	return func(s int) bool { return s == code }, nil
}

// parseSince accepts a relative duration ("5m" = within the last five
// minutes) or an absolute RFC 3339 timestamp.
func parseSince(v string, now time.Time) (time.Time, error) {
	if d, err := time.ParseDuration(v); err == nil {
		if d < 0 {
			return time.Time{}, fmt.Errorf("bad since duration %q (must be non-negative)", v)
		}
		return now.Add(-d), nil
	}
	if t, err := time.Parse(time.RFC3339, v); err == nil {
		return t, nil
	}
	return time.Time{}, fmt.Errorf("bad since %q (want a duration like 5m or an RFC 3339 timestamp)", v)
}

// handleDebugRequests serves the flight-recorder ring as JSON, newest first,
// under the documented filters: endpoint=, status=, since=, slowest=N,
// limit=N. Filters compose; slowest re-orders by latency after filtering.
func (s *Server) handleDebugRequests(w http.ResponseWriter, r *http.Request) {
	if s.flight == nil {
		writeError(w, http.StatusNotFound, "flight recorder disabled (FlightRecorderSize < 0)")
		return
	}
	q := r.URL.Query()

	var matchStatus statusFilter
	if v := q.Get("status"); v != "" {
		f, err := parseStatusFilter(v)
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		matchStatus = f
	}
	var since time.Time
	if v := q.Get("since"); v != "" {
		t, err := parseSince(v, time.Now())
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		since = t
	}
	slowest := 0
	if v := q.Get("slowest"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			writeError(w, http.StatusBadRequest, "bad slowest %q (want a positive integer)", v)
			return
		}
		slowest = n
	}
	limit := 100
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			writeError(w, http.StatusBadRequest, "bad limit %q (want a positive integer)", v)
			return
		}
		limit = n
	}
	endpoint := q.Get("endpoint")

	all := s.flight.Snapshot() // newest first
	out := make([]obs.WideEvent, 0, len(all))
	for _, ev := range all {
		if endpoint != "" && ev.Endpoint != endpoint {
			continue
		}
		if matchStatus != nil && !matchStatus(ev.Status) {
			continue
		}
		if !since.IsZero() && ev.Start.Before(since) {
			continue
		}
		out = append(out, ev)
	}
	if slowest > 0 {
		sort.SliceStable(out, func(i, j int) bool { return out[i].Wall > out[j].Wall })
		if len(out) > slowest {
			out = out[:slowest]
		}
	}
	if len(out) > limit {
		out = out[:limit]
	}
	writeJSON(w, debugRequestsResponse{Total: len(all), Count: len(out), Requests: out})
}

// debugRequestResponse answers GET /v1/debug/requests/{id}: the full wide
// event plus the retained Chrome trace document when tail sampling kept one.
type debugRequestResponse struct {
	Request obs.WideEvent `json:"request"`
	// Trace is the retained Chrome trace_event document (load it in
	// chrome://tracing or Perfetto), present only when the request was
	// retained; RetainReason on the wide event says why.
	Trace json.RawMessage `json:"trace,omitempty"`
}

// handleDebugRequest serves one request's complete flight record by id.
func (s *Server) handleDebugRequest(w http.ResponseWriter, r *http.Request) {
	if s.flight == nil {
		writeError(w, http.StatusNotFound, "flight recorder disabled (FlightRecorderSize < 0)")
		return
	}
	id := r.PathValue("id")
	ev, ok := s.flight.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no flight record for request %q (rotated out of the ring or never seen)", id)
		return
	}
	resp := debugRequestResponse{Request: ev}
	if rt, ok := s.traces.get(id); ok {
		resp.Trace = rt.data
	}
	writeJSON(w, resp)
}
