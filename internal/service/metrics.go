package service

import (
	"expvar"
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/stats"
)

// BuildInfo identifies the running binary: the module version (or VCS
// revision when built from a checkout) and the Go toolchain, plus the
// GOMAXPROCS the process runs with. Served as stad_build_info on /metrics
// and logged once at startup, so every metrics scrape and every log file
// says exactly which build produced it.
type BuildInfo struct {
	Version    string `json:"version"`
	GoVersion  string `json:"goVersion"`
	GOMAXPROCS int    `json:"gomaxprocs"`
}

// readBuildIdentity resolves the static part of BuildInfo once.
var readBuildIdentity = sync.OnceValues(func() (version, goVersion string) {
	version, goVersion = "unknown", runtime.Version()
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return version, goVersion
	}
	if bi.GoVersion != "" {
		goVersion = bi.GoVersion
	}
	if v := bi.Main.Version; v != "" && v != "(devel)" {
		version = v
		return version, goVersion
	}
	// A checkout build: identify by VCS revision (short) + dirty marker.
	var rev, dirty string
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			if s.Value == "true" {
				dirty = "-dirty"
			}
		}
	}
	if rev != "" {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		version = rev + dirty
	}
	return version, goVersion
})

// ReadBuildInfo returns the binary's identity (GOMAXPROCS read live — it can
// be lowered at runtime).
func ReadBuildInfo() BuildInfo {
	v, gv := readBuildIdentity()
	return BuildInfo{Version: v, GoVersion: gv, GOMAXPROCS: runtime.GOMAXPROCS(0)}
}

// histBounds are the latency histogram bucket upper bounds. Doubling from
// 250µs covers sub-millisecond cache-hit analyzes up to multi-second batch
// fan-outs; everything slower lands in the overflow bucket.
var histBounds = []time.Duration{
	250 * time.Microsecond,
	500 * time.Microsecond,
	1 * time.Millisecond,
	2 * time.Millisecond,
	4 * time.Millisecond,
	8 * time.Millisecond,
	16 * time.Millisecond,
	32 * time.Millisecond,
	64 * time.Millisecond,
	128 * time.Millisecond,
	256 * time.Millisecond,
	512 * time.Millisecond,
	1024 * time.Millisecond,
	2048 * time.Millisecond,
}

// phaseBounds bucket engine-phase durations, which sit two to three orders
// of magnitude below request latencies: a memoized analyze spends single
// microseconds scheduling and tens of microseconds evaluating.
var phaseBounds = []time.Duration{
	1 * time.Microsecond,
	2 * time.Microsecond,
	4 * time.Microsecond,
	8 * time.Microsecond,
	16 * time.Microsecond,
	32 * time.Microsecond,
	64 * time.Microsecond,
	128 * time.Microsecond,
	256 * time.Microsecond,
	512 * time.Microsecond,
	1 * time.Millisecond,
	2 * time.Millisecond,
	4 * time.Millisecond,
	8 * time.Millisecond,
	16 * time.Millisecond,
	32 * time.Millisecond,
}

// Histogram is a fixed-bucket duration histogram implementing expvar.Var:
// String renders the JSON that /metrics embeds directly.
//
// Observe never blocks and writers never wait on each other: an observation
// is three atomic adds (bucket, sum, n) bracketed by a write-intent counter
// pair. Readers use that pair as a seqlock — snapshot retries until it
// observed a window with no observation in flight — so a rendered count and
// its sum always belong to the same set of observations.
type Histogram struct {
	bounds []time.Duration
	// boundsNs mirrors bounds as float64 nanoseconds, the coordinate system
	// stats.BucketQuantile interpolates in.
	boundsNs []float64
	counts   []atomic.Int64 // len(bounds)+1; last bucket is overflow
	sum      atomic.Int64   // nanoseconds
	n        atomic.Int64
	// writeBegin/writeEnd bracket every observation (begin incremented
	// before the adds, end after). A reader that sees begin == end across
	// its loads saw no observation mid-flight: writers that would tear the
	// snapshot had either fully landed or not yet begun.
	writeBegin atomic.Int64
	writeEnd   atomic.Int64
}

func newHistogram(bounds []time.Duration) *Histogram {
	ns := make([]float64, len(bounds))
	for i, b := range bounds {
		ns[i] = float64(b)
	}
	return &Histogram{bounds: bounds, boundsNs: ns, counts: make([]atomic.Int64, len(bounds)+1)}
}

// Observe records one duration. Safe for any number of concurrent callers;
// never blocks (the seqlock counters are plain atomic adds — only readers
// retry).
func (h *Histogram) Observe(d time.Duration) {
	i := 0
	for i < len(h.bounds) && d > h.bounds[i] {
		i++
	}
	h.writeBegin.Add(1)
	h.counts[i].Add(1)
	h.sum.Add(int64(d))
	h.n.Add(1)
	h.writeEnd.Add(1)
}

// snapshotAttempts bounds the seqlock retry loop: under a sustained write
// storm the reader eventually takes its best read rather than spinning
// forever (buckets still sum to the reported total by construction; only the
// mean can be off by the observations in flight during that final read).
const snapshotAttempts = 64

// snapshot takes a consistent read of the histogram: counts, their total,
// and the matching sum. The seqlock discipline (read end, load everything,
// check begin caught up to that end) guarantees no observation was mid-
// flight across the loads, so the sum belongs to exactly the counted
// observations. total is the sum of the loaded buckets, never the n counter,
// so buckets always add up to the reported count.
func (h *Histogram) snapshot() (counts []int64, total int64, sum time.Duration) {
	counts = make([]int64, len(h.counts))
	var s int64
	for attempt := 0; attempt < snapshotAttempts; attempt++ {
		end := h.writeEnd.Load()
		total = 0
		for i := range h.counts {
			counts[i] = h.counts[i].Load()
			total += counts[i]
		}
		s = h.sum.Load()
		if h.writeBegin.Load() == end {
			break
		}
	}
	return counts, total, time.Duration(s)
}

// quantile estimates the q-quantile (0 < q < 1) through the shared
// stats.BucketQuantile interpolator: linear inside the bucket holding the
// target rank, ranks landing in the edge-less overflow bucket clamped to
// the last finite bound (a deliberate under-estimate rather than a
// fabricated tail), zero for an empty histogram.
func (h *Histogram) quantile(counts []int64, q float64) time.Duration {
	return time.Duration(stats.BucketQuantile(q, h.boundsNs, counts))
}

// String renders
// {"count":N,"meanMs":M,"p50Ms":…,"p95Ms":…,"p99Ms":…,"buckets":{"<=1ms":k,…}}
// with empty buckets elided, so the histogram drops straight into /metrics
// JSON. An empty histogram renders explicitly with zeroes — no division by
// a zero count ever happens.
func (h *Histogram) String() string {
	counts, total, sum := h.snapshot()
	if total == 0 {
		return `{"count":0,"meanMs":0,"p50Ms":0,"p95Ms":0,"p99Ms":0,"buckets":{}}`
	}
	ms := func(d time.Duration) float64 { return d.Seconds() * 1e3 }
	var b strings.Builder
	fmt.Fprintf(&b, `{"count":%d,"meanMs":%.3f,"p50Ms":%.3f,"p95Ms":%.3f,"p99Ms":%.3f,"buckets":{`,
		total, ms(sum)/float64(total),
		ms(h.quantile(counts, 0.50)),
		ms(h.quantile(counts, 0.95)),
		ms(h.quantile(counts, 0.99)))
	first := true
	for i, c := range counts {
		if c == 0 {
			continue
		}
		if !first {
			b.WriteByte(',')
		}
		first = false
		if i < len(h.bounds) {
			fmt.Fprintf(&b, `"<=%s":%d`, h.bounds[i], c)
		} else {
			fmt.Fprintf(&b, `">%s":%d`, h.bounds[len(h.bounds)-1], c)
		}
	}
	b.WriteString("}}")
	return b.String()
}

// writeProm renders the histogram in Prometheus text exposition format
// (cumulative le buckets, seconds). labels is either empty or a single
// `key="value"` pair applied to every sample of this histogram.
func (h *Histogram) writeProm(b *strings.Builder, name, labels string) {
	counts, total, sum := h.snapshot()
	var cum int64
	for i, c := range counts {
		cum += c
		le := "+Inf"
		if i < len(h.bounds) {
			le = formatSeconds(h.bounds[i])
		}
		if labels == "" {
			fmt.Fprintf(b, "%s_bucket{le=%q} %d\n", name, le, cum)
		} else {
			fmt.Fprintf(b, "%s_bucket{%s,le=%q} %d\n", name, labels, le, cum)
		}
	}
	suffix := ""
	if labels != "" {
		suffix = "{" + labels + "}"
	}
	fmt.Fprintf(b, "%s_sum%s %s\n", name, suffix, formatSeconds(sum))
	fmt.Fprintf(b, "%s_count%s %d\n", name, suffix, total)
}

func formatSeconds(d time.Duration) string {
	return strconv.FormatFloat(d.Seconds(), 'g', -1, 64)
}

// Metrics aggregates the server's counters on expvar primitives. The vars
// are intentionally NOT published to the global expvar registry — multiple
// servers (tests, bench harnesses) would collide on names; /metrics serves
// them per instance instead.
type Metrics struct {
	Requests  expvar.Map // per-endpoint request counts
	Status2xx expvar.Int
	Status4xx expvar.Int
	Status5xx expvar.Int
	// Canceled counts 499s — the client went away mid-request. Kept out of
	// the 4xx class: a disconnect is neither a malformed request nor a
	// server timeout, and folding it into either poisons alerting.
	Canceled expvar.Int

	// Workload counters, fed from sta.Result.Stats.
	Vectors        expvar.Int // stimulus vectors analyzed
	GatesEvaluated expvar.Int
	ProximityEvals expvar.Int
	SingleArcEvals expvar.Int

	// Monte-Carlo workload: runs and total samples drawn. Samples are the
	// capacity-relevant number (one 16k-sample run costs what thousands of
	// plain analyzes do), so both are first-class.
	MCRuns    expvar.Int
	MCSamples expvar.Int

	// Pulse-filtering workload: opposite-edge pairs Section-6 filtering
	// absorbed outright, pairs that survived with a degraded transition
	// time, and pairs the library carries no glitch model for (propagated
	// untouched — the model-coverage blind spot an operator should watch).
	// Zero unless pulseFilter requests arrive.
	PulsesFiltered expvar.Int
	PulsesDegraded expvar.Int
	PulsesUnjudged expvar.Int

	// phases aggregates the engine's per-phase wall timings across every
	// analysis this server ran, one histogram per obs.Phase.
	phases [obs.NumPhases]*Histogram

	mu      sync.Mutex
	latency map[string]*Histogram // per endpoint
}

func newMetrics() *Metrics {
	m := &Metrics{latency: map[string]*Histogram{}}
	m.Requests.Init()
	for _, p := range obs.Phases() {
		m.phases[p] = newHistogram(phaseBounds)
	}
	return m
}

// Latency returns (creating on first use) the named endpoint's histogram.
func (m *Metrics) Latency(endpoint string) *Histogram {
	m.mu.Lock()
	defer m.mu.Unlock()
	h := m.latency[endpoint]
	if h == nil {
		h = newHistogram(histBounds)
		m.latency[endpoint] = h
	}
	return h
}

// Phase returns the named engine phase's histogram (for tests).
func (m *Metrics) Phase(p obs.Phase) *Histogram { return m.phases[p] }

// observe records one finished request.
func (m *Metrics) observe(endpoint string, status int, d time.Duration) {
	m.Requests.Add(endpoint, 1)
	switch {
	case status >= 500:
		m.Status5xx.Add(1)
	case status == StatusClientClosedRequest:
		m.Canceled.Add(1)
	case status >= 400:
		m.Status4xx.Add(1)
	case status >= 200 && status < 300:
		// Implicit 200s (Write with no WriteHeader) land here too — the
		// statusWriter records them on first Write, so the class counters
		// always sum to the request count.
		m.Status2xx.Add(1)
	}
	m.Latency(endpoint).Observe(d)
}

// addStats folds one analysis result's counters into the workload totals.
func (m *Metrics) addStats(gates, prox, single int) {
	m.Vectors.Add(1)
	m.GatesEvaluated.Add(int64(gates))
	m.ProximityEvals.Add(int64(prox))
	m.SingleArcEvals.Add(int64(single))
}

// addPulses folds one analysis's Section-6 pulse-filtering counters in.
func (m *Metrics) addPulses(filtered, degraded, unjudged int) {
	m.PulsesFiltered.Add(int64(filtered))
	m.PulsesDegraded.Add(int64(degraded))
	m.PulsesUnjudged.Add(int64(unjudged))
}

// observePhases folds one analysis's phase timings in. The per-call phases
// (schedule, seed, eval, commit) are recorded unconditionally; the
// amortized ones (compile, levelize, cone build) only when this call
// actually paid them — a memoized hit reports them as zero, and recording
// those would drown the one real build in a flood of zero observations.
func (m *Metrics) observePhases(pt obs.PhaseTimes) {
	for _, p := range obs.Phases() {
		d := pt[p]
		switch p {
		case obs.PhaseCompile, obs.PhaseLevelize, obs.PhaseCones, obs.PhaseDelta, obs.PhaseMC:
			if d <= 0 {
				continue
			}
		}
		m.phases[p].Observe(d)
	}
}

// observeNonzeroPhases folds in an analysis that populates only the phases
// it actually ran — delta re-analysis (cone build if first sparse use, plus
// the delta walk) and Monte-Carlo (compile plus the mc bucket). Everything
// is conditional here, because recording the schedule/seed/eval/commit
// zeroes these runs never execute at the top level would drown the
// full-analysis histograms.
func (m *Metrics) observeNonzeroPhases(pt obs.PhaseTimes) {
	for _, p := range obs.Phases() {
		if d := pt[p]; d > 0 {
			m.phases[p].Observe(d)
		}
	}
}

// writeJSON renders the full metrics document. Every embedded value is an
// expvar.Var String() (already valid JSON), composed by hand so no
// marshaling intermediate is needed.
func (m *Metrics) writeJSON(b *strings.Builder, reg RegistryStats, netlists int) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	bi := ReadBuildInfo()
	b.WriteString("{\n")
	fmt.Fprintf(b, ` "buildInfo": {"version":%q,"goVersion":%q,"gomaxprocs":%d},`+"\n",
		bi.Version, bi.GoVersion, bi.GOMAXPROCS)
	fmt.Fprintf(b, ` "requests": %s,`+"\n", m.Requests.String())
	fmt.Fprintf(b, ` "status2xx": %s, "status4xx": %s, "status5xx": %s, "statusCanceled": %s,`+"\n",
		m.Status2xx.String(), m.Status4xx.String(), m.Status5xx.String(), m.Canceled.String())
	fmt.Fprintf(b, ` "vectors": %s, "gatesEvaluated": %s, "proximityEvals": %s, "singleArcEvals": %s,`+"\n",
		m.Vectors.String(), m.GatesEvaluated.String(), m.ProximityEvals.String(), m.SingleArcEvals.String())
	fmt.Fprintf(b, ` "mcRuns": %s, "mcSamples": %s,`+"\n", m.MCRuns.String(), m.MCSamples.String())
	fmt.Fprintf(b, ` "pulsesFiltered": %s, "pulsesDegraded": %s, "pulsesUnjudged": %s,`+"\n",
		m.PulsesFiltered.String(), m.PulsesDegraded.String(), m.PulsesUnjudged.String())
	fmt.Fprintf(b, ` "modelCache": {"hits":%d,"misses":%d,"evictions":%d,"loadErrors":%d,"resident":%d},`+"\n",
		reg.Hits, reg.Misses, reg.Evictions, reg.LoadErrors, reg.Resident)
	fmt.Fprintf(b, ` "netlistsResident": %d,`+"\n", netlists)
	fmt.Fprintf(b, ` "goroutines": %d, "heapAllocBytes": %d,`+"\n", runtime.NumGoroutine(), ms.HeapAlloc)
	b.WriteString(` "phases": {`)
	for i, p := range obs.Phases() {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(b, "\n  %q: %s", p.String(), m.phases[p].String())
	}
	b.WriteString("\n },\n")
	b.WriteString(` "latencies": {`)
	m.mu.Lock()
	names := make([]string, 0, len(m.latency))
	for name := range m.latency {
		names = append(names, name)
	}
	m.mu.Unlock()
	sort.Strings(names)
	for i, name := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(b, "\n  %q: %s", name, m.Latency(name).String())
	}
	b.WriteString("\n }\n}\n")
}

// writeProm renders the same counters in Prometheus text exposition format
// (version 0.0.4), for /metrics?format=prom. Metric names carry the stad_
// prefix; durations are seconds per Prometheus convention.
func (m *Metrics) writeProm(b *strings.Builder, reg RegistryStats, netlists int) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)

	bi := ReadBuildInfo()
	b.WriteString("# HELP stad_build_info Build identity; value is always 1, the labels carry the information.\n# TYPE stad_build_info gauge\n")
	fmt.Fprintf(b, "stad_build_info{version=%q,goversion=%q,gomaxprocs=\"%d\"} 1\n",
		bi.Version, bi.GoVersion, bi.GOMAXPROCS)

	b.WriteString("# HELP stad_requests_total Requests served, by endpoint.\n# TYPE stad_requests_total counter\n")
	type kv struct {
		k string
		v string
	}
	var reqs []kv
	m.Requests.Do(func(e expvar.KeyValue) { reqs = append(reqs, kv{e.Key, e.Value.String()}) })
	sort.Slice(reqs, func(i, j int) bool { return reqs[i].k < reqs[j].k })
	for _, e := range reqs {
		fmt.Fprintf(b, "stad_requests_total{endpoint=%q} %s\n", e.k, e.v)
	}

	b.WriteString("# HELP stad_responses_total Responses sent, by status class.\n# TYPE stad_responses_total counter\n")
	fmt.Fprintf(b, "stad_responses_total{class=\"2xx\"} %d\n", m.Status2xx.Value())
	fmt.Fprintf(b, "stad_responses_total{class=\"4xx\"} %d\n", m.Status4xx.Value())
	fmt.Fprintf(b, "stad_responses_total{class=\"5xx\"} %d\n", m.Status5xx.Value())
	fmt.Fprintf(b, "stad_responses_total{class=\"canceled\"} %d\n", m.Canceled.Value())

	for _, c := range []struct {
		name, help string
		val        int64
	}{
		{"stad_vectors_total", "Stimulus vectors analyzed.", m.Vectors.Value()},
		{"stad_gates_evaluated_total", "Gate evaluations performed.", m.GatesEvaluated.Value()},
		{"stad_proximity_evals_total", "Multi-input proximity evaluations.", m.ProximityEvals.Value()},
		{"stad_single_arc_evals_total", "Single-arc evaluations.", m.SingleArcEvals.Value()},
		{"stad_mc_runs_total", "Monte-Carlo analyses run.", m.MCRuns.Value()},
		{"stad_mc_samples_total", "Monte-Carlo samples drawn.", m.MCSamples.Value()},
		{"stad_pulses_filtered_total", "Runt pulses absorbed by Section-6 filtering.", m.PulsesFiltered.Value()},
		{"stad_pulses_degraded_total", "Runt pulses propagated with degraded transition time.", m.PulsesDegraded.Value()},
		{"stad_pulses_unjudged_total", "Runt pulses with no glitch model to judge them (propagated untouched).", m.PulsesUnjudged.Value()},
		{"stad_model_cache_hits_total", "Model registry cache hits.", reg.Hits},
		{"stad_model_cache_misses_total", "Model registry cache misses.", reg.Misses},
		{"stad_model_cache_evictions_total", "Model registry evictions.", reg.Evictions},
		{"stad_model_cache_load_errors_total", "Model registry load failures.", reg.LoadErrors},
	} {
		fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", c.name, c.help, c.name, c.name, c.val)
	}

	for _, g := range []struct {
		name, help string
		val        int64
	}{
		{"stad_model_cache_resident", "Macromodels resident in the registry cache.", int64(reg.Resident)},
		{"stad_netlists_resident", "Compiled netlists resident.", int64(netlists)},
		{"stad_goroutines", "Live goroutines.", int64(runtime.NumGoroutine())},
		{"stad_heap_alloc_bytes", "Heap bytes in use.", int64(ms.HeapAlloc)},
	} {
		fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", g.name, g.help, g.name, g.name, g.val)
	}

	b.WriteString("# HELP stad_request_duration_seconds Request latency, by endpoint.\n# TYPE stad_request_duration_seconds histogram\n")
	m.mu.Lock()
	names := make([]string, 0, len(m.latency))
	for name := range m.latency {
		names = append(names, name)
	}
	m.mu.Unlock()
	sort.Strings(names)
	for _, name := range names {
		m.Latency(name).writeProm(b, "stad_request_duration_seconds", fmt.Sprintf("endpoint=%q", name))
	}

	b.WriteString("# HELP stad_phase_duration_seconds Engine phase wall time per analysis, by phase.\n# TYPE stad_phase_duration_seconds histogram\n")
	for _, p := range obs.Phases() {
		m.phases[p].writeProm(b, "stad_phase_duration_seconds", fmt.Sprintf("phase=%q", p.String()))
	}
}
