package service

import (
	"expvar"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// histBounds are the latency histogram bucket upper bounds. Doubling from
// 250µs covers sub-millisecond cache-hit analyzes up to multi-second batch
// fan-outs; everything slower lands in the overflow bucket.
var histBounds = []time.Duration{
	250 * time.Microsecond,
	500 * time.Microsecond,
	1 * time.Millisecond,
	2 * time.Millisecond,
	4 * time.Millisecond,
	8 * time.Millisecond,
	16 * time.Millisecond,
	32 * time.Millisecond,
	64 * time.Millisecond,
	128 * time.Millisecond,
	256 * time.Millisecond,
	512 * time.Millisecond,
	1024 * time.Millisecond,
	2048 * time.Millisecond,
}

// Histogram is a fixed-bucket latency histogram implementing expvar.Var:
// String renders the JSON that /metrics embeds directly.
type Histogram struct {
	mu     sync.Mutex
	counts []int64 // len(histBounds)+1; last bucket is overflow
	sum    time.Duration
	n      int64
}

// Observe records one request duration.
func (h *Histogram) Observe(d time.Duration) {
	i := 0
	for i < len(histBounds) && d > histBounds[i] {
		i++
	}
	h.mu.Lock()
	if h.counts == nil {
		h.counts = make([]int64, len(histBounds)+1)
	}
	h.counts[i]++
	h.sum += d
	h.n++
	h.mu.Unlock()
}

// String renders {"count":N,"meanMs":M,"buckets":{"<=1ms":k,...}} with
// empty buckets elided, so the histogram drops straight into /metrics JSON.
func (h *Histogram) String() string {
	h.mu.Lock()
	counts := append([]int64(nil), h.counts...)
	sum, n := h.sum, h.n
	h.mu.Unlock()
	var b strings.Builder
	mean := 0.0
	if n > 0 {
		mean = (sum.Seconds() * 1e3) / float64(n)
	}
	fmt.Fprintf(&b, `{"count":%d,"meanMs":%.3f,"buckets":{`, n, mean)
	first := true
	for i, c := range counts {
		if c == 0 {
			continue
		}
		if !first {
			b.WriteByte(',')
		}
		first = false
		if i < len(histBounds) {
			fmt.Fprintf(&b, `"<=%s":%d`, histBounds[i], c)
		} else {
			fmt.Fprintf(&b, `">%s":%d`, histBounds[len(histBounds)-1], c)
		}
	}
	b.WriteString("}}")
	return b.String()
}

// Metrics aggregates the server's counters on expvar primitives. The vars
// are intentionally NOT published to the global expvar registry — multiple
// servers (tests, bench harnesses) would collide on names; /metrics serves
// them per instance instead.
type Metrics struct {
	Requests  expvar.Map // per-endpoint request counts
	Status2xx expvar.Int
	Status4xx expvar.Int
	Status5xx expvar.Int

	// Workload counters, fed from sta.Result.Stats.
	Vectors        expvar.Int // stimulus vectors analyzed
	GatesEvaluated expvar.Int
	ProximityEvals expvar.Int
	SingleArcEvals expvar.Int

	mu      sync.Mutex
	latency map[string]*Histogram // per endpoint
}

func newMetrics() *Metrics {
	m := &Metrics{latency: map[string]*Histogram{}}
	m.Requests.Init()
	return m
}

// Latency returns (creating on first use) the named endpoint's histogram.
func (m *Metrics) Latency(endpoint string) *Histogram {
	m.mu.Lock()
	defer m.mu.Unlock()
	h := m.latency[endpoint]
	if h == nil {
		h = &Histogram{}
		m.latency[endpoint] = h
	}
	return h
}

// observe records one finished request.
func (m *Metrics) observe(endpoint string, status int, d time.Duration) {
	m.Requests.Add(endpoint, 1)
	switch {
	case status >= 500:
		m.Status5xx.Add(1)
	case status >= 400:
		m.Status4xx.Add(1)
	case status >= 200 && status < 300:
		// Implicit 200s (Write with no WriteHeader) land here too — the
		// statusWriter records them on first Write, so the class counters
		// always sum to the request count.
		m.Status2xx.Add(1)
	}
	m.Latency(endpoint).Observe(d)
}

// addStats folds one analysis result's counters into the workload totals.
func (m *Metrics) addStats(gates, prox, single int) {
	m.Vectors.Add(1)
	m.GatesEvaluated.Add(int64(gates))
	m.ProximityEvals.Add(int64(prox))
	m.SingleArcEvals.Add(int64(single))
}

// writeJSON renders the full metrics document. Every embedded value is an
// expvar.Var String() (already valid JSON), composed by hand so no
// marshaling intermediate is needed.
func (m *Metrics) writeJSON(b *strings.Builder, reg RegistryStats, netlists int) {
	b.WriteString("{\n")
	fmt.Fprintf(b, ` "requests": %s,`+"\n", m.Requests.String())
	fmt.Fprintf(b, ` "status2xx": %s, "status4xx": %s, "status5xx": %s,`+"\n",
		m.Status2xx.String(), m.Status4xx.String(), m.Status5xx.String())
	fmt.Fprintf(b, ` "vectors": %s, "gatesEvaluated": %s, "proximityEvals": %s, "singleArcEvals": %s,`+"\n",
		m.Vectors.String(), m.GatesEvaluated.String(), m.ProximityEvals.String(), m.SingleArcEvals.String())
	fmt.Fprintf(b, ` "modelCache": {"hits":%d,"misses":%d,"evictions":%d,"loadErrors":%d,"resident":%d},`+"\n",
		reg.Hits, reg.Misses, reg.Evictions, reg.LoadErrors, reg.Resident)
	fmt.Fprintf(b, ` "netlistsResident": %d,`+"\n", netlists)
	b.WriteString(` "latencies": {`)
	m.mu.Lock()
	names := make([]string, 0, len(m.latency))
	for name := range m.latency {
		names = append(names, name)
	}
	m.mu.Unlock()
	sort.Strings(names)
	for i, name := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(b, "\n  %q: %s", name, m.Latency(name).String())
	}
	b.WriteString("\n }\n}\n")
}
