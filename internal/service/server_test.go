package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/sta"
	"repro/internal/waveform"
)

// testNetlist is a small nand2/nand3 circuit with real proximity action:
// the nand3 sees three close arrivals, the nand2 two.
const testNetlist = `
input a b c d
gate g1 nand3 x a b c
gate g2 nand2 y x d
gate g3 inv   z y
output z
`

// newTestServer spins a Server over a synthetic nand2/nand3/inv library.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	dir := t.TempDir()
	writeSynthLibrary(t, dir, "nand2", "nand3", "inv")
	if cfg.Registry == nil {
		cfg.Registry = NewRegistry(dir, 8)
	}
	s := New(cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

// post sends a JSON body and decodes a JSON answer into out, returning the
// status code.
func post(t *testing.T, url string, body, out any) int {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s answer: %v", url, err)
		}
	}
	return resp.StatusCode
}

func uploadTestNetlist(t *testing.T, base string) UploadResponse {
	t.Helper()
	var up UploadResponse
	if code := post(t, base+"/v1/netlists", UploadRequest{Netlist: testNetlist}, &up); code != 200 {
		t.Fatalf("upload status %d", code)
	}
	return up
}

// testVector builds a stimulus with all four inputs falling in close
// proximity — the shape that exercises the proximity algorithm.
func testVector(shift float64) []Event {
	return []Event{
		{Net: "a", Dir: "fall", TTPs: 300, TimePs: shift},
		{Net: "b", Dir: "fall", TTPs: 250, TimePs: shift + 15},
		{Net: "c", Dir: "fall", TTPs: 350, TimePs: shift + 40},
		{Net: "d", Dir: "rise", TTPs: 280, TimePs: shift + 20},
	}
}

// refResults computes the ground truth the way cmd/sta does: parse the same
// netlist over the same models, serial AnalyzeBatch.
func refResults(t *testing.T, reg *Registry, batch [][]Event, mode sta.Mode) (*sta.Circuit, []*sta.Result) {
	t.Helper()
	lib := sta.NewLibrary()
	for _, cell := range []string{"nand2", "nand3", "inv"} {
		calc, err := reg.Get(cell)
		if err != nil {
			t.Fatal(err)
		}
		lib.Add(cell, calc)
	}
	c, err := sta.ParseNetlist(strings.NewReader(testNetlist), lib)
	if err != nil {
		t.Fatal(err)
	}
	evs := make([][]sta.PIEvent, len(batch))
	for i, vec := range batch {
		if evs[i], err = resolveVector(c, vec); err != nil {
			t.Fatal(err)
		}
	}
	results, err := c.AnalyzeBatch(evs, mode, sta.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	return c, results
}

// checkVectorAgainstRef requires the wire arrivals to be bit-identical to
// the engine's (the wire carries time*1e12; the comparison applies the same
// conversion, so equality is exact, not approximate).
func checkVectorAgainstRef(t *testing.T, c *sta.Circuit, ref *sta.Result, vr VectorResult, label string) {
	t.Helper()
	byKey := map[string]Arrival{}
	for _, a := range vr.Arrivals {
		byKey[a.Net+"/"+a.Dir] = a
	}
	seen := 0
	for _, po := range c.POs {
		for _, dir := range []waveform.Direction{waveform.Rising, waveform.Falling} {
			ra, ok := ref.Arrival(po, dir)
			wa, wok := byKey[po.Name+"/"+dir.String()]
			if ok != wok {
				t.Fatalf("%s: net %s %v: present=%v on wire, %v in engine", label, po.Name, dir, wok, ok)
			}
			if !ok {
				continue
			}
			seen++
			if wa.TimePs != ra.Time*1e12 || wa.TTPs != ra.TT*1e12 || wa.UsedInputs != ra.UsedInputs {
				t.Fatalf("%s: net %s %v: wire (%.6f ps, %.6f ps, %d) vs engine (%.6f ps, %.6f ps, %d)",
					label, po.Name, dir, wa.TimePs, wa.TTPs, wa.UsedInputs,
					ra.Time*1e12, ra.TT*1e12, ra.UsedInputs)
			}
		}
	}
	if seen == 0 {
		t.Fatalf("%s: no output arrivals compared — vacuous", label)
	}
}

func TestUploadAndAnalyze(t *testing.T) {
	reg := NewRegistry(t.TempDir(), 8)
	writeSynthLibrary(t, reg.dir, "nand2", "nand3", "inv")
	_, ts := newTestServer(t, Config{Registry: reg})

	up := uploadTestNetlist(t, ts.URL)
	if up.Gates != 3 || up.Levels != 3 {
		t.Fatalf("upload shape %+v, want 3 gates / 3 levels", up)
	}
	if len(up.Inputs) != 4 || len(up.Outputs) != 1 || up.Outputs[0] != "z" {
		t.Fatalf("upload IO %+v", up)
	}

	var resp AnalyzeResponse
	code := post(t, ts.URL+"/v1/analyze",
		AnalyzeRequest{Netlist: up.ID, Mode: "prox", Vector: testVector(0)}, &resp)
	if code != 200 {
		t.Fatalf("analyze status %d", code)
	}
	c, refs := refResults(t, reg, [][]Event{testVector(0)}, sta.Proximity)
	checkVectorAgainstRef(t, c, refs[0], resp.VectorResult, "analyze")
	if resp.ProximityEvals == 0 {
		t.Fatal("stimulus produced no proximity evaluations — test is vacuous")
	}

	// nets=all returns internal nets too.
	var all AnalyzeResponse
	post(t, ts.URL+"/v1/analyze",
		AnalyzeRequest{Netlist: up.ID, Nets: "all", Vector: testVector(0)}, &all)
	if len(all.Arrivals) <= len(resp.Arrivals) {
		t.Fatalf("nets=all returned %d arrivals, outputs-only %d", len(all.Arrivals), len(resp.Arrivals))
	}
}

// TestBatchBitIdenticalToSerial is the acceptance check: the batched
// endpoint must reproduce the serial engine (the same arithmetic cmd/sta
// prints) bit for bit, in both modes.
func TestBatchBitIdenticalToSerial(t *testing.T) {
	reg := NewRegistry(t.TempDir(), 8)
	writeSynthLibrary(t, reg.dir, "nand2", "nand3", "inv")
	_, ts := newTestServer(t, Config{Registry: reg})
	up := uploadTestNetlist(t, ts.URL)

	batch := make([][]Event, 12)
	for i := range batch {
		batch[i] = testVector(float64(7 * i))
	}
	for _, mode := range []struct {
		wire string
		m    sta.Mode
	}{{"prox", sta.Proximity}, {"conv", sta.Conventional}} {
		var resp BatchResponse
		code := post(t, ts.URL+"/v1/analyze:batch",
			BatchRequest{Netlist: up.ID, Mode: mode.wire, Vectors: batch}, &resp)
		if code != 200 {
			t.Fatalf("%s: batch status %d", mode.wire, code)
		}
		if len(resp.Results) != len(batch) {
			t.Fatalf("%s: %d results for %d vectors", mode.wire, len(resp.Results), len(batch))
		}
		c, refs := refResults(t, reg, batch, mode.m)
		for i := range batch {
			checkVectorAgainstRef(t, c, refs[i], resp.Results[i],
				fmt.Sprintf("%s vector %d", mode.wire, i))
		}
	}
}

// TestConcurrentHammer fires ≥64 overlapping analyze and batch requests at
// one uploaded netlist. Under -race this is the acceptance proof that the
// registry, the netlist store, and the shared Compiled handle are clean.
func TestConcurrentHammer(t *testing.T) {
	reg := NewRegistry(t.TempDir(), 8)
	writeSynthLibrary(t, reg.dir, "nand2", "nand3", "inv")
	_, ts := newTestServer(t, Config{Registry: reg, MaxInflight: 256, Workers: 2})
	up := uploadTestNetlist(t, ts.URL)

	c, refs := refResults(t, reg, [][]Event{testVector(0)}, sta.Proximity)
	const clients = 64
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if i%4 == 0 {
				var resp BatchResponse
				code := post(t, ts.URL+"/v1/analyze:batch",
					BatchRequest{Netlist: up.ID, Vectors: [][]Event{testVector(0), testVector(9)}}, &resp)
				if code != 200 {
					errs <- fmt.Errorf("client %d: batch status %d", i, code)
				}
				return
			}
			var resp AnalyzeResponse
			code := post(t, ts.URL+"/v1/analyze",
				AnalyzeRequest{Netlist: up.ID, Vector: testVector(0)}, &resp)
			if code != 200 {
				errs <- fmt.Errorf("client %d: status %d", i, code)
				return
			}
			// Every concurrent answer must still be the exact serial result.
			byKey := map[string]Arrival{}
			for _, a := range resp.Arrivals {
				byKey[a.Net+"/"+a.Dir] = a
			}
			for _, po := range c.POs {
				for _, dir := range []waveform.Direction{waveform.Rising, waveform.Falling} {
					if ra, ok := ref0Arrival(refs[0], po, dir); ok {
						if wa := byKey[po.Name+"/"+dir.String()]; wa.TimePs != ra.Time*1e12 {
							errs <- fmt.Errorf("client %d: net %s drifted", i, po.Name)
						}
					}
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	st := reg.Stats()
	if st.Hits == 0 {
		t.Fatalf("registry stats %+v: concurrent requests never hit the model cache", st)
	}
	if st.Misses != 3 {
		t.Fatalf("registry stats %+v: want exactly one load per cell (3)", st)
	}
}

func ref0Arrival(r *sta.Result, n *sta.Net, dir waveform.Direction) (sta.Arrival, bool) {
	return r.Arrival(n, dir)
}

// TestOverloadReturns429: with the admission semaphore held full, the next
// request is rejected immediately with Retry-After rather than queued.
func TestOverloadReturns429(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxInflight: 2})
	up := uploadTestNetlist(t, ts.URL)

	// Fill the semaphore deterministically (white-box): both slots busy.
	s.sem <- struct{}{}
	s.sem <- struct{}{}
	defer func() { <-s.sem; <-s.sem }()

	data, _ := json.Marshal(AnalyzeRequest{Netlist: up.ID, Vector: testVector(0)})
	resp, err := http.Post(ts.URL+"/v1/analyze", "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	// healthz must bypass admission and keep answering under overload.
	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != 200 {
		t.Fatalf("healthz under overload: %d", hr.StatusCode)
	}
}

// TestRequestTimeout: a timeout shorter than any analysis yields 504, not a
// hung request.
func TestRequestTimeout(t *testing.T) {
	_, ts := newTestServer(t, Config{RequestTimeout: time.Nanosecond})
	up := uploadTestNetlist(t, ts.URL)
	code := post(t, ts.URL+"/v1/analyze",
		AnalyzeRequest{Netlist: up.ID, Vector: testVector(0)}, &ErrorResponse{})
	if code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", code)
	}
}

func TestNetlistLRUEviction(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxNetlists: 2})
	first := uploadTestNetlist(t, ts.URL)
	uploadTestNetlist(t, ts.URL)
	uploadTestNetlist(t, ts.URL)
	code := post(t, ts.URL+"/v1/analyze",
		AnalyzeRequest{Netlist: first.ID, Vector: testVector(0)}, &ErrorResponse{})
	if code != http.StatusNotFound {
		t.Fatalf("evicted netlist answered %d, want 404", code)
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	up := uploadTestNetlist(t, ts.URL)
	cases := []struct {
		name string
		url  string
		body any
		want int
	}{
		{"unknown netlist", "/v1/analyze", AnalyzeRequest{Netlist: "n999", Vector: testVector(0)}, 404},
		{"unknown net", "/v1/analyze", AnalyzeRequest{Netlist: up.ID, Vector: []Event{{Net: "nope", Dir: "rise", TTPs: 100}}}, 400},
		{"bad dir", "/v1/analyze", AnalyzeRequest{Netlist: up.ID, Vector: []Event{{Net: "a", Dir: "sideways", TTPs: 100}}}, 400},
		{"bad mode", "/v1/analyze", AnalyzeRequest{Netlist: up.ID, Mode: "psychic", Vector: testVector(0)}, 400},
		{"empty vector", "/v1/analyze", AnalyzeRequest{Netlist: up.ID}, 400},
		{"non-positive tt", "/v1/analyze", AnalyzeRequest{Netlist: up.ID, Vector: []Event{{Net: "a", Dir: "rise", TTPs: 0}}}, 400},
		{"event on internal net", "/v1/analyze", AnalyzeRequest{Netlist: up.ID, Vector: []Event{{Net: "x", Dir: "rise", TTPs: 100}}}, 400},
		{"empty vector set", "/v1/analyze:batch", BatchRequest{Netlist: up.ID}, 400},
		{"unknown cell", "/v1/netlists", UploadRequest{Netlist: "input a\ngate g1 xor2 y a a\noutput y"}, 400},
		{"undriven net", "/v1/netlists", UploadRequest{Netlist: "input a\ngate g1 inv y b\noutput y"}, 400},
		{"empty netlist", "/v1/netlists", UploadRequest{}, 400},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var er ErrorResponse
			if code := post(t, ts.URL+tc.url, tc.body, &er); code != tc.want {
				t.Fatalf("status %d (%s), want %d", code, er.Error, tc.want)
			}
			if er.Error == "" {
				t.Fatal("error answer without message")
			}
		})
	}
}

// TestMetricsEndpoint: /metrics must be valid JSON carrying the request,
// cache and workload counters plus per-endpoint latency histograms.
// TestImplicitOKCountedInStatusClasses pins the statusWriter contract: the
// success paths write JSON bodies without ever calling WriteHeader, so the
// implicit 200 must be captured on the first Write and land in the 2xx
// class counter — not vanish into an unclassified zero status. The class
// counters must always sum to the request count.
func TestImplicitOKCountedInStatusClasses(t *testing.T) {
	s, ts := newTestServer(t, Config{})

	// A successful upload: handleUpload ends in writeJSON — Write with no
	// explicit WriteHeader, i.e. an implicit 200.
	uploadTestNetlist(t, ts.URL)
	if got := s.Metrics().Status2xx.Value(); got != 1 {
		t.Fatalf("status2xx = %d after one implicit-200 response, want 1", got)
	}

	// An explicit-status error response lands in its own class and must not
	// leak into (or reset) the 2xx count.
	if code := post(t, ts.URL+"/v1/netlists", UploadRequest{Netlist: "gate g bad x y"}, nil); code != 400 {
		t.Fatalf("bad netlist status %d, want 400", code)
	}
	if got := s.Metrics().Status4xx.Value(); got != 1 {
		t.Fatalf("status4xx = %d, want 1", got)
	}
	if got := s.Metrics().Status2xx.Value(); got != 1 {
		t.Fatalf("status2xx = %d after a 4xx response, want still 1", got)
	}

	// Every further implicit-200 response keeps counting.
	uploadTestNetlist(t, ts.URL)
	if got := s.Metrics().Status2xx.Value(); got != 2 {
		t.Fatalf("status2xx = %d after second upload, want 2", got)
	}
	if reqs, classes := 3, s.Metrics().Status2xx.Value()+s.Metrics().Status4xx.Value()+s.Metrics().Status5xx.Value(); classes != int64(reqs) {
		t.Fatalf("status classes sum to %d, want the request count %d", classes, reqs)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	up := uploadTestNetlist(t, ts.URL)
	post(t, ts.URL+"/v1/analyze", AnalyzeRequest{Netlist: up.ID, Vector: testVector(0)}, &AnalyzeResponse{})
	post(t, ts.URL+"/v1/analyze:batch",
		BatchRequest{Netlist: up.ID, Vectors: [][]Event{testVector(0), testVector(5)}}, &BatchResponse{})

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("metrics is not valid JSON: %v", err)
	}
	reqs, ok := doc["requests"].(map[string]any)
	if !ok || reqs["analyze"] != 1.0 || reqs["analyze:batch"] != 1.0 || reqs["netlists"] != 1.0 {
		t.Fatalf("request counters %v", doc["requests"])
	}
	cache, ok := doc["modelCache"].(map[string]any)
	if !ok || cache["misses"].(float64) < 1 {
		t.Fatalf("cache counters %v", doc["modelCache"])
	}
	if doc["vectors"] != 3.0 {
		t.Fatalf("vectors %v, want 3", doc["vectors"])
	}
	if doc["gatesEvaluated"].(float64) < 9 {
		t.Fatalf("gatesEvaluated %v, want >= 9", doc["gatesEvaluated"])
	}
	lats, ok := doc["latencies"].(map[string]any)
	if !ok || lats["analyze"] == nil {
		t.Fatalf("latencies %v", doc["latencies"])
	}
}
