package service

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// analyzeKeep runs /v1/analyze with keepBaseline and returns the response.
func analyzeKeep(t *testing.T, base, netlist string, vec []Event) AnalyzeResponse {
	t.Helper()
	var ar AnalyzeResponse
	code := post(t, base+"/v1/analyze", AnalyzeRequest{
		Netlist: netlist, Nets: "all", Vector: vec, KeepBaseline: true,
	}, &ar)
	if code != 200 {
		t.Fatalf("analyze status %d", code)
	}
	if ar.BaselineID == "" {
		t.Fatal("keepBaseline did not return a baselineId")
	}
	return ar
}

// sameArrivals requires two wire arrival sets to be bit-identical — the
// delta endpoint promises exactly the answer a full analysis of the edited
// vector gives.
func sameArrivals(t *testing.T, got, want []Arrival, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d arrivals, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: arrival %d = %+v, want %+v", label, i, got[i], want[i])
		}
	}
}

// TestDeltaEndpoint: a stimulus edit against a kept baseline must reproduce
// the full analysis of the edited vector bit-for-bit, report reuse, and —
// with keepBaseline — support chained edits.
func TestDeltaEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	up := uploadTestNetlist(t, ts.URL)
	base := analyzeKeep(t, ts.URL, up.ID, testVector(0))

	// Edit: shift input a later and withdraw d's rising event.
	edited := []Event{
		{Net: "a", Dir: "fall", TTPs: 300, TimePs: 55},
		{Net: "b", Dir: "fall", TTPs: 250, TimePs: 15},
		{Net: "c", Dir: "fall", TTPs: 350, TimePs: 40},
	}
	var dr DeltaResponse
	code := post(t, ts.URL+"/v1/analyze:delta", DeltaRequest{
		Baseline:     base.BaselineID,
		Nets:         "all",
		Set:          []Event{{Net: "a", Dir: "fall", TTPs: 300, TimePs: 55}},
		Remove:       []RemoveEvent{{Net: "d", Dir: "rise"}},
		KeepBaseline: true,
	}, &dr)
	if code != 200 {
		t.Fatalf("delta status %d", code)
	}
	var full AnalyzeResponse
	if code := post(t, ts.URL+"/v1/analyze", AnalyzeRequest{
		Netlist: up.ID, Nets: "all", Vector: edited,
	}, &full); code != 200 {
		t.Fatalf("full analyze status %d", code)
	}
	sameArrivals(t, dr.Arrivals, full.Arrivals, "delta vs full")
	if dr.Mode != full.Mode {
		t.Errorf("delta mode %q, full mode %q", dr.Mode, full.Mode)
	}
	if dr.GatesReevaluated+dr.GatesReused < dr.GatesReused {
		t.Errorf("nonsensical reuse accounting: %+v", dr)
	}
	if dr.BaselineID == "" || dr.BaselineID == base.BaselineID {
		t.Fatalf("chained keepBaseline returned %q (baseline was %q)", dr.BaselineID, base.BaselineID)
	}

	// Chain a second edit off the delta's own baseline: undo the shift.
	var dr2 DeltaResponse
	if code := post(t, ts.URL+"/v1/analyze:delta", DeltaRequest{
		Netlist:  up.ID, // optional, but when present it must match
		Baseline: dr.BaselineID,
		Nets:     "all",
		Set:      []Event{{Net: "a", Dir: "fall", TTPs: 300, TimePs: 0}},
	}, &dr2); code != 200 {
		t.Fatalf("chained delta status %d", code)
	}
	edited[0].TimePs = 0
	var full2 AnalyzeResponse
	if code := post(t, ts.URL+"/v1/analyze", AnalyzeRequest{
		Netlist: up.ID, Nets: "all", Vector: edited,
	}, &full2); code != 200 {
		t.Fatalf("full analyze 2 status %d", code)
	}
	sameArrivals(t, dr2.Arrivals, full2.Arrivals, "chained delta vs full")
}

// TestDeltaRequestValidation: the endpoint's failure modes, each with the
// status the client should key on.
func TestDeltaRequestValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	up := uploadTestNetlist(t, ts.URL)
	base := analyzeKeep(t, ts.URL, up.ID, testVector(0))

	cases := []struct {
		name string
		req  DeltaRequest
		code int
	}{
		{"unknown baseline", DeltaRequest{Baseline: "b999",
			Set: []Event{{Net: "a", Dir: "fall", TTPs: 300, TimePs: 5}}}, 404},
		{"netlist mismatch", DeltaRequest{Baseline: base.BaselineID, Netlist: "nl42",
			Set: []Event{{Net: "a", Dir: "fall", TTPs: 300, TimePs: 5}}}, 400},
		{"unknown net", DeltaRequest{Baseline: base.BaselineID,
			Set: []Event{{Net: "nope", Dir: "fall", TTPs: 300, TimePs: 5}}}, 400},
		{"bad direction", DeltaRequest{Baseline: base.BaselineID,
			Remove: []RemoveEvent{{Net: "a", Dir: "sideways"}}}, 400},
		{"empty delta", DeltaRequest{Baseline: base.BaselineID}, 400},
		{"set on non-PI", DeltaRequest{Baseline: base.BaselineID,
			Set: []Event{{Net: "x", Dir: "fall", TTPs: 300, TimePs: 5}}}, 400},
		{"remove absent event", DeltaRequest{Baseline: base.BaselineID,
			Remove: []RemoveEvent{{Net: "a", Dir: "rise"}}}, 400},
	}
	for _, tc := range cases {
		var errBody map[string]any
		if code := post(t, ts.URL+"/v1/analyze:delta", tc.req, &errBody); code != tc.code {
			t.Errorf("%s: status %d, want %d (%v)", tc.name, code, tc.code, errBody)
		}
	}
}

// TestBaselineLRUAndNetlistEviction: the baseline cache is bounded, and
// evicting a netlist takes its baselines with it — a delta against a
// baseline whose netlist is gone must 404, not crash or recompute.
func TestBaselineLRUAndNetlistEviction(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxNetlists: 1, MaxBaselines: 2})
	up := uploadTestNetlist(t, ts.URL)

	// Three baselines through a cache of two: the first must fall out.
	b1 := analyzeKeep(t, ts.URL, up.ID, testVector(0))
	b2 := analyzeKeep(t, ts.URL, up.ID, testVector(10))
	b3 := analyzeKeep(t, ts.URL, up.ID, testVector(20))
	set := []Event{{Net: "a", Dir: "fall", TTPs: 300, TimePs: 5}}
	if code := post(t, ts.URL+"/v1/analyze:delta", DeltaRequest{Baseline: b1.BaselineID, Set: set}, nil); code != 404 {
		t.Errorf("evicted baseline %s answered with %d, want 404", b1.BaselineID, code)
	}
	for _, id := range []string{b2.BaselineID, b3.BaselineID} {
		if code := post(t, ts.URL+"/v1/analyze:delta", DeltaRequest{Baseline: id, Set: set}, nil); code != 200 {
			t.Errorf("resident baseline %s: status %d", id, code)
		}
	}

	// Uploading a second netlist evicts the first (MaxNetlists: 1) and must
	// drop its baselines with it.
	var up2 UploadResponse
	if code := post(t, ts.URL+"/v1/netlists", UploadRequest{Netlist: testNetlist}, &up2); code != 200 {
		t.Fatalf("second upload status %d", code)
	}
	if code := post(t, ts.URL+"/v1/analyze:delta", DeltaRequest{Baseline: b3.BaselineID, Set: set}, nil); code != 404 {
		t.Errorf("baseline of an evicted netlist answered with %d, want 404", code)
	}
}

// TestClientCancelReturns499: a request whose context is already canceled
// must be reported as a client disconnect (499), counted separately from
// 4xx/5xx — not blamed on the server as a 504.
func TestClientCancelReturns499(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	up := uploadTestNetlist(t, ts.URL)

	body, err := json.Marshal(AnalyzeRequest{Netlist: up.ID, Vector: testVector(0)})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest(http.MethodPost, "/v1/analyze", strings.NewReader(string(body))).WithContext(ctx)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != StatusClientClosedRequest {
		t.Fatalf("canceled request: status %d, want %d (%s)", rec.Code, StatusClientClosedRequest, rec.Body.String())
	}
	if got := s.metrics.Canceled.Value(); got != 1 {
		t.Errorf("Canceled counter = %d, want 1", got)
	}
	if got := s.metrics.Status4xx.Value(); got != 0 {
		t.Errorf("499 leaked into the 4xx class (count %d)", got)
	}

	// The JSON and Prometheus views both expose the counter.
	var buf strings.Builder
	s.metrics.writeJSON(&buf, RegistryStats{}, 1)
	if !strings.Contains(buf.String(), `"statusCanceled": 1`) {
		t.Errorf("metrics JSON missing statusCanceled: %s", buf.String())
	}
	buf.Reset()
	s.metrics.writeProm(&buf, RegistryStats{}, 1)
	if !strings.Contains(buf.String(), `stad_responses_total{class="canceled"} 1`) {
		t.Errorf("prom exposition missing canceled class:\n%s", buf.String())
	}
}
