package service

import (
	"io"
	"math"
	"net/http"
	"strings"
	"testing"

	"repro/internal/macromodel"
)

// pulseMinSepPs reads the synthetic nand3's inertial delay for the pair
// (fall=a/pin0, rise=b/pin1) at 300ps transition times — the same model the
// registry serves — in picoseconds to match the wire unit.
func pulseMinSepPs(t *testing.T) float64 {
	t.Helper()
	m := macromodel.SynthModel("nand", 3)
	gm := m.Glitch(0, 1)
	if gm == nil {
		t.Fatal("synthetic nand3 missing glitch pair (0,1)")
	}
	minSep, ok := gm.MinSeparation(300e-12, 300e-12, m.Th)
	if !ok {
		t.Fatal("synthetic glitch grid never completes a transition")
	}
	return minSep * 1e12
}

// pulseVector stimulates the test netlist's nand3 with an opposite-edge
// input pair: b rises at 0 (blocking x), a falls sepPs later (unblocking) —
// a negative-going runt on x when sepPs is below the pair's inertial delay.
func pulseVector(sepPs float64) []Event {
	return []Event{
		{Net: "b", Dir: "rise", TTPs: 300, TimePs: 0},
		{Net: "a", Dir: "fall", TTPs: 300, TimePs: sepPs},
	}
}

func TestAnalyzePulseFilter(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	up := uploadTestNetlist(t, ts.URL)
	below := pulseMinSepPs(t) - 50

	// Without the filter the runt propagates as both full-swing arrivals.
	var off AnalyzeResponse
	if code := post(t, ts.URL+"/v1/analyze",
		AnalyzeRequest{Netlist: up.ID, Nets: "all", Vector: pulseVector(below)}, &off); code != 200 {
		t.Fatalf("analyze status %d", code)
	}
	both := 0
	for _, a := range off.Arrivals {
		if a.Net == "x" {
			both++
		}
	}
	if both != 2 {
		t.Fatalf("premise: want an opposite-edge pair on x, got %d arrivals", both)
	}
	if off.PulsesFiltered != 0 || off.PulsesDegraded != 0 {
		t.Fatalf("filter off moved counters: %+v", off.VectorResult)
	}

	var on AnalyzeResponse
	if code := post(t, ts.URL+"/v1/analyze",
		AnalyzeRequest{Netlist: up.ID, Nets: "all", Vector: pulseVector(below), PulseFilter: true}, &on); code != 200 {
		t.Fatalf("analyze status %d", code)
	}
	if on.PulsesFiltered != 1 {
		t.Fatalf("pulsesFiltered = %d, want 1", on.PulsesFiltered)
	}
	for _, a := range on.Arrivals {
		if a.Net == "x" {
			t.Fatalf("absorbed pulse still on the wire: %+v", a)
		}
	}
	if got := s.metrics.PulsesFiltered.Value(); got != 1 {
		t.Errorf("metrics PulsesFiltered = %d, want 1", got)
	}

	// The counters surface in both /metrics renderings.
	for url, want := range map[string]string{
		ts.URL + "/metrics":             `"pulsesFiltered": 1`,
		ts.URL + "/metrics?format=prom": "stad_pulses_filtered_total 1",
	} {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if !strings.Contains(string(body), want) {
			t.Errorf("%s missing %q", url, want)
		}
	}
}

// TestDeltaPulseFilterChain drives the filtered edit loop end to end:
// a filtered baseline is kept, a widening delta resurrects the absorbed pair
// as a degraded one, and a narrowing delta against the chained baseline
// absorbs it again — each reply carrying the Section-6 counters.
func TestDeltaPulseFilterChain(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	up := uploadTestNetlist(t, ts.URL)
	minSep := pulseMinSepPs(t)

	var base AnalyzeResponse
	if code := post(t, ts.URL+"/v1/analyze", AnalyzeRequest{
		Netlist: up.ID, Nets: "all", Vector: pulseVector(minSep - 50),
		PulseFilter: true, KeepBaseline: true,
	}, &base); code != 200 {
		t.Fatalf("analyze status %d", code)
	}
	if base.BaselineID == "" || base.PulsesFiltered != 1 {
		t.Fatalf("filtered baseline not kept: %+v", base)
	}

	var widened DeltaResponse
	if code := post(t, ts.URL+"/v1/analyze:delta", DeltaRequest{
		Baseline: base.BaselineID, Nets: "all",
		Set:          []Event{{Net: "a", Dir: "fall", TTPs: 300, TimePs: minSep + 30}},
		PulseFilter:  true,
		KeepBaseline: true,
	}, &widened); code != 200 {
		t.Fatalf("delta status %d", code)
	}
	if widened.PulsesFiltered != 0 || widened.PulsesDegraded != 1 {
		t.Fatalf("widened delta counters %d filtered / %d degraded, want 0 / 1",
			widened.PulsesFiltered, widened.PulsesDegraded)
	}
	resurrected := 0
	for _, a := range widened.Arrivals {
		if a.Net == "x" {
			resurrected++
		}
	}
	if resurrected != 2 {
		t.Fatalf("widening resurrected %d arrivals on x, want the full pair", resurrected)
	}
	if widened.BaselineID == "" {
		t.Fatal("filtered delta did not keep its own baseline for chaining")
	}

	var narrowed DeltaResponse
	if code := post(t, ts.URL+"/v1/analyze:delta", DeltaRequest{
		Baseline: widened.BaselineID, Nets: "all",
		Set:         []Event{{Net: "a", Dir: "fall", TTPs: 300, TimePs: minSep - 50}},
		PulseFilter: true,
	}, &narrowed); code != 200 {
		t.Fatalf("chained delta status %d", code)
	}
	if narrowed.PulsesFiltered != 1 || narrowed.PulsesDegraded != 0 {
		t.Fatalf("narrowed delta counters %d filtered / %d degraded, want 1 / 0",
			narrowed.PulsesFiltered, narrowed.PulsesDegraded)
	}
	for _, a := range narrowed.Arrivals {
		if a.Net == "x" {
			t.Fatalf("re-absorbed pulse still on the wire: %+v", a)
		}
	}
}

// TestDeltaPulseFilterMismatch400: filtering is an analysis semantic the
// baseline fixes; a delta stating the opposite must 400, not silently
// re-interpret the baseline.
func TestDeltaPulseFilterMismatch400(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	up := uploadTestNetlist(t, ts.URL)
	var base AnalyzeResponse
	if code := post(t, ts.URL+"/v1/analyze", AnalyzeRequest{
		Netlist: up.ID, Vector: pulseVector(500), PulseFilter: true, KeepBaseline: true,
	}, &base); code != 200 {
		t.Fatalf("analyze status %d", code)
	}
	var er ErrorResponse
	code := post(t, ts.URL+"/v1/analyze:delta", DeltaRequest{
		Baseline: base.BaselineID,
		Set:      []Event{{Net: "a", Dir: "fall", TTPs: 300, TimePs: 700}},
	}, &er)
	if code != 400 {
		t.Fatalf("status %d, want 400", code)
	}
	if !strings.Contains(er.Error, "PulseFiltering") {
		t.Fatalf("error %q does not name the filtering mismatch", er.Error)
	}
}

// TestMCPulseFilterWire: a sigma-0 filtered Monte-Carlo run reports the
// summed pulse counters and a unanimous glitch-criticality vote for the
// judged gate.
func TestMCPulseFilterWire(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	up := uploadTestNetlist(t, ts.URL)
	var resp MCResponse
	if code := post(t, ts.URL+"/v1/analyze:mc", MCRequest{
		Netlist: up.ID, Vector: pulseVector(pulseMinSepPs(t) - 50),
		Samples: 3, Sigma: 0, PulseFilter: true,
	}, &resp); code != 200 {
		t.Fatalf("mc status %d", code)
	}
	if resp.PulsesFiltered != 3 {
		t.Fatalf("pulsesFiltered = %d, want 3 (one absorbed pair per sample)", resp.PulsesFiltered)
	}
	if len(resp.GlitchCriticality) != 1 {
		t.Fatalf("glitchCriticality has %d entries, want 1: %+v", len(resp.GlitchCriticality), resp.GlitchCriticality)
	}
	gc := resp.GlitchCriticality[0]
	if gc.Gate != "g1" || gc.Out != "x" || gc.Absorbed != 3 || gc.PAbsorbed != 1 || gc.Degraded != 0 {
		t.Fatalf("glitch criticality %+v, want g1/x absorbed in all 3 samples", gc)
	}
}

func TestBatchPulseFilterPerVector(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	up := uploadTestNetlist(t, ts.URL)
	minSep := pulseMinSepPs(t)
	var resp BatchResponse
	code := post(t, ts.URL+"/v1/analyze:batch", BatchRequest{
		Netlist:     up.ID,
		Nets:        "all",
		Vectors:     [][]Event{pulseVector(minSep - 50), pulseVector(minSep + 30), pulseVector(minSep + 2000)},
		PulseFilter: true,
	}, &resp)
	if code != 200 {
		t.Fatalf("batch status %d", code)
	}
	if got := resp.Results[0].PulsesFiltered; got != 1 {
		t.Errorf("vector 0: pulsesFiltered = %d, want 1", got)
	}
	if got := resp.Results[1].PulsesDegraded; got != 1 {
		t.Errorf("vector 1: pulsesDegraded = %d, want 1", got)
	}
	// Well-separated pair: judged but degraded (the sigmoid never fully
	// saturates) or untouched — never absorbed.
	if got := resp.Results[2].PulsesFiltered; got != 0 {
		t.Errorf("vector 2: pulsesFiltered = %d, want 0", got)
	}
}

func TestExplainPulseFilterWire(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	up := uploadTestNetlist(t, ts.URL)
	below := pulseMinSepPs(t) - 50
	var resp ExplainResponse
	code := post(t, ts.URL+"/v1/explain", ExplainRequest{
		Netlist: up.ID, Nets: []string{"x"}, Vector: pulseVector(below), PulseFilter: true,
	}, &resp)
	if code != 200 {
		t.Fatalf("explain status %d", code)
	}
	ne := resp.Nets[0]
	if ne.Pulse == nil {
		t.Fatalf("explain carries no pulse verdict: %+v", ne)
	}
	if !ne.Pulse.Filtered || ne.Pulse.FallPin != 0 || ne.Pulse.RisePin != 1 {
		t.Fatalf("pulse wire %+v, want filtered pair (0,1)", ne.Pulse)
	}
	// ps→s→ps roundtrip costs a ulp or two.
	if math.Abs(ne.Pulse.SepPs-below) > 1e-6 {
		t.Errorf("pulse wire sepPs = %g, want %g", ne.Pulse.SepPs, below)
	}
	if !strings.Contains(ne.Report, "runt pulse absorbed") {
		t.Errorf("report missing the absorption story:\n%s", ne.Report)
	}
	if len(ne.Dirs) != 0 {
		t.Errorf("absorbed output still explains %d directions", len(ne.Dirs))
	}

	// Without pulseFilter the same vector explains two full-swing arrivals
	// and carries no verdict.
	var plain ExplainResponse
	if code := post(t, ts.URL+"/v1/explain", ExplainRequest{
		Netlist: up.ID, Nets: []string{"x"}, Vector: pulseVector(below),
	}, &plain); code != 200 {
		t.Fatalf("plain explain status %d", code)
	}
	if plain.Nets[0].Pulse != nil || len(plain.Nets[0].Dirs) != 2 {
		t.Fatalf("plain explain %+v, want 2 dirs and no pulse", plain.Nets[0])
	}
}
