package service

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// An empty histogram must render explicit zeroes — the n==0 path used to be
// guarded only implicitly; it must never divide.
func TestHistogramEmpty(t *testing.T) {
	h := newHistogram(histBounds)
	got := h.String()
	var doc struct {
		Count   int64              `json:"count"`
		MeanMs  float64            `json:"meanMs"`
		P50Ms   float64            `json:"p50Ms"`
		P99Ms   float64            `json:"p99Ms"`
		Buckets map[string]float64 `json:"buckets"`
	}
	if err := json.Unmarshal([]byte(got), &doc); err != nil {
		t.Fatalf("empty histogram is not valid JSON: %v\n%s", err, got)
	}
	if doc.Count != 0 || doc.MeanMs != 0 || doc.P50Ms != 0 || doc.P99Ms != 0 || len(doc.Buckets) != 0 {
		t.Fatalf("empty histogram renders non-zero values: %s", got)
	}
}

// Quantiles interpolate within the bucket that holds the target rank; with
// every observation in one bucket the estimates must land inside that
// bucket's edges and order p50 <= p95 <= p99.
func TestHistogramQuantiles(t *testing.T) {
	h := newHistogram(histBounds)
	for i := 0; i < 100; i++ {
		h.Observe(3 * time.Millisecond) // bucket (2ms, 4ms]
	}
	counts, total, _ := h.snapshot()
	if total != 100 {
		t.Fatalf("total = %d", total)
	}
	p50 := h.quantile(counts, 0.50)
	p95 := h.quantile(counts, 0.95)
	p99 := h.quantile(counts, 0.99)
	for _, q := range []struct {
		name string
		v    time.Duration
	}{{"p50", p50}, {"p95", p95}, {"p99", p99}} {
		if q.v <= 2*time.Millisecond || q.v > 4*time.Millisecond {
			t.Fatalf("%s = %v, outside the (2ms,4ms] bucket holding every sample", q.name, q.v)
		}
	}
	if !(p50 <= p95 && p95 <= p99) {
		t.Fatalf("quantiles out of order: p50=%v p95=%v p99=%v", p50, p95, p99)
	}

	// Overflow ranks clamp to the last finite bound instead of inventing a tail.
	h2 := newHistogram(histBounds)
	h2.Observe(10 * time.Second)
	c2, _, _ := h2.snapshot()
	if got := h2.quantile(c2, 0.5); got != histBounds[len(histBounds)-1] {
		t.Fatalf("overflow quantile = %v, want clamp to %v", got, histBounds[len(histBounds)-1])
	}
}

// Observe is lock-free; under the race detector this test proves the atomics
// carry the contention, and the totals must still be exact.
func TestHistogramConcurrent(t *testing.T) {
	h := newHistogram(histBounds)
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(w+1) * time.Millisecond)
				if i%100 == 0 {
					_ = h.String() // concurrent render must not race
				}
			}
		}(w)
	}
	wg.Wait()
	_, total, sum := h.snapshot()
	if total != workers*per {
		t.Fatalf("count = %d, want %d", total, workers*per)
	}
	wantSum := time.Duration(0)
	for w := 0; w < workers; w++ {
		wantSum += time.Duration(w+1) * time.Millisecond * per
	}
	if sum != wantSum {
		t.Fatalf("sum = %v, want %v", sum, wantSum)
	}
}

// The Prometheus rendering must emit cumulative le buckets ending at +Inf
// with the total count, plus _sum and _count samples.
func TestHistogramProm(t *testing.T) {
	h := newHistogram(histBounds)
	h.Observe(300 * time.Microsecond)
	h.Observe(3 * time.Millisecond)
	h.Observe(10 * time.Second) // overflow
	var b strings.Builder
	h.writeProm(&b, "x_seconds", `endpoint="analyze"`)
	out := b.String()
	for _, want := range []string{
		`x_seconds_bucket{endpoint="analyze",le="0.00025"} 0`,
		`x_seconds_bucket{endpoint="analyze",le="+Inf"} 3`,
		`x_seconds_count{endpoint="analyze"} 3`,
		`x_seconds_sum{endpoint="analyze"} `,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prom output missing %q:\n%s", want, out)
		}
	}
	// Cumulative counts must be monotone.
	last := int64(-1)
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "x_seconds_bucket") {
			continue
		}
		var n int64
		if _, err := fmt.Sscanf(line[strings.LastIndexByte(line, ' ')+1:], "%d", &n); err != nil {
			t.Fatalf("bad bucket line %q: %v", line, err)
		}
		if n < last {
			t.Fatalf("bucket counts not cumulative at %q", line)
		}
		last = n
	}
}

// /metrics?format=prom after real traffic: the exposition must carry the
// request counters, phase histograms, and runtime gauges.
func TestMetricsPromEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	up := uploadTestNetlist(t, ts.URL)
	var ar AnalyzeResponse
	if code := post(t, ts.URL+"/v1/analyze", AnalyzeRequest{Netlist: up.ID, Vector: testVector(0)}, &ar); code != 200 {
		t.Fatalf("analyze status %d", code)
	}

	resp, err := http.Get(ts.URL + "/metrics?format=prom")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("prom content type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(body)
	for _, want := range []string{
		`stad_requests_total{endpoint="analyze"} 1`,
		`stad_requests_total{endpoint="netlists"} 1`,
		`stad_responses_total{class="2xx"} 2`,
		"stad_vectors_total 1",
		"stad_goroutines ",
		"stad_heap_alloc_bytes ",
		`stad_request_duration_seconds_count{endpoint="analyze"} 1`,
		`stad_phase_duration_seconds_bucket{phase="eval",le="+Inf"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prom exposition missing %q:\n%s", want, out)
		}
	}

	// Unknown formats are a 400, not silently JSON.
	resp2, err := http.Get(ts.URL + "/metrics?format=xml")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("format=xml status = %d, want 400", resp2.StatusCode)
	}
}

// The JSON /metrics document must now carry phase histograms and the
// runtime gauges alongside the original counters.
func TestMetricsJSONPhases(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	up := uploadTestNetlist(t, ts.URL)
	var ar AnalyzeResponse
	if code := post(t, ts.URL+"/v1/analyze", AnalyzeRequest{Netlist: up.ID, Vector: testVector(0)}, &ar); code != 200 {
		t.Fatalf("analyze status %d", code)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("metrics is not valid JSON: %v", err)
	}
	phases, ok := doc["phases"].(map[string]any)
	if !ok {
		t.Fatalf("metrics has no phases object: %v", doc)
	}
	evalHist, ok := phases["eval"].(map[string]any)
	if !ok || evalHist["count"].(float64) < 1 {
		t.Fatalf("eval phase histogram missing or empty: %v", phases)
	}
	if doc["goroutines"].(float64) <= 0 {
		t.Fatalf("goroutines gauge = %v", doc["goroutines"])
	}
	if doc["heapAllocBytes"].(float64) <= 0 {
		t.Fatalf("heapAllocBytes gauge = %v", doc["heapAllocBytes"])
	}
	// The always-on phases all saw this analysis; the memoized compile did
	// too (first analyze on a fresh upload pays nothing — compile happened
	// at upload — so it may legitimately be empty).
	for _, p := range []obs.Phase{obs.PhaseSchedule, obs.PhaseSeed, obs.PhaseEval, obs.PhaseCommit} {
		if _, total, _ := s.Metrics().Phase(p).snapshot(); total < 1 {
			t.Fatalf("phase %v histogram empty after an analyze", p)
		}
	}
}
