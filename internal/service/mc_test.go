package service

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

// TestMCEndpoint drives /v1/analyze:mc end to end: a sigma-0 single sample
// must reproduce the deterministic /v1/analyze arrivals bit for bit on the
// wire, and a spread run must report ordered percentiles, criticality votes
// and the requested corners.
func TestMCEndpoint(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	up := uploadTestNetlist(t, ts.URL)

	var ref AnalyzeResponse
	if code := post(t, ts.URL+"/v1/analyze", AnalyzeRequest{Netlist: up.ID, Vector: testVector(0)}, &ref); code != 200 {
		t.Fatalf("analyze status %d", code)
	}

	var mc MCResponse
	code := post(t, ts.URL+"/v1/analyze:mc", MCRequest{
		Netlist: up.ID, Vector: testVector(0), Samples: 1, Sigma: 0,
	}, &mc)
	if code != 200 {
		t.Fatalf("mc status %d", code)
	}
	if len(mc.Outputs) == 0 {
		t.Fatal("no output distributions")
	}
	refBy := map[string]Arrival{}
	for _, a := range ref.Arrivals {
		refBy[a.Net+"/"+a.Dir] = a
	}
	for _, od := range mc.Outputs {
		a, ok := refBy[od.Net+"/"+od.Dir]
		if !ok {
			t.Fatalf("MC reports %s %s with no deterministic counterpart", od.Net, od.Dir)
		}
		// Both sides compute time*1e12 from the same engine float, so
		// equality here is exact, not approximate.
		if od.N != 1 || od.MinPs != a.TimePs || od.MaxPs != a.TimePs ||
			od.P50Ps != a.TimePs || od.P99Ps != a.TimePs || od.StdPs != 0 {
			t.Fatalf("sigma-0 dist %+v != deterministic arrival %v ps", od, a.TimePs)
		}
	}

	// A spread run: ordered percentiles, criticality, corners, histogram.
	code = post(t, ts.URL+"/v1/analyze:mc", MCRequest{
		Netlist: up.ID, Vector: testVector(0), Samples: 64, Seed: 7, Sigma: 0.05,
		Corners: []string{"slow", "typ", "fast"}, Bins: 8,
	}, &mc)
	if code != 200 {
		t.Fatalf("mc spread status %d", code)
	}
	spread := false
	for _, od := range mc.Outputs {
		if !(od.MinPs <= od.P50Ps && od.P50Ps <= od.P95Ps && od.P95Ps <= od.P99Ps && od.P99Ps <= od.MaxPs) {
			t.Fatalf("percentiles out of order: %+v", od)
		}
		if od.StdPs > 0 {
			spread = true
		}
		if od.Hist == nil || len(od.Hist.Counts) != 8 {
			t.Fatalf("missing or mis-sized histogram: %+v", od.Hist)
		}
	}
	if !spread {
		t.Fatal("sigma 0.05 produced zero spread on the wire")
	}
	if len(mc.Criticality) == 0 {
		t.Fatal("no criticality entries")
	}
	for _, gc := range mc.Criticality {
		if gc.Gate == "" || gc.Out == "" || gc.Count <= 0 || gc.Probability <= 0 || gc.Probability > 1 {
			t.Fatalf("malformed criticality entry %+v", gc)
		}
	}
	if len(mc.Corners) != 3 {
		t.Fatalf("got %d corners, want 3", len(mc.Corners))
	}
	for _, cr := range mc.Corners {
		if cr.Name == "typ" {
			for _, a := range cr.Arrivals {
				if r, ok := refBy[a.Net+"/"+a.Dir]; !ok || r.TimePs != a.TimePs || r.TTPs != a.TTPs {
					t.Fatalf("typ corner arrival %+v differs from deterministic %+v", a, r)
				}
			}
		}
	}

	// Workload accounting: 1 + 64 samples drawn over two runs.
	if got := srv.Metrics().MCSamples.Value(); got != 65 {
		t.Fatalf("MCSamples = %d, want 65", got)
	}
	if got := srv.Metrics().MCRuns.Value(); got != 2 {
		t.Fatalf("MCRuns = %d, want 2", got)
	}
}

// TestMCValidationHTTP: every malformed MC request is a 400 naming the
// offending field (404 for a missing netlist), mirroring the Go-API table in
// internal/sta (NaN sigma cannot transit JSON, so it is covered there).
func TestMCValidationHTTP(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	up := uploadTestNetlist(t, ts.URL)
	ok := func(req MCRequest) MCRequest {
		if req.Netlist == "" {
			req.Netlist = up.ID
		}
		if req.Vector == nil {
			req.Vector = testVector(0)
		}
		return req
	}
	cases := []struct {
		name   string
		req    MCRequest
		status int
		field  string
	}{
		{"zero samples", ok(MCRequest{Samples: 0, Sigma: 0.1}), 400, "samples"},
		{"negative samples", ok(MCRequest{Samples: -3, Sigma: 0.1}), 400, "samples"},
		{"oversized samples", ok(MCRequest{Samples: maxMCSamples + 1, Sigma: 0.1}), 400, "samples"},
		{"negative sigma", ok(MCRequest{Samples: 4, Sigma: -0.5}), 400, "sigma"},
		{"negative bins", ok(MCRequest{Samples: 4, Bins: -1}), 400, "bins"},
		{"unknown corner", ok(MCRequest{Samples: 4, Corners: []string{"ss"}}), 400, "corner"},
		{"unknown mode", ok(MCRequest{Samples: 4, Mode: "typo"}), 400, "mode"},
		{"unknown netlist", MCRequest{Netlist: "n999", Vector: testVector(0), Samples: 4}, 404, "netlist"},
		{"empty vector", MCRequest{Netlist: up.ID, Samples: 4}, 400, "vector"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var er ErrorResponse
			if code := post(t, ts.URL+"/v1/analyze:mc", tc.req, &er); code != tc.status {
				t.Fatalf("status %d, want %d (error %q)", code, tc.status, er.Error)
			}
			if !strings.Contains(er.Error, tc.field) {
				t.Fatalf("error %q does not name %q", er.Error, tc.field)
			}
		})
	}
}

// TestMCWeightedAdmission: MC requests cost 1 + samples/256 admission tokens
// (capped at the semaphore size), so a heavy run is refused with 429 when the
// budget cannot cover it and a partial acquisition rolls back cleanly.
func TestMCWeightedAdmission(t *testing.T) {
	srv, ts := newTestServer(t, Config{MaxInflight: 4})
	up := uploadTestNetlist(t, ts.URL)

	if w := srv.mcWeight(100); w != 1 {
		t.Fatalf("mcWeight(100) = %d, want 1", w)
	}
	if w := srv.mcWeight(768); w != 4 {
		t.Fatalf("mcWeight(768) = %d, want 4", w)
	}
	if w := srv.mcWeight(maxMCSamples); w != 4 {
		t.Fatalf("mcWeight(max) = %d, want cap 4", w)
	}

	// Occupy three of four tokens: a weight-4 request must be refused and
	// must not leak the one remaining token while failing.
	if !srv.admit(3) {
		t.Fatal("admit(3) on an idle 4-token server failed")
	}
	req := MCRequest{Netlist: up.ID, Vector: testVector(0), Samples: 768, Sigma: 0.01}
	var er ErrorResponse
	if code := post(t, ts.URL+"/v1/analyze:mc", req, &er); code != http.StatusTooManyRequests {
		t.Fatalf("heavy MC under load: status %d, want 429 (%q)", code, er.Error)
	}
	if got := srv.InFlight(); got != 3 {
		t.Fatalf("failed admission leaked tokens: inFlight %d, want 3", got)
	}
	// A light MC run (weight 1) still fits the remaining token.
	light := MCRequest{Netlist: up.ID, Vector: testVector(0), Samples: 8, Sigma: 0.01}
	var mc MCResponse
	if code := post(t, ts.URL+"/v1/analyze:mc", light, &mc); code != 200 {
		t.Fatalf("light MC under load: status %d", code)
	}
	srv.release(3)
	if code := post(t, ts.URL+"/v1/analyze:mc", req, &mc); code != 200 {
		t.Fatalf("heavy MC after release: status %d", code)
	}
	if got := srv.InFlight(); got != 0 {
		t.Fatalf("tokens leaked after completion: inFlight %d", got)
	}
}

// TestHealthzOccupancy: /healthz reports how full the netlist and baseline
// caches are and how much of the admission budget is committed.
func TestHealthzOccupancy(t *testing.T) {
	srv, ts := newTestServer(t, Config{MaxInflight: 8, MaxNetlists: 16, MaxBaselines: 32})
	up := uploadTestNetlist(t, ts.URL)
	var ar AnalyzeResponse
	if code := post(t, ts.URL+"/v1/analyze",
		AnalyzeRequest{Netlist: up.ID, Vector: testVector(0), KeepBaseline: true}, &ar); code != 200 {
		t.Fatalf("analyze status %d", code)
	}
	if ar.BaselineID == "" {
		t.Fatal("no baseline handle")
	}
	srv.admit(2)
	defer srv.release(2)

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"netlists": 1, "maxNetlists": 16,
		"baselines": 1, "maxBaselines": 32,
		"inFlight": 2, "maxInflight": 8,
	}
	for k, v := range want {
		if got, ok := h[k].(float64); !ok || got != v {
			t.Fatalf("healthz %q = %v, want %v (full reply %v)", k, h[k], v, h)
		}
	}
	if h["status"] != "ok" {
		t.Fatalf("healthz status %v", h["status"])
	}
}
