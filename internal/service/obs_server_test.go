package service

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"strings"
	"testing"

	"repro/internal/obs"
)

// validateTraceDoc runs the Chrome trace validator over an inline trace
// document from an analyze response.
func validateTraceDoc(doc json.RawMessage) ([]obs.TraceEvent, error) {
	return obs.ValidateChromeTrace(doc)
}

// ?trace=1 must return a loadable Chrome trace inline; without it the field
// must be absent entirely, and the arrivals must be identical either way.
func TestAnalyzeTraceParam(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	up := uploadTestNetlist(t, ts.URL)
	req := AnalyzeRequest{Netlist: up.ID, Vector: testVector(0)}

	var plainRaw, tracedRaw map[string]json.RawMessage
	if code := post(t, ts.URL+"/v1/analyze", req, &plainRaw); code != 200 {
		t.Fatalf("plain analyze status %d", code)
	}
	if code := post(t, ts.URL+"/v1/analyze?trace=1", req, &tracedRaw); code != 200 {
		t.Fatalf("traced analyze status %d", code)
	}
	if _, present := plainRaw["trace"]; present {
		t.Fatal("untraced response carries a trace field")
	}
	traceDoc, present := tracedRaw["trace"]
	if !present {
		t.Fatal("traced response has no trace field")
	}
	if !bytes.Equal(plainRaw["arrivals"], tracedRaw["arrivals"]) {
		t.Fatalf("tracing changed the arrivals:\n%s\nvs\n%s", plainRaw["arrivals"], tracedRaw["arrivals"])
	}

	// The inline trace must be the Chrome JSON Object Format, well formed.
	evs, err := validateTraceDoc(traceDoc)
	if err != nil {
		t.Fatalf("inline trace invalid: %v", err)
	}
	found := false
	for _, e := range evs {
		if e.Ph == "X" && e.Name == "analyze" {
			found = true
		}
	}
	if !found {
		t.Fatal("inline trace has no analyze span")
	}
}

// /v1/explain must return, per requested net, the structured decision trace
// and a human report consistent with the committed arrivals.
func TestExplainEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	up := uploadTestNetlist(t, ts.URL)
	var resp ExplainResponse
	code := post(t, ts.URL+"/v1/explain", ExplainRequest{
		Netlist: up.ID,
		Nets:    []string{"x", "z", "a"},
		Vector:  testVector(0),
	}, &resp)
	if code != 200 {
		t.Fatalf("explain status %d", code)
	}
	if len(resp.Nets) != 3 {
		t.Fatalf("%d nets explained, want 3", len(resp.Nets))
	}
	x := resp.Nets[0]
	if x.Net != "x" || x.Gate != "g1" || x.Type != "nand3" {
		t.Fatalf("net x explanation wrong: %+v", x)
	}
	if !strings.Contains(x.Report, "dominance order") {
		t.Fatalf("net x report has no dominance section:\n%s", x.Report)
	}
	if len(x.Dirs) == 0 || x.Dirs[0].Proximity == nil {
		t.Fatalf("net x detail carries no proximity trace")
	}
	if len(x.Dirs[0].Inputs) == 0 {
		t.Fatalf("net x detail lists no presented inputs")
	}
	if !resp.Nets[2].PI {
		t.Fatalf("net a not reported as a primary input")
	}

	// Unknown nets are a 400 naming the net; empty net lists are a 400.
	var er ErrorResponse
	if code := post(t, ts.URL+"/v1/explain", ExplainRequest{Netlist: up.ID, Nets: []string{"nope"}, Vector: testVector(0)}, &er); code != 400 || !strings.Contains(er.Error, "nope") {
		t.Fatalf("unknown net: status %d, err %q", code, er.Error)
	}
	if code := post(t, ts.URL+"/v1/explain", ExplainRequest{Netlist: up.ID, Vector: testVector(0)}, &er); code != 400 {
		t.Fatalf("empty nets: status %d", code)
	}
}

// Every guarded request must answer with an X-Request-Id (honoring a
// caller-supplied one) and emit one structured log line carrying it.
func TestRequestIDLogging(t *testing.T) {
	var logBuf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&logBuf, nil))
	_, ts := newTestServer(t, Config{Workers: 1, Logger: logger})
	up := uploadTestNetlist(t, ts.URL)

	body, _ := json.Marshal(AnalyzeRequest{Netlist: up.ID, Vector: testVector(0)})
	req, err := http.NewRequest("POST", ts.URL+"/v1/analyze", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-Id", "caller-chose-this")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got != "caller-chose-this" {
		t.Fatalf("supplied request id not honored: %q", got)
	}

	// A request without the header gets a server-minted id.
	body2, _ := json.Marshal(AnalyzeRequest{Netlist: up.ID, Vector: testVector(0)})
	resp2, err := http.Post(ts.URL+"/v1/analyze", "application/json", bytes.NewReader(body2))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	minted := resp2.Header.Get("X-Request-Id")
	if minted == "" {
		t.Fatal("no X-Request-Id minted")
	}

	// The log carries one line per request with id, endpoint, and status.
	lines := strings.Split(strings.TrimSpace(logBuf.String()), "\n")
	byID := map[string]map[string]any{}
	for _, line := range lines {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("log line is not JSON: %q", line)
		}
		if id, ok := rec["id"].(string); ok {
			byID[id] = rec
		}
	}
	for _, id := range []string{"caller-chose-this", minted} {
		rec, ok := byID[id]
		if !ok {
			t.Fatalf("no log line for request %q; log:\n%s", id, logBuf.String())
		}
		if rec["endpoint"] != "analyze" || rec["status"].(float64) != 200 {
			t.Fatalf("log line for %q wrong: %v", id, rec)
		}
	}
}
