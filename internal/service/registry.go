// Package service turns the proximity-delay STA engine into a long-lived
// HTTP/JSON timing-analysis server: a model registry amortizes loading
// characterized GateModel JSON across requests, uploaded netlists are
// levelized once into reusable sta.Compiled handles, and stimulus vectors
// stream through the batched analyze API under a bounded worker budget.
// Everything is stdlib-only (net/http, expvar) — no external dependencies.
package service

import (
	"container/list"
	"fmt"
	"path/filepath"
	"sync"

	"repro/internal/core"
	"repro/internal/macromodel"
)

// Registry loads charz-produced GateModel JSON files from a library
// directory into an LRU cache of ready-to-evaluate calculators. Loads are
// deduplicated singleflight-style: concurrent requests for the same cell
// deserialize (and validate) the file exactly once, with every waiter
// handed the one result. Failed loads are not cached, so a fixed file is
// picked up on the next request.
type Registry struct {
	dir string
	cap int

	mu      sync.Mutex
	entries map[string]*regEntry
	lru     *list.List // front = most recently used; values are *regEntry

	hits       int64 // requests answered by a resident or in-flight entry
	misses     int64 // requests that had to read the file (one per load)
	evictions  int64
	loadErrors int64

	// testLoadHook, when non-nil, runs inside load before the file read —
	// tests use it to hold a load open and prove concurrent requests
	// coalesce onto it instead of loading again.
	testLoadHook func(name string)
}

// regEntry is one cell's cache slot. ready is closed when the load
// completes (calc/err are immutable afterwards); elem is nil while the load
// is still in flight — such entries live in the map but not yet in the LRU
// list. Eviction additionally skips any entry whose load has not finished
// (see evictExcess): evicting an in-flight entry would detach it from the
// map while its loader still holds it, so a concurrent requester of the
// same cold cell would start a duplicate disk load and re-insert a second,
// stale entry over the first.
type regEntry struct {
	name  string
	elem  *list.Element
	ready chan struct{}
	calc  *core.Calculator
	err   error
}

// loaded reports whether the entry's load has completed (success or
// failure). Must not be called with calc/err access before it returns true.
func (e *regEntry) loaded() bool {
	select {
	case <-e.ready:
		return true
	default:
		return false
	}
}

// NewRegistry serves models from dir, keeping at most capacity cells
// resident (minimum 1; a typical standard-cell library working set is
// small, so the default server uses a few dozen slots).
func NewRegistry(dir string, capacity int) *Registry {
	if capacity < 1 {
		capacity = 1
	}
	return &Registry{
		dir:     dir,
		cap:     capacity,
		entries: map[string]*regEntry{},
		lru:     list.New(),
	}
}

// RegistryStats is a point-in-time snapshot of the cache counters.
type RegistryStats struct {
	Hits       int64 `json:"hits"`
	Misses     int64 `json:"misses"`
	Evictions  int64 `json:"evictions"`
	LoadErrors int64 `json:"loadErrors"`
	Resident   int   `json:"resident"`
}

// Stats snapshots the counters.
func (r *Registry) Stats() RegistryStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return RegistryStats{
		Hits:       r.hits,
		Misses:     r.misses,
		Evictions:  r.evictions,
		LoadErrors: r.loadErrors,
		Resident:   r.lru.Len(),
	}
}

// Get returns the calculator for a cell name, loading <dir>/<name>.json on
// first use. Safe for concurrent use; a request for a cell whose load is in
// flight blocks until that one load finishes and shares its outcome.
func (r *Registry) Get(name string) (*core.Calculator, error) {
	if err := checkCellName(name); err != nil {
		return nil, err
	}
	r.mu.Lock()
	if e, ok := r.entries[name]; ok {
		r.hits++
		if e.elem != nil {
			r.lru.MoveToFront(e.elem)
		}
		r.mu.Unlock()
		<-e.ready
		if e.err != nil {
			return nil, e.err
		}
		return e.calc, nil
	}
	e := &regEntry{name: name, ready: make(chan struct{})}
	r.entries[name] = e
	r.misses++
	r.mu.Unlock()

	calc, err := r.load(name)

	r.mu.Lock()
	e.calc, e.err = calc, err
	close(e.ready)
	if err != nil {
		r.loadErrors++
		delete(r.entries, name) // don't cache failures; retry next request
	} else {
		e.elem = r.lru.PushFront(e)
		r.evictExcess()
	}
	r.mu.Unlock()
	return calc, err
}

// evictExcess trims the LRU down to capacity, walking from the cold end.
// Entries whose load has not completed are skipped rather than evicted:
// dropping one mid-load would orphan the waiters parked on its ready
// channel from the map, and a concurrent Get for the same cell would kick
// off a duplicate load of a file already being read. (In-flight entries
// normally are not in the LRU at all — elem is nil until the load lands —
// but the skip keeps the invariant local to this function instead of
// depending on that.) Caller must hold r.mu.
func (r *Registry) evictExcess() {
	for el := r.lru.Back(); el != nil && r.lru.Len() > r.cap; {
		victim := el.Value.(*regEntry)
		prev := el.Prev()
		if victim.loaded() {
			r.lru.Remove(el)
			victim.elem = nil
			delete(r.entries, victim.name)
			r.evictions++
		}
		el = prev
	}
}

// load reads, validates (macromodel.Load checks grid ranks and axes) and
// wraps one model file.
func (r *Registry) load(name string) (*core.Calculator, error) {
	if r.testLoadHook != nil {
		r.testLoadHook(name)
	}
	path := filepath.Join(r.dir, name+".json")
	m, err := macromodel.Load(path)
	if err != nil {
		return nil, fmt.Errorf("service: cell %q: %w", name, err)
	}
	return core.NewCalculator(m), nil
}

// checkCellName keeps registry keys inside the library directory: plain
// names only, no path separators or traversal.
func checkCellName(name string) error {
	if name == "" {
		return fmt.Errorf("service: empty cell name")
	}
	for _, c := range name {
		ok := c == '_' || c == '-' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
		if !ok {
			return fmt.Errorf("service: bad cell name %q (want [A-Za-z0-9_-]+)", name)
		}
	}
	return nil
}
