package service

import (
	"container/list"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/sta"
	"repro/internal/waveform"
)

// Config tunes a Server. The zero value of every field picks a sane
// production default.
type Config struct {
	// Registry supplies cell calculators (required).
	Registry *Registry
	// Workers is the sta.Options.Workers budget handed to every analysis
	// (0 = one per CPU, the engine default).
	Workers int
	// MaxInflight bounds concurrently admitted analysis/upload requests;
	// request MaxInflight+1 is answered 429 with Retry-After instead of
	// queueing unboundedly. Default 64.
	MaxInflight int
	// RequestTimeout is the per-request context budget; an analysis that
	// outlives it is abandoned at the next level boundary and answered 504.
	// Default 30s.
	RequestTimeout time.Duration
	// MaxNetlists bounds resident compiled netlists; the least recently
	// used handle is evicted beyond it (clients see 404 and re-upload).
	// Default 64.
	MaxNetlists int
	// MaxBaselines bounds cached baseline results for delta analysis
	// (/v1/analyze with keepBaseline, /v1/analyze:delta), LRU-evicted like
	// the netlist registry. Evicting a netlist also drops its baselines —
	// a baseline indexes the compiled handle's arrival slab and is
	// meaningless without it. Default 128.
	MaxBaselines int
	// Dense disables cone-pruned sparse scheduling (stad -sparse=false).
	// Results are bit-identical either way; dense also sheds the per-netlist
	// cone tables. Default false: analyses schedule only the gates inside
	// the stimulated inputs' fanout cones, reusing the cones precomputed on
	// the uploaded netlist's compiled handle across every request and batch
	// vector that names it.
	Dense bool
	// Logger receives one structured line per request (id, method, path,
	// status, duration, engine cost) plus admission rejections. Nil discards
	// the logs — tests and embedded uses stay silent by default.
	Logger *slog.Logger
	// FlightRecorderSize bounds the wide-event ring behind /v1/debug/requests
	// (one record per request: ids, status, phase breakdown, engine
	// counters). 0 picks obs.DefaultFlightSize; negative disables the flight
	// recorder entirely — no ring, no per-request span recording, no debug
	// query surface (the recorder-off reference the bench guard measures).
	FlightRecorderSize int
	// TailThreshold is the latency above which a request's full span trace
	// is retained after the fact (tail sampling). Requests that error or ask
	// ?trace=1 are retained regardless. 0 picks 250ms; negative retains only
	// errored/flagged requests.
	TailThreshold time.Duration
	// MaxRetainedTraces bounds the retained Chrome trace artifacts (FIFO
	// beyond it). Default 32 — the black box keeps the recent anomalies, not
	// an archive.
	MaxRetainedTraces int
	// TraceEventCap bounds span events recorded per request; beyond it spans
	// are dropped and counted in the wide event's traceDropped. 0 picks
	// 8192; negative means unlimited.
	TraceEventCap int
	// WideLog, when non-nil, additionally receives every wide event as one
	// JSON line (stad -wide-log): the durable twin of the in-memory ring.
	WideLog io.Writer
}

// Server is the timing-analysis HTTP service. It implements http.Handler;
// mount it directly or via Handler().
//
//	POST /v1/netlists       upload + levelize a netlist, get a handle
//	POST /v1/analyze        one stimulus vector against a handle (?trace=1
//	                        adds a Chrome trace_event document to the reply;
//	                        keepBaseline caches the result for delta queries)
//	POST /v1/analyze:delta  re-time a cached baseline under a stimulus edit,
//	                        re-evaluating only the gates the edit can reach
//	POST /v1/analyze:batch  a vector set through AnalyzeBatch
//	POST /v1/analyze:mc     Monte-Carlo analysis under process variation:
//	                        per-output arrival distributions, criticality,
//	                        corner presets (admission-weighted by samples)
//	POST /v1/explain        per-net proximity decision traces for one vector
//	GET  /healthz           liveness + cache/admission occupancy
//	GET  /metrics           counters + latency/phase histograms (JSON;
//	                        ?format=prom for Prometheus text exposition)
type Server struct {
	cfg     Config
	metrics *Metrics
	mux     *http.ServeMux
	sem     chan struct{}
	log     *slog.Logger

	// flight is the wide-event ring (nil when disabled); traces holds the
	// tail-sampled Chrome trace artifacts keyed by request id; wideLog
	// mirrors every wide event to the configured writer (nil discards).
	flight  *obs.FlightRecorder
	traces  *traceStore
	wideLog *obs.WideLog

	// instance is a random token distinguishing this server's generated
	// request IDs from another instance's; reqSeq numbers requests within it.
	instance string
	reqSeq   atomic.Int64

	mu       sync.Mutex
	netlists map[string]*netlistEntry
	order    *list.List // front = most recently used; values are *netlistEntry
	nextID   int

	// Baseline results cached for delta analysis, LRU-bounded like the
	// netlist registry and guarded by the same mutex (netlist eviction
	// must atomically drop the victim's baselines).
	baselines map[string]*baselineEntry
	blOrder   *list.List // front = most recently used; values are *baselineEntry
	nextBID   int
}

// netlistEntry is one uploaded netlist: the circuit compiled (levelized)
// exactly once at upload, reused by every analyze request that names it.
type netlistEntry struct {
	id       string
	compiled *sta.Compiled
	elem     *list.Element
}

// baselineEntry is one cached analysis result, pinned to the netlist handle
// it was computed against.
type baselineEntry struct {
	id        string
	netlistID string
	res       *sta.Result
	elem      *list.Element
}

// New builds a Server over a registry.
func New(cfg Config) *Server {
	if cfg.Registry == nil {
		panic("service: Config.Registry is required")
	}
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = 64
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 30 * time.Second
	}
	if cfg.MaxNetlists <= 0 {
		cfg.MaxNetlists = 64
	}
	if cfg.MaxBaselines <= 0 {
		cfg.MaxBaselines = 128
	}
	if cfg.TailThreshold == 0 {
		cfg.TailThreshold = 250 * time.Millisecond
	}
	if cfg.MaxRetainedTraces <= 0 {
		cfg.MaxRetainedTraces = 32
	}
	if cfg.TraceEventCap == 0 {
		cfg.TraceEventCap = 8192
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	tok := make([]byte, 4)
	rand.Read(tok)
	s := &Server{
		cfg:       cfg,
		metrics:   newMetrics(),
		mux:       http.NewServeMux(),
		sem:       make(chan struct{}, cfg.MaxInflight),
		log:       logger,
		instance:  hex.EncodeToString(tok),
		netlists:  map[string]*netlistEntry{},
		order:     list.New(),
		baselines: map[string]*baselineEntry{},
		blOrder:   list.New(),
	}
	if cfg.FlightRecorderSize >= 0 {
		s.flight = obs.NewFlightRecorder(cfg.FlightRecorderSize)
		s.traces = newTraceStore(cfg.MaxRetainedTraces)
	}
	s.wideLog = obs.NewWideLog(cfg.WideLog)
	s.mux.HandleFunc("POST /v1/netlists", s.guard("netlists", s.handleUpload))
	s.mux.HandleFunc("POST /v1/analyze", s.guard("analyze", s.handleAnalyze))
	s.mux.HandleFunc("POST /v1/analyze:delta", s.guard("analyze:delta", s.handleDelta))
	s.mux.HandleFunc("POST /v1/analyze:batch", s.guard("analyze:batch", s.handleBatch))
	// MC admits itself with a samples-weighted token count, so it takes the
	// bare instrumentation wrapper rather than the unit-weight guard.
	s.mux.HandleFunc("POST /v1/analyze:mc", s.instrument("analyze:mc", s.handleMC))
	s.mux.HandleFunc("POST /v1/explain", s.guard("explain", s.handleExplain))
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	// The debug surface is deliberately outside the admission guard and the
	// flight recorder itself: reading the black box must work (and leave no
	// record) even when the service is saturated — that is exactly when an
	// operator reaches for it.
	s.mux.HandleFunc("GET /v1/debug/requests", s.handleDebugRequests)
	s.mux.HandleFunc("GET /v1/debug/requests/{id}", s.handleDebugRequest)
	return s
}

// ServeHTTP dispatches to the service mux.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Handler returns the service as an http.Handler (identical to the Server
// itself; kept for mounting clarity).
func (s *Server) Handler() http.Handler { return s }

// Metrics exposes the server's counters (for tests and the bench harness).
func (s *Server) Metrics() *Metrics { return s.metrics }

// InFlight reports how many guarded requests are currently admitted — the
// number a graceful drain is waiting out.
func (s *Server) InFlight() int { return len(s.sem) }

// ---- wire types ------------------------------------------------------------

// Event is one primary-input stimulus on the wire. Times are picoseconds,
// matching the CLI event syntax net:dir:tt_ps:time_ps.
type Event struct {
	Net    string  `json:"net"`
	Dir    string  `json:"dir"` // "rise" | "fall" (single letters accepted)
	TTPs   float64 `json:"ttPs"`
	TimePs float64 `json:"timePs"`
}

// UploadRequest carries a netlist in the text format sta.ParseNetlist reads.
type UploadRequest struct {
	Netlist string `json:"netlist"`
}

// UploadResponse describes the compiled handle.
type UploadResponse struct {
	ID      string   `json:"id"`
	Gates   int      `json:"gates"`
	Levels  int      `json:"levels"`
	Inputs  []string `json:"inputs"`
	Outputs []string `json:"outputs"`
}

// AnalyzeRequest runs one vector against an uploaded netlist. KeepBaseline
// caches the result server-side and returns a baselineId for
// /v1/analyze:delta queries against it.
type AnalyzeRequest struct {
	Netlist      string  `json:"netlist"`
	Mode         string  `json:"mode,omitempty"` // "prox" (default) | "conv"
	Nets         string  `json:"nets,omitempty"` // "outputs" (default) | "all"
	Vector       []Event `json:"vector"`
	KeepBaseline bool    `json:"keepBaseline,omitempty"`
	// PulseFilter applies the Section-6 inertial-delay model to opposite-edge
	// output pairs: runt pulses below the pair's minimum separation are
	// absorbed, survivors propagate a degraded transition time. Composes with
	// KeepBaseline — /v1/analyze:delta re-judges edited cones under the same
	// filtering and inherits every untouched verdict.
	PulseFilter bool `json:"pulseFilter,omitempty"`
}

// RemoveEvent names one baseline primary-input event a delta withdraws.
type RemoveEvent struct {
	Net string `json:"net"`
	Dir string `json:"dir"` // "rise" | "fall" (single letters accepted)
}

// DeltaRequest re-times a cached baseline under a stimulus edit: Remove
// withdraws baseline events, Set adds or replaces them (removes apply
// first). The analysis mode is the baseline's. Netlist is optional — when
// present it must match the netlist the baseline was computed against.
// KeepBaseline caches the delta result as a new baseline, so edit chains
// never re-analyze from scratch.
type DeltaRequest struct {
	Netlist      string        `json:"netlist,omitempty"`
	Baseline     string        `json:"baseline"`
	Nets         string        `json:"nets,omitempty"` // "outputs" (default) | "all"
	Set          []Event       `json:"set,omitempty"`
	Remove       []RemoveEvent `json:"remove,omitempty"`
	KeepBaseline bool          `json:"keepBaseline,omitempty"`
	// PulseFilter must state how the baseline was analyzed: filtering is an
	// analysis semantic the delta inherits, so a mismatch is a 4xx rather
	// than a silent re-interpretation of the baseline.
	PulseFilter bool `json:"pulseFilter,omitempty"`
}

// BatchRequest fans a vector set through AnalyzeBatch.
type BatchRequest struct {
	Netlist string    `json:"netlist"`
	Mode    string    `json:"mode,omitempty"`
	Nets    string    `json:"nets,omitempty"`
	Vectors [][]Event `json:"vectors"`
	// PulseFilter applies Section-6 pulse filtering to every vector.
	PulseFilter bool `json:"pulseFilter,omitempty"`
}

// Arrival is one reported net transition (picoseconds).
type Arrival struct {
	Net        string  `json:"net"`
	Dir        string  `json:"dir"`
	TimePs     float64 `json:"timePs"`
	TTPs       float64 `json:"ttPs"`
	UsedInputs int     `json:"usedInputs"`
}

// VectorResult is one vector's arrivals plus its workload counters.
// The pulse counters are non-zero only for pulseFilter requests: how many
// opposite-edge output pairs Section-6 filtering absorbed outright, how many
// survived with a degraded transition time, and how many carried no glitch
// model to judge them (propagated untouched — a model-coverage gap).
type VectorResult struct {
	Arrivals       []Arrival `json:"arrivals"`
	GatesEvaluated int       `json:"gatesEvaluated"`
	ProximityEvals int       `json:"proximityEvals"`
	SingleArcEvals int       `json:"singleArcEvals"`
	PulsesFiltered int       `json:"pulsesFiltered,omitempty"`
	PulsesDegraded int       `json:"pulsesDegraded,omitempty"`
	PulsesUnjudged int       `json:"pulsesUnjudged,omitempty"`
}

// AnalyzeResponse answers /v1/analyze. Trace is present only when the
// request asked for ?trace=1: the full Chrome trace_event document for this
// analysis, loadable directly in chrome://tracing or Perfetto.
type AnalyzeResponse struct {
	Mode string `json:"mode"`
	VectorResult
	// BaselineID is present when the request asked keepBaseline: the handle
	// /v1/analyze:delta takes.
	BaselineID string     `json:"baselineId,omitempty"`
	Trace      *obs.Trace `json:"trace,omitempty"`
}

// DeltaResponse answers /v1/analyze:delta. GatesReused/GatesReevaluated
// report how much of the baseline survived the edit — the whole point of
// the endpoint, so it is first-class in the reply.
type DeltaResponse struct {
	Mode string `json:"mode"`
	VectorResult
	GatesReevaluated int        `json:"gatesReevaluated"`
	GatesReused      int        `json:"gatesReused"`
	BaselineID       string     `json:"baselineId,omitempty"`
	Trace            *obs.Trace `json:"trace,omitempty"`
}

// ExplainRequest asks why an analysis produced the arrivals it did on the
// named nets. The vector is re-analyzed (explain is a post-pass over a
// Result; the analysis itself is cheap and cached at the compile level).
type ExplainRequest struct {
	Netlist string   `json:"netlist"`
	Mode    string   `json:"mode,omitempty"`
	Nets    []string `json:"nets"`
	Vector  []Event  `json:"vector"`
	// PulseFilter explains the vector under Section-6 pulse filtering: a
	// filtered or degraded net's story then includes the absorbed
	// opposite-edge pair and its separation margin.
	PulseFilter bool `json:"pulseFilter,omitempty"`
}

// NetExplainResult is one net's explanation: the structured decision trace
// plus the same human-readable report cmd/sta -explain prints. The engine's
// NetExplain carries live graph pointers (gates reference nets reference
// gates), so the wire shape flattens everything to names and picoseconds.
type NetExplainResult struct {
	Net    string           `json:"net"`
	PI     bool             `json:"pi,omitempty"`
	Gate   string           `json:"gate,omitempty"`
	Type   string           `json:"type,omitempty"`
	Report string           `json:"report"`
	Dirs   []ExplainDirWire `json:"dirs"`
	// Pulse is the Section-6 verdict recorded on this net, when the request
	// asked pulseFilter and filtering absorbed or degraded an opposite-edge
	// pair here.
	Pulse *PulseWire `json:"pulse,omitempty"`
}

// PulseWire is a Section-6 pulse-filtering verdict on the wire: the causing
// pin pair, the observed separation against the pair's inertial delay
// (picoseconds; minSepPs omitted when no characterized separation completes a
// transition), and either filtered=true (pair absorbed, nothing committed) or
// the transition-time degradation applied to the leading edge.
type PulseWire struct {
	FallPin  int     `json:"fallPin"`
	RisePin  int     `json:"risePin"`
	LeadDir  string  `json:"leadDir"`
	SepPs    float64 `json:"sepPs"`
	MinSepPs float64 `json:"minSepPs,omitempty"`
	ExtremeV float64 `json:"extremeV,omitempty"`
	Factor   float64 `json:"factor"`
	Filtered bool    `json:"filtered"`
	// Unjudged marks a runt-pulse-shaped pair the library carries no glitch
	// model for: it propagated untouched (factor 1), and sepPs is the
	// observed output pulse width rather than an input separation.
	Unjudged bool `json:"unjudged,omitempty"`
}

// ExplainDirWire is one explained output direction.
type ExplainDirWire struct {
	Dir     string             `json:"dir"`
	Arrival ExplainArrival     `json:"arrival"`
	Inputs  []ExplainInputWire `json:"inputs,omitempty"`
	// Proximity is the core decision trace (Proximity-mode results): the
	// dominance order, each pairwise absorption with its normalized table
	// coordinates, and every window-pruned input with the reason.
	Proximity *core.Explain `json:"proximity,omitempty"`
	// Arcs is the Conventional-mode story with the winner marked.
	Arcs []ConvArcWire `json:"arcs,omitempty"`
}

// ExplainArrival is an arrival without the engine's graph pointers.
type ExplainArrival struct {
	Dir        string  `json:"dir"`
	TimePs     float64 `json:"timePs"`
	TTPs       float64 `json:"ttPs"`
	FromPin    int     `json:"fromPin"`
	UsedInputs int     `json:"usedInputs"`
}

// ExplainInputWire is one input pin's presented arrival.
type ExplainInputWire struct {
	Pin     int            `json:"pin"`
	Net     string         `json:"net"`
	Arrival ExplainArrival `json:"arrival"`
}

// ConvArcWire is one conventional-mode arc on the wire.
type ConvArcWire struct {
	Pin       int     `json:"pin"`
	Net       string  `json:"net"`
	DelayPs   float64 `json:"delayPs"`
	OutTTPs   float64 `json:"outTtPs"`
	ArrivesPs float64 `json:"arrivesPs"`
	Winner    bool    `json:"winner"`
}

// ExplainResponse answers /v1/explain.
type ExplainResponse struct {
	Mode string             `json:"mode"`
	Nets []NetExplainResult `json:"nets"`
}

// BatchResponse answers /v1/analyze:batch, results indexed like the request
// vectors.
type BatchResponse struct {
	Mode    string         `json:"mode"`
	Results []VectorResult `json:"results"`
}

// MCRequest runs a Monte-Carlo analysis of one vector under process
// variation. Samples is required (1..65536); Sigma is the per-gate
// delay-multiplier standard deviation; Corners optionally names preset
// global corners ("slow", "typ", "fast") evaluated alongside the samples.
type MCRequest struct {
	Netlist string   `json:"netlist"`
	Mode    string   `json:"mode,omitempty"` // "prox" (default) | "conv"
	Vector  []Event  `json:"vector"`
	Samples int      `json:"samples"`
	Seed    uint64   `json:"seed,omitempty"`
	Sigma   float64  `json:"sigma,omitempty"`
	Corners []string `json:"corners,omitempty"`
	Bins    int      `json:"bins,omitempty"` // histogram bins (<= 0 picks 16)
	// PulseFilter applies Section-6 pulse filtering inside every sample and
	// corner; the response then reports glitch criticality — per gate, the
	// probability across samples that its runt pulse was absorbed or
	// propagated degraded.
	PulseFilter bool `json:"pulseFilter,omitempty"`
}

// MCHistWire is one output distribution's fixed-bin histogram (picoseconds).
type MCHistWire struct {
	LoPs   float64 `json:"loPs"`
	HiPs   float64 `json:"hiPs"`
	Counts []int   `json:"counts"`
}

// MCOutputDist is one primary output direction's arrival distribution over
// the samples, all times in picoseconds.
type MCOutputDist struct {
	Net    string      `json:"net"`
	Dir    string      `json:"dir"`
	N      int         `json:"n"` // samples in which this transition occurred
	MeanPs float64     `json:"meanPs"`
	StdPs  float64     `json:"stdPs"`
	MinPs  float64     `json:"minPs"`
	MaxPs  float64     `json:"maxPs"`
	P50Ps  float64     `json:"p50Ps"`
	P95Ps  float64     `json:"p95Ps"`
	P99Ps  float64     `json:"p99Ps"`
	Hist   *MCHistWire `json:"hist,omitempty"`
}

// MCCriticality is one gate's critical-path vote: the fraction of samples
// whose worst-output path ran through it.
type MCCriticality struct {
	Gate        string  `json:"gate"`
	Type        string  `json:"type"`
	Out         string  `json:"out"`
	Count       int     `json:"count"`
	Probability float64 `json:"probability"`
}

// MCGlitchCriticality is one gate's Section-6 verdict distribution over the
// samples: in how many (and what fraction of) samples process variation left
// its opposite-edge pair absorbed versus propagated degraded. Present only
// for pulseFilter requests.
type MCGlitchCriticality struct {
	Gate      string  `json:"gate"`
	Type      string  `json:"type"`
	Out       string  `json:"out"`
	Absorbed  int     `json:"absorbed"`
	Degraded  int     `json:"degraded"`
	PAbsorbed float64 `json:"pAbsorbed"`
	PDegraded float64 `json:"pDegraded"`
}

// MCCornerWire is one corner preset's deterministic arrivals.
type MCCornerWire struct {
	Name       string    `json:"name"`
	Multiplier float64   `json:"multiplier"`
	Arrivals   []Arrival `json:"arrivals"`
}

// MCResponse answers /v1/analyze:mc. The pulse counters sum the Section-6
// verdicts across every sample (corners excluded) for pulseFilter requests.
type MCResponse struct {
	Mode              string                `json:"mode"`
	Samples           int                   `json:"samples"`
	Seed              uint64                `json:"seed"`
	Sigma             float64               `json:"sigma"`
	Outputs           []MCOutputDist        `json:"outputs"`
	Criticality       []MCCriticality       `json:"criticality"`
	GlitchCriticality []MCGlitchCriticality `json:"glitchCriticality,omitempty"`
	Corners           []MCCornerWire        `json:"corners,omitempty"`
	GatesEvaluated    int                   `json:"gatesEvaluated"`
	PulsesFiltered    int                   `json:"pulsesFiltered,omitempty"`
	PulsesDegraded    int                   `json:"pulsesDegraded,omitempty"`
	PulsesUnjudged    int                   `json:"pulsesUnjudged,omitempty"`
}

// ErrorResponse is the body of every non-2xx answer.
type ErrorResponse struct {
	Error string `json:"error"`
}

// ---- plumbing --------------------------------------------------------------

// statusWriter captures the response code for metrics. A handler that
// calls Write without an explicit WriteHeader sends an implicit 200 — that
// must be recorded on the first Write, not left at the zero value (which
// would skew the per-class status counters and latency-by-status), and a
// later out-of-order WriteHeader must not overwrite it (net/http ignores
// the second header, so the metrics must too). For error responses the
// leading body bytes are kept, so the wide event can say what the client
// was actually told.
type statusWriter struct {
	http.ResponseWriter
	status  int // 0 until the handler commits a status
	errBody []byte
}

// errBodyCap bounds the error-body prefix retained per request.
const errBodyCap = 256

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	if w.status >= 400 && len(w.errBody) < errBodyCap {
		take := errBodyCap - len(w.errBody)
		if take > len(b) {
			take = len(b)
		}
		w.errBody = append(w.errBody, b[:take]...)
	}
	return w.ResponseWriter.Write(b)
}

// reqState travels down the handler chain in the request context: the
// request's identity (id + trace context), its always-on span recorder, and
// the wide-event fields the handler fills as it learns them. One goroutine
// (the handler's) writes it; instrument reads it after the handler returns.
type reqState struct {
	id            string
	tc            obs.TraceContext
	tr            *obs.Trace // nil when the flight recorder is disabled and ?trace=1 absent
	forceTrace    bool       // ?trace=1: inline trace in the response + unconditional retention
	admissionWait time.Duration
	wide          obs.WideEvent
}

type reqStateKey struct{}

// reqStateFrom returns the request's state (nil outside instrument, which
// every note helper tolerates).
func reqStateFrom(r *http.Request) *reqState {
	st, _ := r.Context().Value(reqStateKey{}).(*reqState)
	return st
}

// trace returns the request's span recorder (nil-safe).
func (st *reqState) trace() *obs.Trace {
	if st == nil {
		return nil
	}
	return st.tr
}

// noteNetlist records which compiled handle the request named and whether
// it was resident.
func (st *reqState) noteNetlist(id string, hit bool) {
	if st == nil {
		return
	}
	st.wide.Netlist = id
	st.wide.CacheHit = hit
}

// noteStats folds one analysis result's counters and phase breakdown into
// the request's wide event (batch requests call it once per vector).
func (st *reqState) noteStats(stats *sta.Stats) {
	if st == nil {
		return
	}
	w := &st.wide
	w.Vectors++
	w.GatesScheduled += stats.GatesScheduled
	w.GatesEvaluated += stats.GatesEvaluated
	w.GatesReused += stats.GatesReused
	w.GatesReevaluated += stats.GatesReevaluated
	w.ProximityEvals += stats.ProximityEvals
	w.SingleArcEvals += stats.SingleArcEvals
	w.PulsesFiltered += stats.PulsesFiltered
	w.PulsesDegraded += stats.PulsesDegraded
	w.PulsesUnjudged += stats.PulsesUnjudged
	for _, p := range obs.Phases() {
		w.Phases.Add(p, stats.Phases[p])
	}
}

// noteMCSamples records the Monte-Carlo sample count the request drew.
func (st *reqState) noteMCSamples(n int) {
	if st == nil {
		return
	}
	st.wide.MCSamples += n
}

// instrument wraps a handler with request identification (id + W3C trace
// context, both honored or minted and both echoed in the response headers),
// status capture, the always-on bounded span recorder, metrics, the wide
// event, and the per-request log line — everything except admission, which
// weighted endpoints (Monte-Carlo) decide after reading the request body.
func (s *Server) instrument(name string, h func(http.ResponseWriter, *http.Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := s.requestID(r)
		tc, ok := obs.ParseTraceparent(r.Header.Get("traceparent"))
		if ok {
			// Same trace id as the caller, our own span id downstream.
			tc = tc.Child()
		} else {
			tc = obs.NewTraceContext()
		}
		w.Header().Set("X-Request-Id", id)
		w.Header().Set("traceparent", tc.Header())
		st := &reqState{id: id, tc: tc, forceTrace: wantTrace(r)}
		if s.flight != nil || st.forceTrace {
			st.tr = obs.NewBoundedTrace(s.cfg.TraceEventCap)
			// Fine-grained (per-level, per-worker) spans only when the
			// caller asked for the trace: the passive tail-sampling
			// recorder rides along on every request and must stay cheap.
			st.tr.SetDetail(st.forceTrace)
			st.tr.SetTraceID(tc.TraceID)
		}
		r = r.WithContext(context.WithValue(r.Context(), reqStateKey{}, st))
		sw := &statusWriter{ResponseWriter: w}
		h(sw, r)
		status := sw.status
		if status == 0 {
			// The handler wrote nothing at all; net/http will send 200.
			status = http.StatusOK
		}
		d := time.Since(start)
		s.metrics.observe(name, status, d)
		ev := s.finishRequest(st, name, r, sw, status, start, d)
		s.log.Info("request", "id", id, "traceId", tc.TraceID, "endpoint", name,
			"method", r.Method, "path", r.URL.Path,
			"status", status, "durMs", float64(d.Microseconds())/1e3,
			"gatesEvaluated", ev.GatesEvaluated,
			"pulsesFiltered", ev.PulsesFiltered, "pulsesDegraded", ev.PulsesDegraded,
			"mcSamples", ev.MCSamples,
			"admissionWaitMs", float64(ev.AdmissionWait.Microseconds())/1e3)
	}
}

// admit non-blockingly acquires weight admission tokens. On failure it rolls
// back the partial acquisition and reports false — a heavy request never
// deadlocks against another heavy request by holding half its tokens.
func (s *Server) admit(weight int) bool {
	for i := 0; i < weight; i++ {
		select {
		case s.sem <- struct{}{}:
		default:
			for ; i > 0; i-- {
				<-s.sem
			}
			return false
		}
	}
	return true
}

// release returns weight admission tokens.
func (s *Server) release(weight int) {
	for i := 0; i < weight; i++ {
		<-s.sem
	}
}

// reject answers an admission failure: immediate 429 with a Retry-After hint
// — bounded latency beats an unbounded queue.
func (s *Server) reject(w http.ResponseWriter, r *http.Request, name string, weight int) {
	w.Header().Set("Retry-After", "1")
	writeError(w, http.StatusTooManyRequests,
		"server at capacity (%d admission tokens); retry", s.cfg.MaxInflight)
	s.log.Warn("request rejected", "id", w.Header().Get("X-Request-Id"), "endpoint", name,
		"method", r.Method, "path", r.URL.Path,
		"status", http.StatusTooManyRequests, "weight", weight, "maxInflight", s.cfg.MaxInflight)
}

// guard wraps a handler with unit-weight admission plus the per-request
// timeout and instrumentation. Every endpoint whose cost does not scale with
// a request-declared knob uses this.
func (s *Server) guard(name string, h func(http.ResponseWriter, *http.Request)) http.HandlerFunc {
	return s.instrument(name, func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		admitted := s.admit(1)
		if st := reqStateFrom(r); st != nil {
			st.admissionWait = time.Since(t0)
		}
		if !admitted {
			s.reject(w, r, name, 1)
			return
		}
		defer s.release(1)
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		h(w, r.WithContext(ctx))
	})
}

// requestID honors a caller-supplied X-Request-Id (so IDs correlate across
// a proxy chain) and otherwise mints one from the instance token plus a
// per-server sequence number.
func (s *Server) requestID(r *http.Request) string {
	if id := strings.TrimSpace(r.Header.Get("X-Request-Id")); id != "" && len(id) <= 128 {
		return id
	}
	return s.instance + "-" + strconv.FormatInt(s.reqSeq.Add(1), 10)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// decodeBody decodes a JSON request body with a size cap; analyze bodies
// are small, netlists can be large but bounded. The body must be exactly
// one JSON document: trailing garbage (`{"netlist":"n1"}{"junk":1}`) is an
// error, not silently ignored half-read.
func decodeBody(w http.ResponseWriter, r *http.Request, v any, limit int64) error {
	r.Body = http.MaxBytesReader(w, r.Body, limit)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return fmt.Errorf("trailing data after JSON document")
	}
	return nil
}

// StatusClientClosedRequest is the nginx convention for "the client went
// away before the response": not a timeout (the server had budget left),
// not a client syntax error — its own class, so p99 and timeout alerting
// stay clean when callers hang up mid-analyze.
const StatusClientClosedRequest = 499

// analysisError maps an engine error to a status: the request deadline
// expiring to 504, the client disconnecting (request context canceled) to
// 499, everything else (bad nets, bad events, missing dual models) to 400 —
// all are properties of the request or the uploaded artifacts, not of the
// server.
func analysisError(w http.ResponseWriter, err error) {
	if errors.Is(err, context.DeadlineExceeded) {
		writeError(w, http.StatusGatewayTimeout, "analysis timed out: %v", err)
		return
	}
	if errors.Is(err, context.Canceled) {
		writeError(w, StatusClientClosedRequest, "analysis canceled by client: %v", err)
		return
	}
	writeError(w, http.StatusBadRequest, "%v", err)
}

// ---- handlers --------------------------------------------------------------

// handleUpload parses and levelizes a netlist once, caching the compiled
// handle. Every cell type the netlist references is resolved through the
// registry — the first upload of a library pays the model loads, later
// uploads and every analyze hit the cache.
func (s *Server) handleUpload(w http.ResponseWriter, r *http.Request) {
	var req UploadRequest
	if err := decodeBody(w, r, &req, 64<<20); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if strings.TrimSpace(req.Netlist) == "" {
		writeError(w, http.StatusBadRequest, "empty netlist")
		return
	}
	lib := sta.NewLibrary()
	for _, typ := range scanGateTypes(req.Netlist) {
		calc, err := s.cfg.Registry.Get(typ)
		if err != nil {
			writeError(w, http.StatusBadRequest, "cell %q: %v", typ, err)
			return
		}
		lib.Add(typ, calc)
	}
	c, err := sta.ParseNetlist(strings.NewReader(req.Netlist), lib)
	if err != nil {
		writeError(w, http.StatusBadRequest, "parse: %v", err)
		return
	}
	compiled, err := c.Compile()
	if err != nil {
		writeError(w, http.StatusBadRequest, "compile: %v", err)
		return
	}

	s.mu.Lock()
	s.nextID++
	e := &netlistEntry{id: fmt.Sprintf("n%d", s.nextID), compiled: compiled}
	e.elem = s.order.PushFront(e)
	s.netlists[e.id] = e
	for s.order.Len() > s.cfg.MaxNetlists {
		back := s.order.Back()
		victim := back.Value.(*netlistEntry)
		s.order.Remove(back)
		delete(s.netlists, victim.id)
		s.dropBaselinesLocked(victim.id)
	}
	s.mu.Unlock()

	// The upload's wide event names the handle it created.
	reqStateFrom(r).noteNetlist(e.id, true)

	// Empty slices marshal as [] rather than null — clients iterating the
	// field must never have to special-case a missing array.
	resp := UploadResponse{
		ID:      e.id,
		Gates:   compiled.NumGates(),
		Levels:  compiled.NumLevels(),
		Inputs:  make([]string, 0, len(c.PIs)),
		Outputs: make([]string, 0, len(c.POs)),
	}
	for _, pi := range c.PIs {
		resp.Inputs = append(resp.Inputs, pi.Name)
	}
	for _, po := range c.POs {
		resp.Outputs = append(resp.Outputs, po.Name)
	}
	writeJSON(w, resp)
}

// lookupNetlist returns the compiled handle for an id, refreshing its LRU
// position.
func (s *Server) lookupNetlist(id string) (*sta.Compiled, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.netlists[id]
	if !ok {
		return nil, false
	}
	s.order.MoveToFront(e.elem)
	return e.compiled, true
}

// dropBaselinesLocked removes every baseline pinned to an evicted netlist.
// Caller holds s.mu.
func (s *Server) dropBaselinesLocked(netlistID string) {
	for id, b := range s.baselines {
		if b.netlistID == netlistID {
			s.blOrder.Remove(b.elem)
			delete(s.baselines, id)
		}
	}
}

// storeBaseline caches an analysis result for later delta queries and
// returns its handle, evicting the least recently used baseline beyond the
// configured bound.
func (s *Server) storeBaseline(netlistID string, res *sta.Result) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextBID++
	b := &baselineEntry{id: fmt.Sprintf("b%d", s.nextBID), netlistID: netlistID, res: res}
	b.elem = s.blOrder.PushFront(b)
	s.baselines[b.id] = b
	for s.blOrder.Len() > s.cfg.MaxBaselines {
		back := s.blOrder.Back()
		victim := back.Value.(*baselineEntry)
		s.blOrder.Remove(back)
		delete(s.baselines, victim.id)
	}
	return b.id
}

// lookupBaseline returns a cached baseline, refreshing its LRU position.
func (s *Server) lookupBaseline(id string) (*baselineEntry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.baselines[id]
	if !ok {
		return nil, false
	}
	s.blOrder.MoveToFront(b.elem)
	return b, true
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	var req AnalyzeRequest
	if err := decodeBody(w, r, &req, 16<<20); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	st := reqStateFrom(r)
	compiled, ok := s.lookupNetlist(req.Netlist)
	st.noteNetlist(req.Netlist, ok)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown netlist %q (expired or never uploaded)", req.Netlist)
		return
	}
	mode, err := parseMode(req.Mode)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	nets, err := parseNets(req.Nets)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	evs, err := resolveVector(compiled.Circuit(), req.Vector)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	opt := sta.Options{Workers: s.cfg.Workers, Dense: s.cfg.Dense, PulseFiltering: req.PulseFilter,
		Trace: st.trace()}
	res, err := compiled.Analyze(r.Context(), evs, mode, opt)
	if err != nil {
		analysisError(w, err)
		return
	}
	st.noteStats(&res.Stats)
	vr := buildVectorResult(compiled.Circuit(), res, nets)
	s.metrics.addStats(vr.GatesEvaluated, vr.ProximityEvals, vr.SingleArcEvals)
	s.metrics.addPulses(vr.PulsesFiltered, vr.PulsesDegraded, vr.PulsesUnjudged)
	s.metrics.observePhases(res.Stats.Phases)
	resp := AnalyzeResponse{Mode: mode.String(), VectorResult: vr}
	if st != nil && st.forceTrace {
		resp.Trace = st.tr
	}
	if req.KeepBaseline {
		resp.BaselineID = s.storeBaseline(req.Netlist, res)
	}
	writeJSON(w, resp)
}

// handleDelta re-times a cached baseline under a stimulus edit via the
// engine's delta propagation: only gates the edit can actually reach are
// re-evaluated, everything else keeps its baseline arrival bit for bit.
func (s *Server) handleDelta(w http.ResponseWriter, r *http.Request) {
	var req DeltaRequest
	if err := decodeBody(w, r, &req, 16<<20); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	st := reqStateFrom(r)
	bl, ok := s.lookupBaseline(req.Baseline)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown baseline %q (expired or never kept)", req.Baseline)
		return
	}
	if req.Netlist != "" && req.Netlist != bl.netlistID {
		writeError(w, http.StatusBadRequest, "baseline %q belongs to netlist %q, not %q",
			req.Baseline, bl.netlistID, req.Netlist)
		return
	}
	compiled, ok := s.lookupNetlist(bl.netlistID)
	st.noteNetlist(bl.netlistID, ok)
	if !ok {
		// The netlist was evicted between the two lookups; its baselines
		// are gone with it, the client re-uploads and re-baselines.
		writeError(w, http.StatusNotFound, "netlist %q behind baseline %q expired", bl.netlistID, req.Baseline)
		return
	}
	nets, err := parseNets(req.Nets)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	delta, err := resolveDelta(compiled.Circuit(), req.Set, req.Remove)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	opt := sta.Options{Workers: s.cfg.Workers, Dense: s.cfg.Dense, PulseFiltering: req.PulseFilter,
		Trace: st.trace()}
	res, err := compiled.AnalyzeDelta(r.Context(), bl.res, delta, opt)
	if err != nil {
		analysisError(w, err)
		return
	}
	st.noteStats(&res.Stats)
	vr := buildVectorResult(compiled.Circuit(), res, nets)
	s.metrics.addStats(vr.GatesEvaluated, vr.ProximityEvals, vr.SingleArcEvals)
	s.metrics.addPulses(vr.PulsesFiltered, vr.PulsesDegraded, vr.PulsesUnjudged)
	s.metrics.observeNonzeroPhases(res.Stats.Phases)
	resp := DeltaResponse{
		Mode:             res.Mode.String(),
		VectorResult:     vr,
		GatesReevaluated: res.Stats.GatesReevaluated,
		GatesReused:      res.Stats.GatesReused,
	}
	if st != nil && st.forceTrace {
		resp.Trace = st.tr
	}
	if req.KeepBaseline {
		resp.BaselineID = s.storeBaseline(bl.netlistID, res)
	}
	writeJSON(w, resp)
}

// wantTrace reports whether the request opted into span recording.
func wantTrace(r *http.Request) bool {
	switch r.URL.Query().Get("trace") {
	case "1", "true", "yes":
		return true
	}
	return false
}

// handleExplain re-analyzes one vector and returns the decision trace for
// each requested net: dominance order, pairwise absorptions, window prunes
// (Proximity mode) or per-arc delays with the winner marked (Conventional).
func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	var req ExplainRequest
	if err := decodeBody(w, r, &req, 16<<20); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if len(req.Nets) == 0 {
		writeError(w, http.StatusBadRequest, "no nets requested")
		return
	}
	st := reqStateFrom(r)
	compiled, ok := s.lookupNetlist(req.Netlist)
	st.noteNetlist(req.Netlist, ok)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown netlist %q (expired or never uploaded)", req.Netlist)
		return
	}
	mode, err := parseMode(req.Mode)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	evs, err := resolveVector(compiled.Circuit(), req.Vector)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	res, err := compiled.Analyze(r.Context(), evs, mode,
		sta.Options{Workers: s.cfg.Workers, Dense: s.cfg.Dense, PulseFiltering: req.PulseFilter,
			Trace: st.trace()})
	if err != nil {
		analysisError(w, err)
		return
	}
	st.noteStats(&res.Stats)
	s.metrics.observePhases(res.Stats.Phases)
	s.metrics.addPulses(res.Stats.PulsesFiltered, res.Stats.PulsesDegraded, res.Stats.PulsesUnjudged)
	nes, err := sta.ExplainNets(compiled.Circuit(), res, req.Nets)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	resp := ExplainResponse{Mode: mode.String(), Nets: make([]NetExplainResult, len(nes))}
	for i, ne := range nes {
		resp.Nets[i] = netExplainWire(ne)
	}
	writeJSON(w, resp)
}

func wireArrival(a sta.Arrival) ExplainArrival {
	return ExplainArrival{
		Dir: a.Dir.String(), TimePs: a.Time * 1e12, TTPs: a.TT * 1e12,
		FromPin: a.FromPin, UsedInputs: a.UsedInputs,
	}
}

// netExplainWire flattens an engine explanation onto the wire shape.
func netExplainWire(ne *sta.NetExplain) NetExplainResult {
	var sb strings.Builder
	ne.Format(&sb)
	out := NetExplainResult{
		Net: ne.Net, PI: ne.PI, Gate: ne.Gate, Type: ne.Type,
		Report: sb.String(), Dirs: []ExplainDirWire{},
	}
	if p := ne.Pulse; p != nil {
		pw := &PulseWire{
			FallPin: p.FallPin, RisePin: p.RisePin, LeadDir: p.LeadDir.String(),
			SepPs: p.Sep * 1e12, Factor: p.Factor, Filtered: p.Filtered, Unjudged: p.Unjudged,
		}
		if p.MinSepOK {
			pw.MinSepPs = p.MinSep * 1e12
		}
		if !p.Filtered && !p.Unjudged {
			pw.ExtremeV = p.Extreme
		}
		out.Pulse = pw
	}
	for _, de := range ne.Dirs {
		dw := ExplainDirWire{Dir: de.Dir.String(), Arrival: wireArrival(de.Arrival), Proximity: de.Proximity}
		for _, in := range de.Inputs {
			dw.Inputs = append(dw.Inputs, ExplainInputWire{Pin: in.Pin, Net: in.Net, Arrival: wireArrival(in.Arrival)})
		}
		for _, arc := range de.Arcs {
			dw.Arcs = append(dw.Arcs, ConvArcWire{
				Pin: arc.Pin, Net: arc.Net, DelayPs: arc.Delay * 1e12,
				OutTTPs: arc.OutTT * 1e12, ArrivesPs: arc.Arrives * 1e12, Winner: arc.Winner,
			})
		}
		out.Dirs = append(out.Dirs, dw)
	}
	return out
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if err := decodeBody(w, r, &req, 64<<20); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if len(req.Vectors) == 0 {
		writeError(w, http.StatusBadRequest, "empty vector set")
		return
	}
	st := reqStateFrom(r)
	compiled, ok := s.lookupNetlist(req.Netlist)
	st.noteNetlist(req.Netlist, ok)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown netlist %q (expired or never uploaded)", req.Netlist)
		return
	}
	mode, err := parseMode(req.Mode)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	nets, err := parseNets(req.Nets)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	batch := make([][]sta.PIEvent, len(req.Vectors))
	for i, vec := range req.Vectors {
		if batch[i], err = resolveVector(compiled.Circuit(), vec); err != nil {
			writeError(w, http.StatusBadRequest, "vector %d: %v", i, err)
			return
		}
	}
	results, err := compiled.AnalyzeBatch(r.Context(), batch, mode,
		sta.Options{Workers: s.cfg.Workers, Dense: s.cfg.Dense, PulseFiltering: req.PulseFilter,
			Trace: st.trace()})
	if err != nil {
		analysisError(w, err)
		return
	}
	resp := BatchResponse{Mode: mode.String(), Results: make([]VectorResult, len(results))}
	for i, res := range results {
		st.noteStats(&res.Stats)
		vr := buildVectorResult(compiled.Circuit(), res, nets)
		s.metrics.addStats(vr.GatesEvaluated, vr.ProximityEvals, vr.SingleArcEvals)
		s.metrics.addPulses(vr.PulsesFiltered, vr.PulsesDegraded, vr.PulsesUnjudged)
		s.metrics.observePhases(res.Stats.Phases)
		resp.Results[i] = vr
	}
	writeJSON(w, resp)
}

// maxMCSamples bounds a single Monte-Carlo request; beyond it the caller
// splits the run across requests (seeds compose: samples are pure functions
// of (seed, index), so two 32k-sample runs with distinct seeds are one 64k
// population).
const maxMCSamples = 65536

// mcSamplesPerToken converts a sample count into admission weight: every
// 256 samples cost one token beyond the base, so one 64-token server admits
// e.g. four 4096-sample runs or one 16k-sample run plus interactive traffic,
// instead of 64 concurrent 16k-sample runs.
const mcSamplesPerToken = 256

// mcWeight is the admission cost of a Monte-Carlo request, capped at the
// full semaphore so a maximal request remains admissible on an idle server.
func (s *Server) mcWeight(samples int) int {
	w := 1 + samples/mcSamplesPerToken
	if w > s.cfg.MaxInflight {
		w = s.cfg.MaxInflight
	}
	return w
}

// handleMC runs a Monte-Carlo analysis. Validation happens before admission
// (a malformed request should not consume capacity); the admission weight
// scales with the declared sample count, because one 16k-sample request
// costs as much compute as thousands of plain analyzes.
func (s *Server) handleMC(w http.ResponseWriter, r *http.Request) {
	var req MCRequest
	if err := decodeBody(w, r, &req, 16<<20); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if req.Samples <= 0 {
		writeError(w, http.StatusBadRequest, "samples must be positive (got %d)", req.Samples)
		return
	}
	if req.Samples > maxMCSamples {
		writeError(w, http.StatusBadRequest, "samples must be at most %d (got %d); split larger runs across seeds",
			maxMCSamples, req.Samples)
		return
	}
	if req.Sigma < 0 {
		writeError(w, http.StatusBadRequest, "sigma must be non-negative (got %v)", req.Sigma)
		return
	}
	if req.Bins < 0 {
		writeError(w, http.StatusBadRequest, "bins must be non-negative (got %d)", req.Bins)
		return
	}
	st := reqStateFrom(r)
	compiled, ok := s.lookupNetlist(req.Netlist)
	st.noteNetlist(req.Netlist, ok)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown netlist %q (expired or never uploaded)", req.Netlist)
		return
	}
	mode, err := parseMode(req.Mode)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	evs, err := resolveVector(compiled.Circuit(), req.Vector)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	weight := s.mcWeight(req.Samples)
	t0 := time.Now()
	admitted := s.admit(weight)
	if st != nil {
		st.admissionWait = time.Since(t0)
	}
	if !admitted {
		s.reject(w, r, "analyze:mc", weight)
		return
	}
	defer s.release(weight)
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()

	opt := sta.MCOptions{
		Samples: req.Samples, Seed: req.Seed, Sigma: req.Sigma,
		Corners: req.Corners, Bins: req.Bins,
	}
	opt.Workers = s.cfg.Workers
	opt.Dense = s.cfg.Dense
	opt.PulseFiltering = req.PulseFilter
	opt.Trace = st.trace()
	res, err := compiled.AnalyzeMC(ctx, evs, mode, opt)
	if err != nil {
		analysisError(w, err)
		return
	}
	st.noteStats(&res.Stats)
	st.noteMCSamples(res.Samples)
	s.metrics.MCRuns.Add(1)
	s.metrics.MCSamples.Add(int64(res.Samples))
	s.metrics.GatesEvaluated.Add(int64(res.Stats.GatesEvaluated))
	s.metrics.ProximityEvals.Add(int64(res.Stats.ProximityEvals))
	s.metrics.SingleArcEvals.Add(int64(res.Stats.SingleArcEvals))
	s.metrics.addPulses(res.Stats.PulsesFiltered, res.Stats.PulsesDegraded, res.Stats.PulsesUnjudged)
	s.metrics.observeNonzeroPhases(res.Stats.Phases)

	resp := MCResponse{
		Mode: res.Mode.String(), Samples: res.Samples, Seed: res.Seed, Sigma: res.Sigma,
		Outputs:        make([]MCOutputDist, 0, len(res.Outputs)),
		Criticality:    make([]MCCriticality, 0, len(res.Criticality)),
		GatesEvaluated: res.Stats.GatesEvaluated,
		PulsesFiltered: res.Stats.PulsesFiltered,
		PulsesDegraded: res.Stats.PulsesDegraded,
		PulsesUnjudged: res.Stats.PulsesUnjudged,
	}
	for _, od := range res.Outputs {
		wd := MCOutputDist{
			Net: od.Net.Name, Dir: od.Dir.String(), N: od.Dist.N,
			MeanPs: od.Dist.Mean * 1e12, StdPs: od.Dist.Std * 1e12,
			MinPs: od.Dist.Min * 1e12, MaxPs: od.Dist.Max * 1e12,
			P50Ps: od.Dist.P50 * 1e12, P95Ps: od.Dist.P95 * 1e12, P99Ps: od.Dist.P99 * 1e12,
		}
		if h := od.Dist.Hist; h != nil {
			wd.Hist = &MCHistWire{LoPs: h.Lo * 1e12, HiPs: h.Hi * 1e12, Counts: h.Counts}
		}
		resp.Outputs = append(resp.Outputs, wd)
	}
	for _, gc := range res.Criticality {
		resp.Criticality = append(resp.Criticality, MCCriticality{
			Gate: gc.Gate.Name, Type: gc.Gate.Type, Out: gc.Gate.Out.Name,
			Count: gc.Count, Probability: gc.Probability,
		})
	}
	for _, gc := range res.GlitchCriticality {
		resp.GlitchCriticality = append(resp.GlitchCriticality, MCGlitchCriticality{
			Gate: gc.Gate.Name, Type: gc.Gate.Type, Out: gc.Gate.Out.Name,
			Absorbed: gc.Absorbed, Degraded: gc.Degraded,
			PAbsorbed: gc.PAbsorbed, PDegraded: gc.PDegraded,
		})
	}
	for _, cr := range res.Corners {
		vr := buildVectorResult(compiled.Circuit(), cr.Result, netsOutputs)
		resp.Corners = append(resp.Corners, MCCornerWire{
			Name: cr.Name, Multiplier: cr.Multiplier, Arrivals: vr.Arrivals,
		})
	}
	writeJSON(w, resp)
}

// handleHealthz answers liveness plus occupancy: how full each LRU cache is
// and how much of the admission budget is committed — the numbers a load
// balancer or operator reads before deciding where the pressure is.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	n := s.order.Len()
	b := s.blOrder.Len()
	s.mu.Unlock()
	writeJSON(w, map[string]any{
		"status":       "ok",
		"netlists":     n,
		"maxNetlists":  s.cfg.MaxNetlists,
		"baselines":    b,
		"maxBaselines": s.cfg.MaxBaselines,
		"models":       s.cfg.Registry.Stats().Resident,
		"inFlight":     len(s.sem),
		"maxInflight":  s.cfg.MaxInflight,
		// Black-box occupancy: how full the wide-event ring is and how many
		// tail-sampled trace artifacts are currently retained.
		"flightEvents":      s.flight.Len(),
		"flightCap":         s.flight.Cap(),
		"retainedTraces":    s.traces.len(),
		"maxRetainedTraces": s.cfg.MaxRetainedTraces,
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	n := s.order.Len()
	s.mu.Unlock()
	var b strings.Builder
	switch format := r.URL.Query().Get("format"); format {
	case "", "json":
		s.metrics.writeJSON(&b, s.cfg.Registry.Stats(), n)
		w.Header().Set("Content-Type", "application/json")
	case "prom", "prometheus":
		s.metrics.writeProm(&b, s.cfg.Registry.Stats(), n)
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	default:
		writeError(w, http.StatusBadRequest, "unknown metrics format %q (want json or prom)", format)
		return
	}
	w.Write([]byte(b.String()))
}

// ---- request helpers -------------------------------------------------------

// scanGateTypes extracts the distinct cell types a netlist references, in
// first-use order, without building a circuit — the registry must resolve
// them before parsing can start.
func scanGateTypes(netlist string) []string {
	seen := map[string]bool{}
	var types []string
	for _, line := range strings.Split(netlist, "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		f := strings.Fields(line)
		if len(f) >= 3 && f[0] == "gate" && !seen[f[2]] {
			seen[f[2]] = true
			types = append(types, f[2])
		}
	}
	return types
}

func parseMode(s string) (sta.Mode, error) {
	switch s {
	case "", "prox", "proximity":
		return sta.Proximity, nil
	case "conv", "conventional":
		return sta.Conventional, nil
	}
	return 0, fmt.Errorf("unknown mode %q (want prox or conv)", s)
}

// parseNets validates the report-scope selector with the same strictness
// parseMode applies: a typo like "al" is a 400 naming the bad value, never
// silently treated as the default.
func parseNets(s string) (netScope, error) {
	switch s {
	case "", "outputs":
		return netsOutputs, nil
	case "all":
		return netsAll, nil
	}
	return netsOutputs, fmt.Errorf("unknown nets %q (want outputs or all)", s)
}

// netScope selects which nets an analysis response reports.
type netScope int

const (
	netsOutputs netScope = iota
	netsAll
)

func parseDir(s string) (waveform.Direction, error) {
	switch s {
	case "rise", "r", "rising":
		return waveform.Rising, nil
	case "fall", "f", "falling":
		return waveform.Falling, nil
	}
	return 0, fmt.Errorf("bad direction %q (want rise or fall)", s)
}

// resolveVector maps wire events onto circuit nets. Unknown nets fail here
// with the net named; PI-membership, positive transition times and
// duplicate events are enforced by the engine itself.
func resolveVector(c *sta.Circuit, vec []Event) ([]sta.PIEvent, error) {
	if len(vec) == 0 {
		return nil, fmt.Errorf("empty stimulus vector")
	}
	evs := make([]sta.PIEvent, len(vec))
	for i, ev := range vec {
		n := c.Net(ev.Net)
		if n == nil {
			return nil, fmt.Errorf("event %d: unknown net %q", i, ev.Net)
		}
		dir, err := parseDir(ev.Dir)
		if err != nil {
			return nil, fmt.Errorf("event %d (net %s): %v", i, ev.Net, err)
		}
		evs[i] = sta.PIEvent{Net: n, Dir: dir, TT: ev.TTPs * 1e-12, Time: ev.TimePs * 1e-12}
	}
	return evs, nil
}

// resolveDelta maps a wire stimulus edit onto circuit nets. Unknown nets
// fail here with the net named; PI membership, event validity, duplicates
// and the present-in-baseline requirement for removes are enforced by the
// engine. An entirely empty edit is rejected by the engine too.
func resolveDelta(c *sta.Circuit, set []Event, remove []RemoveEvent) (sta.Delta, error) {
	var delta sta.Delta
	if len(set) > 0 {
		evs := make([]sta.PIEvent, len(set))
		for i, ev := range set {
			n := c.Net(ev.Net)
			if n == nil {
				return sta.Delta{}, fmt.Errorf("set %d: unknown net %q", i, ev.Net)
			}
			dir, err := parseDir(ev.Dir)
			if err != nil {
				return sta.Delta{}, fmt.Errorf("set %d (net %s): %v", i, ev.Net, err)
			}
			evs[i] = sta.PIEvent{Net: n, Dir: dir, TT: ev.TTPs * 1e-12, Time: ev.TimePs * 1e-12}
		}
		delta.Set = evs
	}
	if len(remove) > 0 {
		rms := make([]sta.DeltaRemove, len(remove))
		for i, rm := range remove {
			n := c.Net(rm.Net)
			if n == nil {
				return sta.Delta{}, fmt.Errorf("remove %d: unknown net %q", i, rm.Net)
			}
			dir, err := parseDir(rm.Dir)
			if err != nil {
				return sta.Delta{}, fmt.Errorf("remove %d (net %s): %v", i, rm.Net, err)
			}
			rms[i] = sta.DeltaRemove{Net: n, Dir: dir}
		}
		delta.Remove = rms
	}
	return delta, nil
}

// buildVectorResult flattens a Result into wire arrivals: primary outputs
// by default, every net when nets == all. Arrivals are listed in
// deterministic order (output declaration order, or sorted net names) and
// marshal as [] rather than null when empty.
func buildVectorResult(c *sta.Circuit, res *sta.Result, nets netScope) VectorResult {
	vr := VectorResult{
		Arrivals:       []Arrival{},
		GatesEvaluated: res.Stats.GatesEvaluated,
		ProximityEvals: res.Stats.ProximityEvals,
		SingleArcEvals: res.Stats.SingleArcEvals,
		PulsesFiltered: res.Stats.PulsesFiltered,
		PulsesDegraded: res.Stats.PulsesDegraded,
		PulsesUnjudged: res.Stats.PulsesUnjudged,
	}
	appendNet := func(n *sta.Net) {
		for _, dir := range []waveform.Direction{waveform.Rising, waveform.Falling} {
			if a, ok := res.Arrival(n, dir); ok {
				vr.Arrivals = append(vr.Arrivals, Arrival{
					Net:        n.Name,
					Dir:        dir.String(),
					TimePs:     a.Time * 1e12,
					TTPs:       a.TT * 1e12,
					UsedInputs: a.UsedInputs,
				})
			}
		}
	}
	if nets == netsAll {
		for _, name := range c.NetsByName() {
			appendNet(c.Net(name))
		}
	} else {
		for _, po := range c.POs {
			appendNet(po)
		}
	}
	return vr
}
