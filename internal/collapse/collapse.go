// Package collapse implements the series-parallel inverter-collapse baseline
// that the paper argues against (its references [8] Jun et al. and [13]
// Nabavi-Lishi & Rumin): the multi-input gate is reduced to an equivalent
// inverter by combining series transistors as 1/K_eq = Σ 1/K and parallel
// transistors as K_eq = Σ K, and the switching inputs are merged into a
// single equivalent waveform that drives the inverter.
//
// The baseline exists to reproduce the paper's accuracy comparison: the
// compositional proximity model should beat it, especially when the
// switching inputs have dissimilar transition times or large separations.
package collapse

import (
	"fmt"
	"math"

	"repro/internal/cells"
	"repro/internal/macromodel"
	"repro/internal/spice"
	"repro/internal/waveform"
)

// Strategy selects how the switching input waveforms merge into one
// equivalent waveform.
type Strategy int

const (
	// Topological picks the earliest input when the switching inputs
	// conduct in parallel (they start the output moving) and the latest
	// when they complete a series path. This is the physically motivated
	// default.
	Topological Strategy = iota
	// Earliest always uses the first input to cross its threshold.
	Earliest
	// Latest always uses the last input to cross its threshold.
	Latest
	// Average merges crossing times and transition times by arithmetic
	// mean (the "equivalent waveform" flavor of reference [8]).
	Average
)

func (s Strategy) String() string {
	switch s {
	case Topological:
		return "topological"
	case Earliest:
		return "earliest"
	case Latest:
		return "latest"
	case Average:
		return "average"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Collapser reduces a cell and predicts composite-input delays.
type Collapser struct {
	Cell     *cells.Cell
	Opt      spice.Options
	Th       waveform.Thresholds
	Strategy Strategy
}

// New builds a collapser with the Topological strategy.
func New(cell *cells.Cell, opt spice.Options, th waveform.Thresholds) *Collapser {
	return &Collapser{Cell: cell, Opt: opt, Th: th, Strategy: Topological}
}

// EquivalentGeometry returns the inverter geometry for m switching inputs of
// the collapser's n-input cell: the full series stack collapses to W/n, the
// m conducting parallel devices to m·W.
func (c *Collapser) EquivalentGeometry(m int) cells.Geometry {
	g := c.Cell.Geom
	n := float64(c.Cell.N())
	eq := g
	if c.Cell.Kind == cells.Nor {
		eq.WN = g.WN * float64(m)
		eq.WP = g.WP / n
	} else {
		eq.WN = g.WN / n
		eq.WP = g.WP * float64(m)
	}
	return eq
}

// equivalentWaveform merges the stimuli into a single (cross, tt) pair.
func (c *Collapser) equivalentWaveform(stims []macromodel.PinStim) (cross, tt float64) {
	first, last := 0, 0
	for i, s := range stims {
		if s.Cross < stims[first].Cross {
			first = i
		}
		if s.Cross > stims[last].Cross {
			last = i
		}
	}
	switch c.Strategy {
	case Earliest:
		return stims[first].Cross, stims[first].TT
	case Latest:
		return stims[last].Cross, stims[last].TT
	case Average:
		for _, s := range stims {
			cross += s.Cross
			tt += s.TT
		}
		n := float64(len(stims))
		return cross / n, tt / n
	default: // Topological
		dir := stims[0].Dir
		parallel := c.parallelConduction(dir)
		if parallel {
			return stims[first].Cross, stims[first].TT
		}
		return stims[last].Cross, stims[last].TT
	}
}

// parallelConduction reports whether inputs switching in direction dir turn
// on the parallel network of the cell (e.g. falling inputs on a NAND turn on
// parallel PMOS pull-ups).
func (c *Collapser) parallelConduction(dir waveform.Direction) bool {
	if c.Cell.Kind == cells.Nor {
		return dir == waveform.Rising // parallel NMOS pull-down
	}
	return dir == waveform.Falling // parallel PMOS pull-up
}

// Predict collapses the gate for the given same-direction stimuli, simulates
// the equivalent inverter, and returns the absolute output crossing time and
// the output transition time.
func (c *Collapser) Predict(stims []macromodel.PinStim) (outCross, outTT float64, err error) {
	if len(stims) == 0 {
		return 0, 0, fmt.Errorf("collapse: no stimuli")
	}
	dir := stims[0].Dir
	for _, s := range stims {
		if s.Dir != dir {
			return 0, 0, fmt.Errorf("collapse: mixed directions not supported by the baseline")
		}
	}
	eqGeom := c.EquivalentGeometry(len(stims))
	inv, err := cells.New(cells.Inv, 1, c.Cell.Proc, eqGeom)
	if err != nil {
		return 0, 0, fmt.Errorf("collapse: equivalent inverter: %w", err)
	}
	cross, tt := c.equivalentWaveform(stims)
	sim := macromodel.NewGateSim(inv, c.Opt, c.Th)
	res, err := sim.Run([]macromodel.PinStim{{Pin: 0, Dir: dir, TT: tt, Cross: cross}})
	if err != nil {
		return 0, 0, fmt.Errorf("collapse: simulate equivalent inverter: %w", err)
	}
	oc, err := c.Th.OutputCross(res.Out, res.OutDir)
	if err != nil {
		return 0, 0, fmt.Errorf("collapse: measure: %w", err)
	}
	ott, err := res.OutputTT()
	if err != nil {
		return 0, 0, fmt.Errorf("collapse: measure transition: %w", err)
	}
	// Translate back: the harness shifted the stimulus by res.Shift.
	return oc - res.Shift, ott, nil
}

// PredictDelayFrom returns the baseline's delay measured from a chosen
// reference stimulus (for apples-to-apples comparison with the proximity
// model's dominant-input reference).
func (c *Collapser) PredictDelayFrom(stims []macromodel.PinStim, refIdx int) (delay, outTT float64, err error) {
	if refIdx < 0 || refIdx >= len(stims) {
		return 0, 0, fmt.Errorf("collapse: reference index %d out of range", refIdx)
	}
	oc, ott, err := c.Predict(stims)
	if err != nil {
		return 0, 0, err
	}
	d := oc - stims[refIdx].Cross
	if math.IsNaN(d) {
		return 0, 0, fmt.Errorf("collapse: NaN delay")
	}
	return d, ott, nil
}
