package collapse

import (
	"math"
	"testing"

	"repro/internal/cells"
	"repro/internal/macromodel"
	"repro/internal/spice"
	"repro/internal/vtc"
	"repro/internal/waveform"
)

func testCollapser(t *testing.T) (*Collapser, *macromodel.GateSim) {
	t.Helper()
	cell := cells.MustNew(cells.Nand, 3, cells.DefaultProcess(), cells.DefaultGeometry())
	fam, err := vtc.Extract(cell, spice.DefaultOptions(), 0.02)
	if err != nil {
		t.Fatal(err)
	}
	sim := macromodel.NewGateSim(cell, spice.DefaultOptions(), fam.Thresholds)
	return New(cell, spice.DefaultOptions(), fam.Thresholds), sim
}

func TestEquivalentGeometry(t *testing.T) {
	c, _ := testCollapser(t)
	g := c.Cell.Geom
	eq := c.EquivalentGeometry(2)
	if math.Abs(eq.WN-g.WN/3) > 1e-18 {
		t.Errorf("series stack WN = %g, want W/3", eq.WN)
	}
	if math.Abs(eq.WP-2*g.WP) > 1e-18 {
		t.Errorf("parallel WP = %g, want 2W", eq.WP)
	}

	nor := MustNorCollapser(t)
	eqn := nor.EquivalentGeometry(2)
	if math.Abs(eqn.WN-2*nor.Cell.Geom.WN) > 1e-18 || math.Abs(eqn.WP-nor.Cell.Geom.WP/2) > 1e-18 {
		t.Errorf("NOR collapse geometry wrong: %+v", eqn)
	}
}

// MustNorCollapser builds a NOR2 collapser with fixed thresholds (no VTC
// extraction needed for geometry tests).
func MustNorCollapser(t *testing.T) *Collapser {
	t.Helper()
	cell := cells.MustNew(cells.Nor, 2, cells.DefaultProcess(), cells.DefaultGeometry())
	th := waveform.Thresholds{Vil: 1.0, Vih: 2.5, Vdd: 5}
	return New(cell, spice.DefaultOptions(), th)
}

func TestStrategies(t *testing.T) {
	c, _ := testCollapser(t)
	stims := []macromodel.PinStim{
		{Pin: 0, Dir: waveform.Falling, TT: 400e-12, Cross: 0},
		{Pin: 1, Dir: waveform.Falling, TT: 100e-12, Cross: 200e-12},
	}
	// Unexported merge behavior observed through Predict: just confirm
	// all strategies produce a finite crossing and differ where expected.
	results := map[Strategy]float64{}
	for _, s := range []Strategy{Topological, Earliest, Latest, Average} {
		c.Strategy = s
		oc, tt, err := c.Predict(stims)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if tt <= 0 {
			t.Errorf("%v: non-positive transition time", s)
		}
		results[s] = oc
	}
	if results[Earliest] >= results[Latest] {
		t.Errorf("earliest-input prediction (%.1fps) should cross before latest-input (%.1fps)",
			results[Earliest]*1e12, results[Latest]*1e12)
	}
	// Topological for falling NAND inputs = parallel conduction = earliest.
	if math.Abs(results[Topological]-results[Earliest]) > 1e-15 {
		t.Errorf("topological should match earliest for falling NAND inputs")
	}
}

func TestPredictValidation(t *testing.T) {
	c, _ := testCollapser(t)
	if _, _, err := c.Predict(nil); err == nil {
		t.Error("empty stimulus accepted")
	}
	mixed := []macromodel.PinStim{
		{Pin: 0, Dir: waveform.Falling, TT: 1e-10, Cross: 0},
		{Pin: 1, Dir: waveform.Rising, TT: 1e-10, Cross: 0},
	}
	if _, _, err := c.Predict(mixed); err == nil {
		t.Error("mixed directions accepted")
	}
	if _, _, err := c.PredictDelayFrom(mixed[:1], 5); err == nil {
		t.Error("bad reference index accepted")
	}
}

// TestCollapseMatchesSingleInput: with ONE switching input the collapse
// baseline is a plain inverter approximation — it should land within tens of
// percent of the true gate delay (it is a baseline, not a reference), and
// critically it must get WORSE on dissimilar multi-input configurations
// (the paper's argument). The comparison against the proximity model lives
// in the validation harness; here we pin down baseline behavior itself.
func TestCollapseBaselineBehaviour(t *testing.T) {
	c, sim := testCollapser(t)
	dir := waveform.Falling

	single := []macromodel.PinStim{{Pin: 0, Dir: dir, TT: 400e-12, Cross: 0}}
	run, err := sim.Run(single)
	if err != nil {
		t.Fatal(err)
	}
	actual, err := run.DelayFrom(0)
	if err != nil {
		t.Fatal(err)
	}
	pred, _, err := c.PredictDelayFrom(single, 0)
	if err != nil {
		t.Fatal(err)
	}
	relSingle := math.Abs(pred-actual) / actual
	if relSingle > 0.6 {
		t.Errorf("single-input collapse error %.0f%% implausibly large", relSingle*100)
	}

	// Dissimilar pair: slow early + fast late.
	pair := []macromodel.PinStim{
		{Pin: 0, Dir: dir, TT: 1500e-12, Cross: 0},
		{Pin: 1, Dir: dir, TT: 80e-12, Cross: 150e-12},
	}
	run2, err := sim.Run(pair)
	if err != nil {
		t.Fatal(err)
	}
	actual2, err := run2.DelayFrom(0)
	if err != nil {
		t.Fatal(err)
	}
	pred2, _, err := c.PredictDelayFrom(pair, 0)
	if err != nil {
		t.Fatal(err)
	}
	relPair := math.Abs(pred2-actual2) / actual2
	t.Logf("collapse error: single %.1f%%, dissimilar pair %.1f%%", relSingle*100, relPair*100)
	if relPair < relSingle {
		t.Logf("note: pair error %.1f%% < single error %.1f%% for this configuration", relPair*100, relSingle*100)
	}
}

func TestStrategyStrings(t *testing.T) {
	for s, want := range map[Strategy]string{
		Topological: "topological", Earliest: "earliest", Latest: "latest", Average: "average",
	} {
		if s.String() != want {
			t.Errorf("Strategy(%d) = %q", int(s), s.String())
		}
	}
}
