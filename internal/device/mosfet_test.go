package device

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func testNMOS(kind ModelKind) *MOSFET {
	return &MOSFET{
		Name: "mn", Type: NMOS, W: 8e-6, L: 1e-6,
		Model: Params{Kind: kind, Vt0: 0.8, KP: 60e-6, Lambda: 0.05, Gamma: 0.4, Phi: 0.65, Alpha: 1.5},
	}
}

func testPMOS(kind ModelKind) *MOSFET {
	return &MOSFET{
		Name: "mp", Type: PMOS, W: 8e-6, L: 1e-6,
		Model: Params{Kind: kind, Vt0: -0.9, KP: 25e-6, Lambda: 0.05, Gamma: 0.5, Phi: 0.65, Alpha: 1.5},
	}
}

func TestStrengthAndBeta(t *testing.T) {
	m := testNMOS(Level1)
	wantBeta := 60e-6 * 8.0
	if got := m.Beta(); math.Abs(got-wantBeta) > 1e-12 {
		t.Errorf("Beta = %g, want %g", got, wantBeta)
	}
	if got := m.Strength(); math.Abs(got-wantBeta/2) > 1e-12 {
		t.Errorf("Strength = %g, want %g", got, wantBeta/2)
	}
}

func TestNMOSRegions(t *testing.T) {
	m := testNMOS(Level1)
	cases := []struct {
		vd, vg, vs, vb float64
		region         string
		positive       bool
	}{
		{5, 0, 0, 0, "cutoff", false},
		{0.1, 5, 0, 0, "linear", true},
		{5, 5, 0, 0, "saturation", true},
		{5, 2, 0, 0, "saturation", true},
	}
	for _, c := range cases {
		op := m.Eval(c.vd, c.vg, c.vs, c.vb)
		if !strings.HasPrefix(op.Region, c.region) {
			t.Errorf("Eval(%g,%g,%g,%g) region = %q, want %q", c.vd, c.vg, c.vs, c.vb, op.Region, c.region)
		}
		if c.positive && op.Id <= 0 {
			t.Errorf("Eval(%g,%g,%g,%g) Id = %g, want > 0", c.vd, c.vg, c.vs, c.vb, op.Id)
		}
		if !c.positive && math.Abs(op.Id) > 1e-9 {
			t.Errorf("Eval(%g,%g,%g,%g) Id = %g, want ~0 in cutoff", c.vd, c.vg, c.vs, c.vb, op.Id)
		}
	}
}

func TestPMOSMirror(t *testing.T) {
	p := testPMOS(Level1)
	// PMOS with source at 5V, gate at 0, drain at 0: strongly on, current
	// flows INTO the drain terminal from the channel, i.e. Id < 0 in our
	// into-drain convention... current flows source->drain, so current
	// into the drain node from the device is negative of NMOS sense.
	op := p.Eval(0, 0, 5, 5)
	if op.Id >= 0 {
		t.Errorf("on PMOS should pull current out of the low drain: Id = %g", op.Id)
	}
	// Cutoff: gate at source.
	off := p.Eval(0, 5, 5, 5)
	if math.Abs(off.Id) > 1e-9 {
		t.Errorf("off PMOS leaks Id = %g", off.Id)
	}
}

// TestSourceDrainSymmetry: the channel current is antisymmetric under
// terminal exchange.
func TestSourceDrainSymmetry(t *testing.T) {
	for _, kind := range []ModelKind{Level1, AlphaPower} {
		m := testNMOS(kind)
		fwd := m.Eval(3, 4, 1, 0)
		rev := m.Eval(1, 4, 3, 0)
		if math.Abs(fwd.Id+rev.Id) > 1e-12*math.Max(1, math.Abs(fwd.Id)) {
			t.Errorf("%v: I(3,1)=%g, I(1,3)=%g; want antisymmetric", kind, fwd.Id, rev.Id)
		}
	}
}

// TestRegionBoundaryContinuity: current and gm are continuous across the
// linear/saturation boundary.
func TestRegionBoundaryContinuity(t *testing.T) {
	for _, kind := range []ModelKind{Level1, AlphaPower} {
		m := testNMOS(kind)
		m.Model.Gamma = 0 // isolate the channel model
		vg := 3.0
		vt := m.Model.Vt0
		vdsat := vg - vt
		if kind == AlphaPower {
			vdsat = math.Pow(vg-vt, m.Model.Alpha/2)
		}
		eps := 1e-7
		below := m.Eval(vdsat-eps, vg, 0, 0)
		above := m.Eval(vdsat+eps, vg, 0, 0)
		if rel := math.Abs(below.Id-above.Id) / math.Abs(above.Id); rel > 1e-4 {
			t.Errorf("%v: current jump at vdsat: %g vs %g (rel %g)", kind, below.Id, above.Id, rel)
		}
		if rel := math.Abs(below.Gm-above.Gm) / math.Abs(above.Gm); rel > 1e-3 {
			t.Errorf("%v: gm jump at vdsat: %g vs %g (rel %g)", kind, below.Gm, above.Gm, rel)
		}
	}
}

// TestConductancesMatchFiniteDifferences: the analytic Gm/Gds/Gmbs agree
// with numeric derivatives at random bias points (the property the Newton
// solver depends on).
func TestConductancesMatchFiniteDifferences(t *testing.T) {
	for _, kind := range []ModelKind{Level1, AlphaPower} {
		kind := kind
		prop := func(seed int64) bool {
			r := rand.New(rand.NewSource(seed))
			m := testNMOS(kind)
			vd := r.Float64() * 5
			vg := r.Float64() * 5
			vs := r.Float64() * 2
			vb := -r.Float64() // reverse body bias
			// Stay away from region boundaries where one-sided derivatives
			// differ legitimately.
			op := m.Eval(vd, vg, vs, vb)
			const h = 1e-6
			dgm := (m.Eval(vd, vg+h, vs, vb).Id - m.Eval(vd, vg-h, vs, vb).Id) / (2 * h)
			dgds := (m.Eval(vd+h, vg, vs, vb).Id - m.Eval(vd-h, vg, vs, vb).Id) / (2 * h)
			dgmbs := (m.Eval(vd, vg, vs, vb+h).Id - m.Eval(vd, vg, vs, vb-h).Id) / (2 * h)
			scale := math.Abs(op.Id) + 1e-6
			okGm := math.Abs(op.Gm-dgm) < 1e-3*scale+1e-9
			okGds := math.Abs(op.Gds-dgds) < 1e-3*scale+1e-9
			okGmbs := math.Abs(op.Gmbs-dgmbs) < 1e-3*scale+1e-9
			if !okGm || !okGds || !okGmbs {
				t.Logf("%v bias vd=%.3f vg=%.3f vs=%.3f vb=%.3f: Gm %g vs %g, Gds %g vs %g, Gmbs %g vs %g",
					kind, vd, vg, vs, vb, op.Gm, dgm, op.Gds, dgds, op.Gmbs, dgmbs)
				return false
			}
			return true
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
			t.Errorf("%v: %v", kind, err)
		}
	}
}

// TestBodyEffectRaisesThreshold: reverse body bias reduces the current.
func TestBodyEffectRaisesThreshold(t *testing.T) {
	m := testNMOS(Level1)
	noBias := m.Eval(5, 2, 0, 0)
	revBias := m.Eval(5, 2, 0, -2)
	if revBias.Id >= noBias.Id {
		t.Errorf("reverse body bias should reduce current: %g >= %g", revBias.Id, noBias.Id)
	}
}

// TestAlphaPowerReducesToSquareLaw: at alpha=2 and lambda=0 the two models
// coincide in saturation.
func TestAlphaPowerReducesToSquareLaw(t *testing.T) {
	l1 := testNMOS(Level1)
	ap := testNMOS(AlphaPower)
	l1.Model.Lambda, ap.Model.Lambda = 0, 0
	l1.Model.Gamma, ap.Model.Gamma = 0, 0
	ap.Model.Alpha = 2
	for _, vg := range []float64{1.5, 2.5, 4} {
		a := l1.Eval(5, vg, 0, 0)
		b := ap.Eval(5, vg, 0, 0)
		if rel := math.Abs(a.Id-b.Id) / a.Id; rel > 1e-9 {
			t.Errorf("vg=%g: level1 %g vs alpha-power %g", vg, a.Id, b.Id)
		}
	}
}

// TestMonotoneInVgs: drain current never decreases with gate drive.
func TestMonotoneInVgs(t *testing.T) {
	for _, kind := range []ModelKind{Level1, AlphaPower} {
		m := testNMOS(kind)
		prev := -1.0
		for vg := 0.0; vg <= 5; vg += 0.05 {
			id := m.Eval(5, vg, 0, 0).Id
			if id < prev-1e-15 {
				t.Errorf("%v: current decreased at vg=%g: %g < %g", kind, vg, id, prev)
				break
			}
			prev = id
		}
	}
}

func TestModelKindStrings(t *testing.T) {
	if Level1.String() != "level1" || AlphaPower.String() != "alpha-power" {
		t.Error("ModelKind strings changed")
	}
	if NMOS.String() != "nmos" || PMOS.String() != "pmos" {
		t.Error("MOSType strings changed")
	}
}
