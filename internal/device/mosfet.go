// Package device implements the transistor models used by the circuit
// simulator. Two MOSFET models are provided:
//
//   - Level1: the classic Shichman–Hodges square-law model with channel
//     length modulation and body effect — the model family used by 1990s
//     HSPICE level-1 decks such as the one behind the paper's NAND gate.
//   - AlphaPower: the Sakurai–Newton alpha-power law model, useful as an
//     ablation to confirm that the proximity macromodel shapes do not depend
//     on the particular I-V formulation.
//
// Models are evaluated at a terminal-voltage operating point and return both
// the drain current and the small-signal conductances (gm, gds, gmbs) that
// the Newton solver needs for its companion linearization.
package device

import (
	"fmt"
	"math"
)

// MOSType distinguishes n-channel from p-channel devices.
type MOSType int

const (
	NMOS MOSType = iota
	PMOS
)

func (t MOSType) String() string {
	if t == NMOS {
		return "nmos"
	}
	return "pmos"
}

// ModelKind selects the I-V formulation.
type ModelKind int

const (
	// Level1 is the Shichman–Hodges square-law model.
	Level1 ModelKind = iota
	// AlphaPower is the Sakurai–Newton alpha-power law model.
	AlphaPower
)

func (k ModelKind) String() string {
	switch k {
	case Level1:
		return "level1"
	case AlphaPower:
		return "alpha-power"
	default:
		return fmt.Sprintf("ModelKind(%d)", int(k))
	}
}

// Params carries the per-type model card. All values use SI units.
type Params struct {
	Kind ModelKind

	// Vt0 is the zero-bias threshold voltage. Positive for NMOS, negative
	// for PMOS (e.g. -0.9 means the PMOS turns on at Vgs < -0.9V).
	Vt0 float64
	// KP is the transconductance parameter mu*Cox in A/V^2. The device
	// strength used throughout the paper is K = 0.5*KP*W/L.
	KP float64
	// Lambda is the channel-length-modulation coefficient (1/V).
	Lambda float64
	// Gamma is the body-effect coefficient (sqrt(V)).
	Gamma float64
	// Phi is twice the Fermi potential (V), used with Gamma.
	Phi float64
	// Alpha is the velocity-saturation index for the alpha-power model
	// (1 = fully velocity saturated, 2 = square law). Ignored by Level1.
	Alpha float64
}

// OperatingPoint is the output of a model evaluation: the drain current and
// its partial derivatives with respect to the terminal voltages.
//
// Sign convention: Ids flows from drain to source through the channel for
// both device types when evaluated in the model's "forward" local frame
// (Vds >= 0 after source/drain swap). Callers use Eval, which handles frame
// conversion and returns current into the external drain terminal.
type OperatingPoint struct {
	Id   float64 // current into the drain terminal (A)
	Gm   float64 // dId/dVgs (S)
	Gds  float64 // dId/dVds (S)
	Gmbs float64 // dId/dVbs (S)
	// Region is a diagnostic tag: "cutoff", "linear" or "saturation".
	Region string
}

// MOSFET is a single transistor instance.
type MOSFET struct {
	Name string
	Type MOSType
	// W and L are the drawn channel width and length in meters.
	W, L float64
	// Model holds the model card for this device's type.
	Model Params
}

// Beta returns the process gain KP*W/L of the device in A/V^2.
func (m *MOSFET) Beta() float64 { return m.Model.KP * m.W / m.L }

// Strength returns K = 0.5*mu*Cox*W/L, the "strength" parameter named K in
// the paper's dimensional analysis (footnote 1 of Section 3).
func (m *MOSFET) Strength() float64 { return 0.5 * m.Beta() }

// gminInternal is a tiny conductance added to gds to keep the Jacobian
// nonsingular when every device at a node is cut off.
const gminInternal = 1e-12

// Eval computes the operating point of the device given the external
// terminal voltages (drain, gate, source, bulk), all referred to ground.
//
// The returned OperatingPoint is expressed in the external frame:
// Id is the current flowing from the external drain node into the channel
// (out of the source node), and the conductances are derivatives with
// respect to the external Vgs/Vds/Vbs.
func (m *MOSFET) Eval(vd, vg, vs, vb float64) OperatingPoint {
	if m.Type == NMOS {
		return m.evalN(vd, vg, vs, vb)
	}
	// A PMOS is evaluated as an NMOS in a mirrored frame: negate all
	// voltages and the resulting current. The model card stores Vt0 < 0 for
	// PMOS; mirroring makes it positive.
	mirr := *m
	mirr.Type = NMOS
	mirr.Model.Vt0 = -m.Model.Vt0
	op := mirr.evalN(-vd, -vg, -vs, -vb)
	op.Id = -op.Id
	// Derivatives survive the double negation: d(-I)/d(-V) = dI/dV.
	return op
}

// evalN evaluates an n-channel device, handling source/drain symmetry.
func (m *MOSFET) evalN(vd, vg, vs, vb float64) OperatingPoint {
	// The MOS channel is symmetric: identify the lower-potential terminal
	// as the effective source. Track whether we swapped so we can express
	// conductances in the external frame afterwards.
	swapped := false
	if vd < vs {
		vd, vs = vs, vd
		swapped = true
	}
	vgs := vg - vs
	vds := vd - vs
	vbs := vb - vs

	vt, dvtdvbs := m.threshold(vbs)
	op := m.channelCurrent(vgs, vds, vt)

	// Chain rule for the body effect: Id depends on vbs only through vt,
	// and dId/dvt = -Gm (current depends on vgs - vt in every region).
	op.Gmbs = -op.Gm * dvtdvbs

	if !swapped {
		return op
	}
	// Transform back to the external frame. In the swapped frame we
	// computed I' = f(vgs', vds', vbs') with primes referred to the
	// external drain acting as source. External current into the external
	// drain is -I'. Let D,S be external terminals; primed source = D.
	//
	// vgs' = vg - vd, vds' = vs - vd, vbs' = vb - vd.
	// Id(ext, into D) = -I'.
	// dId/dVg(ext) = -dI'/dvgs' = -Gm'
	// dId/dVd(ext) = -(-Gm' - Gds' - Gmbs') = Gm' + Gds' + Gmbs'
	// dId/dVs(ext) = -Gds' * d(vds')/dVs = -Gds'
	// dId/dVb(ext) = -Gmbs'
	// Expressed against the conventional external (vgs, vds, vbs) basis
	// where Id = f(vgs=vg-vs, vds=vd-vs, vbs=vb-vs):
	//   Gm(ext)   = dId/dVg            = -Gm'
	//   Gds(ext)  = dId/dVd            = Gm' + Gds' + Gmbs'
	//   Gmbs(ext) = dId/dVb            = -Gmbs'
	// (The dId/dVs column is implied: -(Gm+Gds+Gmbs) in any frame.)
	ext := OperatingPoint{
		Id:     -op.Id,
		Gm:     -op.Gm,
		Gds:    op.Gm + op.Gds + op.Gmbs,
		Gmbs:   -op.Gmbs,
		Region: op.Region + " (reversed)",
	}
	return ext
}

// threshold returns the body-effect-adjusted threshold voltage and its
// derivative with respect to vbs.
func (m *MOSFET) threshold(vbs float64) (vt, dvtdvbs float64) {
	p := m.Model
	if p.Gamma == 0 {
		return p.Vt0, 0
	}
	phi := p.Phi
	if phi <= 0 {
		phi = 0.6
	}
	// vt = vt0 + gamma*(sqrt(phi - vbs) - sqrt(phi)); clamp the root
	// argument to keep the model defined for forward body bias.
	arg := phi - vbs
	const minArg = 1e-3
	if arg < minArg {
		arg = minArg
		// derivative ~ 0 in the clamped region
		vt = p.Vt0 + p.Gamma*(math.Sqrt(arg)-math.Sqrt(phi))
		return vt, 0
	}
	s := math.Sqrt(arg)
	vt = p.Vt0 + p.Gamma*(s-math.Sqrt(phi))
	dvtdvbs = -p.Gamma / (2 * s)
	return vt, dvtdvbs
}

// channelCurrent evaluates the forward-frame (vds >= 0) channel current.
func (m *MOSFET) channelCurrent(vgs, vds, vt float64) OperatingPoint {
	switch m.Model.Kind {
	case AlphaPower:
		return m.alphaPowerCurrent(vgs, vds, vt)
	default:
		return m.level1Current(vgs, vds, vt)
	}
}

// level1Current implements the Shichman–Hodges equations.
func (m *MOSFET) level1Current(vgs, vds, vt float64) OperatingPoint {
	beta := m.Beta()
	lambda := m.Model.Lambda
	vov := vgs - vt
	if vov <= 0 {
		// Cutoff: tiny leakage conductance keeps Newton well-posed.
		return OperatingPoint{Id: gminInternal * vds, Gds: gminInternal, Region: "cutoff"}
	}
	if vds < vov {
		// Linear (triode) region with CLM factor for C1 continuity at the
		// linear/saturation boundary. The gmin leakage term keeps the
		// current continuous (and monotone in vgs) across the cutoff edge.
		f := 1 + lambda*vds
		id := beta*(vov*vds-0.5*vds*vds)*f + gminInternal*vds
		gm := beta * vds * f
		gds := beta*(vov-vds)*f + beta*(vov*vds-0.5*vds*vds)*lambda
		return OperatingPoint{Id: id, Gm: gm, Gds: gds + gminInternal, Region: "linear"}
	}
	// Saturation.
	f := 1 + lambda*vds
	id := 0.5*beta*vov*vov*f + gminInternal*vds
	gm := beta * vov * f
	gds := 0.5 * beta * vov * vov * lambda
	return OperatingPoint{Id: id, Gm: gm, Gds: gds + gminInternal, Region: "saturation"}
}

// alphaPowerCurrent implements the Sakurai–Newton alpha-power law.
//
//	Idsat = (beta/2) * vov^alpha * (1 + lambda vds)
//	Vdsat = K_v * vov^(alpha/2)   (here K_v chosen so Vdsat = vov at alpha=2)
//	Linear region: Id = Idsat * (2 - vds/vdsat) * (vds/vdsat)
//
// which reduces exactly to the square law at alpha = 2 and preserves C1
// continuity at vds = vdsat.
func (m *MOSFET) alphaPowerCurrent(vgs, vds, vt float64) OperatingPoint {
	beta := m.Beta()
	lambda := m.Model.Lambda
	alpha := m.Model.Alpha
	if alpha <= 0 {
		alpha = 2
	}
	vov := vgs - vt
	if vov <= 0 {
		return OperatingPoint{Id: gminInternal * vds, Gds: gminInternal, Region: "cutoff"}
	}
	vdsat := math.Pow(vov, alpha/2)
	idsat := 0.5 * beta * math.Pow(vov, alpha)
	didsatDvgs := 0.5 * beta * alpha * math.Pow(vov, alpha-1)
	dvdsatDvgs := (alpha / 2) * math.Pow(vov, alpha/2-1)
	if vds >= vdsat {
		f := 1 + lambda*vds
		id := idsat*f + gminInternal*vds
		return OperatingPoint{
			Id:     id,
			Gm:     didsatDvgs * f,
			Gds:    idsat*lambda + gminInternal,
			Region: "saturation",
		}
	}
	// Linear region.
	x := vds / vdsat
	shape := (2 - x) * x // 2x - x^2
	f := 1 + lambda*vds
	id := idsat*shape*f + gminInternal*vds
	dShapeDvds := (2 - 2*x) / vdsat
	dShapeDvdsat := -(2*x - 2*x*x) / vdsat // d/dvdsat of (2vds/vdsat - vds^2/vdsat^2)
	gm := (didsatDvgs*shape + idsat*dShapeDvdsat*dvdsatDvgs) * f
	gds := idsat*dShapeDvds*f + idsat*shape*lambda
	return OperatingPoint{Id: id, Gm: gm, Gds: gds + gminInternal, Region: "linear"}
}
