package difftest

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/sta"
)

// makeDelta builds a seeded stimulus edit for a baseline vector — a quarter
// of the events re-timed (shifted arrival, fresh transition time), plus one
// withdrawn outright when enough events remain — and returns the edit
// together with the edited vector a full analysis should see.
func makeDelta(cfg Config, evs []sta.PIEvent) (sta.Delta, []sta.PIEvent) {
	rng := rand.New(rand.NewSource(cfg.Seed*3_000_017 + 7))
	perm := rng.Perm(len(evs))
	nSet := len(evs)/4 + 1

	var delta sta.Delta
	edited := append([]sta.PIEvent(nil), evs...)
	for _, i := range perm[:nSet] {
		ev := evs[i]
		ev.Time += (rng.Float64() - 0.5) * 40e-12
		ev.TT = (120 + 400*rng.Float64()) * 1e-12
		delta.Set = append(delta.Set, ev)
		edited[i] = ev
	}
	if len(evs) > nSet+1 {
		ri := perm[nSet]
		delta.Remove = append(delta.Remove, sta.DeltaRemove{Net: evs[ri].Net, Dir: evs[ri].Dir})
		out := edited[:0:0]
		for j, ev := range edited {
			if j != ri {
				out = append(out, ev)
			}
		}
		edited = out
	}
	return delta, edited
}

// TestOracleDeltaVsFull: delta re-analysis against a kept baseline must be
// bit-identical to a fresh full analysis of the edited vector, on every
// config and for both edit shapes — a broad multi-event edit and the
// single-PI nudge ECO traffic is made of. The sweep proves itself
// non-vacuous: across it the delta path must both reuse and re-evaluate
// gates, or either the cutoff or the propagation never engaged.
func TestOracleDeltaVsFull(t *testing.T) {
	ctx := context.Background()
	totReused, totReeval := 0, 0
	for _, cfg := range Configs(nConfigs) {
		c, evs := buildWithEvents(t, cfg, 0)
		p, err := c.Compile()
		if err != nil {
			t.Fatalf("%s: compile: %v", cfg.Name, err)
		}
		opt := sta.Options{Workers: 1}
		baseline, err := p.Analyze(ctx, evs, cfg.Mode, opt)
		if err != nil {
			t.Fatalf("%s: baseline: %v", cfg.Name, err)
		}

		// Broad edit: re-time a quarter of the inputs, drop one.
		delta, edited := makeDelta(cfg, evs)
		dres, err := p.AnalyzeDelta(ctx, baseline, delta, opt)
		if err != nil {
			t.Fatalf("%s: delta: %v", cfg.Name, err)
		}
		full, err := p.Analyze(ctx, edited, cfg.Mode, opt)
		if err != nil {
			t.Fatalf("%s: full re-analyze: %v", cfg.Name, err)
		}
		if err := DiffExact(Arrivals(c, full), Arrivals(c, dres), nil); err != nil {
			t.Errorf("%s: delta diverges from full re-analysis: %v", cfg.Name, err)
		}
		if got, want := dres.Stats.GatesEvaluated, full.Stats.GatesEvaluated; got != want {
			t.Errorf("%s: delta result reports %d gates evaluated, full analysis %d — derived stats drifted",
				cfg.Name, got, want)
		}
		totReused += dres.Stats.GatesReused
		totReeval += dres.Stats.GatesReevaluated

		// ECO nudge: shift a single PI event by 5 ps, leave the rest alone.
		nudge := evs[int(cfg.Seed)%len(evs)]
		nudge.Time += 5e-12
		nudged := append([]sta.PIEvent(nil), evs...)
		nudged[int(cfg.Seed)%len(evs)] = nudge
		dres2, err := p.AnalyzeDelta(ctx, baseline, sta.Delta{Set: []sta.PIEvent{nudge}}, opt)
		if err != nil {
			t.Fatalf("%s: nudge delta: %v", cfg.Name, err)
		}
		full2, err := p.Analyze(ctx, nudged, cfg.Mode, opt)
		if err != nil {
			t.Fatalf("%s: nudge full: %v", cfg.Name, err)
		}
		if err := DiffExact(Arrivals(c, full2), Arrivals(c, dres2), nil); err != nil {
			t.Errorf("%s: single-PI delta diverges from full re-analysis: %v", cfg.Name, err)
		}
	}
	if totReeval == 0 {
		t.Fatal("no gate was ever re-evaluated across the sweep — delta propagation never engaged, oracle vacuous")
	}
	if totReused == 0 {
		t.Fatal("no baseline arrival was ever reused across the sweep — the bit-equal cutoff never fired, oracle vacuous")
	}
}

// editCircuit applies a structural edit to a built config: a new primary
// input joined into existing mid-circuit logic, with the result marked as an
// output. Chains carry an inverter-only library, so the edit degrades to
// inverter taps there; DAGs get a genuine multi-input join.
func editCircuit(t *testing.T, cfg Config, c *sta.Circuit) {
	t.Helper()
	np := c.Input("xpi")
	tap := c.Gates[len(c.Gates)/2].Out
	var joined *sta.Net
	var err error
	if cfg.Chain {
		a, err2 := c.AddGate("xg0", "inv", "xn0", np)
		if err2 != nil {
			t.Fatalf("%s: edit: %v", cfg.Name, err2)
		}
		_, err2 = c.AddGate("xg1", "inv", "xn1", tap)
		if err2 != nil {
			t.Fatalf("%s: edit: %v", cfg.Name, err2)
		}
		joined, err = c.AddGate("xg2", "inv", "xn2", a)
	} else {
		joined, err = c.AddGate("xg0", "nand2", "xn0", np, tap)
	}
	if err != nil {
		t.Fatalf("%s: edit: %v", cfg.Name, err)
	}
	c.MarkOutput(joined)
}

// TestOracleIncrementalCompile: after a structural edit, the incrementally
// recompiled handle must produce analyses and cone tables bit-identical to
// compiling an identically constructed circuit from scratch — re-levelizing
// only downstream of the edit must never change the answer.
func TestOracleIncrementalCompile(t *testing.T) {
	for _, cfg := range Configs(nConfigs) {
		c, evs := buildWithEvents(t, cfg, 0)
		// Analyze once pre-edit so the old handle exists and carries cones —
		// the state the incremental path reuses.
		if _, err := c.AnalyzeOpts(evs, cfg.Mode, sta.Options{Workers: 1}); err != nil {
			t.Fatalf("%s: pre-edit analyze: %v", cfg.Name, err)
		}
		editCircuit(t, cfg, c)

		ref, err := cfg.Build()
		if err != nil {
			t.Fatalf("%s: rebuild: %v", cfg.Name, err)
		}
		editCircuit(t, cfg, ref)

		// The edited stimulus covers every PI, the new one included.
		events := sta.SynthEvents(c, cfg.Seed)
		refEvents := make([]sta.PIEvent, len(events))
		for i, ev := range events {
			refEvents[i] = sta.PIEvent{Net: ref.Net(ev.Net.Name), Dir: ev.Dir, TT: ev.TT, Time: ev.Time}
		}
		incRes, err := c.AnalyzeOpts(events, cfg.Mode, sta.Options{Workers: 1})
		if err != nil {
			t.Fatalf("%s: incremental analyze: %v", cfg.Name, err)
		}
		refRes, err := ref.AnalyzeOpts(refEvents, cfg.Mode, sta.Options{Workers: 1})
		if err != nil {
			t.Fatalf("%s: from-scratch analyze: %v", cfg.Name, err)
		}
		if err := DiffExact(Arrivals(ref, refRes), Arrivals(c, incRes), nil); err != nil {
			t.Errorf("%s: incremental recompile diverges from from-scratch: %v", cfg.Name, err)
		}

		// Cone tables must match index-for-index (both circuits list gates in
		// the same construction order).
		inc, err := c.Compile()
		if err != nil {
			t.Fatalf("%s: compile: %v", cfg.Name, err)
		}
		refC, err := ref.Compile()
		if err != nil {
			t.Fatalf("%s: ref compile: %v", cfg.Name, err)
		}
		for _, pi := range c.PIs {
			incCone, ok1 := inc.Cone(pi)
			refCone, ok2 := refC.Cone(ref.Net(pi.Name))
			if ok1 != ok2 || len(incCone) != len(refCone) {
				t.Fatalf("%s: PI %s cone shape: (%v,%d) incremental vs (%v,%d) from scratch",
					cfg.Name, pi.Name, ok1, len(incCone), ok2, len(refCone))
			}
			for k := range refCone {
				if incCone[k] != refCone[k] {
					t.Fatalf("%s: PI %s cone[%d]: %d incremental vs %d from scratch",
						cfg.Name, pi.Name, k, incCone[k], refCone[k])
				}
			}
		}
	}
}
