package difftest

import (
	"testing"

	"repro/internal/obs"
	"repro/internal/service"
	"repro/internal/sta"
)

// TestOracleStatsSparseVsDense: the workload counters in Result.Stats are
// part of the observable contract — the service aggregates them into
// /metrics — so sparse scheduling must report exactly the work dense does.
// GatesScheduled is the one legitimate difference (that delta IS the
// pruning); everything the engine actually evaluated must match, and the
// always-on phase timers must be internally consistent (non-negative,
// disjoint sum bounded by the measured wall) on every config.
func TestOracleStatsSparseVsDense(t *testing.T) {
	checkPhases := func(label string, s sta.Stats) {
		t.Helper()
		for _, p := range obs.Phases() {
			if s.Phases[p] < 0 {
				t.Fatalf("%s: phase %v negative: %v", label, p, s.Phases[p])
			}
		}
		if s.Wall <= 0 {
			t.Fatalf("%s: wall = %v", label, s.Wall)
		}
		if sum := s.Phases.Sum(); sum > s.Wall {
			t.Fatalf("%s: phase sum %v exceeds wall %v", label, sum, s.Wall)
		}
	}
	for _, cfg := range Configs(nConfigs) {
		c, err := cfg.Build()
		if err != nil {
			t.Fatalf("%s: build: %v", cfg.Name, err)
		}
		for _, vec := range []struct {
			label  string
			events []service.Event
		}{
			{"full", cfg.WireVector(c, 0)},
			{"partial", cfg.PartialWireVector(c, 1)},
		} {
			evs, err := ToPIEvents(c, vec.events)
			if err != nil {
				t.Fatalf("%s/%s: events: %v", cfg.Name, vec.label, err)
			}
			dense, err := c.AnalyzeOpts(evs, cfg.Mode, sta.Options{Workers: 2, Dense: true})
			if err != nil {
				t.Fatalf("%s/%s: dense: %v", cfg.Name, vec.label, err)
			}
			sparse, err := c.AnalyzeOpts(evs, cfg.Mode, sta.Options{Workers: 2})
			if err != nil {
				t.Fatalf("%s/%s: sparse: %v", cfg.Name, vec.label, err)
			}
			d, s := dense.Stats, sparse.Stats
			if d.GatesEvaluated != s.GatesEvaluated ||
				d.Evaluations != s.Evaluations ||
				d.ProximityEvals != s.ProximityEvals ||
				d.SingleArcEvals != s.SingleArcEvals ||
				d.Levels != s.Levels {
				t.Errorf("%s/%s: stats diverge dense vs sparse:\n"+
					"  gatesEvaluated %d/%d evaluations %d/%d proximity %d/%d singleArc %d/%d levels %d/%d",
					cfg.Name, vec.label,
					d.GatesEvaluated, s.GatesEvaluated, d.Evaluations, s.Evaluations,
					d.ProximityEvals, s.ProximityEvals, d.SingleArcEvals, s.SingleArcEvals,
					d.Levels, s.Levels)
			}
			checkPhases(cfg.Name+"/"+vec.label+"/dense", d)
			checkPhases(cfg.Name+"/"+vec.label+"/sparse", s)
		}
	}
}
