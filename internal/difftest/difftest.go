// Package difftest is the differential-testing and metamorphic-invariant
// harness for the analyze path. The paper's Algorithm ProximityDelay is
// compositional — the answer must not depend on how the work is scheduled —
// so the repo's parallel, batched, and HTTP execution paths are all checked
// against the serial reference over seeded random circuits and stimuli,
// together with the metamorphic invariants the model implies (time-shift
// equivariance, worker-count invariance, net-relabeling consistency,
// event-order independence).
//
// This file holds the pure harness: config enumeration, circuit/stimulus
// generation, and result comparison. The oracles themselves live in the
// package's tests, so the harness is importable without dragging in testing.
package difftest

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"repro/internal/service"
	"repro/internal/sta"
	"repro/internal/waveform"
)

// Config is one seeded circuit/stimulus configuration. Everything about the
// run — topology, stimulus, and analysis mode — is a deterministic function
// of the fields, so a failing config replays exactly from its Name.
type Config struct {
	Name   string
	Seed   int64
	NPIs   int
	NGates int
	// Chain selects the deep inverter chain (levelization stress) instead
	// of the wide random DAG; ChainDepth is its length.
	Chain      bool
	ChainDepth int
	Mode       sta.Mode
}

// Configs enumerates n deterministic configurations cycling through circuit
// shapes (wide shallow DAGs, larger mixed DAGs, deep chains), both analysis
// modes, and distinct seeds. The same n always yields the same list.
func Configs(n int) []Config {
	shapes := []struct{ npis, ngates int }{
		{4, 24}, {8, 60}, {12, 120}, {16, 200}, {6, 48}, {10, 90},
	}
	out := make([]Config, 0, n)
	for i := 0; len(out) < n; i++ {
		mode := sta.Proximity
		if i%3 == 2 {
			mode = sta.Conventional
		}
		seed := int64(1000 + i)
		if i%7 == 6 {
			depth := 20 + 15*(i%5)
			out = append(out, Config{
				Name: fmt.Sprintf("chain%d-d%d-%v", seed, depth, mode),
				Seed: seed, Chain: true, ChainDepth: depth, Mode: mode,
			})
			continue
		}
		sh := shapes[i%len(shapes)]
		out = append(out, Config{
			Name: fmt.Sprintf("dag%d-p%dg%d-%v", seed, sh.npis, sh.ngates, mode),
			Seed: seed, NPIs: sh.npis, NGates: sh.ngates, Mode: mode,
		})
	}
	return out
}

// Build constructs the configuration's circuit.
func (cfg Config) Build() (*sta.Circuit, error) {
	if cfg.Chain {
		c, _, _, err := sta.SynthChain(cfg.ChainDepth)
		return c, err
	}
	return sta.SynthRandom(cfg.NPIs, cfg.NGates, cfg.Seed)
}

// WireVector generates stimulus vector k for the circuit at the wire level:
// one event per primary input. Generating in wire units first means the
// in-process and HTTP paths apply the identical ps→seconds conversion,
// keeping cross-path comparisons bit-exact.
//
// Times and transition times are continuous (full random mantissas), not
// integer picoseconds: Algorithm ProximityDelay is discontinuous at
// dominance ties (when two solo output crossings coincide the reference
// choice is arbitrary, and the per-reference tables differ), and
// lattice-valued stimuli against the synthetic models' exact per-pin
// offsets make such ties likely instead of measure-zero. Continuous times
// keep every tie-flip probability at the 1-ULP level, so the metamorphic
// invariants can assert tight bounds. JSON round-trips float64 exactly
// (shortest round-trip encoding), so continuity costs the HTTP oracle
// nothing.
func (cfg Config) WireVector(c *sta.Circuit, k int) []service.Event {
	rng := rand.New(rand.NewSource(cfg.Seed*1_000_003 + int64(k)))
	vec := make([]service.Event, len(c.PIs))
	for i, pi := range c.PIs {
		dir := "rise"
		if rng.Intn(2) == 1 {
			dir = "fall"
		}
		vec[i] = service.Event{
			Net:    pi.Name,
			Dir:    dir,
			TTPs:   120 + 400*rng.Float64(),
			TimePs: 120 * rng.Float64(),
		}
	}
	return vec
}

// PartialWireVector is WireVector k restricted to a seeded subset of about
// a quarter of the primary inputs (always at least one) — the
// partial-activity stimulus shape cone-pruned sparse scheduling exists for,
// where dense and sparse walks genuinely schedule different gate sets.
func (cfg Config) PartialWireVector(c *sta.Circuit, k int) []service.Event {
	full := cfg.WireVector(c, k)
	rng := rand.New(rand.NewSource(cfg.Seed*2_000_003 + int64(k)))
	keep := len(full) / 4
	if keep < 1 {
		keep = 1
	}
	out := make([]service.Event, 0, keep)
	for _, i := range rng.Perm(len(full))[:keep] {
		out = append(out, full[i])
	}
	return out
}

// ToPIEvents converts wire events to engine events with the same arithmetic
// the service applies (ps × 1e-12), resolving nets by name.
func ToPIEvents(c *sta.Circuit, vec []service.Event) ([]sta.PIEvent, error) {
	evs := make([]sta.PIEvent, len(vec))
	for i, ev := range vec {
		n := c.Net(ev.Net)
		if n == nil {
			return nil, fmt.Errorf("difftest: unknown net %q", ev.Net)
		}
		var dir waveform.Direction
		switch ev.Dir {
		case "rise":
			dir = waveform.Rising
		case "fall":
			dir = waveform.Falling
		default:
			return nil, fmt.Errorf("difftest: bad direction %q", ev.Dir)
		}
		evs[i] = sta.PIEvent{Net: n, Dir: dir, TT: ev.TTPs * 1e-12, Time: ev.TimePs * 1e-12}
	}
	return evs, nil
}

// ArrivalKey identifies one reported transition.
type ArrivalKey struct {
	Net string
	Dir waveform.Direction
}

// Arrivals flattens a result into a comparable map over every net in the
// circuit (not just primary outputs — internal nets must agree too).
func Arrivals(c *sta.Circuit, res *sta.Result) map[ArrivalKey]sta.Arrival {
	out := map[ArrivalKey]sta.Arrival{}
	for _, name := range c.NetsByName() {
		n := c.Net(name)
		for _, dir := range []waveform.Direction{waveform.Rising, waveform.Falling} {
			if a, ok := res.Arrival(n, dir); ok {
				out[ArrivalKey{name, dir}] = a
			}
		}
	}
	return out
}

// DiffExact requires two arrival maps to be bit-identical: same keys, and
// per key the same Time, TT, and UsedInputs. The returned error names the
// first mismatching net. rename maps a's net names into b's namespace (nil
// = identity).
func DiffExact(a, b map[ArrivalKey]sta.Arrival, rename map[string]string) error {
	mapKey := func(k ArrivalKey) ArrivalKey {
		if rename == nil {
			return k
		}
		if to, ok := rename[k.Net]; ok {
			return ArrivalKey{to, k.Dir}
		}
		return k
	}
	if len(a) != len(b) {
		return fmt.Errorf("arrival count %d vs %d", len(a), len(b))
	}
	for k, av := range a {
		bv, ok := b[mapKey(k)]
		if !ok {
			return fmt.Errorf("net %s %v present in one result only", k.Net, k.Dir)
		}
		if av.Time != bv.Time || av.TT != bv.TT || av.UsedInputs != bv.UsedInputs {
			return fmt.Errorf("net %s %v: (t=%.18e tt=%.18e used=%d) vs (t=%.18e tt=%.18e used=%d)",
				k.Net, k.Dir, av.Time, av.TT, av.UsedInputs, bv.Time, bv.TT, bv.UsedInputs)
		}
	}
	return nil
}

// DiffWithin requires the same arrival sets with Time and TT each agreeing
// to their own relative tolerance (plus absTol slack for near-zero values)
// — the oracle for backends that are alternative interpolations of the same
// tables. TT gets a separate, looser budget: proximity-window membership is
// discrete, so a borderline arrival shift can add or drop one multiplicative
// TT factor while the arrival time moves much less.
func DiffWithin(a, b map[ArrivalKey]sta.Arrival, relTime, relTT, absTol float64) error {
	if len(a) != len(b) {
		return fmt.Errorf("arrival count %d vs %d", len(a), len(b))
	}
	within := func(x, y, rel float64) bool {
		return math.Abs(x-y) <= absTol+rel*math.Max(math.Abs(x), math.Abs(y))
	}
	for k, av := range a {
		bv, ok := b[k]
		if !ok {
			return fmt.Errorf("net %s %v present in one result only", k.Net, k.Dir)
		}
		if !within(av.Time, bv.Time, relTime) || !within(av.TT, bv.TT, relTT) {
			return fmt.Errorf("net %s %v: (t=%.6e tt=%.6e) vs (t=%.6e tt=%.6e) beyond rel %g/%g",
				k.Net, k.Dir, av.Time, av.TT, bv.Time, bv.TT, relTime, relTT)
		}
	}
	return nil
}

// ShiftEvents returns a copy of the events with every primary-input time
// shifted by dt — the stimulus half of the time-shift equivariance
// invariant.
func ShiftEvents(events []sta.PIEvent, dt float64) []sta.PIEvent {
	out := make([]sta.PIEvent, len(events))
	for i, ev := range events {
		ev.Time += dt
		out[i] = ev
	}
	return out
}

// ShuffleEvents returns a seeded permutation of the event list — the
// analysis must be independent of the order events are presented in.
func ShuffleEvents(events []sta.PIEvent, seed int64) []sta.PIEvent {
	out := append([]sta.PIEvent(nil), events...)
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// RenameNets serializes the circuit with every net renamed through a
// deterministic seeded permutation, returning the netlist text and the
// old→new mapping. Parsing the text over an equivalent library yields the
// same circuit up to labels — arrivals must be bit-identical per mapped net.
func RenameNets(c *sta.Circuit, seed int64) (netlist string, mapping map[string]string) {
	names := c.NetsByName()
	perm := rand.New(rand.NewSource(seed)).Perm(len(names))
	mapping = make(map[string]string, len(names))
	for i, name := range names {
		mapping[name] = fmt.Sprintf("w%d", perm[i])
	}
	var b strings.Builder
	if len(c.PIs) > 0 {
		b.WriteString("input")
		for _, pi := range c.PIs {
			b.WriteByte(' ')
			b.WriteString(mapping[pi.Name])
		}
		b.WriteByte('\n')
	}
	for i, g := range c.Gates {
		fmt.Fprintf(&b, "gate q%d %s %s", i, g.Type, mapping[g.Out.Name])
		for _, in := range g.In {
			b.WriteByte(' ')
			b.WriteString(mapping[in.Name])
		}
		b.WriteByte('\n')
	}
	if len(c.POs) > 0 {
		b.WriteString("output")
		for _, po := range c.POs {
			b.WriteByte(' ')
			b.WriteString(mapping[po.Name])
		}
		b.WriteByte('\n')
	}
	return b.String(), mapping
}

// RenameEvents maps a stimulus onto the renamed circuit.
func RenameEvents(renamed *sta.Circuit, events []sta.PIEvent, mapping map[string]string) ([]sta.PIEvent, error) {
	out := make([]sta.PIEvent, len(events))
	for i, ev := range events {
		n := renamed.Net(mapping[ev.Net.Name])
		if n == nil {
			return nil, fmt.Errorf("difftest: renamed net for %q missing", ev.Net.Name)
		}
		out[i] = sta.PIEvent{Net: n, Dir: ev.Dir, TT: ev.TT, Time: ev.Time}
	}
	return out, nil
}
