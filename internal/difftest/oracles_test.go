package difftest

import (
	"strings"
	"testing"

	"repro/internal/service"
	"repro/internal/sta"
	"repro/internal/waveform"
)

// nConfigs is the seeded configuration budget each oracle sweeps. The
// acceptance bar is ≥ 100; keep a margin so trimming shapes never dips
// below it.
const nConfigs = 120

// buildWithEvents constructs a config's circuit and its k-th stimulus.
func buildWithEvents(t *testing.T, cfg Config, k int) (*sta.Circuit, []sta.PIEvent) {
	t.Helper()
	c, err := cfg.Build()
	if err != nil {
		t.Fatalf("%s: build: %v", cfg.Name, err)
	}
	evs, err := ToPIEvents(c, cfg.WireVector(c, k))
	if err != nil {
		t.Fatalf("%s: events: %v", cfg.Name, err)
	}
	return c, evs
}

// TestOracleParallelVsSerial: the levelized parallel schedule must be
// bit-identical to the serial reference on every config — the schedule
// changes, the arithmetic must not.
func TestOracleParallelVsSerial(t *testing.T) {
	proxEvals := 0
	compared := 0
	for _, cfg := range Configs(nConfigs) {
		c, evs := buildWithEvents(t, cfg, 0)
		serial, err := c.AnalyzeOpts(evs, cfg.Mode, sta.Options{Workers: 1})
		if err != nil {
			t.Fatalf("%s: serial: %v", cfg.Name, err)
		}
		parallel, err := c.AnalyzeOpts(evs, cfg.Mode, sta.Options{Workers: 8})
		if err != nil {
			t.Fatalf("%s: parallel: %v", cfg.Name, err)
		}
		if err := DiffExact(Arrivals(c, serial), Arrivals(c, parallel), nil); err != nil {
			t.Errorf("%s: parallel diverges from serial: %v", cfg.Name, err)
		}
		proxEvals += serial.Stats.ProximityEvals
		compared += len(Arrivals(c, serial))
	}
	if proxEvals == 0 {
		t.Fatal("no proximity evaluations across the whole sweep — oracle is vacuous")
	}
	if compared < 10*nConfigs {
		t.Fatalf("only %d arrivals compared over %d configs — sweep too thin", compared, nConfigs)
	}
}

// TestOracleBatchVsPerVector: AnalyzeBatch over N vectors must reproduce N
// independent Analyze calls exactly, for every vector index.
func TestOracleBatchVsPerVector(t *testing.T) {
	const vectorsPerConfig = 4
	for _, cfg := range Configs(nConfigs) {
		c, err := cfg.Build()
		if err != nil {
			t.Fatalf("%s: build: %v", cfg.Name, err)
		}
		batch := make([][]sta.PIEvent, vectorsPerConfig)
		for k := range batch {
			if batch[k], err = ToPIEvents(c, cfg.WireVector(c, k)); err != nil {
				t.Fatalf("%s: vector %d: %v", cfg.Name, k, err)
			}
		}
		results, err := c.AnalyzeBatch(batch, cfg.Mode, sta.Options{Workers: 4})
		if err != nil {
			t.Fatalf("%s: batch: %v", cfg.Name, err)
		}
		for k, res := range results {
			single, err := c.AnalyzeOpts(batch[k], cfg.Mode, sta.Options{Workers: 1})
			if err != nil {
				t.Fatalf("%s: single %d: %v", cfg.Name, k, err)
			}
			if err := DiffExact(Arrivals(c, single), Arrivals(c, res), nil); err != nil {
				t.Errorf("%s: batch vector %d diverges from Analyze: %v", cfg.Name, k, err)
			}
		}
	}
}

// TestOracleSparseVsDense: cone-pruned sparse scheduling must be
// bit-identical to the dense full-schedule walk on every config, for both a
// full-activity vector and a partial one (the shape where the schedules
// genuinely differ). The sweep also proves itself non-vacuous: across the
// partial vectors sparse must schedule strictly fewer gates than dense in
// aggregate, or the pruning never engaged.
func TestOracleSparseVsDense(t *testing.T) {
	var scheduledSparse, scheduledDense int
	for _, cfg := range Configs(nConfigs) {
		c, err := cfg.Build()
		if err != nil {
			t.Fatalf("%s: build: %v", cfg.Name, err)
		}
		for _, vec := range []struct {
			label  string
			events []service.Event
		}{
			{"full", cfg.WireVector(c, 0)},
			{"partial", cfg.PartialWireVector(c, 1)},
		} {
			evs, err := ToPIEvents(c, vec.events)
			if err != nil {
				t.Fatalf("%s/%s: events: %v", cfg.Name, vec.label, err)
			}
			dense, err := c.AnalyzeOpts(evs, cfg.Mode, sta.Options{Workers: 1, Dense: true})
			if err != nil {
				t.Fatalf("%s/%s: dense: %v", cfg.Name, vec.label, err)
			}
			sparse, err := c.AnalyzeOpts(evs, cfg.Mode, sta.Options{Workers: 4})
			if err != nil {
				t.Fatalf("%s/%s: sparse: %v", cfg.Name, vec.label, err)
			}
			if err := DiffExact(Arrivals(c, dense), Arrivals(c, sparse), nil); err != nil {
				t.Errorf("%s/%s: sparse diverges from dense: %v", cfg.Name, vec.label, err)
			}
			if sparse.Stats.GatesEvaluated != dense.Stats.GatesEvaluated {
				t.Errorf("%s/%s: sparse evaluated %d gates, dense %d — pruning changed the work, not just the schedule",
					cfg.Name, vec.label, sparse.Stats.GatesEvaluated, dense.Stats.GatesEvaluated)
			}
			if vec.label == "partial" {
				scheduledSparse += sparse.Stats.GatesScheduled
				scheduledDense += dense.Stats.GatesScheduled
			}
		}
	}
	if scheduledSparse >= scheduledDense {
		t.Fatalf("sparse scheduled %d gates vs dense %d on partial vectors — pruning never engaged, oracle vacuous",
			scheduledSparse, scheduledDense)
	}
}

// TestOracleZeroConeStimulus: stimulating only primary inputs with no
// fanout at all must succeed with an empty schedule — the stimulated PIs'
// own arrivals and nothing else. Run against a circuit where one PI drives
// gates and one drives nothing, under both schedules.
func TestOracleZeroConeStimulus(t *testing.T) {
	c, in, out, err := sta.SynthChain(8)
	if err != nil {
		t.Fatal(err)
	}
	_ = in
	dangling := c.Input("dangling")
	evs := []sta.PIEvent{{Net: dangling, Dir: waveform.Rising, Time: 0, TT: 250e-12}}
	for _, opt := range []sta.Options{{Workers: 1}, {Workers: 1, Dense: true}} {
		res, err := c.AnalyzeOpts(evs, sta.Proximity, opt)
		if err != nil {
			t.Fatalf("dense=%v: zero-cone stimulus errored: %v", opt.Dense, err)
		}
		if res.Stats.GatesEvaluated != 0 {
			t.Fatalf("dense=%v: evaluated %d gates with no reachable fanout", opt.Dense, res.Stats.GatesEvaluated)
		}
		if _, ok := res.Latest(out); ok {
			t.Fatalf("dense=%v: unreachable output carries an arrival", opt.Dense)
		}
		if _, ok := res.Arrival(dangling, waveform.Rising); !ok {
			t.Fatalf("dense=%v: stimulated PI lost its arrival", opt.Dense)
		}
		if !opt.Dense && res.Stats.GatesScheduled != 0 {
			t.Fatalf("sparse scheduled %d gates for an empty cone, want 0", res.Stats.GatesScheduled)
		}
	}
}

// cubicLibrary returns a synthetic library with every calculator switched
// to cubic Hermite table interpolation. The tables are the same grids as
// the linear default — only the in-between reconstruction differs.
func cubicLibrary() *sta.Library {
	lib := sta.SynthLibrary(3)
	for _, name := range []string{"inv", "nand2", "nand3"} {
		lib.Get(name).CubicTables = true
	}
	return lib
}

// TestOracleTableVsCubic: linear and cubic reconstructions of the same
// characterized grids must agree within tolerance everywhere — a divergence
// beyond interpolation error means one backend reads the tables wrong. The
// cubic path must also actually differ somewhere, or the toggle is dead.
func TestOracleTableVsCubic(t *testing.T) {
	// Measured over this sweep: arrival times differ by at most ~3.5%
	// between the two reconstructions, TTs by up to ~33% (window membership
	// is discrete — a borderline shift adds or drops one multiplicative TT
	// factor). The budgets below leave ~2× headroom; a broken backend blows
	// through them by orders of magnitude.
	const relTime, relTT, absTol = 8e-2, 5e-1, 1e-13
	differing := 0
	for _, cfg := range Configs(nConfigs) {
		c, evs := buildWithEvents(t, cfg, 0)
		var text strings.Builder
		if err := sta.WriteNetlist(&text, c); err != nil {
			t.Fatalf("%s: serialize: %v", cfg.Name, err)
		}
		cc, err := sta.ParseNetlist(strings.NewReader(text.String()), cubicLibrary())
		if err != nil {
			t.Fatalf("%s: reparse over cubic library: %v", cfg.Name, err)
		}
		cubicEvs := make([]sta.PIEvent, len(evs))
		for i, ev := range evs {
			cubicEvs[i] = sta.PIEvent{Net: cc.Net(ev.Net.Name), Dir: ev.Dir, TT: ev.TT, Time: ev.Time}
		}
		linRes, err := c.AnalyzeOpts(evs, cfg.Mode, sta.Options{Workers: 1})
		if err != nil {
			t.Fatalf("%s: linear: %v", cfg.Name, err)
		}
		cubRes, err := cc.AnalyzeOpts(cubicEvs, cfg.Mode, sta.Options{Workers: 1})
		if err != nil {
			t.Fatalf("%s: cubic: %v", cfg.Name, err)
		}
		lin, cub := Arrivals(c, linRes), Arrivals(cc, cubRes)
		if err := DiffWithin(lin, cub, relTime, relTT, absTol); err != nil {
			t.Errorf("%s: cubic backend diverges beyond tolerance: %v", cfg.Name, err)
		}
		for k, av := range lin {
			if bv, ok := cub[k]; ok && (av.Time != bv.Time || av.TT != bv.TT) {
				differing++
			}
		}
	}
	if differing == 0 {
		t.Fatal("cubic backend never produced a different value — toggle appears dead, oracle vacuous")
	}
}
