package difftest

// Section-6 pulse-filtering oracles.
//
// Filtering is a commit-time verdict over opposite-edge output pairs, so it
// inherits two engine-level contracts the sweep enforces:
//
//  1. Disabled identity: with filtering off — or on but with no glitch
//     models characterized — the analysis must be bit-identical to the seed
//     path. The feature must be a pure no-op until both the option and the
//     characterization data are present.
//  2. Schedule independence: the verdicts are a function of the committed
//     arrival pairs, not of how the walk was scheduled, so sparse/dense and
//     serial/parallel runs must agree bit for bit, counters included.
//
// The third oracle leaves the macromodel entirely: it characterizes a real
// nand2 with the spice backend, then checks the engine's filter/propagate
// verdict against direct transient simulation of the runt pulse — the
// ground truth the Section-6 tables abstract.

import (
	"math"
	"sync"
	"testing"

	"repro/internal/cells"
	"repro/internal/core"
	"repro/internal/macromodel"
	"repro/internal/spice"
	"repro/internal/sta"
	"repro/internal/table"
	"repro/internal/vtc"
	"repro/internal/waveform"
)

// TestOracleGlitchDisabledIdentity sweeps every config three ways: filtering
// off (reference), filtering on (counters aggregated for non-vacuity), and —
// after stripping every calculator's glitch models — both off and on again.
// The stripped runs must be bit-identical to the reference: the off path
// must never read glitch data, and the on path must degrade to a no-op
// without it.
func TestOracleGlitchDisabledIdentity(t *testing.T) {
	filtered, degraded := 0, 0
	for _, cfg := range Configs(nConfigs) {
		c, evs := buildWithEvents(t, cfg, 0)
		off, err := c.AnalyzeOpts(evs, cfg.Mode, sta.Options{Workers: 1})
		if err != nil {
			t.Fatalf("%s: off: %v", cfg.Name, err)
		}
		on, err := c.AnalyzeOpts(evs, cfg.Mode, sta.Options{Workers: 1, PulseFiltering: true})
		if err != nil {
			t.Fatalf("%s: on: %v", cfg.Name, err)
		}
		filtered += on.Stats.PulsesFiltered
		degraded += on.Stats.PulsesDegraded

		// SynthModel mints fresh models per library, so this mutation is
		// confined to this config's circuit.
		for _, g := range c.Gates {
			g.Calc.Model.Glitches = nil
		}
		offBare, err := c.AnalyzeOpts(evs, cfg.Mode, sta.Options{Workers: 1})
		if err != nil {
			t.Fatalf("%s: off stripped: %v", cfg.Name, err)
		}
		if err := DiffExact(Arrivals(c, off), Arrivals(c, offBare), nil); err != nil {
			t.Errorf("%s: filtering-off run read glitch models: %v", cfg.Name, err)
		}
		onBare, err := c.AnalyzeOpts(evs, cfg.Mode, sta.Options{Workers: 1, PulseFiltering: true})
		if err != nil {
			t.Fatalf("%s: on stripped: %v", cfg.Name, err)
		}
		if err := DiffExact(Arrivals(c, off), Arrivals(c, onBare), nil); err != nil {
			t.Errorf("%s: filtering without models diverges from off: %v", cfg.Name, err)
		}
		if onBare.Stats.PulsesFiltered != 0 || onBare.Stats.PulsesDegraded != 0 {
			t.Errorf("%s: stripped run still judged pulses: %+v", cfg.Name, onBare.Stats)
		}
	}
	if filtered == 0 {
		t.Fatal("no pulse filtered across the whole sweep — oracle is vacuous")
	}
	if degraded == 0 {
		t.Fatal("no pulse degraded across the whole sweep — oracle is vacuous")
	}
}

// TestOracleGlitchScheduleIdentity: with filtering on, sparse/dense and
// serial/parallel schedules must produce bit-identical arrivals and equal
// verdict counters on every config.
func TestOracleGlitchScheduleIdentity(t *testing.T) {
	judged := 0
	for _, cfg := range Configs(nConfigs) {
		c, evs := buildWithEvents(t, cfg, 0)
		ref, err := c.AnalyzeOpts(evs, cfg.Mode, sta.Options{Workers: 1, PulseFiltering: true})
		if err != nil {
			t.Fatalf("%s: reference: %v", cfg.Name, err)
		}
		for _, alt := range []struct {
			name string
			opt  sta.Options
		}{
			{"dense serial", sta.Options{Workers: 1, Dense: true, PulseFiltering: true}},
			{"sparse parallel", sta.Options{Workers: 8, PulseFiltering: true}},
			{"dense parallel", sta.Options{Workers: 8, Dense: true, PulseFiltering: true}},
		} {
			got, err := c.AnalyzeOpts(evs, cfg.Mode, alt.opt)
			if err != nil {
				t.Fatalf("%s: %s: %v", cfg.Name, alt.name, err)
			}
			if err := DiffExact(Arrivals(c, ref), Arrivals(c, got), nil); err != nil {
				t.Errorf("%s: %s diverges from sparse serial: %v", cfg.Name, alt.name, err)
			}
			if got.Stats.PulsesFiltered != ref.Stats.PulsesFiltered ||
				got.Stats.PulsesDegraded != ref.Stats.PulsesDegraded {
				t.Errorf("%s: %s counters (%d,%d) != reference (%d,%d)", cfg.Name, alt.name,
					got.Stats.PulsesFiltered, got.Stats.PulsesDegraded,
					ref.Stats.PulsesFiltered, ref.Stats.PulsesDegraded)
			}
		}
		judged += ref.Stats.PulsesFiltered + ref.Stats.PulsesDegraded
	}
	if judged == 0 {
		t.Fatal("no pulse judged across the whole sweep — oracle is vacuous")
	}
}

// ---- spice ground truth -----------------------------------------------------

// glitchRig is the real-spice fixture the verdict oracle runs on: a nand2,
// a nor2 and an inv characterized through the actual transistor-level
// backend, the multi-input gates each carrying a glitch model for the pair
// (fall=pin0, rise=pin1) — the nand's negative-going dip and the nor's
// positive-going bump — plus the live simulators for direct ground-truth
// runs.
type glitchRig struct {
	lib *sta.Library
	sim *macromodel.GateSim // nand2 simulator
	gm  *macromodel.GlitchModel
	th  waveform.Thresholds

	norSim *macromodel.GateSim
	norGM  *macromodel.GlitchModel
	norTh  waveform.Thresholds
}

var (
	rigOnce sync.Once
	rig     *glitchRig
	rigErr  error
)

// glitchGridTaus keeps the table's τ axes tight around the stimulus
// transition times the oracle uses, so interpolation error stays well inside
// the decisive-voltage margin.
var glitchGridTaus = table.LinSpace(100e-12, 600e-12, 3)

func spiceRig(t *testing.T) *glitchRig {
	t.Helper()
	rigOnce.Do(func() {
		lib := sta.NewLibrary()
		r := &glitchRig{}
		for _, spec := range []struct {
			name string
			kind cells.Kind
			n    int
		}{{"nand2", cells.Nand, 2}, {"nor2", cells.Nor, 2}, {"inv", cells.Inv, 1}} {
			cell := cells.MustNew(spec.kind, spec.n, cells.DefaultProcess(), cells.DefaultGeometry())
			fam, err := vtc.Extract(cell, spice.DefaultOptions(), 0.02)
			if err != nil {
				rigErr = err
				return
			}
			sim := macromodel.NewGateSim(cell, spice.DefaultOptions(), fam.Thresholds)
			model, err := macromodel.CharacterizeGate(sim, macromodel.CoarseCharSpec())
			if err != nil {
				rigErr = err
				return
			}
			calc := core.NewCalculator(model)
			if spec.n >= 2 {
				if err := core.CalibrateCorrection(calc, sim); err != nil {
					rigErr = err
					return
				}
				// The nand completes when the falling input trails far
				// behind; the nor when it leads — mirror the swept range so
				// each polarity's completion boundary sits inside its grid.
				seps := table.LinSpace(-600e-12, 1.4e-9, 11)
				if spec.kind == cells.Nor {
					seps = table.LinSpace(-1.4e-9, 600e-12, 11)
				}
				gm, err := sim.CharacterizeGlitch(0, 1, macromodel.GlitchGridSpec{
					TausFall: glitchGridTaus,
					TausRise: glitchGridTaus,
					Seps:     seps,
				})
				if err != nil {
					rigErr = err
					return
				}
				model.Glitches = []*macromodel.GlitchModel{gm}
				if spec.kind == cells.Nor {
					r.norSim, r.norGM, r.norTh = sim, gm, model.Th
				} else {
					r.sim, r.gm, r.th = sim, gm, model.Th
				}
			}
			lib.Add(spec.name, calc)
		}
		r.lib = lib
		rig = r
	})
	if rigErr != nil {
		t.Fatal(rigErr)
	}
	return rig
}

// decisiveMargin is how far (volts) the simulated extreme must sit from the
// completion threshold for the point to count: closer than this, table
// interpolation legitimately lands on either side and the verdict is not a
// model error either way.
const decisiveMargin = 0.2

// spiceSaysFilter runs the ground-truth transient and classifies the pulse:
// filter (the extreme never reaches the completion threshold — Vil for a
// negative-going dip, Vih for a positive-going bump), propagate, or
// indecisive (skip).
func spiceSaysFilter(t *testing.T, sim *macromodel.GateSim, gm *macromodel.GlitchModel, th waveform.Thresholds, ttFall, ttRise, sep float64) (filter, decisive bool) {
	t.Helper()
	extreme, err := sim.RunGlitch(0, 1, ttFall, ttRise, sep)
	if err != nil {
		t.Fatalf("spice glitch run: %v", err)
	}
	level := th.Vil
	if !gm.NegativeGoing {
		level = th.Vih
	}
	if math.Abs(extreme-level) < decisiveMargin {
		return false, false
	}
	if gm.NegativeGoing {
		return extreme > level, true
	}
	return extreme < level, true
}

// TestOracleGlitchSpiceVerdicts sweeps the input separation across the
// characterized inertial delay on a real nand2 and requires the engine's
// filter/propagate verdict to match direct spice simulation at every
// decisive point — with at least one pulse absorbed and one propagated, so
// both verdict classes are exercised against ground truth.
func TestOracleGlitchSpiceVerdicts(t *testing.T) {
	r := spiceRig(t)
	const tt = 300e-12
	minSep, ok := r.gm.MinSeparation(tt, tt, r.th)
	if !ok {
		t.Fatal("characterized nand2 never completes a transition in the swept range")
	}

	c := sta.NewCircuit(r.lib)
	a, b := c.Input("a"), c.Input("b")
	x, err := c.AddGate("g1", "nand2", "x", a, b)
	if err != nil {
		t.Fatal(err)
	}
	y, err := c.AddGate("g2", "inv", "y", x)
	if err != nil {
		t.Fatal(err)
	}
	c.MarkOutput(y)

	sawFilter, sawPropagate := 0, 0
	for _, off := range []float64{-250e-12, -120e-12, -40e-12, 40e-12, 150e-12, 400e-12} {
		sep := minSep + off
		if sep < 30e-12 {
			// Near-zero or negative separations flip the output edge order
			// into the positive-runt shape the NAND model does not judge.
			continue
		}
		evs := []sta.PIEvent{
			{Net: b, Dir: waveform.Rising, TT: tt, Time: 0},
			{Net: a, Dir: waveform.Falling, TT: tt, Time: sep},
		}
		res, err := c.AnalyzeOpts(evs, sta.Proximity, sta.Options{Workers: 1, PulseFiltering: true})
		if err != nil {
			t.Fatalf("sep %g: analyze: %v", sep, err)
		}
		// Far above the inertial delay the pulse is full-swing and propagates
		// untouched (no counter) — still a propagate verdict.
		engineFilters := res.Stats.PulsesFiltered == 1

		// The engine's verdict must be consistent with what it committed:
		// an absorbed pulse leaves nothing on x or downstream y.
		_, riseOK := res.Arrival(x, waveform.Rising)
		_, fallOK := res.Arrival(x, waveform.Falling)
		if engineFilters && (riseOK || fallOK) {
			t.Fatalf("sep %g: filtered pulse still committed arrivals on x", sep)
		}
		if !engineFilters && !(riseOK && fallOK) {
			t.Fatalf("sep %g: propagated pulse lost an edge on x", sep)
		}
		if _, ok := res.Arrival(y, waveform.Falling); ok == engineFilters {
			t.Fatalf("sep %g: downstream y disagrees with the verdict (filtered=%v)", sep, engineFilters)
		}

		spiceFilters, decisive := spiceSaysFilter(t, r.sim, r.gm, r.th, tt, tt, sep)
		if !decisive {
			t.Logf("sep %g: extreme within %gV of Vil — indecisive, skipped", sep, decisiveMargin)
			continue
		}
		if engineFilters != spiceFilters {
			t.Errorf("sep %g: engine filters=%v but spice ground truth filters=%v", sep, engineFilters, spiceFilters)
		}
		if spiceFilters {
			sawFilter++
		} else {
			sawPropagate++
		}
	}
	if sawFilter == 0 || sawPropagate == 0 {
		t.Fatalf("verdict sweep vacuous: %d filtered, %d propagated decisive points", sawFilter, sawPropagate)
	}
}

// TestOracleGlitchSpiceVerdictsNor is the positive-going mirror of the nand
// sweep: on a real nor2 the bump's falling cause LEADS the rising one, so
// the verdict is judged at negative raw separations (pulse width
// rise − fall). The engine's filter/propagate verdict must match direct
// spice simulation at every decisive point — the polarity the
// NAND-oriented bisection used to absorb at every separation.
func TestOracleGlitchSpiceVerdictsNor(t *testing.T) {
	r := spiceRig(t)
	const tt = 300e-12
	if r.norGM.NegativeGoing {
		t.Fatal("characterized nor2 glitch is not positive-going")
	}
	minW, ok := r.norGM.MinSeparation(tt, tt, r.norTh)
	if !ok {
		t.Fatal("characterized nor2 never completes a transition in the swept range")
	}

	c := sta.NewCircuit(r.lib)
	a, b := c.Input("a"), c.Input("b")
	x, err := c.AddGate("g1", "nor2", "x", a, b)
	if err != nil {
		t.Fatal(err)
	}
	y, err := c.AddGate("g2", "inv", "y", x)
	if err != nil {
		t.Fatal(err)
	}
	c.MarkOutput(y)

	sawFilter, sawPropagate := 0, 0
	for _, off := range []float64{-250e-12, -120e-12, -40e-12, 40e-12, 150e-12, 400e-12} {
		width := minW + off
		if width < 30e-12 {
			// Near-zero or negative widths flip the output edge order into
			// the shape the NOR model does not judge.
			continue
		}
		// a (pin 0) falls at 0, b (pin 1) rises at width: raw separation
		// cross(fall) − cross(rise) = −width.
		evs := []sta.PIEvent{
			{Net: a, Dir: waveform.Falling, TT: tt, Time: 0},
			{Net: b, Dir: waveform.Rising, TT: tt, Time: width},
		}
		res, err := c.AnalyzeOpts(evs, sta.Proximity, sta.Options{Workers: 1, PulseFiltering: true})
		if err != nil {
			t.Fatalf("width %g: analyze: %v", width, err)
		}
		engineFilters := res.Stats.PulsesFiltered == 1

		ar, riseOK := res.Arrival(x, waveform.Rising)
		af, fallOK := res.Arrival(x, waveform.Falling)
		if engineFilters && (riseOK || fallOK) {
			t.Fatalf("width %g: filtered pulse still committed arrivals on x", width)
		}
		if !engineFilters {
			if !(riseOK && fallOK) {
				t.Fatalf("width %g: propagated pulse lost an edge on x", width)
			}
			if !(ar.Time < af.Time) {
				// The characterized bump needs a rising lead; a flipped pair
				// is a different pulse shape the model leaves untouched.
				t.Logf("width %g: falling edge leads on x — outside the judged polarity, skipped", width)
				continue
			}
		}
		if _, ok := res.Arrival(y, waveform.Falling); ok == engineFilters {
			t.Fatalf("width %g: downstream y disagrees with the verdict (filtered=%v)", width, engineFilters)
		}

		spiceFilters, decisive := spiceSaysFilter(t, r.norSim, r.norGM, r.norTh, tt, tt, -width)
		if !decisive {
			t.Logf("width %g: extreme within %gV of Vih — indecisive, skipped", width, decisiveMargin)
			continue
		}
		if engineFilters != spiceFilters {
			t.Errorf("width %g: engine filters=%v but spice ground truth filters=%v", width, engineFilters, spiceFilters)
		}
		if spiceFilters {
			sawFilter++
		} else {
			sawPropagate++
		}
	}
	if sawFilter == 0 || sawPropagate == 0 {
		t.Fatalf("nor verdict sweep vacuous: %d filtered, %d propagated decisive points", sawFilter, sawPropagate)
	}
}

// TestOracleGlitchSpiceReconvergent drives the runt through topology instead
// of stimulus: one input fans out into a direct path and an inverted path
// that reconverge at a nand2, so the opposite-edge pair's separation is the
// inverter's delay — whatever the engine judges there must match direct
// simulation of the pair it actually committed.
func TestOracleGlitchSpiceReconvergent(t *testing.T) {
	r := spiceRig(t)
	c := sta.NewCircuit(r.lib)
	a := c.Input("a")
	n1, err := c.AddGate("g1", "inv", "n1", a)
	if err != nil {
		t.Fatal(err)
	}
	x, err := c.AddGate("g2", "nand2", "x", n1, a)
	if err != nil {
		t.Fatal(err)
	}
	c.MarkOutput(x)

	judged := 0
	for _, tt := range []float64{200e-12, 400e-12} {
		evs := []sta.PIEvent{{Net: a, Dir: waveform.Rising, TT: tt, Time: 0}}
		off, err := c.AnalyzeOpts(evs, sta.Proximity, sta.Options{Workers: 1})
		if err != nil {
			t.Fatalf("tt %g: off: %v", tt, err)
		}
		fall, okF := off.Arrival(n1, waveform.Falling)
		if !okF {
			t.Fatalf("tt %g: inverted path produced no falling arrival", tt)
		}
		on, err := c.AnalyzeOpts(evs, sta.Proximity, sta.Options{Workers: 1, PulseFiltering: true})
		if err != nil {
			t.Fatalf("tt %g: on: %v", tt, err)
		}
		if on.Stats.PulsesFiltered+on.Stats.PulsesDegraded != 1 {
			// The reconvergent pair may fall outside the judged polarity for
			// some transition times; the oracle only scores judged cases.
			continue
		}
		judged++
		engineFilters := on.Stats.PulsesFiltered == 1
		// The judged pair on x: n1 (pin0) falls at the inverter's output
		// crossing, a (pin1) rises at 0 — replay exactly that pair in spice.
		spiceFilters, decisive := spiceSaysFilter(t, r.sim, r.gm, r.th, fall.TT, tt, fall.Time)
		if !decisive {
			t.Logf("tt %g: indecisive extreme, skipped", tt)
			continue
		}
		if engineFilters != spiceFilters {
			t.Errorf("tt %g: engine filters=%v but spice ground truth filters=%v (sep %g)",
				tt, engineFilters, spiceFilters, fall.Time)
		}
	}
	if judged == 0 {
		t.Fatal("reconvergent pair never judged — oracle is vacuous")
	}
}
