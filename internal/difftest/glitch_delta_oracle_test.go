package difftest

// Filtered delta / Monte-Carlo oracles. Section-6 pulse filtering changes
// what "unchanged" means — an absorbed pair commits NO arrivals, so the
// delta walk's bit-equal cutoff can only be sound if it re-judges every
// re-evaluated pair against the raw (pre-filter) shape. These sweeps pin
// the contracts the wiring must satisfy:
//
//  1. Filtered delta identity: a delta re-analysis over a filtered baseline
//     must be bit-identical to a fresh filtered analysis of the edited
//     vector — arrivals, verdict records, and counters. The sweep proves
//     itself non-vacuous by counting verdict flips (a gate whose Section-6
//     verdict differs between baseline and edited vector): zero flips means
//     the edits never crossed an inertial boundary and the oracle tested
//     nothing.
//  2. MC sigma-zero identity under filtering: a sigma=0 filtered sample
//     must take the deterministic filtered path bit for bit — absorbed
//     outputs report no distribution, counters sum per sample, and the
//     glitch-criticality vote is unanimous.
//  3. Vote stability: glitch-criticality tallies are per-gate atomic
//     counters aggregated after the worker barrier, so a fixed seed must
//     produce bit-identical votes at every worker count.

import (
	"context"
	"testing"

	"repro/internal/sta"
)

// pulseVerdicts flattens a result's Section-6 records into a comparable map
// over every net (PulseInfo is all scalars, so == is bit-exact).
func pulseVerdicts(c *sta.Circuit, res *sta.Result) map[string]sta.PulseInfo {
	out := map[string]sta.PulseInfo{}
	for _, name := range c.NetsByName() {
		if pi, ok := res.Pulse(c.Net(name)); ok {
			out[name] = pi
		}
	}
	return out
}

// TestOracleGlitchDeltaVsFull: with filtering on, delta re-analysis against
// a kept filtered baseline must be bit-identical to a fresh filtered
// analysis of the edited vector — arrivals via DiffExact, plus every
// PulseInfo record and all three verdict counters. Verdict flips (absorbed
// pair resurrected by the edit, surviving pair newly absorbed, verdict
// class changed) are the cases the naive bit-equal cutoff gets wrong, so
// the sweep fails if it never produced one.
func TestOracleGlitchDeltaVsFull(t *testing.T) {
	ctx := context.Background()
	verdictFlips, judged := 0, 0
	totReused, totReeval := 0, 0
	for _, cfg := range Configs(nConfigs) {
		c, evs := buildWithEvents(t, cfg, 0)
		p, err := c.Compile()
		if err != nil {
			t.Fatalf("%s: compile: %v", cfg.Name, err)
		}
		opt := sta.Options{Workers: 1, PulseFiltering: true}
		baseline, err := p.Analyze(ctx, evs, cfg.Mode, opt)
		if err != nil {
			t.Fatalf("%s: baseline: %v", cfg.Name, err)
		}

		delta, edited := makeDelta(cfg, evs)
		dres, err := p.AnalyzeDelta(ctx, baseline, delta, opt)
		if err != nil {
			t.Fatalf("%s: delta: %v", cfg.Name, err)
		}
		full, err := p.Analyze(ctx, edited, cfg.Mode, opt)
		if err != nil {
			t.Fatalf("%s: full re-analyze: %v", cfg.Name, err)
		}
		if err := DiffExact(Arrivals(c, full), Arrivals(c, dres), nil); err != nil {
			t.Errorf("%s: filtered delta diverges from full filtered re-analysis: %v", cfg.Name, err)
		}
		if dres.Stats.PulsesFiltered != full.Stats.PulsesFiltered ||
			dres.Stats.PulsesDegraded != full.Stats.PulsesDegraded ||
			dres.Stats.PulsesUnjudged != full.Stats.PulsesUnjudged {
			t.Errorf("%s: delta counters (%d,%d,%d) != full (%d,%d,%d)", cfg.Name,
				dres.Stats.PulsesFiltered, dres.Stats.PulsesDegraded, dres.Stats.PulsesUnjudged,
				full.Stats.PulsesFiltered, full.Stats.PulsesDegraded, full.Stats.PulsesUnjudged)
		}
		gotV, wantV := pulseVerdicts(c, dres), pulseVerdicts(c, full)
		if len(gotV) != len(wantV) {
			t.Errorf("%s: delta records %d pulse verdicts, full %d", cfg.Name, len(gotV), len(wantV))
		}
		for net, want := range wantV {
			if got, ok := gotV[net]; !ok || got != want {
				t.Errorf("%s: net %s verdict %+v (present=%v) != full %+v", cfg.Name, net, got, ok, want)
			}
		}

		// Flip accounting against the baseline's verdict map — the shapes
		// the tentpole exists for.
		baseV := pulseVerdicts(c, baseline)
		for net, b := range baseV {
			if f, ok := wantV[net]; !ok || f.Filtered != b.Filtered || f.Unjudged != b.Unjudged {
				verdictFlips++
			}
		}
		for net := range wantV {
			if _, ok := baseV[net]; !ok {
				verdictFlips++
			}
		}
		judged += full.Stats.PulsesFiltered + full.Stats.PulsesDegraded
		totReused += dres.Stats.GatesReused
		totReeval += dres.Stats.GatesReevaluated
	}
	if judged == 0 {
		t.Fatal("no pulse judged across the whole sweep — oracle is vacuous")
	}
	if verdictFlips == 0 {
		t.Fatal("no edit ever flipped a Section-6 verdict — the re-judging path never engaged, oracle vacuous")
	}
	if totReused == 0 || totReeval == 0 {
		t.Fatalf("filtered delta sweep degenerate: %d reused, %d re-evaluated", totReused, totReeval)
	}
}

// TestOracleGlitchMCSigmaZero: a sigma=0 single-sample filtered Monte-Carlo
// run must be the deterministic filtered analysis bit for bit: identical
// pulse counters, output distributions exactly at the filtered arrivals
// (absorbed outputs report none), and a unanimous glitch-criticality vote —
// every judged gate voted in the one sample, probability exactly 1.
func TestOracleGlitchMCSigmaZero(t *testing.T) {
	judged, votes := 0, 0
	for _, cfg := range Configs(nConfigs) {
		c, evs := buildWithEvents(t, cfg, 0)
		ref, err := c.AnalyzeOpts(evs, cfg.Mode, sta.Options{Workers: 1, PulseFiltering: true})
		if err != nil {
			t.Fatalf("%s: analyze: %v", cfg.Name, err)
		}
		mcOpt := sta.MCOptions{Samples: 1, Seed: 17, Sigma: 0}
		mcOpt.PulseFiltering = true
		res, err := c.AnalyzeMC(evs, cfg.Mode, mcOpt)
		if err != nil {
			t.Fatalf("%s: mc: %v", cfg.Name, err)
		}
		if res.Stats.PulsesFiltered != ref.Stats.PulsesFiltered ||
			res.Stats.PulsesDegraded != ref.Stats.PulsesDegraded ||
			res.Stats.PulsesUnjudged != ref.Stats.PulsesUnjudged {
			t.Errorf("%s: MC counters (%d,%d,%d) != deterministic (%d,%d,%d)", cfg.Name,
				res.Stats.PulsesFiltered, res.Stats.PulsesDegraded, res.Stats.PulsesUnjudged,
				ref.Stats.PulsesFiltered, ref.Stats.PulsesDegraded, ref.Stats.PulsesUnjudged)
		}
		for _, od := range res.Outputs {
			a, ok := ref.Arrival(od.Net, od.Dir)
			if !ok {
				t.Fatalf("%s: MC reports a dist on %s %v the filtered analysis absorbed",
					cfg.Name, od.Net.Name, od.Dir)
			}
			d := od.Dist
			if d.N != 1 || d.Mean != a.Time || d.Min != a.Time || d.Max != a.Time {
				t.Fatalf("%s: %s %v: sigma-0 dist %+v != filtered arrival %v",
					cfg.Name, od.Net.Name, od.Dir, d, a.Time)
			}
		}
		for _, gc := range res.GlitchCriticality {
			votes++
			if gc.Absorbed+gc.Degraded != 1 {
				t.Errorf("%s: gate %s voted %d/%d in a single sample", cfg.Name,
					gc.Gate.Name, gc.Absorbed, gc.Degraded)
			}
			if gc.PAbsorbed+gc.PDegraded != 1 {
				t.Errorf("%s: gate %s probabilities %g+%g != 1 over one sample", cfg.Name,
					gc.Gate.Name, gc.PAbsorbed, gc.PDegraded)
			}
			if pi, ok := ref.Pulse(gc.Gate.Out); !ok {
				t.Errorf("%s: MC votes on %s but the deterministic run recorded no verdict there",
					cfg.Name, gc.Gate.Out.Name)
			} else if pi.Unjudged {
				t.Errorf("%s: unjudged pair on %s counted as a glitch vote", cfg.Name, gc.Gate.Out.Name)
			} else if pi.Filtered != (gc.Absorbed == 1) {
				t.Errorf("%s: vote on %s (absorbed=%d) disagrees with deterministic verdict (filtered=%v)",
					cfg.Name, gc.Gate.Out.Name, gc.Absorbed, pi.Filtered)
			}
		}
		judged += ref.Stats.PulsesFiltered + ref.Stats.PulsesDegraded
	}
	if judged == 0 || votes == 0 {
		t.Fatalf("sweep vacuous: %d pulses judged, %d criticality votes", judged, votes)
	}
}

// TestOracleGlitchMCVoteStability: same seed + samples + sigma must tally
// bit-identical glitch-criticality votes and pulse counters at every worker
// count — the votes are atomic per-gate counters, so scheduling must never
// leak into the tallies.
func TestOracleGlitchMCVoteStability(t *testing.T) {
	entries := 0
	for _, cfg := range Configs(nConfigs) {
		c, evs := buildWithEvents(t, cfg, 0)
		mcOpt := sta.MCOptions{Samples: 8, Seed: 23, Sigma: 0.05}
		mcOpt.PulseFiltering = true
		mcOpt.Workers = 1
		ref, err := c.AnalyzeMC(evs, cfg.Mode, mcOpt)
		if err != nil {
			t.Fatalf("%s: mc workers=1: %v", cfg.Name, err)
		}
		mcOpt.Workers = 6
		got, err := c.AnalyzeMC(evs, cfg.Mode, mcOpt)
		if err != nil {
			t.Fatalf("%s: mc workers=6: %v", cfg.Name, err)
		}
		if got.Stats.PulsesFiltered != ref.Stats.PulsesFiltered ||
			got.Stats.PulsesDegraded != ref.Stats.PulsesDegraded ||
			got.Stats.PulsesUnjudged != ref.Stats.PulsesUnjudged {
			t.Errorf("%s: pulse counters differ across worker counts: (%d,%d,%d) vs (%d,%d,%d)",
				cfg.Name,
				got.Stats.PulsesFiltered, got.Stats.PulsesDegraded, got.Stats.PulsesUnjudged,
				ref.Stats.PulsesFiltered, ref.Stats.PulsesDegraded, ref.Stats.PulsesUnjudged)
		}
		if len(got.GlitchCriticality) != len(ref.GlitchCriticality) {
			t.Fatalf("%s: glitch criticality size %d vs %d across worker counts",
				cfg.Name, len(got.GlitchCriticality), len(ref.GlitchCriticality))
		}
		for i := range ref.GlitchCriticality {
			a, b := ref.GlitchCriticality[i], got.GlitchCriticality[i]
			if a.Gate != b.Gate || a.Absorbed != b.Absorbed || a.Degraded != b.Degraded ||
				a.PAbsorbed != b.PAbsorbed || a.PDegraded != b.PDegraded {
				t.Errorf("%s: glitch vote %d differs across worker counts:\n  w1: %+v\n  w6: %+v",
					cfg.Name, i, a, b)
			}
		}
		entries += len(ref.GlitchCriticality)
	}
	if entries == 0 {
		t.Fatal("no glitch-criticality entry across the whole sweep — oracle is vacuous")
	}
}
