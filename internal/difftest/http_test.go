package difftest

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/macromodel"
	"repro/internal/service"
	"repro/internal/sta"
	"repro/internal/waveform"
)

// httpRig is the HTTP-vs-in-process oracle fixture: one registry over a
// synthetic model library on disk, one server mounted on it, and an
// in-process sta.Library built from the very same registry — both paths
// evaluate the identical loaded-from-JSON calculators, so results must be
// bit-identical, not merely close.
type httpRig struct {
	ts  *httptest.Server
	lib *sta.Library
}

func newHTTPRig(t *testing.T) *httpRig {
	t.Helper()
	dir := t.TempDir()
	cells := map[string]*macromodel.GateModel{
		"inv":   macromodel.SynthModel("inv", 1),
		"nand2": macromodel.SynthModel("nand", 2),
		"nand3": macromodel.SynthModel("nand", 3),
	}
	for name, m := range cells {
		if err := m.Save(filepath.Join(dir, name+".json")); err != nil {
			t.Fatal(err)
		}
	}
	reg := service.NewRegistry(dir, 8)
	ts := httptest.NewServer(service.New(service.Config{Registry: reg}))
	t.Cleanup(ts.Close)
	lib := sta.NewLibrary()
	for name := range cells {
		calc, err := reg.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		lib.Add(name, calc)
	}
	return &httpRig{ts: ts, lib: lib}
}

func (r *httpRig) post(t *testing.T, path string, body, out any) int {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(r.ts.URL+path, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", path, err)
		}
	}
	return resp.StatusCode
}

// wireMode maps an engine mode to its wire spelling.
func wireMode(m sta.Mode) string {
	if m == sta.Conventional {
		return "conv"
	}
	return "prox"
}

// checkWireAgainstEngine requires the wire arrivals (picoseconds) to equal
// the engine result exactly under the same ×1e12 conversion.
func checkWireAgainstEngine(t *testing.T, label string, c *sta.Circuit, res *sta.Result, wire []service.Arrival) {
	t.Helper()
	engine := Arrivals(c, res)
	if len(wire) != len(engine) {
		t.Fatalf("%s: %d wire arrivals vs %d engine arrivals", label, len(wire), len(engine))
	}
	for _, wa := range wire {
		var dir waveform.Direction
		switch wa.Dir {
		case waveform.Rising.String():
			dir = waveform.Rising
		case waveform.Falling.String():
			dir = waveform.Falling
		default:
			t.Fatalf("%s: bad wire direction %q", label, wa.Dir)
		}
		ea, ok := engine[ArrivalKey{wa.Net, dir}]
		if !ok {
			t.Fatalf("%s: wire arrival %s/%s absent from engine result", label, wa.Net, wa.Dir)
		}
		if wa.TimePs != ea.Time*1e12 || wa.TTPs != ea.TT*1e12 || wa.UsedInputs != ea.UsedInputs {
			t.Fatalf("%s: %s/%s wire (%.9f ps, %.9f ps, %d) vs engine (%.9f ps, %.9f ps, %d)",
				label, wa.Net, wa.Dir, wa.TimePs, wa.TTPs, wa.UsedInputs,
				ea.Time*1e12, ea.TT*1e12, ea.UsedInputs)
		}
	}
}

// TestOracleHTTPVsInProcess sweeps the config set through the service:
// upload every circuit, run /v1/analyze (nets=all, so internal nets are
// compared too) and /v1/analyze:batch, and require bit-identity with the
// in-process engine over the same registry-loaded models.
func TestOracleHTTPVsInProcess(t *testing.T) {
	rig := newHTTPRig(t)
	for _, cfg := range Configs(nConfigs) {
		c, err := cfg.Build()
		if err != nil {
			t.Fatalf("%s: build: %v", cfg.Name, err)
		}
		var text strings.Builder
		if err := sta.WriteNetlist(&text, c); err != nil {
			t.Fatalf("%s: serialize: %v", cfg.Name, err)
		}
		// In-process reference over the registry-backed library.
		ref, err := sta.ParseNetlist(strings.NewReader(text.String()), rig.lib)
		if err != nil {
			t.Fatalf("%s: reparse: %v", cfg.Name, err)
		}
		var up service.UploadResponse
		if code := rig.post(t, "/v1/netlists", service.UploadRequest{Netlist: text.String()}, &up); code != 200 {
			t.Fatalf("%s: upload status %d", cfg.Name, code)
		}

		vec := cfg.WireVector(c, 0)
		evs, err := ToPIEvents(ref, vec)
		if err != nil {
			t.Fatalf("%s: events: %v", cfg.Name, err)
		}
		var resp service.AnalyzeResponse
		if code := rig.post(t, "/v1/analyze", service.AnalyzeRequest{
			Netlist: up.ID, Mode: wireMode(cfg.Mode), Nets: "all", Vector: vec,
		}, &resp); code != 200 {
			t.Fatalf("%s: analyze status %d", cfg.Name, code)
		}
		res, err := ref.AnalyzeOpts(evs, cfg.Mode, sta.Options{Workers: 1})
		if err != nil {
			t.Fatalf("%s: in-process: %v", cfg.Name, err)
		}
		checkWireAgainstEngine(t, cfg.Name+"/analyze", ref, res, resp.Arrivals)

		// The batch endpoint against per-vector in-process references.
		const nVec = 3
		vecs := make([][]service.Event, nVec)
		for k := range vecs {
			vecs[k] = cfg.WireVector(c, k)
		}
		var bresp service.BatchResponse
		if code := rig.post(t, "/v1/analyze:batch", service.BatchRequest{
			Netlist: up.ID, Mode: wireMode(cfg.Mode), Nets: "all", Vectors: vecs,
		}, &bresp); code != 200 {
			t.Fatalf("%s: batch status %d", cfg.Name, code)
		}
		if len(bresp.Results) != nVec {
			t.Fatalf("%s: %d batch results for %d vectors", cfg.Name, len(bresp.Results), nVec)
		}
		for k, vr := range bresp.Results {
			kevs, err := ToPIEvents(ref, vecs[k])
			if err != nil {
				t.Fatalf("%s: batch events %d: %v", cfg.Name, k, err)
			}
			kres, err := ref.AnalyzeOpts(kevs, cfg.Mode, sta.Options{Workers: 1})
			if err != nil {
				t.Fatalf("%s: in-process %d: %v", cfg.Name, k, err)
			}
			checkWireAgainstEngine(t, cfg.Name+"/batch", ref, kres, vr.Arrivals)
		}
	}
}
