package difftest

// Monte-Carlo oracles. The statistical mode reuses the deterministic
// engine's arithmetic sample by sample, so it inherits two bit-level
// contracts the sweep enforces across every seeded config:
//
//  1. Sigma-zero identity: a sigma=0 sample takes the exact unperturbed
//     code path (the perturbation terms are guarded, not multiplied by 1),
//     so single-sample MC aggregates must equal the deterministic Analyze
//     arrival bit for bit.
//  2. Seed stability: deviates are pure functions of (seed, sample, gate)
//     and aggregation runs in sample order after the worker barrier, so the
//     same (seed, samples, sigma) must produce bit-identical aggregates and
//     criticality votes at every worker count.

import (
	"testing"

	"repro/internal/sta"
	"repro/internal/waveform"
)

// TestOracleMCSigmaZero: sigma=0 single-sample Monte-Carlo is bit-identical
// to the deterministic Analyze across the full config sweep. Every
// primary-output arrival of the deterministic run must appear as a
// zero-width distribution at exactly the deterministic crossing time.
func TestOracleMCSigmaZero(t *testing.T) {
	distsCompared, critEntries := 0, 0
	for _, cfg := range Configs(nConfigs) {
		c, evs := buildWithEvents(t, cfg, 0)
		ref, err := c.AnalyzeOpts(evs, cfg.Mode, sta.Options{Workers: 1})
		if err != nil {
			t.Fatalf("%s: analyze: %v", cfg.Name, err)
		}
		res, err := c.AnalyzeMC(evs, cfg.Mode, sta.MCOptions{Samples: 1, Seed: 17, Sigma: 0})
		if err != nil {
			t.Fatalf("%s: mc: %v", cfg.Name, err)
		}
		// Index MC's distributions and walk the deterministic PO arrivals:
		// both sides must cover exactly the same (net, direction) set.
		type key struct {
			net string
			dir int
		}
		got := map[key]sta.OutputDist{}
		for _, od := range res.Outputs {
			got[key{od.Net.Name, int(od.Dir)}] = od
		}
		want := 0
		for _, po := range c.POs {
			for dir := 0; dir < 2; dir++ {
				a, ok := ref.Arrival(po, waveform.Direction(dir))
				od, okMC := got[key{po.Name, dir}]
				if ok != okMC {
					t.Fatalf("%s: %s dir %d: deterministic has-arrival=%v but MC has-dist=%v",
						cfg.Name, po.Name, dir, ok, okMC)
				}
				if !ok {
					continue
				}
				want++
				d := od.Dist
				// One sample: every aggregate IS that sample — bit-exact.
				if d.N != 1 || d.Mean != a.Time || d.Min != a.Time || d.Max != a.Time ||
					d.P50 != a.Time || d.P95 != a.Time || d.P99 != a.Time || d.Std != 0 {
					t.Fatalf("%s: %s dir %d: sigma-0 dist %+v != deterministic arrival %v",
						cfg.Name, po.Name, dir, d, a.Time)
				}
			}
		}
		if len(res.Outputs) != want {
			t.Fatalf("%s: MC reports %d output dists, deterministic run has %d PO arrivals",
				cfg.Name, len(res.Outputs), want)
		}
		distsCompared += want
		critEntries += len(res.Criticality)
	}
	if distsCompared < nConfigs {
		t.Fatalf("only %d distributions compared over %d configs — sweep too thin", distsCompared, nConfigs)
	}
	if critEntries == 0 {
		t.Fatal("no criticality entries across the whole sweep — oracle is vacuous")
	}
}

// TestOracleMCSeedStability: same seed + samples + sigma → bit-identical
// aggregates and criticality regardless of the worker count. Run with -race
// in CI, this also proves the parallel sample loop is clean.
func TestOracleMCSeedStability(t *testing.T) {
	spread := 0
	for _, cfg := range Configs(nConfigs) {
		c, evs := buildWithEvents(t, cfg, 0)
		opt := sta.MCOptions{Samples: 8, Seed: 23, Sigma: 0.03}
		opt.Workers = 1
		ref, err := c.AnalyzeMC(evs, cfg.Mode, opt)
		if err != nil {
			t.Fatalf("%s: mc workers=1: %v", cfg.Name, err)
		}
		opt.Workers = 5
		got, err := c.AnalyzeMC(evs, cfg.Mode, opt)
		if err != nil {
			t.Fatalf("%s: mc workers=5: %v", cfg.Name, err)
		}
		if len(got.Outputs) != len(ref.Outputs) {
			t.Fatalf("%s: output count %d vs %d across worker counts", cfg.Name, len(got.Outputs), len(ref.Outputs))
		}
		for i := range ref.Outputs {
			a, b := ref.Outputs[i].Dist, got.Outputs[i].Dist
			if ref.Outputs[i].Net != got.Outputs[i].Net || ref.Outputs[i].Dir != got.Outputs[i].Dir ||
				a.N != b.N || a.Mean != b.Mean || a.Std != b.Std || a.Min != b.Min ||
				a.Max != b.Max || a.P50 != b.P50 || a.P95 != b.P95 || a.P99 != b.P99 {
				t.Fatalf("%s: output %d aggregates differ across worker counts:\n  w1: %+v\n  w5: %+v",
					cfg.Name, i, a, b)
			}
			if a.Std > 0 {
				spread++
			}
		}
		if len(got.Criticality) != len(ref.Criticality) {
			t.Fatalf("%s: criticality size differs across worker counts", cfg.Name)
		}
		for i := range ref.Criticality {
			if ref.Criticality[i].Gate != got.Criticality[i].Gate ||
				ref.Criticality[i].Count != got.Criticality[i].Count {
				t.Fatalf("%s: criticality entry %d differs across worker counts", cfg.Name, i)
			}
		}
	}
	if spread == 0 {
		t.Fatal("sigma 0.03 never spread any output — the perturbed path never ran, oracle is vacuous")
	}
}
