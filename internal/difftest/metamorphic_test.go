package difftest

import (
	"math"
	"strings"
	"testing"

	"repro/internal/sta"
)

// TestTimeShiftEquivariance: the delay model depends on input times only
// through separations, so shifting every primary-input event by Δt must
// shift every arrival by exactly Δt and leave every transition time
// unchanged. Floating point re-associates the additions, so "exactly" is
// checked to a sub-attosecond budget — a millionth of a picosecond, eight
// orders below any physical delay in the model, while a genuine
// equivariance bug shows up at picoseconds.
func TestTimeShiftEquivariance(t *testing.T) {
	const tol = 1e-19 // seconds
	shifts := []float64{1e-9, -3.7e-11, 2.5e-10}
	for _, cfg := range Configs(nConfigs) {
		c, evs := buildWithEvents(t, cfg, 0)
		base, err := c.AnalyzeOpts(evs, cfg.Mode, sta.Options{Workers: 1})
		if err != nil {
			t.Fatalf("%s: base: %v", cfg.Name, err)
		}
		baseArr := Arrivals(c, base)
		for _, dt := range shifts {
			shifted, err := c.AnalyzeOpts(ShiftEvents(evs, dt), cfg.Mode, sta.Options{Workers: 1})
			if err != nil {
				t.Fatalf("%s: shift %g: %v", cfg.Name, dt, err)
			}
			shiftArr := Arrivals(c, shifted)
			if len(shiftArr) != len(baseArr) {
				t.Fatalf("%s: shift %g changed arrival count %d -> %d",
					cfg.Name, dt, len(baseArr), len(shiftArr))
			}
			for k, ba := range baseArr {
				sa, ok := shiftArr[k]
				if !ok {
					t.Fatalf("%s: shift %g lost arrival %s %v", cfg.Name, dt, k.Net, k.Dir)
				}
				if d := math.Abs((sa.Time - dt) - ba.Time); d > tol {
					t.Errorf("%s: net %s %v: shifted arrival off by %g s (shift %g)",
						cfg.Name, k.Net, k.Dir, d, dt)
				}
				if d := math.Abs(sa.TT - ba.TT); d > tol {
					t.Errorf("%s: net %s %v: TT changed by %g s under pure time shift",
						cfg.Name, k.Net, k.Dir, d)
				}
				if sa.UsedInputs != ba.UsedInputs {
					t.Errorf("%s: net %s %v: UsedInputs %d -> %d under pure time shift",
						cfg.Name, k.Net, k.Dir, ba.UsedInputs, sa.UsedInputs)
				}
			}
		}
	}
}

// TestWorkerCountInvariance: the worker budget is a schedule, not a model
// parameter — every worker count must produce the bit-identical result.
func TestWorkerCountInvariance(t *testing.T) {
	counts := []int{2, 3, 5, 16}
	for _, cfg := range Configs(nConfigs) {
		c, evs := buildWithEvents(t, cfg, 0)
		ref, err := c.AnalyzeOpts(evs, cfg.Mode, sta.Options{Workers: 1})
		if err != nil {
			t.Fatalf("%s: serial: %v", cfg.Name, err)
		}
		refArr := Arrivals(c, ref)
		for _, w := range counts {
			res, err := c.AnalyzeOpts(evs, cfg.Mode, sta.Options{Workers: w})
			if err != nil {
				t.Fatalf("%s: workers=%d: %v", cfg.Name, w, err)
			}
			if err := DiffExact(refArr, Arrivals(c, res), nil); err != nil {
				t.Errorf("%s: workers=%d diverges from serial: %v", cfg.Name, w, err)
			}
		}
	}
}

// TestNetRelabelingConsistency: renaming every net (and gate instance)
// through a permutation is pure labeling — arrivals must be bit-identical
// per mapped net.
func TestNetRelabelingConsistency(t *testing.T) {
	for _, cfg := range Configs(nConfigs) {
		c, evs := buildWithEvents(t, cfg, 0)
		text, mapping := RenameNets(c, cfg.Seed+7)
		renamed, err := sta.ParseNetlist(strings.NewReader(text), sta.SynthLibrary(3))
		if err != nil {
			t.Fatalf("%s: parse renamed netlist: %v", cfg.Name, err)
		}
		revs, err := RenameEvents(renamed, evs, mapping)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		base, err := c.AnalyzeOpts(evs, cfg.Mode, sta.Options{Workers: 1})
		if err != nil {
			t.Fatalf("%s: base: %v", cfg.Name, err)
		}
		res, err := renamed.AnalyzeOpts(revs, cfg.Mode, sta.Options{Workers: 1})
		if err != nil {
			t.Fatalf("%s: renamed: %v", cfg.Name, err)
		}
		if err := DiffExact(Arrivals(c, base), Arrivals(renamed, res), mapping); err != nil {
			t.Errorf("%s: relabeled circuit diverges: %v", cfg.Name, err)
		}
	}
}

// TestEventOrderIndependence: dominance ordering happens inside the
// calculator; the order events are listed in must not matter.
func TestEventOrderIndependence(t *testing.T) {
	for _, cfg := range Configs(nConfigs) {
		c, evs := buildWithEvents(t, cfg, 0)
		ref, err := c.AnalyzeOpts(evs, cfg.Mode, sta.Options{Workers: 1})
		if err != nil {
			t.Fatalf("%s: base: %v", cfg.Name, err)
		}
		refArr := Arrivals(c, ref)
		for _, seed := range []int64{1, 2, 3} {
			res, err := c.AnalyzeOpts(ShuffleEvents(evs, seed), cfg.Mode, sta.Options{Workers: 1})
			if err != nil {
				t.Fatalf("%s: shuffled %d: %v", cfg.Name, seed, err)
			}
			if err := DiffExact(refArr, Arrivals(c, res), nil); err != nil {
				t.Errorf("%s: shuffle %d diverges: %v", cfg.Name, seed, err)
			}
		}
	}
}
