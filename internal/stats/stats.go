// Package stats provides the error statistics and histogram binning used to
// reproduce the paper's Table 5-1 and Figure 5-1.
package stats

import (
	"fmt"
	"math"
	"strings"
)

// Summary is the Table 5-1 row set for one quantity.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Max    float64
	Min    float64
}

// Summarize computes mean, standard deviation (population, as the paper's
// small-sample table implies), maximum and minimum.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if len(xs) == 0 {
		return s
	}
	s.Min, s.Max = math.Inf(1), math.Inf(-1)
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	varsum := 0.0
	for _, x := range xs {
		d := x - s.Mean
		varsum += d * d
	}
	s.StdDev = math.Sqrt(varsum / float64(len(xs)))
	return s
}

// Histogram is a fixed-width binning of samples.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	// Under and Over count samples outside [Lo, Hi).
	Under, Over int
}

// NewHistogram bins xs into nbins equal bins over [lo, hi).
func NewHistogram(xs []float64, lo, hi float64, nbins int) (*Histogram, error) {
	if nbins < 1 || hi <= lo {
		return nil, fmt.Errorf("stats: invalid histogram spec [%g,%g) x %d", lo, hi, nbins)
	}
	h := &Histogram{Lo: lo, Hi: hi, Counts: make([]int, nbins)}
	w := (hi - lo) / float64(nbins)
	for _, x := range xs {
		switch {
		case x < lo:
			h.Under++
		case x >= hi:
			h.Over++
		default:
			i := int((x - lo) / w)
			if i >= nbins {
				i = nbins - 1
			}
			h.Counts[i]++
		}
	}
	return h, nil
}

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + w*(float64(i)+0.5)
}

// Render draws an ASCII bar chart (the repo's stand-in for the paper's
// Figure 5-1 bar charts), one row per bin.
func (h *Histogram) Render(label string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (n in [%g, %g))\n", label, h.Lo, h.Hi)
	maxC := 1
	for _, c := range h.Counts {
		if c > maxC {
			maxC = c
		}
	}
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	if h.Under > 0 {
		fmt.Fprintf(&b, "   <%7.2f | %d\n", h.Lo, h.Under)
	}
	for i, c := range h.Counts {
		bar := strings.Repeat("#", c*50/maxC)
		fmt.Fprintf(&b, "%7.2f..%-7.2f | %-50s %d\n", h.Lo+w*float64(i), h.Lo+w*float64(i+1), bar, c)
	}
	if h.Over > 0 {
		fmt.Fprintf(&b, "  >=%7.2f | %d\n", h.Hi, h.Over)
	}
	return b.String()
}
