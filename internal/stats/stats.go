// Package stats provides the error statistics and histogram binning used to
// reproduce the paper's Table 5-1 and Figure 5-1.
package stats

import (
	"fmt"
	"math"
	"strings"
)

// Summary is the Table 5-1 row set for one quantity.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Max    float64
	Min    float64
}

// Summarize computes mean, standard deviation (population, as the paper's
// small-sample table implies), maximum and minimum.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if len(xs) == 0 {
		return s
	}
	s.Min, s.Max = math.Inf(1), math.Inf(-1)
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	varsum := 0.0
	for _, x := range xs {
		d := x - s.Mean
		varsum += d * d
	}
	s.StdDev = math.Sqrt(varsum / float64(len(xs)))
	return s
}

// Quantile returns the q-quantile (0 <= q <= 1) of an ascending-sorted
// sample slice by linear interpolation between order statistics (the
// "exclusive" rank convention: rank = q*(n-1)). An empty slice returns 0 —
// callers never divide by a zero count (the n==0 guard shared with
// BucketQuantile). q outside [0,1] clamps to the extremes.
func Quantile(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if n == 1 || q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[n-1]
	}
	rank := q * float64(n-1)
	i := int(rank)
	if i >= n-1 {
		return sorted[n-1]
	}
	frac := rank - float64(i)
	return sorted[i] + frac*(sorted[i+1]-sorted[i])
}

// BucketQuantile estimates the q-quantile (0 < q < 1) of a fixed-bucket
// distribution by linear interpolation inside the bucket holding the target
// rank. bounds are the ascending bucket upper edges; counts has
// len(bounds)+1 entries, the last being the overflow bucket. The overflow
// bucket has no upper edge, so ranks landing there clamp to the last finite
// bound — a deliberate under-estimate rather than a fabricated tail. An
// all-zero (or empty) histogram returns 0: no division by a zero count ever
// happens.
func BucketQuantile(q float64, bounds []float64, counts []int64) float64 {
	var total int64
	for _, c := range counts {
		total += c
	}
	if total == 0 || len(bounds) == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum int64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		if float64(cum)+float64(c) >= rank {
			if i >= len(bounds) {
				return bounds[len(bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = bounds[i-1]
			}
			frac := (rank - float64(cum)) / float64(c)
			return lo + frac*(bounds[i]-lo)
		}
		cum += c
	}
	return bounds[len(bounds)-1]
}

// Histogram is a fixed-width binning of samples.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	// Under and Over count samples outside [Lo, Hi).
	Under, Over int
}

// NewHistogram bins xs into nbins equal bins over [lo, hi).
func NewHistogram(xs []float64, lo, hi float64, nbins int) (*Histogram, error) {
	if nbins < 1 || hi <= lo {
		return nil, fmt.Errorf("stats: invalid histogram spec [%g,%g) x %d", lo, hi, nbins)
	}
	h := &Histogram{Lo: lo, Hi: hi, Counts: make([]int, nbins)}
	w := (hi - lo) / float64(nbins)
	for _, x := range xs {
		switch {
		case x < lo:
			h.Under++
		case x >= hi:
			h.Over++
		default:
			i := int((x - lo) / w)
			if i >= nbins {
				i = nbins - 1
			}
			h.Counts[i]++
		}
	}
	return h, nil
}

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + w*(float64(i)+0.5)
}

// Render draws an ASCII bar chart (the repo's stand-in for the paper's
// Figure 5-1 bar charts), one row per bin.
func (h *Histogram) Render(label string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (n in [%g, %g))\n", label, h.Lo, h.Hi)
	maxC := 1
	for _, c := range h.Counts {
		if c > maxC {
			maxC = c
		}
	}
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	if h.Under > 0 {
		fmt.Fprintf(&b, "   <%7.2f | %d\n", h.Lo, h.Under)
	}
	for i, c := range h.Counts {
		bar := strings.Repeat("#", c*50/maxC)
		fmt.Fprintf(&b, "%7.2f..%-7.2f | %-50s %d\n", h.Lo+w*float64(i), h.Lo+w*float64(i+1), bar, c)
	}
	if h.Over > 0 {
		fmt.Fprintf(&b, "  >=%7.2f | %d\n", h.Hi, h.Over)
	}
	return b.String()
}

// Sparkline renders xs as one row of Unicode block characters (▁▂▃▄▅▆▇█),
// scaled to the slice's own maximum — the compact trend strip terminal
// dashboards use. NaNs and negatives clamp to the baseline; an empty or
// all-zero series renders as all-baseline. ASCII-only environments can still
// read the shape: the characters are monotone in value.
func Sparkline(xs []float64) string {
	if len(xs) == 0 {
		return ""
	}
	blocks := []rune("▁▂▃▄▅▆▇█")
	max := 0.0
	for _, x := range xs {
		if x > max {
			max = x
		}
	}
	var b strings.Builder
	for _, x := range xs {
		i := 0
		if max > 0 && x > 0 && !math.IsNaN(x) {
			i = int(x / max * float64(len(blocks)-1))
			if i >= len(blocks) {
				i = len(blocks) - 1
			}
		}
		b.WriteRune(blocks[i])
	}
	return b.String()
}
