package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarizeKnown(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.N != 4 || s.Mean != 2.5 || s.Min != 1 || s.Max != 4 {
		t.Errorf("summary = %+v", s)
	}
	wantStd := math.Sqrt(1.25) // population std of 1..4
	if math.Abs(s.StdDev-wantStd) > 1e-12 {
		t.Errorf("std = %g, want %g", s.StdDev, wantStd)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 || s.StdDev != 0 {
		t.Errorf("empty summary = %+v", s)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{7})
	if s.Mean != 7 || s.StdDev != 0 || s.Min != 7 || s.Max != 7 {
		t.Errorf("single summary = %+v", s)
	}
}

// TestSummaryInvariants: min <= mean <= max and std >= 0 on random data.
func TestSummaryInvariants(t *testing.T) {
	prop := func(xs []float64) bool {
		for _, x := range xs {
			// Skip pathological magnitudes whose sums overflow float64;
			// error percentages in this repo are O(100).
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e100 {
				return true
			}
		}
		s := Summarize(xs)
		if s.N == 0 {
			return true
		}
		return s.Min <= s.Mean+1e-9 && s.Mean <= s.Max+1e-9 && s.StdDev >= 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestHistogramBinning(t *testing.T) {
	h, err := NewHistogram([]float64{-5, 0, 0.5, 1, 9.99, 10, 25}, 0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	if h.Under != 1 {
		t.Errorf("under = %d", h.Under)
	}
	if h.Over != 2 { // 10 and 25
		t.Errorf("over = %d", h.Over)
	}
	if h.Counts[0] != 3 { // 0, 0.5, 1... wait 1 falls in bin 0? bins are [0,2)
		t.Errorf("bin0 = %d, want 3 (0, 0.5, 1)", h.Counts[0])
	}
	if h.Counts[4] != 1 { // 9.99 in [8,10)
		t.Errorf("bin4 = %d", h.Counts[4])
	}
	total := h.Under + h.Over
	for _, c := range h.Counts {
		total += c
	}
	if total != 7 {
		t.Errorf("conservation: %d samples binned, want 7", total)
	}
}

func TestHistogramValidation(t *testing.T) {
	if _, err := NewHistogram(nil, 1, 0, 5); err == nil {
		t.Error("inverted range accepted")
	}
	if _, err := NewHistogram(nil, 0, 1, 0); err == nil {
		t.Error("zero bins accepted")
	}
}

func TestBinCenter(t *testing.T) {
	h, _ := NewHistogram(nil, 0, 10, 5)
	if got := h.BinCenter(0); got != 1 {
		t.Errorf("BinCenter(0) = %g", got)
	}
	if got := h.BinCenter(4); got != 9 {
		t.Errorf("BinCenter(4) = %g", got)
	}
}

func TestRenderContainsBars(t *testing.T) {
	h, _ := NewHistogram([]float64{1, 1, 1, 5}, 0, 10, 2)
	out := h.Render("test dist")
	if !strings.Contains(out, "test dist") || !strings.Contains(out, "#") {
		t.Errorf("render output missing content:\n%s", out)
	}
}

func TestQuantileKnown(t *testing.T) {
	sorted := []float64{10, 20, 30, 40, 50}
	cases := []struct {
		q    float64
		want float64
	}{
		{0, 10},
		{0.25, 20},
		{0.5, 30},
		{0.75, 40},
		{1, 50},
		{0.1, 14}, // rank 0.4 between 10 and 20
		{-1, 10},  // clamps
		{2, 50},   // clamps
	}
	for _, c := range cases {
		if got := Quantile(sorted, c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(q=%g) = %g, want %g", c.q, got, c.want)
		}
	}
}

// TestQuantileEmpty is the n==0 regression guard: the shared helper must
// return 0 for an empty sample set instead of indexing or dividing by zero
// (the PR 5 histogram bug, now guarded at the shared layer).
func TestQuantileEmpty(t *testing.T) {
	if got := Quantile(nil, 0.5); got != 0 {
		t.Errorf("Quantile(nil) = %g, want 0", got)
	}
	if got := Quantile([]float64{42}, 0.99); got != 42 {
		t.Errorf("Quantile(single) = %g, want 42", got)
	}
}

func TestBucketQuantileKnown(t *testing.T) {
	// Buckets: (0,1], (1,2], (2,4], overflow. 10 samples in (2,4].
	bounds := []float64{1, 2, 4}
	counts := []int64{0, 0, 10, 0}
	// Median rank 5 of 10 → halfway into (2,4] → 3.
	if got := BucketQuantile(0.5, bounds, counts); math.Abs(got-3) > 1e-12 {
		t.Errorf("BucketQuantile(0.5) = %g, want 3", got)
	}
	// All mass in overflow clamps to the last finite bound.
	if got := BucketQuantile(0.5, bounds, []int64{0, 0, 0, 7}); got != 4 {
		t.Errorf("overflow BucketQuantile = %g, want clamp to 4", got)
	}
}

// TestBucketQuantileEmpty: the n==0 guard at the bucketed entry point.
func TestBucketQuantileEmpty(t *testing.T) {
	if got := BucketQuantile(0.5, []float64{1, 2}, []int64{0, 0, 0}); got != 0 {
		t.Errorf("empty BucketQuantile = %g, want 0", got)
	}
	if got := BucketQuantile(0.5, nil, nil); got != 0 {
		t.Errorf("nil BucketQuantile = %g, want 0", got)
	}
}
