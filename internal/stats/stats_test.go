package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarizeKnown(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.N != 4 || s.Mean != 2.5 || s.Min != 1 || s.Max != 4 {
		t.Errorf("summary = %+v", s)
	}
	wantStd := math.Sqrt(1.25) // population std of 1..4
	if math.Abs(s.StdDev-wantStd) > 1e-12 {
		t.Errorf("std = %g, want %g", s.StdDev, wantStd)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 || s.StdDev != 0 {
		t.Errorf("empty summary = %+v", s)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{7})
	if s.Mean != 7 || s.StdDev != 0 || s.Min != 7 || s.Max != 7 {
		t.Errorf("single summary = %+v", s)
	}
}

// TestSummaryInvariants: min <= mean <= max and std >= 0 on random data.
func TestSummaryInvariants(t *testing.T) {
	prop := func(xs []float64) bool {
		for _, x := range xs {
			// Skip pathological magnitudes whose sums overflow float64;
			// error percentages in this repo are O(100).
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e100 {
				return true
			}
		}
		s := Summarize(xs)
		if s.N == 0 {
			return true
		}
		return s.Min <= s.Mean+1e-9 && s.Mean <= s.Max+1e-9 && s.StdDev >= 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestHistogramBinning(t *testing.T) {
	h, err := NewHistogram([]float64{-5, 0, 0.5, 1, 9.99, 10, 25}, 0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	if h.Under != 1 {
		t.Errorf("under = %d", h.Under)
	}
	if h.Over != 2 { // 10 and 25
		t.Errorf("over = %d", h.Over)
	}
	if h.Counts[0] != 3 { // 0, 0.5, 1... wait 1 falls in bin 0? bins are [0,2)
		t.Errorf("bin0 = %d, want 3 (0, 0.5, 1)", h.Counts[0])
	}
	if h.Counts[4] != 1 { // 9.99 in [8,10)
		t.Errorf("bin4 = %d", h.Counts[4])
	}
	total := h.Under + h.Over
	for _, c := range h.Counts {
		total += c
	}
	if total != 7 {
		t.Errorf("conservation: %d samples binned, want 7", total)
	}
}

func TestHistogramValidation(t *testing.T) {
	if _, err := NewHistogram(nil, 1, 0, 5); err == nil {
		t.Error("inverted range accepted")
	}
	if _, err := NewHistogram(nil, 0, 1, 0); err == nil {
		t.Error("zero bins accepted")
	}
}

func TestBinCenter(t *testing.T) {
	h, _ := NewHistogram(nil, 0, 10, 5)
	if got := h.BinCenter(0); got != 1 {
		t.Errorf("BinCenter(0) = %g", got)
	}
	if got := h.BinCenter(4); got != 9 {
		t.Errorf("BinCenter(4) = %g", got)
	}
}

func TestRenderContainsBars(t *testing.T) {
	h, _ := NewHistogram([]float64{1, 1, 1, 5}, 0, 10, 2)
	out := h.Render("test dist")
	if !strings.Contains(out, "test dist") || !strings.Contains(out, "#") {
		t.Errorf("render output missing content:\n%s", out)
	}
}
