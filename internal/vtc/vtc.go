// Package vtc extracts the family of voltage transfer curves (VTCs) of a
// multi-input gate and derives the paper's delay-measurement thresholds.
//
// An n-input gate has 2^n - 1 VTCs, one per non-empty subset of switching
// inputs (the rest held at the non-controlling level). Following Section 2
// of the paper, the delay thresholds are the minimum Vil and the maximum Vih
// over the entire family, which guarantees Vil < Vm < Vih for the Vm of any
// curve and therefore positive delay for every combination of transition
// times and separations.
package vtc

import (
	"fmt"
	"math"

	"repro/internal/cells"
	"repro/internal/spice"
	"repro/internal/waveform"
)

// Curve is one voltage transfer curve with its extracted critical voltages.
type Curve struct {
	// Subset lists the switching pin indices (the rest were held at the
	// non-controlling level during the sweep).
	Subset []int
	// In and Out are the swept input voltage and resulting output voltage.
	In, Out []float64
	// Vil and Vih are the input voltages where the VTC slope is -1
	// (low-side and high-side unity-gain points).
	Vil, Vih float64
	// Vm is the switching threshold (Vout = Vin crossing).
	Vm float64
}

// SubsetName renders a switching subset as pin letters, e.g. "a,b".
func SubsetName(subset []int) string {
	s := ""
	for i, p := range subset {
		if i > 0 {
			s += ","
		}
		s += string(rune('a' + p))
	}
	return s
}

// Family is the complete VTC family of a gate plus the chosen thresholds.
type Family struct {
	Curves []Curve
	// Thresholds is the paper's policy: minimum Vil and maximum Vih over
	// the family.
	Thresholds waveform.Thresholds
	// MinVilSubset and MaxVihSubset record which curves supplied the
	// chosen thresholds (diagnostics for the Fig. 2-1 table).
	MinVilSubset, MaxVihSubset []int
}

// Extract sweeps every non-empty switching subset of the cell and extracts
// Vil/Vih/Vm for each curve. step is the DC sweep granularity in volts
// (50 mV reproduces the paper's table to the cited precision; smaller is
// finer).
func Extract(cell *cells.Cell, opt spice.Options, step float64) (*Family, error) {
	if step <= 0 {
		step = 0.01
	}
	n := cell.N()
	if n > 16 {
		return nil, fmt.Errorf("vtc: refusing %d inputs (2^n-1 curves)", n)
	}
	fam := &Family{}
	for mask := 1; mask < (1 << n); mask++ {
		subset := subsetOf(mask, n)
		// Complex gates may have subsets that no stable assignment
		// sensitizes; those have no VTC and are skipped.
		if _, err := cell.SensitizeFor(subset); err != nil {
			continue
		}
		c, err := ExtractCurve(cell, subset, opt, step)
		if err != nil {
			return nil, fmt.Errorf("vtc: subset {%s}: %w", SubsetName(subset), err)
		}
		fam.Curves = append(fam.Curves, *c)
	}
	if len(fam.Curves) == 0 {
		return nil, fmt.Errorf("vtc: no sensitizable switching subset")
	}
	// Threshold policy: min Vil, max Vih over the family.
	minVil, maxVih := math.Inf(1), math.Inf(-1)
	for _, c := range fam.Curves {
		if c.Vil < minVil {
			minVil = c.Vil
			fam.MinVilSubset = c.Subset
		}
		if c.Vih > maxVih {
			maxVih = c.Vih
			fam.MaxVihSubset = c.Subset
		}
	}
	fam.Thresholds = waveform.Thresholds{Vil: minVil, Vih: maxVih, Vdd: cell.Proc.Vdd}
	if err := fam.Thresholds.Validate(); err != nil {
		return nil, fmt.Errorf("vtc: extracted thresholds invalid: %w", err)
	}
	return fam, nil
}

// ExtractCurve sweeps one switching subset (all its pins tied to the swept
// source, others non-controlling) and extracts the critical voltages.
func ExtractCurve(cell *cells.Cell, subset []int, opt spice.Options, step float64) (*Curve, error) {
	if len(subset) == 0 {
		return nil, fmt.Errorf("vtc: empty switching subset")
	}
	vdd := cell.Proc.Vdd
	// Configure drives: stable pins hold the levels that sensitize the
	// subset; swept pins all follow a shared closure variable.
	stable, err := cell.SensitizeFor(subset)
	if err != nil {
		return nil, err
	}
	inSubset := map[int]bool{}
	for _, p := range subset {
		inSubset[p] = true
	}
	for p := 0; p < cell.N(); p++ {
		if !inSubset[p] {
			cell.HoldPin(p, stable[p])
		}
	}
	cur := 0.0
	for _, p := range subset {
		cell.Ckt.Drive(cell.Inputs[p], func(float64) float64 { return cur })
	}
	defer func() {
		// Leave the cell in a sane parked state: the classic gates return
		// to their non-controlling level; complex gates park swept pins
		// low (their pre-transition level under this sensitization).
		if cell.Kind == cells.Complex {
			for _, p := range subset {
				cell.HoldPin(p, 0)
			}
			return
		}
		cell.HoldAllNonControlling()
	}()

	eng, err := cell.Engine(opt)
	if err != nil {
		return nil, err
	}
	var vals []float64
	for v := 0.0; v <= vdd+step/2; v += step {
		vals = append(vals, math.Min(v, vdd))
	}
	// Sweep by updating the shared closure variable; reuse engine OP with
	// warm starts (mirrors spice.DCSweep but for a multi-pin sweep).
	var in, out []float64
	var guess []float64
	for _, v := range vals {
		cur = v
		op, err := eng.OP(0, guess)
		if err != nil {
			return nil, fmt.Errorf("DC point Vin=%.3f: %w", v, err)
		}
		in = append(in, v)
		out = append(out, op.At(cell.Output))
		if guess == nil {
			guess = make([]float64, len(eng.Unknowns()))
		}
		for i, id := range eng.Unknowns() {
			guess[i] = op.V[id]
		}
	}

	c := &Curve{Subset: append([]int(nil), subset...), In: in, Out: out}
	if err := c.extractCriticalVoltages(); err != nil {
		return nil, err
	}
	return c, nil
}

// extractCriticalVoltages computes Vil, Vih and Vm from the sampled curve.
func (c *Curve) extractCriticalVoltages() error {
	n := len(c.In)
	if n < 5 {
		return fmt.Errorf("vtc: too few sweep points (%d)", n)
	}
	// Central-difference slope.
	slope := make([]float64, n)
	for i := 1; i < n-1; i++ {
		slope[i] = (c.Out[i+1] - c.Out[i-1]) / (c.In[i+1] - c.In[i-1])
	}
	slope[0] = slope[1]
	slope[n-1] = slope[n-2]

	// Vil: first crossing of slope through -1 (from above, i.e. slope
	// becoming steeper than -1 as Vin increases).
	// Vih: last crossing of slope through -1 (slope recovering past -1).
	vil, vih := math.NaN(), math.NaN()
	for i := 1; i < n; i++ {
		if slope[i-1] > -1 && slope[i] <= -1 {
			vil = interp(c.In[i-1], c.In[i], slope[i-1], slope[i], -1)
			break
		}
	}
	for i := n - 1; i >= 1; i-- {
		if slope[i] > -1 && slope[i-1] <= -1 {
			vih = interp(c.In[i-1], c.In[i], slope[i-1], slope[i], -1)
			break
		}
	}
	if math.IsNaN(vil) || math.IsNaN(vih) || vih <= vil {
		return fmt.Errorf("vtc: unity-gain points not found (vil=%v vih=%v)", vil, vih)
	}
	c.Vil, c.Vih = vil, vih

	// Vm: Vout = Vin crossing. g(v) = Out - In decreasing through 0.
	vm := math.NaN()
	for i := 1; i < n; i++ {
		g0 := c.Out[i-1] - c.In[i-1]
		g1 := c.Out[i] - c.In[i]
		if g0 >= 0 && g1 < 0 {
			vm = interp(c.In[i-1], c.In[i], g0, g1, 0)
			break
		}
	}
	if math.IsNaN(vm) {
		return fmt.Errorf("vtc: switching threshold Vm not found")
	}
	c.Vm = vm
	return nil
}

// interp solves linearly for x where y(x) = target on segment
// (x0,y0)-(x1,y1).
func interp(x0, x1, y0, y1, target float64) float64 {
	if y1 == y0 {
		return 0.5 * (x0 + x1)
	}
	f := (target - y0) / (y1 - y0)
	return x0 + f*(x1-x0)
}

// subsetOf expands a bitmask into a pin index list.
func subsetOf(mask, n int) []int {
	var s []int
	for i := 0; i < n; i++ {
		if mask&(1<<i) != 0 {
			s = append(s, i)
		}
	}
	return s
}
