package vtc

import (
	"testing"

	"repro/internal/cells"
	"repro/internal/spice"
)

func extract(t *testing.T, kind cells.Kind, n int) *Family {
	t.Helper()
	cell := cells.MustNew(kind, n, cells.DefaultProcess(), cells.DefaultGeometry())
	fam, err := Extract(cell, spice.DefaultOptions(), 0.02)
	if err != nil {
		t.Fatal(err)
	}
	return fam
}

func TestFamilySizeAndOrdering(t *testing.T) {
	fam := extract(t, cells.Nand, 3)
	if len(fam.Curves) != 7 {
		t.Fatalf("NAND3 family has %d curves, want 7", len(fam.Curves))
	}
	for _, c := range fam.Curves {
		if !(0 < c.Vil && c.Vil < c.Vm && c.Vm < c.Vih && c.Vih < 5) {
			t.Errorf("subset {%s}: want 0 < Vil(%.3f) < Vm(%.3f) < Vih(%.3f) < Vdd",
				SubsetName(c.Subset), c.Vil, c.Vm, c.Vih)
		}
	}
}

func TestThresholdPolicyMinMax(t *testing.T) {
	fam := extract(t, cells.Nand, 2)
	for _, c := range fam.Curves {
		if c.Vil < fam.Thresholds.Vil-1e-9 {
			t.Errorf("policy Vil %.3f not the minimum (subset {%s} has %.3f)",
				fam.Thresholds.Vil, SubsetName(c.Subset), c.Vil)
		}
		if c.Vih > fam.Thresholds.Vih+1e-9 {
			t.Errorf("policy Vih %.3f not the maximum (subset {%s} has %.3f)",
				fam.Thresholds.Vih, SubsetName(c.Subset), c.Vih)
		}
	}
	// The key Section-2 property: Vil < Vm < Vih for EVERY curve's Vm, so
	// delay stays positive no matter which input dominates.
	for _, c := range fam.Curves {
		if !(fam.Thresholds.Vil < c.Vm && c.Vm < fam.Thresholds.Vih) {
			t.Errorf("policy does not bracket Vm of subset {%s} (%.3f)", SubsetName(c.Subset), c.Vm)
		}
	}
}

func TestNANDPolicySources(t *testing.T) {
	fam := extract(t, cells.Nand, 3)
	// Paper: for a NAND, min Vil comes from the input closest to ground
	// (our pin c = index 2, stack bottom) and max Vih from all switching.
	if len(fam.MinVilSubset) != 1 || fam.MinVilSubset[0] != 2 {
		t.Errorf("min Vil from subset %v, want the stack-bottom input {c}", fam.MinVilSubset)
	}
	if len(fam.MaxVihSubset) != 3 {
		t.Errorf("max Vih from subset %v, want all inputs {a,b,c}", fam.MaxVihSubset)
	}
}

func TestNORPolicySources(t *testing.T) {
	fam := extract(t, cells.Nor, 3)
	// Paper: for a NOR, Vil comes from all-switching and Vih from the
	// input closest to the power rail (our pin a = index 0).
	if len(fam.MinVilSubset) != 3 {
		t.Errorf("NOR min Vil from subset %v, want all inputs", fam.MinVilSubset)
	}
	if len(fam.MaxVihSubset) != 1 || fam.MaxVihSubset[0] != 0 {
		t.Errorf("NOR max Vih from subset %v, want the near-rail input {a}", fam.MaxVihSubset)
	}
}

func TestExtractCurveRejectsEmptySubset(t *testing.T) {
	cell := cells.MustNew(cells.Nand, 2, cells.DefaultProcess(), cells.DefaultGeometry())
	if _, err := ExtractCurve(cell, nil, spice.DefaultOptions(), 0.05); err == nil {
		t.Error("empty subset accepted")
	}
}

func TestSubsetName(t *testing.T) {
	if got := SubsetName([]int{0, 2}); got != "a,c" {
		t.Errorf("SubsetName = %q", got)
	}
	if got := SubsetName(nil); got != "" {
		t.Errorf("SubsetName(nil) = %q", got)
	}
}

func TestVTCRestoresDrives(t *testing.T) {
	cell := cells.MustNew(cells.Nand, 2, cells.DefaultProcess(), cells.DefaultGeometry())
	if _, err := Extract(cell, spice.DefaultOptions(), 0.05); err != nil {
		t.Fatal(err)
	}
	// After extraction, every input is back at the non-controlling level.
	for _, pin := range cell.Inputs {
		if got := cell.Ckt.DriveValue(pin, 0); got != 5.0 {
			t.Errorf("pin %s left at %g after extraction", cell.Ckt.NodeName(pin), got)
		}
	}
}

func TestInverterSingleCurve(t *testing.T) {
	fam := extract(t, cells.Inv, 1)
	if len(fam.Curves) != 1 {
		t.Fatalf("inverter family has %d curves", len(fam.Curves))
	}
}
