package spice

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/circuit"
	"repro/internal/waveform"
)

// TranResult is the output of a transient analysis: one shared time axis and
// a voltage series per node (driven nodes included, for convenience).
type TranResult struct {
	ckt  *circuit.Circuit
	Time []float64
	V    [][]float64 // V[nodeID][sample]
	// SourceCurrent[nodeID][sample] is the current delivered BY the ideal
	// source on each driven node (positive = flowing out of the source
	// into the circuit), reconstructed from the device equations at each
	// accepted time point. Supply-current (and hence peak-current)
	// measurements read the Vdd node's series.
	SourceCurrent map[circuit.NodeID][]float64
}

// Trace returns the sampled waveform of a node.
func (r *TranResult) Trace(id circuit.NodeID) *waveform.Trace {
	tr, err := waveform.NewTrace(r.Time, r.V[id])
	if err != nil {
		panic(fmt.Sprintf("spice: internal trace construction: %v", err))
	}
	return tr
}

// TraceName returns the trace for a node addressed by name.
func (r *TranResult) TraceName(name string) *waveform.Trace {
	return r.Trace(r.ckt.Node(name))
}

// SourceCurrentTrace returns the current delivered by the source driving a
// node, as a sampled waveform (amperes).
func (r *TranResult) SourceCurrentTrace(id circuit.NodeID) (*waveform.Trace, error) {
	series, ok := r.SourceCurrent[id]
	if !ok {
		return nil, fmt.Errorf("spice: node %s is not a driven source", r.ckt.NodeName(id))
	}
	return waveform.NewTrace(r.Time, series)
}

// PeakSourceCurrent returns the largest |current| delivered by a source and
// the time it occurs.
func (r *TranResult) PeakSourceCurrent(id circuit.NodeID) (amps, at float64, err error) {
	tr, err := r.SourceCurrentTrace(id)
	if err != nil {
		return 0, 0, err
	}
	for i, v := range tr.V {
		if a := math.Abs(v); a > amps {
			amps, at = a, tr.T[i]
		}
	}
	return amps, at, nil
}

// TranSpec configures a transient run.
type TranSpec struct {
	// Stop is the end time; the run always starts at t = 0.
	Stop float64
	// Breakpoints are times the integrator must land on exactly (stimulus
	// corners). The engine restarts with a damped small step after each.
	Breakpoints []float64
	// InitialOP, when true (the default used by Transient), computes the
	// t=0 operating point first; otherwise unknowns start at InitialX.
	InitialX []float64
}

// Transient runs an adaptive-step trapezoidal transient from a t=0 DC
// operating point to spec.Stop.
func (e *Engine) Transient(spec TranSpec) (*TranResult, error) {
	if spec.Stop <= 0 {
		return nil, fmt.Errorf("spice: transient stop time must be positive, got %g", spec.Stop)
	}
	n := len(e.unknowns)
	x := make([]float64, n)
	if spec.InitialX != nil {
		if len(spec.InitialX) != n {
			return nil, fmt.Errorf("spice: InitialX length %d, want %d", len(spec.InitialX), n)
		}
		copy(x, spec.InitialX)
	} else {
		op, err := e.OP(0, nil)
		if err != nil {
			return nil, fmt.Errorf("spice: transient initial OP: %w", err)
		}
		for i, id := range e.unknowns {
			x[i] = op.V[id]
		}
	}

	// Normalize breakpoints: sorted, within (0, stop).
	bps := make([]float64, 0, len(spec.Breakpoints))
	for _, b := range spec.Breakpoints {
		if b > 0 && b < spec.Stop {
			bps = append(bps, b)
		}
	}
	sort.Float64s(bps)

	// Capacitor state at the current accepted time point.
	caps := make([]capState, len(e.ckt.Capacitors))
	vfull := e.fullVoltagesScaled(x, 0, 1)
	for i, cp := range e.ckt.Capacitors {
		caps[i] = capState{v: vfull[cp.A] - vfull[cp.B], i: 0}
	}

	res := &TranResult{ckt: e.ckt, SourceCurrent: map[circuit.NodeID][]float64{}}
	for _, id := range e.ckt.DrivenNodes() {
		res.SourceCurrent[id] = nil
	}
	record := func(t float64, v []float64, caps []capState) {
		res.Time = append(res.Time, t)
		if res.V == nil {
			res.V = make([][]float64, e.ckt.NumNodes())
		}
		for id := range res.V {
			res.V[id] = append(res.V[id], v[id])
		}
		cur := e.sourceCurrents(v, caps)
		for id, i := range cur {
			res.SourceCurrent[id] = append(res.SourceCurrent[id], i)
		}
	}
	record(0, vfull, caps)

	t := 0.0
	h := e.opt.MaxStep / 16
	if h < e.opt.MinStep {
		h = e.opt.MinStep
	}
	beSteps := 2 // backward-Euler steps remaining (start + after breakpoints)
	nextBP := 0

	geq := make([]float64, len(caps))
	ieq := make([]float64, len(caps))
	xTry := make([]float64, n)
	prev := make([]float64, n)

	maxSamples := 2_000_000
	for t < spec.Stop {
		// Trim the step to land exactly on the next breakpoint or stop.
		target := spec.Stop
		if nextBP < len(bps) {
			target = bps[nextBP]
		}
		if t+h > target {
			h = target - t
		}
		if h < e.opt.MinStep {
			h = e.opt.MinStep
		}

		// Companion parameters for this step.
		trap := e.opt.TrapRatio
		if beSteps > 0 {
			trap = 0
		}
		for i, cp := range e.ckt.Capacitors {
			if trap > 0 {
				// Trapezoidal: i1 = (2C/h)(v1-v0) - i0.
				geq[i] = 2 * cp.C / h
				ieq[i] = -geq[i]*caps[i].v - caps[i].i
			} else {
				// Backward Euler: i1 = (C/h)(v1-v0).
				geq[i] = cp.C / h
				ieq[i] = -geq[i] * caps[i].v
			}
		}

		copy(prev, x)
		copy(xTry, x)
		ctx := &stampContext{caps: caps, geq: geq, ieq: ieq, gmin: e.opt.Gmin}
		iters, err := e.newton(xTry, t+h, ctx, 1)

		// Reject on failure or on excessive voltage movement.
		reject := err != nil
		dv := 0.0
		if !reject {
			for i := range xTry {
				if a := math.Abs(xTry[i] - prev[i]); a > dv {
					dv = a
				}
			}
			if dv > e.opt.DVMax && h > e.opt.MinStep*2 {
				reject = true
			}
		}
		if reject {
			if h <= e.opt.MinStep*2 {
				if err != nil {
					return nil, fmt.Errorf("spice: transient stuck at t=%.6g (h=%.3g): %w", t, h, err)
				}
				// Accept the over-large move at minimum step.
			} else {
				h /= 2
				continue
			}
		}

		// Accept the step.
		t += h
		copy(x, xTry)
		vfull = e.fullVoltagesScaled(x, t, 1)
		// Update capacitor states.
		for i, cp := range e.ckt.Capacitors {
			vb := vfull[cp.A] - vfull[cp.B]
			caps[i].i = geq[i]*vb + ieq[i]
			caps[i].v = vb
		}
		record(t, vfull, caps)
		if len(res.Time) > maxSamples {
			return nil, fmt.Errorf("spice: transient exceeded %d samples (runaway step control)", maxSamples)
		}

		if beSteps > 0 {
			beSteps--
		}
		// Hit a breakpoint: restart step control with damped BE steps so
		// the corner does not excite trapezoidal ringing.
		if nextBP < len(bps) && t >= bps[nextBP]-1e-21 {
			nextBP++
			beSteps = 2
			h = math.Max(e.opt.MinStep, e.opt.MaxStep/64)
			continue
		}

		// Grow the step when the solution is moving slowly and Newton is
		// comfortable.
		if dv < 0.3*e.opt.DVMax && iters <= 8 {
			h = math.Min(h*1.5, e.opt.MaxStep)
		}
	}
	return res, nil
}

// sourceCurrents reconstructs the current delivered by each ideal source at
// an accepted time point: the sum of currents leaving the driven node
// through devices. Capacitor branch currents come from the accepted
// companion state.
func (e *Engine) sourceCurrents(v []float64, caps []capState) map[circuit.NodeID]float64 {
	out := map[circuit.NodeID]float64{}
	for _, id := range e.ckt.DrivenNodes() {
		out[id] = 0
	}
	add := func(id circuit.NodeID, i float64) {
		if _, ok := out[id]; ok {
			out[id] += i
		}
	}
	for _, m := range e.ckt.MOSFETs {
		op := m.Eval(v[m.D], v[m.G], v[m.S], v[m.B])
		add(m.D, op.Id)
		add(m.S, -op.Id)
	}
	for _, r := range e.ckt.Resistors {
		ir := (v[r.A] - v[r.B]) / r.R
		add(r.A, ir)
		add(r.B, -ir)
	}
	for ci, cp := range e.ckt.Capacitors {
		add(cp.A, caps[ci].i)
		add(cp.B, -caps[ci].i)
	}
	return out
}
