// Package spice is a small transistor-level circuit simulator: the repo's
// substitute for the HSPICE runs the paper relies on for VTC extraction,
// macromodel characterization and golden delay measurement.
//
// It implements Newton–Raphson nodal analysis over the device models in
// internal/device, with three analyses:
//
//   - OP: DC operating point (with gmin stepping and source stepping
//     fallbacks for hard bias points),
//   - DCSweep: swept-source DC transfer curves (for VTC extraction),
//   - Transient: adaptive-step trapezoidal integration with stimulus
//     breakpoint alignment (for delay measurement).
//
// Input pins are driven nodes (ideal voltage sources), so the unknown vector
// contains only internal and output nodes; circuits in this project factor
// into systems of a handful of unknowns solved by dense LU.
package spice

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/circuit"
	"repro/internal/mna"
)

// Options tunes solver behaviour. The zero value is not valid; use
// DefaultOptions.
type Options struct {
	// Gmin is the conductance from every unknown node to ground that keeps
	// the Jacobian nonsingular when all devices at a node are cut off.
	Gmin float64
	// AbsTol is the KCL residual convergence tolerance in amperes.
	AbsTol float64
	// VnTol is the Newton update convergence tolerance in volts.
	VnTol float64
	// MaxNewton bounds Newton iterations per solve.
	MaxNewton int
	// VLimit caps the per-iteration Newton voltage update (damping).
	VLimit float64
	// MinStep and MaxStep bound the adaptive transient step.
	MinStep, MaxStep float64
	// DVMax is the target maximum node-voltage change per transient step;
	// steps producing more are rejected and halved.
	DVMax float64
	// TrapRatio selects the integration blend: 1 = trapezoidal,
	// 0 = backward Euler. The engine uses BE for the first step after a
	// stimulus breakpoint to damp trapezoidal ringing.
	TrapRatio float64
}

// DefaultOptions returns solver settings suitable for the sub-10-node CMOS
// cells used throughout the repo.
func DefaultOptions() Options {
	return Options{
		Gmin:      1e-12,
		AbsTol:    1e-10,
		VnTol:     1e-7,
		MaxNewton: 200,
		VLimit:    0.5,
		MinStep:   1e-16,
		MaxStep:   50e-12,
		DVMax:     0.08,
		TrapRatio: 1,
	}
}

// ErrNoConvergence is returned when Newton iteration fails even after the
// engine's continuation fallbacks.
var ErrNoConvergence = errors.New("spice: newton iteration did not converge")

// Engine binds a circuit to solver state.
type Engine struct {
	ckt *circuit.Circuit
	opt Options

	unknowns []circuit.NodeID
	index    []int // node id -> unknown index, -1 for ground/driven
}

// New creates an engine for the circuit. The circuit's driven/unknown split
// is frozen at this point; create a new engine after re-driving nodes.
func New(ckt *circuit.Circuit, opt Options) (*Engine, error) {
	if err := ckt.Validate(); err != nil {
		return nil, err
	}
	e := &Engine{ckt: ckt, opt: opt}
	e.unknowns = ckt.Unknowns()
	e.index = make([]int, ckt.NumNodes())
	for i := range e.index {
		e.index[i] = -1
	}
	for i, id := range e.unknowns {
		e.index[id] = i
	}
	return e, nil
}

// Unknowns exposes the solved node set in matrix order.
func (e *Engine) Unknowns() []circuit.NodeID { return e.unknowns }

// fullVoltages assembles the complete node-voltage vector at time t from the
// unknown vector x.
func (e *Engine) fullVoltages(x []float64, t float64) []float64 {
	v := make([]float64, e.ckt.NumNodes())
	for _, id := range e.ckt.DrivenNodes() {
		v[id] = e.ckt.DriveValue(id, t)
	}
	for i, id := range e.unknowns {
		v[id] = x[i]
	}
	return v
}

// capState is the per-capacitor companion-model state for transient.
type capState struct {
	v float64 // branch voltage at previous accepted time point
	i float64 // branch current at previous accepted time point
}

// stampContext carries what the device stamps need.
type stampContext struct {
	// transient companion parameters; nil caps slice means DC (caps open).
	caps []capState
	geq  []float64 // per-capacitor companion conductance
	ieq  []float64 // per-capacitor companion current source
	gmin float64
	// srcScale scales driven-node voltages for source stepping; the scale
	// is applied inside fullVoltages' caller, not here.
}

// assemble builds the Jacobian and residual at node voltages v.
// F[k] is the net current leaving unknown node k; J = dF/dx.
func (e *Engine) assemble(v []float64, ctx *stampContext, jac *mna.Matrix, f []float64) {
	n := len(e.unknowns)
	jac.Zero()
	for i := range f {
		f[i] = 0
	}
	idx := e.index

	// gmin to ground on every unknown node.
	for k, id := range e.unknowns {
		f[k] += ctx.gmin * v[id]
		jac.Add(k, k, ctx.gmin)
	}

	// MOSFETs.
	for _, m := range e.ckt.MOSFETs {
		op := m.Eval(v[m.D], v[m.G], v[m.S], v[m.B])
		d, g, s, b := idx[m.D], idx[m.G], idx[m.S], idx[m.B]
		// Current Id enters the drain node and leaves the source node.
		if d >= 0 {
			f[d] += op.Id
		}
		if s >= 0 {
			f[s] -= op.Id
		}
		// dId/dVd = Gds, dId/dVg = Gm, dId/dVb = Gmbs,
		// dId/dVs = -(Gm+Gds+Gmbs).
		gs := -(op.Gm + op.Gds + op.Gmbs)
		stamp := func(row int, sign float64) {
			if row < 0 {
				return
			}
			if d >= 0 {
				jac.Add(row, d, sign*op.Gds)
			}
			if g >= 0 {
				jac.Add(row, g, sign*op.Gm)
			}
			if b >= 0 {
				jac.Add(row, b, sign*op.Gmbs)
			}
			if s >= 0 {
				jac.Add(row, s, sign*gs)
			}
		}
		stamp(d, +1)
		stamp(s, -1)
		_ = n
	}

	// Resistors.
	for _, r := range e.ckt.Resistors {
		gcond := 1 / r.R
		a, b := idx[r.A], idx[r.B]
		ir := gcond * (v[r.A] - v[r.B])
		if a >= 0 {
			f[a] += ir
			jac.Add(a, a, gcond)
			if b >= 0 {
				jac.Add(a, b, -gcond)
			}
		}
		if b >= 0 {
			f[b] -= ir
			jac.Add(b, b, gcond)
			if a >= 0 {
				jac.Add(b, a, -gcond)
			}
		}
	}

	// Capacitors (transient only): Norton companion i = geq*vbranch + ieq.
	if ctx.caps != nil {
		for ci, cp := range e.ckt.Capacitors {
			geq := ctx.geq[ci]
			ieq := ctx.ieq[ci]
			a, b := idx[cp.A], idx[cp.B]
			ic := geq*(v[cp.A]-v[cp.B]) + ieq
			if a >= 0 {
				f[a] += ic
				jac.Add(a, a, geq)
				if b >= 0 {
					jac.Add(a, b, -geq)
				}
			}
			if b >= 0 {
				f[b] -= ic
				jac.Add(b, b, geq)
				if a >= 0 {
					jac.Add(b, a, -geq)
				}
			}
		}
	}
}

// newton solves the nonlinear system at time t starting from x (modified in
// place). Driven-node voltages may be scaled by srcScale for continuation.
func (e *Engine) newton(x []float64, t float64, ctx *stampContext, srcScale float64) (iters int, err error) {
	n := len(e.unknowns)
	if n == 0 {
		return 0, nil
	}
	jac := mna.NewMatrix(n)
	f := make([]float64, n)
	dx := make([]float64, n)

	for iter := 0; iter < e.opt.MaxNewton; iter++ {
		v := e.fullVoltagesScaled(x, t, srcScale)
		e.assemble(v, ctx, jac, f)
		for i := range f {
			f[i] = -f[i]
		}
		lu, ferr := mna.Factor(jac)
		if ferr != nil {
			// Retry with a stronger gmin once; genuinely singular systems
			// indicate a floating node.
			return iter, fmt.Errorf("spice: jacobian singular at t=%g: %w", t, ferr)
		}
		lu.Solve(f, dx)
		// Damping: limit each component of the update.
		worst := 0.0
		for i := range dx {
			if a := math.Abs(dx[i]); a > worst {
				worst = a
			}
		}
		scale := 1.0
		if worst > e.opt.VLimit {
			scale = e.opt.VLimit / worst
		}
		for i := range x {
			x[i] += scale * dx[i]
		}
		// Converged when the full (undamped) Newton step is tiny: the
		// undamped step measures remaining distance to the solution.
		if worst < e.opt.VnTol {
			return iter + 1, nil
		}
	}
	return e.opt.MaxNewton, ErrNoConvergence
}

// fullVoltagesScaled is fullVoltages with driven values scaled (source
// stepping support).
func (e *Engine) fullVoltagesScaled(x []float64, t float64, srcScale float64) []float64 {
	v := make([]float64, e.ckt.NumNodes())
	for _, id := range e.ckt.DrivenNodes() {
		v[id] = srcScale * e.ckt.DriveValue(id, t)
	}
	for i, id := range e.unknowns {
		v[id] = x[i]
	}
	return v
}
