package spice_test

import (
	"math"
	"testing"

	"repro/internal/cells"
	"repro/internal/circuit"
	"repro/internal/spice"
	"repro/internal/waveform"
)

// TestInverterDCEndpoints checks that an inverter's DC transfer curve pins
// to the rails at the input extremes.
func TestInverterDCEndpoints(t *testing.T) {
	cell := cells.MustNew(cells.Inv, 1, cells.DefaultProcess(), cells.DefaultGeometry())
	cell.HoldPin(0, 0)
	eng, err := cell.Engine(spice.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	op, err := eng.OP(0, nil)
	if err != nil {
		t.Fatalf("OP at Vin=0: %v", err)
	}
	if got := op.At(cell.Output); math.Abs(got-5.0) > 0.01 {
		t.Errorf("Vout at Vin=0 = %.4f, want ~5.0", got)
	}

	cell.HoldPin(0, 5.0)
	eng2, _ := cell.Engine(spice.DefaultOptions())
	op2, err := eng2.OP(0, nil)
	if err != nil {
		t.Fatalf("OP at Vin=5: %v", err)
	}
	if got := op2.At(cell.Output); math.Abs(got) > 0.01 {
		t.Errorf("Vout at Vin=5 = %.4f, want ~0", got)
	}
}

// TestInverterVTCMonotone sweeps the inverter VTC and checks monotonicity
// and a mid-supply switching threshold.
func TestInverterVTCMonotone(t *testing.T) {
	cell := cells.MustNew(cells.Inv, 1, cells.DefaultProcess(), cells.DefaultGeometry())
	cell.HoldPin(0, 0)
	eng, err := cell.Engine(spice.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var vals []float64
	for v := 0.0; v <= 5.0001; v += 0.05 {
		vals = append(vals, v)
	}
	sw, err := eng.DCSweep(cell.Inputs[0], vals)
	if err != nil {
		t.Fatal(err)
	}
	out := sw.At(cell.Output)
	for i := 1; i < len(out); i++ {
		if out[i] > out[i-1]+1e-6 {
			t.Fatalf("VTC not monotone at Vin=%.2f: %.4f -> %.4f", vals[i], out[i-1], out[i])
		}
	}
	// Switching threshold: find Vin where Vout crosses Vin.
	vm := -1.0
	for i := 1; i < len(out); i++ {
		if out[i-1] >= vals[i-1] && out[i] < vals[i] {
			vm = vals[i]
			break
		}
	}
	if vm < 1.5 || vm > 3.5 {
		t.Errorf("inverter Vm = %.2f, want mid-supply-ish", vm)
	}
}

// TestNAND3TransientRise drives inputs a,b with falling ramps (c at Vdd) and
// checks the output completes a rising transition, and that bringing b
// closer to a speeds the output up (the proximity effect of Fig. 1-2a).
func TestNAND3TransientRise(t *testing.T) {
	proc := cells.DefaultProcess()
	delayAt := func(sep float64) float64 {
		cell := cells.MustNew(cells.Nand, 3, proc, cells.DefaultGeometry())
		t0 := 0.5e-9
		wa := waveform.FallingRamp(t0, 500e-12, proc.Vdd)
		wb := waveform.FallingRamp(t0+sep, 100e-12, proc.Vdd)
		cell.DrivePin(0, wa)
		cell.DrivePin(1, wb)
		cell.HoldPin(2, proc.Vdd)
		eng, err := cell.Engine(spice.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.Transient(spice.TranSpec{
			Stop:        6e-9,
			Breakpoints: waveform.Breakpoints(wa, wb),
		})
		if err != nil {
			t.Fatalf("transient at sep=%g: %v", sep, err)
		}
		out := res.Trace(cell.Output)
		if final := out.Final(); math.Abs(final-proc.Vdd) > 0.05 {
			t.Fatalf("output did not settle high at sep=%g: final=%.3f", sep, final)
		}
		th := waveform.Thresholds{Vil: 1.25, Vih: 3.37, Vdd: proc.Vdd}
		d, err := th.Delay(wa, waveform.Falling, out, waveform.Rising)
		if err != nil {
			t.Fatalf("delay at sep=%g: %v", sep, err)
		}
		return d
	}

	dFar := delayAt(2e-9) // b far after a: blocked, a alone drives output
	dNear := delayAt(0)   // coincident: both pull-ups conduct
	if dNear >= dFar {
		t.Errorf("proximity should reduce delay: near=%.1fps far=%.1fps", dNear*1e12, dFar*1e12)
	}
	if dFar <= 0 || dFar > 2e-9 {
		t.Errorf("far-separation delay out of range: %.1fps", dFar*1e12)
	}
	t.Logf("NAND3 rise delay: coincident=%.1fps far=%.1fps (ratio %.2f)",
		dNear*1e12, dFar*1e12, dNear/dFar)
}

// TestChargeConservationRC checks the transient integrator against the
// analytic RC step response.
func TestChargeConservationRC(t *testing.T) {
	ckt := circuit.New()
	in := ckt.DriveName("in", func(tt float64) float64 {
		if tt <= 0 {
			return 0
		}
		return 1.0
	})
	out := ckt.Node("out")
	ckt.AddResistor("r", in, out, 1e3)
	ckt.AddCapacitor("c", out, circuit.Ground, 1e-12) // tau = 1ns
	opt := spice.DefaultOptions()
	opt.MaxStep = 20e-12
	eng, err := spice.New(ckt, opt)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Transient(spice.TranSpec{Stop: 5e-9, Breakpoints: []float64{1e-15}})
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Trace(out)
	for _, tp := range []float64{0.5e-9, 1e-9, 2e-9, 4e-9} {
		want := 1 - math.Exp(-tp/1e-9)
		got := tr.Eval(tp)
		if math.Abs(got-want) > 0.01 {
			t.Errorf("RC response at t=%.1fns: got %.4f want %.4f", tp*1e9, got, want)
		}
	}
}
