package spice

import (
	"fmt"
	"math"

	"repro/internal/circuit"
)

// OPResult holds a DC operating point: the voltage of every node.
type OPResult struct {
	V []float64 // indexed by NodeID
}

// At returns the solved voltage at a node.
func (r *OPResult) At(id circuit.NodeID) float64 { return r.V[id] }

// OP computes the DC operating point at analysis time t (driven sources are
// evaluated at t; capacitors are open). The initial guess, when non-nil,
// seeds Newton with one voltage per unknown in engine order.
func (e *Engine) OP(t float64, guess []float64) (*OPResult, error) {
	n := len(e.unknowns)
	x := make([]float64, n)
	if guess != nil {
		if len(guess) != n {
			return nil, fmt.Errorf("spice: OP guess length %d, want %d", len(guess), n)
		}
		copy(x, guess)
	} else {
		// Start unknowns at half of the largest source magnitude: a decent
		// neutral guess for CMOS nodes.
		half := 0.5 * e.maxSource(t)
		for i := range x {
			x[i] = half
		}
	}

	ctx := &stampContext{gmin: e.opt.Gmin}
	if _, err := e.newton(x, t, ctx, 1); err == nil {
		return &OPResult{V: e.fullVoltagesScaled(x, t, 1)}, nil
	}

	// Fallback 1: gmin stepping. Solve with a heavy shunt conductance and
	// relax it geometrically, warm-starting each stage.
	xg := make([]float64, n)
	copy(xg, x)
	ok := true
	for g := 1e-3; g >= e.opt.Gmin; g /= 10 {
		ctx := &stampContext{gmin: g}
		if _, err := e.newton(xg, t, ctx, 1); err != nil {
			ok = false
			break
		}
	}
	if ok {
		ctx := &stampContext{gmin: e.opt.Gmin}
		if _, err := e.newton(xg, t, ctx, 1); err == nil {
			return &OPResult{V: e.fullVoltagesScaled(xg, t, 1)}, nil
		}
	}

	// Fallback 2: source stepping. Ramp all sources from 0 to full value.
	xs := make([]float64, n)
	for scale := 0.0; ; {
		ctx := &stampContext{gmin: e.opt.Gmin}
		if _, err := e.newton(xs, t, ctx, scale); err != nil {
			return nil, fmt.Errorf("spice: OP source stepping failed at scale %.3f: %w", scale, err)
		}
		if scale >= 1 {
			return &OPResult{V: e.fullVoltagesScaled(xs, t, 1)}, nil
		}
		scale = math.Min(1, scale+0.05)
	}
}

// maxSource returns the largest |driven voltage| at time t.
func (e *Engine) maxSource(t float64) float64 {
	m := 0.0
	for _, id := range e.ckt.DrivenNodes() {
		if a := math.Abs(e.ckt.DriveValue(id, t)); a > m {
			m = a
		}
	}
	return m
}

// SweepResult holds a DC transfer sweep: for each swept source value, the
// voltage of every node.
type SweepResult struct {
	In []float64   // swept input values
	V  [][]float64 // V[i][nodeID] = node voltage at sweep point i
}

// At returns the node-voltage series for one node across the sweep.
func (r *SweepResult) At(id circuit.NodeID) []float64 {
	out := make([]float64, len(r.In))
	for i := range r.In {
		out[i] = r.V[i][id]
	}
	return out
}

// DCSweep steps the drive on node sweep through vals (monotonic recommended),
// solving the DC system at each point with warm starts. The node's original
// drive is restored afterwards.
func (e *Engine) DCSweep(sweep circuit.NodeID, vals []float64) (*SweepResult, error) {
	if !e.ckt.IsDriven(sweep) {
		return nil, fmt.Errorf("spice: sweep node %s is not driven", e.ckt.NodeName(sweep))
	}
	res := &SweepResult{In: append([]float64(nil), vals...)}
	var guess []float64
	cur := 0.0
	orig := e.ckt.DriveFuncOf(sweep)
	e.ckt.Drive(sweep, func(float64) float64 { return cur })
	defer e.ckt.Drive(sweep, orig)
	for _, v := range vals {
		cur = v
		op, err := e.OP(0, guess)
		if err != nil {
			return nil, fmt.Errorf("spice: DC sweep failed at %s=%.4f: %w", e.ckt.NodeName(sweep), v, err)
		}
		res.V = append(res.V, op.V)
		if guess == nil {
			guess = make([]float64, len(e.unknowns))
		}
		for i, id := range e.unknowns {
			guess[i] = op.V[id]
		}
	}
	return res, nil
}
