package spice_test

import (
	"math"
	"testing"

	"repro/internal/cells"
	"repro/internal/circuit"
	"repro/internal/device"
	"repro/internal/spice"
	"repro/internal/waveform"
)

// resistorDivider builds vdd -- R -- out -- R -- gnd.
func resistorDivider() (*circuit.Circuit, circuit.NodeID) {
	ckt := circuit.New()
	vdd := ckt.DriveName("vdd", circuit.DC(5))
	out := ckt.Node("out")
	ckt.AddResistor("r1", vdd, out, 1e3)
	ckt.AddResistor("r2", out, circuit.Ground, 1e3)
	return ckt, out
}

func TestOPResistorDivider(t *testing.T) {
	ckt, out := resistorDivider()
	eng, err := spice.New(ckt, spice.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	op, err := eng.OP(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := op.At(out); math.Abs(got-2.5) > 1e-6 {
		t.Errorf("divider voltage = %g, want 2.5", got)
	}
}

func TestOPWithGuess(t *testing.T) {
	ckt, out := resistorDivider()
	eng, _ := spice.New(ckt, spice.DefaultOptions())
	op, err := eng.OP(0, []float64{2.4})
	if err != nil {
		t.Fatal(err)
	}
	if got := op.At(out); math.Abs(got-2.5) > 1e-6 {
		t.Errorf("warm-started divider = %g", got)
	}
	if _, err := eng.OP(0, []float64{1, 2}); err == nil {
		t.Error("wrong guess length accepted")
	}
}

func TestDCSweepInverterAndRestore(t *testing.T) {
	cell := cells.MustNew(cells.Inv, 1, cells.DefaultProcess(), cells.DefaultGeometry())
	cell.HoldPin(0, 1.23)
	eng, err := cell.Engine(spice.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	vals := []float64{0, 1, 2, 3, 4, 5}
	sw, err := eng.DCSweep(cell.Inputs[0], vals)
	if err != nil {
		t.Fatal(err)
	}
	out := sw.At(cell.Output)
	if len(out) != len(vals) {
		t.Fatalf("sweep rows = %d", len(out))
	}
	if out[0] < 4.9 || out[5] > 0.1 {
		t.Errorf("inverter endpoints: %g, %g", out[0], out[5])
	}
	// The original drive is restored after the sweep.
	if got := cell.Ckt.DriveValue(cell.Inputs[0], 0); got != 1.23 {
		t.Errorf("sweep did not restore drive: %g", got)
	}
}

func TestDCSweepRejectsUndrivenNode(t *testing.T) {
	ckt, out := resistorDivider()
	eng, _ := spice.New(ckt, spice.DefaultOptions())
	if _, err := eng.DCSweep(out, []float64{0, 1}); err == nil {
		t.Error("sweeping an undriven node accepted")
	}
}

func TestTransientValidation(t *testing.T) {
	ckt, _ := resistorDivider()
	eng, _ := spice.New(ckt, spice.DefaultOptions())
	if _, err := eng.Transient(spice.TranSpec{Stop: -1}); err == nil {
		t.Error("negative stop time accepted")
	}
	if _, err := eng.Transient(spice.TranSpec{Stop: 1e-9, InitialX: []float64{1, 2, 3}}); err == nil {
		t.Error("wrong InitialX length accepted")
	}
}

// TestTransientHoldsDC: a circuit at its operating point stays there.
func TestTransientHoldsDC(t *testing.T) {
	ckt, out := resistorDivider()
	ckt.AddCapacitor("c", out, circuit.Ground, 1e-13)
	eng, _ := spice.New(ckt, spice.DefaultOptions())
	res, err := eng.Transient(spice.TranSpec{Stop: 2e-9})
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Trace(out)
	for i, v := range tr.V {
		if math.Abs(v-2.5) > 1e-4 {
			t.Fatalf("drifted to %g at t=%g", v, tr.T[i])
		}
	}
}

// TestTransientCapacitiveCoupling: a floating node coupled to a stepping
// source through a capacitor divider follows the step by the cap ratio.
func TestTransientCapacitiveCoupling(t *testing.T) {
	ckt := circuit.New()
	in := ckt.DriveName("in", func(tt float64) float64 {
		if tt < 0.1e-9 {
			return 0
		}
		return 1
	})
	out := ckt.Node("out")
	ckt.AddCapacitor("c1", in, out, 2e-13)
	ckt.AddCapacitor("c2", out, circuit.Ground, 2e-13)
	// A weak bleed resistor defines DC.
	ckt.AddResistor("rb", out, circuit.Ground, 1e12)
	opt := spice.DefaultOptions()
	opt.MaxStep = 5e-12
	eng, _ := spice.New(ckt, opt)
	res, err := eng.Transient(spice.TranSpec{Stop: 1e-9, Breakpoints: []float64{0.1e-9}})
	if err != nil {
		t.Fatal(err)
	}
	got := res.Trace(out).Final()
	if math.Abs(got-0.5) > 0.02 {
		t.Errorf("coupled step = %g, want ~0.5 (C divider)", got)
	}
}

// TestInverterTransientDelayScalesWithLoad: doubling CL increases delay.
func TestInverterTransientDelayScalesWithLoad(t *testing.T) {
	delayWith := func(cl float64) float64 {
		geom := cells.DefaultGeometry()
		geom.CLoad = cl
		cell := cells.MustNew(cells.Inv, 1, cells.DefaultProcess(), geom)
		in := waveform.RisingRamp(0.2e-9, 200e-12, 5)
		cell.DrivePin(0, in)
		eng, err := cell.Engine(spice.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.Transient(spice.TranSpec{Stop: 4e-9, Breakpoints: waveform.Breakpoints(in)})
		if err != nil {
			t.Fatal(err)
		}
		th := waveform.Thresholds{Vil: 1.5, Vih: 3.5, Vdd: 5}
		d, err := th.Delay(in, waveform.Rising, res.Trace(cell.Output), waveform.Falling)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	d1 := delayWith(100e-15)
	d2 := delayWith(400e-15)
	if d2 <= d1*1.5 {
		t.Errorf("4x load should slow the gate well past 1.5x: %.1fps vs %.1fps", d1*1e12, d2*1e12)
	}
}

// TestNORTransient: rising input on a NOR2 drops the output.
func TestNORTransient(t *testing.T) {
	cell := cells.MustNew(cells.Nor, 2, cells.DefaultProcess(), cells.DefaultGeometry())
	in := waveform.RisingRamp(0.2e-9, 300e-12, 5)
	cell.DrivePin(0, in)
	cell.HoldPin(1, 0)
	eng, err := cell.Engine(spice.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Transient(spice.TranSpec{Stop: 5e-9, Breakpoints: waveform.Breakpoints(in)})
	if err != nil {
		t.Fatal(err)
	}
	out := res.Trace(cell.Output)
	if out.V[0] < 4.9 {
		t.Errorf("NOR output should start high: %g", out.V[0])
	}
	if out.Final() > 0.1 {
		t.Errorf("NOR output should end low: %g", out.Final())
	}
}

// TestBreakpointLanding: the integrator lands exactly on stimulus corners.
func TestBreakpointLanding(t *testing.T) {
	ckt, out := resistorDivider()
	ckt.AddCapacitor("c", out, circuit.Ground, 1e-13)
	eng, _ := spice.New(ckt, spice.DefaultOptions())
	bp := 0.7e-9
	res, err := eng.Transient(spice.TranSpec{Stop: 2e-9, Breakpoints: []float64{bp}})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, tt := range res.Time {
		if math.Abs(tt-bp) < 1e-21 {
			found = true
			break
		}
	}
	if !found {
		t.Errorf("no sample lands on breakpoint %g", bp)
	}
}

// TestBackwardEulerMatchesTrapezoidal: both integration modes converge to
// the same RC response within tolerance.
func TestBackwardEulerMatchesTrapezoidal(t *testing.T) {
	build := func() (*circuit.Circuit, circuit.NodeID) {
		ckt := circuit.New()
		in := ckt.DriveName("in", func(tt float64) float64 {
			if tt <= 0.05e-9 {
				return 0
			}
			return 1
		})
		out := ckt.Node("out")
		ckt.AddResistor("r", in, out, 1e3)
		ckt.AddCapacitor("c", out, circuit.Ground, 1e-12)
		return ckt, out
	}
	run := func(trap float64) *waveform.Trace {
		ckt, out := build()
		opt := spice.DefaultOptions()
		opt.TrapRatio = trap
		opt.MaxStep = 10e-12
		eng, err := spice.New(ckt, opt)
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.Transient(spice.TranSpec{Stop: 4e-9, Breakpoints: []float64{0.05e-9}})
		if err != nil {
			t.Fatal(err)
		}
		return res.Trace(out)
	}
	trTrap := run(1)
	trBE := run(0)
	for _, tp := range []float64{0.5e-9, 1e-9, 2e-9, 3.5e-9} {
		if d := math.Abs(trTrap.Eval(tp) - trBE.Eval(tp)); d > 0.02 {
			t.Errorf("integration modes disagree by %.3f at t=%.1fns", d, tp*1e9)
		}
	}
}

// TestSupplyCurrentConservation: in a resistor divider the source delivers
// V/(R1+R2) continuously, and the ground-referenced KCL balances.
func TestSupplyCurrentConservation(t *testing.T) {
	ckt, out := resistorDivider()
	ckt.AddCapacitor("c", out, circuit.Ground, 1e-14)
	eng, _ := spice.New(ckt, spice.DefaultOptions())
	res, err := eng.Transient(spice.TranSpec{Stop: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := res.SourceCurrentTrace(ckt.Node("vdd"))
	if err != nil {
		t.Fatal(err)
	}
	want := 5.0 / 2e3
	for i, v := range tr.V {
		if math.Abs(v-want) > 1e-5 {
			t.Fatalf("source current %.6g at t=%g, want %.6g", v, tr.T[i], want)
		}
	}
	peak, _, err := res.PeakSourceCurrent(ckt.Node("vdd"))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(peak-want) > 1e-5 {
		t.Errorf("peak current %.6g, want %.6g", peak, want)
	}
	if _, err := res.SourceCurrentTrace(out); err == nil {
		t.Error("current trace for a non-driven node accepted")
	}
}

// TestEngineRejectsInvalidNetlist: validation errors propagate from New.
func TestEngineRejectsInvalidNetlist(t *testing.T) {
	ckt := circuit.New()
	m := device.MOSFET{Name: "bad", Type: device.NMOS, W: -1, L: 1e-6}
	ckt.AddMOSFET(m, circuit.Ground, circuit.Ground, circuit.Ground, circuit.Ground)
	if _, err := spice.New(ckt, spice.DefaultOptions()); err == nil {
		t.Error("invalid netlist accepted")
	}
}
