// Package cells builds transistor-level CMOS logic cells (inverter, NAND-n,
// NOR-n) over a process definition, reproducing the kind of gate the paper
// characterizes (its Figure 1-1 three-input NAND).
//
// Cells expose their input pins as driven circuit nodes so experiments can
// attach piecewise-linear stimuli, and carry the parasitic capacitances that
// make proximity physics visible: series-stack internal-node junction caps
// and gate-drain overlap (Miller) caps.
package cells

import (
	"fmt"

	"repro/internal/circuit"
	"repro/internal/device"
	"repro/internal/spice"
	"repro/internal/waveform"
)

// Process is the fabrication-process model card shared by all cells.
type Process struct {
	Name string
	Vdd  float64
	// NMOS and PMOS are the per-type device model cards.
	NMOS device.Params
	PMOS device.Params
	// CjPerWidth is the source/drain junction capacitance per meter of
	// channel width (F/m), lumped onto stack nodes.
	CjPerWidth float64
	// CgoPerWidth is the gate overlap capacitance per meter of width (F/m)
	// applied gate-drain and gate-source; the gate-drain instance is the
	// Miller capacitor responsible for output coupling bumps.
	CgoPerWidth float64
	// CgatePerArea is the gate-oxide channel capacitance per square meter
	// (F/m^2), lumped half to source and half to drain. It is inert on
	// ideal driven inputs but loads the driving stage when cells are
	// composed into multi-gate circuits (internal/chain).
	CgatePerArea float64
}

// DefaultProcess returns a 5V, 1995-era CMOS process in the spirit of the
// paper's (unpublished) deck: Vdd = 5V with thresholds placed so the
// extracted NAND3 Vil/Vih land near the paper's 1.25V / 3.37V.
func DefaultProcess() Process {
	return Process{
		Name: "generic-5v-cmos",
		Vdd:  5.0,
		NMOS: device.Params{
			Kind:   device.Level1,
			Vt0:    0.8,
			KP:     60e-6,
			Lambda: 0.05,
			Gamma:  0.40,
			Phi:    0.65,
			Alpha:  1.5,
		},
		PMOS: device.Params{
			Kind:   device.Level1,
			Vt0:    -0.9,
			KP:     25e-6,
			Lambda: 0.05,
			Gamma:  0.50,
			Phi:    0.65,
			Alpha:  1.5,
		},
		CjPerWidth:   1.0e-9, // 1.0 fF/um
		CgoPerWidth:  0.3e-9, // 0.3 fF/um
		CgatePerArea: 1.5e-3, // 1.5 fF/um^2
	}
}

// CGaAsProcess returns a complementary-GaAs-flavored process (the paper's
// stated future target, reference [1]): lower supply, lower thresholds,
// higher electron mobility relative to holes. It exercises the claim that
// the proximity methodology is not CMOS-specific.
func CGaAsProcess() Process {
	return Process{
		Name: "cgaas-2v",
		Vdd:  2.0,
		NMOS: device.Params{
			Kind: device.Level1, Vt0: 0.25, KP: 180e-6,
			Lambda: 0.08, Gamma: 0.15, Phi: 0.6, Alpha: 1.2,
		},
		PMOS: device.Params{
			Kind: device.Level1, Vt0: -0.35, KP: 40e-6,
			Lambda: 0.08, Gamma: 0.2, Phi: 0.6, Alpha: 1.2,
		},
		CjPerWidth:   0.6e-9,
		CgoPerWidth:  0.2e-9,
		CgatePerArea: 1.0e-3,
	}
}

// Corner derives a process-corner variant: KP scaled by kpScale (carrier
// mobility / oxide variation) and threshold magnitudes by vtScale. Classic
// corners: slow (0.8, 1.1), typical (1, 1), fast (1.2, 0.9).
func (p Process) Corner(name string, kpScale, vtScale float64) Process {
	c := p
	c.Name = p.Name + "-" + name
	c.NMOS.KP *= kpScale
	c.PMOS.KP *= kpScale
	c.NMOS.Vt0 *= vtScale
	c.PMOS.Vt0 *= vtScale
	return c
}

// AlphaPowerProcess returns DefaultProcess with both device cards switched
// to the Sakurai–Newton alpha-power model (ablation backend).
func AlphaPowerProcess() Process {
	p := DefaultProcess()
	p.NMOS.Kind = device.AlphaPower
	p.PMOS.Kind = device.AlphaPower
	return p
}

// Kind labels the logic function of a cell.
type Kind int

const (
	Inv Kind = iota
	Nand
	Nor
	// Complex is a series-parallel network gate built with NewComplex.
	Complex
)

func (k Kind) String() string {
	switch k {
	case Inv:
		return "inv"
	case Nand:
		return "nand"
	case Nor:
		return "nor"
	case Complex:
		return "complex"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Geometry sets cell transistor sizing and output load.
type Geometry struct {
	WN, WP, L float64 // meters
	CLoad     float64 // farads
}

// DefaultGeometry matches the delay scale of the paper's experiments
// (hundreds of ps with input transition times of 50–2000 ps).
func DefaultGeometry() Geometry {
	return Geometry{WN: 8e-6, WP: 8e-6, L: 1e-6, CLoad: 100e-15}
}

// InputCapacitance estimates the capacitance one input pin presents to its
// driver: the overlap and channel capacitances of the pin's NMOS and PMOS
// gates. Used to size library-characterization loads to match composed
// multi-gate circuits (internal/chain).
func InputCapacitance(proc Process, geom Geometry) float64 {
	covN := proc.CgoPerWidth*geom.WN + 0.5*proc.CgatePerArea*geom.WN*geom.L
	covP := proc.CgoPerWidth*geom.WP + 0.5*proc.CgatePerArea*geom.WP*geom.L
	return 2*covN + 2*covP
}

// Cell is a constructed logic cell with its netlist.
type Cell struct {
	Ckt    *circuit.Circuit
	Proc   Process
	Geom   Geometry
	Kind   Kind
	Inputs []circuit.NodeID // pin order a, b, c, ...
	Output circuit.NodeID
	VddN   circuit.NodeID

	loadCap *circuit.Capacitor
	// network is the pull-down expression for Complex cells.
	network *Network
}

// pinNames generates a, b, c, ... for up to 26 inputs.
func pinName(i int) string { return string(rune('a' + i)) }

// New builds a cell of the given kind with n inputs.
//
// NAND topology: n PMOS in parallel Vdd->out; n NMOS in series out->gnd with
// input 0 ("a") at the TOP of the stack (drain on the output) and input n-1
// closest to ground. NOR is the dual. All inputs start driven at the
// non-controlling level; experiments re-drive the pins they exercise.
func New(kind Kind, n int, proc Process, geom Geometry) (*Cell, error) {
	if n < 1 {
		return nil, fmt.Errorf("cells: need at least one input, got %d", n)
	}
	if kind == Inv && n != 1 {
		return nil, fmt.Errorf("cells: inverter takes exactly one input, got %d", n)
	}
	if n > 26 {
		return nil, fmt.Errorf("cells: at most 26 inputs supported, got %d", n)
	}
	ckt := circuit.New()
	c := &Cell{Ckt: ckt, Proc: proc, Geom: geom, Kind: kind}
	c.VddN = ckt.DriveName("vdd", circuit.DC(proc.Vdd))
	c.Output = ckt.Node("out")
	for i := 0; i < n; i++ {
		pin := ckt.DriveName(pinName(i), circuit.DC(c.NonControlling()))
		c.Inputs = append(c.Inputs, pin)
	}

	if err := Instantiate(ckt, kind, proc, geom, c.Inputs, c.Output, c.VddN, ""); err != nil {
		return nil, err
	}
	c.loadCap = ckt.AddCapacitor("cload", c.Output, circuit.Ground, geom.CLoad)
	return c, nil
}

// Instantiate adds the transistors and parasitic capacitances of one gate to
// an existing circuit, wiring the given input, output and supply nodes.
// prefix namespaces device and internal-node names so several instances can
// share one circuit (see internal/chain). No load capacitor is added.
func Instantiate(ckt *circuit.Circuit, kind Kind, proc Process, geom Geometry,
	inputs []circuit.NodeID, output, vddNode circuit.NodeID, prefix string) error {

	n := len(inputs)
	if n < 1 {
		return fmt.Errorf("cells: instantiate needs at least one input")
	}
	if kind == Inv && n != 1 {
		return fmt.Errorf("cells: inverter takes exactly one input, got %d", n)
	}
	junction := func(node circuit.NodeID, width float64) {
		ckt.AddCapacitor(fmt.Sprintf("%scj_%s", prefix, ckt.NodeName(node)), node, circuit.Ground,
			proc.CjPerWidth*width)
	}
	nm := func(i int) device.MOSFET {
		return device.MOSFET{Name: fmt.Sprintf("%smn%s", prefix, pinName(i)), Type: device.NMOS,
			W: geom.WN, L: geom.L, Model: proc.NMOS}
	}
	pm := func(i int) device.MOSFET {
		return device.MOSFET{Name: fmt.Sprintf("%smp%s", prefix, pinName(i)), Type: device.PMOS,
			W: geom.WP, L: geom.L, Model: proc.PMOS}
	}
	firstDevice := len(ckt.MOSFETs)

	switch kind {
	case Inv:
		ckt.AddMOSFET(nm(0), output, inputs[0], circuit.Ground, circuit.Ground)
		ckt.AddMOSFET(pm(0), output, inputs[0], vddNode, vddNode)
		junction(output, geom.WN+geom.WP)
	case Nand:
		// Parallel PMOS pull-up.
		for i := 0; i < n; i++ {
			ckt.AddMOSFET(pm(i), output, inputs[i], vddNode, vddNode)
		}
		// Series NMOS pull-down: out -> x1 -> ... -> gnd, input 0 on top.
		top := output
		for i := 0; i < n; i++ {
			var bottom circuit.NodeID
			if i == n-1 {
				bottom = circuit.Ground
			} else {
				bottom = ckt.Node(fmt.Sprintf("%sx%d", prefix, i+1))
			}
			ckt.AddMOSFET(nm(i), top, inputs[i], bottom, circuit.Ground)
			if bottom != circuit.Ground {
				junction(bottom, 2*geom.WN) // source of i + drain of i+1
			}
			top = bottom
		}
		junction(output, float64(n)*geom.WP+geom.WN)
	case Nor:
		// Parallel NMOS pull-down.
		for i := 0; i < n; i++ {
			ckt.AddMOSFET(nm(i), output, inputs[i], circuit.Ground, circuit.Ground)
		}
		// Series PMOS pull-up: vdd -> y1 -> ... -> out, input 0 at the TOP
		// (next to Vdd), input n-1 on the output.
		top := vddNode
		for i := 0; i < n; i++ {
			var bottom circuit.NodeID
			if i == n-1 {
				bottom = output
			} else {
				bottom = ckt.Node(fmt.Sprintf("%sy%d", prefix, i+1))
			}
			// For PMOS in the stack the source is the node nearer Vdd.
			ckt.AddMOSFET(pm(i), bottom, inputs[i], top, vddNode)
			if bottom != output {
				junction(bottom, 2*geom.WP)
			}
			top = bottom
		}
		junction(output, float64(n)*geom.WN+geom.WP)
	default:
		return fmt.Errorf("cells: unknown kind %v", kind)
	}

	// Gate capacitances for this instance's devices: overlap (Miller)
	// gate-drain/gate-source plus half the channel oxide capacitance to
	// each side. Instances between two driven nodes are inert but kept for
	// netlist fidelity; on internal nets they load the driving stage.
	for _, m := range ckt.MOSFETs[firstDevice:] {
		cov := proc.CgoPerWidth*m.W + 0.5*proc.CgatePerArea*m.W*m.L
		ckt.AddCapacitor("cgd_"+m.Name, m.G, m.D, cov)
		ckt.AddCapacitor("cgs_"+m.Name, m.G, m.S, cov)
	}
	return nil
}

// MustNew is New that panics on error, for tests and examples with literal
// arguments.
func MustNew(kind Kind, n int, proc Process, geom Geometry) *Cell {
	c, err := New(kind, n, proc, geom)
	if err != nil {
		panic(err)
	}
	return c
}

// N returns the number of input pins.
func (c *Cell) N() int { return len(c.Inputs) }

// NonControlling returns the stable input level that lets other inputs
// drive the output: Vdd for NAND/INV-style pull-down logic, 0 for NOR.
func (c *Cell) NonControlling() float64 {
	if c.Kind == Nor {
		return 0
	}
	return c.Proc.Vdd
}

// Controlling returns the input level that forces the output on its own.
func (c *Cell) Controlling() float64 {
	if c.Kind == Nor {
		return c.Proc.Vdd
	}
	return 0
}

// OutputDirection gives the output transition caused by inputs switching in
// direction d with all other inputs non-controlling (both NAND and NOR are
// inverting).
func (c *Cell) OutputDirection(d waveform.Direction) waveform.Direction {
	return d.Opposite()
}

// SetLoad updates the output load capacitance.
func (c *Cell) SetLoad(farads float64) { c.loadCap.C = farads }

// Load returns the output load capacitance.
func (c *Cell) Load() float64 { return c.loadCap.C }

// DrivePin attaches a PWL stimulus to input pin i.
func (c *Cell) DrivePin(i int, w *waveform.PWL) {
	c.Ckt.Drive(c.Inputs[i], w.Eval)
}

// HoldPin pins input i at a constant level.
func (c *Cell) HoldPin(i int, level float64) {
	c.Ckt.Drive(c.Inputs[i], circuit.DC(level))
}

// HoldAllNonControlling parks every input at the non-controlling level.
func (c *Cell) HoldAllNonControlling() {
	for i := range c.Inputs {
		c.HoldPin(i, c.NonControlling())
	}
}

// Engine builds a spice engine for the cell's current drive configuration.
func (c *Cell) Engine(opt spice.Options) (*spice.Engine, error) {
	return spice.New(c.Ckt, opt)
}

// PinName returns the canonical name of pin i ("a", "b", ...).
func (c *Cell) PinName(i int) string { return pinName(i) }
