package cells

import (
	"repro/internal/spice"

	"testing"
)

func TestNetworkValidation(t *testing.T) {
	proc, geom := DefaultProcess(), DefaultGeometry()
	if _, err := NewComplex(ParallelNet(PinNet(0), PinNet(3)), 3, proc, geom); err == nil {
		t.Error("out-of-range pin accepted")
	}
	if _, err := NewComplex(ParallelNet(PinNet(0), PinNet(0)), 1, proc, geom); err == nil {
		t.Error("duplicate pin accepted")
	}
	if _, err := NewComplex(ParallelNet(PinNet(0), PinNet(1)), 3, proc, geom); err == nil {
		t.Error("unreferenced pin accepted")
	}
	if _, err := NewComplex(&Network{Pin: -1, Series: true, Children: []*Network{PinNet(0)}}, 1, proc, geom); err == nil {
		t.Error("single-child composite accepted")
	}
}

func TestAOI21Logic(t *testing.T) {
	c, err := NewComplex(AOI21(), 3, DefaultProcess(), DefaultGeometry())
	if err != nil {
		t.Fatal(err)
	}
	// out = !((a AND b) OR c)
	cases := []struct {
		a, b, cc bool
		out      bool
	}{
		{false, false, false, true},
		{true, false, false, true},
		{true, true, false, false},
		{false, false, true, false},
		{true, true, true, false},
	}
	for _, k := range cases {
		if got := c.OutputHigh([]bool{k.a, k.b, k.cc}); got != k.out {
			t.Errorf("AOI21(%v,%v,%v) = %v, want %v", k.a, k.b, k.cc, got, k.out)
		}
	}
	// 3 NMOS + 3 PMOS.
	if len(c.Ckt.MOSFETs) != 6 {
		t.Errorf("AOI21 has %d transistors, want 6", len(c.Ckt.MOSFETs))
	}
}

func TestOAI21Logic(t *testing.T) {
	c, err := NewComplex(OAI21(), 3, DefaultProcess(), DefaultGeometry())
	if err != nil {
		t.Fatal(err)
	}
	// out = !((a OR b) AND c)
	cases := []struct {
		a, b, cc bool
		out      bool
	}{
		{false, false, true, true},
		{true, false, false, true},
		{true, false, true, false},
		{false, true, true, false},
	}
	for _, k := range cases {
		if got := c.OutputHigh([]bool{k.a, k.b, k.cc}); got != k.out {
			t.Errorf("OAI21(%v,%v,%v) = %v, want %v", k.a, k.b, k.cc, got, k.out)
		}
	}
}

func TestSensitizeForComplex(t *testing.T) {
	c, err := NewComplex(AOI21(), 3, DefaultProcess(), DefaultGeometry())
	if err != nil {
		t.Fatal(err)
	}
	// Pin a needs b high (series partner on) and c low (parallel branch off).
	lv, err := c.SensitizeFor([]int{0})
	if err != nil {
		t.Fatal(err)
	}
	if lv[1] != 5.0 || lv[2] != 0 {
		t.Errorf("sensitize {a}: levels = %v, want b=Vdd c=0", lv)
	}
	// Pair {a,b}: c must be low.
	lv, err = c.SensitizeFor([]int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if lv[2] != 0 {
		t.Errorf("sensitize {a,b}: c = %g, want 0", lv[2])
	}
	// Pair {a,c}: b must be high.
	lv, err = c.SensitizeFor([]int{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if lv[1] != 5.0 {
		t.Errorf("sensitize {a,c}: b = %g, want Vdd", lv[1])
	}
}

func TestSensitizeForClassicGates(t *testing.T) {
	nand := MustNew(Nand, 3, DefaultProcess(), DefaultGeometry())
	lv, err := nand.SensitizeFor([]int{1})
	if err != nil {
		t.Fatal(err)
	}
	if lv[0] != 5.0 || lv[2] != 5.0 {
		t.Errorf("NAND sensitize = %v", lv)
	}
	nor := MustNew(Nor, 2, DefaultProcess(), DefaultGeometry())
	lv, err = nor.SensitizeFor([]int{0})
	if err != nil {
		t.Fatal(err)
	}
	if lv[1] != 0 {
		t.Errorf("NOR sensitize = %v", lv)
	}
}

func TestSubsetCausationAOI21(t *testing.T) {
	c, err := NewComplex(AOI21(), 3, DefaultProcess(), DefaultGeometry())
	if err != nil {
		t.Fatal(err)
	}
	// {a,b} rising with c=0: both series NMOS must turn on -> AND-like.
	lvAB, _ := c.SensitizeFor([]int{0, 1})
	if k := c.SubsetCausation([]int{0, 1}, lvAB, true); k != LastCauseSubset {
		t.Errorf("AOI21 {a,b} rising = %v, want last-cause", k)
	}
	// {a,b} falling with c=0: pull-up is parallel(a,b) in series with c'...
	// the pull-up dual: series(parallel(a',b'), c'). With c=0 its PMOS is
	// on; output rises when EITHER a or b PMOS turns on -> OR-like.
	if k := c.SubsetCausation([]int{0, 1}, lvAB, false); k != FirstCauseSubset {
		t.Errorf("AOI21 {a,b} falling = %v, want first-cause", k)
	}
	// {a,c} rising with b=1: either branch conducts -> OR-like.
	lvAC, _ := c.SensitizeFor([]int{0, 2})
	if k := c.SubsetCausation([]int{0, 2}, lvAC, true); k != FirstCauseSubset {
		t.Errorf("AOI21 {a,c} rising = %v, want first-cause", k)
	}
	// {a,c} falling with b=1: both branches must cut -> AND-like.
	if k := c.SubsetCausation([]int{0, 2}, lvAC, false); k != LastCauseSubset {
		t.Errorf("AOI21 {a,c} falling = %v, want last-cause", k)
	}
}

// TestComplexGateDCLevels: the transistor netlist agrees with the logic
// model at static input corners.
func TestComplexGateDCLevels(t *testing.T) {
	c, err := NewComplex(AOI21(), 3, DefaultProcess(), DefaultGeometry())
	if err != nil {
		t.Fatal(err)
	}
	eng, err := c.Engine(spice.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for mask := 0; mask < 8; mask++ {
		high := []bool{mask&1 != 0, mask&2 != 0, mask&4 != 0}
		for p := 0; p < 3; p++ {
			v := 0.0
			if high[p] {
				v = 5.0
			}
			c.HoldPin(p, v)
		}
		op, err := eng.OP(0, nil)
		if err != nil {
			t.Fatalf("OP at %v: %v", high, err)
		}
		got := op.At(c.Output) > 2.5
		if got != c.OutputHigh(high) {
			t.Errorf("DC at %v: output %.2fV disagrees with logic %v", high, op.At(c.Output), c.OutputHigh(high))
		}
	}
}
