package cells

import (
	"testing"

	"repro/internal/circuit"
	"repro/internal/waveform"
)

func TestNewValidation(t *testing.T) {
	proc, geom := DefaultProcess(), DefaultGeometry()
	if _, err := New(Nand, 0, proc, geom); err == nil {
		t.Error("0-input gate accepted")
	}
	if _, err := New(Inv, 2, proc, geom); err == nil {
		t.Error("2-input inverter accepted")
	}
	if _, err := New(Nand, 27, proc, geom); err == nil {
		t.Error("27-input gate accepted")
	}
}

func TestInverterTopology(t *testing.T) {
	c := MustNew(Inv, 1, DefaultProcess(), DefaultGeometry())
	if len(c.Ckt.MOSFETs) != 2 {
		t.Fatalf("inverter has %d transistors", len(c.Ckt.MOSFETs))
	}
	if err := c.Ckt.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestNANDTopology(t *testing.T) {
	n := 3
	c := MustNew(Nand, n, DefaultProcess(), DefaultGeometry())
	if got := len(c.Ckt.MOSFETs); got != 2*n {
		t.Fatalf("NAND%d has %d transistors, want %d", n, got, 2*n)
	}
	// n PMOS all drain on output, source on vdd.
	pmos, nmos := 0, 0
	for _, m := range c.Ckt.MOSFETs {
		if m.Type.String() == "pmos" {
			pmos++
			if m.D != c.Output || m.S != c.VddN {
				t.Errorf("PMOS %s not wired Vdd->out", m.Name)
			}
		} else {
			nmos++
		}
	}
	if pmos != n || nmos != n {
		t.Errorf("pmos=%d nmos=%d", pmos, nmos)
	}
	// The NMOS stack chains out -> x1 -> x2 -> gnd with input 0 on top.
	top := c.Ckt.MOSFETs[n] // first NMOS added after n PMOS
	if top.D != c.Output {
		t.Error("stack-top NMOS drain should be the output")
	}
	bottom := c.Ckt.MOSFETs[2*n-1]
	if bottom.S != circuit.Ground {
		t.Error("stack-bottom NMOS source should be ground")
	}
}

func TestNORTopology(t *testing.T) {
	n := 2
	c := MustNew(Nor, n, DefaultProcess(), DefaultGeometry())
	if got := len(c.Ckt.MOSFETs); got != 2*n {
		t.Fatalf("NOR%d has %d transistors", n, got)
	}
	// NMOS in parallel on the output.
	for _, m := range c.Ckt.MOSFETs[:n] {
		if m.D != c.Output || m.S != circuit.Ground {
			t.Errorf("NOR NMOS %s not wired out->gnd", m.Name)
		}
	}
}

func TestControllingLevels(t *testing.T) {
	nand := MustNew(Nand, 2, DefaultProcess(), DefaultGeometry())
	if nand.NonControlling() != 5.0 || nand.Controlling() != 0 {
		t.Error("NAND levels wrong")
	}
	nor := MustNew(Nor, 2, DefaultProcess(), DefaultGeometry())
	if nor.NonControlling() != 0 || nor.Controlling() != 5.0 {
		t.Error("NOR levels wrong")
	}
}

func TestOutputDirectionInverting(t *testing.T) {
	c := MustNew(Nand, 2, DefaultProcess(), DefaultGeometry())
	if c.OutputDirection(waveform.Rising) != waveform.Falling {
		t.Error("rising inputs should fall the output")
	}
	if c.OutputDirection(waveform.Falling) != waveform.Rising {
		t.Error("falling inputs should raise the output")
	}
}

func TestSetLoad(t *testing.T) {
	c := MustNew(Inv, 1, DefaultProcess(), DefaultGeometry())
	c.SetLoad(42e-15)
	if c.Load() != 42e-15 {
		t.Errorf("Load = %g", c.Load())
	}
}

func TestPinNames(t *testing.T) {
	c := MustNew(Nand, 3, DefaultProcess(), DefaultGeometry())
	for i, want := range []string{"a", "b", "c"} {
		if got := c.PinName(i); got != want {
			t.Errorf("PinName(%d) = %q", i, got)
		}
		if got := c.Ckt.NodeName(c.Inputs[i]); got != want {
			t.Errorf("input node %d named %q", i, got)
		}
	}
}

func TestHoldAllNonControlling(t *testing.T) {
	c := MustNew(Nand, 2, DefaultProcess(), DefaultGeometry())
	c.DrivePin(0, waveform.FallingRamp(0, 1e-9, 5))
	c.HoldAllNonControlling()
	for _, pin := range c.Inputs {
		if got := c.Ckt.DriveValue(pin, 99); got != 5.0 {
			t.Errorf("pin %s at %g after HoldAllNonControlling", c.Ckt.NodeName(pin), got)
		}
	}
}

func TestInternalStackNodesExist(t *testing.T) {
	c := MustNew(Nand, 4, DefaultProcess(), DefaultGeometry())
	// NAND4 has 3 internal stack nodes x1..x3, all unknowns.
	unknowns := c.Ckt.Unknowns()
	if len(unknowns) != 4 { // out + x1 + x2 + x3
		t.Errorf("NAND4 unknowns = %d, want 4", len(unknowns))
	}
}

func TestProcessCorner(t *testing.T) {
	base := DefaultProcess()
	fast := base.Corner("fast", 1.2, 0.9)
	if fast.Name != "generic-5v-cmos-fast" {
		t.Errorf("corner name = %q", fast.Name)
	}
	if fast.NMOS.KP <= base.NMOS.KP || fast.PMOS.KP <= base.PMOS.KP {
		t.Error("fast corner should raise KP")
	}
	if fast.NMOS.Vt0 >= base.NMOS.Vt0 {
		t.Error("fast corner should lower |Vtn|")
	}
	if fast.PMOS.Vt0 <= base.PMOS.Vt0 {
		t.Error("fast corner should shrink |Vtp| (less negative)")
	}
	// Base process untouched (value semantics).
	if base.NMOS.KP != DefaultProcess().NMOS.KP {
		t.Error("corner mutated the base process")
	}
}

func TestInputCapacitancePositive(t *testing.T) {
	c := InputCapacitance(DefaultProcess(), DefaultGeometry())
	if c <= 0 || c > 1e-12 {
		t.Errorf("pin capacitance %g F implausible", c)
	}
}

func TestCGaAsProcessBuildable(t *testing.T) {
	c := MustNew(Nand, 2, CGaAsProcess(), Geometry{WN: 6e-6, WP: 6e-6, L: 0.8e-6, CLoad: 60e-15})
	if err := c.Ckt.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.NonControlling() != 2.0 {
		t.Errorf("CGaAs NAND non-controlling = %g, want Vdd=2", c.NonControlling())
	}
}

func TestAlphaPowerProcess(t *testing.T) {
	p := AlphaPowerProcess()
	if p.NMOS.Kind.String() != "alpha-power" || p.PMOS.Kind.String() != "alpha-power" {
		t.Error("AlphaPowerProcess did not switch model kinds")
	}
	// Still buildable and valid.
	c := MustNew(Nand, 2, p, DefaultGeometry())
	if err := c.Ckt.Validate(); err != nil {
		t.Fatal(err)
	}
}
