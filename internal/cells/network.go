package cells

import (
	"fmt"

	"repro/internal/circuit"
	"repro/internal/device"
)

// Network is a series-parallel transistor-network expression describing a
// CMOS gate's pull-down network; the pull-up is its structural dual. It
// generalizes the NAND/NOR factory to complex gates (AOI/OAI), which the
// paper's method covers implicitly — the proximity model is defined per
// sensitized input pair, not per gate shape.
type Network struct {
	// Pin is the input index for a leaf; composite nodes use -1.
	Pin int
	// Series selects series composition of Children (AND of conduction);
	// false means parallel (OR).
	Series   bool
	Children []*Network
}

// PinNet returns a leaf referencing one input pin.
func PinNet(pin int) *Network { return &Network{Pin: pin} }

// SeriesNet composes children in series (all must conduct).
func SeriesNet(children ...*Network) *Network {
	return &Network{Pin: -1, Series: true, Children: children}
}

// ParallelNet composes children in parallel (any may conduct).
func ParallelNet(children ...*Network) *Network {
	return &Network{Pin: -1, Series: false, Children: children}
}

// AOI21 returns the pull-down network of an AND-OR-INVERT gate:
// out = !((a AND b) OR c) with pins a=0, b=1, c=2.
func AOI21() *Network {
	return ParallelNet(SeriesNet(PinNet(0), PinNet(1)), PinNet(2))
}

// OAI21 returns the pull-down network of an OR-AND-INVERT gate:
// out = !((a OR b) AND c).
func OAI21() *Network {
	return SeriesNet(ParallelNet(PinNet(0), PinNet(1)), PinNet(2))
}

// leaf reports whether the node is a pin reference.
func (n *Network) leaf() bool { return n.Pin >= 0 }

// validate checks structure and collects the referenced pins.
func (n *Network) validate(numPins int, seen map[int]bool) error {
	if n.leaf() {
		if n.Pin >= numPins {
			return fmt.Errorf("cells: network references pin %d beyond %d inputs", n.Pin, numPins)
		}
		if seen[n.Pin] {
			return fmt.Errorf("cells: network references pin %d twice", n.Pin)
		}
		seen[n.Pin] = true
		return nil
	}
	if len(n.Children) < 2 {
		return fmt.Errorf("cells: composite network node needs at least two children")
	}
	for _, c := range n.Children {
		if err := c.validate(numPins, seen); err != nil {
			return err
		}
	}
	return nil
}

// Conducts evaluates whether the network conducts for the given input
// levels (true = input high, which turns an NMOS on).
func (n *Network) Conducts(high []bool) bool {
	if n.leaf() {
		return high[n.Pin]
	}
	if n.Series {
		for _, c := range n.Children {
			if !c.Conducts(high) {
				return false
			}
		}
		return true
	}
	for _, c := range n.Children {
		if c.Conducts(high) {
			return true
		}
	}
	return false
}

// dual returns the structural dual (series <-> parallel), the pull-up shape.
func (n *Network) dual() *Network {
	if n.leaf() {
		return PinNet(n.Pin)
	}
	kids := make([]*Network, len(n.Children))
	for i, c := range n.Children {
		kids[i] = c.dual()
	}
	return &Network{Pin: -1, Series: !n.Series, Children: kids}
}

// NewComplex builds a static CMOS complex gate whose pull-down network is
// the given expression (pull-up is the dual). Pins 0..numPins-1 must all be
// referenced exactly once. All inputs start driven at ground; experiments
// must set stable levels via SensitizeFor/HoldPin before simulating.
func NewComplex(pulldown *Network, numPins int, proc Process, geom Geometry) (*Cell, error) {
	if numPins < 1 || numPins > 12 {
		return nil, fmt.Errorf("cells: complex gate supports 1..12 inputs, got %d", numPins)
	}
	seen := map[int]bool{}
	if err := pulldown.validate(numPins, seen); err != nil {
		return nil, err
	}
	if len(seen) != numPins {
		return nil, fmt.Errorf("cells: network references %d of %d pins", len(seen), numPins)
	}
	ckt := circuit.New()
	c := &Cell{Ckt: ckt, Proc: proc, Geom: geom, Kind: Complex, network: pulldown}
	c.VddN = ckt.DriveName("vdd", circuit.DC(proc.Vdd))
	c.Output = ckt.Node("out")
	for i := 0; i < numPins; i++ {
		c.Inputs = append(c.Inputs, ckt.DriveName(pinName(i), circuit.DC(0)))
	}

	nodeSeq := 0
	fresh := func(prefix string) circuit.NodeID {
		nodeSeq++
		id := ckt.Node(fmt.Sprintf("%s%d", prefix, nodeSeq))
		c.junctionCap(id, 2*geom.WN)
		return id
	}
	var buildN func(n *Network, top, bottom circuit.NodeID)
	buildN = func(n *Network, top, bottom circuit.NodeID) {
		if n.leaf() {
			m := device.MOSFET{Name: fmt.Sprintf("mn%s_%d", pinName(n.Pin), nodeSeq), Type: device.NMOS,
				W: geom.WN, L: geom.L, Model: proc.NMOS}
			ckt.AddMOSFET(m, top, c.Inputs[n.Pin], bottom, circuit.Ground)
			return
		}
		if n.Series {
			cur := top
			for i, child := range n.Children {
				next := bottom
				if i < len(n.Children)-1 {
					next = fresh("xn")
				}
				buildN(child, cur, next)
				cur = next
			}
			return
		}
		for _, child := range n.Children {
			buildN(child, top, bottom)
		}
	}
	var buildP func(n *Network, top, bottom circuit.NodeID)
	buildP = func(n *Network, top, bottom circuit.NodeID) {
		if n.leaf() {
			m := device.MOSFET{Name: fmt.Sprintf("mp%s_%d", pinName(n.Pin), nodeSeq), Type: device.PMOS,
				W: geom.WP, L: geom.L, Model: proc.PMOS}
			// Source toward Vdd (top), drain toward the output (bottom).
			ckt.AddMOSFET(m, bottom, c.Inputs[n.Pin], top, c.VddN)
			return
		}
		if n.Series {
			cur := top
			for i, child := range n.Children {
				next := bottom
				if i < len(n.Children)-1 {
					next = fresh("xp")
				}
				buildP(child, cur, next)
				cur = next
			}
			return
		}
		for _, child := range n.Children {
			buildP(child, top, bottom)
		}
	}
	buildN(pulldown, c.Output, circuit.Ground)
	buildP(pulldown.dual(), c.VddN, c.Output)
	c.junctionCap(c.Output, geom.WN+geom.WP)

	for _, m := range ckt.MOSFETs {
		cov := proc.CgoPerWidth*m.W + 0.5*proc.CgatePerArea*m.W*m.L
		ckt.AddCapacitor("cgd_"+m.Name, m.G, m.D, cov)
		ckt.AddCapacitor("cgs_"+m.Name, m.G, m.S, cov)
	}
	c.loadCap = ckt.AddCapacitor("cload", c.Output, circuit.Ground, geom.CLoad)
	return c, nil
}

// junctionCap lumps a junction capacitance onto a node (complex-gate path).
func (c *Cell) junctionCap(node circuit.NodeID, width float64) {
	c.Ckt.AddCapacitor(fmt.Sprintf("cj_%s", c.Ckt.NodeName(node)), node, circuit.Ground,
		c.Proc.CjPerWidth*width)
}

// Network exposes the pull-down expression of a complex cell (nil for
// NAND/NOR/INV).
func (c *Cell) Network() *Network { return c.network }

// OutputHigh evaluates the gate's logic function: true when the output is
// high for the given input-high pattern.
func (c *Cell) OutputHigh(high []bool) bool {
	switch c.Kind {
	case Complex:
		return !c.network.Conducts(high)
	case Nor:
		for _, h := range high {
			if h {
				return false
			}
		}
		return true
	default: // Nand, Inv
		for _, h := range high {
			if !h {
				return true
			}
		}
		return false
	}
}

// SensitizeFor returns stable levels (volts) for every pin NOT in the given
// switching subset, such that the subset controls the output: with all
// subset pins low the output must differ from all subset pins high. For
// NAND-family gates this is the non-controlling Vdd; for NOR, ground;
// for complex gates the assignment is found by search. The returned slice
// has one entry per pin; entries for subset pins carry their "all low"
// start level (0) and are ignored by callers that drive those pins.
func (c *Cell) SensitizeFor(subset []int) ([]float64, error) {
	n := c.N()
	inSubset := make([]bool, n)
	for _, p := range subset {
		if p < 0 || p >= n {
			return nil, fmt.Errorf("cells: pin %d out of range", p)
		}
		inSubset[p] = true
	}
	levels := make([]float64, n)
	switch c.Kind {
	case Nor:
		return levels, nil // all stable pins at 0
	case Nand, Inv:
		for i := range levels {
			if !inSubset[i] {
				levels[i] = c.Proc.Vdd
			}
		}
		return levels, nil
	}
	// Complex: brute-force the stable pins.
	var stable []int
	for i := 0; i < n; i++ {
		if !inSubset[i] {
			stable = append(stable, i)
		}
	}
	high := make([]bool, n)
	for mask := 0; mask < 1<<len(stable); mask++ {
		for bi, p := range stable {
			high[p] = mask&(1<<bi) != 0
		}
		// The endpoints must flip the output...
		for _, p := range subset {
			high[p] = false
		}
		low := c.OutputHigh(high)
		for _, p := range subset {
			high[p] = true
		}
		if c.OutputHigh(high) == low {
			continue
		}
		// ...and every subset pin must be relevant under this assignment:
		// some state of the other subset pins lets the pin toggle the
		// output (otherwise the "pair" degenerates to fewer inputs).
		if !c.subsetAllRelevant(subset, high) {
			continue
		}
		for bi, p := range stable {
			if mask&(1<<bi) != 0 {
				levels[p] = c.Proc.Vdd
			}
		}
		return levels, nil
	}
	return nil, fmt.Errorf("cells: subset %v cannot be sensitized", subset)
}

// subsetAllRelevant checks that each subset pin can toggle the output for
// some assignment of the other subset pins; high carries the stable-pin
// assignment (subset entries are scratch space).
func (c *Cell) subsetAllRelevant(subset []int, high []bool) bool {
	for _, p := range subset {
		relevant := false
		for mask := 0; mask < 1<<len(subset) && !relevant; mask++ {
			for bi, q := range subset {
				high[q] = mask&(1<<bi) != 0
			}
			high[p] = false
			lo := c.OutputHigh(high)
			high[p] = true
			if c.OutputHigh(high) != lo {
				relevant = true
			}
		}
		if !relevant {
			return false
		}
	}
	return true
}

// SubsetCausation classifies how a sensitized switching subset combines for
// inputs moving in direction dir (with stable pins at the given levels):
// FirstCauseSubset when a single subset pin completing its transition
// already produces the output transition (OR-like), LastCauseSubset when
// every subset pin must complete (AND-like), MixedSubset otherwise.
func (c *Cell) SubsetCausation(subset []int, levels []float64, rising bool) SubsetKind {
	n := c.N()
	high := make([]bool, n)
	for i := range high {
		high[i] = levels[i] > c.Proc.Vdd/2
	}
	// Start state: subset at the pre-transition level.
	for _, p := range subset {
		high[p] = !rising
	}
	start := c.OutputHigh(high)
	// End state: all switched.
	for _, p := range subset {
		high[p] = rising
	}
	if c.OutputHigh(high) == start {
		return MixedSubset // subset does not flip the output at all
	}
	// Single-pin probes.
	anySingle, allSingle := false, true
	for _, p := range subset {
		for _, q := range subset {
			high[q] = !rising
		}
		high[p] = rising
		if c.OutputHigh(high) != start {
			anySingle = true
		} else {
			allSingle = false
		}
	}
	switch {
	case allSingle:
		return FirstCauseSubset
	case !anySingle:
		return LastCauseSubset
	default:
		return MixedSubset
	}
}

// SubsetKind classifies a switching subset's combination behaviour.
type SubsetKind int

const (
	FirstCauseSubset SubsetKind = iota
	LastCauseSubset
	MixedSubset
)

func (k SubsetKind) String() string {
	switch k {
	case FirstCauseSubset:
		return "first-cause (OR-like)"
	case LastCauseSubset:
		return "last-cause (AND-like)"
	default:
		return "mixed"
	}
}
