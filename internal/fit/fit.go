// Package fit provides multivariate polynomial least-squares fitting, used
// to turn the tabulated proximity macromodels into closed-form analytic
// models — the paper remarks (Section 3) that "closed form analytical forms
// for these macromodels do exist"; this package makes them.
package fit

import (
	"encoding/json"
	"fmt"
	"math"

	"repro/internal/mna"
)

// Poly is a dense multivariate polynomial of bounded total degree over
// inputs affinely scaled to [-1, 1] per dimension (for numerical
// conditioning of the normal equations).
type Poly struct {
	dims   int
	degree int
	// lo/hi are the per-dimension scaling bounds.
	lo, hi []float64
	// terms lists the exponent vector of each monomial; coeffs aligns.
	terms  [][]int
	coeffs []float64
}

// monomials enumerates exponent vectors with total degree <= degree.
func monomials(dims, degree int) [][]int {
	var out [][]int
	cur := make([]int, dims)
	var rec func(d, remaining int)
	rec = func(d, remaining int) {
		if d == dims {
			cp := make([]int, dims)
			copy(cp, cur)
			out = append(out, cp)
			return
		}
		for e := 0; e <= remaining; e++ {
			cur[d] = e
			rec(d+1, remaining-e)
		}
		cur[d] = 0
	}
	rec(0, degree)
	return out
}

// NumTerms returns the number of monomials of a dims-dimensional polynomial
// with total degree bound degree.
func NumTerms(dims, degree int) int { return len(monomials(dims, degree)) }

// Fit solves the least-squares problem for samples (xs[i], ys[i]).
// Each xs[i] must have length dims. Requires len(xs) >= NumTerms.
func Fit(xs [][]float64, ys []float64, dims, degree int) (*Poly, error) {
	if len(xs) != len(ys) {
		return nil, fmt.Errorf("fit: %d points vs %d values", len(xs), len(ys))
	}
	if dims < 1 || degree < 0 {
		return nil, fmt.Errorf("fit: invalid shape dims=%d degree=%d", dims, degree)
	}
	terms := monomials(dims, degree)
	m := len(terms)
	if len(xs) < m {
		return nil, fmt.Errorf("fit: %d samples cannot determine %d coefficients", len(xs), m)
	}

	// Scaling bounds per dimension.
	lo := make([]float64, dims)
	hi := make([]float64, dims)
	for d := 0; d < dims; d++ {
		lo[d], hi[d] = math.Inf(1), math.Inf(-1)
	}
	for _, x := range xs {
		if len(x) != dims {
			return nil, fmt.Errorf("fit: sample dimension %d, want %d", len(x), dims)
		}
		for d, v := range x {
			lo[d] = math.Min(lo[d], v)
			hi[d] = math.Max(hi[d], v)
		}
	}
	for d := 0; d < dims; d++ {
		if hi[d] <= lo[d] {
			hi[d] = lo[d] + 1 // degenerate dimension: constant input
		}
	}
	p := &Poly{dims: dims, degree: degree, lo: lo, hi: hi, terms: terms}

	// Normal equations: (B^T B) c = B^T y with B the design matrix.
	ata := mna.NewMatrix(m)
	atb := make([]float64, m)
	row := make([]float64, m)
	for i, x := range xs {
		p.basisRow(x, row)
		for a := 0; a < m; a++ {
			atb[a] += row[a] * ys[i]
			for b := 0; b < m; b++ {
				ata.Add(a, b, row[a]*row[b])
			}
		}
	}
	// Tikhonov ridge keeps near-degenerate designs solvable without
	// noticeably biasing well-posed fits.
	scale := ata.MaxAbs()
	for a := 0; a < m; a++ {
		ata.Add(a, a, 1e-10*scale)
	}
	coeffs, err := mna.SolveSystem(ata, atb)
	if err != nil {
		return nil, fmt.Errorf("fit: normal equations singular: %w", err)
	}
	p.coeffs = coeffs
	return p, nil
}

// basisRow fills row with every monomial evaluated at x (after scaling).
func (p *Poly) basisRow(x []float64, row []float64) {
	// Scaled coordinates and power tables.
	pows := make([][]float64, p.dims)
	for d := 0; d < p.dims; d++ {
		u := 2*(x[d]-p.lo[d])/(p.hi[d]-p.lo[d]) - 1
		ps := make([]float64, p.degree+1)
		ps[0] = 1
		for e := 1; e <= p.degree; e++ {
			ps[e] = ps[e-1] * u
		}
		pows[d] = ps
	}
	for i, t := range p.terms {
		v := 1.0
		for d, e := range t {
			v *= pows[d][e]
		}
		row[i] = v
	}
}

// Eval evaluates the polynomial. Inputs outside the fitted range are clamped
// to it (matching the tables' clamped extrapolation).
func (p *Poly) Eval(x ...float64) float64 {
	if len(x) != p.dims {
		panic(fmt.Sprintf("fit: eval rank %d, poly rank %d", len(x), p.dims))
	}
	cx := make([]float64, p.dims)
	for d := range x {
		cx[d] = math.Max(p.lo[d], math.Min(p.hi[d], x[d]))
	}
	row := make([]float64, len(p.terms))
	p.basisRow(cx, row)
	v := 0.0
	for i, c := range p.coeffs {
		v += c * row[i]
	}
	return v
}

// Dims and Degree describe the polynomial's shape.
func (p *Poly) Dims() int   { return p.dims }
func (p *Poly) Degree() int { return p.degree }

// NumCoeffs returns the stored coefficient count (the analytic model's
// storage footprint, for the Figure 4-2 style comparison).
func (p *Poly) NumCoeffs() int { return len(p.coeffs) }

// RMSError computes the root-mean-square residual over a sample set.
func (p *Poly) RMSError(xs [][]float64, ys []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for i, x := range xs {
		d := p.Eval(x...) - ys[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// polyJSON is the serialized form.
type polyJSON struct {
	Dims   int       `json:"dims"`
	Degree int       `json:"degree"`
	Lo     []float64 `json:"lo"`
	Hi     []float64 `json:"hi"`
	Coeffs []float64 `json:"coeffs"`
}

// MarshalJSON serializes the polynomial.
func (p *Poly) MarshalJSON() ([]byte, error) {
	return json.Marshal(polyJSON{Dims: p.dims, Degree: p.degree, Lo: p.lo, Hi: p.hi, Coeffs: p.coeffs})
}

// UnmarshalJSON restores a polynomial.
func (p *Poly) UnmarshalJSON(data []byte) error {
	var j polyJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	terms := monomials(j.Dims, j.Degree)
	if len(terms) != len(j.Coeffs) {
		return fmt.Errorf("fit: coefficient count %d does not match shape (want %d)", len(j.Coeffs), len(terms))
	}
	if len(j.Lo) != j.Dims || len(j.Hi) != j.Dims {
		return fmt.Errorf("fit: scaling bounds rank mismatch")
	}
	*p = Poly{dims: j.Dims, degree: j.Degree, lo: j.Lo, hi: j.Hi, terms: terms, coeffs: j.Coeffs}
	return nil
}
