// Package mc is the process-variation model behind Monte-Carlo statistical
// timing analysis: deterministic per-(sample, gate) Gaussian delay
// multipliers, named process-corner presets, and arrival-time distribution
// aggregation.
//
// The paper's proximity model makes gate delay a function of *which* inputs
// switch together; under process variation the per-gate delay scale itself
// becomes a random variable, which can reorder input dominance — the effect
// the probabilistic-collocation statistical gate-delay literature targets.
// This package supplies the randomness in a shape the engine can replay:
// every deviate is a pure function of (seed, sample, gate), so any single
// sample of a million-sample run is independently reproducible without
// storing per-sample state, and the sample loop can run its samples in any
// order, across any number of workers, and still draw the same numbers.
package mc

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/stats"
)

// MinMultiplier floors the sigma-scaled delay multiplier. A Gaussian tail
// can produce arbitrarily negative deviates; a non-positive delay multiplier
// would run time backwards through the netlist, so draws below the floor
// clamp. At practically useful sigmas (a few percent) the clamp never fires.
const MinMultiplier = 0.05

// splitmix64 is the SplitMix64 finalizer: a bijective avalanche over uint64.
// Fed with a counter-style combination of (seed, sample, gate) it acts as a
// counter-based PRNG — no sequential state, perfect for parallel replay.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// Normal returns the standard-normal deviate for (seed, sample, gate) — a
// pure function, identical on every call and on every platform that rounds
// IEEE float64 the same way (all of them). The uniform is taken from the top
// 53 bits of the mixed counter, centered so it lies strictly inside (0, 1),
// then mapped through the Gaussian quantile function via math.Erfinv.
func Normal(seed uint64, sample int, gate int32) float64 {
	x := splitmix64(seed)
	x = splitmix64(x ^ (uint64(sample) * 0xA24BAED4963EE407))
	x = splitmix64(x ^ (uint64(uint32(gate)) * 0x9FB21C651E98DF25))
	u := (float64(x>>11) + 0.5) / (1 << 53) // strictly inside (0,1)
	return math.Sqrt2 * math.Erfinv(2*u-1)
}

// Multiplier returns the delay/transition multiplier for one gate in one
// sample: 1 + sigma*N(seed, sample, gate), floored at MinMultiplier. At
// sigma == 0 it returns exactly 1.0 — no Gaussian arithmetic touches the
// value, so a zero-sigma Monte-Carlo sample performs bit-identical
// arithmetic to a deterministic analysis.
func Multiplier(seed uint64, sample int, sigma float64, gate int32) float64 {
	if sigma == 0 {
		return 1
	}
	m := 1 + sigma*Normal(seed, sample, gate)
	if m < MinMultiplier {
		return MinMultiplier
	}
	return m
}

// ValidateSpec checks a Monte-Carlo run specification, naming the offending
// field in the error (the boundary-contract convention: callers surface the
// message verbatim and the user knows what to fix).
func ValidateSpec(samples int, sigma float64) error {
	if samples <= 0 {
		return fmt.Errorf("mc: samples must be positive (got %d)", samples)
	}
	if math.IsNaN(sigma) || math.IsInf(sigma, 0) || sigma < 0 {
		return fmt.Errorf("mc: sigma must be finite and non-negative (got %v)", sigma)
	}
	return nil
}

// Corner is a named global process corner: every gate's delay and output
// transition time scale by the same multiplier. A corner run is a degenerate
// one-sample Monte-Carlo analysis with a constant perturbation.
type Corner struct {
	Name       string
	Multiplier float64
}

// corners are the built-in presets. The spread (±3σ at a ~5% per-gate sigma)
// matches the conventional slow/fast derating practice: slow derates every
// delay up 15%, fast speeds everything up 13%, typ is the unperturbed model.
var corners = map[string]float64{
	"slow": 1.15,
	"typ":  1.0,
	"fast": 0.87,
}

// CornerMultiplier resolves a preset name. Unknown names error, naming both
// the offending value and the valid set.
func CornerMultiplier(name string) (float64, error) {
	if m, ok := corners[name]; ok {
		return m, nil
	}
	return 0, fmt.Errorf("mc: unknown corner %q (valid: %v)", name, CornerNames())
}

// CornerNames lists the preset names in sorted order.
func CornerNames() []string {
	names := make([]string, 0, len(corners))
	for n := range corners {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Dist summarizes one output's arrival-time sample distribution:
// mean/std/min/max (population std, matching stats.Summarize), the
// p50/p95/p99 percentiles via the shared stats.Quantile interpolator, and a
// fixed-bucket histogram over [Min, Max]. The zero Dist (N == 0) is what an
// empty sample set aggregates to.
type Dist struct {
	N                   int
	Mean, Std, Min, Max float64
	P50, P95, P99       float64
	Hist                *stats.Histogram
}

// NewDist aggregates a sample slice (NaN entries — samples in which the
// output never transitioned — are dropped first). values is not modified;
// bins <= 0 picks a 16-bin default. Aggregation order is fixed (ascending
// sort), so the result is bit-identical regardless of how the samples were
// produced or ordered.
func NewDist(values []float64, bins int) Dist {
	if bins <= 0 {
		bins = 16
	}
	xs := make([]float64, 0, len(values))
	for _, v := range values {
		if !math.IsNaN(v) {
			xs = append(xs, v)
		}
	}
	if len(xs) == 0 {
		return Dist{}
	}
	sort.Float64s(xs)
	s := stats.Summarize(xs)
	d := Dist{
		N: s.N, Mean: s.Mean, Std: s.StdDev, Min: s.Min, Max: s.Max,
		P50: stats.Quantile(xs, 0.50),
		P95: stats.Quantile(xs, 0.95),
		P99: stats.Quantile(xs, 0.99),
	}
	// A degenerate (constant) sample set still gets a histogram: widen the
	// zero-width range so the single bin holds everything.
	lo, hi := s.Min, s.Max
	if hi <= lo {
		pad := math.Abs(lo) * 1e-9
		if pad == 0 {
			pad = 1e-15
		}
		hi = lo + pad
	}
	// NewHistogram bins over [lo, hi); nudge hi so the maximum sample lands
	// in the last bin instead of the Over counter.
	hi = math.Nextafter(hi, math.Inf(1))
	if h, err := stats.NewHistogram(xs, lo, hi, bins); err == nil {
		d.Hist = h
	}
	return d
}
