package mc

import (
	"math"
	"strings"
	"testing"
)

// Every deviate is a pure function of (seed, sample, gate): same inputs,
// same bits, and distinct coordinates decorrelate.
func TestNormalDeterministicAndDistinct(t *testing.T) {
	a := Normal(17, 3, 5)
	if b := Normal(17, 3, 5); b != a {
		t.Fatalf("Normal not deterministic: %v vs %v", a, b)
	}
	seen := map[float64]bool{a: true}
	for _, c := range []struct {
		seed   uint64
		sample int
		gate   int32
	}{{18, 3, 5}, {17, 4, 5}, {17, 3, 6}} {
		v := Normal(c.seed, c.sample, c.gate)
		if seen[v] {
			t.Fatalf("deviate collision at %+v: %v", c, v)
		}
		seen[v] = true
	}
}

// The deviates must actually be standard-normal-ish: mean ~0, var ~1, and
// symmetric tails. 64k draws give ~0.004 standard error on the mean.
func TestNormalMoments(t *testing.T) {
	const n = 1 << 16
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := Normal(99, i, 0)
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("non-finite deviate at sample %d: %v", i, v)
		}
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("variance = %v, want ~1", variance)
	}
}

// Multiplier at sigma 0 is exactly 1.0 — the bit-identity contract the
// sigma-zero difftest oracle rests on.
func TestMultiplierSigmaZeroExact(t *testing.T) {
	for gate := int32(0); gate < 100; gate++ {
		if m := Multiplier(7, 0, 0, gate); m != 1.0 {
			t.Fatalf("Multiplier(sigma=0) = %v at gate %d, want exactly 1", m, gate)
		}
	}
}

// Extreme sigmas clamp at the floor instead of producing non-positive
// delays.
func TestMultiplierClamp(t *testing.T) {
	for i := 0; i < 10000; i++ {
		m := Multiplier(1, i, 100, 0) // sigma far beyond any physical value
		if m < MinMultiplier {
			t.Fatalf("multiplier %v below floor %v at sample %d", m, MinMultiplier, i)
		}
	}
}

func TestValidateSpec(t *testing.T) {
	cases := []struct {
		name    string
		samples int
		sigma   float64
		field   string // "" = valid
	}{
		{"valid", 16, 0.05, ""},
		{"zero sigma", 1, 0, ""},
		{"zero samples", 0, 0.05, "samples"},
		{"negative samples", -3, 0.05, "samples"},
		{"negative sigma", 8, -0.1, "sigma"},
		{"NaN sigma", 8, math.NaN(), "sigma"},
		{"Inf sigma", 8, math.Inf(1), "sigma"},
	}
	for _, c := range cases {
		err := ValidateSpec(c.samples, c.sigma)
		if c.field == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", c.name, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("%s: want error naming %q, got nil", c.name, c.field)
		} else if !strings.Contains(err.Error(), c.field) {
			t.Errorf("%s: error %q does not name field %q", c.name, err, c.field)
		}
	}
}

func TestCorners(t *testing.T) {
	for _, name := range CornerNames() {
		m, err := CornerMultiplier(name)
		if err != nil || m <= 0 {
			t.Errorf("corner %s: m=%v err=%v", name, m, err)
		}
	}
	if m, _ := CornerMultiplier("typ"); m != 1.0 {
		t.Errorf("typ corner = %v, want exactly 1", m)
	}
	if _, err := CornerMultiplier("nominal"); err == nil || !strings.Contains(err.Error(), "nominal") {
		t.Errorf("unknown corner error should name the value, got %v", err)
	}
	slow, _ := CornerMultiplier("slow")
	fast, _ := CornerMultiplier("fast")
	if !(fast < 1 && 1 < slow) {
		t.Errorf("corner ordering broken: fast=%v slow=%v", fast, slow)
	}
}

func TestNewDist(t *testing.T) {
	d := NewDist([]float64{3, 1, 2, math.NaN(), 4}, 4)
	if d.N != 4 || d.Min != 1 || d.Max != 4 {
		t.Fatalf("dist = %+v", d)
	}
	if math.Abs(d.Mean-2.5) > 1e-12 || math.Abs(d.P50-2.5) > 1e-12 {
		t.Errorf("mean/p50 = %v/%v, want 2.5/2.5", d.Mean, d.P50)
	}
	if !(d.P50 <= d.P95 && d.P95 <= d.P99 && d.P99 <= d.Max) {
		t.Errorf("percentiles out of order: %+v", d)
	}
	if d.Hist == nil {
		t.Fatal("no histogram")
	}
	n := d.Hist.Under + d.Hist.Over
	for _, c := range d.Hist.Counts {
		n += c
	}
	if n != 4 || d.Hist.Over != 0 {
		t.Errorf("histogram loses samples: counts=%v under=%d over=%d", d.Hist.Counts, d.Hist.Under, d.Hist.Over)
	}
}

// A constant sample set (the sigma=0 shape) must still aggregate cleanly.
func TestNewDistDegenerate(t *testing.T) {
	d := NewDist([]float64{5e-10, 5e-10, 5e-10}, 8)
	if d.N != 3 || d.Mean != 5e-10 || d.Std != 0 || d.P99 != 5e-10 {
		t.Fatalf("degenerate dist = %+v", d)
	}
	if d.Hist == nil || d.Hist.Over != 0 || d.Hist.Under != 0 {
		t.Fatalf("degenerate histogram drops samples: %+v", d.Hist)
	}
	if NewDist(nil, 8).N != 0 {
		t.Fatal("empty dist should have N 0")
	}
	if all := NewDist([]float64{math.NaN()}, 8); all.N != 0 {
		t.Fatal("all-NaN dist should have N 0")
	}
}

// Aggregation is order-independent: the sort inside NewDist makes shuffled
// inputs bit-identical — the property the worker-count-stability oracle
// leans on.
func TestNewDistOrderInvariant(t *testing.T) {
	a := []float64{9, 2, 7, 1, 8, 3}
	b := []float64{1, 3, 9, 8, 2, 7}
	da, db := NewDist(a, 4), NewDist(b, 4)
	if da.Mean != db.Mean || da.P95 != db.P95 || da.Std != db.Std {
		t.Fatalf("order-dependent aggregation: %+v vs %+v", da, db)
	}
}
