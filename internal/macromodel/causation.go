package macromodel

import (
	"fmt"

	"repro/internal/cells"
	"repro/internal/waveform"
)

// Causation describes how several same-direction input transitions combine
// to produce the output transition of an inverting gate.
//
// When the switching inputs turn on a PARALLEL network (falling inputs on a
// NAND's pull-up, rising inputs on a NOR's pull-down) the FIRST conducting
// input starts the output moving: the dominant input is the one whose solo
// response crosses the measurement threshold first, and inputs arriving
// after the output has crossed cannot matter (the paper's proximity window
// s < Δ). This is the case the paper's Figures 3-2/3-3 illustrate.
//
// When the switching inputs complete a SERIES network (rising inputs on a
// NAND's pull-down, falling inputs on a NOR's pull-up) the LAST input
// completes the conducting path: the dominant input is the one whose solo
// response crosses last, and earlier inputs matter only while their ramps
// still overlap the output transition. The paper notes the "analogous
// argument" for this case without spelling it out; this package makes the
// symmetry explicit.
type Causation int

const (
	// FirstCause: parallel conduction, earliest solo response dominates.
	FirstCause Causation = iota
	// LastCause: series completion, latest solo response dominates.
	LastCause
)

func (c Causation) String() string {
	if c == LastCause {
		return "last-cause (series completion)"
	}
	return "first-cause (parallel conduction)"
}

// CausationFor maps a gate kind name ("nand", "nor", "inv") and input
// transition direction to the causation type.
func CausationFor(kind string, dir waveform.Direction) Causation {
	if kind == "nor" {
		if dir == waveform.Rising {
			return FirstCause
		}
		return LastCause
	}
	// NAND and inverter-style pull-down logic.
	if dir == waveform.Falling {
		return FirstCause
	}
	return LastCause
}

// Causation reports the causation type of this model's gate for inputs
// switching in direction dir. Complex gates set explicit overrides per
// sensitized context (SetCausation); classic gates derive from their kind.
func (m *GateModel) Causation(dir waveform.Direction) Causation {
	if m.CausationMap != nil {
		if v, ok := m.CausationMap[dir.String()]; ok {
			return v
		}
	}
	return CausationFor(m.Kind, dir)
}

// SetCausation overrides the causation for one input direction.
func (m *GateModel) SetCausation(dir waveform.Direction, c Causation) {
	if m.CausationMap == nil {
		m.CausationMap = map[string]Causation{}
	}
	m.CausationMap[dir.String()] = c
}

// subsetCausation resolves the causation of a specific sensitized pin
// subset on the cell behind a GateSim, falling back to the kind-derived
// value for classic gates.
func (g *GateSim) subsetCausation(pins []int, dir waveform.Direction) (Causation, error) {
	if g.Cell.Kind != cells.Complex {
		return CausationFor(g.Cell.Kind.String(), dir), nil
	}
	levels, err := g.Cell.SensitizeFor(pins)
	if err != nil {
		return 0, err
	}
	switch g.Cell.SubsetCausation(pins, levels, dir == waveform.Rising) {
	case cells.FirstCauseSubset:
		return FirstCause, nil
	case cells.LastCauseSubset:
		return LastCause, nil
	default:
		return 0, fmt.Errorf("macromodel: subset %v is neither AND- nor OR-like for %v inputs", pins, dir)
	}
}
