package macromodel

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/cells"
	"repro/internal/table"
	"repro/internal/waveform"
)

// GlitchModel is the Section-6 macromodel of the gate's extreme output
// voltage when two inputs switch in opposite directions in close proximity.
//
// For a NAND gate with input `FallPin` falling (unblocking the output) and
// input `RisePin` rising (blocking it), the output dips toward ground; the
// model tables the minimum output voltage as a function of
// (τ_fall, τ_rise, s), where s is the separation of the falling input
// measured from the rising input at the thresholds. When the extreme voltage
// crosses Vil the output is deemed to have completed a transition; the
// smallest such separation is the gate's inertial delay for this input pair.
// For NOR gates the glitch is positive-going and compared against Vih.
type GlitchModel struct {
	FallPin int `json:"fallPin"`
	RisePin int `json:"risePin"`
	// NegativeGoing records the glitch polarity: true for NAND-style dips
	// toward ground (extreme = minimum voltage), false for NOR-style
	// bumps toward Vdd (extreme = maximum voltage).
	NegativeGoing bool `json:"negativeGoing"`
	// Extreme tables the extreme output voltage over
	// (τ_fall, τ_rise, s) — all physical, in seconds/volts.
	Extreme *table.Grid `json:"extreme"`
}

// GlitchGridSpec sizes the glitch characterization sweep.
type GlitchGridSpec struct {
	TausFall []float64
	TausRise []float64
	Seps     []float64
	Workers  int
}

// DefaultGlitchGrid covers the Fig. 6-1 sweep ranges.
func DefaultGlitchGrid() GlitchGridSpec {
	return GlitchGridSpec{
		TausFall: table.LogSpace(50e-12, 2e-9, 5),
		TausRise: table.LogSpace(50e-12, 2e-9, 5),
		Seps:     table.LinSpace(-2e-9, 1.5e-9, 29),
	}
}

// RunGlitch simulates one opposite-direction pair and returns the extreme
// output voltage (minimum for NAND-style gates, maximum for NOR).
// s is the threshold-measured crossing time of the falling input minus that
// of the rising input.
func (g *GateSim) RunGlitch(fallPin, risePin int, ttFall, ttRise, s float64) (extreme float64, err error) {
	res, err := g.Run([]PinStim{
		{Pin: risePin, Dir: waveform.Rising, TT: ttRise, Cross: 0},
		{Pin: fallPin, Dir: waveform.Falling, TT: ttFall, Cross: s},
	})
	if err != nil {
		return 0, err
	}
	if g.Cell.Kind == cells.Nor {
		v, _ := res.Out.Max()
		return v, nil
	}
	v, _ := res.Out.Min()
	return v, nil
}

// CharacterizeGlitch fills a GlitchModel for the given opposite-direction
// pair: fallPin falls while risePin rises.
func (g *GateSim) CharacterizeGlitch(fallPin, risePin int, spec GlitchGridSpec) (*GlitchModel, error) {
	if fallPin == risePin {
		return nil, fmt.Errorf("macromodel: glitch pair needs distinct pins")
	}
	if len(spec.TausFall) < 2 || len(spec.TausRise) < 2 || len(spec.Seps) < 2 {
		return nil, fmt.Errorf("macromodel: glitch grid too small")
	}
	grid, err := table.New(spec.TausFall, spec.TausRise, spec.Seps)
	if err != nil {
		return nil, err
	}
	err = parallelFill3(grid, spec.Workers, func(sim *GateSim, tf, tr, s float64) (float64, error) {
		return sim.RunGlitch(fallPin, risePin, tf, tr, s)
	}, g)
	if err != nil {
		return nil, fmt.Errorf("macromodel: glitch characterization: %w", err)
	}
	return &GlitchModel{
		FallPin:       fallPin,
		RisePin:       risePin,
		NegativeGoing: g.Cell.Kind != cells.Nor,
		Extreme:       grid,
	}, nil
}

// ExtremeAt interpolates the extreme output voltage.
func (m *GlitchModel) ExtremeAt(ttFall, ttRise, s float64) float64 {
	return m.Extreme.Eval(ttFall, ttRise, s)
}

// MinSeparation returns the smallest output pulse width at which the output
// still completes a transition past the measurement threshold — the gate's
// inertial delay for this pair. Width is measured as the trailing (blocking)
// cause's threshold crossing minus the leading (unblocking) cause's: for a
// negative-going dip the rising input blocks and the falling input restores,
// so width equals the tabulated separation s = cross(fall) − cross(rise);
// for a positive-going bump the roles mirror and width is −s. Expressing
// both polarities in width terms keeps one comparison direction — the
// output completes exactly when the observed width is at or above the
// returned boundary. The threshold is Vil for negative-going glitches, Vih
// for positive-going. ok is false when no width in the characterized range
// completes the transition; sep is then +Inf, so a caller that ignores ok
// and compares a candidate width against sep still concludes "never
// completes" instead of treating the pair as needing zero separation.
func (m *GlitchModel) MinSeparation(ttFall, ttRise float64, th waveform.Thresholds) (sep float64, ok bool) {
	level := th.Vil
	if !m.NegativeGoing {
		level = th.Vih
	}
	// completes(w) is true when the extreme voltage passes the threshold at
	// pulse width w. The grid's axis is s = cross(fall) − cross(rise), which
	// is w for negative-going models and −w for positive-going ones.
	completes := func(w float64) bool {
		s := w
		if !m.NegativeGoing {
			s = -w
		}
		v := m.ExtremeAt(ttFall, ttRise, s)
		if m.NegativeGoing {
			return v <= level
		}
		return v >= level
	}
	axis := m.Extreme.Axis(2)
	lo, hi := axis[0], axis[len(axis)-1]
	if !m.NegativeGoing {
		// In width terms the separation axis reverses: w ∈ [−s_max, −s_min].
		lo, hi = -hi, -lo
	}
	// The blocking transition (the rising input of a NAND, the mirror for a
	// NOR) cuts the output's excursion short unless the unblocking input
	// leads by enough: completion happens for widths at or above a boundary.
	// (Equivalently, in the paper's phrasing, "when input b comes much
	// earlier than input a, the output completes its falling transition".)
	if !completes(hi) {
		return math.Inf(1), false
	}
	if completes(lo) {
		return lo, true
	}
	// Bisect the boundary: completes(hi) true, completes(lo) false.
	for i := 0; i < 60; i++ {
		mid := 0.5 * (lo + hi)
		if completes(mid) {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, true
}

// parallelFill3 fills a 3-D grid with one simulation per point, cloning the
// prototype GateSim per worker. The first failure stops every worker (not
// just its own) and the feeder, so errors surface promptly.
func parallelFill3(grid *table.Grid, workers int, f func(sim *GateSim, a, b, c float64) (float64, error), proto *GateSim) error {
	ax0, ax1, ax2 := grid.Axis(0), grid.Axis(1), grid.Axis(2)
	type job struct{ i, j, k int }
	jobs := make(chan job)
	if workers <= 0 {
		workers = defaultWorkers()
	}
	var stop atomic.Bool
	var mu sync.Mutex
	var firstErr error
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		sim := proto.Clone()
		go func() {
			defer wg.Done()
			for jb := range jobs {
				if stop.Load() {
					continue
				}
				v, err := f(sim, ax0[jb.i], ax1[jb.j], ax2[jb.k])
				if err != nil {
					stop.Store(true)
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					continue
				}
				grid.Set(v, jb.i, jb.j, jb.k)
			}
		}()
	}
feed:
	for i := range ax0 {
		for j := range ax1 {
			for k := range ax2 {
				if stop.Load() {
					break feed
				}
				jobs <- job{i, j, k}
			}
		}
	}
	close(jobs)
	wg.Wait()
	return firstErr
}

func defaultWorkers() int {
	n := runtime.NumCPU()
	if n > 16 {
		n = 16
	}
	if n < 1 {
		n = 1
	}
	return n
}
