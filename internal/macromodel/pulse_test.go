package macromodel_test

import (
	"testing"

	"repro/internal/macromodel"
	"repro/internal/waveform"
)

// TestRunPulseShape: a low pulse on a NAND pin glitches the output toward
// Vdd; narrow pulses produce smaller excursions than wide ones.
func TestRunPulseShape(t *testing.T) {
	sim, _ := nand2Rig(t)
	// Establish a low output first: both inputs must be high, which IS the
	// non-controlling parking state... for a NAND the parked output is low
	// only when every input is high. With both pins parked at Vdd the
	// output sits low, and pulsing pin a low pulses the output high.
	narrow, err := sim.RunPulse(0, waveform.Falling, 150e-12, 150e-12, 200e-12)
	if err != nil {
		t.Fatal(err)
	}
	wide, err := sim.RunPulse(0, waveform.Falling, 150e-12, 150e-12, 2e-9)
	if err != nil {
		t.Fatal(err)
	}
	if !(wide > narrow) {
		t.Errorf("wider pulse should reach higher: narrow %.2fV wide %.2fV", narrow, wide)
	}
	if wide < sim.Th.Vih {
		t.Errorf("2ns pulse should complete the output transition: peak %.2fV < Vih %.2fV", wide, sim.Th.Vih)
	}
	if narrow > sim.Th.Vih {
		t.Errorf("200ps pulse should be filtered: peak %.2fV", narrow)
	}
}

func TestRunPulseValidation(t *testing.T) {
	sim, _ := nand2Rig(t)
	if _, err := sim.RunPulse(0, waveform.Falling, 100e-12, 100e-12, 0); err == nil {
		t.Error("zero-width pulse accepted")
	}
}

// TestPulseModelMinWidth: the characterized minimum transmittable pulse
// width sits between a filtered and a passed width.
func TestPulseModelMinWidth(t *testing.T) {
	sim, _ := nand2Rig(t)
	spec := macromodel.PulseGridSpec{
		TausFirst:  []float64{100e-12, 500e-12},
		TausSecond: []float64{100e-12, 500e-12},
		Widths:     []float64{100e-12, 400e-12, 700e-12, 1e-9, 1.4e-9, 1.8e-9, 2.2e-9},
	}
	pm, err := sim.CharacterizePulse(0, waveform.Falling, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !pm.PositiveGoing {
		t.Error("NAND pulse model should be positive-going")
	}
	w, ok := pm.MinWidth(200e-12, 200e-12, sim.Th)
	if !ok {
		t.Fatal("no transmittable width in range")
	}
	if w < 100e-12 || w > 2.2e-9 {
		t.Errorf("min width %.0fps outside characterized range", w*1e12)
	}
	// Verify the boundary against direct simulation on both sides.
	below, err := sim.RunPulse(0, waveform.Falling, 200e-12, 200e-12, w*0.6)
	if err != nil {
		t.Fatal(err)
	}
	above, err := sim.RunPulse(0, waveform.Falling, 200e-12, 200e-12, w*1.6)
	if err != nil {
		t.Fatal(err)
	}
	if below >= sim.Th.Vih {
		t.Errorf("pulse at 0.6x min width passed (peak %.2fV)", below)
	}
	if above < sim.Th.Vih {
		t.Errorf("pulse at 1.6x min width filtered (peak %.2fV)", above)
	}
	t.Logf("min transmittable pulse width (τ=200ps edges): %.0f ps", w*1e12)
}

// TestSupplyCurrentRecorded: runs carry a Vdd current trace and the peak is
// physically sensible (sub-ampere, nonzero during switching).
func TestSupplyCurrentRecorded(t *testing.T) {
	sim, _ := nand2Rig(t)
	res, err := sim.Run([]macromodel.PinStim{
		{Pin: 0, Dir: waveform.Falling, TT: 200e-12, Cross: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Supply == nil {
		t.Fatal("no supply-current trace recorded")
	}
	peak, at := res.PeakSupplyCurrent()
	if peak <= 1e-6 || peak > 0.1 {
		t.Errorf("peak supply current %.3g A implausible", peak)
	}
	if at < 0 || at > res.Out.End() {
		t.Errorf("peak time %.3g outside the run", at)
	}
}
