package macromodel

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/table"
)

// TestSaveAtomic: Save must leave no temp droppings and the written file
// must load back; an existing file must be replaced, never truncated in
// place.
func TestSaveAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "nand2.json")
	m := SynthModel("nand", 2)
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}
	// Overwrite with a different model; the load must see the new content.
	m3 := SynthModel("nand", 3)
	if err := m3.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumInputs != 3 {
		t.Fatalf("loaded numInputs %d, want 3 (stale content?)", got.NumInputs)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() != "nand2.json" {
			t.Fatalf("leftover file %q after Save", e.Name())
		}
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Mode().Perm() != 0o644 {
		t.Fatalf("saved mode %v, want 0644", info.Mode().Perm())
	}
}

// TestSaveIntoMissingDir: the temp file is created in the destination
// directory, so a bad path fails up front with an error, not a stray file.
func TestSaveIntoMissingDir(t *testing.T) {
	m := SynthModel("inv", 1)
	if err := m.Save(filepath.Join(t.TempDir(), "no-such-dir", "inv.json")); err == nil {
		t.Fatal("save into a missing directory succeeded")
	}
}

// TestValidateCatchesBrokenModels mutates a good synthetic model one field
// at a time and requires a validation error naming the offending table.
func TestValidateCatchesBrokenModels(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(m *GateModel)
		wantSub string
	}{
		{"pin out of range", func(m *GateModel) { m.Singles[0].Pin = 7 }, "single[0]"},
		{"short tau axis", func(m *GateModel) {
			s := m.Singles[0]
			s.TauAxis, s.Delay, s.OutTT = s.TauAxis[:1], s.Delay[:1], s.OutTT[:1]
		}, "τ axis"},
		{"sample count mismatch", func(m *GateModel) { m.Singles[0].Delay = m.Singles[0].Delay[:2] }, "delay"},
		{"non-monotone tau axis", func(m *GateModel) {
			s := m.Singles[0]
			s.TauAxis[1] = s.TauAxis[0]
		}, "strictly increasing"},
		{"dual pins coincide", func(m *GateModel) { m.Duals[0].OtherPin = m.Duals[0].RefPin }, "coincide"},
		{"dual missing grid", func(m *GateModel) { m.Duals[0].DelayRatio = nil }, "missing delayRatio"},
		{"dual wrong rank", func(m *GateModel) {
			m.Duals[0].TTRatio = table.MustNew([]float64{0, 1}, []float64{0, 1})
		}, "rank 2, want 3"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := SynthModel("nand", 2)
			tc.mutate(m)
			err := m.Validate()
			if err == nil {
				t.Fatal("broken model validated")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
	if err := SynthModel("nand", 3).Validate(); err != nil {
		t.Fatalf("good model rejected: %v", err)
	}
}

// TestLoadRejectsBrokenFile: a structurally broken model on disk fails Load
// with an error naming both the file and the table, before any evaluator
// runs.
func TestLoadRejectsBrokenFile(t *testing.T) {
	dir := t.TempDir()

	// Rank mismatch survives JSON decoding (Grid accepts any rank) and must
	// be caught by validation.
	m := SynthModel("nand", 2)
	m.Duals[0].DelayRatio = table.MustNew([]float64{0, 1})
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "badrank.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("rank-1 dual grid loaded")
	} else if !strings.Contains(err.Error(), "badrank.json") || !strings.Contains(err.Error(), "dual[0]") {
		t.Fatalf("error %q does not name file and table", err)
	}

	// A non-monotone Grid axis is rejected during decoding (table.New runs
	// inside Grid.UnmarshalJSON); the Load error still names the file.
	raw := strings.Replace(string(data), `"axes":[[0,1]`, `"axes":[[1,0]`, 1)
	path2 := filepath.Join(dir, "badaxis.json")
	if err := os.WriteFile(path2, []byte(raw), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path2); err == nil {
		t.Fatal("non-monotone axis loaded")
	} else if !strings.Contains(err.Error(), "badaxis.json") {
		t.Fatalf("error %q does not name the file", err)
	}

	// Truncated JSON (the crash Save's temp+rename prevents) is rejected.
	path3 := filepath.Join(dir, "trunc.json")
	if err := os.WriteFile(path3, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path3); err == nil {
		t.Fatal("truncated model loaded")
	}
}
