// Package macromodel characterizes logic cells into the paper's delay and
// transition-time macromodels by driving the transistor-level simulator:
//
//   - single-input models D(1), T(1): delay and output transition time versus
//     input transition time for each (pin, direction), including the paper's
//     dimensionless form Δ/τ = f(CL/(K·Vdd·τ)) (equations 3.7–3.8);
//   - dual-input proximity models D(2), T(2): three-argument normalized
//     tables (equations 3.11–3.12) filled by two-input simulations;
//   - glitch models: extreme output voltage versus separation for
//     opposite-direction input pairs (Section 6).
//
// The same simulation harness (GateSim) also serves as the golden reference
// for validation and as the paper's "HSPICE as the dual-input macromodel"
// backend.
package macromodel

import (
	"fmt"
	"math"

	"repro/internal/cells"
	"repro/internal/spice"
	"repro/internal/waveform"
)

// PinStim describes one switching input: the pin, its transition direction,
// its full-swing transition time, and the absolute time at which it crosses
// its measurement level (Vil rising, Vih falling).
type PinStim struct {
	Pin   int
	Dir   waveform.Direction
	TT    float64 // full-swing ramp duration, seconds
	Cross float64 // measurement-level crossing time, seconds
}

// GateSim runs measured transient experiments on a cell.
type GateSim struct {
	Cell *cells.Cell
	Opt  spice.Options
	Th   waveform.Thresholds

	// Settle is the post-stimulus window allowed for the output to finish
	// (default 4 ns); the run is extended once if the output has not
	// settled.
	Settle float64
}

// NewGateSim wraps a cell with measurement thresholds.
func NewGateSim(cell *cells.Cell, opt spice.Options, th waveform.Thresholds) *GateSim {
	return &GateSim{Cell: cell, Opt: opt, Th: th, Settle: 4e-9}
}

// crossFrac returns the fraction of the ramp duration elapsed when a
// full-swing ramp crosses its measurement level.
func (g *GateSim) crossFrac(dir waveform.Direction) float64 {
	vdd := g.Th.Vdd
	if dir == waveform.Rising {
		return g.Th.Vil / vdd
	}
	return (vdd - g.Th.Vih) / vdd
}

// RunResult carries the output trace of one experiment plus everything
// needed to measure it.
type RunResult struct {
	Th     waveform.Thresholds
	Stims  []PinStim
	PWLs   []*waveform.PWL // aligned with Stims, in the shifted time frame
	Out    *waveform.Trace
	Shift  float64 // internal time shift applied to all stimuli
	OutDir waveform.Direction
	// Supply is the current delivered by the Vdd source (amperes), for
	// peak-supply-current studies (the target application of the paper's
	// reference [13]).
	Supply *waveform.Trace
}

// PeakSupplyCurrent returns the largest |Vdd current| during the run.
func (r *RunResult) PeakSupplyCurrent() (amps, at float64) {
	if r.Supply == nil {
		return 0, 0
	}
	for i, v := range r.Supply.V {
		if a := math.Abs(v); a > amps {
			amps, at = a, r.Supply.T[i]
		}
	}
	return amps, at
}

// InputCross returns the (shifted-frame) measurement crossing time of
// stimulus k.
func (r *RunResult) InputCross(k int) float64 {
	return r.Stims[k].Cross + r.Shift
}

// DelayFrom measures propagation delay from stimulus k to the output using
// the run's nominal output direction.
func (r *RunResult) DelayFrom(k int) (float64, error) {
	return r.Th.DelayFromTime(r.InputCross(k), r.Out, r.OutDir)
}

// OutputTT measures the output transition time in the run's nominal output
// direction.
func (r *RunResult) OutputTT() (float64, error) {
	return r.Th.TransitionTime(r.Out, r.OutDir)
}

// Run drives the given stimuli (all remaining pins held non-controlling),
// simulates, and returns the measured output.
//
// The nominal output direction is derived from the stimuli: if every
// switching input moves in the same direction the output moves opposite
// (inverting gate); for mixed directions the output's final logic value
// decides, so glitch experiments still get a sensible OutDir.
func (g *GateSim) Run(stims []PinStim) (*RunResult, error) {
	if len(stims) == 0 {
		return nil, fmt.Errorf("macromodel: no stimuli")
	}
	seen := map[int]bool{}
	for _, s := range stims {
		if s.Pin < 0 || s.Pin >= g.Cell.N() {
			return nil, fmt.Errorf("macromodel: pin %d out of range", s.Pin)
		}
		if seen[s.Pin] {
			return nil, fmt.Errorf("macromodel: pin %d stimulated twice", s.Pin)
		}
		seen[s.Pin] = true
		if s.TT <= 0 {
			return nil, fmt.Errorf("macromodel: non-positive transition time %g on pin %d", s.TT, s.Pin)
		}
	}

	vdd := g.Th.Vdd
	// Compute ramp start times and the shift that keeps everything at
	// positive time with an initial-settling margin.
	const margin = 0.2e-9
	starts := make([]float64, len(stims))
	minStart := math.Inf(1)
	stimPins := make([]int, len(stims))
	for i, s := range stims {
		starts[i] = s.Cross - s.TT*g.crossFrac(s.Dir)
		if starts[i] < minStart {
			minStart = starts[i]
		}
		stimPins[i] = s.Pin
	}
	shift := margin - minStart

	// Stable pins hold the levels that sensitize the switching subset
	// (the non-controlling level for NAND/NOR; a searched assignment for
	// complex gates).
	stable, err := g.Cell.SensitizeFor(stimPins)
	if err != nil {
		return nil, fmt.Errorf("macromodel: %w", err)
	}
	for p := 0; p < g.Cell.N(); p++ {
		if !contains(stimPins, p) {
			g.Cell.HoldPin(p, stable[p])
		}
	}
	pwls := make([]*waveform.PWL, len(stims))
	var bps []*waveform.PWL
	maxEnd := 0.0
	for i, s := range stims {
		t0 := starts[i] + shift
		var w *waveform.PWL
		if s.Dir == waveform.Rising {
			w = waveform.Ramp(t0, s.TT, 0, vdd)
		} else {
			w = waveform.Ramp(t0, s.TT, vdd, 0)
		}
		pwls[i] = w
		bps = append(bps, w)
		g.Cell.DrivePin(s.Pin, w)
		if e := t0 + s.TT; e > maxEnd {
			maxEnd = e
		}
	}

	// Expected final output from the gate's logic function.
	finalHigh := g.finalOutputHigh(stims, stable)
	outDir := waveform.Rising
	if !finalHigh {
		outDir = waveform.Falling
	}
	// Same-direction stimulus sets always agree with logic, but derive
	// uniformly from logic so mixed sets are handled too.

	settle := g.Settle
	if settle <= 0 {
		settle = 4e-9
	}
	eng, err := g.Cell.Engine(g.Opt)
	if err != nil {
		return nil, err
	}
	target := 0.0
	if finalHigh {
		target = vdd
	}
	var out, supply *waveform.Trace
	stop := maxEnd + settle
	for attempt := 0; ; attempt++ {
		res, err := eng.Transient(spice.TranSpec{Stop: stop, Breakpoints: waveform.Breakpoints(bps...)})
		if err != nil {
			return nil, fmt.Errorf("macromodel: transient: %w", err)
		}
		out = res.Trace(g.Cell.Output)
		if sc, err := res.SourceCurrentTrace(g.Cell.VddN); err == nil {
			supply = sc
		}
		if math.Abs(out.Final()-target) < 0.05*vdd || attempt >= 2 {
			break
		}
		stop *= 2
	}

	return &RunResult{
		Th:     g.Th,
		Stims:  append([]PinStim(nil), stims...),
		PWLs:   pwls,
		Out:    out,
		Shift:  shift,
		OutDir: outDir,
		Supply: supply,
	}, nil
}

// finalOutputHigh evaluates the gate's logic function on the final input
// levels (stimulated pins at their post-transition level, stable pins at
// their sensitized level).
func (g *GateSim) finalOutputHigh(stims []PinStim, stable []float64) bool {
	vdd := g.Th.Vdd
	high := make([]bool, g.Cell.N())
	for i, v := range stable {
		high[i] = v > vdd/2
	}
	for _, s := range stims {
		high[s.Pin] = s.Dir == waveform.Rising
	}
	return g.Cell.OutputHigh(high)
}

// contains reports whether pins includes p.
func contains(pins []int, p int) bool {
	for _, q := range pins {
		if q == p {
			return true
		}
	}
	return false
}

// RunSingle measures the single-input delay and output transition time for
// one pin switching alone.
func (g *GateSim) RunSingle(pin int, dir waveform.Direction, tt float64) (delay, outTT float64, err error) {
	res, err := g.Run([]PinStim{{Pin: pin, Dir: dir, TT: tt, Cross: 0}})
	if err != nil {
		return 0, 0, err
	}
	delay, err = res.DelayFrom(0)
	if err != nil {
		return 0, 0, fmt.Errorf("macromodel: single-input delay pin %d %v tt=%g: %w", pin, dir, tt, err)
	}
	outTT, err = res.OutputTT()
	if err != nil {
		return 0, 0, fmt.Errorf("macromodel: single-input transition pin %d %v tt=%g: %w", pin, dir, tt, err)
	}
	return delay, outTT, nil
}

// RunPair measures delay (from the reference pin) and output transition time
// with two same-direction inputs separated by sep (measured at thresholds,
// positive = other later than reference).
func (g *GateSim) RunPair(ref, other int, dir waveform.Direction, ttRef, ttOther, sep float64) (delay, outTT float64, err error) {
	res, err := g.Run([]PinStim{
		{Pin: ref, Dir: dir, TT: ttRef, Cross: 0},
		{Pin: other, Dir: dir, TT: ttOther, Cross: sep},
	})
	if err != nil {
		return 0, 0, err
	}
	delay, err = res.DelayFrom(0)
	if err != nil {
		return 0, 0, fmt.Errorf("macromodel: pair delay ref=%d other=%d sep=%g: %w", ref, other, sep, err)
	}
	outTT, err = res.OutputTT()
	if err != nil {
		return 0, 0, fmt.Errorf("macromodel: pair transition ref=%d other=%d sep=%g: %w", ref, other, sep, err)
	}
	return delay, outTT, nil
}
