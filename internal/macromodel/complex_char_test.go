package macromodel_test

import (
	"testing"

	"repro/internal/cells"
	"repro/internal/macromodel"
	"repro/internal/spice"
	"repro/internal/vtc"
	"repro/internal/waveform"
)

// TestComplexGateSingleCharacterization: the generic characterization path
// works on a complex gate — each pin is sensitized automatically and its
// single-input models behave like any other gate's.
func TestComplexGateSingleCharacterization(t *testing.T) {
	cell, err := cells.NewComplex(cells.AOI21(), 3, cells.DefaultProcess(), cells.DefaultGeometry())
	if err != nil {
		t.Fatal(err)
	}
	fam, err := vtc.Extract(cell, spice.DefaultOptions(), 0.02)
	if err != nil {
		t.Fatal(err)
	}
	sim := macromodel.NewGateSim(cell, spice.DefaultOptions(), fam.Thresholds)
	spec := macromodel.CoarseCharSpec()
	spec.SkipDual = true
	model, err := macromodel.CharacterizeGate(sim, spec)
	if err != nil {
		t.Fatal(err)
	}
	if model.Kind != "complex" {
		t.Errorf("kind = %q", model.Kind)
	}
	for pin := 0; pin < 3; pin++ {
		for _, dir := range []waveform.Direction{waveform.Rising, waveform.Falling} {
			s := model.Single(pin, dir)
			if s == nil {
				t.Fatalf("missing single model pin %d %v", pin, dir)
			}
			if d := s.DelayAt(300e-12); d <= 0 || d > 3e-9 {
				t.Errorf("pin %d %v: single delay %.1fps implausible", pin, dir, d*1e12)
			}
			// Monotone in τ.
			if s.DelayAt(1e-9) <= s.DelayAt(100e-12) {
				t.Errorf("pin %d %v: delay not increasing with τ", pin, dir)
			}
		}
	}
	// The AOI21's pin c (the lone parallel branch) should be faster than
	// pin a (in the series pair) for rising inputs: c drives the output
	// through a single transistor, a through two in series.
	da := model.Single(0, waveform.Rising).DelayAt(300e-12)
	dc := model.Single(2, waveform.Rising).DelayAt(300e-12)
	if dc >= da {
		t.Errorf("parallel-branch pin c (%.1fps) should beat series pin a (%.1fps)", dc*1e12, da*1e12)
	}
}

// TestCausationOverrideRoundtrip: causation overrides survive JSON.
func TestCausationOverrideRoundtrip(t *testing.T) {
	_, model := nand2Rig(t)
	if model.Causation(waveform.Falling) != macromodel.FirstCause {
		t.Fatal("NAND falling should derive first-cause")
	}
	model.SetCausation(waveform.Falling, macromodel.LastCause)
	defer delete(model.CausationMap, waveform.Falling.String())
	if model.Causation(waveform.Falling) != macromodel.LastCause {
		t.Error("override not applied")
	}
	// Rising stays derived.
	if model.Causation(waveform.Rising) != macromodel.LastCause {
		t.Error("NAND rising should remain last-cause")
	}
}
