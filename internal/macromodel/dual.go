package macromodel

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/cells"
	"repro/internal/table"
	"repro/internal/waveform"
)

func cellsNew(c *cells.Cell) (*cells.Cell, error) {
	if c.Kind == cells.Complex {
		return cells.NewComplex(c.Network(), c.N(), c.Proc, c.Geom)
	}
	return cells.New(c.Kind, c.N(), c.Proc, c.Geom)
}

// DualInputModel is the characterized three-argument proximity macromodel of
// equations (3.11)/(3.12): the ratios Δ(2)/Δ(1) and τ(2)/τ(1) as functions
// of the normalized temporal parameters
//
//	x1 = τ_ref/Δ(1),  x2 = τ_other/Δ(1),  x3 = s/Δ(1)
//
// where Δ(1) is the single-input delay of the reference (dominant) input at
// its transition time. Both tables share the Δ(1)-normalized coordinate
// system; the paper normalizes the T(2) arguments by τ(1)_out instead, but
// any fixed bijective reparameterization represents the same function family
// and sharing one system halves the characterization cost.
type DualInputModel struct {
	RefPin   int                `json:"refPin"`
	OtherPin int                `json:"otherPin"`
	Dir      waveform.Direction `json:"dir"`

	DelayRatio *table.Grid `json:"delayRatio"`
	TTRatio    *table.Grid `json:"ttRatio"`
}

// EvalDelayRatio interpolates D(2) at normalized coordinates (multilinear).
func (m *DualInputModel) EvalDelayRatio(x1, x2, x3 float64) float64 {
	return m.DelayRatio.Eval(x1, x2, x3)
}

// EvalTTRatio interpolates T(2) at normalized coordinates (multilinear).
func (m *DualInputModel) EvalTTRatio(x1, x2, x3 float64) float64 {
	return m.TTRatio.Eval(x1, x2, x3)
}

// EvalDelayRatioCubic interpolates D(2) with tensor-product cubic Hermite
// splines — smoother between grid nodes than the multilinear default.
func (m *DualInputModel) EvalDelayRatioCubic(x1, x2, x3 float64) float64 {
	return m.DelayRatio.EvalCubic(x1, x2, x3)
}

// EvalTTRatioCubic is the cubic variant of EvalTTRatio.
func (m *DualInputModel) EvalTTRatioCubic(x1, x2, x3 float64) float64 {
	return m.TTRatio.EvalCubic(x1, x2, x3)
}

// DualGridSpec sizes the characterization grid.
type DualGridSpec struct {
	// Taus is the physical τ grid for the reference input (defines the x1
	// axis through x1 = τ/Δ(1)(τ)).
	Taus []float64
	// X2 is the normalized τ_other axis (τ_other = x2·Δ(1)).
	X2 []float64
	// X3 is the normalized separation axis (s = x3·Δ(1)).
	X3 []float64
	// Workers bounds characterization concurrency (0 = NumCPU).
	Workers int
}

// DefaultDualGrid covers the paper's experimental ranges: τ 50–2000 ps at a
// ~100 fF load gives x-coordinates within these spans.
func DefaultDualGrid() DualGridSpec {
	return DualGridSpec{
		Taus: DefaultTauGrid(),
		X2:   table.LogSpace(0.05, 15, 10),
		X3: []float64{
			-6, -4, -2.8, -2, -1.5, -1.1, -0.8, -0.55, -0.35, -0.18, -0.08,
			0, 0.08, 0.16, 0.24, 0.33, 0.42, 0.52, 0.62, 0.72, 0.82, 0.91, 1.0,
			// Beyond the delay window (x3 > 1) the delay ratio is flat but
			// the transition-time ratio keeps evolving until s ≈ Δ + τ_out.
			1.25, 1.6, 2.1, 2.8, 3.8, 5.0,
		},
	}
}

// CoarseDualGrid is a small grid for tests.
func CoarseDualGrid() DualGridSpec {
	return DualGridSpec{
		Taus: table.LogSpace(60e-12, 1.5e-9, 4),
		X2:   table.LogSpace(0.25, 8, 4),
		X3:   []float64{-4, -2, -1, -0.5, 0, 0.35, 0.7, 1.0, 1.6, 2.6, 4.0},
	}
}

// CharacterizeDual fills the dual-input proximity tables for (ref, other,
// dir) by running two-input transient simulations at every grid point.
//
// refSingle and otherSingle are the already-characterized single-input
// models for the two pins in the same direction: refSingle supplies Δ(1) for
// normalization; otherSingle supplies the dominance boundary
// s ≥ Δ(1)_ref − Δ(1)_other below which the reference would no longer be
// dominant (such points are clamped onto the boundary).
func (g *GateSim) CharacterizeDual(ref, other int, dir waveform.Direction,
	refSingle, otherSingle *SingleInputModel, spec DualGridSpec) (*DualInputModel, error) {

	if ref == other {
		return nil, fmt.Errorf("macromodel: dual model needs distinct pins")
	}
	if refSingle.Pin != ref || otherSingle.Pin != other {
		return nil, fmt.Errorf("macromodel: single models do not match pins (%d/%d vs %d/%d)",
			refSingle.Pin, otherSingle.Pin, ref, other)
	}
	if len(spec.Taus) < 2 || len(spec.X2) < 2 || len(spec.X3) < 2 {
		return nil, fmt.Errorf("macromodel: dual grid too small")
	}

	// x1 axis from the τ grid. τ/Δ(1)(τ) is monotone increasing for the
	// gates characterized here; verify rather than assume.
	x1 := make([]float64, len(spec.Taus))
	for i, tau := range spec.Taus {
		x1[i] = tau / refSingle.DelayAt(tau)
	}
	for i := 1; i < len(x1); i++ {
		if x1[i] <= x1[i-1] {
			return nil, fmt.Errorf("macromodel: τ/Δ(1) not monotone over τ grid (τ=%.3g); refine the grid",
				spec.Taus[i])
		}
	}

	dGrid, err := table.New(x1, spec.X2, spec.X3)
	if err != nil {
		return nil, err
	}
	tGrid, err := table.New(x1, spec.X2, spec.X3)
	if err != nil {
		return nil, err
	}
	causation, err := g.subsetCausation([]int{ref, other}, dir)
	if err != nil {
		return nil, err
	}

	type job struct{ i, j, k int }
	jobs := make(chan job)
	workers := spec.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > 16 {
		workers = 16
	}

	// stop flips once any worker fails: the others drain their queues
	// without simulating and the feeder quits, so a failed
	// characterization returns promptly instead of finishing every
	// remaining transient first.
	var stop atomic.Bool
	var mu sync.Mutex
	var firstErr error
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		sim := g.Clone()
		go func() {
			defer wg.Done()
			for jb := range jobs {
				if stop.Load() {
					continue
				}
				tauRef := spec.Taus[jb.i]
				d1 := refSingle.DelayAt(tauRef)
				tt1 := refSingle.OutTTAt(tauRef)
				tauOther := clampF(spec.X2[jb.j]*d1, 5e-12, 6e-9)
				s := spec.X3[jb.k] * d1
				// Keep the reference dominant: clamp the separation to the
				// dominance boundary. For first-cause (parallel) networks
				// the reference's solo response must cross first (s above
				// the boundary); for last-cause (series) networks it must
				// cross last (s below it).
				bound := d1 - otherSingle.DelayAt(tauOther)
				if causation == FirstCause {
					if s < bound {
						s = bound + 1e-13
					}
				} else if s > bound {
					s = bound - 1e-13
				}
				d2, tt2, err := sim.RunPair(ref, other, dir, tauRef, tauOther, s)
				if err != nil {
					stop.Store(true)
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("macromodel: dual point (τ=%.3g, x2=%.3g, x3=%.3g): %w",
							tauRef, spec.X2[jb.j], spec.X3[jb.k], err)
					}
					mu.Unlock()
					continue
				}
				// Disjoint grid cells: safe to write concurrently.
				dGrid.Set(d2/d1, jb.i, jb.j, jb.k)
				tGrid.Set(tt2/tt1, jb.i, jb.j, jb.k)
			}
		}()
	}
feed:
	for i := range spec.Taus {
		for j := range spec.X2 {
			for k := range spec.X3 {
				if stop.Load() {
					break feed
				}
				jobs <- job{i, j, k}
			}
		}
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return &DualInputModel{RefPin: ref, OtherPin: other, Dir: dir, DelayRatio: dGrid, TTRatio: tGrid}, nil
}

func clampF(v, lo, hi float64) float64 { return math.Max(lo, math.Min(hi, v)) }
