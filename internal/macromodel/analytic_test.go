package macromodel_test

import (
	"encoding/json"
	"math"
	"testing"

	"repro/internal/macromodel"
	"repro/internal/waveform"
)

// TestFitDualReproducesTable: a degree-4 polynomial tracks the tabulated
// dual model closely at the grid nodes.
func TestFitDualReproducesTable(t *testing.T) {
	_, model := nand2Rig(t)
	d := model.Dual(0, 1, waveform.Falling)
	a, err := macromodel.FitDual(d, 4)
	if err != nil {
		t.Fatal(err)
	}
	if a.DelayRMS > 0.08 {
		t.Errorf("delay-ratio fit RMS %.4f too large", a.DelayRMS)
	}
	if a.TTRMS > 0.12 {
		t.Errorf("tt-ratio fit RMS %.4f too large", a.TTRMS)
	}
	// Spot comparisons at grid nodes.
	ax0, ax1, ax2 := d.DelayRatio.Axis(0), d.DelayRatio.Axis(1), d.DelayRatio.Axis(2)
	worst := 0.0
	for _, x1 := range ax0 {
		for _, x2 := range ax1 {
			for _, x3 := range ax2 {
				diff := math.Abs(a.EvalDelayRatio(x1, x2, x3) - d.EvalDelayRatio(x1, x2, x3))
				if diff > worst {
					worst = diff
				}
			}
		}
	}
	if worst > 0.3 {
		t.Errorf("worst node deviation %.3f", worst)
	}
	t.Logf("analytic fit: delay RMS %.4f, tt RMS %.4f, worst node %.4f, %d coeffs vs %d table entries",
		a.DelayRMS, a.TTRMS, worst, a.Delay.NumCoeffs(), d.DelayRatio.Len())
}

func TestFitGateAndLookup(t *testing.T) {
	_, model := nand2Rig(t)
	am, err := macromodel.FitGate(model, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(am.Duals) != len(model.Duals) {
		t.Fatalf("fitted %d duals, want %d", len(am.Duals), len(model.Duals))
	}
	if am.Dual(0, 1, waveform.Falling) == nil {
		t.Error("analytic lookup failed")
	}
	if am.Dual(0, 1, waveform.Rising) == nil {
		t.Error("analytic rising lookup failed")
	}
}

func TestAnalyticJSONRoundtrip(t *testing.T) {
	_, model := nand2Rig(t)
	am, err := macromodel.FitGate(model, 3)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(am)
	if err != nil {
		t.Fatal(err)
	}
	var back macromodel.AnalyticModel
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	a := am.Dual(0, 1, waveform.Falling)
	b := back.Dual(0, 1, waveform.Falling)
	if b == nil {
		t.Fatal("lookup after roundtrip failed")
	}
	for _, x := range [][3]float64{{1, 1, 0}, {2, 0.5, 0.5}, {1.5, 3, -1}} {
		va := a.EvalDelayRatio(x[0], x[1], x[2])
		vb := b.EvalDelayRatio(x[0], x[1], x[2])
		if math.Abs(va-vb) > 1e-12 {
			t.Errorf("roundtrip eval %v: %g vs %g", x, va, vb)
		}
	}
}
