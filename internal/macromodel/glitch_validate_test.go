package macromodel

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/table"
	"repro/internal/waveform"
)

// flatGlitch builds a glitch model whose extreme voltage is a constant v at
// every grid node — the shape of a gate whose output never completes a
// transition anywhere in the characterized range when v sits between the
// thresholds.
func flatGlitch(v float64, negative bool) *GlitchModel {
	g := table.MustNew(
		[]float64{50e-12, 2e-9},
		[]float64{50e-12, 2e-9},
		[]float64{-1e-9, 0, 1e-9},
	)
	g.Fill(func([]float64) (float64, error) { return v, nil })
	return &GlitchModel{FallPin: 0, RisePin: 1, NegativeGoing: negative, Extreme: g}
}

// TestMinSeparationNeverRecovers: a grid whose extreme never crosses the
// threshold has no inertial-delay boundary. The returned separation must be
// +Inf — a caller that forgets to check ok and compares a candidate
// separation against it still concludes "never completes", instead of
// reading (0, false) as "zero separation required" and passing every pulse.
func TestMinSeparationNeverRecovers(t *testing.T) {
	th := waveform.Thresholds{Vil: 1.35, Vih: 3.65, Vdd: 5}
	for _, tc := range []struct {
		name string
		gm   *GlitchModel
	}{
		{"negative dip stuck at 3V", flatGlitch(3.0, true)},
		{"positive bump stuck at 3V", flatGlitch(3.0, false)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			sep, ok := tc.gm.MinSeparation(400e-12, 400e-12, th)
			if ok {
				t.Fatalf("never-completing grid reported a boundary at %g", sep)
			}
			if !math.IsInf(sep, 1) {
				t.Fatalf("sep = %g with ok=false, want +Inf (0 reads as 'no separation required')", sep)
			}
			// The ok-ignoring comparison every filtering caller makes.
			if candidate := 10e-9; candidate >= sep {
				t.Fatalf("candidate %g passed the +Inf threshold", candidate)
			}
		})
	}
	// Sanity: the same grids with the extreme past the threshold do bracket.
	if _, ok := flatGlitch(1.0, true).MinSeparation(400e-12, 400e-12, th); !ok {
		t.Error("always-completing negative grid found no boundary")
	}
	if _, ok := flatGlitch(4.0, false).MinSeparation(400e-12, 400e-12, th); !ok {
		t.Error("always-completing positive grid found no boundary")
	}
}

// TestSynthGlitchNorOrientation: a positive-going synthetic grid must mirror
// the physics CharacterizeGlitch would measure — the bump completes (extreme
// reaches Vih) when the falling input leads the rising one (s very negative)
// and the output stays on its low rail when it trails (s very positive) —
// so MinSeparation brackets a genuine width boundary and a real NOR pulse
// can survive filtering instead of being absorbed at every separation.
func TestSynthGlitchNorOrientation(t *testing.T) {
	m := SynthModel("nor", 2)
	gm := m.Glitch(0, 1)
	if gm == nil || gm.NegativeGoing {
		t.Fatalf("synthetic nor2 glitch pair (0,1) missing or negative-going: %+v", gm)
	}
	const tf, tr = 300e-12, 300e-12
	early := gm.ExtremeAt(tf, tr, -1.5e-9) // fall leads rise: full-swing bump
	late := gm.ExtremeAt(tf, tr, 1.5e-9)   // fall trails rise: no excursion
	if !(early >= m.Th.Vih) || !(late < m.Th.Vil) {
		t.Fatalf("bump extreme not mirrored: s=-1.5ns -> %gV, s=+1.5ns -> %gV (Vih=%g)",
			early, late, m.Th.Vih)
	}
	w, ok := gm.MinSeparation(tf, tr, m.Th)
	if !ok || math.IsInf(w, 0) || w <= 0 {
		t.Fatalf("nor inertial width = (%g, %v), want a finite positive boundary", w, ok)
	}
	// The boundary is a pulse width: the bump completes at s = −(w+ε) and is
	// absorbed at −(w−ε).
	if v := gm.ExtremeAt(tf, tr, -(w + 20e-12)); v < m.Th.Vih {
		t.Errorf("width %g past the boundary: extreme %gV below Vih", w+20e-12, v)
	}
	if v := gm.ExtremeAt(tf, tr, -(w - 20e-12)); v >= m.Th.Vih {
		t.Errorf("width %g inside the boundary: extreme %gV at/above Vih", w-20e-12, v)
	}
}

// TestValidateCatchesBrokenGlitch mutates the synthetic model's glitch
// entries one defect at a time; each must fail validation naming glitch[i].
func TestValidateCatchesBrokenGlitch(t *testing.T) {
	nan := math.NaN()
	cases := []struct {
		name    string
		mutate  func(m *GateModel)
		wantSub string
	}{
		{"pins coincide", func(m *GateModel) { m.Glitches[0].RisePin = m.Glitches[0].FallPin }, "glitch[0]"},
		{"pin out of range", func(m *GateModel) { m.Glitches[1].RisePin = 9 }, "glitch[1]"},
		{"missing grid", func(m *GateModel) { m.Glitches[0].Extreme = nil }, "missing extreme grid"},
		{"wrong rank", func(m *GateModel) {
			m.Glitches[0].Extreme = table.MustNew([]float64{0, 1}, []float64{0, 1})
		}, "rank 2, want 3"},
		{"single-point separation axis", func(m *GateModel) {
			m.Glitches[0].Extreme = table.MustNew(
				[]float64{50e-12, 2e-9}, []float64{50e-12, 2e-9}, []float64{0})
		}, "axis 2 has 1 points, want >= 2"},
		{"NaN in axis", func(m *GateModel) {
			// NaN defeats the ordering check (ordered comparisons with NaN
			// are all false), so the finiteness check must catch it.
			g := table.MustNew([]float64{50e-12, nan, 2e-9}, []float64{50e-12, 2e-9}, []float64{-1e-9, 1e-9})
			m.Glitches[0].Extreme = g
		}, "non-finite value"},
		{"NaN sample", func(m *GateModel) {
			m.Glitches[0].Extreme.Set(nan, 0, 0, 0)
		}, "grid sample [0,0,0] is non-finite"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := SynthModel("nand", 2)
			if len(m.Glitches) < 2 {
				t.Fatalf("synthetic nand2 carries %d glitch models, want per-ref pairs", len(m.Glitches))
			}
			tc.mutate(m)
			err := m.Validate()
			if err == nil {
				t.Fatal("broken glitch model validated")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
	if err := SynthModel("nand", 2).Validate(); err != nil {
		t.Fatalf("good model rejected: %v", err)
	}
}

// TestLoadRejectsBrokenGlitchFile: a malformed glitch grid survives JSON
// decoding (table.New accepts single-point axes) and must be rejected by
// Load with an error naming both the file and the glitch table.
func TestLoadRejectsBrokenGlitchFile(t *testing.T) {
	m := SynthModel("nand", 2)
	m.Glitches[0].Extreme = table.MustNew(
		[]float64{50e-12, 2e-9}, []float64{50e-12, 2e-9}, []float64{0})
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "badglitch.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Load(path)
	if err == nil {
		t.Fatal("single-point glitch separation axis loaded")
	}
	if !strings.Contains(err.Error(), "badglitch.json") || !strings.Contains(err.Error(), "glitch[0]") {
		t.Fatalf("error %q does not name file and glitch table", err)
	}
}

// TestGlitchSaveLoadRoundtrip: glitch models survive the Save/Load path the
// registry uses (the characterization-data path pulse filtering loads
// through), with grids evaluating identically.
func TestGlitchSaveLoadRoundtrip(t *testing.T) {
	m := SynthModel("nand", 2)
	path := filepath.Join(t.TempDir(), "nand2.json")
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Glitches) != len(m.Glitches) {
		t.Fatalf("loaded %d glitch models, want %d", len(got.Glitches), len(m.Glitches))
	}
	for i, want := range m.Glitches {
		g := got.Glitches[i]
		if g.FallPin != want.FallPin || g.RisePin != want.RisePin || g.NegativeGoing != want.NegativeGoing {
			t.Fatalf("glitch[%d] header changed: %+v -> %+v", i, want, g)
		}
		if a, b := g.ExtremeAt(300e-12, 400e-12, 100e-12), want.ExtremeAt(300e-12, 400e-12, 100e-12); a != b {
			t.Fatalf("glitch[%d] extreme changed across roundtrip: %g != %g", i, a, b)
		}
		sa, oka := g.MinSeparation(300e-12, 400e-12, got.Th)
		sb, okb := want.MinSeparation(300e-12, 400e-12, m.Th)
		if sa != sb || oka != okb {
			t.Fatalf("glitch[%d] inertial delay changed: (%g,%v) != (%g,%v)", i, sa, oka, sb, okb)
		}
	}
}
