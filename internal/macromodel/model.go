package macromodel

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"

	"repro/internal/table"
	"repro/internal/waveform"
)

// Correction is the paper's Section-4 corrective term for one output
// direction: the signed difference (actual − algorithm) measured with a step
// signal applied to all inputs simultaneously. The proximity algorithm adds
// it, scaled by the linear window factor, to its composed result.
type Correction struct {
	Delay float64 `json:"delay"`
	OutTT float64 `json:"outTT"`
}

// GateModel bundles everything characterized about one cell: measurement
// thresholds, per-arc single-input models, dual-input proximity tables,
// step-input corrections, and optional glitch models.
type GateModel struct {
	Kind      string              `json:"kind"`
	NumInputs int                 `json:"numInputs"`
	Th        waveform.Thresholds `json:"thresholds"`
	Load      float64             `json:"load"`
	Singles   []*SingleInputModel `json:"singles"`
	Duals     []*DualInputModel   `json:"duals"`
	// Corrections is keyed by the *input* direction of the simultaneous
	// step ("rising"/"falling").
	Corrections map[string]Correction `json:"corrections,omitempty"`
	Glitches    []*GlitchModel        `json:"glitches,omitempty"`
	Pulses      []*PulseModel         `json:"pulses,omitempty"`
	// CausationMap overrides the kind-derived causation per input
	// direction ("rising"/"falling") — used by complex-gate contexts.
	CausationMap map[string]Causation `json:"causationMap,omitempty"`
}

// Pulse returns the same-pin pulse model for (pin, leading direction), or
// nil when that pair was not characterized.
func (m *GateModel) Pulse(pin int, firstDir waveform.Direction) *PulseModel {
	for _, p := range m.Pulses {
		if p.Pin == pin && p.FirstDir == firstDir {
			return p
		}
	}
	return nil
}

// Glitch returns the opposite-edge glitch model for the ordered pair
// (fallPin falling, risePin rising), or nil when that pair was not
// characterized.
func (m *GateModel) Glitch(fallPin, risePin int) *GlitchModel {
	for _, g := range m.Glitches {
		if g.FallPin == fallPin && g.RisePin == risePin {
			return g
		}
	}
	return nil
}

// Single returns the single-input model for (pin, dir), or nil.
func (m *GateModel) Single(pin int, dir waveform.Direction) *SingleInputModel {
	for _, s := range m.Singles {
		if s.Pin == pin && s.Dir == dir {
			return s
		}
	}
	return nil
}

// Dual returns the dual-input model for reference pin ref in direction dir,
// preferring an exact (ref, other) pair when present.
func (m *GateModel) Dual(ref, other int, dir waveform.Direction) *DualInputModel {
	var fallback *DualInputModel
	for _, d := range m.Duals {
		if d.Dir != dir || d.RefPin != ref {
			continue
		}
		if d.OtherPin == other {
			return d
		}
		if fallback == nil {
			fallback = d
		}
	}
	return fallback
}

// Correction returns the step correction for an input direction (zero value
// when uncalibrated).
func (m *GateModel) Correction(dir waveform.Direction) Correction {
	return m.Corrections[dir.String()]
}

// SetCorrection stores a step correction.
func (m *GateModel) SetCorrection(dir waveform.Direction, c Correction) {
	if m.Corrections == nil {
		m.Corrections = map[string]Correction{}
	}
	m.Corrections[dir.String()] = c
}

// PairPolicy selects how many dual-input tables to characterize.
type PairPolicy int

const (
	// PerRef builds one dual model per reference pin (the paper's 2n-model
	// observation: n single + n dual per quantity).
	PerRef PairPolicy = iota
	// FullMatrix builds all n(n-1) ordered pairs (the paper's option 2(a)).
	FullMatrix
)

// CharSpec configures full-gate characterization.
type CharSpec struct {
	Taus       []float64
	Dual       DualGridSpec
	Pairs      PairPolicy
	Directions []waveform.Direction
	// SkipDual characterizes only the single-input models.
	SkipDual bool
}

// DefaultCharSpec covers both directions with the default grids.
func DefaultCharSpec() CharSpec {
	return CharSpec{
		Taus:       DefaultTauGrid(),
		Dual:       DefaultDualGrid(),
		Pairs:      PerRef,
		Directions: []waveform.Direction{waveform.Rising, waveform.Falling},
	}
}

// CoarseCharSpec is a fast spec for tests.
func CoarseCharSpec() CharSpec {
	return CharSpec{
		Taus:       CoarseDualGrid().Taus,
		Dual:       CoarseDualGrid(),
		Pairs:      PerRef,
		Directions: []waveform.Direction{waveform.Rising, waveform.Falling},
	}
}

// CharacterizeGate runs the full characterization flow on the cell behind
// sim: single-input models for every (pin, direction), then dual-input
// proximity tables per the pair policy. Corrections and glitch models are
// calibrated separately (they depend on the proximity algorithm and on
// opposite-direction pairs; see internal/core and CharacterizeGlitch).
func CharacterizeGate(sim *GateSim, spec CharSpec) (*GateModel, error) {
	n := sim.Cell.N()
	m := &GateModel{
		Kind:      sim.Cell.Kind.String(),
		NumInputs: n,
		Th:        sim.Th,
		Load:      sim.Cell.Load(),
	}
	if len(spec.Directions) == 0 {
		spec.Directions = []waveform.Direction{waveform.Rising, waveform.Falling}
	}
	if len(spec.Taus) == 0 {
		spec.Taus = DefaultTauGrid()
	}

	singles := map[[2]int]*SingleInputModel{}
	for _, dir := range spec.Directions {
		for pin := 0; pin < n; pin++ {
			s, err := sim.CharacterizeSingle(pin, dir, spec.Taus)
			if err != nil {
				return nil, fmt.Errorf("macromodel: single pin %d %v: %w", pin, dir, err)
			}
			m.Singles = append(m.Singles, s)
			singles[[2]int{pin, int(dir)}] = s
		}
	}
	if spec.SkipDual || n < 2 {
		return m, nil
	}

	var pairs [][2]int
	for ref := 0; ref < n; ref++ {
		if spec.Pairs == FullMatrix {
			for other := 0; other < n; other++ {
				if other != ref {
					pairs = append(pairs, [2]int{ref, other})
				}
			}
		} else {
			pairs = append(pairs, [2]int{ref, (ref + 1) % n})
		}
	}
	for _, dir := range spec.Directions {
		for _, pair := range pairs {
			ref, other := pair[0], pair[1]
			d, err := sim.CharacterizeDual(ref, other, dir,
				singles[[2]int{ref, int(dir)}], singles[[2]int{other, int(dir)}], spec.Dual)
			if err != nil {
				return nil, fmt.Errorf("macromodel: dual (%d,%d) %v: %w", ref, other, dir, err)
			}
			m.Duals = append(m.Duals, d)
		}
	}
	return m, nil
}

// Save writes the model as JSON, atomically: the bytes go to a temp file in
// the destination directory and are renamed into place, so a crashed or
// killed characterization run never leaves a truncated model for a registry
// or a later run to trip over — readers see either the old file or the
// complete new one.
func (m *GateModel) Save(path string) error {
	data, err := json.MarshalIndent(m, "", " ")
	if err != nil {
		return fmt.Errorf("macromodel: marshal: %w", err)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("macromodel: save %s: %w", path, err)
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if _, err := tmp.Write(data); err != nil {
		return fmt.Errorf("macromodel: save %s: %w", path, err)
	}
	// CreateTemp opens 0600; models are world-readable artifacts.
	if err := tmp.Chmod(0o644); err != nil {
		return fmt.Errorf("macromodel: save %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("macromodel: save %s: %w", path, err)
	}
	name := tmp.Name()
	tmp = nil // rename owns the file now; skip the cleanup path
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return fmt.Errorf("macromodel: save %s: %w", path, err)
	}
	return nil
}

// Load reads and validates a model written by Save. A structurally broken
// model (wrong grid rank, non-monotone axis, out-of-range pin) is rejected
// here, with an error naming the file and the offending table, instead of
// failing later inside a hot-path Grid.Eval.
func Load(path string) (*GateModel, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m GateModel
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("macromodel: unmarshal %s: %w", path, err)
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("macromodel: model %s: %w", path, err)
	}
	return &m, nil
}

// Validate checks the structural consistency every evaluator assumes: pins
// in range, single-input axes strictly increasing with matching sample
// counts, dual/glitch/pulse grids present with the three-argument rank the
// proximity algorithm interpolates. JSON decoding already rejects
// non-monotone Grid axes (table.New runs inside Grid.UnmarshalJSON), so the
// axis checks here guard the plain-slice tables and programmatically built
// models.
func (m *GateModel) Validate() error {
	if m.NumInputs < 1 {
		return fmt.Errorf("numInputs %d, want >= 1", m.NumInputs)
	}
	if len(m.Singles) == 0 {
		return fmt.Errorf("no single-input models")
	}
	pinOK := func(pin int) bool { return pin >= 0 && pin < m.NumInputs }
	for i, s := range m.Singles {
		name := fmt.Sprintf("single[%d] (pin %d, %v)", i, s.Pin, s.Dir)
		if !pinOK(s.Pin) {
			return fmt.Errorf("%s: pin out of range for %d inputs", name, m.NumInputs)
		}
		if len(s.TauAxis) < 2 {
			return fmt.Errorf("%s: τ axis has %d points, want >= 2", name, len(s.TauAxis))
		}
		if len(s.Delay) != len(s.TauAxis) || len(s.OutTT) != len(s.TauAxis) {
			return fmt.Errorf("%s: %d τ points but %d delay / %d outTT samples",
				name, len(s.TauAxis), len(s.Delay), len(s.OutTT))
		}
		for k := 1; k < len(s.TauAxis); k++ {
			if s.TauAxis[k] <= s.TauAxis[k-1] {
				return fmt.Errorf("%s: τ axis not strictly increasing at index %d (%g after %g)",
					name, k, s.TauAxis[k], s.TauAxis[k-1])
			}
		}
		if s.TauAxis[0] <= 0 {
			return fmt.Errorf("%s: non-positive τ %g (log-τ interpolation needs τ > 0)", name, s.TauAxis[0])
		}
	}
	checkGrid := func(owner, which string, g *table.Grid) error {
		if g == nil {
			return fmt.Errorf("%s: missing %s grid", owner, which)
		}
		if d := g.Dims(); d != 3 {
			return fmt.Errorf("%s: %s grid rank %d, want 3", owner, which, d)
		}
		lens := [3]int{}
		for d := 0; d < 3; d++ {
			ax := g.Axis(d)
			// A single-point axis makes interpolation degenerate and the
			// glitch bisection meaningless (MinSeparation brackets over
			// axis[0]..axis[len-1]); require a real interval.
			if len(ax) < 2 {
				return fmt.Errorf("%s: %s grid axis %d has %d points, want >= 2", owner, which, d, len(ax))
			}
			lens[d] = len(ax)
			for k := range ax {
				// NaN slips past the ordering check below (every ordered
				// comparison with NaN is false), so test finiteness first.
				if math.IsNaN(ax[k]) || math.IsInf(ax[k], 0) {
					return fmt.Errorf("%s: %s grid axis %d has non-finite value at index %d", owner, which, d, k)
				}
			}
			for k := 1; k < len(ax); k++ {
				if ax[k] <= ax[k-1] {
					return fmt.Errorf("%s: %s grid axis %d not strictly increasing at index %d",
						owner, which, d, k)
				}
			}
		}
		for i := 0; i < lens[0]; i++ {
			for j := 0; j < lens[1]; j++ {
				for k := 0; k < lens[2]; k++ {
					if v := g.At(i, j, k); math.IsNaN(v) || math.IsInf(v, 0) {
						return fmt.Errorf("%s: %s grid sample [%d,%d,%d] is non-finite (%g)",
							owner, which, i, j, k, v)
					}
				}
			}
		}
		return nil
	}
	for i, d := range m.Duals {
		name := fmt.Sprintf("dual[%d] (ref %d, other %d, %v)", i, d.RefPin, d.OtherPin, d.Dir)
		if !pinOK(d.RefPin) || !pinOK(d.OtherPin) {
			return fmt.Errorf("%s: pin out of range for %d inputs", name, m.NumInputs)
		}
		if d.RefPin == d.OtherPin {
			return fmt.Errorf("%s: reference and other pin coincide", name)
		}
		if err := checkGrid(name, "delayRatio", d.DelayRatio); err != nil {
			return err
		}
		if err := checkGrid(name, "ttRatio", d.TTRatio); err != nil {
			return err
		}
	}
	for i, g := range m.Glitches {
		name := fmt.Sprintf("glitch[%d] (fall %d, rise %d)", i, g.FallPin, g.RisePin)
		if !pinOK(g.FallPin) || !pinOK(g.RisePin) || g.FallPin == g.RisePin {
			return fmt.Errorf("%s: bad pin pair for %d inputs", name, m.NumInputs)
		}
		if err := checkGrid(name, "extreme", g.Extreme); err != nil {
			return err
		}
	}
	for i, p := range m.Pulses {
		name := fmt.Sprintf("pulse[%d] (pin %d, %v)", i, p.Pin, p.FirstDir)
		if !pinOK(p.Pin) {
			return fmt.Errorf("%s: pin out of range for %d inputs", name, m.NumInputs)
		}
		if err := checkGrid(name, "extreme", p.Extreme); err != nil {
			return err
		}
	}
	return nil
}
