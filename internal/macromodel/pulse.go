package macromodel

import (
	"fmt"

	"repro/internal/cells"
	"repro/internal/spice"
	"repro/internal/table"
	"repro/internal/waveform"
)

// PulseModel is the same-pin companion to GlitchModel: the paper's Section 6
// notes that "for a NAND gate, we can have a rising glitch at the output
// only when the same input first falls and then rises" and suggests a
// separate macromodel for the extreme voltage of that case. PulseModel
// tables the extreme OUTPUT voltage reached when one pin receives a pulse
// (an edge followed by the opposite edge), as a function of the two edge
// transition times and the pulse width.
//
// For a NAND pin pulsed low (fall then rise) the output pulses high and the
// extreme is the maximum output voltage, compared against Vih; the smallest
// width whose extreme passes the threshold is the gate's minimum
// transmittable pulse width — its inertial delay for pulses.
type PulseModel struct {
	Pin int `json:"pin"`
	// FirstDir is the leading edge direction of the input pulse.
	FirstDir waveform.Direction `json:"firstDir"`
	// PositiveGoing records the output-glitch polarity: true when the
	// output pulses toward Vdd (extreme = maximum voltage, threshold Vih).
	PositiveGoing bool `json:"positiveGoing"`
	// Extreme tables the extreme output voltage over
	// (τ_first, τ_second, width); width is measured between the two edges'
	// measurement-level crossings.
	Extreme *table.Grid `json:"extreme"`
}

// PulseGridSpec sizes the pulse characterization sweep.
type PulseGridSpec struct {
	TausFirst  []float64
	TausSecond []float64
	Widths     []float64
	Workers    int
}

// DefaultPulseGrid spans the inertial-delay regime of the default gate.
func DefaultPulseGrid() PulseGridSpec {
	return PulseGridSpec{
		TausFirst:  table.LogSpace(50e-12, 1.5e-9, 4),
		TausSecond: table.LogSpace(50e-12, 1.5e-9, 4),
		Widths:     table.LinSpace(50e-12, 2.5e-9, 21),
	}
}

// RunPulse applies an edge pair to one pin (firstDir at its measurement
// level at t=0, the opposite edge width later) and returns the extreme
// output voltage. All other pins stay non-controlling.
func (g *GateSim) RunPulse(pin int, firstDir waveform.Direction, ttFirst, ttSecond, width float64) (extreme float64, err error) {
	if width <= 0 {
		return 0, fmt.Errorf("macromodel: pulse width must be positive")
	}
	if g.Cell.Kind == cells.Complex {
		return 0, fmt.Errorf("macromodel: pulse characterization supports NAND/NOR/INV cells only")
	}
	vdd := g.Th.Vdd
	// Build the compound waveform by hand: first edge crossing at 0,
	// second edge (opposite direction) crossing at width.
	firstStart := -ttFirst * g.crossFrac(firstDir)
	secondDir := firstDir.Opposite()
	secondStart := width - ttSecond*g.crossFrac(secondDir)
	// The second ramp must start after the first ends; narrower pulses are
	// clamped to edge-to-edge adjacency (the physical limit of a full-swing
	// PWL pulse).
	minSecond := firstStart + ttFirst
	if secondStart < minSecond {
		secondStart = minSecond
	}
	const margin = 0.3e-9
	shift := margin - firstStart

	lo, hi := 0.0, vdd
	if firstDir == waveform.Falling {
		lo, hi = vdd, 0
	}
	firstEnd := firstStart + ttFirst
	pts := []waveform.Point{
		{T: firstStart + shift, V: lo},
		{T: firstEnd + shift, V: hi},
	}
	// A flat top exists only when the edges do not abut.
	if secondStart > firstEnd+1e-15 {
		pts = append(pts, waveform.Point{T: secondStart + shift, V: hi})
	} else {
		secondStart = firstEnd
	}
	pts = append(pts, waveform.Point{T: secondStart + shift + ttSecond, V: lo})
	w := waveform.MustPWL(pts...)

	g.Cell.HoldAllNonControlling()
	g.Cell.DrivePin(pin, w)
	eng, err := g.Cell.Engine(g.Opt)
	if err != nil {
		return 0, err
	}
	settle := g.Settle
	if settle <= 0 {
		settle = 4e-9
	}
	res, err := eng.Transient(spice.TranSpec{
		Stop:        w.End() + settle,
		Breakpoints: waveform.Breakpoints(w),
	})
	if err != nil {
		return 0, fmt.Errorf("macromodel: pulse transient: %w", err)
	}
	out := res.Trace(g.Cell.Output)
	if g.pulsePositive(firstDir) {
		v, _ := out.Max()
		return v, nil
	}
	v, _ := out.Min()
	return v, nil
}

// pulsePositive reports whether a pulse with the given leading edge causes a
// positive-going output glitch on this gate kind.
func (g *GateSim) pulsePositive(firstDir waveform.Direction) bool {
	if g.Cell.Kind == cells.Nor {
		// NOR: pin pulsing high (rise then fall) dips the output... pin
		// rising turns on the pull-down: output pulses LOW (negative).
		// Pin pulsing low from a high state is not reachable from the
		// non-controlling level (0), so firstDir==Rising is the physical
		// case and it is negative-going.
		return firstDir == waveform.Falling
	}
	// NAND/INV: non-controlling level is Vdd, so the physical pulse leads
	// with a falling edge and the output glitches toward Vdd.
	return firstDir == waveform.Falling
}

// CharacterizePulse fills a PulseModel for one pin.
func (g *GateSim) CharacterizePulse(pin int, firstDir waveform.Direction, spec PulseGridSpec) (*PulseModel, error) {
	if len(spec.TausFirst) < 2 || len(spec.TausSecond) < 2 || len(spec.Widths) < 2 {
		return nil, fmt.Errorf("macromodel: pulse grid too small")
	}
	grid, err := table.New(spec.TausFirst, spec.TausSecond, spec.Widths)
	if err != nil {
		return nil, err
	}
	err = parallelFill3(grid, spec.Workers, func(sim *GateSim, t1, t2, w float64) (float64, error) {
		return sim.RunPulse(pin, firstDir, t1, t2, w)
	}, g)
	if err != nil {
		return nil, fmt.Errorf("macromodel: pulse characterization: %w", err)
	}
	return &PulseModel{
		Pin:           pin,
		FirstDir:      firstDir,
		PositiveGoing: g.pulsePositive(firstDir),
		Extreme:       grid,
	}, nil
}

// ExtremeAt interpolates the extreme output voltage for a pulse.
func (m *PulseModel) ExtremeAt(ttFirst, ttSecond, width float64) float64 {
	return m.Extreme.Eval(ttFirst, ttSecond, width)
}

// MinWidth returns the smallest input pulse width that still produces a
// complete output transition past the measurement threshold (Vih for
// positive-going output pulses, Vil for negative-going) — the minimum
// transmittable pulse. ok is false when no width in the characterized range
// completes the transition.
func (m *PulseModel) MinWidth(ttFirst, ttSecond float64, th waveform.Thresholds) (width float64, ok bool) {
	level := th.Vil
	if m.PositiveGoing {
		level = th.Vih
	}
	completes := func(w float64) bool {
		v := m.ExtremeAt(ttFirst, ttSecond, w)
		if m.PositiveGoing {
			return v >= level
		}
		return v <= level
	}
	axis := m.Extreme.Axis(2)
	lo, hi := axis[0], axis[len(axis)-1]
	if !completes(hi) {
		return 0, false
	}
	if completes(lo) {
		return lo, true
	}
	for i := 0; i < 60; i++ {
		mid := 0.5 * (lo + hi)
		if completes(mid) {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, true
}
