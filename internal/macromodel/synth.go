package macromodel

import (
	"math"

	"repro/internal/table"
	"repro/internal/waveform"
)

// SynthModel builds a fully analytic GateModel: smooth, deterministic
// single- and dual-input tables with no transient simulation behind them.
// It is not characterized from a cell — its purpose is fast large-scale
// tests and benchmarks of the layers above the macromodel (the proximity
// calculator and the STA engine), where only the qualitative shape of the
// model matters: monotone single-input delays, first-cause speedups that
// fade with separation, last-cause slowdowns that peak near coincidence.
//
// kind selects the causation mapping ("inv", "nand", "nor"); numInputs is
// the pin count. Dual tables follow the paper's per-reference policy (one
// per reference pin), and a small step correction is installed so the
// Section-4 corrective path is exercised too.
func SynthModel(kind string, numInputs int) *GateModel {
	m := &GateModel{
		Kind:      kind,
		NumInputs: numInputs,
		Th:        waveform.Thresholds{Vil: 1.35, Vih: 3.65, Vdd: 5},
		Load:      100e-15,
	}
	taus := table.LogSpace(50e-12, 2e-9, 7)
	for _, dir := range []waveform.Direction{waveform.Rising, waveform.Falling} {
		for pin := 0; pin < numInputs; pin++ {
			m.Singles = append(m.Singles, synthSingle(pin, dir, taus))
		}
	}
	if numInputs < 2 {
		return m
	}
	x1 := table.LogSpace(0.1, 12, 6)
	x2 := table.LogSpace(0.1, 12, 6)
	x3 := []float64{-5, -3, -2, -1.2, -0.7, -0.3, 0, 0.3, 0.7, 1.2, 2, 3.5, 5}
	for _, dir := range []waveform.Direction{waveform.Rising, waveform.Falling} {
		caus := CausationFor(kind, dir)
		for ref := 0; ref < numInputs; ref++ {
			other := (ref + 1) % numInputs
			dG := table.MustNew(x1, x2, x3)
			tG := table.MustNew(x1, x2, x3)
			bias := 0.03 * float64(ref) // mild per-arc asymmetry
			fill := func(g *table.Grid, f func(c Causation, x1, x2, x3, bias float64) float64) {
				_ = g.Fill(func(cc []float64) (float64, error) {
					return f(caus, cc[0], cc[1], cc[2], bias), nil
				})
			}
			fill(dG, synthDelayRatio)
			fill(tG, synthTTRatio)
			m.Duals = append(m.Duals, &DualInputModel{
				RefPin: ref, OtherPin: other, Dir: dir,
				DelayRatio: dG, TTRatio: tG,
			})
		}
		m.SetCorrection(dir, Correction{Delay: 4e-12, OutTT: 2.5e-12})
	}
	// Glitch models follow the same per-reference policy as the duals: one
	// ordered opposite-edge pair per fall pin, (fall=ref, rise=(ref+1)%n).
	// For two-input gates that covers every ordered pair; for wider gates
	// uncharacterized pairs propagate untouched, like a real library with
	// partial glitch characterization.
	negative := kind != "nor"
	for ref := 0; ref < numInputs; ref++ {
		m.Glitches = append(m.Glitches, synthGlitch(ref, (ref+1)%numInputs, negative, m.Th))
	}
	return m
}

// synthGlitch fabricates one Section-6 extreme-voltage grid with the
// qualitative shape the paper measures: a sigmoid in the output pulse width
// that sweeps the extreme output voltage from "no excursion" (runt pulse
// fully absorbed) to "full swing" (transition completes), with the boundary
// shifting later for slower input transitions. The width is oriented by
// polarity — s = fall − rise for a negative-going dip, −s for a
// positive-going bump, matching the physics CharacterizeGlitch would
// measure: a NAND completes when the falling input comes much later, a NOR
// when it comes much earlier. The sigmoid's midpoint stays well inside the
// tabulated s range for every (τ_fall, τ_rise) node, so MinSeparation
// always brackets a genuine boundary.
func synthGlitch(fallPin, risePin int, negative bool, th waveform.Thresholds) *GlitchModel {
	tausF := table.LogSpace(50e-12, 2e-9, 4)
	tausR := table.LogSpace(50e-12, 2e-9, 4)
	seps := table.LinSpace(-1.5e-9, 1.5e-9, 13)
	g := table.MustNew(tausF, tausR, seps)
	_ = g.Fill(func(c []float64) (float64, error) {
		tf, tr, s := c[0], c[1], c[2]
		width := s
		if !negative {
			width = -s
		}
		w0 := 60e-12 + 0.15*tr + 0.1*tf + 20e-12*float64(fallPin)
		w := 40e-12 + 0.08*tr
		// depth in (0, 1): 0 = output never leaves its rail, 1 = full swing.
		depth := 1 / (1 + math.Exp(-(width-w0)/w))
		if negative {
			return th.Vdd * (1 - depth), nil // dip toward ground
		}
		return th.Vdd * depth, nil // bump toward Vdd
	})
	return &GlitchModel{FallPin: fallPin, RisePin: risePin, NegativeGoing: negative, Extreme: g}
}

// synthSingle fabricates one monotone D(1)/T(1) arc: delay and output
// transition time grow affinely with the input transition time, with a
// small per-pin offset so arcs are distinguishable.
func synthSingle(pin int, dir waveform.Direction, taus []float64) *SingleInputModel {
	d0 := 80e-12 + 6e-12*float64(pin)
	slope := 0.32
	if dir == waveform.Falling {
		d0 = 72e-12 + 6e-12*float64(pin)
		slope = 0.28
	}
	s := &SingleInputModel{Pin: pin, Dir: dir, TauAxis: append([]float64(nil), taus...)}
	for _, tau := range taus {
		s.Delay = append(s.Delay, d0+slope*tau)
		s.OutTT = append(s.OutTT, 55e-12+0.45*tau)
		s.NormLoad = append(s.NormLoad, 100e-15/(2e-4*5*tau))
	}
	return s
}

// synthDelayRatio shapes D(2)/D(1) over the normalized coordinates: for
// first-cause (parallel conduction) a second input speeds the output up,
// most when it arrives early (x3 << 0), fading as it approaches the window
// edge; for last-cause (series completion) an earlier input slows the
// output, most near coincidence.
func synthDelayRatio(caus Causation, x1, x2, x3, bias float64) float64 {
	shape := 1 + 0.04*math.Tanh(x1-x2) + bias
	if caus == FirstCause {
		return 1 - 0.22*shape/(1+math.Exp(2*x3))
	}
	return 1 + 0.30*shape*math.Exp(-x3*x3/2)
}

// synthTTRatio is the transition-time analogue with smaller amplitude.
func synthTTRatio(caus Causation, x1, x2, x3, bias float64) float64 {
	shape := 1 + 0.03*math.Tanh(x2-x1) + bias
	if caus == FirstCause {
		return 1 - 0.12*shape/(1+math.Exp(2*x3))
	}
	return 1 + 0.18*shape*math.Exp(-x3*x3/2)
}
