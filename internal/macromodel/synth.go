package macromodel

import (
	"math"

	"repro/internal/table"
	"repro/internal/waveform"
)

// SynthModel builds a fully analytic GateModel: smooth, deterministic
// single- and dual-input tables with no transient simulation behind them.
// It is not characterized from a cell — its purpose is fast large-scale
// tests and benchmarks of the layers above the macromodel (the proximity
// calculator and the STA engine), where only the qualitative shape of the
// model matters: monotone single-input delays, first-cause speedups that
// fade with separation, last-cause slowdowns that peak near coincidence.
//
// kind selects the causation mapping ("inv", "nand", "nor"); numInputs is
// the pin count. Dual tables follow the paper's per-reference policy (one
// per reference pin), and a small step correction is installed so the
// Section-4 corrective path is exercised too.
func SynthModel(kind string, numInputs int) *GateModel {
	m := &GateModel{
		Kind:      kind,
		NumInputs: numInputs,
		Th:        waveform.Thresholds{Vil: 1.35, Vih: 3.65, Vdd: 5},
		Load:      100e-15,
	}
	taus := table.LogSpace(50e-12, 2e-9, 7)
	for _, dir := range []waveform.Direction{waveform.Rising, waveform.Falling} {
		for pin := 0; pin < numInputs; pin++ {
			m.Singles = append(m.Singles, synthSingle(pin, dir, taus))
		}
	}
	if numInputs < 2 {
		return m
	}
	x1 := table.LogSpace(0.1, 12, 6)
	x2 := table.LogSpace(0.1, 12, 6)
	x3 := []float64{-5, -3, -2, -1.2, -0.7, -0.3, 0, 0.3, 0.7, 1.2, 2, 3.5, 5}
	for _, dir := range []waveform.Direction{waveform.Rising, waveform.Falling} {
		caus := CausationFor(kind, dir)
		for ref := 0; ref < numInputs; ref++ {
			other := (ref + 1) % numInputs
			dG := table.MustNew(x1, x2, x3)
			tG := table.MustNew(x1, x2, x3)
			bias := 0.03 * float64(ref) // mild per-arc asymmetry
			fill := func(g *table.Grid, f func(c Causation, x1, x2, x3, bias float64) float64) {
				_ = g.Fill(func(cc []float64) (float64, error) {
					return f(caus, cc[0], cc[1], cc[2], bias), nil
				})
			}
			fill(dG, synthDelayRatio)
			fill(tG, synthTTRatio)
			m.Duals = append(m.Duals, &DualInputModel{
				RefPin: ref, OtherPin: other, Dir: dir,
				DelayRatio: dG, TTRatio: tG,
			})
		}
		m.SetCorrection(dir, Correction{Delay: 4e-12, OutTT: 2.5e-12})
	}
	return m
}

// synthSingle fabricates one monotone D(1)/T(1) arc: delay and output
// transition time grow affinely with the input transition time, with a
// small per-pin offset so arcs are distinguishable.
func synthSingle(pin int, dir waveform.Direction, taus []float64) *SingleInputModel {
	d0 := 80e-12 + 6e-12*float64(pin)
	slope := 0.32
	if dir == waveform.Falling {
		d0 = 72e-12 + 6e-12*float64(pin)
		slope = 0.28
	}
	s := &SingleInputModel{Pin: pin, Dir: dir, TauAxis: append([]float64(nil), taus...)}
	for _, tau := range taus {
		s.Delay = append(s.Delay, d0+slope*tau)
		s.OutTT = append(s.OutTT, 55e-12+0.45*tau)
		s.NormLoad = append(s.NormLoad, 100e-15/(2e-4*5*tau))
	}
	return s
}

// synthDelayRatio shapes D(2)/D(1) over the normalized coordinates: for
// first-cause (parallel conduction) a second input speeds the output up,
// most when it arrives early (x3 << 0), fading as it approaches the window
// edge; for last-cause (series completion) an earlier input slows the
// output, most near coincidence.
func synthDelayRatio(caus Causation, x1, x2, x3, bias float64) float64 {
	shape := 1 + 0.04*math.Tanh(x1-x2) + bias
	if caus == FirstCause {
		return 1 - 0.22*shape/(1+math.Exp(2*x3))
	}
	return 1 + 0.30*shape*math.Exp(-x3*x3/2)
}

// synthTTRatio is the transition-time analogue with smaller amplitude.
func synthTTRatio(caus Causation, x1, x2, x3, bias float64) float64 {
	shape := 1 + 0.03*math.Tanh(x2-x1) + bias
	if caus == FirstCause {
		return 1 - 0.12*shape/(1+math.Exp(2*x3))
	}
	return 1 + 0.18*shape*math.Exp(-x3*x3/2)
}
