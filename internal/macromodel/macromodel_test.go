package macromodel_test

import (
	"math"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/cells"
	"repro/internal/macromodel"
	"repro/internal/spice"
	"repro/internal/vtc"
	"repro/internal/waveform"
)

// nand2Rig caches a NAND2 sim + coarse model for the package's tests.
var (
	rigOnce sync.Once
	rigSim  *macromodel.GateSim
	rigMod  *macromodel.GateModel
	rigErr  error
)

func nand2Rig(t *testing.T) (*macromodel.GateSim, *macromodel.GateModel) {
	t.Helper()
	rigOnce.Do(func() {
		cell := cells.MustNew(cells.Nand, 2, cells.DefaultProcess(), cells.DefaultGeometry())
		fam, err := vtc.Extract(cell, spice.DefaultOptions(), 0.02)
		if err != nil {
			rigErr = err
			return
		}
		rigSim = macromodel.NewGateSim(cell, spice.DefaultOptions(), fam.Thresholds)
		rigMod, rigErr = macromodel.CharacterizeGate(rigSim, macromodel.CoarseCharSpec())
	})
	if rigErr != nil {
		t.Fatal(rigErr)
	}
	return rigSim, rigMod
}

func TestRunValidation(t *testing.T) {
	sim, _ := nand2Rig(t)
	if _, err := sim.Run(nil); err == nil {
		t.Error("empty stimulus accepted")
	}
	if _, err := sim.Run([]macromodel.PinStim{{Pin: 9, Dir: waveform.Falling, TT: 1e-10}}); err == nil {
		t.Error("out-of-range pin accepted")
	}
	if _, err := sim.Run([]macromodel.PinStim{
		{Pin: 0, Dir: waveform.Falling, TT: 1e-10},
		{Pin: 0, Dir: waveform.Rising, TT: 1e-10},
	}); err == nil {
		t.Error("double-stimulated pin accepted")
	}
	if _, err := sim.Run([]macromodel.PinStim{{Pin: 0, Dir: waveform.Falling, TT: 0}}); err == nil {
		t.Error("zero transition time accepted")
	}
}

// TestSingleDelayIncreasesWithTau: slower inputs mean longer measured delay
// (the monotonicity the Section-2 threshold choice guarantees).
func TestSingleDelayIncreasesWithTau(t *testing.T) {
	_, model := nand2Rig(t)
	for _, dir := range []waveform.Direction{waveform.Rising, waveform.Falling} {
		m := model.Single(0, dir)
		if m == nil {
			t.Fatalf("missing single model for %v", dir)
		}
		prev := -1.0
		for _, tau := range []float64{60e-12, 120e-12, 300e-12, 700e-12, 1.4e-9} {
			d := m.DelayAt(tau)
			if d <= prev {
				t.Errorf("%v: delay not increasing at τ=%.0fps: %.1f <= %.1f ps",
					dir, tau*1e12, d*1e12, prev*1e12)
			}
			prev = d
		}
	}
}

// TestPairFarSeparationMatchesSingle: with the other input far outside the
// proximity window, the pair delay equals the single-input delay.
func TestPairFarSeparationMatchesSingle(t *testing.T) {
	sim, _ := nand2Rig(t)
	dir := waveform.Falling
	tau := 300e-12
	single, singleTT, err := sim.RunSingle(0, dir, tau)
	if err != nil {
		t.Fatal(err)
	}
	pair, pairTT, err := sim.RunPair(0, 1, dir, tau, 100e-12, 5e-9)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(pair-single) / single; rel > 0.02 {
		t.Errorf("far pair delay %.1fps deviates from single %.1fps (%.1f%%)",
			pair*1e12, single*1e12, rel*100)
	}
	if rel := math.Abs(pairTT-singleTT) / singleTT; rel > 0.03 {
		t.Errorf("far pair TT %.1fps deviates from single %.1fps", pairTT*1e12, singleTT*1e12)
	}
}

// TestSeparationControl: the harness places the requested threshold-crossing
// separation exactly.
func TestSeparationControl(t *testing.T) {
	sim, _ := nand2Rig(t)
	res, err := sim.Run([]macromodel.PinStim{
		{Pin: 0, Dir: waveform.Falling, TT: 400e-12, Cross: 0},
		{Pin: 1, Dir: waveform.Falling, TT: 150e-12, Cross: 123e-12},
	})
	if err != nil {
		t.Fatal(err)
	}
	th := sim.Th
	s, err := th.Separation(res.PWLs[0], waveform.Falling, res.PWLs[1], waveform.Falling)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s-123e-12) > 1e-15 {
		t.Errorf("constructed separation = %.3fps, want 123ps", s*1e12)
	}
}

// TestDualModelShape: the characterized dual table approaches ratio 1 at the
// far edge of the window and is below 1 near coincidence for falling pairs
// (parallel pull-up speedup).
func TestDualModelShape(t *testing.T) {
	_, model := nand2Rig(t)
	d := model.Dual(0, 1, waveform.Falling)
	if d == nil {
		t.Fatal("missing dual model")
	}
	single := model.Single(0, waveform.Falling)
	tau := 300e-12
	d1 := single.DelayAt(tau)
	x1 := tau / d1
	atWindow := d.EvalDelayRatio(x1, 1.0, 1.0)
	coincident := d.EvalDelayRatio(x1, 1.0, 0.0)
	if math.Abs(atWindow-1) > 0.1 {
		t.Errorf("ratio at window edge = %.3f, want ~1", atWindow)
	}
	if coincident >= atWindow {
		t.Errorf("coincident ratio %.3f should be below window-edge ratio %.3f", coincident, atWindow)
	}
}

func TestGateModelLookups(t *testing.T) {
	_, model := nand2Rig(t)
	if model.Single(0, waveform.Rising) == nil || model.Single(1, waveform.Falling) == nil {
		t.Error("missing single models")
	}
	if model.Single(7, waveform.Rising) != nil {
		t.Error("phantom single model")
	}
	// PerRef policy: exact pair (0,1) exists; (1,0) exists (wraps); any
	// ref with the direction falls back.
	if model.Dual(0, 1, waveform.Falling) == nil {
		t.Error("missing dual (0,1)")
	}
	if model.Dual(1, 0, waveform.Falling) == nil {
		t.Error("missing dual ref 1")
	}
}

func TestCorrectionStorage(t *testing.T) {
	_, model := nand2Rig(t)
	model.SetCorrection(waveform.Rising, macromodel.Correction{Delay: 1e-12, OutTT: -2e-12})
	c := model.Correction(waveform.Rising)
	if c.Delay != 1e-12 || c.OutTT != -2e-12 {
		t.Errorf("correction roundtrip = %+v", c)
	}
	if z := model.Correction(waveform.Falling); z.Delay != 0 && model.Corrections["falling"] == (macromodel.Correction{}) {
		t.Errorf("uncalibrated correction nonzero: %+v", z)
	}
}

func TestModelSaveLoadRoundtrip(t *testing.T) {
	_, model := nand2Rig(t)
	path := filepath.Join(t.TempDir(), "m.json")
	if err := model.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := macromodel.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumInputs != model.NumInputs || back.Kind != model.Kind {
		t.Error("metadata lost")
	}
	s0 := model.Single(0, waveform.Falling)
	s1 := back.Single(0, waveform.Falling)
	for _, tau := range []float64{80e-12, 400e-12, 1e-9} {
		if a, b := s0.DelayAt(tau), s1.DelayAt(tau); math.Abs(a-b) > 1e-18 {
			t.Errorf("single model changed through JSON: %g vs %g", a, b)
		}
	}
	d0 := model.Dual(0, 1, waveform.Falling)
	d1 := back.Dual(0, 1, waveform.Falling)
	if a, b := d0.EvalDelayRatio(1, 1, 0.5), d1.EvalDelayRatio(1, 1, 0.5); math.Abs(a-b) > 1e-18 {
		t.Errorf("dual model changed through JSON: %g vs %g", a, b)
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := macromodel.Load(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestNormalizedForms(t *testing.T) {
	_, model := nand2Rig(t)
	s := model.Single(0, waveform.Falling)
	u, dOverTau := s.NormalizedDelay()
	if len(u) != len(s.TauAxis) || len(dOverTau) != len(s.TauAxis) {
		t.Fatal("normalized form length mismatch")
	}
	// u = CL/(K·Vdd·τ) decreases as τ increases.
	for i := 1; i < len(u); i++ {
		if u[i] >= u[i-1] {
			t.Errorf("normalized load not decreasing: u[%d]=%g u[%d]=%g", i-1, u[i-1], i, u[i])
		}
	}
	_, ttOverTau := s.NormalizedOutTT()
	for _, v := range ttOverTau {
		if v <= 0 {
			t.Errorf("non-positive normalized transition time %g", v)
		}
	}
}

func TestCausationMapping(t *testing.T) {
	cases := []struct {
		kind string
		dir  waveform.Direction
		want macromodel.Causation
	}{
		{"nand", waveform.Falling, macromodel.FirstCause},
		{"nand", waveform.Rising, macromodel.LastCause},
		{"nor", waveform.Rising, macromodel.FirstCause},
		{"nor", waveform.Falling, macromodel.LastCause},
		{"inv", waveform.Falling, macromodel.FirstCause},
	}
	for _, c := range cases {
		if got := macromodel.CausationFor(c.kind, c.dir); got != c.want {
			t.Errorf("CausationFor(%s, %v) = %v, want %v", c.kind, c.dir, got, c.want)
		}
	}
}

func TestCharacterizeValidation(t *testing.T) {
	sim, model := nand2Rig(t)
	if _, err := sim.CharacterizeSingle(0, waveform.Falling, []float64{1e-10}); err == nil {
		t.Error("single-point τ grid accepted")
	}
	if _, err := sim.CharacterizeSingle(0, waveform.Falling, []float64{2e-10, 1e-10}); err == nil {
		t.Error("unsorted τ grid accepted")
	}
	s0 := model.Single(0, waveform.Falling)
	if _, err := sim.CharacterizeDual(0, 0, waveform.Falling, s0, s0, macromodel.CoarseDualGrid()); err == nil {
		t.Error("dual model with identical pins accepted")
	}
}

// TestGlitchModelShape: the glitch extreme approaches the settled rails on
// both ends of the separation axis.
func TestGlitchModelShape(t *testing.T) {
	sim, _ := nand2Rig(t)
	spec := macromodel.GlitchGridSpec{
		TausFall: []float64{100e-12, 500e-12},
		TausRise: []float64{100e-12, 500e-12},
		Seps:     []float64{-1.5e-9, -0.75e-9, 0, 0.5e-9, 1e-9, 1.5e-9, 2e-9},
	}
	gm, err := sim.CharacterizeGlitch(0, 1, spec)
	if err != nil {
		t.Fatal(err)
	}
	// Falling input far EARLY (s very negative): the rising input cuts the
	// output down right after — the output ends low either way, but the
	// extreme (minimum) is low only when the down-transition completes,
	// which needs the fall LATE. Check monotone trend.
	early := gm.ExtremeAt(500e-12, 500e-12, -1.5e-9)
	late := gm.ExtremeAt(500e-12, 500e-12, 2e-9)
	if !(late < early) {
		t.Errorf("glitch extreme should deepen with later falling input: early=%.2f late=%.2f", early, late)
	}
	// Inertial delay exists within this range for some corner.
	th := sim.Th
	if _, ok := gm.MinSeparation(500e-12, 500e-12, th); !ok {
		t.Error("no inertial boundary found in range")
	}
}

// TestRunGlitchDirect confirms the simulator-level glitch measurement.
func TestRunGlitchDirect(t *testing.T) {
	sim, _ := nand2Rig(t)
	// Coincident opposite transitions: output dips but does not complete.
	v, err := sim.RunGlitch(0, 1, 500e-12, 500e-12, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v < 0.5 || v > 5 {
		t.Errorf("coincident glitch extreme = %.2f, expected a partial dip", v)
	}
	// Fall long after rise: full transition to ground happens first.
	v2, err := sim.RunGlitch(0, 1, 100e-12, 100e-12, 2e-9)
	if err != nil {
		t.Fatal(err)
	}
	if v2 > 0.2 {
		t.Errorf("well-separated pair should complete the fall: extreme = %.2f", v2)
	}
}
