package macromodel

import (
	"fmt"

	"repro/internal/fit"
	"repro/internal/waveform"
)

// AnalyticDual is a closed-form (polynomial) rendering of a characterized
// dual-input proximity model: two fitted polynomials over the same
// normalized coordinates as the tables. It implements the paper's Section-3
// remark that closed analytical forms of D(2)/T(2) exist, and shrinks the
// per-model storage from |grid| entries to a few dozen coefficients.
type AnalyticDual struct {
	RefPin   int                `json:"refPin"`
	OtherPin int                `json:"otherPin"`
	Dir      waveform.Direction `json:"dir"`

	Delay *fit.Poly `json:"delay"`
	TT    *fit.Poly `json:"tt"`
	// DelayRMS and TTRMS record the fit residuals over the source grid.
	DelayRMS float64 `json:"delayRMS"`
	TTRMS    float64 `json:"ttRMS"`
}

// FitDual fits polynomials of the given total degree to a tabulated dual
// model. Degree 4 reproduces the default grids to ~1-2% RMS.
func FitDual(m *DualInputModel, degree int) (*AnalyticDual, error) {
	xs, dys, tys := gridSamples(m)
	dp, err := fit.Fit(xs, dys, 3, degree)
	if err != nil {
		return nil, fmt.Errorf("macromodel: fit delay ratio: %w", err)
	}
	tp, err := fit.Fit(xs, tys, 3, degree)
	if err != nil {
		return nil, fmt.Errorf("macromodel: fit tt ratio: %w", err)
	}
	return &AnalyticDual{
		RefPin:   m.RefPin,
		OtherPin: m.OtherPin,
		Dir:      m.Dir,
		Delay:    dp,
		TT:       tp,
		DelayRMS: dp.RMSError(xs, dys),
		TTRMS:    tp.RMSError(xs, tys),
	}, nil
}

// gridSamples flattens a dual model's grids into fitting samples.
func gridSamples(m *DualInputModel) (xs [][]float64, dys, tys []float64) {
	ax0 := m.DelayRatio.Axis(0)
	ax1 := m.DelayRatio.Axis(1)
	ax2 := m.DelayRatio.Axis(2)
	for i, x1 := range ax0 {
		for j, x2 := range ax1 {
			for k, x3 := range ax2 {
				xs = append(xs, []float64{x1, x2, x3})
				dys = append(dys, m.DelayRatio.At(i, j, k))
				tys = append(tys, m.TTRatio.At(i, j, k))
			}
		}
	}
	return xs, dys, tys
}

// EvalDelayRatio evaluates the analytic D(2).
func (a *AnalyticDual) EvalDelayRatio(x1, x2, x3 float64) float64 {
	return a.Delay.Eval(x1, x2, x3)
}

// EvalTTRatio evaluates the analytic T(2).
func (a *AnalyticDual) EvalTTRatio(x1, x2, x3 float64) float64 {
	return a.TT.Eval(x1, x2, x3)
}

// AnalyticModel carries analytic duals for a whole gate, addressed like
// GateModel.Dual.
type AnalyticModel struct {
	Duals []*AnalyticDual `json:"duals"`
}

// FitGate fits every dual table of a gate model.
func FitGate(m *GateModel, degree int) (*AnalyticModel, error) {
	out := &AnalyticModel{}
	for _, d := range m.Duals {
		a, err := FitDual(d, degree)
		if err != nil {
			return nil, fmt.Errorf("macromodel: dual (%d,%d) %v: %w", d.RefPin, d.OtherPin, d.Dir, err)
		}
		out.Duals = append(out.Duals, a)
	}
	return out, nil
}

// Dual returns the analytic model for a reference pin and direction,
// preferring an exact pair match.
func (am *AnalyticModel) Dual(ref, other int, dir waveform.Direction) *AnalyticDual {
	var fallback *AnalyticDual
	for _, d := range am.Duals {
		if d.Dir != dir || d.RefPin != ref {
			continue
		}
		if d.OtherPin == other {
			return d
		}
		if fallback == nil {
			fallback = d
		}
	}
	return fallback
}
