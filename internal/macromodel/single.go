package macromodel

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/table"
	"repro/internal/waveform"
)

// Clone builds an independent GateSim over a fresh copy of the cell, for
// concurrent characterization workers.
func (g *GateSim) Clone() *GateSim {
	cell := g.Cell
	fresh, err := cellsNew(cell)
	if err != nil {
		panic(fmt.Sprintf("macromodel: clone: %v", err))
	}
	return &GateSim{Cell: fresh, Opt: g.Opt, Th: g.Th, Settle: g.Settle}
}

// SingleInputModel is the characterized D(1)/T(1) macromodel of one
// (pin, input-direction) arc: delay and output transition time versus input
// transition time, stored on a log-spaced τ axis and interpolated in ln(τ).
type SingleInputModel struct {
	Pin int                `json:"pin"`
	Dir waveform.Direction `json:"dir"`

	// TauAxis is the characterized input-transition-time grid (seconds).
	TauAxis []float64 `json:"tauAxis"`
	// Delay[i] and OutTT[i] are the measured delay and output transition
	// time at TauAxis[i].
	Delay []float64 `json:"delay"`
	OutTT []float64 `json:"outTT"`

	// NormLoad[i] is the paper's dimensionless load CL/(Kn·Vdd·τ) at each
	// grid point — exposed so the normalized forms (3.7)/(3.8) can be
	// plotted and reused across loads.
	NormLoad []float64 `json:"normLoad"`
}

// CharacterizeSingle sweeps the τ grid for one pin/direction.
func (g *GateSim) CharacterizeSingle(pin int, dir waveform.Direction, taus []float64) (*SingleInputModel, error) {
	if len(taus) < 2 {
		return nil, fmt.Errorf("macromodel: need at least two τ points")
	}
	if !sort.Float64sAreSorted(taus) {
		return nil, fmt.Errorf("macromodel: τ grid must be sorted")
	}
	m := &SingleInputModel{Pin: pin, Dir: dir, TauAxis: append([]float64(nil), taus...)}
	// K of the driving device stack per the paper's normalization: the
	// strength of one transistor on the switching pin's opposing network
	// (n-strength for rising inputs discharging the output, p for falling).
	k := g.pinStrength(pin, dir)
	vdd := g.Th.Vdd
	cl := g.Cell.Load()
	for _, tau := range taus {
		d, tt, err := g.RunSingle(pin, dir, tau)
		if err != nil {
			return nil, err
		}
		if d <= 0 {
			return nil, fmt.Errorf("macromodel: negative single-input delay %.3g at τ=%.3g (threshold policy violated?)", d, tau)
		}
		m.Delay = append(m.Delay, d)
		m.OutTT = append(m.OutTT, tt)
		m.NormLoad = append(m.NormLoad, cl/(k*vdd*tau))
	}
	return m, nil
}

// pinStrength returns the strength K = µCox/2·W/L of the transistor that the
// pin's transition turns on (the device charging or discharging the output).
func (g *GateSim) pinStrength(pin int, dir waveform.Direction) float64 {
	// For NAND/INV: rising input turns on the NMOS pull-down; falling
	// turns on the PMOS pull-up. NOR is the same pairing.
	geom := g.Cell.Geom
	if dir == waveform.Rising {
		return 0.5 * g.Cell.Proc.NMOS.KP * geom.WN / geom.L
	}
	return 0.5 * g.Cell.Proc.PMOS.KP * geom.WP / geom.L
}

// interpLogTau interpolates ys over the model's τ axis at τ, linear in
// ln(τ), clamped at the ends.
func (m *SingleInputModel) interpLogTau(ys []float64, tau float64) float64 {
	ax := m.TauAxis
	n := len(ax)
	if tau <= ax[0] {
		return ys[0]
	}
	if tau >= ax[n-1] {
		return ys[n-1]
	}
	i := sort.SearchFloat64s(ax, tau)
	if ax[i] == tau {
		return ys[i]
	}
	lo, hi := ax[i-1], ax[i]
	f := (math.Log(tau) - math.Log(lo)) / (math.Log(hi) - math.Log(lo))
	return ys[i-1] + f*(ys[i]-ys[i-1])
}

// DelayAt returns Δ(1) for an input transition time τ.
func (m *SingleInputModel) DelayAt(tau float64) float64 { return m.interpLogTau(m.Delay, tau) }

// OutTTAt returns τ(1)_out for an input transition time τ.
func (m *SingleInputModel) OutTTAt(tau float64) float64 { return m.interpLogTau(m.OutTT, tau) }

// NormalizedDelay returns the paper's equation-(3.7) view of the model:
// pairs (u, Δ/τ) with u = CL/(K·Vdd·τ).
func (m *SingleInputModel) NormalizedDelay() (u, dOverTau []float64) {
	u = append([]float64(nil), m.NormLoad...)
	dOverTau = make([]float64, len(m.Delay))
	for i := range m.Delay {
		dOverTau[i] = m.Delay[i] / m.TauAxis[i]
	}
	return u, dOverTau
}

// NormalizedOutTT returns the equation-(3.8) view: pairs (u, τ_out/τ).
func (m *SingleInputModel) NormalizedOutTT() (u, ttOverTau []float64) {
	u = append([]float64(nil), m.NormLoad...)
	ttOverTau = make([]float64, len(m.OutTT))
	for i := range m.OutTT {
		ttOverTau[i] = m.OutTT[i] / m.TauAxis[i]
	}
	return u, ttOverTau
}

// DefaultTauGrid returns the characterization grid used throughout the repo:
// log-spaced input transition times covering the paper's 50 ps – 2000 ps
// experimental range with margin.
func DefaultTauGrid() []float64 { return table.LogSpace(30e-12, 3e-9, 10) }
