package sta_test

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/sta"
	"repro/internal/waveform"
)

// TestCompiledMatchesAnalyze: the precompiled handle must reproduce
// Circuit.AnalyzeOpts exactly — same arrivals, same stats — and report the
// schedule shape it captured.
func TestCompiledMatchesAnalyze(t *testing.T) {
	c, err := sta.SynthRandom(32, 1200, 11)
	if err != nil {
		t.Fatal(err)
	}
	p, err := c.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if p.NumGates() != 1200 || p.NumLevels() < 2 || p.Circuit() != c {
		t.Fatalf("handle shape: gates=%d levels=%d", p.NumGates(), p.NumLevels())
	}
	evs := sta.SynthEvents(c, 5)
	ref, err := c.AnalyzeOpts(evs, sta.Proximity, sta.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.Analyze(context.Background(), evs, sta.Proximity, sta.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	compareResults(t, c, ref, got, "compiled")

	batch := [][]sta.PIEvent{evs, sta.SynthEvents(c, 6), sta.SynthEvents(c, 7)}
	results, err := p.AnalyzeBatch(context.Background(), batch, sta.Proximity, sta.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	compareResults(t, c, ref, results[0], "compiled batch[0]")
}

// TestCompiledCancellation: an already-canceled context must abort both the
// single-vector and the batch path with a context error, not run to
// completion.
func TestCompiledCancellation(t *testing.T) {
	c, in, _, err := sta.SynthChain(64)
	if err != nil {
		t.Fatal(err)
	}
	p, err := c.Compile()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	evs := []sta.PIEvent{{Net: in, Dir: waveform.Rising, Time: 0, TT: 200e-12}}
	if _, err := p.Analyze(ctx, evs, sta.Proximity, sta.Options{Workers: 1}); !errors.Is(err, context.Canceled) {
		t.Fatalf("Analyze on canceled ctx: %v", err)
	}
	if _, err := p.AnalyzeBatch(ctx, [][]sta.PIEvent{evs, evs}, sta.Proximity, sta.Options{Workers: 2}); !errors.Is(err, context.Canceled) {
		t.Fatalf("AnalyzeBatch on canceled ctx: %v", err)
	}
}

// TestWriteNetlistRoundTrip: serialize a random circuit, re-parse it over
// the same library, and require an identical levelized schedule and
// identical analysis results.
func TestWriteNetlistRoundTrip(t *testing.T) {
	c, err := sta.SynthRandom(16, 400, 9)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := sta.WriteNetlist(&sb, c); err != nil {
		t.Fatal(err)
	}
	c2, err := sta.ParseNetlist(strings.NewReader(sb.String()), sta.SynthLibrary(3))
	if err != nil {
		t.Fatalf("re-parse: %v\nnetlist:\n%s", err, sb.String())
	}
	if len(c2.Gates) != len(c.Gates) || len(c2.PIs) != len(c.PIs) || len(c2.POs) != len(c.POs) {
		t.Fatalf("round trip changed shape: %d/%d gates, %d/%d PIs, %d/%d POs",
			len(c2.Gates), len(c.Gates), len(c2.PIs), len(c.PIs), len(c2.POs), len(c.POs))
	}
	evs := sta.SynthEvents(c, 3)
	evs2 := make([]sta.PIEvent, len(evs))
	for i, ev := range evs {
		evs2[i] = sta.PIEvent{Net: c2.Net(ev.Net.Name), Dir: ev.Dir, Time: ev.Time, TT: ev.TT}
	}
	r1, err := c.Analyze(evs, sta.Proximity)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := c2.Analyze(evs2, sta.Proximity)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range c.NetsByName() {
		for _, dir := range []waveform.Direction{waveform.Rising, waveform.Falling} {
			a1, ok1 := r1.Arrival(c.Net(name), dir)
			a2, ok2 := r2.Arrival(c2.Net(name), dir)
			if ok1 != ok2 || (ok1 && (a1.Time != a2.Time || a1.TT != a2.TT)) {
				t.Fatalf("net %s %v: %v/%v vs %v/%v", name, dir, ok1, a1, ok2, a2)
			}
		}
	}
}
