package sta_test

import (
	"math"
	"strings"
	"testing"

	"repro/internal/sta"
	"repro/internal/waveform"
)

// boundaryCircuit is a small nand2 circuit over the synthetic library: two
// primary inputs, one internal net, one output.
func boundaryCircuit(t *testing.T) *sta.Circuit {
	t.Helper()
	c := sta.NewCircuit(sta.SynthLibrary(2))
	a, b := c.Input("a"), c.Input("b")
	x, err := c.AddGate("g1", "nand2", "x", a, b)
	if err != nil {
		t.Fatal(err)
	}
	y, err := c.AddGate("g2", "inv", "y", x)
	if err != nil {
		t.Fatal(err)
	}
	c.MarkOutput(y)
	return c
}

func ev(c *sta.Circuit, net string, dir waveform.Direction, tt, at float64) sta.PIEvent {
	return sta.PIEvent{Net: c.Net(net), Dir: dir, TT: tt, Time: at}
}

// TestAnalyzeBoundaryContract enumerates every engine rejection path and
// requires each error to name the offending net, so a service mapping these
// to 400s gives clients something actionable.
func TestAnalyzeBoundaryContract(t *testing.T) {
	c := boundaryCircuit(t)
	okA := func() sta.PIEvent { return ev(c, "a", waveform.Rising, 300e-12, 0) }
	cases := []struct {
		name     string
		events   []sta.PIEvent
		wantName string // substring the error must carry
	}{
		{"empty vector", nil, "empty"},
		{"event on internal net", []sta.PIEvent{ev(c, "x", waveform.Rising, 300e-12, 0)}, "x"},
		{"event on output net", []sta.PIEvent{ev(c, "y", waveform.Rising, 300e-12, 0)}, "y"},
		{"duplicate event", []sta.PIEvent{okA(), okA()}, "a"},
		{"zero TT", []sta.PIEvent{ev(c, "a", waveform.Rising, 0, 0)}, "a"},
		{"negative TT", []sta.PIEvent{ev(c, "a", waveform.Rising, -1e-12, 0)}, "a"},
		{"NaN TT", []sta.PIEvent{ev(c, "a", waveform.Rising, math.NaN(), 0)}, "a"},
		{"+Inf TT", []sta.PIEvent{ev(c, "a", waveform.Rising, math.Inf(1), 0)}, "a"},
		{"-Inf TT", []sta.PIEvent{ev(c, "a", waveform.Rising, math.Inf(-1), 0)}, "a"},
		{"NaN time", []sta.PIEvent{ev(c, "a", waveform.Rising, 300e-12, math.NaN())}, "a"},
		{"+Inf time", []sta.PIEvent{ev(c, "a", waveform.Rising, 300e-12, math.Inf(1))}, "a"},
		{"-Inf time", []sta.PIEvent{ev(c, "a", waveform.Rising, 300e-12, math.Inf(-1))}, "a"},
	}
	for _, mode := range []sta.Mode{sta.Proximity, sta.Conventional} {
		for _, tc := range cases {
			t.Run(mode.String()+"/"+tc.name, func(t *testing.T) {
				res, err := c.Analyze(tc.events, mode)
				if err == nil {
					t.Fatalf("accepted %s; result %+v", tc.name, res)
				}
				if !strings.Contains(err.Error(), tc.wantName) {
					t.Errorf("error %q does not name %q", err, tc.wantName)
				}
			})
		}
	}

	// Opposite-direction events on the same PI are two distinct transitions,
	// not duplicates — the boundary must not over-reject.
	if _, err := c.Analyze([]sta.PIEvent{
		ev(c, "a", waveform.Rising, 300e-12, 0),
		ev(c, "a", waveform.Falling, 300e-12, 500e-12),
		ev(c, "b", waveform.Rising, 250e-12, 20e-12),
	}, sta.Proximity); err != nil {
		t.Fatalf("valid opposite-direction events rejected: %v", err)
	}
}

// TestParseEventsBoundaryContract covers the textual event boundary,
// including the NaN/Inf literals strconv.ParseFloat happily accepts.
func TestParseEventsBoundaryContract(t *testing.T) {
	c := boundaryCircuit(t)
	bad := []struct {
		name string
		spec string
	}{
		{"unknown net", "zz:rise:300:0"},
		{"bad direction", "a:sideways:300:0"},
		{"zero tt", "a:rise:0:0"},
		{"negative tt", "a:rise:-5:0"},
		{"NaN tt", "a:rise:NaN:0"},
		{"+Inf tt", "a:rise:Inf:0"},
		{"-Inf tt", "a:rise:-Inf:0"},
		{"NaN time", "a:rise:300:NaN"},
		{"Inf time", "a:rise:300:+Inf"},
		{"malformed", "a:rise:300"},
		{"empty list", " , , "},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			if evs, err := sta.ParseEvents(c, tc.spec); err == nil {
				t.Fatalf("accepted %q: %+v", tc.spec, evs)
			}
		})
	}
	evs, err := sta.ParseEvents(c, "a:rise:300:0,b:f:250:15")
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 2 {
		t.Fatalf("parsed %d events, want 2", len(evs))
	}
}

// TestMarkOutputDedup: declaring the same output twice (e.g. a duplicated
// `output` line, or overlapping output directives) must not duplicate the
// net in POs — duplicated POs duplicate arrivals in every report.
func TestMarkOutputDedup(t *testing.T) {
	c := boundaryCircuit(t)
	y := c.Net("y")
	before := len(c.POs)
	c.MarkOutput(y)
	c.MarkOutput(y)
	if len(c.POs) != before {
		t.Fatalf("duplicate MarkOutput grew POs to %d (was %d)", len(c.POs), before)
	}

	// The parser path: a netlist repeating the output declaration.
	lib := sta.SynthLibrary(2)
	netlist := "input a b\ngate g1 nand2 y a b\noutput y\noutput y y"
	c2, err := sta.ParseNetlist(strings.NewReader(netlist), lib)
	if err != nil {
		t.Fatal(err)
	}
	if len(c2.POs) != 1 {
		t.Fatalf("parsed circuit has %d POs, want 1", len(c2.POs))
	}
}
