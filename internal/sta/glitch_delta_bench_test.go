package sta

// Filtered-delta benchmark: the point of wiring Section-6 filtering through
// AnalyzeDelta is that ECO traffic on a glitch-aware signoff flow keeps the
// delta path's asymptotics — the verdict re-judging must not force the walk
// back to full-cone work. The recorded number is single-PI re-timing on the
// runt-heavy tiled workload, filtered delta against a kept filtered baseline
// vs a full filtered cone-pruned sparse re-analysis of the edited vector.

import (
	"context"
	"encoding/json"
	"os"
	"strconv"
	"testing"
	"time"
)

// glitchPerturbOne returns the runt-heavy vector with event i%len shifted by
// a few picoseconds — enough to move nearby pairs across the inertial
// boundary sometimes, so the delta path re-judges rather than fast-pathing.
func glitchPerturbOne(evs []PIEvent, i int) ([]PIEvent, PIEvent) {
	k := i % len(evs)
	ev := evs[k]
	ev.Time += float64(i%7+1) * 1e-12
	out := append([]PIEvent(nil), evs...)
	out[k] = ev
	return out, ev
}

func BenchmarkGlitchDelta(b *testing.B) {
	c, evs := getGlitchBench(b)
	p, err := c.Compile()
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	opt := Options{Workers: 1, PulseFiltering: true}
	baseline, err := p.Analyze(ctx, evs, Proximity, opt)
	if err != nil {
		b.Fatal(err)
	}

	b.Run("full-sparse", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			edited, _ := glitchPerturbOne(evs, i)
			if _, err := p.Analyze(ctx, edited, Proximity, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("delta", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, ev := glitchPerturbOne(evs, i)
			if _, err := p.AnalyzeDelta(ctx, baseline, Delta{Set: []PIEvent{ev}}, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// glitchDeltaBenchResult is the BENCH_glitch_delta.json schema.
type glitchDeltaBenchResult struct {
	Timestamp    string `json:"timestamp"`
	NetlistGates int    `json:"netlistGates"`
	NetlistPIs   int    `json:"netlistPIs"`

	// Baseline verdict counts on the runt-heavy stimulus — zero judged
	// pulses would make the "filtered delta" measurement an unfiltered one
	// in disguise.
	PulsesFiltered int `json:"pulsesFiltered"`
	PulsesDegraded int `json:"pulsesDegraded"`

	FullSparseSecPerQuery float64 `json:"fullSparseSecPerQuery"`
	DeltaSecPerQuery      float64 `json:"deltaSecPerQuery"`
	// Speedup = FullSparseSecPerQuery / DeltaSecPerQuery (the acceptance
	// bar is 5x, matching the unfiltered delta bar — filtering must not
	// cost the delta path its asymptotics).
	Speedup float64 `json:"speedup"`

	SampleGatesReevaluated int `json:"sampleGatesReevaluated"`
	SampleGatesReused      int `json:"sampleGatesReused"`
}

// TestWriteGlitchDeltaBench regenerates BENCH_glitch_delta.json when
// BENCH_GLITCH_DELTA_OUT names the output path (skipped in normal runs):
//
//	BENCH_GLITCH_DELTA_OUT=$(pwd)/BENCH_glitch_delta.json go test -run TestWriteGlitchDeltaBench ./internal/sta/
//
// Acceptance bar: ≥5x over full filtered sparse re-analysis on single-PI
// perturbations of the runt-heavy tiled workload.
func TestWriteGlitchDeltaBench(t *testing.T) {
	out := os.Getenv("BENCH_GLITCH_DELTA_OUT")
	if out == "" {
		t.Skip("set BENCH_GLITCH_DELTA_OUT to regenerate BENCH_glitch_delta.json")
	}
	c, evs := getGlitchBench(t)
	p, err := c.Compile()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	opt := Options{Workers: 1, PulseFiltering: true}
	baseline, err := p.Analyze(ctx, evs, Proximity, opt)
	if err != nil {
		t.Fatal(err)
	}
	if baseline.Stats.PulsesFiltered+baseline.Stats.PulsesDegraded == 0 {
		t.Fatal("runt-heavy baseline judged no pulses — benchmark is vacuous")
	}

	fullSec := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			edited, _ := glitchPerturbOne(evs, i)
			if _, err := p.Analyze(ctx, edited, Proximity, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
	deltaSec := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, ev := glitchPerturbOne(evs, i)
			if _, err := p.AnalyzeDelta(ctx, baseline, Delta{Set: []PIEvent{ev}}, opt); err != nil {
				b.Fatal(err)
			}
		}
	})

	_, sampleEv := glitchPerturbOne(evs, 0)
	sample, err := p.AnalyzeDelta(ctx, baseline, Delta{Set: []PIEvent{sampleEv}}, opt)
	if err != nil {
		t.Fatal(err)
	}

	res := glitchDeltaBenchResult{
		Timestamp:    time.Now().UTC().Format(time.RFC3339),
		NetlistGates: mcBenchTiles * mcBenchGatesPerTile,
		NetlistPIs:   mcBenchTiles * mcBenchPIsPerTile,

		PulsesFiltered: baseline.Stats.PulsesFiltered,
		PulsesDegraded: baseline.Stats.PulsesDegraded,

		FullSparseSecPerQuery:  fullSec.T.Seconds() / float64(fullSec.N),
		DeltaSecPerQuery:       deltaSec.T.Seconds() / float64(deltaSec.N),
		SampleGatesReevaluated: sample.Stats.GatesReevaluated,
		SampleGatesReused:      sample.Stats.GatesReused,
	}
	res.Speedup = res.FullSparseSecPerQuery / res.DeltaSecPerQuery

	if res.Speedup < 5 {
		t.Errorf("filtered delta speedup %.2fx over full filtered sparse, acceptance bar is 5x", res.Speedup)
	}

	data, err := json.MarshalIndent(res, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("filtered delta %.2fx (%.3fms -> %.3fms per query, %d/%d gates re-evaluated); wrote %s",
		res.Speedup, res.FullSparseSecPerQuery*1e3, res.DeltaSecPerQuery*1e3,
		res.SampleGatesReevaluated, res.SampleGatesReevaluated+res.SampleGatesReused, out)
}

// TestBenchGuardGlitchDelta compares today's filtered-delta speedup against
// the recorded BENCH_glitch_delta.json, gated behind BENCH_GUARD=1. Both
// sides of the ratio are measured in one process, so machine-wide slowdowns
// cancel; margin via BENCH_GUARD_MARGIN (default 1.25x).
func TestBenchGuardGlitchDelta(t *testing.T) {
	if os.Getenv("BENCH_GUARD") == "" {
		t.Skip("set BENCH_GUARD=1 to compare against BENCH_glitch_delta.json")
	}
	margin := 1.25
	if s := os.Getenv("BENCH_GUARD_MARGIN"); s != "" {
		m, err := strconv.ParseFloat(s, 64)
		if err != nil {
			t.Fatalf("bad BENCH_GUARD_MARGIN %q: %v", s, err)
		}
		margin = m
	}
	data, err := os.ReadFile("../../BENCH_glitch_delta.json")
	if err != nil {
		t.Fatalf("no baseline: %v", err)
	}
	var base glitchDeltaBenchResult
	if err := json.Unmarshal(data, &base); err != nil {
		t.Fatal(err)
	}
	if base.Speedup <= 0 {
		t.Fatalf("baseline incomplete: %+v", base)
	}

	c, evs := getGlitchBench(t)
	p, err := c.Compile()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	opt := Options{Workers: 1, PulseFiltering: true}
	baseline, err := p.Analyze(ctx, evs, Proximity, opt)
	if err != nil {
		t.Fatal(err)
	}
	fullSec := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			edited, _ := glitchPerturbOne(evs, i)
			if _, err := p.Analyze(ctx, edited, Proximity, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
	deltaSec := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, ev := glitchPerturbOne(evs, i)
			if _, err := p.AnalyzeDelta(ctx, baseline, Delta{Set: []PIEvent{ev}}, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
	speedup := (fullSec.T.Seconds() / float64(fullSec.N)) / (deltaSec.T.Seconds() / float64(deltaSec.N))
	t.Logf("filtered delta speedup %.2fx (baseline %.2fx)", speedup, base.Speedup)
	if speedup < base.Speedup/margin {
		t.Errorf("filtered delta speedup shrank to %.2fx from the recorded %.2fx (margin %.2f) — re-judging cost crept into the walk",
			speedup, base.Speedup, margin)
	}
}
