package sta_test

// Filtered-delta edge shapes. Each test drives AnalyzeDelta over a
// pulse-filtered baseline through one of the shapes the naive
// arrival-bit-equality cutoff gets wrong, and demands the result be
// bit-identical to a fresh full filtered analysis of the edited vector —
// arrivals, PulseInfo records and pulse counters alike.

import (
	"testing"

	"repro/internal/sta"
	"repro/internal/waveform"
)

// requireFilteredDeltaIdentical compares a delta result against a fresh full
// filtered analysis of the edited vector, bit for bit: every net's arrivals,
// every pulse verdict, and the pulse counters.
func requireFilteredDeltaIdentical(t *testing.T, c *sta.Circuit, got *sta.Result, edited []sta.PIEvent) *sta.Result {
	t.Helper()
	want, err := c.AnalyzeOpts(edited, sta.Proximity, sta.Options{PulseFiltering: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range c.NetsByName() {
		n := c.Net(name)
		for _, dir := range []waveform.Direction{waveform.Rising, waveform.Falling} {
			wa, okW := want.Arrival(n, dir)
			ga, okG := got.Arrival(n, dir)
			if okW != okG || wa != ga {
				t.Fatalf("net %s %v: delta %+v (present=%v), full filtered %+v (present=%v)",
					name, dir, ga, okG, wa, okW)
			}
		}
		wp, okW := want.Pulse(n)
		gp, okG := got.Pulse(n)
		if okW != okG || wp != gp {
			t.Fatalf("net %s: delta verdict %+v (recorded=%v), full filtered %+v (recorded=%v)",
				name, gp, okG, wp, okW)
		}
	}
	if got.Stats.PulsesFiltered != want.Stats.PulsesFiltered ||
		got.Stats.PulsesDegraded != want.Stats.PulsesDegraded ||
		got.Stats.PulsesUnjudged != want.Stats.PulsesUnjudged {
		t.Fatalf("pulse counters: delta %d/%d/%d, full filtered %d/%d/%d",
			got.Stats.PulsesFiltered, got.Stats.PulsesDegraded, got.Stats.PulsesUnjudged,
			want.Stats.PulsesFiltered, want.Stats.PulsesDegraded, want.Stats.PulsesUnjudged)
	}
	if got.Stats.Evaluations != want.Stats.Evaluations ||
		got.Stats.ProximityEvals != want.Stats.ProximityEvals ||
		got.Stats.SingleArcEvals != want.Stats.SingleArcEvals ||
		got.Stats.GatesEvaluated != want.Stats.GatesEvaluated {
		t.Fatalf("evaluation counters: delta evals=%d prox=%d single=%d gates=%d, full filtered evals=%d prox=%d single=%d gates=%d",
			got.Stats.Evaluations, got.Stats.ProximityEvals, got.Stats.SingleArcEvals, got.Stats.GatesEvaluated,
			want.Stats.Evaluations, want.Stats.ProximityEvals, want.Stats.SingleArcEvals, want.Stats.GatesEvaluated)
	}
	return want
}

// TestDeltaResurrectsAbsorbedPairByWidening: the baseline absorbed the pair
// (no committed arrivals), so with the naive cutoff a re-evaluation that
// reproduces "no arrivals vs no arrivals" would look like a dead wavefront.
// Widening the separation past the inertial delay must instead resurrect
// BOTH edges (as a degraded pair) and propagate them downstream.
func TestDeltaResurrectsAbsorbedPairByWidening(t *testing.T) {
	c, a, b, out := pulsePair(t)
	out2, err := c.AddGate("g2", "inv", "n2", out)
	if err != nil {
		t.Fatal(err)
	}
	c.MarkOutput(out2)
	minSep := pulseMinSep(t, pulseTTFall, pulseTTRise)
	base, err := c.AnalyzeOpts(pulseVector(a, b, pulseTTFall, pulseTTRise, minSep-50e-12),
		sta.Proximity, sta.Options{PulseFiltering: true})
	if err != nil {
		t.Fatal(err)
	}
	if base.Stats.PulsesFiltered != 1 {
		t.Fatalf("premise: baseline must absorb the pair, got %+v", base.Stats)
	}
	if _, ok := base.Arrival(out2, waveform.Rising); ok {
		t.Fatal("premise: absorbed pair leaked downstream in the baseline")
	}

	wide := minSep + 30e-12
	got, err := c.AnalyzeDelta(base, sta.Delta{Set: []sta.PIEvent{
		{Net: a, Dir: waveform.Falling, TT: pulseTTFall, Time: wide},
	}}, sta.Options{PulseFiltering: true})
	if err != nil {
		t.Fatal(err)
	}
	requireFilteredDeltaIdentical(t, c, got,
		pulseVector(a, b, pulseTTFall, pulseTTRise, wide))
	for _, dir := range []waveform.Direction{waveform.Rising, waveform.Falling} {
		if _, ok := got.Arrival(out, dir); !ok {
			t.Fatalf("widened pair did not resurrect the %v edge on %s", dir, out.Name)
		}
	}
	if pi, ok := got.Pulse(out); !ok || pi.Filtered || !(pi.Factor > 1) {
		t.Fatalf("widened pair should now be degraded: %+v (recorded=%v)", pi, ok)
	}
	if got.Stats.PulsesFiltered != 0 || got.Stats.PulsesDegraded != 1 {
		t.Fatalf("counters after resurrection: %d filtered / %d degraded, want 0 / 1",
			got.Stats.PulsesFiltered, got.Stats.PulsesDegraded)
	}
	// The resurrected pair reaches the inverter as a same-pin opposite-edge
	// pair — the unjudged blind spot — proving the wavefront crossed the gate.
	if pi, ok := got.Pulse(out2); !ok || !pi.Unjudged {
		t.Fatalf("resurrected pair never reached the downstream inverter: %+v (recorded=%v)", pi, ok)
	}
}

// TestDeltaResurrectsAbsorbedPairByRemove: withdrawing the blocking edge
// leaves a lone unblocking cause — no pair at all, so the verdict must be
// withdrawn and the single surviving edge committed.
func TestDeltaResurrectsAbsorbedPairByRemove(t *testing.T) {
	c, a, b, out := pulsePair(t)
	minSep := pulseMinSep(t, pulseTTFall, pulseTTRise)
	base, err := c.AnalyzeOpts(pulseVector(a, b, pulseTTFall, pulseTTRise, minSep-50e-12),
		sta.Proximity, sta.Options{PulseFiltering: true})
	if err != nil {
		t.Fatal(err)
	}
	if base.Stats.PulsesFiltered != 1 {
		t.Fatalf("premise: baseline must absorb the pair, got %+v", base.Stats)
	}

	got, err := c.AnalyzeDelta(base, sta.Delta{Remove: []sta.DeltaRemove{
		{Net: b, Dir: waveform.Rising},
	}}, sta.Options{PulseFiltering: true})
	if err != nil {
		t.Fatal(err)
	}
	// The edited vector keeps only a's falling event.
	requireFilteredDeltaIdentical(t, c, got, []sta.PIEvent{
		{Net: a, Dir: waveform.Falling, TT: pulseTTFall, Time: minSep - 50e-12},
	})
	if _, ok := got.Arrival(out, waveform.Rising); !ok {
		t.Fatal("removing the blocking edge did not resurrect the rising output")
	}
	if _, ok := got.Arrival(out, waveform.Falling); ok {
		t.Fatal("falling output survives without its cause")
	}
	if _, ok := got.Pulse(out); ok {
		t.Fatal("verdict survives although the pair no longer exists")
	}
	if got.Stats.PulsesFiltered != 0 {
		t.Fatalf("PulsesFiltered=%d after the pair dissolved, want 0", got.Stats.PulsesFiltered)
	}
}

// TestDeltaReabsorbsDegradedPairByNarrowing: the baseline's pair survived
// degraded (both arrivals committed); narrowing the separation below the
// inertial delay must clear both arrivals and flip the verdict to absorbed.
func TestDeltaReabsorbsDegradedPairByNarrowing(t *testing.T) {
	c, a, b, out := pulsePair(t)
	minSep := pulseMinSep(t, pulseTTFall, pulseTTRise)
	base, err := c.AnalyzeOpts(pulseVector(a, b, pulseTTFall, pulseTTRise, minSep+30e-12),
		sta.Proximity, sta.Options{PulseFiltering: true})
	if err != nil {
		t.Fatal(err)
	}
	if base.Stats.PulsesDegraded != 1 {
		t.Fatalf("premise: baseline must degrade the pair, got %+v", base.Stats)
	}

	narrow := minSep - 50e-12
	got, err := c.AnalyzeDelta(base, sta.Delta{Set: []sta.PIEvent{
		{Net: a, Dir: waveform.Falling, TT: pulseTTFall, Time: narrow},
	}}, sta.Options{PulseFiltering: true})
	if err != nil {
		t.Fatal(err)
	}
	requireFilteredDeltaIdentical(t, c, got,
		pulseVector(a, b, pulseTTFall, pulseTTRise, narrow))
	for _, dir := range []waveform.Direction{waveform.Rising, waveform.Falling} {
		if arr, ok := got.Arrival(out, dir); ok {
			t.Fatalf("narrowed pair still commits a %v arrival (t=%g)", dir, arr.Time)
		}
	}
	if pi, ok := got.Pulse(out); !ok || !pi.Filtered {
		t.Fatalf("narrowed pair should be absorbed: %+v (recorded=%v)", pi, ok)
	}
	if got.Stats.PulsesFiltered != 1 || got.Stats.PulsesDegraded != 0 {
		t.Fatalf("counters after re-absorption: %d filtered / %d degraded, want 1 / 0",
			got.Stats.PulsesFiltered, got.Stats.PulsesDegraded)
	}
}

// TestDeltaInheritsUntouchedVerdict: a delta whose wavefront never reaches
// the judged gate must inherit its verdict and arrivals bit-exactly without
// re-evaluating it — the judged gate counts as reused baseline work.
func TestDeltaInheritsUntouchedVerdict(t *testing.T) {
	c, a, b, out := pulsePair(t)
	// A second, independent cone the delta edits: x,y -> nand g2 -> n2.
	x, y := c.Input("x"), c.Input("y")
	out2, err := c.AddGate("g2", "nand2", "n2", x, y)
	if err != nil {
		t.Fatal(err)
	}
	c.MarkOutput(out2)
	minSep := pulseMinSep(t, pulseTTFall, pulseTTRise)
	evs := append(pulseVector(a, b, pulseTTFall, pulseTTRise, minSep+30e-12),
		sta.PIEvent{Net: x, Dir: waveform.Falling, TT: 200e-12, Time: 1e-9})
	base, err := c.AnalyzeOpts(evs, sta.Proximity, sta.Options{PulseFiltering: true})
	if err != nil {
		t.Fatal(err)
	}
	if base.Stats.PulsesDegraded != 1 {
		t.Fatalf("premise: baseline must degrade the pair, got %+v", base.Stats)
	}
	basePI, ok := base.Pulse(out)
	if !ok {
		t.Fatal("premise: baseline carries no verdict")
	}

	got, err := c.AnalyzeDelta(base, sta.Delta{Set: []sta.PIEvent{
		{Net: x, Dir: waveform.Falling, TT: 200e-12, Time: 2e-9},
	}}, sta.Options{PulseFiltering: true})
	if err != nil {
		t.Fatal(err)
	}
	edited := append(pulseVector(a, b, pulseTTFall, pulseTTRise, minSep+30e-12),
		sta.PIEvent{Net: x, Dir: waveform.Falling, TT: 200e-12, Time: 2e-9})
	requireFilteredDeltaIdentical(t, c, got, edited)
	gotPI, ok := got.Pulse(out)
	if !ok || gotPI != basePI {
		t.Fatalf("untouched gate's verdict not inherited bit-exactly: %+v vs baseline %+v (recorded=%v)",
			gotPI, basePI, ok)
	}
	if got.Stats.GatesReevaluated != 1 {
		t.Fatalf("delta re-evaluated %d gates, want only the edited cone's 1", got.Stats.GatesReevaluated)
	}
	if want := base.Stats.GatesEvaluated - 1; got.Stats.GatesReused != want {
		t.Fatalf("GatesReused=%d, want %d (everything but the edited cone, including the judged gate)",
			got.Stats.GatesReused, want)
	}
}
