package sta_test

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/obs"
	"repro/internal/sta"
	"repro/internal/waveform"
)

// editScript applies the same structural edits to any circuit built by
// buildBase, so the incrementally recompiled handle can be compared against
// a from-scratch compile of an identically constructed circuit. The edits
// cover the interesting shapes: a new sink on existing logic, a new PI
// feeding a new subgraph, a gate landing between existing levels, and a
// forward net finally driven (which re-levels already-compiled consumers).
func editScript(t *testing.T, c *sta.Circuit) {
	t.Helper()
	mustGate := func(inst, typ, out string, ins ...*sta.Net) *sta.Net {
		t.Helper()
		n, err := c.AddGate(inst, typ, out, ins...)
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	// A consumer of a forward net wired before its driver exists: at
	// AddGate time e_fwd is undriven, so e_g0 levelizes as a source; when
	// e_drv later drives e_fwd, e_g0 and everything downstream of it must
	// be dragged to deeper levels.
	fwd := c.ForwardNet("e_fwd")
	a := mustGate("e_g0", "nand2", "e_n0", fwd, c.Net("p0"))
	b := mustGate("e_g1", "inv", "e_n1", a)
	c.MarkOutput(b)
	// New PI into a new subgraph that also taps existing internal logic.
	np := c.Input("e_pi")
	mid := mustGate("e_g2", "nand2", "e_n2", np, c.Net("n40"))
	// Drive the forward net from deep existing logic plus the new subgraph.
	mustGate("e_drv", "nand2", "e_fwd", mid, c.Net("n100"))
	c.MarkOutput(mustGate("e_g3", "inv", "e_n3", mid))
}

func buildBase(t *testing.T) *sta.Circuit {
	t.Helper()
	c, err := sta.SynthRandom(24, 600, 23)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestIncrementalRecompile: editing a compiled circuit must produce a new
// handle whose schedule, cone tables and analysis results are bit-identical
// to compiling an identically built circuit from scratch — while the old
// handle keeps answering against its snapshot.
func TestIncrementalRecompile(t *testing.T) {
	c := buildBase(t)
	old, err := c.Compile()
	if err != nil {
		t.Fatal(err)
	}
	// Force the old handle's cones so the recompile exercises cone reuse.
	baseEvents := sta.SynthEvents(c, 9)
	oldRes, err := old.Analyze(context.Background(), baseEvents, sta.Proximity, sta.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	editScript(t, c)
	inc, err := c.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if inc == old {
		t.Fatal("structural edits did not refresh the compiled handle")
	}
	if got, err := c.Compile(); err != nil || got != inc {
		t.Fatalf("recompiled handle not memoized: %p vs %p (%v)", got, inc, err)
	}

	// From-scratch reference: the same construction on a fresh circuit.
	ref := buildBase(t)
	editScript(t, ref)
	refC, err := ref.Compile()
	if err != nil {
		t.Fatal(err)
	}

	// Identical levelized schedule, by gate name, row by row.
	if inc.NumGates() != refC.NumGates() || inc.NumLevels() != refC.NumLevels() {
		t.Fatalf("shape: %d gates / %d levels incremental vs %d / %d from scratch",
			inc.NumGates(), inc.NumLevels(), refC.NumGates(), refC.NumLevels())
	}
	incLv, refLv := inc.Levels(), refC.Levels()
	for li := range refLv {
		if len(incLv[li]) != len(refLv[li]) {
			t.Fatalf("level %d: %d gates incremental vs %d from scratch", li, len(incLv[li]), len(refLv[li]))
		}
		for k := range refLv[li] {
			if incLv[li][k].Name != refLv[li][k].Name {
				t.Fatalf("level %d slot %d: gate %s incremental vs %s from scratch",
					li, k, incLv[li][k].Name, refLv[li][k].Name)
			}
		}
	}

	// Identical cone tables for every PI (gate indices are comparable —
	// both circuits list gates in the same construction order).
	for _, pi := range c.PIs {
		refPi := ref.Net(pi.Name)
		incCone, ok1 := inc.Cone(pi)
		refCone, ok2 := refC.Cone(refPi)
		if ok1 != ok2 {
			t.Fatalf("PI %s: cone presence %v incremental vs %v from scratch", pi.Name, ok1, ok2)
		}
		if len(incCone) != len(refCone) {
			t.Fatalf("PI %s: cone size %d incremental vs %d from scratch", pi.Name, len(incCone), len(refCone))
		}
		for k := range refCone {
			if incCone[k] != refCone[k] {
				t.Fatalf("PI %s cone[%d]: gate %d incremental vs %d from scratch", pi.Name, k, incCone[k], refCone[k])
			}
		}
	}

	// Identical analysis, including an event on the new PI (SynthEvents
	// covers every current PI, e_pi included) reaching through the forward
	// net into pre-existing logic.
	events := sta.SynthEvents(c, 9)
	refEvents := make([]sta.PIEvent, len(events))
	for i, ev := range events {
		refEvents[i] = sta.PIEvent{Net: ref.Net(ev.Net.Name), Dir: ev.Dir, Time: ev.Time, TT: ev.TT}
	}
	incRes, err := inc.Analyze(context.Background(), events, sta.Proximity, sta.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	refRes, err := refC.Analyze(context.Background(), refEvents, sta.Proximity, sta.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range ref.NetsByName() {
		for _, dir := range []waveform.Direction{waveform.Rising, waveform.Falling} {
			ra, rok := refRes.Arrival(ref.Net(name), dir)
			ia, iok := incRes.Arrival(c.Net(name), dir)
			if rok != iok || (rok && (ra.Time != ia.Time || ra.TT != ia.TT || ra.UsedInputs != ia.UsedInputs)) {
				t.Fatalf("net %s %v: incremental (%v %+v) vs from scratch (%v %+v)", name, dir, iok, ia, rok, ra)
			}
		}
	}

	// The old handle still answers against its snapshot.
	oldAgain, err := old.Analyze(context.Background(), baseEvents, sta.Proximity, sta.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	compareResults(t, c, oldRes, oldAgain, "old handle after edits")
}

// TestIncrementalLoopDetection: an edit that closes a combinational loop
// must fail the recompile, exactly as a from-scratch compile would.
func TestIncrementalLoopDetection(t *testing.T) {
	c := sta.NewCircuit(sta.SynthLibrary(2))
	in := c.Input("in")
	fwd := c.ForwardNet("fwd")
	mid, err := c.AddGate("g0", "nand2", "mid", in, fwd)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Compile(); err != nil {
		t.Fatal(err) // fwd is undriven here: no loop yet
	}
	if _, err := c.AddGate("g1", "inv", "fwd", mid); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Compile(); err == nil {
		t.Fatal("recompile accepted a combinational loop")
	}
}

// TestIncrementalColdCones: when the old handle never built cones (a
// dense-only workload), the recompiled handle must still build correct
// cones lazily on first sparse use.
func TestIncrementalColdCones(t *testing.T) {
	c := buildBase(t)
	if _, err := c.Compile(); err != nil {
		t.Fatal(err)
	}
	editScript(t, c)
	inc, err := c.Compile()
	if err != nil {
		t.Fatal(err)
	}
	ref := buildBase(t)
	editScript(t, ref)
	refC, err := ref.Compile()
	if err != nil {
		t.Fatal(err)
	}
	for _, pi := range c.PIs {
		incCone, _ := inc.Cone(pi)
		refCone, _ := refC.Cone(ref.Net(pi.Name))
		if fmt.Sprint(incCone) != fmt.Sprint(refCone) {
			t.Fatalf("PI %s: lazy cone %v vs from-scratch %v", pi.Name, incCone, refCone)
		}
	}
}

// TestBatchCompileAttribution: the first batch on a fresh circuit must
// carry the compile it triggered in its first result's stats — phase
// buckets and total wall — matching what AnalyzeOpts reports.
func TestBatchCompileAttribution(t *testing.T) {
	c, err := sta.SynthRandom(16, 800, 31)
	if err != nil {
		t.Fatal(err)
	}
	batch := [][]sta.PIEvent{sta.SynthEvents(c, 1), sta.SynthEvents(c, 2)}
	results, err := c.AnalyzeBatch(batch, sta.Proximity, sta.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	st := results[0].Stats
	if st.Phases[obs.PhaseCompile] <= 0 {
		t.Error("fresh batch reports zero PhaseCompile in results[0]")
	}
	if st.Phases[obs.PhaseLevelize] <= 0 {
		t.Error("fresh batch reports zero PhaseLevelize in results[0]")
	}
	if st.Wall < st.Phases.Sum() {
		t.Errorf("results[0] wall %v below phase sum %v — compile wall not added", st.Wall, st.Phases.Sum())
	}
	if lv := results[1].Stats.Phases[obs.PhaseLevelize]; lv != 0 {
		t.Errorf("results[1] charged %v of levelize — the compile must be attributed exactly once", lv)
	}
}

// TestEmptyBatchRejected: a batch with no vectors is a caller bug, not a
// successful empty analysis.
func TestEmptyBatchRejected(t *testing.T) {
	c, err := sta.SynthRandom(8, 100, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.AnalyzeBatch(nil, sta.Proximity, sta.Options{}); err == nil {
		t.Error("Circuit.AnalyzeBatch accepted an empty batch")
	}
	p, err := c.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.AnalyzeBatch(context.Background(), [][]sta.PIEvent{}, sta.Proximity, sta.Options{}); err == nil {
		t.Error("Compiled.AnalyzeBatch accepted an empty batch")
	}
}

// TestLatestWorstSlackAllocFree: the per-PO report helpers run per output
// per request in the service's response builder — they must not allocate.
func TestLatestWorstSlackAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	c, err := sta.SynthRandom(8, 100, 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.AnalyzeOpts(sta.SynthEvents(c, 1), sta.Proximity, sta.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.POs) == 0 {
		t.Fatal("no primary outputs to report on")
	}
	if allocs := testing.AllocsPerRun(200, func() {
		for _, po := range c.POs {
			res.Latest(po)
		}
	}); allocs != 0 {
		t.Errorf("Latest allocates %.1f objects per run", allocs)
	}
	if allocs := testing.AllocsPerRun(200, func() {
		res.WorstSlack(c.POs, 2e-9)
	}); allocs != 0 {
		t.Errorf("WorstSlack allocates %.1f objects per run", allocs)
	}
}
