package sta_test

import (
	"math"
	"sync"
	"testing"

	"repro/internal/cells"
	"repro/internal/core"
	"repro/internal/macromodel"
	"repro/internal/spice"
	"repro/internal/sta"
	"repro/internal/vtc"
	"repro/internal/waveform"
)

// library caches characterized nand2 + inv calculators.
var (
	libOnce sync.Once
	lib     *sta.Library
	libErr  error
)

func testLibrary(t testing.TB) *sta.Library {
	t.Helper()
	libOnce.Do(func() {
		lib = sta.NewLibrary()
		for _, spec := range []struct {
			name string
			kind cells.Kind
			n    int
		}{{"nand2", cells.Nand, 2}, {"inv", cells.Inv, 1}} {
			cell := cells.MustNew(spec.kind, spec.n, cells.DefaultProcess(), cells.DefaultGeometry())
			fam, err := vtc.Extract(cell, spice.DefaultOptions(), 0.02)
			if err != nil {
				libErr = err
				return
			}
			sim := macromodel.NewGateSim(cell, spice.DefaultOptions(), fam.Thresholds)
			model, err := macromodel.CharacterizeGate(sim, macromodel.CoarseCharSpec())
			if err != nil {
				libErr = err
				return
			}
			calc := core.NewCalculator(model)
			if spec.n >= 2 {
				if err := core.CalibrateCorrection(calc, sim); err != nil {
					libErr = err
					return
				}
			}
			lib.Add(spec.name, calc)
		}
	})
	if libErr != nil {
		t.Fatal(libErr)
	}
	return lib
}

func TestCircuitConstruction(t *testing.T) {
	l := testLibrary(t)
	c := sta.NewCircuit(l)
	a := c.Input("a")
	b := c.Input("b")
	if c.Input("a") != a {
		t.Error("duplicate input declaration created a new net")
	}
	out, err := c.AddGate("g1", "nand2", "n1", a, b)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddGate("g2", "nand2", "n1", a, b); err == nil {
		t.Error("double-driven net accepted")
	}
	if _, err := c.AddGate("g3", "nand9", "n2", a, b); err == nil {
		t.Error("unknown gate type accepted")
	}
	if _, err := c.AddGate("g4", "nand2", "n3", a); err == nil {
		t.Error("wrong arity accepted")
	}
	if c.Net("n1") != out {
		t.Error("net lookup broken")
	}
}

func TestInverterChainDelayAccumulates(t *testing.T) {
	l := testLibrary(t)
	c := sta.NewCircuit(l)
	in := c.Input("in")
	n1, err := c.AddGate("i1", "inv", "n1", in)
	if err != nil {
		t.Fatal(err)
	}
	n2, err := c.AddGate("i2", "inv", "n2", n1)
	if err != nil {
		t.Fatal(err)
	}
	ev := []sta.PIEvent{{Net: in, Dir: waveform.Rising, Time: 0, TT: 200e-12}}
	res, err := c.Analyze(ev, sta.Proximity)
	if err != nil {
		t.Fatal(err)
	}
	a1, ok1 := res.Arrival(n1, waveform.Falling)
	a2, ok2 := res.Arrival(n2, waveform.Rising)
	if !ok1 || !ok2 {
		t.Fatal("missing arrivals along the chain")
	}
	if !(a2.Time > a1.Time && a1.Time > 0) {
		t.Errorf("arrivals not ordered: %.1fps then %.1fps", a1.Time*1e12, a2.Time*1e12)
	}
	// Path trace reaches the primary input.
	path, err := res.CriticalPath(n2, waveform.Rising)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 3 || path[0].Net != in {
		t.Errorf("path length %d, first net %s", len(path), path[0].Net.Name)
	}
}

func TestProximityVsConventionalOnCoincidentInputs(t *testing.T) {
	l := testLibrary(t)
	c := sta.NewCircuit(l)
	a := c.Input("a")
	b := c.Input("b")
	out, err := c.AddGate("g", "nand2", "out", a, b)
	if err != nil {
		t.Fatal(err)
	}
	ev := []sta.PIEvent{
		{Net: a, Dir: waveform.Falling, Time: 0, TT: 400e-12},
		{Net: b, Dir: waveform.Falling, Time: 20e-12, TT: 400e-12},
	}
	conv, err := c.Analyze(ev, sta.Conventional)
	if err != nil {
		t.Fatal(err)
	}
	prox, err := c.Analyze(ev, sta.Proximity)
	if err != nil {
		t.Fatal(err)
	}
	ca, _ := conv.Arrival(out, waveform.Rising)
	pa, _ := prox.Arrival(out, waveform.Rising)
	// Falling NAND inputs conduct in parallel: the true (proximity) output
	// crossing is EARLIER than the conventional latest-arc estimate.
	if !(pa.Time < ca.Time) {
		t.Errorf("parallel pull-up should beat conventional: prox %.1fps vs conv %.1fps",
			pa.Time*1e12, ca.Time*1e12)
	}

	// Rising NAND inputs complete a series stack: the true crossing is
	// LATER than the conventional estimate (conventional is optimistic —
	// the dangerous direction).
	ev2 := []sta.PIEvent{
		{Net: a, Dir: waveform.Rising, Time: 0, TT: 400e-12},
		{Net: b, Dir: waveform.Rising, Time: 20e-12, TT: 400e-12},
	}
	conv2, err := c.Analyze(ev2, sta.Conventional)
	if err != nil {
		t.Fatal(err)
	}
	prox2, err := c.Analyze(ev2, sta.Proximity)
	if err != nil {
		t.Fatal(err)
	}
	ca2, _ := conv2.Arrival(out, waveform.Falling)
	pa2, _ := prox2.Arrival(out, waveform.Falling)
	if !(pa2.Time > ca2.Time) {
		t.Errorf("series stack should be slower than conventional: prox %.1fps vs conv %.1fps",
			pa2.Time*1e12, ca2.Time*1e12)
	}
}

func TestAnalyzeValidation(t *testing.T) {
	l := testLibrary(t)
	c := sta.NewCircuit(l)
	a := c.Input("a")
	n1, _ := c.AddGate("g", "inv", "n1", a)
	if _, err := c.Analyze([]sta.PIEvent{{Net: n1, Dir: waveform.Rising, Time: 0, TT: 1e-10}}, sta.Proximity); err == nil {
		t.Error("event on internal net accepted")
	}
	if _, err := c.Analyze([]sta.PIEvent{{Net: a, Dir: waveform.Rising, Time: 0, TT: 0}}, sta.Proximity); err == nil {
		t.Error("zero transition time accepted")
	}
}

func TestCombinationalLoopDetected(t *testing.T) {
	l := testLibrary(t)
	// Two-gate loop via a forward net reference: l1 takes fwd as an input,
	// l2 drives fwd from l1's output.
	c2 := sta.NewCircuit(l)
	x, err := c2.AddGate("l1", "nand2", "x", c2.Input("pi"), c2.ForwardNet("fwd"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c2.AddGate("l2", "inv", "fwd", x); err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Analyze([]sta.PIEvent{{Net: c2.Net("pi"), Dir: waveform.Rising, Time: 0, TT: 1e-10}}, sta.Proximity); err == nil {
		t.Error("combinational loop not detected")
	}
}

func TestSlacks(t *testing.T) {
	l := testLibrary(t)
	c := sta.NewCircuit(l)
	a := c.Input("a")
	out, err := c.AddGate("g", "inv", "out", a)
	if err != nil {
		t.Fatal(err)
	}
	c.MarkOutput(out)
	res, err := c.Analyze([]sta.PIEvent{
		{Net: a, Dir: waveform.Rising, Time: 0, TT: 200e-12},
	}, sta.Proximity)
	if err != nil {
		t.Fatal(err)
	}
	arr, _ := res.Arrival(out, waveform.Falling)
	req := arr.Time + 100e-12
	s, ok := res.Slack(out, waveform.Falling, req)
	if !ok || math.Abs(s-100e-12) > 1e-18 {
		t.Errorf("slack = %g ok=%v, want 100ps", s, ok)
	}
	if _, ok := res.Slack(out, waveform.Rising, req); ok {
		t.Error("slack reported for a direction with no arrival")
	}
	ws, at, warr, ok := res.WorstSlack([]*sta.Net{out, a}, req)
	if !ok {
		t.Fatal("no worst slack")
	}
	// The latest arrival is out's falling edge, so it bounds the slack.
	if at != out || warr.Dir != waveform.Falling || math.Abs(ws-100e-12) > 1e-18 {
		t.Errorf("worst slack %g at %v (%v)", ws, at.Name, warr.Dir)
	}
	if _, _, _, ok := res.WorstSlack(nil, req); ok {
		t.Error("worst slack over no nets reported ok")
	}
}

func TestLatestAndModeString(t *testing.T) {
	if sta.Proximity.String() != "proximity" || sta.Conventional.String() != "conventional" {
		t.Error("mode strings changed")
	}
	l := testLibrary(t)
	c := sta.NewCircuit(l)
	a := c.Input("a")
	out, _ := c.AddGate("g", "inv", "out", a)
	res, err := c.Analyze([]sta.PIEvent{{Net: a, Dir: waveform.Rising, Time: 10e-12, TT: 100e-12}}, sta.Proximity)
	if err != nil {
		t.Fatal(err)
	}
	arr, ok := res.Latest(out)
	if !ok || math.IsNaN(arr.Time) {
		t.Error("Latest missing arrival")
	}
	if _, ok := res.Arrival(out, waveform.Rising); ok {
		t.Error("phantom rising arrival on inverter output for rising input")
	}
}
