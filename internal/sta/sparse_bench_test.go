package sta_test

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"testing"
	"time"

	"repro/internal/sta"
)

// The sparse-scheduling benchmark netlist: 240 independent 50-gate tiles
// (12k gates total, 1920 PIs). A tile-local stimulus vector touches 8 PIs —
// 0.42% of the inputs — the block-partitioned locality shape cone pruning
// is built for; the dense walk visits all 240 tiles regardless.
const (
	benchTiles        = 240
	benchPIsPerTile   = 8
	benchGatesPerTile = 50
)

var (
	tiledOnce sync.Once
	tiledC    *sta.Circuit
	tiledErr  error
)

func getTiledBench(tb testing.TB) *sta.Circuit {
	tb.Helper()
	tiledOnce.Do(func() {
		tiledC, tiledErr = sta.SynthTiled(benchTiles, benchPIsPerTile, benchGatesPerTile, 17)
	})
	if tiledErr != nil {
		tb.Fatal(tiledErr)
	}
	return tiledC
}

// tiledBatch builds n stimulus vectors, each confined to one tile (cycling
// through the tiles), the partial-activity batch shape.
func tiledBatch(tb testing.TB, c *sta.Circuit, n int) [][]sta.PIEvent {
	tb.Helper()
	batch := make([][]sta.PIEvent, n)
	for i := range batch {
		pis := sta.TilePIs(c, i%benchTiles)
		if len(pis) != benchPIsPerTile {
			tb.Fatalf("tile %d has %d PIs, want %d", i%benchTiles, len(pis), benchPIsPerTile)
		}
		batch[i] = sta.SynthEventsFor(pis, int64(i))
	}
	return batch
}

// fullBatch builds n all-PI stimulus vectors — the saturated shape where
// sparse must not regress against dense.
func fullBatch(c *sta.Circuit, n int) [][]sta.PIEvent {
	batch := make([][]sta.PIEvent, n)
	for i := range batch {
		batch[i] = sta.SynthEvents(c, int64(i))
	}
	return batch
}

// BenchmarkSparseBatch compares the dense full-schedule walk against
// cone-pruned sparse scheduling on the tiled netlist, for both a
// tile-local (partial) batch and an all-PI (full) batch. The partial/dense
// vs partial/sparse pair is the headline number recorded in
// BENCH_sparse.json.
func BenchmarkSparseBatch(b *testing.B) {
	c := getTiledBench(b)
	for _, stim := range []struct {
		name  string
		batch [][]sta.PIEvent
	}{
		{"partial", tiledBatch(b, c, 16)},
		{"full", fullBatch(c, 4)},
	} {
		for _, sched := range []struct {
			name  string
			dense bool
		}{
			{"dense", true},
			{"sparse", false},
		} {
			b.Run(fmt.Sprintf("stimulus=%s/sched=%s", stim.name, sched.name), func(b *testing.B) {
				opt := sta.Options{Workers: 1, Dense: sched.dense}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := c.AnalyzeBatch(stim.batch, sta.Proximity, opt); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(len(stim.batch))*float64(b.N)/b.Elapsed().Seconds(), "vectors/s")
			})
		}
	}
}

// sparseBenchResult is the BENCH_sparse.json schema — the before/after
// record for cone-pruned sparse scheduling. "Before" is the dense schedule
// (Options.Dense, the pre-sparse walk preserved as the oracle reference)
// run on the same engine build, so the comparison isolates the scheduler.
type sparseBenchResult struct {
	Timestamp    string `json:"timestamp"`
	NetlistGates int    `json:"netlistGates"`
	NetlistPIs   int    `json:"netlistPIs"`
	Tiles        int    `json:"tiles"`

	PartialPIsPerVector  int     `json:"partialPIsPerVector"`
	PartialPIFraction    float64 `json:"partialPIFraction"`
	PartialVectors       int     `json:"partialVectors"`
	PartialDenseSecPerV  float64 `json:"partialDenseSecPerVector"`
	PartialSparseSecPerV float64 `json:"partialSparseSecPerVector"`
	PartialSpeedup       float64 `json:"partialSpeedup"`

	FullVectors       int     `json:"fullVectors"`
	FullDenseSecPerV  float64 `json:"fullDenseSecPerVector"`
	FullSparseSecPerV float64 `json:"fullSparseSecPerVector"`
	FullSpeedup       float64 `json:"fullSpeedup"`
}

// TestWriteSparseBench regenerates BENCH_sparse.json when BENCH_SPARSE_OUT
// names the output path (it is skipped in normal test runs):
//
//	BENCH_SPARSE_OUT=$(pwd)/BENCH_sparse.json go test -run TestWriteSparseBench ./internal/sta/
//
// The acceptance bar it documents: ≥3x on batches stimulating ≤10% of the
// PIs, no regression on full-stimulus batches.
func TestWriteSparseBench(t *testing.T) {
	out := os.Getenv("BENCH_SPARSE_OUT")
	if out == "" {
		t.Skip("set BENCH_SPARSE_OUT to regenerate BENCH_sparse.json")
	}
	c := getTiledBench(t)
	partial := tiledBatch(t, c, 32)
	full := fullBatch(c, 4)

	secPerVector := func(batch [][]sta.PIEvent, dense bool) float64 {
		opt := sta.Options{Workers: 1, Dense: dense}
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := c.AnalyzeBatch(batch, sta.Proximity, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
		return r.T.Seconds() / float64(r.N) / float64(len(batch))
	}

	res := sparseBenchResult{
		Timestamp:    time.Now().UTC().Format(time.RFC3339),
		NetlistGates: benchTiles * benchGatesPerTile,
		NetlistPIs:   benchTiles * benchPIsPerTile,
		Tiles:        benchTiles,

		PartialPIsPerVector: benchPIsPerTile,
		PartialPIFraction:   1.0 / benchTiles,
		PartialVectors:      len(partial),
		FullVectors:         len(full),
	}
	res.PartialDenseSecPerV = secPerVector(partial, true)
	res.PartialSparseSecPerV = secPerVector(partial, false)
	res.PartialSpeedup = res.PartialDenseSecPerV / res.PartialSparseSecPerV
	res.FullDenseSecPerV = secPerVector(full, true)
	res.FullSparseSecPerV = secPerVector(full, false)
	res.FullSpeedup = res.FullDenseSecPerV / res.FullSparseSecPerV

	if res.PartialSpeedup < 3 {
		t.Errorf("partial-stimulus speedup %.2fx, acceptance bar is 3x", res.PartialSpeedup)
	}
	if res.FullSpeedup < 0.9 {
		t.Errorf("full-stimulus sparse/dense ratio %.2fx — sparse regressed on saturated batches", res.FullSpeedup)
	}

	data, err := json.MarshalIndent(res, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("partial %.2fx (%.3fms -> %.3fms per vector), full %.2fx; wrote %s",
		res.PartialSpeedup, res.PartialDenseSecPerV*1e3, res.PartialSparseSecPerV*1e3, res.FullSpeedup, out)
}
