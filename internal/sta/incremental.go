package sta

// Incremental recompile. Every structural mutation appends — gates, nets
// and primary inputs only ever grow — so a stale compiled handle differs
// from the circuit by exactly the appended suffix, and the edit list needs
// no bookkeeping: it IS c.Gates[old.gates:] and c.PIs[len(old.pis):]. The
// recompile keeps everything the edit cannot have touched: old levels are
// only revisited where a new gate's output feeds back into existing logic
// (a forward net finally driven), and old per-PI cones are reused verbatim
// for every PI whose cone cannot reach a new gate. The result is required
// to be bit-identical to a from-scratch compile — same level sets, same
// within-level order, same cone tables — which the difftest incremental
// oracle enforces against a discarded-handle rebuild.

import (
	"fmt"
	"time"

	"repro/internal/obs"
)

// recompile builds a new handle from a stale one, re-levelizing and
// re-coning only the appended suffix and its downstream fanout. If the old
// handle is not a clean prefix of the current circuit (impossible through
// the public API, but cheap to verify), it falls back to a full compile.
func (c *Circuit) recompile(old *Compiled, tr *obs.Trace) (*Compiled, error) {
	if old.gates > len(c.Gates) || old.numNets > len(c.nets) || len(old.pis) > len(c.PIs) {
		return c.compileFull(tr)
	}
	for i, g := range old.gateList {
		if c.Gates[i] != g {
			return c.compileFull(tr)
		}
	}
	for i, n := range old.pis {
		if c.PIs[i] != n {
			return c.compileFull(tr)
		}
	}

	levelizeSpan := tr.Begin(0, 0, "sta", "relevelize").Arg("newGates", len(c.Gates)-old.gates)
	levelizeStart := time.Now()

	numGates := len(c.Gates)
	numNets := len(c.nets)
	gateList := append([]*Gate(nil), c.Gates...)
	pis := append([]*Net(nil), c.PIs...)
	newGates := gateList[old.gates:]

	// Consumer edges introduced by the edit, keyed by net ID. Merged with
	// the old handle's CSR this gives the new graph's consumer relation;
	// both parts list gate indices ascending (old CSR by construction, the
	// map because new gates are visited in netlist order), and every old
	// index precedes every new one — so traversals see the same neighbor
	// order a from-scratch CSR would produce, which keeps rebuilt cones
	// bit-identical to a full build.
	old.ensureConsumers()
	newCons := make(map[int32][]int32)
	for _, g := range newGates {
		for _, in := range g.In {
			newCons[in.id] = append(newCons[in.id], g.idx)
		}
	}
	consumersOf := func(netID int32) (oldPart, newPart []int32) {
		if int(netID) < old.numNets {
			oldPart = old.consumers(netID)
		}
		return oldPart, newCons[netID]
	}

	// Re-levelize: old gates keep their level until an edit-induced path
	// pushes them deeper. Each new gate lands one past its deepest assigned
	// driver, then a worklist relaxes downstream of its output — that is
	// how a forward net finally driven drags its already-levelized
	// consumers (and their fanout) down. Levels only ever increase during
	// relaxation (edges were only added), so a level exceeding the gate
	// count proves the edit closed a combinational loop.
	gateLevel := make([]int32, numGates)
	copy(gateLevel, old.gateLevel)
	assigned := make([]bool, numGates)
	for i := 0; i < old.gates; i++ {
		assigned[i] = true
	}
	desiredLevel := func(g *Gate) int32 {
		var lv int32
		for _, in := range g.In {
			if d := in.Driver; d != nil && assigned[d.idx] && gateLevel[d.idx] >= lv {
				lv = gateLevel[d.idx] + 1
			}
		}
		return lv
	}
	var work []int32
	pushConsumers := func(netID int32) {
		oldPart, newPart := consumersOf(netID)
		work = append(work, oldPart...)
		work = append(work, newPart...)
	}
	for _, g := range newGates {
		gateLevel[g.idx] = desiredLevel(g)
		assigned[g.idx] = true
		pushConsumers(g.Out.id)
	}
	for len(work) > 0 {
		gi := work[len(work)-1]
		work = work[:len(work)-1]
		if !assigned[gi] {
			continue // a later new gate; it levels itself when reached above
		}
		g := gateList[gi]
		if nl := desiredLevel(g); nl > gateLevel[gi] {
			if int(nl) >= numGates {
				levelizeSpan.End()
				return nil, fmt.Errorf("sta: combinational loop through gate %s", g.Name)
			}
			gateLevel[gi] = nl
			pushConsumers(g.Out.id)
		}
	}

	// Re-bucket into the levelized schedule. Walking gate indices ascending
	// per level reproduces Kahn's output exactly: the level is the longest
	// path from a source, and Kahn emits each frontier sorted by index.
	numLevels := 0
	for _, lv := range gateLevel {
		if int(lv)+1 > numLevels {
			numLevels = int(lv) + 1
		}
	}
	counts := make([]int32, numLevels)
	for _, lv := range gateLevel {
		counts[lv]++
	}
	p := &Compiled{
		c:         c,
		gates:     numGates,
		numNets:   numNets,
		gateList:  gateList,
		pis:       pis,
		gateLevel: gateLevel,
	}
	p.levels = make([][]*Gate, numLevels)
	p.levelIdx = make([][]int32, numLevels)
	for li := range p.levels {
		p.levels[li] = make([]*Gate, 0, counts[li])
		p.levelIdx[li] = make([]int32, 0, counts[li])
		if int(counts[li]) > p.maxWidth {
			p.maxWidth = int(counts[li])
		}
	}
	for gi, lv := range gateLevel {
		p.levels[lv] = append(p.levels[lv], gateList[gi])
		p.levelIdx[lv] = append(p.levelIdx[lv], int32(gi))
	}
	p.levelizeWall = time.Since(levelizeStart)
	levelizeSpan.End()

	p.scratch.New = func() any { return newEvalScratch(p) }

	// Cone reuse: only worthwhile when the old handle actually built cones
	// (a dense-only workload never does — stay lazy then). A PI's cone can
	// only change if it reaches a new gate, i.e. the PI lies in the
	// backward cone of some new gate's inputs; everything else is copied
	// verbatim, and the affected few (plus all new PIs) get a fresh BFS
	// over the merged consumer relation.
	if old.conesReady.Load() {
		piOrd := make([]int32, numNets)
		for i := range piOrd {
			piOrd[i] = -1
		}
		for ord, pi := range pis {
			piOrd[pi.id] = int32(ord)
		}

		affected := make([]bool, len(pis))
		visitedNet := make([]bool, numNets)
		var stack []*Net
		for _, g := range newGates {
			for _, in := range g.In {
				if !visitedNet[in.id] {
					visitedNet[in.id] = true
					stack = append(stack, in)
				}
			}
		}
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if ord := piOrd[n.id]; ord >= 0 {
				affected[ord] = true
			}
			if n.Driver != nil {
				for _, in := range n.Driver.In {
					if !visitedNet[in.id] {
						visitedNet[in.id] = true
						stack = append(stack, in)
					}
				}
			}
		}

		seen := make([]int32, numGates)
		for i := range seen {
			seen[i] = -1
		}
		coneOff := make([]int32, len(pis)+1)
		var cones []int32
		var queue []int32
		visit := func(ord int, gi int32) {
			if seen[gi] != int32(ord) {
				seen[gi] = int32(ord)
				queue = append(queue, gi)
			}
		}
		for ord, pi := range pis {
			if ord < len(old.pis) && !affected[ord] {
				cones = append(cones, old.cones[old.coneOff[ord]:old.coneOff[ord+1]]...)
				coneOff[ord+1] = int32(len(cones))
				continue
			}
			queue = queue[:0]
			oldPart, newPart := consumersOf(pi.id)
			for _, gi := range oldPart {
				visit(ord, gi)
			}
			for _, gi := range newPart {
				visit(ord, gi)
			}
			for head := 0; head < len(queue); head++ {
				out := gateList[queue[head]].Out
				oldPart, newPart := consumersOf(out.id)
				for _, gi := range oldPart {
					visit(ord, gi)
				}
				for _, gi := range newPart {
					visit(ord, gi)
				}
			}
			cones = append(cones, queue...)
			coneOff[ord+1] = int32(len(cones))
		}
		p.adoptCones(piOrd, coneOff, cones)
	}
	return p, nil
}
