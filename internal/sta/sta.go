// Package sta is a small gate-level static timing analyzer built on the
// proximity delay model — the downstream application that motivates the
// paper (proximity-aware delay calculation is absent from conventional
// single-switching-input timing analysis).
//
// Two analysis modes are provided:
//
//   - Conventional: each gate-output transition is timed from the causing
//     input with the latest (input arrival + single-input pin delay), the
//     classic one-input-switching assumption the paper criticizes.
//   - Proximity: all causing inputs arriving within the proximity window
//     are evaluated together with Algorithm ProximityDelay, capturing the
//     speedups (parallel conduction) and slowdowns (series stacks still in
//     transit) that the conventional mode misses.
package sta

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/waveform"
)

// Library maps gate type names (e.g. "nand2") to characterized calculators.
type Library struct {
	calcs map[string]*core.Calculator
}

// NewLibrary returns an empty library.
func NewLibrary() *Library { return &Library{calcs: map[string]*core.Calculator{}} }

// Add registers a calculator under a type name.
func (l *Library) Add(name string, calc *core.Calculator) { l.calcs[name] = calc }

// Get returns the calculator for a type name (nil if absent).
func (l *Library) Get(name string) *core.Calculator { return l.calcs[name] }

// Net is a wire in the gate-level circuit.
type Net struct {
	Name   string
	Driver *Gate // nil for primary inputs
}

// Gate is one logic-cell instance.
type Gate struct {
	Name string
	Type string
	Calc *core.Calculator
	In   []*Net
	Out  *Net
}

// Circuit is a combinational gate-level netlist.
type Circuit struct {
	lib   *Library
	nets  map[string]*Net
	Gates []*Gate
	PIs   []*Net
	POs   []*Net
}

// NewCircuit returns an empty circuit over a library.
func NewCircuit(lib *Library) *Circuit {
	return &Circuit{lib: lib, nets: map[string]*Net{}}
}

// Input declares (or returns) a primary-input net.
func (c *Circuit) Input(name string) *Net {
	n := c.net(name)
	for _, pi := range c.PIs {
		if pi == n {
			return n
		}
	}
	c.PIs = append(c.PIs, n)
	return n
}

// net returns the named net, creating it if needed.
func (c *Circuit) net(name string) *Net {
	if n, ok := c.nets[name]; ok {
		return n
	}
	n := &Net{Name: name}
	c.nets[name] = n
	return n
}

// Net returns an existing net by name (nil if undeclared).
func (c *Circuit) Net(name string) *Net { return c.nets[name] }

// ForwardNet returns the named net, creating it (undriven) if needed — for
// forward references while wiring feedback or not-yet-driven nets.
func (c *Circuit) ForwardNet(name string) *Net { return c.net(name) }

// AddGate instantiates a library gate driving a fresh net named outName.
func (c *Circuit) AddGate(instName, typeName, outName string, inputs ...*Net) (*Net, error) {
	calc := c.lib.Get(typeName)
	if calc == nil {
		return nil, fmt.Errorf("sta: unknown gate type %q", typeName)
	}
	if calc.Model.NumInputs != len(inputs) {
		return nil, fmt.Errorf("sta: gate %s (%s) takes %d inputs, got %d",
			instName, typeName, calc.Model.NumInputs, len(inputs))
	}
	out := c.net(outName)
	if out.Driver != nil {
		return nil, fmt.Errorf("sta: net %s already driven by %s", outName, out.Driver.Name)
	}
	g := &Gate{Name: instName, Type: typeName, Calc: calc, In: inputs, Out: out}
	out.Driver = g
	c.Gates = append(c.Gates, g)
	return out, nil
}

// MarkOutput declares a primary output.
func (c *Circuit) MarkOutput(n *Net) { c.POs = append(c.POs, n) }

// topoOrder returns the gates in topological order (inputs before outputs).
func (c *Circuit) topoOrder() ([]*Gate, error) {
	state := map[*Gate]int{} // 0 new, 1 visiting, 2 done
	var order []*Gate
	var visit func(g *Gate) error
	visit = func(g *Gate) error {
		switch state[g] {
		case 1:
			return fmt.Errorf("sta: combinational loop through gate %s", g.Name)
		case 2:
			return nil
		}
		state[g] = 1
		for _, in := range g.In {
			if in.Driver != nil {
				if err := visit(in.Driver); err != nil {
					return err
				}
			}
		}
		state[g] = 2
		order = append(order, g)
		return nil
	}
	for _, g := range c.Gates {
		if err := visit(g); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// Mode selects the delay-calculation policy.
type Mode int

const (
	Proximity Mode = iota
	Conventional
)

func (m Mode) String() string {
	if m == Conventional {
		return "conventional"
	}
	return "proximity"
}

// Arrival is one transition event on a net.
type Arrival struct {
	Dir  waveform.Direction
	Time float64 // measurement-level crossing time
	TT   float64 // transition time
	// FromGate and FromPin record the causing gate and its dominant input
	// pin for path tracing (FromGate nil at primary inputs).
	FromGate *Gate
	FromPin  int
	// UsedInputs counts how many switching inputs the delay calculation
	// combined (1 = single-arc; >1 = genuine proximity evaluation).
	UsedInputs int
}

// PIEvent is a primary-input stimulus.
type PIEvent struct {
	Net  *Net
	Dir  waveform.Direction
	Time float64
	TT   float64
}

// Result holds per-net arrivals after analysis.
type Result struct {
	Mode     Mode
	arrivals map[*Net]map[waveform.Direction]Arrival
}

// Arrival returns the arrival of a net in the given direction; ok=false if
// the net never transitions that way.
func (r *Result) Arrival(n *Net, dir waveform.Direction) (Arrival, bool) {
	m, ok := r.arrivals[n]
	if !ok {
		return Arrival{}, false
	}
	a, ok := m[dir]
	return a, ok
}

// Latest returns the latest arrival across both directions of a net.
func (r *Result) Latest(n *Net) (Arrival, bool) {
	var best Arrival
	found := false
	for _, dir := range []waveform.Direction{waveform.Rising, waveform.Falling} {
		if a, ok := r.Arrival(n, dir); ok && (!found || a.Time > best.Time) {
			best = a
			found = true
		}
	}
	return best, found
}

// Analyze propagates the primary-input events through the circuit.
//
// Each net carries at most one arrival per direction. A gate output
// transition in direction d is caused by the input arrivals in direction
// opposite(d) (all library gates are inverting). In Proximity mode every
// causing input within the dominant input's proximity window contributes via
// Algorithm ProximityDelay; in Conventional mode the latest causing input's
// single-input delay wins.
func (c *Circuit) Analyze(events []PIEvent, mode Mode) (*Result, error) {
	res := &Result{Mode: mode, arrivals: map[*Net]map[waveform.Direction]Arrival{}}
	set := func(n *Net, a Arrival) {
		if res.arrivals[n] == nil {
			res.arrivals[n] = map[waveform.Direction]Arrival{}
		}
		res.arrivals[n][a.Dir] = a
	}
	driven := map[*Net]bool{}
	for _, pi := range c.PIs {
		driven[pi] = true
	}
	for _, ev := range events {
		if !driven[ev.Net] {
			return nil, fmt.Errorf("sta: event on non-primary-input net %s", ev.Net.Name)
		}
		if ev.TT <= 0 {
			return nil, fmt.Errorf("sta: event on %s has non-positive transition time", ev.Net.Name)
		}
		set(ev.Net, Arrival{Dir: ev.Dir, Time: ev.Time, TT: ev.TT})
	}

	order, err := c.topoOrder()
	if err != nil {
		return nil, err
	}
	for _, g := range order {
		for _, outDir := range []waveform.Direction{waveform.Rising, waveform.Falling} {
			inDir := outDir.Opposite()
			var evs []core.InputEvent
			var pins []int
			for pin, in := range g.In {
				if a, ok := res.Arrival(in, inDir); ok {
					evs = append(evs, core.InputEvent{Pin: pin, Dir: inDir, TT: a.TT, Cross: a.Time})
					pins = append(pins, pin)
				}
			}
			if len(evs) == 0 {
				continue
			}
			a, err := g.eval(evs, outDir, mode)
			if err != nil {
				return nil, fmt.Errorf("sta: gate %s %v output: %w", g.Name, outDir, err)
			}
			set(g.Out, *a)
		}
	}
	return res, nil
}

// eval computes one gate-output arrival.
func (g *Gate) eval(evs []core.InputEvent, outDir waveform.Direction, mode Mode) (*Arrival, error) {
	if mode == Conventional {
		// Latest (arrival + single-input delay) wins; TT comes from the
		// winning arc.
		best := Arrival{Dir: outDir, Time: math.Inf(-1)}
		for _, e := range evs {
			d, tt, err := g.Calc.SingleDelay(e.Pin, e.Dir, e.TT)
			if err != nil {
				return nil, err
			}
			if t := e.Cross + d; t > best.Time {
				best = Arrival{Dir: outDir, Time: t, TT: tt, FromGate: g, FromPin: e.Pin, UsedInputs: 1}
			}
		}
		return &best, nil
	}
	r, err := g.Calc.Evaluate(evs)
	if err != nil {
		return nil, err
	}
	return &Arrival{
		Dir:        outDir,
		Time:       r.OutputCross,
		TT:         r.OutTT,
		FromGate:   g,
		FromPin:    r.Dominant,
		UsedInputs: r.UsedDelay,
	}, nil
}

// Slack returns required − arrival for a net/direction; ok is false when
// the net never transitions that way.
func (r *Result) Slack(n *Net, dir waveform.Direction, required float64) (float64, bool) {
	a, ok := r.Arrival(n, dir)
	if !ok {
		return 0, false
	}
	return required - a.Time, true
}

// WorstSlack returns the minimum slack over the given nets (both
// directions) against a common required time, with the offending net and
// arrival. ok is false when none of the nets carries an arrival.
func (r *Result) WorstSlack(nets []*Net, required float64) (slack float64, at *Net, arr Arrival, ok bool) {
	slack = math.Inf(1)
	for _, n := range nets {
		for _, dir := range []waveform.Direction{waveform.Rising, waveform.Falling} {
			if a, has := r.Arrival(n, dir); has {
				if s := required - a.Time; s < slack {
					slack, at, arr, ok = s, n, a, true
				}
			}
		}
	}
	if !ok {
		return 0, nil, Arrival{}, false
	}
	return slack, at, arr, true
}

// PathStep is one hop of a traced critical path.
type PathStep struct {
	Net     *Net
	Arrival Arrival
}

// CriticalPath traces back from a net/direction to a primary input by
// following each arrival's dominant causing pin.
func (r *Result) CriticalPath(n *Net, dir waveform.Direction) ([]PathStep, error) {
	var path []PathStep
	cur, ok := r.Arrival(n, dir)
	if !ok {
		return nil, fmt.Errorf("sta: net %s has no %v arrival", n.Name, dir)
	}
	net := n
	for {
		path = append(path, PathStep{Net: net, Arrival: cur})
		if cur.FromGate == nil {
			break
		}
		inNet := cur.FromGate.In[cur.FromPin]
		prev, ok := r.Arrival(inNet, cur.Dir.Opposite())
		if !ok {
			return nil, fmt.Errorf("sta: broken path at net %s", inNet.Name)
		}
		net, cur = inNet, prev
		if len(path) > 10000 {
			return nil, fmt.Errorf("sta: path trace runaway")
		}
	}
	// Reverse to source-to-sink order.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path, nil
}

// NetsByName returns all net names sorted, for deterministic reporting.
func (c *Circuit) NetsByName() []string {
	names := make([]string, 0, len(c.nets))
	for n := range c.nets {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
