// Package sta is a small gate-level static timing analyzer built on the
// proximity delay model — the downstream application that motivates the
// paper (proximity-aware delay calculation is absent from conventional
// single-switching-input timing analysis).
//
// Two analysis modes are provided:
//
//   - Conventional: each gate-output transition is timed from the causing
//     input with the latest (input arrival + single-input pin delay), the
//     classic one-input-switching assumption the paper criticizes.
//   - Proximity: all causing inputs arriving within the proximity window
//     are evaluated together with Algorithm ProximityDelay, capturing the
//     speedups (parallel conduction) and slowdowns (series stacks still in
//     transit) that the conventional mode misses.
package sta

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/waveform"
)

// Library maps gate type names (e.g. "nand2") to characterized calculators.
type Library struct {
	calcs map[string]*core.Calculator
}

// NewLibrary returns an empty library.
func NewLibrary() *Library { return &Library{calcs: map[string]*core.Calculator{}} }

// Add registers a calculator under a type name.
func (l *Library) Add(name string, calc *core.Calculator) { l.calcs[name] = calc }

// Get returns the calculator for a type name (nil if absent).
func (l *Library) Get(name string) *core.Calculator { return l.calcs[name] }

// Net is a wire in the gate-level circuit.
type Net struct {
	Name   string
	Driver *Gate // nil for primary inputs
	// id is the net's dense integer identity within its circuit, assigned
	// at creation in declaration order. It indexes the Result arrival store
	// and the compiled cone tables, so arrival lookup is a slice index, not
	// a map probe.
	id int32
}

// Gate is one logic-cell instance.
type Gate struct {
	Name string
	Type string
	Calc *core.Calculator
	In   []*Net
	Out  *Net
	// idx is the gate's dense position in Circuit.Gates, assigned at AddGate.
	// Levelization and incremental recompile index by it instead of carrying
	// a map[*Gate]int per build.
	idx int32
}

// Circuit is a combinational gate-level netlist.
type Circuit struct {
	lib   *Library
	nets  map[string]*Net
	Gates []*Gate
	PIs   []*Net
	POs   []*Net
	// piSet mirrors PIs for O(1) membership tests; without it, declaring n
	// inputs is O(n²) and every Analyze revalidation rescans the slice.
	piSet map[*Net]bool
	// poSet mirrors POs so repeated output declarations collapse to one —
	// a duplicated `output` line must not duplicate arrivals in reports.
	poSet map[*Net]bool

	// compiled memoizes Compile so the Analyze entry points don't pay
	// levelization (and cone construction) per call on an unchanged
	// netlist. Staleness is structural: all mutations (Input, AddGate, net
	// creation) append, so a handle is current exactly when its snapshot
	// counts match the circuit's — no dirty flag to keep in sync. A stale
	// handle seeds an incremental recompile of just the appended suffix
	// (see recompile in incremental.go); handles already obtained by
	// callers keep working against the snapshot they hold. Concurrent
	// Analyze callers may race to fill it, which is safe — every handle
	// built from the same structure is equivalent.
	compileMu sync.Mutex
	compiled  *Compiled
}

// NewCircuit returns an empty circuit over a library.
func NewCircuit(lib *Library) *Circuit {
	return &Circuit{lib: lib, nets: map[string]*Net{}, piSet: map[*Net]bool{}, poSet: map[*Net]bool{}}
}

// Input declares (or returns) a primary-input net.
func (c *Circuit) Input(name string) *Net {
	n := c.net(name)
	if !c.piSet[n] {
		c.piSet[n] = true
		c.PIs = append(c.PIs, n)
	}
	return n
}

// IsPI reports whether n is a declared primary input.
func (c *Circuit) IsPI(n *Net) bool { return c.piSet[n] }

// net returns the named net, creating it if needed.
func (c *Circuit) net(name string) *Net {
	if n, ok := c.nets[name]; ok {
		return n
	}
	n := &Net{Name: name, id: int32(len(c.nets))}
	c.nets[name] = n
	return n
}

// NumNets returns how many nets the circuit currently holds. Net IDs are
// dense in [0, NumNets).
func (c *Circuit) NumNets() int { return len(c.nets) }

// Net returns an existing net by name (nil if undeclared).
func (c *Circuit) Net(name string) *Net { return c.nets[name] }

// ForwardNet returns the named net, creating it (undriven) if needed — for
// forward references while wiring feedback or not-yet-driven nets.
func (c *Circuit) ForwardNet(name string) *Net { return c.net(name) }

// AddGate instantiates a library gate driving a fresh net named outName.
func (c *Circuit) AddGate(instName, typeName, outName string, inputs ...*Net) (*Net, error) {
	calc := c.lib.Get(typeName)
	if calc == nil {
		return nil, fmt.Errorf("sta: unknown gate type %q", typeName)
	}
	if calc.Model.NumInputs != len(inputs) {
		return nil, fmt.Errorf("sta: gate %s (%s) takes %d inputs, got %d",
			instName, typeName, calc.Model.NumInputs, len(inputs))
	}
	out := c.net(outName)
	if out.Driver != nil {
		return nil, fmt.Errorf("sta: net %s already driven by %s", outName, out.Driver.Name)
	}
	g := &Gate{Name: instName, Type: typeName, Calc: calc, In: inputs, Out: out, idx: int32(len(c.Gates))}
	out.Driver = g
	c.Gates = append(c.Gates, g)
	return out, nil
}

// MarkOutput declares a primary output. Re-declaring the same net is a
// no-op, so a duplicated `output` line cannot double its arrivals in
// responses and reports.
func (c *Circuit) MarkOutput(n *Net) {
	if c.poSet[n] {
		return
	}
	c.poSet[n] = true
	c.POs = append(c.POs, n)
}

// levelize groups the gates into topological levels with Kahn's algorithm:
// level 0 holds the gates fed only by primary inputs, and every other gate
// sits one level past the deepest gate driving any of its inputs. All gates
// within one level are therefore mutually independent — the unit of
// parallelism Analyze exploits. The traversal is iterative, so arbitrarily
// deep gate chains cannot overflow the stack (the previous recursive DFS
// died on netlists ~100k gates deep), and deterministic: levels list gates
// in netlist order.
func (c *Circuit) levelize() ([][]*Gate, error) {
	// Fanout edges in CSR form: counting pass, prefix sums, fill pass — two
	// flat arrays instead of one growing slice per gate. Gates carry their
	// dense index (Gate.idx), so no identity map is needed.
	indeg := make([]int, len(c.Gates))
	offs := make([]int32, len(c.Gates)+1)
	for _, g := range c.Gates {
		for _, in := range g.In {
			if in.Driver != nil {
				offs[in.Driver.idx+1]++
			}
		}
	}
	for i := 0; i < len(c.Gates); i++ {
		offs[i+1] += offs[i]
	}
	edges := make([]int32, offs[len(c.Gates)])
	pos := make([]int32, len(c.Gates))
	copy(pos, offs[:len(c.Gates)])
	for i, g := range c.Gates {
		for _, in := range g.In {
			if in.Driver == nil {
				continue
			}
			d := in.Driver.idx
			edges[pos[d]] = int32(i)
			pos[d]++
			indeg[i]++
		}
	}
	frontier := make([]int, 0, len(c.Gates))
	for i := range c.Gates {
		if indeg[i] == 0 {
			frontier = append(frontier, i)
		}
	}
	var levels [][]*Gate
	next := make([]int, 0, len(c.Gates))
	placed := 0
	for len(frontier) > 0 {
		level := make([]*Gate, len(frontier))
		for k, i := range frontier {
			level[k] = c.Gates[i]
		}
		levels = append(levels, level)
		placed += len(frontier)
		next = next[:0]
		for _, i := range frontier {
			for _, j := range edges[offs[i]:offs[i+1]] {
				indeg[j]--
				if indeg[j] == 0 {
					next = append(next, int(j))
				}
			}
		}
		sort.Ints(next)
		frontier, next = next, frontier
	}
	if placed != len(c.Gates) {
		for i, g := range c.Gates {
			if indeg[i] > 0 {
				return nil, fmt.Errorf("sta: combinational loop through gate %s", g.Name)
			}
		}
		return nil, fmt.Errorf("sta: combinational loop detected")
	}
	return levels, nil
}

// Levels exposes the levelized schedule (for reporting and tests).
func (c *Circuit) Levels() ([][]*Gate, error) { return c.levelize() }

// Mode selects the delay-calculation policy.
type Mode int

const (
	Proximity Mode = iota
	Conventional
)

func (m Mode) String() string {
	if m == Conventional {
		return "conventional"
	}
	return "proximity"
}

// Arrival is one transition event on a net.
type Arrival struct {
	Dir  waveform.Direction
	Time float64 // measurement-level crossing time
	TT   float64 // transition time
	// FromGate and FromPin record the causing gate and its dominant input
	// pin for path tracing (FromGate nil at primary inputs).
	FromGate *Gate
	FromPin  int
	// UsedInputs counts how many switching inputs the delay calculation
	// combined (1 = single-arc; >1 = genuine proximity evaluation).
	UsedInputs int
}

// PIEvent is a primary-input stimulus.
type PIEvent struct {
	Net  *Net
	Dir  waveform.Direction
	Time float64
	TT   float64
}

// Options tunes how Analyze executes. The zero value picks defaults.
type Options struct {
	// Workers bounds evaluation concurrency within a topological level:
	// 0 derives a default from the CPU count, 1 forces the serial
	// reference path. Results are bit-identical at every setting — the
	// schedule changes, the arithmetic does not.
	Workers int
	// Dense disables cone-pruned sparse scheduling and walks every gate at
	// every level, the pre-sparse reference schedule. The default (false)
	// schedules only the gates inside the fanout cones of the stimulated
	// primary inputs; both schedules are bit-identical in their results, so
	// Dense exists as an escape hatch and as the oracle's reference.
	Dense bool
	// Trace, when non-nil, records Chrome trace_event spans for the
	// analysis: compile (if it happens), schedule construction, each
	// evaluation level, and the per-worker shares within a level. nil (the
	// default) records nothing and costs nothing beyond dead nil-checks —
	// the hot path stays hot.
	Trace *obs.Trace
	// Perturb, when non-nil, supplies a per-gate multiplier applied to the
	// table-backed delay and output transition time of every evaluation of
	// that gate — the process-variation hook Monte-Carlo analysis injects
	// (see AnalyzeMC). The multiplier must be positive and finite; a
	// returned 1.0 performs bit-identical arithmetic to the unperturbed
	// path (the perturbation terms are guarded, not multiplied through).
	// nil means no perturbation and costs one nil-check per gate.
	Perturb func(gate int32) float64
	// PulseFiltering enables the Section-6 inertial-delay post-pass: when a
	// gate's output carries BOTH directions in one analysis (an
	// opposite-edge pair — a runt pulse), the pair's glitch macromodel is
	// consulted at commit time. Below the pair's minimum separation the
	// pulse is absorbed (neither output arrival commits,
	// Stats.PulsesFiltered counts it); above it the surviving pulse's
	// leading edge propagates with a transition time degraded by the swing
	// deficit (Stats.PulsesDegraded). Pairs without a characterized glitch
	// model, or whose leading-edge polarity does not match the
	// characterized glitch, propagate untouched. Off (the default) performs
	// bit-identical arithmetic to an engine without the feature.
	PulseFiltering bool
}

// defaultWorkers mirrors the characterization pools' policy (see
// macromodel.parallelFill3): one worker per CPU, capped.
func defaultWorkers() int {
	n := runtime.NumCPU()
	if n > 16 {
		n = 16
	}
	if n < 1 {
		n = 1
	}
	return n
}

// LevelStat records one topological level's share of an analysis.
type LevelStat struct {
	Gates int
	Wall  time.Duration
}

// Stats counts what an analysis actually did, so benchmarks and reports
// have something to read beyond arrival times.
type Stats struct {
	Workers        int
	Levels         int
	// GatesEvaluated counts gates whose evaluation produced at least one
	// output arrival — including gates whose opposite-edge pair pulse
	// filtering later absorbed (the evaluation work happened either way).
	GatesEvaluated int
	Evaluations    int // per-direction delay calculations
	ProximityEvals int // evaluations combining >1 switching input
	SingleArcEvals int // evaluations timed from a single arc
	// GatesScheduled counts gates the schedule visited: every gate of every
	// level in dense mode, only the active-cone gates in sparse mode. The
	// difference against the gate count is what cone pruning saved.
	GatesScheduled int
	// GatesReevaluated and GatesReused are delta-analysis accounting
	// (AnalyzeDelta): how many gates the dirty-propagation walk actually
	// re-ran evalGate on, and how many baseline-evaluated gates it carried
	// over untouched. Full analyses leave both zero.
	GatesReevaluated int
	GatesReused      int
	// PulsesFiltered and PulsesDegraded are Section-6 pulse-filtering
	// accounting (Options.PulseFiltering): how many opposite-edge output
	// pairs the inertial-delay model absorbed outright, and how many
	// survived with a degraded transition time. Zero when filtering is off.
	PulsesFiltered int
	PulsesDegraded int
	// PulsesUnjudged counts opposite-edge output pairs the filter saw but
	// could not judge because the library carries no glitch model for the
	// causing pin pair — notably both edges caused by the SAME input pin,
	// the shape a surviving degraded pulse takes one level downstream
	// (Glitch(p, p) is never characterized). The pair propagates untouched;
	// the counter makes the multi-level chaining blind spot observable.
	PulsesUnjudged int
	// PerLevel has one entry per topological level; Gates is the number of
	// gates scheduled at that level (in sparse mode, levels outside the
	// active cones record zero).
	PerLevel []LevelStat
	// Phases breaks the analysis wall time into the engine's accounting
	// buckets (compile, cone build, schedule, seed, eval, commit). The
	// buckets are disjoint intervals, so Phases.Sum() <= Wall. Always on:
	// the cost is a handful of clock reads per analysis.
	Phases obs.PhaseTimes
	// Wall is the total wall time of this analysis, including any compile
	// the entry point performed on its behalf.
	Wall time.Duration
}

// dirArrivals stores a net's arrivals indexed by direction (Rising=0,
// Falling=1) — a flat struct instead of a per-net map, so large analyses
// allocate one small object per net rather than a hash table each.
type dirArrivals struct {
	a   [2]Arrival
	has [2]bool
}

// Result holds per-net arrivals after analysis. The store is indexed by net
// ID through a flat int32 table into a compact arrival slab, so Arrival is
// two bounds checks and two array reads, and a cone-pruned analysis that
// touches 50 of 14000 nets allocates (and the GC later scans) 50 arrival
// slots, not 14000 — only the pointer-free index scales with the netlist.
// A Result is only meaningful for nets of the circuit that produced it.
type Result struct {
	Mode  Mode
	Stats Stats
	idx   []int32       // net ID -> 1-based slot in arr (0 = no arrivals)
	arr   []dirArrivals // compact: one entry per net that carries an arrival

	// pulseFiltering records whether this result was produced with
	// Options.PulseFiltering on, so post-passes that re-run gate
	// evaluations (Explain) apply the same filter the commit did.
	pulseFiltering bool
	// pulses maps output net ID -> the Section-6 verdict applied there
	// (filtered, degraded or unjudged pairs; pairs the characterized model
	// passes through untouched leave no record). nil unless filtering ran
	// and recorded at least one pair.
	pulses map[int32]PulseInfo
	// pulseRaw maps output net ID -> the pre-filter arrival pair of an
	// ABSORBED opposite-edge pair: the evaluation's output before the
	// verdict cleared it. The committed store can no longer say how much
	// evaluation work the absorbed gate did (UsedInputs per direction), and
	// delta re-analysis must adjust those counters exactly when an edit
	// resurrects or re-absorbs the pair — so the raw shape is kept here.
	// nil unless filtering absorbed at least one pair.
	pulseRaw map[int32]dirArrivals
}

// slot returns (creating if needed) the net's arrival store.
func (r *Result) slot(n *Net) *dirArrivals {
	if r.idx[n.id] == 0 {
		r.arr = append(r.arr, dirArrivals{})
		r.idx[n.id] = int32(len(r.arr))
	}
	return &r.arr[r.idx[n.id]-1]
}

// Arrival returns the arrival of a net in the given direction; ok=false if
// the net never transitions that way (or was created after the analysis
// compiled, and therefore cannot carry one).
func (r *Result) Arrival(n *Net, dir waveform.Direction) (Arrival, bool) {
	if n == nil || int(n.id) >= len(r.idx) || r.idx[n.id] == 0 {
		return Arrival{}, false
	}
	da := &r.arr[r.idx[n.id]-1]
	if !da.has[dir] {
		return Arrival{}, false
	}
	return da.a[dir], true
}

// bothDirs enumerates the two transition directions as an array, so hot
// per-output loops (Latest, WorstSlack — per PO per request in the service's
// response builder) range over it without allocating a slice each call.
var bothDirs = [2]waveform.Direction{waveform.Rising, waveform.Falling}

// Latest returns the latest arrival across both directions of a net.
func (r *Result) Latest(n *Net) (Arrival, bool) {
	var best Arrival
	found := false
	for _, dir := range bothDirs {
		if a, ok := r.Arrival(n, dir); ok && (!found || a.Time > best.Time) {
			best = a
			found = true
		}
	}
	return best, found
}

// Analyze propagates the primary-input events through the circuit.
//
// Each net carries at most one arrival per direction. A gate output
// transition in direction d is caused by the input arrivals in direction
// opposite(d) (all library gates are inverting). In Proximity mode every
// causing input within the dominant input's proximity window contributes via
// Algorithm ProximityDelay; in Conventional mode the latest causing input's
// single-input delay wins.
//
// Evaluation runs over the levelized schedule with a bounded worker pool
// (Options.Workers via AnalyzeOpts; Analyze uses the default). Gates within
// one topological level are independent, so the parallel schedule performs
// exactly the serial arithmetic and the results are bit-identical.
func (c *Circuit) Analyze(events []PIEvent, mode Mode) (*Result, error) {
	return c.AnalyzeOpts(events, mode, Options{})
}

// AnalyzeOpts is Analyze with explicit execution options.
func (c *Circuit) AnalyzeOpts(events []PIEvent, mode Mode, opt Options) (*Result, error) {
	compileStart := time.Now()
	p, fresh, err := c.compileTimed(opt.Trace)
	if err != nil {
		return nil, err
	}
	compileWall := time.Since(compileStart)
	res, err := p.Analyze(context.Background(), events, mode, opt)
	if err != nil {
		return nil, err
	}
	// Account the compile this call performed (near-zero on a memoized
	// handle) into the result's phase breakdown and total wall.
	res.Stats.Phases.Add(obs.PhaseCompile, compileWall)
	if fresh {
		res.Stats.Phases.Add(obs.PhaseLevelize, p.levelizeWall)
	}
	res.Stats.Wall += compileWall
	return res, nil
}

// AnalyzeBatch analyzes N independent primary-input vectors against ONE
// shared levelization of the circuit — the heavy-traffic shape where the
// netlist is fixed and stimuli stream through. Vectors are spread across
// the worker budget (each vector runs the serial per-gate path, so the
// budget is not oversubscribed); every result is bit-identical to Analyze
// on the same events. The first failing vector (lowest index) aborts the
// batch.
func (c *Circuit) AnalyzeBatch(batch [][]PIEvent, mode Mode, opt Options) ([]*Result, error) {
	compileStart := time.Now()
	p, fresh, err := c.compileTimed(opt.Trace)
	if err != nil {
		return nil, err
	}
	compileWall := time.Since(compileStart)
	results, err := p.AnalyzeBatch(context.Background(), batch, mode, opt)
	if err != nil {
		return nil, err
	}
	// Attribute the compile this call performed to the batch's first result,
	// mirroring AnalyzeOpts — one compile happened, so exactly one result
	// carries it, and the service's phase histograms see it.
	results[0].Stats.Phases.Add(obs.PhaseCompile, compileWall)
	if fresh {
		results[0].Stats.Phases.Add(obs.PhaseLevelize, p.levelizeWall)
	}
	results[0].Stats.Wall += compileWall
	return results, nil
}

// Compiled is a reusable analysis handle: a circuit bound to its levelized
// schedule. Compiling once and analyzing many times is the long-lived
// service shape — the topological sort is paid per netlist upload, not per
// stimulus vector. The handle snapshots the schedule: structural edits to
// the circuit (AddGate, Input) after Compile are not reflected until the
// circuit is compiled again.
//
// A Compiled handle is safe for concurrent use: Analyze and AnalyzeBatch
// only read the circuit and schedule (the lazily built cone tables are
// guarded by a sync.Once, the per-vector scratch by a sync.Pool).
type Compiled struct {
	c      *Circuit
	levels [][]*Gate
	gates  int

	// Snapshots taken at compile time; structural edits to the circuit
	// afterwards are not reflected (and events on nets created after the
	// compile are rejected rather than silently mis-indexed).
	numNets  int
	gateList []*Gate   // gate index -> *Gate, netlist order
	levelIdx [][]int32 // the levelized schedule as gate indices
	pis      []*Net    // primary inputs at compile time

	maxWidth int // widest level, sizes the per-level eval buffer

	// levelizeWall is the wall time the topological sort took inside this
	// handle's (single, possibly shared) compile — reported into the phase
	// breakdown of the analyze call that triggered the build.
	levelizeWall time.Duration

	// gateLevel maps gate index -> topological level, built at compile time
	// (it is the levelized schedule in a second shape, O(gates) to fill).
	gateLevel []int32

	// Net -> consuming-gate edges in CSR form over net IDs, built lazily on
	// first use (cone construction, delta propagation): consumers of net id
	// n are cons[consOff[n]:consOff[n+1]], gate indices ascending.
	consOnce sync.Once
	consOff  []int32
	cons     []int32

	// Per-PI fanout cones, built lazily on the first sparse analysis (the
	// Dense escape hatch never pays for them). CSR layout: cone of PI
	// ordinal k is cones[coneOff[k]:coneOff[k+1]], gate indices in BFS
	// order. piOrd maps net ID -> PI ordinal (-1 for non-PIs). conesReady
	// lets an incremental recompile see (without blocking) whether the old
	// handle ever built cones and therefore whether prefiring new ones is
	// worth it.
	coneOnce   sync.Once
	conesReady atomic.Bool
	coneOff    []int32
	cones      []int32
	piOrd      []int32

	scratch sync.Pool // *evalScratch
}

// Compile levelizes the circuit into a reusable analysis handle. It fails
// exactly when Analyze would: on a combinational loop. The handle is
// memoized on the circuit until the next structural mutation, so repeated
// Analyze/AnalyzeBatch calls share one levelization, one set of fanout
// cones and one scratch pool.
func (c *Circuit) Compile() (*Compiled, error) {
	p, _, err := c.compileTimed(nil)
	return p, err
}

// stale reports whether a memoized handle no longer matches the circuit's
// structure. All mutations append (gates, nets, primary inputs), so count
// equality against the snapshot is an exact currency test.
func (c *Circuit) stale(p *Compiled) bool {
	return p.gates != len(c.Gates) || p.numNets != len(c.nets) || len(p.pis) != len(c.PIs)
}

// compileTimed is Compile with span recording and a freshness report:
// fresh is true when this call actually built the handle (rather than
// reusing the memoized one), which is when its levelizeWall is chargeable
// to the caller. tr == nil records nothing. A stale memoized handle is not
// discarded: it seeds an incremental recompile that re-levelizes and
// re-cones only the appended suffix and its downstream fanout.
func (c *Circuit) compileTimed(tr *obs.Trace) (p *Compiled, fresh bool, err error) {
	c.compileMu.Lock()
	old := c.compiled
	c.compileMu.Unlock()
	if old != nil && !c.stale(old) {
		return old, false, nil
	}

	compileSpan := tr.Begin(0, 0, "sta", "compile").Arg("gates", len(c.Gates))
	if old != nil {
		p, err = c.recompile(old, tr)
	} else {
		p, err = c.compileFull(tr)
	}
	if err != nil {
		compileSpan.End()
		return nil, false, err
	}
	c.compileMu.Lock()
	if cur := c.compiled; cur != old && cur != nil && !c.stale(cur) {
		p = cur // another caller built a current handle first; share theirs
	} else {
		c.compiled = p
		fresh = true
	}
	c.compileMu.Unlock()
	compileSpan.Arg("levels", len(p.levels)).End()
	return p, fresh, nil
}

// compileFull levelizes the whole circuit from scratch into a new handle.
func (c *Circuit) compileFull(tr *obs.Trace) (*Compiled, error) {
	levelizeSpan := tr.Begin(0, 0, "sta", "levelize")
	levelizeStart := time.Now()
	levels, err := c.levelize()
	levelizeWall := time.Since(levelizeStart)
	levelizeSpan.End()
	if err != nil {
		return nil, err
	}
	p := &Compiled{
		c:            c,
		levels:       levels,
		gates:        len(c.Gates),
		numNets:      len(c.nets),
		pis:          append([]*Net(nil), c.PIs...),
		levelizeWall: levelizeWall,
	}
	p.gateList = append([]*Gate(nil), c.Gates...)
	p.gateLevel = make([]int32, p.gates)
	p.levelIdx = make([][]int32, len(levels))
	for li, level := range levels {
		if len(level) > p.maxWidth {
			p.maxWidth = len(level)
		}
		row := make([]int32, len(level))
		for k, g := range level {
			row[k] = g.idx
			p.gateLevel[g.idx] = int32(li)
		}
		p.levelIdx[li] = row
	}
	p.scratch.New = func() any { return newEvalScratch(p) }
	return p, nil
}

// Circuit returns the underlying circuit (for net lookup and reporting).
func (p *Compiled) Circuit() *Circuit { return p.c }

// NumGates returns the gate count captured at compile time.
func (p *Compiled) NumGates() int { return p.gates }

// NumLevels returns the depth of the levelized schedule.
func (p *Compiled) NumLevels() int { return len(p.levels) }

// Levels exposes the handle's levelized schedule (shared storage — callers
// must not mutate). Unlike Circuit.Levels it reads the snapshot instead of
// re-running the topological sort, so tests can compare an incrementally
// recompiled schedule against a from-scratch one.
func (p *Compiled) Levels() [][]*Gate { return p.levels }

// Analyze runs one stimulus vector over the precompiled schedule. The
// context is checked at every level boundary, so a canceled or expired
// request abandons a deep netlist promptly instead of walking it to the end.
func (p *Compiled) Analyze(ctx context.Context, events []PIEvent, mode Mode, opt Options) (*Result, error) {
	return p.analyze(ctx, events, mode, opt, 0)
}

// AnalyzeBatch fans N independent vectors across the worker budget against
// the precompiled schedule (see Circuit.AnalyzeBatch for the semantics).
// Cancellation aborts the batch between vectors and between levels.
func (p *Compiled) AnalyzeBatch(ctx context.Context, batch [][]PIEvent, mode Mode, opt Options) ([]*Result, error) {
	if len(batch) == 0 {
		// Reject like analyze rejects an empty vector: a no-op batch is a
		// caller bug, and ([], nil) upstream reads as a successful analysis.
		return nil, fmt.Errorf("sta: empty batch (no stimulus vectors)")
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = defaultWorkers()
	}
	if workers > len(batch) {
		workers = len(batch)
	}
	results := make([]*Result, len(batch))
	errs := make([]error, len(batch))
	// Copy the caller's options wholesale and override only the concurrency:
	// each vector runs the serial per-gate path so the worker budget is
	// spent across vectors, not inside them. Rebuilding the struct
	// field-by-field here silently dropped Perturb (and before that,
	// PulseFiltering) every time Options grew a knob.
	perVector := opt
	perVector.Workers = 1
	if workers <= 1 {
		for i, events := range batch {
			results[i], errs[i] = p.analyze(ctx, events, mode, perVector, int64(i))
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1) - 1)
					if i >= len(batch) {
						return
					}
					results[i], errs[i] = p.analyze(ctx, batch[i], mode, perVector, int64(i))
				}
			}()
		}
		wg.Wait()
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("sta: batch vector %d: %w", i, err)
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("sta: batch interrupted: %w", err)
	}
	return results, nil
}

// gateEval is one gate's computed output arrivals (or failure) within a
// level, buffered so workers never touch the shared arrival map: results
// are committed serially, in netlist order, after the level barrier. Plain
// values (indexed by direction), so a level's evaluations allocate nothing.
type gateEval struct {
	a   [2]Arrival
	has [2]bool
	err error
}

// evalGate computes both output-direction arrivals of one gate from the
// already-committed arrivals of earlier levels. It only reads res; buf is
// the caller's reusable input-event scratch (one per worker). mult is the
// process-variation multiplier for this gate (1 for the unperturbed path —
// see Options.Perturb).
func evalGate(g *Gate, res *Result, mode Mode, buf *[]core.InputEvent, mult float64) gateEval {
	var out gateEval
	for _, outDir := range [2]waveform.Direction{waveform.Rising, waveform.Falling} {
		inDir := outDir.Opposite()
		evs := (*buf)[:0]
		for pin, in := range g.In {
			if a, ok := res.Arrival(in, inDir); ok {
				evs = append(evs, core.InputEvent{Pin: pin, Dir: inDir, TT: a.TT, Cross: a.Time})
			}
		}
		*buf = evs // keep any capacity growth for the next gate
		if len(evs) == 0 {
			continue
		}
		a, err := g.eval(evs, outDir, mode, mult)
		if err != nil {
			out.err = fmt.Errorf("sta: gate %s %v output: %w", g.Name, outDir, err)
			return out
		}
		out.a[outDir] = a
		out.has[outDir] = true
	}
	return out
}

// eval computes one gate-output arrival. mult scales the gate's contribution
// (delay and output transition time) to model process variation; the scaled
// arithmetic is guarded behind mult != 1, so the unperturbed path performs
// exactly the original operations, bit for bit.
func (g *Gate) eval(evs []core.InputEvent, outDir waveform.Direction, mode Mode, mult float64) (Arrival, error) {
	if mode == Conventional {
		// Latest (arrival + single-input delay) wins; TT comes from the
		// winning arc.
		best := Arrival{Dir: outDir, Time: math.Inf(-1)}
		for _, e := range evs {
			d, tt, err := g.Calc.SingleDelay(e.Pin, e.Dir, e.TT)
			if err != nil {
				// Name the pin and its net here; the caller prefixes the
				// gate and output direction — same context the proximity
				// path's core errors carry.
				return Arrival{}, fmt.Errorf("input pin %d (net %s) %v: %w", e.Pin, g.In[e.Pin].Name, e.Dir, err)
			}
			if mult != 1 {
				d *= mult
				tt *= mult
			}
			if t := e.Cross + d; t > best.Time {
				best = Arrival{Dir: outDir, Time: t, TT: tt, FromGate: g, FromPin: e.Pin, UsedInputs: 1}
			}
		}
		if best.FromGate == nil {
			// Every arc produced a non-comparable (NaN) candidate; a
			// zero-FromGate arrival would break path tracing downstream.
			return Arrival{}, fmt.Errorf("no finite single-arc delay among %d switching inputs", len(evs))
		}
		return best, nil
	}
	r, err := g.Calc.Evaluate(evs)
	if err != nil {
		return Arrival{}, err
	}
	a := Arrival{
		Dir:        outDir,
		Time:       r.OutputCross,
		TT:         r.OutTT,
		FromGate:   g,
		FromPin:    r.Dominant,
		UsedInputs: r.UsedDelay,
	}
	if mult != 1 {
		// The crossing time decomposes as (dominant-input cross) + Delay;
		// only the gate's own Delay contribution scales with its process
		// corner, so the perturbed crossing is OutputCross + Delay*(mult-1).
		a.Time = r.OutputCross + r.Delay*(mult-1)
		a.TT = r.OutTT * mult
	}
	return a, nil
}

// Slack returns required − arrival for a net/direction; ok is false when
// the net never transitions that way.
func (r *Result) Slack(n *Net, dir waveform.Direction, required float64) (float64, bool) {
	a, ok := r.Arrival(n, dir)
	if !ok {
		return 0, false
	}
	return required - a.Time, true
}

// WorstSlack returns the minimum slack over the given nets (both
// directions) against a common required time, with the offending net and
// arrival. ok is false when none of the nets carries an arrival.
func (r *Result) WorstSlack(nets []*Net, required float64) (slack float64, at *Net, arr Arrival, ok bool) {
	slack = math.Inf(1)
	for _, n := range nets {
		for _, dir := range bothDirs {
			if a, has := r.Arrival(n, dir); has {
				if s := required - a.Time; s < slack {
					slack, at, arr, ok = s, n, a, true
				}
			}
		}
	}
	if !ok {
		return 0, nil, Arrival{}, false
	}
	return slack, at, arr, true
}

// PathStep is one hop of a traced critical path.
type PathStep struct {
	Net     *Net
	Arrival Arrival
}

// CriticalPath traces back from a net/direction to a primary input by
// following each arrival's dominant causing pin.
func (r *Result) CriticalPath(n *Net, dir waveform.Direction) ([]PathStep, error) {
	var path []PathStep
	cur, ok := r.Arrival(n, dir)
	if !ok {
		return nil, fmt.Errorf("sta: net %s has no %v arrival", n.Name, dir)
	}
	net := n
	for {
		path = append(path, PathStep{Net: net, Arrival: cur})
		if cur.FromGate == nil {
			break
		}
		inNet := cur.FromGate.In[cur.FromPin]
		prev, ok := r.Arrival(inNet, cur.Dir.Opposite())
		if !ok {
			return nil, fmt.Errorf("sta: broken path at net %s", inNet.Name)
		}
		net, cur = inNet, prev
		// A valid trace visits each populated net at most once per
		// direction; more steps than that means the back-pointers form a
		// cycle. (Bounded by the compact store size, not the net count: a
		// sparse result indexes every net, but only nets inside the
		// stimulated cones carry arrivals a trace can visit.)
		if len(path) > 2*len(r.arr)+2 {
			return nil, fmt.Errorf("sta: path trace runaway")
		}
	}
	// Reverse to source-to-sink order.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path, nil
}

// NetsByName returns all net names sorted, for deterministic reporting.
func (c *Circuit) NetsByName() []string {
	names := make([]string, 0, len(c.nets))
	for n := range c.nets {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
