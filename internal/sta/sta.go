// Package sta is a small gate-level static timing analyzer built on the
// proximity delay model — the downstream application that motivates the
// paper (proximity-aware delay calculation is absent from conventional
// single-switching-input timing analysis).
//
// Two analysis modes are provided:
//
//   - Conventional: each gate-output transition is timed from the causing
//     input with the latest (input arrival + single-input pin delay), the
//     classic one-input-switching assumption the paper criticizes.
//   - Proximity: all causing inputs arriving within the proximity window
//     are evaluated together with Algorithm ProximityDelay, capturing the
//     speedups (parallel conduction) and slowdowns (series stacks still in
//     transit) that the conventional mode misses.
package sta

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/waveform"
)

// Library maps gate type names (e.g. "nand2") to characterized calculators.
type Library struct {
	calcs map[string]*core.Calculator
}

// NewLibrary returns an empty library.
func NewLibrary() *Library { return &Library{calcs: map[string]*core.Calculator{}} }

// Add registers a calculator under a type name.
func (l *Library) Add(name string, calc *core.Calculator) { l.calcs[name] = calc }

// Get returns the calculator for a type name (nil if absent).
func (l *Library) Get(name string) *core.Calculator { return l.calcs[name] }

// Net is a wire in the gate-level circuit.
type Net struct {
	Name   string
	Driver *Gate // nil for primary inputs
}

// Gate is one logic-cell instance.
type Gate struct {
	Name string
	Type string
	Calc *core.Calculator
	In   []*Net
	Out  *Net
}

// Circuit is a combinational gate-level netlist.
type Circuit struct {
	lib   *Library
	nets  map[string]*Net
	Gates []*Gate
	PIs   []*Net
	POs   []*Net
	// piSet mirrors PIs for O(1) membership tests; without it, declaring n
	// inputs is O(n²) and every Analyze revalidation rescans the slice.
	piSet map[*Net]bool
	// poSet mirrors POs so repeated output declarations collapse to one —
	// a duplicated `output` line must not duplicate arrivals in reports.
	poSet map[*Net]bool
}

// NewCircuit returns an empty circuit over a library.
func NewCircuit(lib *Library) *Circuit {
	return &Circuit{lib: lib, nets: map[string]*Net{}, piSet: map[*Net]bool{}, poSet: map[*Net]bool{}}
}

// Input declares (or returns) a primary-input net.
func (c *Circuit) Input(name string) *Net {
	n := c.net(name)
	if !c.piSet[n] {
		c.piSet[n] = true
		c.PIs = append(c.PIs, n)
	}
	return n
}

// IsPI reports whether n is a declared primary input.
func (c *Circuit) IsPI(n *Net) bool { return c.piSet[n] }

// net returns the named net, creating it if needed.
func (c *Circuit) net(name string) *Net {
	if n, ok := c.nets[name]; ok {
		return n
	}
	n := &Net{Name: name}
	c.nets[name] = n
	return n
}

// Net returns an existing net by name (nil if undeclared).
func (c *Circuit) Net(name string) *Net { return c.nets[name] }

// ForwardNet returns the named net, creating it (undriven) if needed — for
// forward references while wiring feedback or not-yet-driven nets.
func (c *Circuit) ForwardNet(name string) *Net { return c.net(name) }

// AddGate instantiates a library gate driving a fresh net named outName.
func (c *Circuit) AddGate(instName, typeName, outName string, inputs ...*Net) (*Net, error) {
	calc := c.lib.Get(typeName)
	if calc == nil {
		return nil, fmt.Errorf("sta: unknown gate type %q", typeName)
	}
	if calc.Model.NumInputs != len(inputs) {
		return nil, fmt.Errorf("sta: gate %s (%s) takes %d inputs, got %d",
			instName, typeName, calc.Model.NumInputs, len(inputs))
	}
	out := c.net(outName)
	if out.Driver != nil {
		return nil, fmt.Errorf("sta: net %s already driven by %s", outName, out.Driver.Name)
	}
	g := &Gate{Name: instName, Type: typeName, Calc: calc, In: inputs, Out: out}
	out.Driver = g
	c.Gates = append(c.Gates, g)
	return out, nil
}

// MarkOutput declares a primary output. Re-declaring the same net is a
// no-op, so a duplicated `output` line cannot double its arrivals in
// responses and reports.
func (c *Circuit) MarkOutput(n *Net) {
	if c.poSet[n] {
		return
	}
	c.poSet[n] = true
	c.POs = append(c.POs, n)
}

// levelize groups the gates into topological levels with Kahn's algorithm:
// level 0 holds the gates fed only by primary inputs, and every other gate
// sits one level past the deepest gate driving any of its inputs. All gates
// within one level are therefore mutually independent — the unit of
// parallelism Analyze exploits. The traversal is iterative, so arbitrarily
// deep gate chains cannot overflow the stack (the previous recursive DFS
// died on netlists ~100k gates deep), and deterministic: levels list gates
// in netlist order.
func (c *Circuit) levelize() ([][]*Gate, error) {
	idx := make(map[*Gate]int, len(c.Gates))
	for i, g := range c.Gates {
		idx[g] = i
	}
	// Fanout edges in CSR form: counting pass, prefix sums, fill pass — two
	// flat arrays instead of one growing slice per gate.
	indeg := make([]int, len(c.Gates))
	offs := make([]int32, len(c.Gates)+1)
	for _, g := range c.Gates {
		for _, in := range g.In {
			if in.Driver != nil {
				offs[idx[in.Driver]+1]++
			}
		}
	}
	for i := 0; i < len(c.Gates); i++ {
		offs[i+1] += offs[i]
	}
	edges := make([]int32, offs[len(c.Gates)])
	pos := make([]int32, len(c.Gates))
	copy(pos, offs[:len(c.Gates)])
	for i, g := range c.Gates {
		for _, in := range g.In {
			if in.Driver == nil {
				continue
			}
			d := idx[in.Driver]
			edges[pos[d]] = int32(i)
			pos[d]++
			indeg[i]++
		}
	}
	frontier := make([]int, 0, len(c.Gates))
	for i := range c.Gates {
		if indeg[i] == 0 {
			frontier = append(frontier, i)
		}
	}
	var levels [][]*Gate
	next := make([]int, 0, len(c.Gates))
	placed := 0
	for len(frontier) > 0 {
		level := make([]*Gate, len(frontier))
		for k, i := range frontier {
			level[k] = c.Gates[i]
		}
		levels = append(levels, level)
		placed += len(frontier)
		next = next[:0]
		for _, i := range frontier {
			for _, j := range edges[offs[i]:offs[i+1]] {
				indeg[j]--
				if indeg[j] == 0 {
					next = append(next, int(j))
				}
			}
		}
		sort.Ints(next)
		frontier, next = next, frontier
	}
	if placed != len(c.Gates) {
		for i, g := range c.Gates {
			if indeg[i] > 0 {
				return nil, fmt.Errorf("sta: combinational loop through gate %s", g.Name)
			}
		}
		return nil, fmt.Errorf("sta: combinational loop detected")
	}
	return levels, nil
}

// Levels exposes the levelized schedule (for reporting and tests).
func (c *Circuit) Levels() ([][]*Gate, error) { return c.levelize() }

// Mode selects the delay-calculation policy.
type Mode int

const (
	Proximity Mode = iota
	Conventional
)

func (m Mode) String() string {
	if m == Conventional {
		return "conventional"
	}
	return "proximity"
}

// Arrival is one transition event on a net.
type Arrival struct {
	Dir  waveform.Direction
	Time float64 // measurement-level crossing time
	TT   float64 // transition time
	// FromGate and FromPin record the causing gate and its dominant input
	// pin for path tracing (FromGate nil at primary inputs).
	FromGate *Gate
	FromPin  int
	// UsedInputs counts how many switching inputs the delay calculation
	// combined (1 = single-arc; >1 = genuine proximity evaluation).
	UsedInputs int
}

// PIEvent is a primary-input stimulus.
type PIEvent struct {
	Net  *Net
	Dir  waveform.Direction
	Time float64
	TT   float64
}

// Options tunes how Analyze executes. The zero value picks defaults.
type Options struct {
	// Workers bounds evaluation concurrency within a topological level:
	// 0 derives a default from the CPU count, 1 forces the serial
	// reference path. Results are bit-identical at every setting — the
	// schedule changes, the arithmetic does not.
	Workers int
}

// defaultWorkers mirrors the characterization pools' policy (see
// macromodel.parallelFill3): one worker per CPU, capped.
func defaultWorkers() int {
	n := runtime.NumCPU()
	if n > 16 {
		n = 16
	}
	if n < 1 {
		n = 1
	}
	return n
}

// LevelStat records one topological level's share of an analysis.
type LevelStat struct {
	Gates int
	Wall  time.Duration
}

// Stats counts what an analysis actually did, so benchmarks and reports
// have something to read beyond arrival times.
type Stats struct {
	Workers        int
	Levels         int
	GatesEvaluated int // gates that produced at least one output arrival
	Evaluations    int // per-direction delay calculations
	ProximityEvals int // evaluations combining >1 switching input
	SingleArcEvals int // evaluations timed from a single arc
	PerLevel       []LevelStat
}

// dirArrivals stores a net's arrivals indexed by direction (Rising=0,
// Falling=1) — a flat struct instead of a per-net map, so large analyses
// allocate one small object per net rather than a hash table each.
type dirArrivals struct {
	a   [2]Arrival
	has [2]bool
}

// Result holds per-net arrivals after analysis.
type Result struct {
	Mode     Mode
	Stats    Stats
	arrivals map[*Net]*dirArrivals
}

// Arrival returns the arrival of a net in the given direction; ok=false if
// the net never transitions that way.
func (r *Result) Arrival(n *Net, dir waveform.Direction) (Arrival, bool) {
	da := r.arrivals[n]
	if da == nil || !da.has[dir] {
		return Arrival{}, false
	}
	return da.a[dir], true
}

// Latest returns the latest arrival across both directions of a net.
func (r *Result) Latest(n *Net) (Arrival, bool) {
	var best Arrival
	found := false
	for _, dir := range []waveform.Direction{waveform.Rising, waveform.Falling} {
		if a, ok := r.Arrival(n, dir); ok && (!found || a.Time > best.Time) {
			best = a
			found = true
		}
	}
	return best, found
}

// Analyze propagates the primary-input events through the circuit.
//
// Each net carries at most one arrival per direction. A gate output
// transition in direction d is caused by the input arrivals in direction
// opposite(d) (all library gates are inverting). In Proximity mode every
// causing input within the dominant input's proximity window contributes via
// Algorithm ProximityDelay; in Conventional mode the latest causing input's
// single-input delay wins.
//
// Evaluation runs over the levelized schedule with a bounded worker pool
// (Options.Workers via AnalyzeOpts; Analyze uses the default). Gates within
// one topological level are independent, so the parallel schedule performs
// exactly the serial arithmetic and the results are bit-identical.
func (c *Circuit) Analyze(events []PIEvent, mode Mode) (*Result, error) {
	return c.AnalyzeOpts(events, mode, Options{})
}

// AnalyzeOpts is Analyze with explicit execution options.
func (c *Circuit) AnalyzeOpts(events []PIEvent, mode Mode, opt Options) (*Result, error) {
	p, err := c.Compile()
	if err != nil {
		return nil, err
	}
	return p.Analyze(context.Background(), events, mode, opt)
}

// AnalyzeBatch analyzes N independent primary-input vectors against ONE
// shared levelization of the circuit — the heavy-traffic shape where the
// netlist is fixed and stimuli stream through. Vectors are spread across
// the worker budget (each vector runs the serial per-gate path, so the
// budget is not oversubscribed); every result is bit-identical to Analyze
// on the same events. The first failing vector (lowest index) aborts the
// batch.
func (c *Circuit) AnalyzeBatch(batch [][]PIEvent, mode Mode, opt Options) ([]*Result, error) {
	p, err := c.Compile()
	if err != nil {
		return nil, err
	}
	return p.AnalyzeBatch(context.Background(), batch, mode, opt)
}

// Compiled is a reusable analysis handle: a circuit bound to its levelized
// schedule. Compiling once and analyzing many times is the long-lived
// service shape — the topological sort is paid per netlist upload, not per
// stimulus vector. The handle snapshots the schedule: structural edits to
// the circuit (AddGate, Input) after Compile are not reflected until the
// circuit is compiled again.
//
// A Compiled handle is safe for concurrent use: Analyze and AnalyzeBatch
// only read the circuit and schedule.
type Compiled struct {
	c      *Circuit
	levels [][]*Gate
	gates  int
}

// Compile levelizes the circuit into a reusable analysis handle. It fails
// exactly when Analyze would: on a combinational loop.
func (c *Circuit) Compile() (*Compiled, error) {
	levels, err := c.levelize()
	if err != nil {
		return nil, err
	}
	return &Compiled{c: c, levels: levels, gates: len(c.Gates)}, nil
}

// Circuit returns the underlying circuit (for net lookup and reporting).
func (p *Compiled) Circuit() *Circuit { return p.c }

// NumGates returns the gate count captured at compile time.
func (p *Compiled) NumGates() int { return p.gates }

// NumLevels returns the depth of the levelized schedule.
func (p *Compiled) NumLevels() int { return len(p.levels) }

// Analyze runs one stimulus vector over the precompiled schedule. The
// context is checked at every level boundary, so a canceled or expired
// request abandons a deep netlist promptly instead of walking it to the end.
func (p *Compiled) Analyze(ctx context.Context, events []PIEvent, mode Mode, opt Options) (*Result, error) {
	return p.c.analyzeLevels(ctx, p.levels, events, mode, opt)
}

// AnalyzeBatch fans N independent vectors across the worker budget against
// the precompiled schedule (see Circuit.AnalyzeBatch for the semantics).
// Cancellation aborts the batch between vectors and between levels.
func (p *Compiled) AnalyzeBatch(ctx context.Context, batch [][]PIEvent, mode Mode, opt Options) ([]*Result, error) {
	workers := opt.Workers
	if workers <= 0 {
		workers = defaultWorkers()
	}
	if workers > len(batch) {
		workers = len(batch)
	}
	results := make([]*Result, len(batch))
	errs := make([]error, len(batch))
	if workers <= 1 {
		for i, events := range batch {
			results[i], errs[i] = p.c.analyzeLevels(ctx, p.levels, events, mode, Options{Workers: 1})
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1) - 1)
					if i >= len(batch) {
						return
					}
					results[i], errs[i] = p.c.analyzeLevels(ctx, p.levels, batch[i], mode, Options{Workers: 1})
				}
			}()
		}
		wg.Wait()
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("sta: batch vector %d: %w", i, err)
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("sta: batch interrupted: %w", err)
	}
	return results, nil
}

// gateEval is one gate's computed output arrivals (or failure) within a
// level, buffered so workers never touch the shared arrival map: results
// are committed serially, in netlist order, after the level barrier. Plain
// values (indexed by direction), so a level's evaluations allocate nothing.
type gateEval struct {
	a   [2]Arrival
	has [2]bool
	err error
}

// analyzeLevels seeds the primary-input arrivals and walks the levelized
// schedule. Within a level every gate reads only arrivals committed by
// earlier levels (or PIs) and writes only its private gateEval slot, so
// the concurrent path is race-free by construction and bit-identical to
// the serial one. The context is polled once per level — cheap against the
// per-level work, frequent enough that request timeouts bite mid-walk.
func (c *Circuit) analyzeLevels(ctx context.Context, levels [][]*Gate, events []PIEvent, mode Mode, opt Options) (*Result, error) {
	res := &Result{Mode: mode, arrivals: make(map[*Net]*dirArrivals, len(c.nets))}
	// All per-net arrival records come from one slab: at most one per net,
	// and the slab never grows, so interior pointers stay valid.
	slab := make([]dirArrivals, len(c.nets))
	used := 0
	set := func(n *Net, a Arrival) {
		da := res.arrivals[n]
		if da == nil {
			da = &slab[used]
			used++
			res.arrivals[n] = da
		}
		da.a[a.Dir] = a
		da.has[a.Dir] = true
	}
	if len(events) == 0 {
		return nil, fmt.Errorf("sta: empty stimulus vector (no primary-input events)")
	}
	for _, ev := range events {
		if !c.piSet[ev.Net] {
			return nil, fmt.Errorf("sta: event on non-primary-input net %s", ev.Net.Name)
		}
		// !(TT > 0) rather than TT <= 0: NaN fails every ordered comparison,
		// so the naive guard waves NaN through into the interpolators.
		if !(ev.TT > 0) || math.IsInf(ev.TT, 1) {
			return nil, fmt.Errorf("sta: event on %s has non-positive or non-finite transition time %v", ev.Net.Name, ev.TT)
		}
		if math.IsNaN(ev.Time) || math.IsInf(ev.Time, 0) {
			return nil, fmt.Errorf("sta: event on %s has non-finite time %v", ev.Net.Name, ev.Time)
		}
		if da := res.arrivals[ev.Net]; da != nil && da.has[ev.Dir] {
			return nil, fmt.Errorf("sta: duplicate %v event on primary input %s", ev.Dir, ev.Net.Name)
		}
		set(ev.Net, Arrival{Dir: ev.Dir, Time: ev.Time, TT: ev.TT})
	}

	workers := opt.Workers
	if workers <= 0 {
		workers = defaultWorkers()
	}
	res.Stats.Workers = workers
	res.Stats.Levels = len(levels)
	res.Stats.PerLevel = make([]LevelStat, 0, len(levels))

	maxWidth := 0
	for _, level := range levels {
		if len(level) > maxWidth {
			maxWidth = len(level)
		}
	}
	outs := make([]gateEval, maxWidth)
	var scratch []core.InputEvent // serial path's reusable event buffer

	for _, level := range levels {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("sta: analysis interrupted: %w", err)
		}
		start := time.Now()
		w := workers
		if w > len(level) {
			w = len(level)
		}
		if w <= 1 {
			for k, g := range level {
				outs[k] = evalGate(g, res, mode, &scratch)
				if outs[k].err != nil {
					return nil, outs[k].err
				}
			}
		} else {
			var next atomic.Int64
			var wg sync.WaitGroup
			for i := 0; i < w; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					var evs []core.InputEvent
					for {
						k := int(next.Add(1) - 1)
						if k >= len(level) {
							return
						}
						outs[k] = evalGate(level[k], res, mode, &evs)
					}
				}()
			}
			wg.Wait()
		}
		// Commit in netlist order: deterministic arrival maps, and the
		// error reported is the one the serial walk would hit first.
		for k, g := range level {
			o := &outs[k]
			if o.err != nil {
				return nil, o.err
			}
			evaluated := false
			for d := range o.a {
				if !o.has[d] {
					continue
				}
				a := o.a[d]
				set(g.Out, a)
				evaluated = true
				res.Stats.Evaluations++
				if a.UsedInputs > 1 {
					res.Stats.ProximityEvals++
				} else {
					res.Stats.SingleArcEvals++
				}
			}
			if evaluated {
				res.Stats.GatesEvaluated++
			}
		}
		res.Stats.PerLevel = append(res.Stats.PerLevel, LevelStat{Gates: len(level), Wall: time.Since(start)})
	}
	return res, nil
}

// evalGate computes both output-direction arrivals of one gate from the
// already-committed arrivals of earlier levels. It only reads res; buf is
// the caller's reusable input-event scratch (one per worker).
func evalGate(g *Gate, res *Result, mode Mode, buf *[]core.InputEvent) gateEval {
	var out gateEval
	for _, outDir := range [2]waveform.Direction{waveform.Rising, waveform.Falling} {
		inDir := outDir.Opposite()
		evs := (*buf)[:0]
		for pin, in := range g.In {
			if a, ok := res.Arrival(in, inDir); ok {
				evs = append(evs, core.InputEvent{Pin: pin, Dir: inDir, TT: a.TT, Cross: a.Time})
			}
		}
		*buf = evs // keep any capacity growth for the next gate
		if len(evs) == 0 {
			continue
		}
		a, err := g.eval(evs, outDir, mode)
		if err != nil {
			out.err = fmt.Errorf("sta: gate %s %v output: %w", g.Name, outDir, err)
			return out
		}
		out.a[outDir] = a
		out.has[outDir] = true
	}
	return out
}

// eval computes one gate-output arrival.
func (g *Gate) eval(evs []core.InputEvent, outDir waveform.Direction, mode Mode) (Arrival, error) {
	if mode == Conventional {
		// Latest (arrival + single-input delay) wins; TT comes from the
		// winning arc.
		best := Arrival{Dir: outDir, Time: math.Inf(-1)}
		for _, e := range evs {
			d, tt, err := g.Calc.SingleDelay(e.Pin, e.Dir, e.TT)
			if err != nil {
				return Arrival{}, err
			}
			if t := e.Cross + d; t > best.Time {
				best = Arrival{Dir: outDir, Time: t, TT: tt, FromGate: g, FromPin: e.Pin, UsedInputs: 1}
			}
		}
		return best, nil
	}
	r, err := g.Calc.Evaluate(evs)
	if err != nil {
		return Arrival{}, err
	}
	return Arrival{
		Dir:        outDir,
		Time:       r.OutputCross,
		TT:         r.OutTT,
		FromGate:   g,
		FromPin:    r.Dominant,
		UsedInputs: r.UsedDelay,
	}, nil
}

// Slack returns required − arrival for a net/direction; ok is false when
// the net never transitions that way.
func (r *Result) Slack(n *Net, dir waveform.Direction, required float64) (float64, bool) {
	a, ok := r.Arrival(n, dir)
	if !ok {
		return 0, false
	}
	return required - a.Time, true
}

// WorstSlack returns the minimum slack over the given nets (both
// directions) against a common required time, with the offending net and
// arrival. ok is false when none of the nets carries an arrival.
func (r *Result) WorstSlack(nets []*Net, required float64) (slack float64, at *Net, arr Arrival, ok bool) {
	slack = math.Inf(1)
	for _, n := range nets {
		for _, dir := range []waveform.Direction{waveform.Rising, waveform.Falling} {
			if a, has := r.Arrival(n, dir); has {
				if s := required - a.Time; s < slack {
					slack, at, arr, ok = s, n, a, true
				}
			}
		}
	}
	if !ok {
		return 0, nil, Arrival{}, false
	}
	return slack, at, arr, true
}

// PathStep is one hop of a traced critical path.
type PathStep struct {
	Net     *Net
	Arrival Arrival
}

// CriticalPath traces back from a net/direction to a primary input by
// following each arrival's dominant causing pin.
func (r *Result) CriticalPath(n *Net, dir waveform.Direction) ([]PathStep, error) {
	var path []PathStep
	cur, ok := r.Arrival(n, dir)
	if !ok {
		return nil, fmt.Errorf("sta: net %s has no %v arrival", n.Name, dir)
	}
	net := n
	for {
		path = append(path, PathStep{Net: net, Arrival: cur})
		if cur.FromGate == nil {
			break
		}
		inNet := cur.FromGate.In[cur.FromPin]
		prev, ok := r.Arrival(inNet, cur.Dir.Opposite())
		if !ok {
			return nil, fmt.Errorf("sta: broken path at net %s", inNet.Name)
		}
		net, cur = inNet, prev
		// A valid trace visits each net at most once per direction; more
		// steps than that means the back-pointers form a cycle.
		if len(path) > 2*len(r.arrivals)+2 {
			return nil, fmt.Errorf("sta: path trace runaway")
		}
	}
	// Reverse to source-to-sink order.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path, nil
}

// NetsByName returns all net names sorted, for deterministic reporting.
func (c *Circuit) NetsByName() []string {
	names := make([]string, 0, len(c.nets))
	for n := range c.nets {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
