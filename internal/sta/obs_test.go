package sta_test

import (
	"bytes"
	"testing"

	"repro/internal/obs"
	"repro/internal/sta"
	"repro/internal/waveform"
)

// Tracing must not change results, must emit a valid nested Chrome trace,
// and the always-on phase timers must stay within the measured wall time.
func TestAnalyzeTraceAndPhases(t *testing.T) {
	c, err := sta.SynthRandom(8, 60, 7)
	if err != nil {
		t.Fatal(err)
	}
	evs := sta.SynthEvents(c, 1)

	plain, err := c.AnalyzeOpts(evs, sta.Proximity, sta.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.NewTrace()
	traced, err := c.AnalyzeOpts(evs, sta.Proximity, sta.Options{Workers: 2, Trace: tr})
	if err != nil {
		t.Fatal(err)
	}

	// Bit-identical arrivals with and without the recorder attached.
	for _, name := range c.NetsByName() {
		n := c.Net(name)
		for _, dir := range []waveform.Direction{waveform.Rising, waveform.Falling} {
			a, aok := plain.Arrival(n, dir)
			b, bok := traced.Arrival(n, dir)
			if aok != bok || a.Time != b.Time || a.TT != b.TT {
				t.Fatalf("net %s: traced arrival differs from plain", name)
			}
		}
	}

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	evsTrace, err := obs.ValidateChromeTrace(buf.Bytes())
	if err != nil {
		t.Fatalf("engine trace invalid: %v", err)
	}
	names := map[string]bool{}
	for _, e := range evsTrace {
		if e.Ph == "X" {
			names[e.Name] = true
		}
	}
	for _, want := range []string{"analyze", "schedule", "level 0", "commit"} {
		if !names[want] {
			t.Fatalf("trace missing span %q; have %v", want, names)
		}
	}

	// Phase invariants (both runs): non-negative, disjoint sum <= wall.
	for _, res := range []*sta.Result{plain, traced} {
		var sum int64
		for _, p := range obs.Phases() {
			d := res.Stats.Phases[p]
			if d < 0 {
				t.Fatalf("phase %v negative: %v", p, d)
			}
		}
		sum = int64(res.Stats.Phases.Sum())
		if res.Stats.Wall <= 0 {
			t.Fatalf("wall = %v", res.Stats.Wall)
		}
		if sum > int64(res.Stats.Wall) {
			t.Fatalf("phases sum %v exceeds wall %v", res.Stats.Phases.Sum(), res.Stats.Wall)
		}
	}
}

// A traced batch must record one process row per vector so the viewer
// shows the batch's parallel schedule.
func TestBatchTracePerVectorRows(t *testing.T) {
	c, err := sta.SynthRandom(6, 40, 11)
	if err != nil {
		t.Fatal(err)
	}
	batch := [][]sta.PIEvent{sta.SynthEvents(c, 1), sta.SynthEvents(c, 2), sta.SynthEvents(c, 3)}
	tr := obs.NewTrace()
	if _, err := c.AnalyzeBatch(batch, sta.Proximity, sta.Options{Workers: 2, Trace: tr}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	evs, err := obs.ValidateChromeTrace(buf.Bytes())
	if err != nil {
		t.Fatalf("batch trace invalid: %v", err)
	}
	pids := map[int64]bool{}
	for _, e := range evs {
		if e.Ph == "X" && e.Name == "analyze" {
			pids[e.PID] = true
		}
	}
	if len(pids) != len(batch) {
		t.Fatalf("%d analyze process rows, want one per vector (%d)", len(pids), len(batch))
	}
}
