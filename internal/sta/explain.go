package sta

// Proximity "explain" traces. Explain re-derives, for a requested net, why
// the analysis produced the arrival it did: which gate drove it, which
// input arrivals were presented, the dominance order and pairwise
// absorptions of Algorithm ProximityDelay (via core.EvaluateExplain), and
// which inputs the proximity window pruned. It is a post-pass over a
// finished Result — the gate evaluation is deterministic, so re-running it
// against the committed input arrivals reproduces the hot path's arithmetic
// bit for bit (checked: a mismatch is reported as an error rather than a
// wrong story). The analysis itself therefore pays nothing for
// explainability.

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/waveform"
)

// NetExplain is the full explanation of one net's arrivals in a Result.
type NetExplain struct {
	Net string
	// PI is set when the net is a primary input: its arrivals are stimulus,
	// not computation, and there is nothing further to explain.
	PI bool
	// Gate and Type name the driving gate instance (empty for PIs and
	// undriven nets).
	Gate string
	Type string
	// Dirs holds one entry per output direction that carries an arrival.
	Dirs []*DirExplain
	// Pulse is the Section-6 verdict pulse filtering applied to this net's
	// opposite-edge output pair, when the analysis ran with
	// Options.PulseFiltering and recorded one here: the pair was absorbed
	// (Dirs is then empty — nothing committed), its leading edge carries a
	// degraded transition time, or the pair was Unjudged (no glitch model
	// for the causing pin pair — it propagated untouched). Nil otherwise.
	Pulse *PulseInfo
}

// DirExplain explains one direction's arrival.
type DirExplain struct {
	Dir     waveform.Direction
	Arrival Arrival
	// Inputs are the switching input arrivals presented to the gate (the
	// causing direction is the opposite of Dir — all library gates invert).
	Inputs []ExplainArc
	// Proximity is the core decision trace (dominance order, absorptions,
	// window prunes). Nil for Conventional-mode results.
	Proximity *core.Explain
	// Arcs is the Conventional-mode story: every single-input arc's delay
	// with the winner marked. Nil for Proximity-mode results.
	Arcs []ConvArc
}

// ExplainArc is one gate input pin with the arrival it carried.
type ExplainArc struct {
	Pin     int
	Net     string
	Arrival Arrival
}

// ConvArc is one conventional-mode timing arc: arrival + single-input
// delay, with the latest one marked as the winner.
type ConvArc struct {
	Pin     int
	Net     string
	Delay   float64 // single-input pin delay
	OutTT   float64 // the arc's output transition time
	Arrives float64 // input arrival + delay
	Winner  bool
}

// Explain reconstructs the decision trace behind net n's arrivals in res.
// The result must come from an analysis of the circuit that owns n; a net
// without any arrival yields an explanation with empty Dirs.
func Explain(res *Result, n *Net) (*NetExplain, error) {
	if n == nil {
		return nil, fmt.Errorf("sta: explain: nil net")
	}
	ne := &NetExplain{Net: n.Name}
	g := n.Driver
	if g == nil {
		// Primary input or undriven net: arrivals (if any) are stimulus.
		for _, dir := range []waveform.Direction{waveform.Rising, waveform.Falling} {
			if a, ok := res.Arrival(n, dir); ok {
				ne.PI = true
				ne.Dirs = append(ne.Dirs, &DirExplain{Dir: dir, Arrival: a})
			}
		}
		return ne, nil
	}
	ne.Gate, ne.Type = g.Name, g.Type
	if pi, ok := res.Pulse(n); ok {
		ne.Pulse = &pi
	}
	for _, outDir := range []waveform.Direction{waveform.Rising, waveform.Falling} {
		a, ok := res.Arrival(n, outDir)
		if !ok {
			continue
		}
		de := &DirExplain{Dir: outDir, Arrival: a}
		inDir := outDir.Opposite()
		var evs []core.InputEvent
		for pin, in := range g.In {
			if ia, ok := res.Arrival(in, inDir); ok {
				evs = append(evs, core.InputEvent{Pin: pin, Dir: inDir, TT: ia.TT, Cross: ia.Time})
				de.Inputs = append(de.Inputs, ExplainArc{Pin: pin, Net: in.Name, Arrival: ia})
			}
		}
		if len(evs) == 0 {
			return nil, fmt.Errorf("sta: explain %s %v: arrival present but no causing input arrivals — result is not from this circuit's analysis", n.Name, outDir)
		}
		switch res.Mode {
		case Conventional:
			best := -1
			bestT := 0.0
			for i, e := range evs {
				d, tt, err := g.Calc.SingleDelay(e.Pin, e.Dir, e.TT)
				if err != nil {
					return nil, fmt.Errorf("sta: explain %s %v: pin %d: %w", n.Name, outDir, e.Pin, err)
				}
				arc := ConvArc{Pin: e.Pin, Net: g.In[e.Pin].Name, Delay: d, OutTT: tt, Arrives: e.Cross + d}
				de.Arcs = append(de.Arcs, arc)
				if best < 0 || arc.Arrives > bestT {
					best, bestT = i, arc.Arrives
				}
			}
			if best >= 0 {
				de.Arcs[best].Winner = true
			}
			if bestT != a.Time {
				return nil, fmt.Errorf("sta: explain %s %v: recomputed arrival %.6g != stored %.6g — result is stale for this circuit", n.Name, outDir, bestT, a.Time)
			}
		default:
			r, ex, err := g.Calc.EvaluateExplain(evs)
			if err != nil {
				return nil, fmt.Errorf("sta: explain %s %v: %w", n.Name, outDir, err)
			}
			// Re-run under the same filtering the commit applied: a degraded
			// pulse stored its leading edge with the transition time scaled
			// by the recorded factor, so the comparison scales identically
			// (same multiplication, bit-identical result) instead of
			// reporting a spurious staleness mismatch.
			wantTT := r.OutTT
			if p := ne.Pulse; p != nil && !p.Filtered && outDir == p.LeadDir {
				wantTT = r.OutTT * p.Factor
			}
			if r.OutputCross != a.Time || wantTT != a.TT {
				return nil, fmt.Errorf("sta: explain %s %v: recomputed arrival %.6g/%.6g != stored %.6g/%.6g — result is stale for this circuit", n.Name, outDir, r.OutputCross, wantTT, a.Time, a.TT)
			}
			de.Proximity = ex
		}
		ne.Dirs = append(ne.Dirs, de)
	}
	return ne, nil
}

// ExplainNets explains each named net of the circuit against res, in the
// given order. Unknown nets fail with the name.
func ExplainNets(c *Circuit, res *Result, names []string) ([]*NetExplain, error) {
	out := make([]*NetExplain, 0, len(names))
	for _, name := range names {
		n := c.Net(name)
		if n == nil {
			return nil, fmt.Errorf("sta: explain: unknown net %q", name)
		}
		ne, err := Explain(res, n)
		if err != nil {
			return nil, err
		}
		out = append(out, ne)
	}
	return out, nil
}

// Format renders the explanation as an indented human-readable report (the
// cmd/sta -explain output).
func (ne *NetExplain) Format(w io.Writer) {
	switch {
	case ne.PI:
		fmt.Fprintf(w, "net %s: primary input (arrivals are stimulus)\n", ne.Net)
	case ne.Gate == "":
		fmt.Fprintf(w, "net %s: undriven\n", ne.Net)
	default:
		fmt.Fprintf(w, "net %s: driven by gate %s (%s)\n", ne.Net, ne.Gate, ne.Type)
	}
	if p := ne.Pulse; p != nil {
		switch {
		case p.Unjudged:
			fmt.Fprintf(w, "  runt pulse unjudged: opposite-edge pair %.2fps wide, but the library has no glitch model for pin pair (fall pin %d, rise pin %d) — the pulse propagated full-swing, unfiltered\n",
				p.Sep*1e12, p.FallPin, p.RisePin)
		case p.Filtered && p.MinSepOK:
			// The pair sits BELOW the inertial delay, so report how far below
			// as a positive shortfall (MinSep − Sep); the old Sep − MinSep
			// "margin" read negative while the prose said "below".
			fmt.Fprintf(w, "  runt pulse absorbed: opposite-edge pair (fall pin %d, rise pin %d) separated by %.2fps, below the pair's inertial delay %.2fps (shortfall %.2fps)\n",
				p.FallPin, p.RisePin, p.Sep*1e12, p.MinSep*1e12, (p.MinSep-p.Sep)*1e12)
		case p.Filtered:
			fmt.Fprintf(w, "  runt pulse absorbed: opposite-edge pair (fall pin %d, rise pin %d) separated by %.2fps — no separation in the characterized range completes a transition\n",
				p.FallPin, p.RisePin, p.Sep*1e12)
		default:
			fmt.Fprintf(w, "  runt pulse degraded: opposite-edge pair (fall pin %d, rise pin %d) separated by %.2fps, %.2fps past the pair's inertial delay %.2fps; extreme voltage %.3gV, leading %v edge tt x%.4g\n",
				p.FallPin, p.RisePin, p.Sep*1e12, (p.Sep-p.MinSep)*1e12, p.MinSep*1e12, p.Extreme, p.LeadDir, p.Factor)
		}
	}
	if len(ne.Dirs) == 0 && !ne.PI && (ne.Pulse == nil || !ne.Pulse.Filtered) {
		fmt.Fprintf(w, "  no arrivals in this analysis\n")
	}
	for _, de := range ne.Dirs {
		fmt.Fprintf(w, "  %v arrival: t=%.2fps tt=%.2fps (from pin %d, %d input(s) combined)\n",
			de.Dir, de.Arrival.Time*1e12, de.Arrival.TT*1e12, de.Arrival.FromPin, de.Arrival.UsedInputs)
		for _, in := range de.Inputs {
			fmt.Fprintf(w, "    input pin %d (net %s): %v t=%.2fps tt=%.2fps\n",
				in.Pin, in.Net, in.Arrival.Dir, in.Arrival.Time*1e12, in.Arrival.TT*1e12)
		}
		if de.Proximity != nil {
			iw := indentWriter{w: w, prefix: "    "}
			de.Proximity.Format(&iw)
		}
		for _, arc := range de.Arcs {
			tag := ""
			if arc.Winner {
				tag = "  <- winner (latest)"
			}
			fmt.Fprintf(w, "    arc pin %d (net %s): delay=%.2fps arrives=%.2fps%s\n",
				arc.Pin, arc.Net, arc.Delay*1e12, arc.Arrives*1e12, tag)
		}
	}
}

// indentWriter prefixes every line with a fixed indent, so nested reports
// read as one document.
type indentWriter struct {
	w       io.Writer
	prefix  string
	midline bool
}

func (iw *indentWriter) Write(p []byte) (int, error) {
	total := 0
	for len(p) > 0 {
		if !iw.midline {
			if _, err := io.WriteString(iw.w, iw.prefix); err != nil {
				return total, err
			}
			iw.midline = true
		}
		i := 0
		for i < len(p) && p[i] != '\n' {
			i++
		}
		if i < len(p) {
			i++ // include the newline
			iw.midline = false
		}
		n, err := iw.w.Write(p[:i])
		total += n
		if err != nil {
			return total, err
		}
		p = p[i:]
	}
	return total, nil
}
