package sta

// Cone-pruned sparse scheduling. The paper's Algorithm ProximityDelay only
// ever combines inputs that actually switch, and a gate can only switch if
// an event reaches it — so for a stimulus vector that touches a handful of
// primary inputs, walking every gate at every level is almost entirely
// wasted work. The compiled handle precomputes each PI's fanout cone (the
// gates an event on that PI can ever reach); per vector the active set is
// the union of the stimulated PIs' cones, bucketed by topological level and
// walked in the same netlist order the dense schedule uses. Gates outside
// the union cannot receive an input arrival, so skipping them is exact:
// sparse and dense evaluation are bit-identical, arrival for arrival
// (enforced by the internal/difftest sparse-vs-dense oracle).

import (
	"context"
	"fmt"
	"math"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// evalScratch is the per-vector working set, pooled on the Compiled handle
// so steady-state batch traffic allocates only the Result it returns. One
// scratch is checked out per in-flight vector; all fields are sized once
// against the compiled shape and reused.
type evalScratch struct {
	outs    []gateEval        // per-level evaluation buffer (maxWidth wide)
	evs     []core.InputEvent // serial path's reusable input-event buffer
	inCone  []bool            // per gate: member of this vector's active set
	marked  []int32           // active gate indices, for O(active) reset
	buckets [][]int32         // per level: active gate indices, netlist order
}

func newEvalScratch(p *Compiled) *evalScratch {
	return &evalScratch{
		outs:    make([]gateEval, p.maxWidth),
		inCone:  make([]bool, p.gates),
		buckets: make([][]int32, len(p.levelIdx)),
	}
}

// ensureConsumers builds the net -> consuming-gate CSR on first use. Cone
// construction walks it forward per PI; delta propagation walks it forward
// from every dirtied net. Consumers of one net are listed in ascending gate
// index (the fill pass visits gates in netlist order), which downstream
// code relies on for deterministic traversal order.
func (p *Compiled) ensureConsumers() {
	p.consOnce.Do(func() {
		consOff := make([]int32, p.numNets+1)
		for _, g := range p.gateList {
			for _, in := range g.In {
				if int(in.id) < p.numNets {
					consOff[in.id+1]++
				}
			}
		}
		for i := 0; i < p.numNets; i++ {
			consOff[i+1] += consOff[i]
		}
		cons := make([]int32, consOff[p.numNets])
		pos := make([]int32, p.numNets)
		copy(pos, consOff[:p.numNets])
		for gi, g := range p.gateList {
			for _, in := range g.In {
				if int(in.id) < p.numNets {
					cons[pos[in.id]] = int32(gi)
					pos[in.id]++
				}
			}
		}
		p.consOff, p.cons = consOff, cons
	})
}

// consumers returns the gate indices consuming a net (shared storage —
// callers must not mutate). ensureConsumers must have run.
func (p *Compiled) consumers(netID int32) []int32 {
	return p.cons[p.consOff[netID]:p.consOff[netID+1]]
}

// ensureCones builds the per-PI fanout cones on first use. The Dense escape
// hatch never calls this, so turning sparse scheduling off also sheds the
// cone memory. Building is one forward BFS per PI over the net-to-consumer
// CSR: O(sum of cone sizes), paid once per Compiled.
func (p *Compiled) ensureCones() {
	p.coneOnce.Do(func() {
		p.ensureConsumers()

		// Net ID -> PI ordinal.
		p.piOrd = make([]int32, p.numNets)
		for i := range p.piOrd {
			p.piOrd[i] = -1
		}
		for ord, pi := range p.pis {
			if int(pi.id) < p.numNets {
				p.piOrd[pi.id] = int32(ord)
			}
		}

		// One BFS per PI; seen is epoch-stamped with the PI ordinal so it
		// is allocated once, never cleared.
		seen := make([]int32, p.gates)
		for i := range seen {
			seen[i] = -1
		}
		p.coneOff = make([]int32, len(p.pis)+1)
		var cones []int32
		var queue []int32
		for ord, pi := range p.pis {
			queue = queue[:0]
			if int(pi.id) < p.numNets {
				for _, gi := range p.consumers(pi.id) {
					if seen[gi] != int32(ord) {
						seen[gi] = int32(ord)
						queue = append(queue, gi)
					}
				}
			}
			for head := 0; head < len(queue); head++ {
				out := p.gateList[queue[head]].Out
				if int(out.id) >= p.numNets {
					continue
				}
				for _, gi := range p.consumers(out.id) {
					if seen[gi] != int32(ord) {
						seen[gi] = int32(ord)
						queue = append(queue, gi)
					}
				}
			}
			cones = append(cones, queue...)
			p.coneOff[ord+1] = int32(len(cones))
		}
		p.cones = cones
		p.conesReady.Store(true)
	})
}

// adoptCones installs precomputed cone tables on a handle that has not yet
// built its own — the incremental-recompile path, which assembles the new
// tables from the old handle's unaffected cones plus fresh BFS for the
// affected PIs. If a concurrent sparse analysis won the coneOnce race the
// adopted tables are dropped; both builds are equivalent.
func (p *Compiled) adoptCones(piOrd, coneOff, cones []int32) {
	p.coneOnce.Do(func() {
		p.piOrd, p.coneOff, p.cones = piOrd, coneOff, cones
		p.conesReady.Store(true)
	})
}

// Cone returns the fanout cone of a primary input as gate indices into the
// compiled netlist order (shared storage — callers must not mutate). ok is
// false if n was not a primary input at compile time.
func (p *Compiled) Cone(n *Net) (gates []int32, ok bool) {
	p.ensureCones()
	if n == nil || int(n.id) >= p.numNets || p.piOrd[n.id] < 0 {
		return nil, false
	}
	ord := p.piOrd[n.id]
	return p.cones[p.coneOff[ord]:p.coneOff[ord+1]], true
}

// sparseSchedule builds the per-level active gate lists for one stimulus
// vector: the union of the stimulated PIs' cones, bucketed by level and
// sorted into netlist order (the order the dense walk commits in, so the
// first error reported matches too). Returns ok=false when a stimulated PI
// is unknown to the compiled cone tables (declared a PI only after
// Compile) — the caller falls back to the dense schedule, which handles
// such nets by walking everything.
func (p *Compiled) sparseSchedule(events []PIEvent, s *evalScratch) (schedule [][]int32, ok bool) {
	p.ensureCones()
	s.marked = s.marked[:0]
	for _, ev := range events {
		if int(ev.Net.id) >= p.numNets || p.piOrd[ev.Net.id] < 0 {
			for _, gi := range s.marked {
				s.inCone[gi] = false
			}
			return nil, false
		}
		if len(s.marked) == p.gates {
			break // every gate already active; further cones are no-ops
		}
		ord := p.piOrd[ev.Net.id]
		for _, gi := range p.cones[p.coneOff[ord]:p.coneOff[ord+1]] {
			if !s.inCone[gi] {
				s.inCone[gi] = true
				s.marked = append(s.marked, gi)
			}
		}
	}
	if len(s.marked) == p.gates {
		// Saturated: the union is the whole netlist, so the precomputed
		// dense schedule is the same thing without the bucketing work.
		for _, gi := range s.marked {
			s.inCone[gi] = false
		}
		return p.levelIdx, true
	}
	for i := range s.buckets {
		s.buckets[i] = s.buckets[i][:0]
	}
	for _, gi := range s.marked {
		lv := p.gateLevel[gi]
		s.buckets[lv] = append(s.buckets[lv], gi)
	}
	for i := range s.buckets {
		slices.Sort(s.buckets[i])
	}
	for _, gi := range s.marked {
		s.inCone[gi] = false
	}
	return s.buckets, true
}

// analyze seeds the primary-input arrivals and walks the schedule — the
// full levelized one in Dense mode, the cone-pruned active subset
// otherwise. Within a level every gate reads only arrivals committed by
// earlier levels (or PIs) and writes only its private gateEval slot, so the
// concurrent path is race-free by construction and bit-identical to the
// serial one. The context is polled once per level — cheap against the
// per-level work, frequent enough that request timeouts bite mid-walk.
func (p *Compiled) analyze(ctx context.Context, events []PIEvent, mode Mode, opt Options, pid int64) (*Result, error) {
	wallStart := time.Now()
	tr := opt.Trace
	// Fine-grained spans (per phase, per level, per worker) only when the
	// trace was explicitly requested: an always-on tail-sampling recorder
	// rides along on every request, so a passive request records just the
	// per-vector analyze span — its phase breakdown lives in Stats.Phases,
	// which the wide event carries anyway.
	detail := tr.Detail()
	if detail {
		tr.NameProcess(pid, obs.VectorName(pid))
		tr.NameThread(pid, 0, "schedule")
	}
	analyzeSpan := tr.Begin(pid, 0, "sta", "analyze").
		Arg("mode", mode.String()).Arg("events", len(events))
	if id := tr.ID(); id != "" {
		// The request's W3C trace id on the top-level engine span: a trace
		// artifact pulled out of the black box remains correlatable with the
		// distributed trace it belongs to.
		analyzeSpan = analyzeSpan.Arg("traceId", id)
	}
	defer analyzeSpan.End()

	c := p.c
	res := &Result{Mode: mode, idx: make([]int32, p.numNets), arr: make([]dirArrivals, 0, 2*len(events))}
	set := func(n *Net, a Arrival) {
		da := res.slot(n)
		da.a[a.Dir] = a
		da.has[a.Dir] = true
	}
	if len(events) == 0 {
		return nil, fmt.Errorf("sta: empty stimulus vector (no primary-input events)")
	}
	seedStart := time.Now()
	for _, ev := range events {
		if !c.piSet[ev.Net] {
			return nil, fmt.Errorf("sta: event on non-primary-input net %s", ev.Net.Name)
		}
		if int(ev.Net.id) >= p.numNets {
			return nil, fmt.Errorf("sta: event on net %s declared after compile (recompile the circuit)", ev.Net.Name)
		}
		// !(TT > 0) rather than TT <= 0: NaN fails every ordered comparison,
		// so the naive guard waves NaN through into the interpolators.
		if !(ev.TT > 0) || math.IsInf(ev.TT, 1) {
			return nil, fmt.Errorf("sta: event on %s has non-positive or non-finite transition time %v", ev.Net.Name, ev.TT)
		}
		if math.IsNaN(ev.Time) || math.IsInf(ev.Time, 0) {
			return nil, fmt.Errorf("sta: event on %s has non-finite time %v", ev.Net.Name, ev.Time)
		}
		if slot := res.idx[ev.Net.id]; slot != 0 && res.arr[slot-1].has[ev.Dir] {
			return nil, fmt.Errorf("sta: duplicate %v event on primary input %s", ev.Dir, ev.Net.Name)
		}
		set(ev.Net, Arrival{Dir: ev.Dir, Time: ev.Time, TT: ev.TT})
	}
	res.Stats.Phases.Add(obs.PhaseSeed, time.Since(seedStart))

	workers := opt.Workers
	if workers <= 0 {
		workers = defaultWorkers()
	}
	res.Stats.Workers = workers
	perturb := opt.Perturb
	res.pulseFiltering = opt.PulseFiltering
	res.Stats.Levels = len(p.levelIdx)
	res.Stats.PerLevel = make([]LevelStat, 0, len(p.levelIdx))

	s := p.scratch.Get().(*evalScratch)
	defer p.scratch.Put(s)

	schedule := p.levelIdx
	if !opt.Dense {
		// The cone tables are built lazily by the first sparse analyze;
		// what this analyze is charged for is the wait — the build wall on
		// the first call, ~zero ever after.
		var coneSpan obs.Span
		if detail {
			coneSpan = tr.Begin(pid, 0, "sta", "cones")
		}
		coneStart := time.Now()
		p.ensureCones()
		res.Stats.Phases.Add(obs.PhaseCones, time.Since(coneStart))
		coneSpan.End()

		var schedSpan obs.Span
		if detail {
			schedSpan = tr.Begin(pid, 0, "sta", "schedule")
		}
		schedStart := time.Now()
		if sp, ok := p.sparseSchedule(events, s); ok {
			schedule = sp
		}
		res.Stats.Phases.Add(obs.PhaseSchedule, time.Since(schedStart))
		schedSpan.End()
	}

	if detail {
		for w := 1; w <= workers; w++ {
			tr.NameThread(pid, int64(w), obs.WorkerName(int64(w-1)))
		}
	}

	for li, level := range schedule {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("sta: analysis interrupted: %w", err)
		}
		if len(level) == 0 {
			res.Stats.PerLevel = append(res.Stats.PerLevel, LevelStat{})
			continue
		}
		// The span name is only composed for a detailed recorder — the hot
		// path must not pay a Sprintf per level.
		var levelName string
		var levelSpan obs.Span
		if detail {
			levelName = fmt.Sprintf("level %d", li)
			levelSpan = tr.Begin(pid, 0, "sta", levelName).Arg("gates", len(level))
		}
		start := time.Now()
		w := workers
		if w > len(level) {
			w = len(level)
		}
		if w <= 1 {
			for k, gi := range level {
				mult := 1.0
				if perturb != nil {
					mult = perturb(gi)
				}
				s.outs[k] = evalGate(p.gateList[gi], res, mode, &s.evs, mult)
				if s.outs[k].err != nil {
					return nil, s.outs[k].err
				}
			}
		} else {
			var next atomic.Int64
			var wg sync.WaitGroup
			for i := 0; i < w; i++ {
				wg.Add(1)
				go func(tid int64) {
					defer wg.Done()
					// One span per worker per level, on the worker's own
					// tid row: the trace viewer shows the level's parallel
					// shape — who worked, who idled, who straggled.
					// Detail-only, like the level span it nests under.
					var wspan obs.Span
					if detail {
						wspan = tr.Begin(pid, tid, "sta", levelName)
					}
					gates := 0
					var evs []core.InputEvent
					for {
						k := int(next.Add(1) - 1)
						if k >= len(level) {
							wspan.Arg("gates", gates).End()
							return
						}
						mult := 1.0
						if perturb != nil {
							mult = perturb(level[k])
						}
						s.outs[k] = evalGate(p.gateList[level[k]], res, mode, &evs, mult)
						gates++
					}
				}(int64(i + 1))
			}
			wg.Wait()
		}
		evalWall := time.Since(start)
		res.Stats.Phases.Add(obs.PhaseEval, evalWall)
		var commitSpan obs.Span
		if detail {
			commitSpan = tr.Begin(pid, 0, "sta", "commit")
		}
		commitStart := time.Now()
		var glitchWall time.Duration
		// Commit in netlist order: deterministic arrival stores, and the
		// error reported is the one the serial walk would hit first.
		for k, gi := range level {
			o := &s.outs[k]
			if o.err != nil {
				return nil, o.err
			}
			// Workload counters read the evaluation's output before any
			// pulse verdict: a filtered pair clears the arrivals, but the
			// evaluation work still happened and must stay counted.
			evaluated := false
			for d := range o.a {
				if !o.has[d] {
					continue
				}
				evaluated = true
				res.Stats.Evaluations++
				if o.a[d].UsedInputs > 1 {
					res.Stats.ProximityEvals++
				} else {
					res.Stats.SingleArcEvals++
				}
			}
			if evaluated {
				res.Stats.GatesEvaluated++
			}
			if opt.PulseFiltering && o.has[0] && o.has[1] {
				// Section-6 inertial-delay judgment, inside the serial commit
				// walk: the pair's causing inputs were committed at earlier
				// levels, so their separation reads straight from res. Timed
				// into its own phase (and carved out of commit below) so the
				// disjointness invariant holds.
				gStart := time.Now()
				applyPulseFilter(p.gateList[gi], o, res)
				glitchWall += time.Since(gStart)
			}
			for d := range o.a {
				if !o.has[d] {
					continue
				}
				set(p.gateList[gi].Out, o.a[d])
			}
		}
		res.Stats.Phases.Add(obs.PhaseCommit, time.Since(commitStart)-glitchWall)
		res.Stats.Phases.Add(obs.PhaseGlitch, glitchWall)
		commitSpan.End()
		res.Stats.GatesScheduled += len(level)
		res.Stats.PerLevel = append(res.Stats.PerLevel, LevelStat{Gates: len(level), Wall: time.Since(start)})
		levelSpan.End()
	}
	res.Stats.Wall = time.Since(wallStart)
	return res, nil
}
