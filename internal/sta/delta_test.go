package sta_test

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/sta"
	"repro/internal/waveform"
)

// applyDelta mirrors AnalyzeDelta's stimulus semantics on a plain event
// slice: removes withdraw baseline events, sets add or replace. The result
// is the "equivalent full vector" the delta result must match bit for bit.
func applyDelta(events []sta.PIEvent, delta sta.Delta) []sta.PIEvent {
	out := make([]sta.PIEvent, 0, len(events)+len(delta.Set))
	for _, ev := range events {
		drop := false
		for _, rm := range delta.Remove {
			if rm.Net == ev.Net && rm.Dir == ev.Dir {
				drop = true
			}
		}
		for _, set := range delta.Set {
			if set.Net == ev.Net && set.Dir == ev.Dir {
				drop = true
			}
		}
		if !drop {
			out = append(out, ev)
		}
	}
	return append(out, delta.Set...)
}

// checkDeltaStats asserts that every derived counter of a delta result
// matches the full re-analysis — if arrivals are bit-identical, the counts
// of what produced them must be too.
func checkDeltaStats(t *testing.T, full, delta *sta.Result) {
	t.Helper()
	if delta.Stats.Evaluations != full.Stats.Evaluations ||
		delta.Stats.ProximityEvals != full.Stats.ProximityEvals ||
		delta.Stats.SingleArcEvals != full.Stats.SingleArcEvals ||
		delta.Stats.GatesEvaluated != full.Stats.GatesEvaluated {
		t.Errorf("delta derived counters diverge: evals %d/%d prox %d/%d single %d/%d gates %d/%d",
			delta.Stats.Evaluations, full.Stats.Evaluations,
			delta.Stats.ProximityEvals, full.Stats.ProximityEvals,
			delta.Stats.SingleArcEvals, full.Stats.SingleArcEvals,
			delta.Stats.GatesEvaluated, full.Stats.GatesEvaluated)
	}
}

// TestDeltaMatchesFull: perturbing a baseline through AnalyzeDelta must be
// bit-identical to a fresh full analysis of the edited vector, in both
// modes, while actually reusing most of the baseline.
func TestDeltaMatchesFull(t *testing.T) {
	c, err := sta.SynthRandom(32, 1200, 11)
	if err != nil {
		t.Fatal(err)
	}
	p, err := c.Compile()
	if err != nil {
		t.Fatal(err)
	}
	events := sta.SynthEvents(c, 5)
	for _, mode := range []sta.Mode{sta.Proximity, sta.Conventional} {
		baseline, err := p.Analyze(context.Background(), events, mode, sta.Options{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		// Shift three PIs, flip one direction (remove + set the opposite
		// edge), and drop one event entirely.
		delta := sta.Delta{
			Set: []sta.PIEvent{
				{Net: events[0].Net, Dir: events[0].Dir, Time: events[0].Time + 37e-12, TT: events[0].TT},
				{Net: events[7].Net, Dir: events[7].Dir, Time: events[7].Time, TT: events[7].TT * 1.5},
				{Net: events[13].Net, Dir: events[13].Dir.Opposite(), Time: events[13].Time, TT: events[13].TT},
			},
			Remove: []sta.DeltaRemove{
				{Net: events[13].Net, Dir: events[13].Dir},
				{Net: events[21].Net, Dir: events[21].Dir},
			},
		}
		got, err := p.AnalyzeDelta(context.Background(), baseline, delta, sta.Options{})
		if err != nil {
			t.Fatalf("%v delta: %v", mode, err)
		}
		want, err := p.Analyze(context.Background(), applyDelta(events, delta), mode, sta.Options{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		compareResults(t, c, want, got, fmt.Sprintf("%v delta-vs-full", mode))
		checkDeltaStats(t, want, got)
		if got.Stats.GatesReevaluated == 0 || got.Stats.GatesReused == 0 {
			t.Errorf("%v: expected both reuse and re-evaluation, got reeval=%d reused=%d",
				mode, got.Stats.GatesReevaluated, got.Stats.GatesReused)
		}
		if got.Stats.GatesReevaluated >= baseline.Stats.GatesEvaluated {
			t.Errorf("%v: delta re-evaluated %d gates, no better than the baseline's %d",
				mode, got.Stats.GatesReevaluated, baseline.Stats.GatesEvaluated)
		}
		if got.Stats.Phases[obs.PhaseDelta] <= 0 {
			t.Errorf("%v: delta result records no PhaseDelta time", mode)
		}
		if got.Stats.Phases.Sum() > got.Stats.Wall {
			t.Errorf("%v: phase sum %v exceeds wall %v", mode, got.Stats.Phases.Sum(), got.Stats.Wall)
		}
		if got.Mode != mode {
			t.Errorf("delta result mode %v, want baseline's %v", got.Mode, mode)
		}
		// The baseline must be untouched: re-running the same delta against
		// it must reproduce the same result (and chains must compose).
		again, err := p.AnalyzeDelta(context.Background(), baseline, delta, sta.Options{})
		if err != nil {
			t.Fatal(err)
		}
		compareResults(t, c, got, again, fmt.Sprintf("%v delta-repeat", mode))

		chainDelta := sta.Delta{Set: []sta.PIEvent{
			{Net: events[2].Net, Dir: events[2].Dir, Time: events[2].Time + 11e-12, TT: events[2].TT},
		}}
		chained, err := p.AnalyzeDelta(context.Background(), got, chainDelta, sta.Options{})
		if err != nil {
			t.Fatalf("%v chained delta: %v", mode, err)
		}
		wantChained, err := p.Analyze(context.Background(), applyDelta(applyDelta(events, delta), chainDelta), mode, sta.Options{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		compareResults(t, c, wantChained, chained, fmt.Sprintf("%v delta-chain", mode))
		checkDeltaStats(t, wantChained, chained)
	}
}

// TestDeltaNoOp: a Set bit-equal to the baseline event must cut off at the
// seed — zero gates re-evaluated, result identical to the baseline.
func TestDeltaNoOp(t *testing.T) {
	c, err := sta.SynthRandom(16, 400, 3)
	if err != nil {
		t.Fatal(err)
	}
	p, err := c.Compile()
	if err != nil {
		t.Fatal(err)
	}
	events := sta.SynthEvents(c, 1)
	baseline, err := p.Analyze(context.Background(), events, sta.Proximity, sta.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.AnalyzeDelta(context.Background(), baseline,
		sta.Delta{Set: []sta.PIEvent{events[0], events[3]}}, sta.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Stats.GatesReevaluated != 0 {
		t.Errorf("no-op delta re-evaluated %d gates", got.Stats.GatesReevaluated)
	}
	if got.Stats.GatesReused != baseline.Stats.GatesEvaluated {
		t.Errorf("no-op delta reused %d gates, want all %d", got.Stats.GatesReused, baseline.Stats.GatesEvaluated)
	}
	compareResults(t, c, baseline, got, "no-op delta")
}

// TestDeltaValidation: every malformed delta is rejected with a named
// error, and none of them corrupts the baseline for later use.
func TestDeltaValidation(t *testing.T) {
	c, err := sta.SynthRandom(8, 120, 7)
	if err != nil {
		t.Fatal(err)
	}
	p, err := c.Compile()
	if err != nil {
		t.Fatal(err)
	}
	events := sta.SynthEvents(c, 2)
	baseline, err := p.Analyze(context.Background(), events, sta.Proximity, sta.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	pi0 := events[0].Net
	internal := c.Net("n0")
	if internal == nil || c.IsPI(internal) {
		t.Fatal("test wants an internal net named n0")
	}
	absentDir := waveform.Rising
	if events[0].Dir == waveform.Rising {
		absentDir = waveform.Falling
	}
	cases := []struct {
		name  string
		delta sta.Delta
		want  string
	}{
		{"empty", sta.Delta{}, "empty delta"},
		{"set non-PI", sta.Delta{Set: []sta.PIEvent{{Net: internal, Dir: waveform.Rising, Time: 0, TT: 100e-12}}}, "non-primary-input"},
		{"remove non-PI", sta.Delta{Remove: []sta.DeltaRemove{{Net: internal, Dir: waveform.Rising}}}, "non-primary-input"},
		{"remove absent", sta.Delta{Remove: []sta.DeltaRemove{{Net: pi0, Dir: absentDir}}}, "absent"},
		{"duplicate set", sta.Delta{Set: []sta.PIEvent{
			{Net: pi0, Dir: waveform.Rising, Time: 0, TT: 100e-12},
			{Net: pi0, Dir: waveform.Rising, Time: 5e-12, TT: 100e-12},
		}}, "duplicate"},
		{"duplicate remove", sta.Delta{Remove: []sta.DeltaRemove{
			{Net: events[0].Net, Dir: events[0].Dir},
			{Net: events[0].Net, Dir: events[0].Dir},
		}}, "duplicate"},
		{"bad TT", sta.Delta{Set: []sta.PIEvent{{Net: pi0, Dir: waveform.Rising, Time: 0, TT: -1}}}, "transition time"},
		{"nil net", sta.Delta{Set: []sta.PIEvent{{Net: nil, Dir: waveform.Rising, Time: 0, TT: 100e-12}}}, "non-primary-input"},
	}
	for _, tc := range cases {
		if _, err := p.AnalyzeDelta(context.Background(), baseline, tc.delta, sta.Options{}); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v, want substring %q", tc.name, err, tc.want)
		}
	}
	if _, err := p.AnalyzeDelta(context.Background(), nil, sta.Delta{Set: events[:1]}, sta.Options{}); err == nil {
		t.Error("nil baseline accepted")
	}

	// Removing every event must be rejected like an empty vector.
	var all sta.Delta
	for _, ev := range events {
		all.Remove = append(all.Remove, sta.DeltaRemove{Net: ev.Net, Dir: ev.Dir})
	}
	if _, err := p.AnalyzeDelta(context.Background(), baseline, all, sta.Options{}); err == nil || !strings.Contains(err.Error(), "empty stimulus") {
		t.Errorf("remove-all: error %v, want empty-stimulus rejection", err)
	}

	// A baseline from a different compile (structural edit in between) is
	// rejected, not silently mis-indexed.
	if _, err := c.AddGate("extra", "inv", "extra_n", pi0); err != nil {
		t.Fatal(err)
	}
	p2, err := c.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if p2 == p {
		t.Fatal("structural edit did not produce a new compiled handle")
	}
	if _, err := p2.AnalyzeDelta(context.Background(), baseline, sta.Delta{Set: events[:1]}, sta.Options{}); err == nil || !strings.Contains(err.Error(), "different compile") {
		t.Errorf("stale baseline: error %v, want different-compile rejection", err)
	}

	// The original baseline still works against the handle it came from.
	if _, err := p.AnalyzeDelta(context.Background(), baseline, sta.Delta{Set: []sta.PIEvent{
		{Net: pi0, Dir: events[0].Dir, Time: events[0].Time + 1e-12, TT: events[0].TT},
	}}, sta.Options{}); err != nil {
		t.Errorf("baseline rejected by its own handle after validation failures: %v", err)
	}
}

// TestDeltaCancellation: an already-canceled context aborts the walk.
func TestDeltaCancellation(t *testing.T) {
	c, in, _, err := sta.SynthChain(64)
	if err != nil {
		t.Fatal(err)
	}
	p, err := c.Compile()
	if err != nil {
		t.Fatal(err)
	}
	evs := []sta.PIEvent{{Net: in, Dir: waveform.Rising, Time: 0, TT: 200e-12}}
	baseline, err := p.Analyze(context.Background(), evs, sta.Proximity, sta.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	delta := sta.Delta{Set: []sta.PIEvent{{Net: in, Dir: waveform.Rising, Time: 10e-12, TT: 200e-12}}}
	if _, err := p.AnalyzeDelta(ctx, baseline, delta, sta.Options{}); err == nil || !strings.Contains(err.Error(), "interrupted") {
		t.Fatalf("canceled delta: %v", err)
	}
	// The scratch state must be clean for the next (successful) analysis.
	got, err := p.AnalyzeDelta(context.Background(), baseline, delta, sta.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := p.Analyze(context.Background(), applyDelta(evs, delta), sta.Proximity, sta.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	compareResults(t, c, want, got, "delta after cancellation")
}

// TestCircuitAnalyzeDelta: the circuit-level wrapper compiles on demand and
// attributes the compile into the result like AnalyzeOpts does.
func TestCircuitAnalyzeDelta(t *testing.T) {
	c, err := sta.SynthRandom(16, 300, 19)
	if err != nil {
		t.Fatal(err)
	}
	events := sta.SynthEvents(c, 4)
	baseline, err := c.AnalyzeOpts(events, sta.Proximity, sta.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	delta := sta.Delta{Set: []sta.PIEvent{
		{Net: events[1].Net, Dir: events[1].Dir, Time: events[1].Time + 20e-12, TT: events[1].TT},
	}}
	got, err := c.AnalyzeDelta(baseline, delta, sta.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := c.AnalyzeOpts(applyDelta(events, delta), sta.Proximity, sta.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	compareResults(t, c, want, got, "circuit delta")
}
