package sta_test

import (
	"fmt"
	"testing"

	"repro/internal/sta"
	"repro/internal/waveform"
)

// TestDeepChainLevelization is the regression for the recursion-unsafe
// topological sort: the seed's recursive DFS walked a 100k-gate inverter
// chain one stack frame per gate and crashed; the iterative Kahn
// levelization must handle it in one pass, and the critical path must trace
// all the way back to the primary input.
func TestDeepChainLevelization(t *testing.T) {
	const depth = 100_000
	c, in, out, err := sta.SynthChain(depth)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.AnalyzeOpts([]sta.PIEvent{{Net: in, Dir: waveform.Rising, Time: 0, TT: 200e-12}},
		sta.Proximity, sta.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Levels != depth || res.Stats.GatesEvaluated != depth {
		t.Fatalf("levels=%d gates=%d, want %d each", res.Stats.Levels, res.Stats.GatesEvaluated, depth)
	}
	// Even depth: the output transitions in the input's direction.
	arr, ok := res.Arrival(out, waveform.Rising)
	if !ok || arr.Time <= 0 {
		t.Fatalf("missing or non-positive output arrival (ok=%v t=%g)", ok, arr.Time)
	}
	path, err := res.CriticalPath(out, waveform.Rising)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != depth+1 || path[0].Net != in {
		t.Fatalf("path length %d (want %d), first net %s", len(path), depth+1, path[0].Net.Name)
	}
}

// sameArrival is bit-exact equality — the parallel schedule must not change
// the arithmetic at all.
func sameArrival(a, b sta.Arrival) bool {
	return a.Dir == b.Dir && a.Time == b.Time && a.TT == b.TT &&
		a.FromGate == b.FromGate && a.FromPin == b.FromPin && a.UsedInputs == b.UsedInputs
}

// compareResults asserts that every net's arrivals match exactly between
// two analyses of the same circuit.
func compareResults(t *testing.T, c *sta.Circuit, ref, got *sta.Result, label string) {
	t.Helper()
	mismatches := 0
	for _, name := range c.NetsByName() {
		n := c.Net(name)
		for _, dir := range []waveform.Direction{waveform.Rising, waveform.Falling} {
			ra, rok := ref.Arrival(n, dir)
			ga, gok := got.Arrival(n, dir)
			if rok != gok || (rok && !sameArrival(ra, ga)) {
				if mismatches < 5 {
					t.Errorf("%s: net %s %v: serial (%v %+v) vs parallel (%v %+v)",
						label, name, dir, rok, ra, gok, ga)
				}
				mismatches++
			}
		}
	}
	if mismatches > 0 {
		t.Fatalf("%s: %d arrival mismatches", label, mismatches)
	}
}

// TestParallelMatchesSerial runs the full equivalence check on a randomized
// ≥5k-gate netlist in both analysis modes: identical arrivals, transition
// times, stats, and critical paths. Running the suite under -race (see the
// tier-1 recipe in ROADMAP.md) also exercises the per-level worker pool for
// data races.
func TestParallelMatchesSerial(t *testing.T) {
	c, err := sta.SynthRandom(64, 5000, 42)
	if err != nil {
		t.Fatal(err)
	}
	evs := sta.SynthEvents(c, 7)
	for _, mode := range []sta.Mode{sta.Proximity, sta.Conventional} {
		serial, err := c.AnalyzeOpts(evs, mode, sta.Options{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		parallel, err := c.AnalyzeOpts(evs, mode, sta.Options{Workers: 8})
		if err != nil {
			t.Fatal(err)
		}
		label := mode.String()
		compareResults(t, c, serial, parallel, label)
		ss, ps := serial.Stats, parallel.Stats
		if ss.Levels != ps.Levels || ss.GatesEvaluated != ps.GatesEvaluated ||
			ss.Evaluations != ps.Evaluations || ss.ProximityEvals != ps.ProximityEvals ||
			ss.SingleArcEvals != ps.SingleArcEvals {
			t.Fatalf("%s: stats diverge: serial %+v vs parallel %+v", label, ss, ps)
		}
		if mode == sta.Proximity && ss.ProximityEvals == 0 {
			t.Fatalf("%s: netlist produced no proximity evaluations — test is vacuous", label)
		}
		// Critical paths must be identical hop for hop.
		for _, po := range c.POs {
			arr, ok := serial.Latest(po)
			if !ok {
				continue
			}
			sp, err := serial.CriticalPath(po, arr.Dir)
			if err != nil {
				t.Fatal(err)
			}
			pp, err := parallel.CriticalPath(po, arr.Dir)
			if err != nil {
				t.Fatal(err)
			}
			if len(sp) != len(pp) {
				t.Fatalf("%s: PO %s path lengths %d vs %d", label, po.Name, len(sp), len(pp))
			}
			for i := range sp {
				if sp[i].Net != pp[i].Net || !sameArrival(sp[i].Arrival, pp[i].Arrival) {
					t.Fatalf("%s: PO %s path diverges at hop %d", label, po.Name, i)
				}
			}
		}
	}
}

// TestAnalyzeBatchMatchesAnalyze: a batch over one shared levelization must
// reproduce per-vector Analyze exactly, in order.
func TestAnalyzeBatchMatchesAnalyze(t *testing.T) {
	c, err := sta.SynthRandom(32, 800, 3)
	if err != nil {
		t.Fatal(err)
	}
	batch := make([][]sta.PIEvent, 6)
	for i := range batch {
		batch[i] = sta.SynthEvents(c, int64(100+i))
	}
	results, err := c.AnalyzeBatch(batch, sta.Proximity, sta.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(batch) {
		t.Fatalf("got %d results for %d vectors", len(results), len(batch))
	}
	for i, evs := range batch {
		ref, err := c.AnalyzeOpts(evs, sta.Proximity, sta.Options{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		compareResults(t, c, ref, results[i], fmt.Sprintf("vector %d", i))
	}
	// A bad vector aborts with its index and net name.
	bad := [][]sta.PIEvent{batch[0], {{Net: c.Net("n0"), Dir: waveform.Rising, Time: 0, TT: 1e-10}}}
	if _, err := c.AnalyzeBatch(bad, sta.Proximity, sta.Options{}); err == nil {
		t.Fatal("batch with an internal-net event accepted")
	}
}

// TestDuplicatePIEventRejected: two events on the same net and direction
// used to silently keep only the later-listed one; now it is an error that
// names the net.
func TestDuplicatePIEventRejected(t *testing.T) {
	c, in, _, err := sta.SynthChain(2)
	if err != nil {
		t.Fatal(err)
	}
	evs := []sta.PIEvent{
		{Net: in, Dir: waveform.Rising, Time: 0, TT: 100e-12},
		{Net: in, Dir: waveform.Rising, Time: 50e-12, TT: 200e-12},
	}
	if _, err := c.Analyze(evs, sta.Proximity); err == nil {
		t.Fatal("duplicate same-direction PI event accepted")
	}
	// Opposite directions on one net remain legal.
	evs[1].Dir = waveform.Falling
	if _, err := c.Analyze(evs, sta.Proximity); err != nil {
		t.Fatalf("opposite-direction events rejected: %v", err)
	}
}

// TestAnalyzeStats sanity-checks the counters on a tiny known circuit:
// a NAND2 with coincident falling inputs is one proximity evaluation; the
// inverter behind it is a single-arc one.
func TestAnalyzeStats(t *testing.T) {
	c := sta.NewCircuit(sta.SynthLibrary(2))
	a, b := c.Input("a"), c.Input("b")
	n1, err := c.AddGate("g1", "nand2", "n1", a, b)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddGate("g2", "inv", "n2", n1); err != nil {
		t.Fatal(err)
	}
	res, err := c.Analyze([]sta.PIEvent{
		{Net: a, Dir: waveform.Falling, Time: 0, TT: 300e-12},
		{Net: b, Dir: waveform.Falling, Time: 10e-12, TT: 300e-12},
	}, sta.Proximity)
	if err != nil {
		t.Fatal(err)
	}
	s := res.Stats
	if s.Levels != 2 || s.GatesEvaluated != 2 || s.Evaluations != 2 ||
		s.ProximityEvals != 1 || s.SingleArcEvals != 1 {
		t.Fatalf("stats %+v", s)
	}
	if len(s.PerLevel) != 2 || s.PerLevel[0].Gates != 1 || s.PerLevel[1].Gates != 1 {
		t.Fatalf("per-level stats %+v", s.PerLevel)
	}
}

// TestLevelsSchedule: levelization depths on a known diamond.
func TestLevelsSchedule(t *testing.T) {
	c := sta.NewCircuit(sta.SynthLibrary(2))
	a, b := c.Input("a"), c.Input("b")
	x, _ := c.AddGate("g1", "inv", "x", a)
	y, _ := c.AddGate("g2", "inv", "y", b)
	if _, err := c.AddGate("g3", "nand2", "z", x, y); err != nil {
		t.Fatal(err)
	}
	levels, err := c.Levels()
	if err != nil {
		t.Fatal(err)
	}
	if len(levels) != 2 || len(levels[0]) != 2 || len(levels[1]) != 1 {
		t.Fatalf("levels shape %v", shape(levels))
	}
	if levels[0][0].Name != "g1" || levels[0][1].Name != "g2" || levels[1][0].Name != "g3" {
		t.Fatalf("level order not netlist order: %v", shape(levels))
	}
}

func shape(levels [][]*sta.Gate) []int {
	s := make([]int, len(levels))
	for i, l := range levels {
		s[i] = len(l)
	}
	return s
}
