package sta

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"repro/internal/waveform"
)

// ParseNetlist reads a gate-level netlist in this package's tiny text
// format and builds a Circuit over the library:
//
//	# comment
//	input a b cin
//	gate g1 nand2 n1 a b        # gate <inst> <type> <output> <inputs...>
//	gate g2 inv    n2 n1
//	output n2
//
// Nets may be referenced before they are driven (forward references are
// legal); every gate type must exist in the library.
func ParseNetlist(r io.Reader, lib *Library) (*Circuit, error) {
	c := NewCircuit(lib)
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "input":
			if len(fields) < 2 {
				return nil, fmt.Errorf("sta: line %d: input needs at least one net", lineNo)
			}
			for _, n := range fields[1:] {
				c.Input(n)
			}
		case "gate":
			if len(fields) < 5 {
				return nil, fmt.Errorf("sta: line %d: gate needs inst, type, output and inputs", lineNo)
			}
			inst, typ, out := fields[1], fields[2], fields[3]
			ins := make([]*Net, len(fields)-4)
			for i, n := range fields[4:] {
				ins[i] = c.ForwardNet(n)
			}
			if _, err := c.AddGate(inst, typ, out, ins...); err != nil {
				return nil, fmt.Errorf("sta: line %d: %w", lineNo, err)
			}
		case "output":
			if len(fields) < 2 {
				return nil, fmt.Errorf("sta: line %d: output needs at least one net", lineNo)
			}
			for _, n := range fields[1:] {
				c.MarkOutput(c.ForwardNet(n))
			}
		default:
			return nil, fmt.Errorf("sta: line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	// Sanity: every non-primary net with loads must have a driver.
	for name, n := range c.nets {
		if n.Driver == nil && !c.IsPI(n) {
			return nil, fmt.Errorf("sta: net %s is neither driven nor a declared input", name)
		}
	}
	return c, nil
}

// WriteNetlist serializes a circuit back into the text format ParseNetlist
// reads: one input line, the gates in netlist order, one output line. A
// round trip through WriteNetlist and ParseNetlist over the same library
// reproduces the circuit structure exactly (names, pin order, levelization).
func WriteNetlist(w io.Writer, c *Circuit) error {
	bw := bufio.NewWriter(w)
	if len(c.PIs) > 0 {
		bw.WriteString("input")
		for _, pi := range c.PIs {
			bw.WriteByte(' ')
			bw.WriteString(pi.Name)
		}
		bw.WriteByte('\n')
	}
	for _, g := range c.Gates {
		fmt.Fprintf(bw, "gate %s %s %s", g.Name, g.Type, g.Out.Name)
		for _, in := range g.In {
			bw.WriteByte(' ')
			bw.WriteString(in.Name)
		}
		bw.WriteByte('\n')
	}
	if len(c.POs) > 0 {
		bw.WriteString("output")
		for _, po := range c.POs {
			bw.WriteByte(' ')
			bw.WriteString(po.Name)
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// ParseEvents parses a comma-separated primary-input event list of the form
// net:dir:tt_ps:time_ps (dir = rise|fall, abbreviations r|f accepted).
func ParseEvents(c *Circuit, s string) ([]PIEvent, error) {
	var out []PIEvent
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		fields := strings.Split(part, ":")
		if len(fields) != 4 {
			return nil, fmt.Errorf("sta: event %q: want net:dir:tt_ps:time_ps", part)
		}
		n := c.Net(fields[0])
		if n == nil {
			return nil, fmt.Errorf("sta: event %q: unknown net %q", part, fields[0])
		}
		var dir waveform.Direction
		switch fields[1] {
		case "rise", "r":
			dir = waveform.Rising
		case "fall", "f":
			dir = waveform.Falling
		default:
			return nil, fmt.Errorf("sta: event %q: bad direction %q", part, fields[1])
		}
		// ParseFloat accepts "NaN" and "Inf", and NaN fails tt <= 0 — guard
		// with !(tt > 0) plus explicit infinity checks so non-finite inputs
		// are rejected here instead of flowing into the engine.
		tt, err := strconv.ParseFloat(fields[2], 64)
		if err != nil || !(tt > 0) || math.IsInf(tt, 1) {
			return nil, fmt.Errorf("sta: event %q: bad transition time %q", part, fields[2])
		}
		at, err := strconv.ParseFloat(fields[3], 64)
		if err != nil || math.IsNaN(at) || math.IsInf(at, 0) {
			return nil, fmt.Errorf("sta: event %q: bad time %q", part, fields[3])
		}
		out = append(out, PIEvent{Net: n, Dir: dir, TT: tt * 1e-12, Time: at * 1e-12})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("sta: no events")
	}
	return out, nil
}
