package sta_test

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/sta"
	"repro/internal/waveform"
)

// rippleAdderNetlist generates an n-bit ripple-carry adder in the 9-NAND
// full-adder realization (sum and carry per bit), as netlist text.
func rippleAdderNetlist(bits int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "input cin0")
	for i := 0; i < bits; i++ {
		fmt.Fprintf(&b, " a%d b%d", i, i)
	}
	fmt.Fprintln(&b)
	for i := 0; i < bits; i++ {
		cin := fmt.Sprintf("cin%d", i)
		// Half-XOR pieces with NAND2s: x1 = NAND(a,b); x2 = NAND(a,x1);
		// x3 = NAND(b,x1); p = NAND(x2,x3) (= a XOR b).
		fmt.Fprintf(&b, "gate g%dx1 nand2 x1_%d a%d b%d\n", i, i, i, i)
		fmt.Fprintf(&b, "gate g%dx2 nand2 x2_%d a%d x1_%d\n", i, i, i, i)
		fmt.Fprintf(&b, "gate g%dx3 nand2 x3_%d b%d x1_%d\n", i, i, i, i)
		fmt.Fprintf(&b, "gate g%dp  nand2 p_%d x2_%d x3_%d\n", i, i, i, i)
		// Sum = p XOR cin, same structure.
		fmt.Fprintf(&b, "gate g%ds1 nand2 s1_%d p_%d %s\n", i, i, i, cin)
		fmt.Fprintf(&b, "gate g%ds2 nand2 s2_%d p_%d s1_%d\n", i, i, i, i)
		fmt.Fprintf(&b, "gate g%ds3 nand2 s3_%d %s s1_%d\n", i, i, cin, i)
		fmt.Fprintf(&b, "gate g%dsum nand2 sum%d s2_%d s3_%d\n", i, i, i, i)
		// Carry out = NAND(x1, s1) (standard 9-gate realization).
		fmt.Fprintf(&b, "gate g%dc nand2 cin%d x1_%d s1_%d\n", i, i+1, i, i)
		fmt.Fprintf(&b, "output sum%d\n", i)
	}
	fmt.Fprintf(&b, "output cin%d\n", bits)
	return b.String()
}

// BenchmarkAdderAnalyze16 measures proximity-aware analysis throughput on a
// 16-bit (144-gate) ripple-carry adder.
func BenchmarkAdderAnalyze16(b *testing.B) {
	l := testLibrary(b)
	const bits = 16
	c, err := sta.ParseNetlist(strings.NewReader(rippleAdderNetlist(bits)), l)
	if err != nil {
		b.Fatal(err)
	}
	var events []sta.PIEvent
	events = append(events, sta.PIEvent{Net: c.Net("cin0"), Dir: waveform.Rising, Time: 0, TT: 250e-12})
	for i := 0; i < bits; i++ {
		events = append(events,
			sta.PIEvent{Net: c.Net(fmt.Sprintf("a%d", i)), Dir: waveform.Rising, Time: float64(i) * 20e-12, TT: 300e-12},
			sta.PIEvent{Net: c.Net(fmt.Sprintf("b%d", i)), Dir: waveform.Rising, Time: float64(i) * 25e-12, TT: 200e-12},
		)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Analyze(events, sta.Proximity); err != nil {
			b.Fatal(err)
		}
	}
}

// TestRippleAdderTiming runs both analysis modes over a 4-bit (36-gate)
// adder and checks structural sanity: every output has an arrival, the
// carry chain arrivals increase monotonically with bit position, and the
// proximity analysis engages multi-input evaluation somewhere.
func TestRippleAdderTiming(t *testing.T) {
	l := testLibrary(t)
	const bits = 4
	c, err := sta.ParseNetlist(strings.NewReader(rippleAdderNetlist(bits)), l)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Gates) != 9*bits {
		t.Fatalf("adder has %d gates, want %d", len(c.Gates), 9*bits)
	}
	var events []sta.PIEvent
	events = append(events, sta.PIEvent{Net: c.Net("cin0"), Dir: waveform.Rising, Time: 0, TT: 250e-12})
	for i := 0; i < bits; i++ {
		events = append(events,
			sta.PIEvent{Net: c.Net(fmt.Sprintf("a%d", i)), Dir: waveform.Rising, Time: float64(i) * 20e-12, TT: 300e-12},
			sta.PIEvent{Net: c.Net(fmt.Sprintf("b%d", i)), Dir: waveform.Rising, Time: float64(i) * 25e-12, TT: 200e-12},
		)
	}
	for _, mode := range []sta.Mode{sta.Conventional, sta.Proximity} {
		res, err := c.Analyze(events, mode)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		prev := -1.0
		for i := 1; i <= bits; i++ {
			arr, ok := res.Latest(c.Net(fmt.Sprintf("cin%d", i)))
			if !ok {
				t.Fatalf("%v: no arrival on carry cin%d", mode, i)
			}
			if arr.Time <= prev {
				t.Errorf("%v: carry chain not monotone at bit %d (%.1fps after %.1fps)",
					mode, i, arr.Time*1e12, prev*1e12)
			}
			prev = arr.Time
		}
		for i := 0; i < bits; i++ {
			if _, ok := res.Latest(c.Net(fmt.Sprintf("sum%d", i))); !ok {
				t.Errorf("%v: no arrival on sum%d", mode, i)
			}
		}
		if mode == sta.Proximity {
			engaged := 0
			for _, name := range c.NetsByName() {
				n := c.Net(name)
				for _, dir := range []waveform.Direction{waveform.Rising, waveform.Falling} {
					if a, ok := res.Arrival(n, dir); ok && a.UsedInputs > 1 {
						engaged++
					}
				}
			}
			if engaged == 0 {
				t.Error("proximity mode never combined multiple inputs in a 36-gate adder")
			}
			t.Logf("proximity evaluation engaged on %d arrivals", engaged)
		}
	}
}
