package sta_test

import (
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/macromodel"
	"repro/internal/sta"
	"repro/internal/waveform"
)

// requireIdenticalResults asserts two analyses agree arrival-for-arrival on
// every net of the circuit — presence, time, transition time, dominant pin
// and proximity fan-in, compared bit-exactly.
func requireIdenticalResults(t *testing.T, c *sta.Circuit, want, got *sta.Result, label string) {
	t.Helper()
	compared := 0
	for _, name := range c.NetsByName() {
		n := c.Net(name)
		for _, dir := range []waveform.Direction{waveform.Rising, waveform.Falling} {
			wa, wok := want.Arrival(n, dir)
			ga, gok := got.Arrival(n, dir)
			if wok != gok {
				t.Fatalf("%s: net %s %v: present=%v dense, %v sparse", label, name, dir, wok, gok)
			}
			if !wok {
				continue
			}
			compared++
			if wa.Time != ga.Time || wa.TT != ga.TT || wa.FromPin != ga.FromPin || wa.UsedInputs != ga.UsedInputs {
				t.Fatalf("%s: net %s %v: dense (%v, %v, pin %d, used %d) vs sparse (%v, %v, pin %d, used %d)",
					label, name, dir, wa.Time, wa.TT, wa.FromPin, wa.UsedInputs,
					ga.Time, ga.TT, ga.FromPin, ga.UsedInputs)
			}
		}
	}
	if compared == 0 {
		t.Fatalf("%s: no arrivals compared — vacuous", label)
	}
}

// TestSparseMatchesDense is the engine-local half of the sparse-vs-dense
// contract (internal/difftest carries the 120-config oracle): on a random
// DAG with a partial stimulus, the cone-pruned schedule must produce
// bit-identical arrivals while actually scheduling fewer gates.
func TestSparseMatchesDense(t *testing.T) {
	c, err := sta.SynthRandom(96, 1500, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		pis  []*sta.Net
	}{
		{"partial", c.PIs[:3]},
		{"full", c.PIs},
	} {
		evs := sta.SynthEventsFor(tc.pis, 11)
		for _, mode := range []sta.Mode{sta.Proximity, sta.Conventional} {
			dense, err := c.AnalyzeOpts(evs, mode, sta.Options{Workers: 1, Dense: true})
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 4} {
				sparse, err := c.AnalyzeOpts(evs, mode, sta.Options{Workers: workers})
				if err != nil {
					t.Fatal(err)
				}
				label := tc.name + "/" + mode.String()
				requireIdenticalResults(t, c, dense, sparse, label)
				// The eval-side stats must agree exactly; only the schedule
				// sizes may differ, and on the partial stimulus they must.
				if sparse.Stats.GatesEvaluated != dense.Stats.GatesEvaluated ||
					sparse.Stats.Evaluations != dense.Stats.Evaluations ||
					sparse.Stats.ProximityEvals != dense.Stats.ProximityEvals {
					t.Fatalf("%s: eval stats diverge: sparse %+v dense %+v", label, sparse.Stats, dense.Stats)
				}
				if sparse.Stats.GatesScheduled > dense.Stats.GatesScheduled {
					t.Fatalf("%s: sparse scheduled %d > dense %d", label, sparse.Stats.GatesScheduled, dense.Stats.GatesScheduled)
				}
				if tc.name == "partial" && sparse.Stats.GatesScheduled >= dense.Stats.GatesScheduled {
					t.Fatalf("%s: sparse scheduled %d of %d — pruning never kicked in, test is vacuous",
						label, sparse.Stats.GatesScheduled, dense.Stats.GatesScheduled)
				}
			}
		}
	}
}

// TestSparseBatchMatchesDense runs the same partial-stimulus batch through
// both schedules over one shared compilation.
func TestSparseBatchMatchesDense(t *testing.T) {
	c, err := sta.SynthTiled(6, 6, 40, 3)
	if err != nil {
		t.Fatal(err)
	}
	var batch [][]sta.PIEvent
	for tile := 0; tile < 6; tile++ {
		batch = append(batch, sta.SynthEventsFor(sta.TilePIs(c, tile), int64(tile)))
	}
	dense, err := c.AnalyzeBatch(batch, sta.Proximity, sta.Options{Workers: 1, Dense: true})
	if err != nil {
		t.Fatal(err)
	}
	sparse, err := c.AnalyzeBatch(batch, sta.Proximity, sta.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range batch {
		requireIdenticalResults(t, c, dense[i], sparse[i], "vector")
	}
}

// TestSparseCriticalPathAcrossPrunedCones stimulates one tile of a
// block-partitioned circuit and traces the critical path through the sparse
// result: the indexed arrival store must support path tracing even though
// every other tile was pruned from the schedule, and the pruned tiles'
// outputs must carry no arrivals at all.
func TestSparseCriticalPathAcrossPrunedCones(t *testing.T) {
	c, err := sta.SynthTiled(5, 8, 60, 9)
	if err != nil {
		t.Fatal(err)
	}
	const tile = 2
	evs := sta.SynthEventsFor(sta.TilePIs(c, tile), 21)
	res, err := c.AnalyzeOpts(evs, sta.Proximity, sta.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	traced := 0
	for _, po := range c.POs {
		arr, ok := res.Latest(po)
		if !strings.HasPrefix(po.Name, "t2_") {
			if ok {
				t.Fatalf("pruned tile's output %s carries an arrival (%v)", po.Name, arr)
			}
			continue
		}
		if !ok {
			continue // a stimulated tile's PO may legitimately stay silent
		}
		path, err := res.CriticalPath(po, arr.Dir)
		if err != nil {
			t.Fatalf("CriticalPath(%s, %v): %v", po.Name, arr.Dir, err)
		}
		if len(path) < 2 {
			t.Fatalf("path to %s has %d stages, want >= 2", po.Name, len(path))
		}
		if first := path[0].Net; !strings.HasPrefix(first.Name, "t2_p") {
			t.Fatalf("path to %s starts at %s, want a t2 primary input", po.Name, first.Name)
		}
		for _, st := range path {
			if !strings.HasPrefix(st.Net.Name, "t2_") {
				t.Fatalf("path to %s crosses into another tile at %s", po.Name, st.Net.Name)
			}
		}
		traced++
	}
	if traced == 0 {
		t.Fatal("no critical path traced in the stimulated tile — vacuous")
	}
}

// TestSparseZeroConeStimulus: an event on a primary input that drives no
// gate has an empty fanout cone. The analysis must succeed with zero gates
// scheduled — the PI's own arrival present, everything else silent — not
// error out or fall back to a full walk.
func TestSparseZeroConeStimulus(t *testing.T) {
	lib := sta.NewLibrary()
	lib.Add("inv", core.NewCalculator(macromodel.SynthModel("inv", 1)))
	c := sta.NewCircuit(lib)
	a := c.Input("a")
	unused := c.Input("unused")
	x, err := c.AddGate("g1", "inv", "x", a)
	if err != nil {
		t.Fatal(err)
	}
	c.MarkOutput(x)

	res, err := c.AnalyzeOpts([]sta.PIEvent{
		{Net: unused, Dir: waveform.Rising, Time: 0, TT: 200e-12},
	}, sta.Proximity, sta.Options{Workers: 1})
	if err != nil {
		t.Fatalf("zero-cone stimulus errored: %v", err)
	}
	if res.Stats.GatesScheduled != 0 || res.Stats.GatesEvaluated != 0 {
		t.Fatalf("scheduled %d / evaluated %d gates for an empty cone, want 0 / 0",
			res.Stats.GatesScheduled, res.Stats.GatesEvaluated)
	}
	if _, ok := res.Arrival(unused, waveform.Rising); !ok {
		t.Fatal("stimulated PI lost its own arrival")
	}
	if _, ok := res.Latest(x); ok {
		t.Fatal("unstimulated gate output carries an arrival")
	}

	// The compiled handle agrees: the cone is empty, not absent.
	p, err := c.Compile()
	if err != nil {
		t.Fatal(err)
	}
	cone, ok := p.Cone(unused)
	if !ok || len(cone) != 0 {
		t.Fatalf("Cone(unused) = %v, %v; want empty, true", cone, ok)
	}
	if cone, ok = p.Cone(a); !ok || len(cone) != 1 {
		t.Fatalf("Cone(a) = %v, %v; want one gate, true", cone, ok)
	}
}

// TestConventionalErrorContext cripples a model — pin 1 loses its
// single-input tables — and requires the Conventional-mode error to name
// the gate, the output direction, the failing pin, its net and the input
// direction, matching the context the proximity path's errors carry.
func TestConventionalErrorContext(t *testing.T) {
	m := macromodel.SynthModel("nand", 2)
	kept := m.Singles[:0]
	for _, s := range m.Singles {
		if s.Pin != 1 {
			kept = append(kept, s)
		}
	}
	m.Singles = kept

	lib := sta.NewLibrary()
	lib.Add("nand2", core.NewCalculator(m))
	c := sta.NewCircuit(lib)
	a, b := c.Input("a"), c.Input("b")
	x, err := c.AddGate("g1", "nand2", "x", a, b)
	if err != nil {
		t.Fatal(err)
	}
	c.MarkOutput(x)

	_, err = c.Analyze([]sta.PIEvent{
		{Net: a, Dir: waveform.Falling, Time: 0, TT: 200e-12},
		{Net: b, Dir: waveform.Falling, Time: 10e-12, TT: 200e-12},
	}, sta.Conventional)
	if err == nil {
		t.Fatal("crippled pin evaluated without error")
	}
	for _, want := range []string{"gate g1", "rising output", "pin 1", "net b", "falling"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not mention %q", err, want)
		}
	}
}

// TestConventionalNaNDelayRejected: when every single-input arc of a gate
// yields a non-comparable (NaN) delay, Conventional mode must error rather
// than return a zero-FromGate arrival that breaks path tracing downstream.
func TestConventionalNaNDelayRejected(t *testing.T) {
	m := macromodel.SynthModel("inv", 1)
	for _, s := range m.Singles {
		for i := range s.Delay {
			s.Delay[i] = math.NaN()
		}
	}
	lib := sta.NewLibrary()
	lib.Add("inv", core.NewCalculator(m))
	c := sta.NewCircuit(lib)
	a := c.Input("a")
	x, err := c.AddGate("g1", "inv", "x", a)
	if err != nil {
		t.Fatal(err)
	}
	c.MarkOutput(x)

	_, err = c.Analyze([]sta.PIEvent{
		{Net: a, Dir: waveform.Falling, Time: 0, TT: 200e-12},
	}, sta.Conventional)
	if err == nil {
		t.Fatal("NaN single-arc delay produced an arrival")
	}
	for _, want := range []string{"gate g1", "no finite single-arc delay"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not mention %q", err, want)
		}
	}
}
