package sta

// Pulse-filtering benchmark: Section-6 judging runs at commit time on every
// gate whose evaluation produced both output edges, so its cost shows up
// exactly on runt-heavy workloads — compressed stimuli where most outputs
// carry opposite-edge pairs. The recorded number is the ratio between a
// filtered and an unfiltered analyze of the same vector on the same compile,
// which isolates the verdict cost (lookup, interpolation, inertial-delay
// bisection) from everything else. This file lives in package sta alongside
// the MC bench to reuse its tiled netlist fixture.

import (
	"context"
	"encoding/json"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/waveform"
)

var (
	glitchBenchOnce sync.Once
	glitchBenchEvs  []PIEvent
)

// getGlitchBench returns the shared tiled netlist with a runt-heavy full
// stimulus: every primary input fires, event times compressed into a 160ps
// window with alternating directions, so downstream gates see close
// opposite-edge pairs and the filter actually judges instead of
// fast-pathing.
func getGlitchBench(tb testing.TB) (*Circuit, []PIEvent) {
	c, _ := getMCBench(tb)
	glitchBenchOnce.Do(func() {
		glitchBenchEvs = SynthEventsFor(c.PIs, 1)
		for i := range glitchBenchEvs {
			glitchBenchEvs[i].Time = float64(i%5) * 40e-12
			glitchBenchEvs[i].Dir = waveform.Rising
			if i%2 == 1 {
				glitchBenchEvs[i].Dir = waveform.Falling
			}
		}
	})
	return c, glitchBenchEvs
}

func BenchmarkPulseFilter(b *testing.B) {
	c, evs := getGlitchBench(b)
	p, err := c.Compile()
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()

	b.Run("off", func(b *testing.B) {
		opt := Options{Workers: 1}
		for i := 0; i < b.N; i++ {
			if _, err := p.Analyze(ctx, evs, Proximity, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("on", func(b *testing.B) {
		opt := Options{Workers: 1, PulseFiltering: true}
		for i := 0; i < b.N; i++ {
			if _, err := p.Analyze(ctx, evs, Proximity, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// glitchBenchResult is the BENCH_glitch.json schema.
type glitchBenchResult struct {
	Timestamp    string `json:"timestamp"`
	NetlistGates int    `json:"netlistGates"`
	NetlistPIs   int    `json:"netlistPIs"`

	// PulsesFiltered/PulsesDegraded are the per-vector verdict counts on the
	// runt-heavy stimulus — recorded so a baseline where the filter stopped
	// judging anything is recognizable as vacuous, not fast.
	PulsesFiltered int `json:"pulsesFiltered"`
	PulsesDegraded int `json:"pulsesDegraded"`

	// PlainSecPerVector is the unfiltered serial analyze; FilteredSecPerVector
	// the same vector with PulseFiltering on, same compile.
	PlainSecPerVector    float64 `json:"plainSecPerVector"`
	FilteredSecPerVector float64 `json:"filteredSecPerVector"`
	// FilterOverhead = FilteredSecPerVector / PlainSecPerVector (the
	// acceptance bar is 2x on the runt-heavy worst case).
	FilterOverhead float64 `json:"filterOverhead"`
}

// TestWriteGlitchBench regenerates BENCH_glitch.json when BENCH_GLITCH_OUT
// names the output path (skipped in normal test runs):
//
//	BENCH_GLITCH_OUT=$(pwd)/BENCH_glitch.json go test -run TestWriteGlitchBench ./internal/sta/
//
// Acceptance bar: on a worst-case runt-heavy stimulus, enabling the filter
// costs at most 2x a plain analyze of the same vector.
func TestWriteGlitchBench(t *testing.T) {
	out := os.Getenv("BENCH_GLITCH_OUT")
	if out == "" {
		t.Skip("set BENCH_GLITCH_OUT to regenerate BENCH_glitch.json")
	}
	c, evs := getGlitchBench(t)
	p, err := c.Compile()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	probe, err := p.Analyze(ctx, evs, Proximity, Options{Workers: 1, PulseFiltering: true})
	if err != nil {
		t.Fatal(err)
	}
	if probe.Stats.PulsesFiltered+probe.Stats.PulsesDegraded == 0 {
		t.Fatal("runt-heavy stimulus judged no pulses — benchmark is vacuous")
	}

	plain := testing.Benchmark(func(b *testing.B) {
		opt := Options{Workers: 1}
		for i := 0; i < b.N; i++ {
			if _, err := p.Analyze(ctx, evs, Proximity, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
	filtered := testing.Benchmark(func(b *testing.B) {
		opt := Options{Workers: 1, PulseFiltering: true}
		for i := 0; i < b.N; i++ {
			if _, err := p.Analyze(ctx, evs, Proximity, opt); err != nil {
				b.Fatal(err)
			}
		}
	})

	res := glitchBenchResult{
		Timestamp:    time.Now().UTC().Format(time.RFC3339),
		NetlistGates: mcBenchTiles * mcBenchGatesPerTile,
		NetlistPIs:   mcBenchTiles * mcBenchPIsPerTile,

		PulsesFiltered: probe.Stats.PulsesFiltered,
		PulsesDegraded: probe.Stats.PulsesDegraded,

		PlainSecPerVector:    plain.T.Seconds() / float64(plain.N),
		FilteredSecPerVector: filtered.T.Seconds() / float64(filtered.N),
	}
	res.FilterOverhead = res.FilteredSecPerVector / res.PlainSecPerVector

	if res.FilterOverhead > 2 {
		t.Errorf("pulse filtering costs %.2fx a plain analyze, acceptance bar is 2x", res.FilterOverhead)
	}

	data, err := json.MarshalIndent(res, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("pulse filtering %.2fx overhead (%.3gs plain vs %.3gs filtered; %d filtered, %d degraded); wrote %s",
		res.FilterOverhead, res.PlainSecPerVector, res.FilteredSecPerVector,
		res.PulsesFiltered, res.PulsesDegraded, out)
}

// TestBenchGuardGlitch compares today's filter overhead against the recorded
// BENCH_glitch.json, gated behind BENCH_GUARD=1 like the MC guard. Both
// sides of the ratio are measured seconds apart in one process, so
// machine-wide slowdowns cancel; margin via BENCH_GUARD_MARGIN (default
// 1.25x).
func TestBenchGuardGlitch(t *testing.T) {
	if os.Getenv("BENCH_GUARD") == "" {
		t.Skip("set BENCH_GUARD=1 to compare against BENCH_glitch.json")
	}
	margin := 1.25
	if s := os.Getenv("BENCH_GUARD_MARGIN"); s != "" {
		m, err := strconv.ParseFloat(s, 64)
		if err != nil {
			t.Fatalf("bad BENCH_GUARD_MARGIN %q: %v", s, err)
		}
		margin = m
	}
	data, err := os.ReadFile("../../BENCH_glitch.json")
	if err != nil {
		t.Fatalf("no baseline: %v", err)
	}
	var base glitchBenchResult
	if err := json.Unmarshal(data, &base); err != nil {
		t.Fatal(err)
	}
	if base.FilterOverhead <= 0 {
		t.Fatalf("baseline incomplete: %+v", base)
	}

	c, evs := getGlitchBench(t)
	p, err := c.Compile()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	plain := testing.Benchmark(func(b *testing.B) {
		opt := Options{Workers: 1}
		for i := 0; i < b.N; i++ {
			if _, err := p.Analyze(ctx, evs, Proximity, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
	filtered := testing.Benchmark(func(b *testing.B) {
		opt := Options{Workers: 1, PulseFiltering: true}
		for i := 0; i < b.N; i++ {
			if _, err := p.Analyze(ctx, evs, Proximity, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
	overhead := (filtered.T.Seconds() / float64(filtered.N)) / (plain.T.Seconds() / float64(plain.N))
	t.Logf("pulse filtering overhead %.2fx (baseline %.2fx)", overhead, base.FilterOverhead)
	if overhead > base.FilterOverhead*margin {
		t.Errorf("pulse filtering overhead grew to %.2fx from the recorded %.2fx (margin %.2f) — verdict cost crept in",
			overhead, base.FilterOverhead, margin)
	}
}
