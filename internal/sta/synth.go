package sta

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/macromodel"
	"repro/internal/waveform"
)

// SynthLibrary returns a library of analytically modeled gates — "inv" plus
// "nand2" … "nandN" for N = maxInputs — built from macromodel.SynthModel.
// No transient simulation runs behind these calculators, so circuits of
// hundreds of thousands of gates characterize instantly; use it for
// large-netlist tests and benchmarks, not for physical results.
func SynthLibrary(maxInputs int) *Library {
	lib := NewLibrary()
	lib.Add("inv", core.NewCalculator(macromodel.SynthModel("inv", 1)))
	for n := 2; n <= maxInputs; n++ {
		lib.Add(fmt.Sprintf("nand%d", n), core.NewCalculator(macromodel.SynthModel("nand", n)))
	}
	return lib
}

// SynthChain builds an inverter chain of the given depth over a synthetic
// library: primary input "in" feeding depth inverters, the last of which is
// marked as the primary output. The chain is the deepest possible netlist
// per gate count — the levelization stress case.
func SynthChain(depth int) (c *Circuit, in, out *Net, err error) {
	if depth < 1 {
		return nil, nil, nil, fmt.Errorf("sta: chain depth must be positive")
	}
	c = NewCircuit(SynthLibrary(1))
	prev := c.Input("in")
	in = prev
	for i := 0; i < depth; i++ {
		prev, err = c.AddGate(fmt.Sprintf("i%d", i), "inv", fmt.Sprintf("n%d", i), prev)
		if err != nil {
			return nil, nil, nil, err
		}
	}
	c.MarkOutput(prev)
	return c, in, prev, nil
}

// SynthRandom builds a pseudo-random layered combinational DAG with nPIs
// primary inputs and nGates gates (a mix of inverters and 2-/3-input NANDs
// over the synthetic library), deterministic in seed. Gates are laid out in
// layers roughly nGates/64 wide, each gate anchored on the previous layer
// with the remaining inputs drawn from anywhere earlier — the wide-level,
// moderate-depth shape of mapped logic (and the shape the levelized
// parallel Analyze is built for). Every net without fanout is marked as a
// primary output.
func SynthRandom(nPIs, nGates int, seed int64) (*Circuit, error) {
	if nPIs < 1 || nGates < 1 {
		return nil, fmt.Errorf("sta: need at least one PI and one gate")
	}
	rng := rand.New(rand.NewSource(seed))
	c := NewCircuit(SynthLibrary(3))
	pool := make([]*Net, 0, nPIs+nGates)
	for i := 0; i < nPIs; i++ {
		pool = append(pool, c.Input(fmt.Sprintf("p%d", i)))
	}
	width := nGates / 64
	if width < 8 {
		width = 8
	}
	hasFanout := make(map[*Net]bool, nPIs+nGates)
	prevLayer := pool // layer -1: the primary inputs
	var layer []*Net
	for i := 0; i < nGates; i++ {
		typ, arity := "nand2", 2
		switch r := rng.Intn(10); {
		case r < 2:
			typ, arity = "inv", 1
		case r >= 7:
			typ, arity = "nand3", 3
		}
		ins := make([]*Net, arity)
		// First input from the previous layer keeps the DAG layered;
		// the rest come from anywhere earlier for cross-layer fanin.
		ins[0] = prevLayer[rng.Intn(len(prevLayer))]
		for k := 1; k < arity; k++ {
			ins[k] = pool[rng.Intn(len(pool))]
		}
		out, err := c.AddGate(fmt.Sprintf("g%d", i), typ, fmt.Sprintf("n%d", i), ins...)
		if err != nil {
			return nil, err
		}
		for _, in := range ins {
			hasFanout[in] = true
		}
		layer = append(layer, out)
		if len(layer) >= width {
			pool = append(pool, layer...)
			prevLayer, layer = layer, nil
		}
	}
	pool = append(pool, layer...)
	for _, n := range pool {
		if !hasFanout[n] && n.Driver != nil {
			c.MarkOutput(n)
		}
	}
	return c, nil
}

// SynthTiled builds nTiles independent pseudo-random blocks in one circuit:
// each tile is a small layered DAG (the SynthRandom construction with a
// tile-local pool) over its own pisPerTile primary inputs, with no nets
// shared between tiles. This is the block-partitioned shape of real designs
// where batch timing queries have locality — a vector that stimulates one
// tile's inputs can only ever reach that tile's gates, so it is the
// reference workload for cone-pruned sparse scheduling (and the worst case
// for a dense walk, which visits every tile regardless).
func SynthTiled(nTiles, pisPerTile, gatesPerTile int, seed int64) (*Circuit, error) {
	if nTiles < 1 || pisPerTile < 1 || gatesPerTile < 1 {
		return nil, fmt.Errorf("sta: need at least one tile, PI and gate per tile")
	}
	rng := rand.New(rand.NewSource(seed))
	c := NewCircuit(SynthLibrary(3))
	for t := 0; t < nTiles; t++ {
		pool := make([]*Net, 0, pisPerTile+gatesPerTile)
		for i := 0; i < pisPerTile; i++ {
			pool = append(pool, c.Input(fmt.Sprintf("t%d_p%d", t, i)))
		}
		width := gatesPerTile / 8
		if width < 4 {
			width = 4
		}
		hasFanout := make(map[*Net]bool, pisPerTile+gatesPerTile)
		prevLayer := pool
		var layer []*Net
		for i := 0; i < gatesPerTile; i++ {
			typ, arity := "nand2", 2
			switch r := rng.Intn(10); {
			case r < 2:
				typ, arity = "inv", 1
			case r >= 7:
				typ, arity = "nand3", 3
			}
			ins := make([]*Net, arity)
			ins[0] = prevLayer[rng.Intn(len(prevLayer))]
			for k := 1; k < arity; k++ {
				ins[k] = pool[rng.Intn(len(pool))]
			}
			out, err := c.AddGate(fmt.Sprintf("t%d_g%d", t, i), typ, fmt.Sprintf("t%d_n%d", t, i), ins...)
			if err != nil {
				return nil, err
			}
			for _, in := range ins {
				hasFanout[in] = true
			}
			layer = append(layer, out)
			if len(layer) >= width {
				pool = append(pool, layer...)
				prevLayer, layer = layer, nil
			}
		}
		pool = append(pool, layer...)
		for _, n := range pool {
			if !hasFanout[n] && n.Driver != nil {
				c.MarkOutput(n)
			}
		}
	}
	return c, nil
}

// TilePIs returns the primary inputs of one SynthTiled tile (by naming
// convention), for building tile-local stimulus vectors.
func TilePIs(c *Circuit, tile int) []*Net {
	var pis []*Net
	for i := 0; ; i++ {
		n := c.Net(fmt.Sprintf("t%d_p%d", tile, i))
		if n == nil {
			break
		}
		pis = append(pis, n)
	}
	return pis
}

// SynthEvents builds one deterministic event per primary input — a
// full-activity stimulus with staggered arrival times, varied transition
// times, and alternating directions, seeded for reproducibility.
func SynthEvents(c *Circuit, seed int64) []PIEvent {
	return SynthEventsFor(c.PIs, seed)
}

// SynthEventsFor builds one deterministic event per net of a primary-input
// subset — the partial-stimulus shape sparse scheduling exists for.
func SynthEventsFor(pis []*Net, seed int64) []PIEvent {
	rng := rand.New(rand.NewSource(seed))
	evs := make([]PIEvent, len(pis))
	for i, pi := range pis {
		dir := waveform.Rising
		if rng.Intn(2) == 1 {
			dir = waveform.Falling
		}
		evs[i] = PIEvent{
			Net:  pi,
			Dir:  dir,
			Time: float64(rng.Intn(120)) * 1e-12,
			TT:   (120 + float64(rng.Intn(400))) * 1e-12,
		}
	}
	return evs
}
