package sta

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/macromodel"
	"repro/internal/waveform"
)

// SynthLibrary returns a library of analytically modeled gates — "inv" plus
// "nand2" … "nandN" for N = maxInputs — built from macromodel.SynthModel.
// No transient simulation runs behind these calculators, so circuits of
// hundreds of thousands of gates characterize instantly; use it for
// large-netlist tests and benchmarks, not for physical results.
func SynthLibrary(maxInputs int) *Library {
	lib := NewLibrary()
	lib.Add("inv", core.NewCalculator(macromodel.SynthModel("inv", 1)))
	for n := 2; n <= maxInputs; n++ {
		lib.Add(fmt.Sprintf("nand%d", n), core.NewCalculator(macromodel.SynthModel("nand", n)))
	}
	return lib
}

// SynthChain builds an inverter chain of the given depth over a synthetic
// library: primary input "in" feeding depth inverters, the last of which is
// marked as the primary output. The chain is the deepest possible netlist
// per gate count — the levelization stress case.
func SynthChain(depth int) (c *Circuit, in, out *Net, err error) {
	if depth < 1 {
		return nil, nil, nil, fmt.Errorf("sta: chain depth must be positive")
	}
	c = NewCircuit(SynthLibrary(1))
	prev := c.Input("in")
	in = prev
	for i := 0; i < depth; i++ {
		prev, err = c.AddGate(fmt.Sprintf("i%d", i), "inv", fmt.Sprintf("n%d", i), prev)
		if err != nil {
			return nil, nil, nil, err
		}
	}
	c.MarkOutput(prev)
	return c, in, prev, nil
}

// SynthRandom builds a pseudo-random layered combinational DAG with nPIs
// primary inputs and nGates gates (a mix of inverters and 2-/3-input NANDs
// over the synthetic library), deterministic in seed. Gates are laid out in
// layers roughly nGates/64 wide, each gate anchored on the previous layer
// with the remaining inputs drawn from anywhere earlier — the wide-level,
// moderate-depth shape of mapped logic (and the shape the levelized
// parallel Analyze is built for). Every net without fanout is marked as a
// primary output.
func SynthRandom(nPIs, nGates int, seed int64) (*Circuit, error) {
	if nPIs < 1 || nGates < 1 {
		return nil, fmt.Errorf("sta: need at least one PI and one gate")
	}
	rng := rand.New(rand.NewSource(seed))
	c := NewCircuit(SynthLibrary(3))
	pool := make([]*Net, 0, nPIs+nGates)
	for i := 0; i < nPIs; i++ {
		pool = append(pool, c.Input(fmt.Sprintf("p%d", i)))
	}
	width := nGates / 64
	if width < 8 {
		width = 8
	}
	hasFanout := make(map[*Net]bool, nPIs+nGates)
	prevLayer := pool // layer -1: the primary inputs
	var layer []*Net
	for i := 0; i < nGates; i++ {
		typ, arity := "nand2", 2
		switch r := rng.Intn(10); {
		case r < 2:
			typ, arity = "inv", 1
		case r >= 7:
			typ, arity = "nand3", 3
		}
		ins := make([]*Net, arity)
		// First input from the previous layer keeps the DAG layered;
		// the rest come from anywhere earlier for cross-layer fanin.
		ins[0] = prevLayer[rng.Intn(len(prevLayer))]
		for k := 1; k < arity; k++ {
			ins[k] = pool[rng.Intn(len(pool))]
		}
		out, err := c.AddGate(fmt.Sprintf("g%d", i), typ, fmt.Sprintf("n%d", i), ins...)
		if err != nil {
			return nil, err
		}
		for _, in := range ins {
			hasFanout[in] = true
		}
		layer = append(layer, out)
		if len(layer) >= width {
			pool = append(pool, layer...)
			prevLayer, layer = layer, nil
		}
	}
	pool = append(pool, layer...)
	for _, n := range pool {
		if !hasFanout[n] && n.Driver != nil {
			c.MarkOutput(n)
		}
	}
	return c, nil
}

// SynthEvents builds one deterministic event per primary input — a
// full-activity stimulus with staggered arrival times, varied transition
// times, and alternating directions, seeded for reproducibility.
func SynthEvents(c *Circuit, seed int64) []PIEvent {
	rng := rand.New(rand.NewSource(seed))
	evs := make([]PIEvent, len(c.PIs))
	for i, pi := range c.PIs {
		dir := waveform.Rising
		if rng.Intn(2) == 1 {
			dir = waveform.Falling
		}
		evs[i] = PIEvent{
			Net:  pi,
			Dir:  dir,
			Time: float64(rng.Intn(120)) * 1e-12,
			TT:   (120 + float64(rng.Intn(400))) * 1e-12,
		}
	}
	return evs
}
