package sta_test

import (
	"strings"
	"testing"

	"repro/internal/sta"
	"repro/internal/waveform"
)

// A NAND fed by two proximate primary inputs: the explanation must agree
// with the committed arrival and carry the proximity decision trace.
func buildExplainCircuit(t *testing.T) (*sta.Circuit, []sta.PIEvent) {
	t.Helper()
	lib := sta.SynthLibrary(3)
	c := sta.NewCircuit(lib)
	a, b := c.Input("a"), c.Input("b")
	n1, err := c.AddGate("g1", "nand2", "n1", a, b)
	if err != nil {
		t.Fatal(err)
	}
	out, err := c.AddGate("g2", "inv", "out", n1)
	if err != nil {
		t.Fatal(err)
	}
	c.MarkOutput(out)
	evs := []sta.PIEvent{
		{Net: a, Dir: waveform.Rising, TT: 300e-12, Time: 0},
		{Net: b, Dir: waveform.Rising, TT: 260e-12, Time: 25e-12},
	}
	return c, evs
}

func TestExplainProximityNet(t *testing.T) {
	c, evs := buildExplainCircuit(t)
	res, err := c.Analyze(evs, sta.Proximity)
	if err != nil {
		t.Fatal(err)
	}
	nes, err := sta.ExplainNets(c, res, []string{"n1", "out", "a"})
	if err != nil {
		t.Fatal(err)
	}

	n1 := nes[0]
	if n1.Gate != "g1" || n1.Type != "nand2" {
		t.Fatalf("n1 driver = %s (%s)", n1.Gate, n1.Type)
	}
	if len(n1.Dirs) == 0 {
		t.Fatal("n1 has no explained arrivals")
	}
	for _, de := range n1.Dirs {
		if de.Proximity == nil {
			t.Fatalf("%v: proximity result lacks a core trace", de.Dir)
		}
		if len(de.Inputs) != 2 {
			t.Fatalf("%v: %d inputs presented, want 2", de.Dir, len(de.Inputs))
		}
		// The trace's dominant pin must be the one the arrival recorded.
		dom := de.Proximity.Inputs[de.Proximity.Order[0]].Pin
		if dom != de.Arrival.FromPin {
			t.Fatalf("%v: trace dominant pin %d != arrival FromPin %d", de.Dir, dom, de.Arrival.FromPin)
		}
		if de.Arrival.UsedInputs > 1 {
			// At least one absorbed (non-pruned) step must exist.
			absorbed := 0
			for _, st := range de.Proximity.Delay {
				if !st.Pruned {
					absorbed++
				}
			}
			if absorbed != de.Arrival.UsedInputs-1 {
				t.Fatalf("%v: %d absorbed steps for UsedInputs=%d", de.Dir, absorbed, de.Arrival.UsedInputs)
			}
		}
	}

	// "a" is a primary input.
	if !nes[2].PI {
		t.Fatalf("net a not explained as a primary input: %+v", nes[2])
	}

	// Rendering mentions the driver and the dominance section.
	var sb strings.Builder
	n1.Format(&sb)
	for _, want := range []string{"g1", "nand2", "dominance order"} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("formatted explain missing %q:\n%s", want, sb.String())
		}
	}
}

func TestExplainConventionalNet(t *testing.T) {
	c, evs := buildExplainCircuit(t)
	res, err := c.Analyze(evs, sta.Conventional)
	if err != nil {
		t.Fatal(err)
	}
	nes, err := sta.ExplainNets(c, res, []string{"n1"})
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range nes[0].Dirs {
		if de.Proximity != nil {
			t.Fatalf("conventional explain carries a proximity trace")
		}
		if len(de.Arcs) != 2 {
			t.Fatalf("%v: %d arcs, want 2", de.Dir, len(de.Arcs))
		}
		winners := 0
		for _, arc := range de.Arcs {
			if arc.Winner {
				winners++
				if arc.Pin != de.Arrival.FromPin {
					t.Fatalf("%v: winning arc pin %d != FromPin %d", de.Dir, arc.Pin, de.Arrival.FromPin)
				}
				if arc.Arrives != de.Arrival.Time {
					t.Fatalf("%v: winning arc arrives %g != arrival %g", de.Dir, arc.Arrives, de.Arrival.Time)
				}
			}
		}
		if winners != 1 {
			t.Fatalf("%v: %d winning arcs", de.Dir, winners)
		}
	}
}

func TestExplainErrors(t *testing.T) {
	c, evs := buildExplainCircuit(t)
	res, err := c.Analyze(evs, sta.Proximity)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sta.ExplainNets(c, res, []string{"nope"}); err == nil ||
		!strings.Contains(err.Error(), "nope") {
		t.Fatalf("unknown net error = %v, want it to name the net", err)
	}
	// A net that never transitioned explains as empty, not as an error.
	lib := sta.SynthLibrary(2)
	c2 := sta.NewCircuit(lib)
	x := c2.Input("x")
	c2.Input("y")
	if _, err := c2.AddGate("g", "inv", "z", x); err != nil {
		t.Fatal(err)
	}
	res2, err := c2.Analyze([]sta.PIEvent{{Net: c2.Net("y"), Dir: waveform.Rising, TT: 200e-12, Time: 0}}, sta.Proximity)
	if err != nil {
		t.Fatal(err)
	}
	nes, err := sta.ExplainNets(c2, res2, []string{"z"})
	if err != nil {
		t.Fatal(err)
	}
	if len(nes[0].Dirs) != 0 {
		t.Fatalf("quiet net explained with %d arrivals", len(nes[0].Dirs))
	}
	var sb strings.Builder
	nes[0].Format(&sb)
	if !strings.Contains(sb.String(), "no arrivals") {
		t.Fatalf("quiet net report missing 'no arrivals':\n%s", sb.String())
	}
}
