package sta_test

import (
	"strings"
	"testing"

	"repro/internal/sta"
	"repro/internal/waveform"
)

const adderNetlist = `
# 5-NAND carry structure
input a b cin
gate g1 nand2 nab a b
gate g2 nand2 nac a cin
gate g3 nand2 nbc b cin
gate g4 nand2 t1 nab nac
gate g5 inv   t1i t1
gate g6 nand2 cout t1i nbc
output cout
`

func TestParseNetlist(t *testing.T) {
	l := testLibrary(t)
	c, err := sta.ParseNetlist(strings.NewReader(adderNetlist), l)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Gates) != 6 {
		t.Errorf("parsed %d gates, want 6", len(c.Gates))
	}
	if len(c.PIs) != 3 || len(c.POs) != 1 {
		t.Errorf("PIs=%d POs=%d", len(c.PIs), len(c.POs))
	}
	// Analyzable end to end.
	evs, err := sta.ParseEvents(c, "a:rise:300:0, b:rise:250:30, cin:r:400:60")
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Analyze(evs, sta.Proximity)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.Latest(c.Net("cout")); !ok {
		t.Error("no arrival at cout")
	}
}

func TestParseNetlistForwardReference(t *testing.T) {
	l := testLibrary(t)
	// g1 references n2 before g2 drives it.
	src := `
input a
gate g1 nand2 n1 a n2
gate g2 inv n2 a2
input a2
output n1
`
	c, err := sta.ParseNetlist(strings.NewReader(src), l)
	if err != nil {
		t.Fatal(err)
	}
	if c.Net("n2").Driver == nil {
		t.Error("forward-referenced net lost its driver")
	}
}

func TestParseNetlistErrors(t *testing.T) {
	l := testLibrary(t)
	cases := map[string]string{
		"unknown directive": "wire x y\n",
		"gate arity":        "gate g1 nand2 out a\ninput a\n",
		"unknown type":      "input a b\ngate g1 xor2 out a b\n",
		"undriven net":      "input a\ngate g1 nand2 out a floating\noutput out\n",
		"short gate":        "gate g1 nand2\n",
		"short input":       "input\n",
	}
	for name, src := range cases {
		if _, err := sta.ParseNetlist(strings.NewReader(src), l); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestParseEventsErrors(t *testing.T) {
	l := testLibrary(t)
	c, err := sta.ParseNetlist(strings.NewReader("input a\ngate g1 inv out a\noutput out\n"), l)
	if err != nil {
		t.Fatal(err)
	}
	for name, spec := range map[string]string{
		"empty":        "",
		"bad format":   "a:rise:300",
		"unknown net":  "zz:rise:300:0",
		"bad dir":      "a:sideways:300:0",
		"bad tt":       "a:rise:zero:0",
		"non-positive": "a:rise:-5:0",
		"bad time":     "a:rise:300:soon",
	} {
		if _, err := sta.ParseEvents(c, spec); err == nil {
			t.Errorf("%s: accepted %q", name, spec)
		}
	}
	evs, err := sta.ParseEvents(c, "a:fall:250:10")
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 1 || evs[0].Dir != waveform.Falling || evs[0].TT != 250e-12 || evs[0].Time != 10e-12 {
		t.Errorf("parsed event %+v", evs[0])
	}
}
