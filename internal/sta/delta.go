package sta

// Event-driven delta re-analysis. The proximity model makes every arrival a
// function of which other inputs moved nearby, so what-if sweeps and ECO
// re-timing generate streams of near-duplicate queries: the same netlist,
// the same stimulus vector give or take a handful of primary-input events.
// Re-running the full cone walk for each is almost entirely redundant — the
// recomputed arrivals are bit-identical to the baseline everywhere the
// perturbation's influence has died out. AnalyzeDelta exploits that: clone
// the baseline arrival store, apply the delta at the primary inputs, then
// propagate dirtiness forward through the net-to-consumer edges in level
// order, re-running evalGate only on gates whose inputs changed and cutting
// off wherever a recomputed output is bit-equal to what the baseline already
// had. Gates the wavefront never reaches keep their baseline arrivals — and
// because evalGate is deterministic over committed arrivals, the result is
// bit-identical to a fresh full analysis of the edited vector (enforced by
// the internal/difftest delta-vs-full oracle).

import (
	"context"
	"fmt"
	"maps"
	"math"
	"slices"
	"time"

	"repro/internal/obs"
	"repro/internal/waveform"
)

// DeltaRemove names one primary-input event of the baseline to withdraw.
type DeltaRemove struct {
	Net *Net
	Dir waveform.Direction
}

// Delta is a stimulus edit against a baseline result: Remove withdraws
// baseline primary-input events, Set adds or replaces them. Removes apply
// first, so a Set on a removed (net, direction) re-adds it. The equivalent
// full vector is the baseline's events with these edits applied.
type Delta struct {
	Set    []PIEvent
	Remove []DeltaRemove
}

// cloneForDelta copies a result's arrival store so the delta walk can
// overwrite in place while the baseline stays immutable (and reusable as
// the baseline of further deltas). The pulse state rides along: the verdict
// map and the absorbed pairs' raw shapes are part of what "bit-identical to
// a fresh filtered analysis" means, and the walk mutates both in place.
func cloneForDelta(baseline *Result) *Result {
	return &Result{
		Mode:           baseline.Mode,
		idx:            append([]int32(nil), baseline.idx...),
		arr:            append([]dirArrivals(nil), baseline.arr...),
		pulseFiltering: baseline.pulseFiltering,
		pulses:         maps.Clone(baseline.pulses),
		pulseRaw:       maps.Clone(baseline.pulseRaw),
	}
}

// slotValue reads a net's arrival pair without creating a slot.
func slotValue(r *Result, id int32) dirArrivals {
	if s := r.idx[id]; s != 0 {
		return r.arr[s-1]
	}
	return dirArrivals{}
}

// AnalyzeDelta re-times a perturbed stimulus vector against a baseline
// result previously produced by this handle (any of Analyze, AnalyzeBatch
// or a prior AnalyzeDelta — delta chains compose). The analysis mode is the
// baseline's, and so is pulse filtering: Options.PulseFiltering must agree
// with how the baseline was produced, and under filtering every re-evaluated
// gate's opposite-edge pair is re-judged (verdicts of untouched gates are
// inherited). Only gates whose input arrivals actually change propagate; the
// returned result is bit-identical to a full analysis of the edited vector —
// arrivals, transition times, PulseInfo records and pulse counters — with
// Stats.GatesReevaluated/GatesReused reporting how much of the baseline
// survived. The baseline must come from this compiled handle — a baseline
// from before a structural edit is rejected.
func (p *Compiled) AnalyzeDelta(ctx context.Context, baseline *Result, delta Delta, opt Options) (*Result, error) {
	wallStart := time.Now()
	if baseline == nil {
		return nil, fmt.Errorf("sta: delta analysis requires a baseline result")
	}
	if len(baseline.idx) != p.numNets {
		return nil, fmt.Errorf("sta: baseline indexes %d nets but the compiled handle has %d — it was produced by a different compile", len(baseline.idx), p.numNets)
	}
	if len(delta.Set) == 0 && len(delta.Remove) == 0 {
		return nil, fmt.Errorf("sta: empty delta (no events set or removed)")
	}
	// Pulse filtering is inherited from the baseline like the analysis mode
	// is — a delta re-times the same analysis, it cannot change its
	// semantics. Require the option to agree so a caller who thinks they
	// are toggling the filter gets an error, not a silent mismatch.
	if opt.PulseFiltering != baseline.pulseFiltering {
		if baseline.pulseFiltering {
			return nil, fmt.Errorf("sta: delta options: PulseFiltering is off but the baseline was analyzed with it on (a delta cannot change analysis semantics — run a full analysis instead)")
		}
		return nil, fmt.Errorf("sta: delta options: PulseFiltering is on but the baseline was analyzed without it (a delta cannot change analysis semantics — run a full analysis instead)")
	}
	tr := opt.Trace
	deltaSpan := tr.Begin(0, 0, "sta", "delta").
		Arg("set", len(delta.Set)).Arg("remove", len(delta.Remove))
	if id := tr.ID(); id != "" {
		// Same correlation stamp the full-analysis span carries.
		deltaSpan = deltaSpan.Arg("traceId", id)
	}
	defer deltaSpan.End()

	c := p.c
	mode := baseline.Mode
	res := cloneForDelta(baseline)
	res.Stats.Workers = 1
	res.Stats.Levels = len(p.levelIdx)
	res.Stats.Evaluations = baseline.Stats.Evaluations
	res.Stats.ProximityEvals = baseline.Stats.ProximityEvals
	res.Stats.SingleArcEvals = baseline.Stats.SingleArcEvals
	res.Stats.GatesEvaluated = baseline.Stats.GatesEvaluated
	res.Stats.PulsesFiltered = baseline.Stats.PulsesFiltered
	res.Stats.PulsesDegraded = baseline.Stats.PulsesDegraded
	res.Stats.PulsesUnjudged = baseline.Stats.PulsesUnjudged

	// Apply the edit at the primary inputs: removes first, then sets, each
	// with the same validation the full-analysis seed performs. touched
	// collects the edited net IDs; dirtiness is decided afterwards by
	// comparing the final seed against the baseline, so a Set that lands
	// bit-equal to what the baseline already had (or a Remove+Set that
	// round-trips) propagates nothing.
	touched := make([]int32, 0, len(delta.Set)+len(delta.Remove))
	for i, rm := range delta.Remove {
		if rm.Net == nil || !c.piSet[rm.Net] {
			name := "<nil>"
			if rm.Net != nil {
				name = rm.Net.Name
			}
			return nil, fmt.Errorf("sta: delta removes event on non-primary-input net %s", name)
		}
		if int(rm.Net.id) >= p.numNets {
			return nil, fmt.Errorf("sta: delta removes event on net %s declared after compile", rm.Net.Name)
		}
		for _, prev := range delta.Remove[:i] {
			if prev.Net == rm.Net && prev.Dir == rm.Dir {
				return nil, fmt.Errorf("sta: duplicate delta remove of %v event on %s", rm.Dir, rm.Net.Name)
			}
		}
		slot := res.idx[rm.Net.id]
		if slot == 0 || !res.arr[slot-1].has[rm.Dir] {
			return nil, fmt.Errorf("sta: delta removes absent %v event on primary input %s", rm.Dir, rm.Net.Name)
		}
		da := &res.arr[slot-1]
		da.a[rm.Dir] = Arrival{}
		da.has[rm.Dir] = false
		touched = append(touched, rm.Net.id)
	}
	for i, ev := range delta.Set {
		if ev.Net == nil || !c.piSet[ev.Net] {
			name := "<nil>"
			if ev.Net != nil {
				name = ev.Net.Name
			}
			return nil, fmt.Errorf("sta: delta event on non-primary-input net %s", name)
		}
		if int(ev.Net.id) >= p.numNets {
			return nil, fmt.Errorf("sta: delta event on net %s declared after compile (recompile the circuit)", ev.Net.Name)
		}
		if !(ev.TT > 0) || math.IsInf(ev.TT, 1) {
			return nil, fmt.Errorf("sta: delta event on %s has non-positive or non-finite transition time %v", ev.Net.Name, ev.TT)
		}
		if math.IsNaN(ev.Time) || math.IsInf(ev.Time, 0) {
			return nil, fmt.Errorf("sta: delta event on %s has non-finite time %v", ev.Net.Name, ev.Time)
		}
		for _, prev := range delta.Set[:i] {
			if prev.Net == ev.Net && prev.Dir == ev.Dir {
				return nil, fmt.Errorf("sta: duplicate %v delta event on primary input %s", ev.Dir, ev.Net.Name)
			}
		}
		da := res.slot(ev.Net)
		da.a[ev.Dir] = Arrival{Dir: ev.Dir, Time: ev.Time, TT: ev.TT}
		da.has[ev.Dir] = true
		touched = append(touched, ev.Net.id)
	}

	// The edited vector must still stimulate something, exactly as a full
	// analysis rejects an empty vector. Any successful Set guarantees it;
	// a remove-only delta needs the scan.
	if len(delta.Set) == 0 {
		alive := false
		for _, pi := range c.PIs {
			if int(pi.id) >= len(res.idx) {
				continue
			}
			if da := slotValue(res, pi.id); da.has[0] || da.has[1] {
				alive = true
				break
			}
		}
		if !alive {
			return nil, fmt.Errorf("sta: delta removes every primary-input event (empty stimulus vector)")
		}
	}

	conesStart := time.Now()
	p.ensureConsumers()
	conesWall := time.Since(conesStart)
	res.Stats.Phases.Add(obs.PhaseCones, conesWall)

	s := p.scratch.Get().(*evalScratch)
	defer p.scratch.Put(s)
	defer func() {
		// The enqueued flags must be clean before the scratch returns to the
		// pool on every exit path — sparseSchedule assumes a zeroed inCone.
		for _, gi := range s.marked {
			s.inCone[gi] = false
		}
		s.marked = s.marked[:0]
	}()
	s.marked = s.marked[:0]
	for i := range s.buckets {
		s.buckets[i] = s.buckets[i][:0]
	}

	// enqueue marks every consumer of a changed net for re-evaluation,
	// bucketed by topological level. Consumers always sit at a strictly
	// higher level than their producing gate, so the ascending level walk
	// below never revisits a processed bucket.
	enqueue := func(netID int32) {
		for _, gi := range p.consumers(netID) {
			if !s.inCone[gi] {
				s.inCone[gi] = true
				s.marked = append(s.marked, gi)
				s.buckets[p.gateLevel[gi]] = append(s.buckets[p.gateLevel[gi]], gi)
			}
		}
	}
	for _, id := range touched {
		if slotValue(res, id) != slotValue(baseline, id) {
			enqueue(id)
		}
	}

	// Level-ordered dirty propagation: re-run evalGate on each marked gate
	// against the committed (baseline-plus-updates) arrivals; commit and
	// fan out only when the recomputed output differs from the baseline's,
	// otherwise the wavefront dies right here. Serial — the wavefront is
	// expected to be tiny against the netlist; batch-level parallelism
	// belongs to the caller.
	reevaluated, reevalWithBaseline := 0, 0
	for li := range s.buckets {
		bucket := s.buckets[li]
		if len(bucket) == 0 {
			continue
		}
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("sta: delta analysis interrupted: %w", err)
		}
		// Netlist order within the level: deterministic evaluation order and
		// the same first-error the full walk would report.
		slices.Sort(bucket)
		for _, gi := range bucket {
			g := p.gateList[gi]
			prev := slotValue(res, g.Out.id)
			// prevRaw is the baseline evaluation's pre-filter shape. For an
			// absorbed pair the committed store is empty while the evaluation
			// work happened (and was counted), so the raw pair — kept by
			// applyPulseFilter exactly for this — stands in for prev wherever
			// the walk accounts for work rather than committed influence.
			prevRaw := prev
			if res.pulseFiltering {
				if pi, ok := res.pulses[g.Out.id]; ok && pi.Filtered {
					prevRaw = res.pulseRaw[g.Out.id]
				}
			}
			mult := 1.0
			if opt.Perturb != nil {
				mult = opt.Perturb(gi)
			}
			out := evalGate(g, res, mode, &s.evs, mult)
			if out.err != nil {
				return nil, out.err
			}
			reevaluated++
			if prevRaw.has[0] || prevRaw.has[1] {
				reevalWithBaseline++
			}
			nextRaw := dirArrivals{a: out.a, has: out.has}
			if res.pulseFiltering {
				// Re-judge from a clean slate: withdraw the baseline's
				// verdict (and its counter contribution), then let the filter
				// record the fresh one — an unchanged verdict nets out to
				// zero. This must happen even when the committed arrivals end
				// up bit-equal: a gate with no baseline arrivals (absorbed
				// pair) can still change its verdict, which is why arrival
				// bit-equality alone is not a sound cutoff under filtering.
				res.dropPulse(g.Out.id)
				if out.has[0] && out.has[1] {
					applyPulseFilter(g, &out, res)
				}
			}
			// Evaluation counters diff the RAW shapes — the work performed —
			// not the committed arrivals: a filtered pair clears the latter
			// while the full path still counts the evaluation.
			for d := range nextRaw.a {
				if prevRaw.has[d] {
					res.Stats.Evaluations--
					if prevRaw.a[d].UsedInputs > 1 {
						res.Stats.ProximityEvals--
					} else {
						res.Stats.SingleArcEvals--
					}
				}
				if nextRaw.has[d] {
					res.Stats.Evaluations++
					if nextRaw.a[d].UsedInputs > 1 {
						res.Stats.ProximityEvals++
					} else {
						res.Stats.SingleArcEvals++
					}
				}
			}
			if (prevRaw.has[0] || prevRaw.has[1]) && !(nextRaw.has[0] || nextRaw.has[1]) {
				res.Stats.GatesEvaluated--
			} else if !(prevRaw.has[0] || prevRaw.has[1]) && (nextRaw.has[0] || nextRaw.has[1]) {
				res.Stats.GatesEvaluated++
			}
			next := dirArrivals{a: out.a, has: out.has}
			if next == prev {
				continue // committed influence died out: downstream keeps the baseline
			}
			*res.slot(g.Out) = next
			enqueue(g.Out.id)
		}
	}
	res.Stats.GatesScheduled = reevaluated
	res.Stats.GatesReevaluated = reevaluated
	res.Stats.GatesReused = baseline.Stats.GatesEvaluated - reevalWithBaseline
	res.Stats.Wall = time.Since(wallStart)
	res.Stats.Phases.Add(obs.PhaseDelta, res.Stats.Wall-conesWall)
	return res, nil
}

// AnalyzeDelta is the circuit-level convenience wrapper: it compiles (or
// reuses the memoized handle) and runs the delta against it, attributing
// any compile it performed like AnalyzeOpts does. The baseline must have
// been produced against the circuit's current structure — after a
// structural edit the handle recompiles and the stale baseline is rejected.
func (c *Circuit) AnalyzeDelta(baseline *Result, delta Delta, opt Options) (*Result, error) {
	compileStart := time.Now()
	p, fresh, err := c.compileTimed(opt.Trace)
	if err != nil {
		return nil, err
	}
	compileWall := time.Since(compileStart)
	res, err := p.AnalyzeDelta(context.Background(), baseline, delta, opt)
	if err != nil {
		return nil, err
	}
	res.Stats.Phases.Add(obs.PhaseCompile, compileWall)
	if fresh {
		res.Stats.Phases.Add(obs.PhaseLevelize, p.levelizeWall)
	}
	res.Stats.Wall += compileWall
	return res, nil
}
