//go:build !race

package sta_test

// raceEnabled reports whether the race detector is compiled in. Allocation
// assertions (testing.AllocsPerRun) are skipped under -race: the detector
// instruments allocations and the counts stop meaning anything.
const raceEnabled = false
