package sta

import (
	"math"
	"strings"
	"testing"
)

// FuzzParseNetlist: ParseNetlist must never panic on arbitrary text, and
// any netlist it accepts must survive serialize → reparse → serialize as a
// fixed point — WriteNetlist's output parses back to a circuit that
// serializes identically, with the same structure counts.
func FuzzParseNetlist(f *testing.F) {
	seeds := []string{
		"input a b\ngate g1 nand2 x a b\noutput x\n",
		"# comment\ninput a\ngate g1 inv y a\ngate g2 inv z y\noutput z\n",
		"input a b c\ngate g1 nand3 x a b c\noutput x x\n",
		"input a\ngate g1 inv y a\n",
		"gate g1 inv y a\n",
		"input a\ngate g1 nand2 y a a\noutput y\n",
		"output q\n",
		"input a\ngate g1 frob y a\n",
		"input\n",
		"bogus directive\n",
		"input a # trailing comment\ngate g1 inv b a # more\noutput b",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	lib := SynthLibrary(3)
	f.Fuzz(func(t *testing.T, text string) {
		if len(text) > 1<<16 {
			return
		}
		c, err := ParseNetlist(strings.NewReader(text), lib)
		if err != nil {
			return
		}
		var first strings.Builder
		if err := WriteNetlist(&first, c); err != nil {
			t.Fatalf("serialize accepted netlist: %v", err)
		}
		c2, err := ParseNetlist(strings.NewReader(first.String()), lib)
		if err != nil {
			t.Fatalf("reparse of serialized netlist failed: %v\n%s", err, first.String())
		}
		if len(c2.Gates) != len(c.Gates) || len(c2.PIs) != len(c.PIs) || len(c2.POs) != len(c.POs) {
			t.Fatalf("round trip changed structure: %d/%d/%d gates/PIs/POs -> %d/%d/%d",
				len(c.Gates), len(c.PIs), len(c.POs), len(c2.Gates), len(c2.PIs), len(c2.POs))
		}
		var second strings.Builder
		if err := WriteNetlist(&second, c2); err != nil {
			t.Fatal(err)
		}
		if first.String() != second.String() {
			t.Fatalf("serialization not a fixed point:\n-- first --\n%s-- second --\n%s",
				first.String(), second.String())
		}
	})
}

// FuzzParseEvents: ParseEvents must never panic, and every event list it
// accepts must be non-empty with resolved nets, strictly positive finite
// transition times, and finite arrival times — the properties the engine's
// own validation depends on (the NaN-through-"tt <= 0" bug class).
func FuzzParseEvents(f *testing.F) {
	seeds := []string{
		"a:rise:300:0",
		"a:r:300:12.5,b:f:200:0",
		"a:rise:NaN:0",
		"a:rise:Inf:0",
		"a:rise:-Inf:0",
		"a:rise:300:NaN",
		"a:rise:300:Inf",
		"a:rise:-5:0",
		"a:rise:0:0",
		"a:fall:1e3:-2.5",
		" , ,a:rise:300:0, ",
		"nope:rise:300:0",
		"a:sideways:300:0",
		"a:rise:300",
		"",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	lib := SynthLibrary(2)
	c, err := ParseNetlist(strings.NewReader(
		"input a b\ngate g1 nand2 x a b\ngate g2 inv y x\noutput y\n"), lib)
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		if len(spec) > 1<<12 {
			return
		}
		evs, err := ParseEvents(c, spec)
		if err != nil {
			return
		}
		if len(evs) == 0 {
			t.Fatalf("ParseEvents accepted %q with zero events", spec)
		}
		for _, ev := range evs {
			if ev.Net == nil {
				t.Fatalf("accepted event with nil net in %q", spec)
			}
			if !(ev.TT > 0) || math.IsInf(ev.TT, 0) {
				t.Fatalf("accepted non-positive or non-finite TT %v in %q", ev.TT, spec)
			}
			if math.IsNaN(ev.Time) || math.IsInf(ev.Time, 0) {
				t.Fatalf("accepted non-finite time %v in %q", ev.Time, spec)
			}
		}
	})
}
