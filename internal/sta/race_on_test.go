//go:build race

package sta_test

// raceEnabled reports whether the race detector is compiled in. See
// race_off_test.go.
const raceEnabled = true
