package sta_test

import (
	"context"
	"encoding/json"
	"os"
	"testing"
	"time"

	"repro/internal/sta"
)

// perturbOne returns the baseline vector with event i%len shifted by a few
// picoseconds — the single-PI re-timing query ECO sweeps are made of.
func perturbOne(evs []sta.PIEvent, i int) ([]sta.PIEvent, sta.PIEvent) {
	k := i % len(evs)
	ev := evs[k]
	ev.Time += float64(i%7+1) * 1e-12
	out := append([]sta.PIEvent(nil), evs...)
	out[k] = ev
	return out, ev
}

// BenchmarkDelta measures single-PI perturbation re-timing on the tiled
// netlist two ways: a full cone-pruned sparse re-analysis of the edited
// vector, and AnalyzeDelta against the kept baseline. The stimulus covers
// every PI, so sparse scheduling alone cannot prune — the delta path wins by
// propagating only the arrivals the nudge actually moves.
func BenchmarkDelta(b *testing.B) {
	c := getTiledBench(b)
	p, err := c.Compile()
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	opt := sta.Options{Workers: 1}
	evs := sta.SynthEvents(c, 0)
	baseline, err := p.Analyze(ctx, evs, sta.Proximity, opt)
	if err != nil {
		b.Fatal(err)
	}

	b.Run("full-sparse", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			edited, _ := perturbOne(evs, i)
			if _, err := p.Analyze(ctx, edited, sta.Proximity, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("delta", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, ev := perturbOne(evs, i)
			if _, err := p.AnalyzeDelta(ctx, baseline, sta.Delta{Set: []sta.PIEvent{ev}}, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// deltaBenchResult is the BENCH_delta.json schema — the before/after record
// for delta re-analysis. "Before" is a full sparse analysis of the edited
// vector on the same engine build, so the comparison isolates the delta
// propagation against the best full path the engine has.
type deltaBenchResult struct {
	Timestamp    string `json:"timestamp"`
	NetlistGates int    `json:"netlistGates"`
	NetlistPIs   int    `json:"netlistPIs"`
	Tiles        int    `json:"tiles"`

	FullSparseSecPerQuery float64 `json:"fullSparseSecPerQuery"`
	DeltaSecPerQuery      float64 `json:"deltaSecPerQuery"`
	Speedup               float64 `json:"speedup"`

	// One sample query's reuse accounting, to show how little of the
	// baseline a single-PI nudge actually disturbs.
	SampleGatesReevaluated int `json:"sampleGatesReevaluated"`
	SampleGatesReused      int `json:"sampleGatesReused"`
}

// TestWriteDeltaBench regenerates BENCH_delta.json when BENCH_DELTA_OUT
// names the output path (it is skipped in normal test runs):
//
//	BENCH_DELTA_OUT=$(pwd)/BENCH_delta.json go test -run TestWriteDeltaBench ./internal/sta/
//
// The acceptance bar it documents: ≥5x over full sparse re-analysis on
// single-PI perturbations of the tiled workload.
func TestWriteDeltaBench(t *testing.T) {
	out := os.Getenv("BENCH_DELTA_OUT")
	if out == "" {
		t.Skip("set BENCH_DELTA_OUT to regenerate BENCH_delta.json")
	}
	c := getTiledBench(t)
	p, err := c.Compile()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	opt := sta.Options{Workers: 1}
	evs := sta.SynthEvents(c, 0)
	baseline, err := p.Analyze(ctx, evs, sta.Proximity, opt)
	if err != nil {
		t.Fatal(err)
	}

	fullSec := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			edited, _ := perturbOne(evs, i)
			if _, err := p.Analyze(ctx, edited, sta.Proximity, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
	deltaSec := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, ev := perturbOne(evs, i)
			if _, err := p.AnalyzeDelta(ctx, baseline, sta.Delta{Set: []sta.PIEvent{ev}}, opt); err != nil {
				b.Fatal(err)
			}
		}
	})

	_, sampleEv := perturbOne(evs, 0)
	sample, err := p.AnalyzeDelta(ctx, baseline, sta.Delta{Set: []sta.PIEvent{sampleEv}}, opt)
	if err != nil {
		t.Fatal(err)
	}

	res := deltaBenchResult{
		Timestamp:    time.Now().UTC().Format(time.RFC3339),
		NetlistGates: benchTiles * benchGatesPerTile,
		NetlistPIs:   benchTiles * benchPIsPerTile,
		Tiles:        benchTiles,

		FullSparseSecPerQuery:  fullSec.T.Seconds() / float64(fullSec.N),
		DeltaSecPerQuery:       deltaSec.T.Seconds() / float64(deltaSec.N),
		SampleGatesReevaluated: sample.Stats.GatesReevaluated,
		SampleGatesReused:      sample.Stats.GatesReused,
	}
	res.Speedup = res.FullSparseSecPerQuery / res.DeltaSecPerQuery

	if res.Speedup < 5 {
		t.Errorf("delta speedup %.2fx over full sparse, acceptance bar is 5x", res.Speedup)
	}

	data, err := json.MarshalIndent(res, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("delta %.2fx (%.3fms -> %.3fms per query, %d/%d gates re-evaluated); wrote %s",
		res.Speedup, res.FullSparseSecPerQuery*1e3, res.DeltaSecPerQuery*1e3,
		res.SampleGatesReevaluated, res.SampleGatesReevaluated+res.SampleGatesReused, out)
}
