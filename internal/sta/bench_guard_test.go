package sta_test

import (
	"encoding/json"
	"os"
	"strconv"
	"testing"

	"repro/internal/sta"
)

// TestBenchGuardSparse compares today's sparse batch performance (tracing
// disabled — the always-on phase timers are part of the product) against
// the recorded BENCH_sparse.json baseline. Gated behind BENCH_GUARD=1 so
// ordinary test runs stay fast and timing-noise-free.
//
// The enforced number is the partial-stimulus dense/sparse *speedup*: both
// sides are measured in the same process seconds apart, so machine-wide
// slowdowns (shared CI runners, background load, frequency scaling) cancel
// out, unlike the absolute sec/vector — which is still measured and logged
// against the baseline for the record. The speedup must stay within
// BENCH_GUARD_MARGIN (default 1.25x slack; local acceptance runs use a
// tighter one):
//
//	BENCH_GUARD=1 BENCH_GUARD_MARGIN=1.05 go test -run TestBenchGuardSparse ./internal/sta/
func TestBenchGuardSparse(t *testing.T) {
	if os.Getenv("BENCH_GUARD") == "" {
		t.Skip("set BENCH_GUARD=1 to compare against BENCH_sparse.json")
	}
	margin := 1.25
	if s := os.Getenv("BENCH_GUARD_MARGIN"); s != "" {
		m, err := strconv.ParseFloat(s, 64)
		if err != nil {
			t.Fatalf("bad BENCH_GUARD_MARGIN %q: %v", s, err)
		}
		margin = m
	}
	data, err := os.ReadFile("../../BENCH_sparse.json")
	if err != nil {
		t.Fatalf("no baseline: %v", err)
	}
	var base struct {
		PartialSparseSecPerV float64 `json:"partialSparseSecPerVector"`
		PartialSpeedup       float64 `json:"partialSpeedup"`
	}
	if err := json.Unmarshal(data, &base); err != nil {
		t.Fatal(err)
	}
	if base.PartialSparseSecPerV <= 0 || base.PartialSpeedup <= 0 {
		t.Fatalf("baseline incomplete: %+v", base)
	}

	c := getTiledBench(t)
	partial := tiledBatch(t, c, 32)
	secPerVector := func(dense bool) float64 {
		opt := sta.Options{Workers: 1, Dense: dense}
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := c.AnalyzeBatch(partial, sta.Proximity, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
		return r.T.Seconds() / float64(r.N) / float64(len(partial))
	}
	denseSec := secPerVector(true)
	sparseSec := secPerVector(false)
	speedup := denseSec / sparseSec

	t.Logf("sparse %.3gs/vector (baseline %.3gs, abs ratio %.2f); speedup %.2fx (baseline %.2fx)",
		sparseSec, base.PartialSparseSecPerV, sparseSec/base.PartialSparseSecPerV,
		speedup, base.PartialSpeedup)
	if speedup*margin < base.PartialSpeedup {
		t.Errorf("sparse speedup fell to %.2fx from the recorded %.2fx (margin %.2f) — scheduling overhead crept into the hot path",
			speedup, base.PartialSpeedup, margin)
	}
}
