package sta_test

import (
	"context"
	"math"
	"strings"
	"testing"

	"repro/internal/sta"
)

func mcTestCircuit(t testing.TB) (*sta.Circuit, []sta.PIEvent) {
	t.Helper()
	c, err := sta.SynthRandom(12, 80, 41)
	if err != nil {
		t.Fatal(err)
	}
	return c, sta.SynthEvents(c, 7)
}

// A sigma-0 Monte-Carlo run takes the unperturbed arithmetic path, so every
// sample — and therefore every aggregate — must be bit-identical to the
// deterministic analysis. (The full 120-config sweep lives in the difftest
// oracle; this is the fast in-package check.)
func TestMCSigmaZeroMatchesAnalyze(t *testing.T) {
	c, evs := mcTestCircuit(t)
	for _, mode := range []sta.Mode{sta.Proximity, sta.Conventional} {
		ref, err := c.Analyze(evs, mode)
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.AnalyzeMC(evs, mode, sta.MCOptions{Samples: 3, Sigma: 0})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Outputs) == 0 {
			t.Fatalf("%v: no output distributions", mode)
		}
		for _, od := range res.Outputs {
			a, ok := ref.Arrival(od.Net, od.Dir)
			if !ok {
				t.Fatalf("%v: MC reports %s %v but deterministic analysis has no arrival", mode, od.Net.Name, od.Dir)
			}
			// Min/Max/percentiles are order statistics of the (identical)
			// samples, so they are bit-exact; the mean is sum/n and may sit
			// one ULP off the sample value.
			if od.Dist.N != 3 || od.Dist.Min != a.Time || od.Dist.Max != a.Time ||
				od.Dist.P50 != a.Time || od.Dist.P99 != a.Time {
				t.Fatalf("%v %s %v: sigma-0 dist %+v != deterministic arrival %v",
					mode, od.Net.Name, od.Dir, od.Dist, a.Time)
			}
			if math.Abs(od.Dist.Mean-a.Time) > 1e-12*math.Abs(a.Time) || od.Dist.Std > 1e-12*math.Abs(a.Time) {
				t.Fatalf("%v %s %v: sigma-0 mean/std %v/%v drifted from %v",
					mode, od.Net.Name, od.Dir, od.Dist.Mean, od.Dist.Std, a.Time)
			}
		}
		if len(res.Criticality) == 0 {
			t.Fatalf("%v: no criticality entries", mode)
		}
		// Every sample has the same critical path, so counts are all-or-nothing.
		for _, gc := range res.Criticality {
			if gc.Count != res.Samples || gc.Probability != 1 {
				t.Fatalf("%v: sigma-0 criticality %s count=%d p=%v, want %d/1",
					mode, gc.Gate.Name, gc.Count, gc.Probability, res.Samples)
			}
		}
	}
}

// Same seed + samples must produce bit-identical aggregates regardless of
// the worker count: deviates are pure functions of (seed, sample, gate) and
// aggregation runs in sample order after the barrier.
func TestMCWorkerCountInvariance(t *testing.T) {
	c, evs := mcTestCircuit(t)
	base := sta.MCOptions{Samples: 24, Seed: 99, Sigma: 0.04}
	base.Workers = 1
	ref, err := c.AnalyzeMC(evs, sta.Proximity, base)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 7} {
		opt := base
		opt.Workers = workers
		got, err := c.AnalyzeMC(evs, sta.Proximity, opt)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Outputs) != len(ref.Outputs) {
			t.Fatalf("workers=%d: %d outputs, want %d", workers, len(got.Outputs), len(ref.Outputs))
		}
		for i, od := range got.Outputs {
			rd := ref.Outputs[i]
			if od.Net != rd.Net || od.Dir != rd.Dir ||
				od.Dist.Mean != rd.Dist.Mean || od.Dist.Std != rd.Dist.Std ||
				od.Dist.P50 != rd.Dist.P50 || od.Dist.P95 != rd.Dist.P95 ||
				od.Dist.P99 != rd.Dist.P99 || od.Dist.Max != rd.Dist.Max {
				t.Fatalf("workers=%d: output %d differs: %+v vs %+v", workers, i, od.Dist, rd.Dist)
			}
		}
		if len(got.Criticality) != len(ref.Criticality) {
			t.Fatalf("workers=%d: criticality length %d vs %d", workers, len(got.Criticality), len(ref.Criticality))
		}
		for i, gc := range got.Criticality {
			if gc.Gate != ref.Criticality[i].Gate || gc.Count != ref.Criticality[i].Count {
				t.Fatalf("workers=%d: criticality %d differs", workers, i)
			}
		}
	}
}

// Nonzero sigma must actually spread the distribution (non-vacuity: the
// perturbation hook is wired through) and different seeds must draw
// different deviates.
func TestMCSigmaSpreads(t *testing.T) {
	c, evs := mcTestCircuit(t)
	a, err := c.AnalyzeMC(evs, sta.Proximity, sta.MCOptions{Samples: 32, Seed: 1, Sigma: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	spread := false
	for _, od := range a.Outputs {
		if od.Dist.Std > 0 {
			spread = true
		}
		if !(od.Dist.Min <= od.Dist.P50 && od.Dist.P50 <= od.Dist.P95 &&
			od.Dist.P95 <= od.Dist.P99 && od.Dist.P99 <= od.Dist.Max) {
			t.Fatalf("percentiles out of order for %s %v: %+v", od.Net.Name, od.Dir, od.Dist)
		}
	}
	if !spread {
		t.Fatal("sigma 0.05 produced zero spread on every output — perturbation not applied")
	}
	b, err := c.AnalyzeMC(evs, sta.Proximity, sta.MCOptions{Samples: 32, Seed: 2, Sigma: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Outputs {
		if a.Outputs[i].Dist.Mean != b.Outputs[i].Dist.Mean {
			same = false
		}
	}
	if same {
		t.Fatal("seeds 1 and 2 produced identical means — seed not wired into the deviates")
	}
}

// Corner presets run as degenerate deterministic analyses: typ is
// bit-identical to Analyze, slow arrives later than fast.
func TestMCCorners(t *testing.T) {
	c, evs := mcTestCircuit(t)
	res, err := c.AnalyzeMC(evs, sta.Proximity, sta.MCOptions{
		Samples: 1, Sigma: 0, Corners: []string{"slow", "typ", "fast"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Corners) != 3 {
		t.Fatalf("got %d corner runs", len(res.Corners))
	}
	ref, err := c.Analyze(evs, sta.Proximity)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]*sta.Result{}
	for _, cr := range res.Corners {
		byName[cr.Name] = cr.Result
	}
	slower, strict := 0, 0
	for _, po := range c.POs {
		if typ, ok := byName["typ"].Latest(po); ok {
			refA, _ := ref.Latest(po)
			if typ.Time != refA.Time || typ.TT != refA.TT {
				t.Fatalf("typ corner differs from deterministic analysis on %s", po.Name)
			}
		}
		sl, okS := byName["slow"].Latest(po)
		fa, okF := byName["fast"].Latest(po)
		if okS && okF {
			slower++
			if sl.Time > fa.Time {
				strict++
			}
		}
	}
	if slower == 0 || strict == 0 {
		t.Fatalf("corner ordering never observed (outputs=%d, slow>fast on %d)", slower, strict)
	}
}

// Validation errors must name the offending field — the boundary-contract
// convention, table-driven over the Go API (NaN cannot transit JSON, so the
// HTTP table covers the rest).
func TestMCValidation(t *testing.T) {
	c, evs := mcTestCircuit(t)
	cases := []struct {
		name  string
		opt   sta.MCOptions
		field string
	}{
		{"zero samples", sta.MCOptions{Samples: 0, Sigma: 0.1}, "samples"},
		{"negative samples", sta.MCOptions{Samples: -5, Sigma: 0.1}, "samples"},
		{"negative sigma", sta.MCOptions{Samples: 4, Sigma: -0.1}, "sigma"},
		{"NaN sigma", sta.MCOptions{Samples: 4, Sigma: math.NaN()}, "sigma"},
		{"Inf sigma", sta.MCOptions{Samples: 4, Sigma: math.Inf(1)}, "sigma"},
		{"unknown corner", sta.MCOptions{Samples: 4, Sigma: 0.1, Corners: []string{"ss"}}, "corner"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := c.AnalyzeMC(evs, sta.Proximity, tc.opt)
			if err == nil {
				t.Fatalf("want error naming %q, got nil", tc.field)
			}
			if !strings.Contains(err.Error(), tc.field) {
				t.Fatalf("error %q does not name field %q", err, tc.field)
			}
		})
	}
	bad := sta.MCOptions{Samples: 4, Sigma: 0.1}
	bad.Perturb = func(int32) float64 { return 2 }
	if _, err := c.AnalyzeMC(evs, sta.Proximity, bad); err == nil || !strings.Contains(err.Error(), "Perturb") {
		t.Fatalf("caller-supplied Perturb should be rejected, got %v", err)
	}
}

// Cancellation aborts the sample loop with the context error.
func TestMCContextCancel(t *testing.T) {
	c, evs := mcTestCircuit(t)
	p, err := c.Compile()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.AnalyzeMC(ctx, evs, sta.Proximity, sta.MCOptions{Samples: 64, Sigma: 0.05}); err == nil {
		t.Fatal("pre-canceled context should abort the MC run")
	}
}

// The MC phase timer lands in the result and respects Sum() <= Wall.
func TestMCPhaseAccounting(t *testing.T) {
	c, evs := mcTestCircuit(t)
	res, err := c.AnalyzeMC(evs, sta.Proximity, sta.MCOptions{Samples: 8, Sigma: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Phases.Sum() > res.Stats.Wall {
		t.Fatalf("phase sum %v exceeds wall %v", res.Stats.Phases.Sum(), res.Stats.Wall)
	}
	if res.Stats.GatesEvaluated == 0 {
		t.Fatal("no gates evaluated recorded")
	}
}
