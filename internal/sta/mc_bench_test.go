package sta

// Monte-Carlo benchmark: the subsystem's reason to exist is amortization —
// one compile + cone schedule reused across thousands of samples. The
// recorded number is the ratio between the naive statistical loop (fresh
// compile + analyze per sample, what a caller without AnalyzeMC would
// write) and AnalyzeMC's per-sample cost at 1024 samples, both serial so
// the ratio isolates amortization from parallelism. This file lives in
// package sta (not sta_test) because the naive side needs compileFull to
// defeat the circuit-level compile memoization.

import (
	"context"
	"encoding/json"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"
)

const (
	mcBenchTiles        = 240
	mcBenchPIsPerTile   = 8
	mcBenchGatesPerTile = 50
	mcBenchSamples      = 1024
	mcBenchSigma        = 0.03
)

var (
	mcBenchOnce sync.Once
	mcBenchC    *Circuit
	mcBenchErr  error
)

// getMCBench returns the shared tiled netlist with a tile-local stimulus:
// the shape statistical sweeps run in practice — a partial vector whose
// cone is small while the compile cost spans the whole netlist.
func getMCBench(tb testing.TB) (*Circuit, []PIEvent) {
	tb.Helper()
	mcBenchOnce.Do(func() {
		mcBenchC, mcBenchErr = SynthTiled(mcBenchTiles, mcBenchPIsPerTile, mcBenchGatesPerTile, 17)
	})
	if mcBenchErr != nil {
		tb.Fatal(mcBenchErr)
	}
	return mcBenchC, SynthEventsFor(TilePIs(mcBenchC, 0), 1)
}

// freshCompileAnalyze is the naive statistical sample: levelize + cone-build
// from scratch, then analyze once — the cost AnalyzeMC amortizes away.
func freshCompileAnalyze(ctx context.Context, c *Circuit, evs []PIEvent) error {
	p, err := c.compileFull(nil)
	if err != nil {
		return err
	}
	_, err = p.Analyze(ctx, evs, Proximity, Options{Workers: 1})
	return err
}

func BenchmarkMC(b *testing.B) {
	c, evs := getMCBench(b)
	p, err := c.Compile()
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()

	b.Run("amortized-1024", func(b *testing.B) {
		opt := MCOptions{Samples: mcBenchSamples, Seed: 5, Sigma: mcBenchSigma}
		opt.Workers = 1
		for i := 0; i < b.N; i++ {
			if _, err := p.AnalyzeMC(ctx, evs, Proximity, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("fresh-compile-per-sample", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := freshCompileAnalyze(ctx, c, evs); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// mcBenchResult is the BENCH_mc.json schema.
type mcBenchResult struct {
	Timestamp    string  `json:"timestamp"`
	NetlistGates int     `json:"netlistGates"`
	NetlistPIs   int     `json:"netlistPIs"`
	Samples      int     `json:"samples"`
	Sigma        float64 `json:"sigma"`

	// PlainAnalyzeSecPerVector is a deterministic serial analyze on the
	// reused compile — the floor a perturbed sample is measured against.
	PlainAnalyzeSecPerVector float64 `json:"plainAnalyzeSecPerVector"`
	// MCSecPerSample is AnalyzeMC's serial per-sample cost at 1024 samples.
	MCSecPerSample float64 `json:"mcSecPerSample"`
	// PerSampleOverhead = MCSecPerSample / PlainAnalyzeSecPerVector: what a
	// perturbed, aggregated, criticality-traced sample costs relative to a
	// plain analyze of the same vector.
	PerSampleOverhead float64 `json:"perSampleOverhead"`
	// FreshCompileSecPerSample is the naive loop's per-sample cost.
	FreshCompileSecPerSample float64 `json:"freshCompileSecPerSample"`
	// Amortization = FreshCompileSecPerSample / MCSecPerSample (serial both
	// sides; the acceptance bar is 20x).
	Amortization float64 `json:"amortization"`
	// ParallelSamplesPerSec is the throughput with the default worker pool.
	ParallelSamplesPerSec float64 `json:"parallelSamplesPerSec"`
}

// TestWriteMCBench regenerates BENCH_mc.json when BENCH_MC_OUT names the
// output path (skipped in normal test runs):
//
//	BENCH_MC_OUT=$(pwd)/BENCH_mc.json go test -run TestWriteMCBench ./internal/sta/
//
// Acceptance bar: AnalyzeMC at 1024 samples amortizes the compile+schedule
// cost at least 20x over running a fresh-compile analyze per sample.
func TestWriteMCBench(t *testing.T) {
	out := os.Getenv("BENCH_MC_OUT")
	if out == "" {
		t.Skip("set BENCH_MC_OUT to regenerate BENCH_mc.json")
	}
	c, evs := getMCBench(t)
	p, err := c.Compile()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	plain := testing.Benchmark(func(b *testing.B) {
		opt := Options{Workers: 1}
		for i := 0; i < b.N; i++ {
			if _, err := p.Analyze(ctx, evs, Proximity, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
	serialMC := testing.Benchmark(func(b *testing.B) {
		opt := MCOptions{Samples: mcBenchSamples, Seed: 5, Sigma: mcBenchSigma}
		opt.Workers = 1
		for i := 0; i < b.N; i++ {
			if _, err := p.AnalyzeMC(ctx, evs, Proximity, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
	naive := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := freshCompileAnalyze(ctx, c, evs); err != nil {
				b.Fatal(err)
			}
		}
	})
	parallelMC := testing.Benchmark(func(b *testing.B) {
		opt := MCOptions{Samples: mcBenchSamples, Seed: 5, Sigma: mcBenchSigma}
		for i := 0; i < b.N; i++ {
			if _, err := p.AnalyzeMC(ctx, evs, Proximity, opt); err != nil {
				b.Fatal(err)
			}
		}
	})

	res := mcBenchResult{
		Timestamp:    time.Now().UTC().Format(time.RFC3339),
		NetlistGates: mcBenchTiles * mcBenchGatesPerTile,
		NetlistPIs:   mcBenchTiles * mcBenchPIsPerTile,
		Samples:      mcBenchSamples,
		Sigma:        mcBenchSigma,

		PlainAnalyzeSecPerVector: plain.T.Seconds() / float64(plain.N),
		MCSecPerSample:           serialMC.T.Seconds() / float64(serialMC.N) / mcBenchSamples,
		FreshCompileSecPerSample: naive.T.Seconds() / float64(naive.N),
		ParallelSamplesPerSec:    float64(parallelMC.N) * mcBenchSamples / parallelMC.T.Seconds(),
	}
	res.PerSampleOverhead = res.MCSecPerSample / res.PlainAnalyzeSecPerVector
	res.Amortization = res.FreshCompileSecPerSample / res.MCSecPerSample

	if res.Amortization < 20 {
		t.Errorf("MC amortization %.1fx over fresh-compile-per-sample, acceptance bar is 20x", res.Amortization)
	}

	data, err := json.MarshalIndent(res, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("mc %.1fx amortization (%.3gs naive vs %.3gs/sample), %.2fx per-sample overhead, %.0f samples/s parallel; wrote %s",
		res.Amortization, res.FreshCompileSecPerSample, res.MCSecPerSample,
		res.PerSampleOverhead, res.ParallelSamplesPerSec, out)
}

// TestBenchGuardMC compares today's MC amortization ratio against the
// recorded BENCH_mc.json, gated behind BENCH_GUARD=1 like the sparse guard.
// Both sides of the ratio are measured seconds apart in one process, so
// machine-wide slowdowns cancel; margin via BENCH_GUARD_MARGIN (default
// 1.25x).
func TestBenchGuardMC(t *testing.T) {
	if os.Getenv("BENCH_GUARD") == "" {
		t.Skip("set BENCH_GUARD=1 to compare against BENCH_mc.json")
	}
	margin := 1.25
	if s := os.Getenv("BENCH_GUARD_MARGIN"); s != "" {
		m, err := strconv.ParseFloat(s, 64)
		if err != nil {
			t.Fatalf("bad BENCH_GUARD_MARGIN %q: %v", s, err)
		}
		margin = m
	}
	data, err := os.ReadFile("../../BENCH_mc.json")
	if err != nil {
		t.Fatalf("no baseline: %v", err)
	}
	var base mcBenchResult
	if err := json.Unmarshal(data, &base); err != nil {
		t.Fatal(err)
	}
	if base.Amortization <= 0 {
		t.Fatalf("baseline incomplete: %+v", base)
	}

	c, evs := getMCBench(t)
	p, err := c.Compile()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	serialMC := testing.Benchmark(func(b *testing.B) {
		opt := MCOptions{Samples: mcBenchSamples, Seed: 5, Sigma: mcBenchSigma}
		opt.Workers = 1
		for i := 0; i < b.N; i++ {
			if _, err := p.AnalyzeMC(ctx, evs, Proximity, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
	naive := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := freshCompileAnalyze(ctx, c, evs); err != nil {
				b.Fatal(err)
			}
		}
	})
	perSample := serialMC.T.Seconds() / float64(serialMC.N) / mcBenchSamples
	amort := (naive.T.Seconds() / float64(naive.N)) / perSample
	t.Logf("mc amortization %.1fx (baseline %.1fx)", amort, base.Amortization)
	if amort*margin < base.Amortization {
		t.Errorf("MC amortization fell to %.1fx from the recorded %.1fx (margin %.2f) — per-sample overhead crept in",
			amort, base.Amortization, margin)
	}
}
