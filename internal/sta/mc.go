package sta

// Monte-Carlo statistical timing analysis under process variation. One
// compile and one cone schedule are reused across all samples; each sample
// re-times the same stimulus with per-gate delay multipliers drawn from the
// deterministic counter PRNG in internal/mc, so sample k of a run is a pure
// function of (seed, k) — independently reproducible without re-running the
// first k-1 samples, and identical no matter how many workers the loop
// spreads across. Per-output arrival times aggregate into
// mean/std/percentile distributions, and each sample's critical path votes
// into a per-gate criticality report (the probability a gate lies on the
// sample-worst path — the yield-analysis query proximity-aware STA exists
// to answer, since variation reorders input dominance).

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/mc"
	"repro/internal/obs"
	"repro/internal/waveform"
)

// MCOptions configures one Monte-Carlo analysis.
type MCOptions struct {
	// Samples is the number of Monte-Carlo samples to run (must be > 0).
	Samples int
	// Seed selects the deterministic deviate stream. The same
	// (Seed, Samples, Sigma) triple reproduces the run bit-for-bit.
	Seed uint64
	// Sigma is the per-gate delay-multiplier standard deviation (gate delay
	// scales by 1 + Sigma*N, N standard normal; must be finite and >= 0).
	// Sigma 0 makes every sample bit-identical to a deterministic Analyze.
	Sigma float64
	// Corners names preset global corners (see mc.CornerNames) to evaluate
	// alongside the samples, each a single deterministic analysis with one
	// constant multiplier for every gate.
	Corners []string
	// Bins sets the per-output histogram resolution (<= 0 picks 16).
	Bins int
	// Options carries the execution knobs (Workers bounds the sample-level
	// parallelism; Dense disables cone pruning inside each sample;
	// PulseFiltering makes every sample judge its own runt-pulse
	// separations, feeding MCResult.GlitchCriticality). Perturb must be
	// nil — AnalyzeMC owns the perturbation hook.
	Options
}

// OutputDist is one primary output's arrival-time distribution over the
// samples, per transition direction.
type OutputDist struct {
	Net  *Net
	Dir  waveform.Direction
	Dist mc.Dist
}

// GateCriticality reports how often a gate sat on the sample-critical path
// (the traced path to the latest primary-output arrival of that sample).
type GateCriticality struct {
	Gate        *Gate
	Count       int
	Probability float64 // Count / Samples
}

// GateGlitchCriticality reports how often pulse filtering judged a gate's
// opposite-edge output pair across the samples: the probability the pair
// was absorbed outright and the probability it survived with a degraded
// leading edge. Variation moves the pair's separation across the inertial
// boundary, so these probabilities are the glitch risk a single
// deterministic filtered analysis cannot see.
type GateGlitchCriticality struct {
	Gate      *Gate
	Absorbed  int     // samples whose verdict absorbed the pair
	Degraded  int     // samples whose pair survived degraded
	PAbsorbed float64 // Absorbed / Samples
	PDegraded float64 // Degraded / Samples
}

// CornerResult is one named corner's deterministic analysis.
type CornerResult struct {
	Name       string
	Multiplier float64
	Result     *Result
}

// MCResult is the aggregate of a Monte-Carlo analysis. It deliberately does
// not retain the per-sample Results — a million-sample run distills into
// per-output distributions and the criticality vote, O(outputs + gates).
type MCResult struct {
	Mode    Mode
	Samples int
	Seed    uint64
	Sigma   float64
	// Outputs lists each primary output direction that transitioned in at
	// least one sample, in primary-output declaration order (rising before
	// falling per net).
	Outputs []OutputDist
	// Criticality lists every gate that appeared on at least one sample's
	// critical path, most critical first (ties broken by netlist order).
	Criticality []GateCriticality
	// GlitchCriticality lists every gate whose output pair pulse filtering
	// judged (absorbed or degraded) in at least one sample, most judged
	// first (ties broken by netlist order). Empty unless
	// Options.PulseFiltering was on.
	GlitchCriticality []GateGlitchCriticality
	// Corners holds the requested corner runs, in request order.
	Corners []CornerResult
	// Stats aggregates over all samples: the evaluation counters are sums,
	// Wall is the whole MC call, and Phases charges the sample loop plus
	// aggregation to obs.PhaseMC (sample-interior phases are not broken
	// out — they are interior to the MC bucket).
	Stats Stats
}

// mcOutputs returns the primary outputs that can transition under this
// stimulus, in declaration order. Events propagate only through the
// stimulated PIs' fanout cones, and perturbation scales delays without ever
// adding gates to the schedule — so a PO outside every stimulated cone is a
// guaranteed-NaN column in every sample, and aggregating it would make the
// per-sample cost scale with the netlist's PO count instead of the cone's.
// Dense mode (which deliberately sheds the cone tables) and stimuli naming
// post-compile PIs fall back to every compile-known PO.
func (p *Compiled) mcOutputs(events []PIEvent, dense bool) []*Net {
	all := func() []*Net {
		pos := make([]*Net, 0, len(p.c.POs))
		for _, po := range p.c.POs {
			if int(po.id) < p.numNets {
				pos = append(pos, po)
			}
		}
		return pos
	}
	if dense {
		return all()
	}
	reach := make(map[*Net]bool)
	for _, ev := range events {
		gates, ok := p.Cone(ev.Net)
		if !ok {
			return all()
		}
		reach[ev.Net] = true
		for _, gi := range gates {
			reach[p.gateList[gi].Out] = true
		}
	}
	pos := make([]*Net, 0, 16)
	for _, po := range p.c.POs {
		if int(po.id) < p.numNets && reach[po] {
			pos = append(pos, po)
		}
	}
	return pos
}

// AnalyzeMC runs a Monte-Carlo analysis of one stimulus vector over the
// precompiled schedule. Samples run in parallel across the worker budget;
// results are bit-identical at every worker count (aggregation happens in
// sample order after the barrier, and every deviate is a pure function of
// (seed, sample, gate)). The context is polled inside every sample at level
// boundaries and between samples.
func (p *Compiled) AnalyzeMC(ctx context.Context, events []PIEvent, mode Mode, opt MCOptions) (*MCResult, error) {
	wallStart := time.Now()
	if err := mc.ValidateSpec(opt.Samples, opt.Sigma); err != nil {
		return nil, fmt.Errorf("sta: %w", err)
	}
	if opt.Perturb != nil {
		return nil, fmt.Errorf("sta: mc options: Perturb must be nil (AnalyzeMC owns the perturbation hook)")
	}
	// Resolve corner names before spending any sample work.
	cornerMults := make([]float64, len(opt.Corners))
	for i, name := range opt.Corners {
		m, err := mc.CornerMultiplier(name)
		if err != nil {
			return nil, fmt.Errorf("sta: %w", err)
		}
		cornerMults[i] = m
	}

	// The aggregation axes: primary outputs that can actually transition
	// under this stimulus. Restricting them up front keeps the per-sample
	// slab and the PO scan proportional to the stimulated cone, not the
	// netlist.
	pos := p.mcOutputs(events, opt.Dense)

	mcStart := time.Now()
	// Per-sample arrival slab, indexed [sample][output][direction]. NaN
	// marks "did not transition in this sample"; aggregation drops NaNs.
	stride := 2 * len(pos)
	slab := make([]float64, opt.Samples*stride)
	for i := range slab {
		slab[i] = math.NaN()
	}
	critCount := make([]int64, p.gates)
	var gatesEvaluated, evaluations, proximityEvals, singleArcEvals, gatesScheduled atomic.Int64
	var pulsesFiltered, pulsesDegraded, pulsesUnjudged atomic.Int64

	// Glitch-criticality votes, indexed by gate. The per-sample verdicts
	// live in a map keyed by output net ID, so a net-ID -> gate-index table
	// turns each into a vote; map iteration order does not matter because
	// the counters only ever accumulate.
	var glitchAbsorbed, glitchDegraded []int64
	var outGate []int32
	if opt.PulseFiltering {
		glitchAbsorbed = make([]int64, p.gates)
		glitchDegraded = make([]int64, p.gates)
		outGate = make([]int32, p.numNets)
		for i := range outGate {
			outGate[i] = -1
		}
		for gi, g := range p.gateList {
			if int(g.Out.id) < p.numNets {
				outGate[g.Out.id] = int32(gi)
			}
		}
	}

	runSample := func(si int) error {
		pv := Options{Workers: 1, Dense: opt.Dense, PulseFiltering: opt.PulseFiltering}
		if opt.Sigma != 0 {
			// Capture si by value: the closure is the whole perturbation
			// state, so any sample is reproducible in isolation.
			pv.Perturb = func(gi int32) float64 { return mc.Multiplier(opt.Seed, si, opt.Sigma, gi) }
		}
		res, err := p.analyze(ctx, events, mode, pv, int64(si))
		if err != nil {
			return err
		}
		gatesEvaluated.Add(int64(res.Stats.GatesEvaluated))
		evaluations.Add(int64(res.Stats.Evaluations))
		proximityEvals.Add(int64(res.Stats.ProximityEvals))
		singleArcEvals.Add(int64(res.Stats.SingleArcEvals))
		gatesScheduled.Add(int64(res.Stats.GatesScheduled))
		pulsesFiltered.Add(int64(res.Stats.PulsesFiltered))
		pulsesDegraded.Add(int64(res.Stats.PulsesDegraded))
		pulsesUnjudged.Add(int64(res.Stats.PulsesUnjudged))
		if opt.PulseFiltering {
			for netID, pi := range res.pulses {
				gi := outGate[netID]
				if gi < 0 {
					continue
				}
				switch {
				case pi.Filtered:
					atomic.AddInt64(&glitchAbsorbed[gi], 1)
				case pi.Unjudged:
					// An unjudged pair is a blind spot, not a verdict — it
					// counts in Stats.PulsesUnjudged, not in the criticality
					// vote.
				default:
					atomic.AddInt64(&glitchDegraded[gi], 1)
				}
			}
		}

		base := si * stride
		worst := math.Inf(-1)
		var worstNet *Net
		var worstDir waveform.Direction
		found := false
		for k, po := range pos {
			for _, dir := range bothDirs {
				if a, ok := res.Arrival(po, dir); ok {
					slab[base+2*k+int(dir)] = a.Time
					if !found || a.Time > worst {
						worst, worstNet, worstDir, found = a.Time, po, dir, true
					}
				}
			}
		}
		if found {
			path, err := res.CriticalPath(worstNet, worstDir)
			if err != nil {
				return fmt.Errorf("sample %d criticality trace: %w", si, err)
			}
			for _, step := range path {
				if g := step.Arrival.FromGate; g != nil {
					atomic.AddInt64(&critCount[g.idx], 1)
				}
			}
		}
		return nil
	}

	workers := opt.Workers
	if workers <= 0 {
		workers = defaultWorkers()
	}
	if workers > opt.Samples {
		workers = opt.Samples
	}
	errs := make([]error, opt.Samples)
	if workers <= 1 {
		for si := 0; si < opt.Samples; si++ {
			if errs[si] = runSample(si); errs[si] != nil {
				break
			}
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					si := int(next.Add(1) - 1)
					if si >= opt.Samples {
						return
					}
					errs[si] = runSample(si)
				}
			}()
		}
		wg.Wait()
	}
	for si, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("sta: mc sample %d: %w", si, err)
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("sta: mc analysis interrupted: %w", err)
	}

	out := &MCResult{Mode: mode, Samples: opt.Samples, Seed: opt.Seed, Sigma: opt.Sigma}

	// Aggregate in (output, direction, sample) order — serial, so the
	// result is independent of which worker produced which sample.
	column := make([]float64, opt.Samples)
	for k, po := range pos {
		for _, dir := range bothDirs {
			for si := 0; si < opt.Samples; si++ {
				column[si] = slab[si*stride+2*k+int(dir)]
			}
			d := mc.NewDist(column, opt.Bins)
			if d.N == 0 {
				continue // this output never transitions that way
			}
			out.Outputs = append(out.Outputs, OutputDist{Net: po, Dir: dir, Dist: d})
		}
	}
	for gi, n := range critCount {
		if n > 0 {
			out.Criticality = append(out.Criticality, GateCriticality{
				Gate:        p.gateList[gi],
				Count:       int(n),
				Probability: float64(n) / float64(opt.Samples),
			})
		}
	}
	sort.SliceStable(out.Criticality, func(i, j int) bool {
		return out.Criticality[i].Count > out.Criticality[j].Count
	})
	if opt.PulseFiltering {
		for gi := range glitchAbsorbed {
			abs, deg := glitchAbsorbed[gi], glitchDegraded[gi]
			if abs == 0 && deg == 0 {
				continue
			}
			out.GlitchCriticality = append(out.GlitchCriticality, GateGlitchCriticality{
				Gate:      p.gateList[gi],
				Absorbed:  int(abs),
				Degraded:  int(deg),
				PAbsorbed: float64(abs) / float64(opt.Samples),
				PDegraded: float64(deg) / float64(opt.Samples),
			})
		}
		sort.SliceStable(out.GlitchCriticality, func(i, j int) bool {
			return out.GlitchCriticality[i].Absorbed+out.GlitchCriticality[i].Degraded >
				out.GlitchCriticality[j].Absorbed+out.GlitchCriticality[j].Degraded
		})
	}

	// Corner presets: degenerate one-sample runs with a constant global
	// multiplier (the typ corner's 1.0 takes the unperturbed hot path).
	for i, name := range opt.Corners {
		pv := Options{Workers: opt.Workers, Dense: opt.Dense, PulseFiltering: opt.PulseFiltering}
		if cornerMults[i] != 1 {
			m := cornerMults[i]
			pv.Perturb = func(int32) float64 { return m }
		}
		res, err := p.analyze(ctx, events, mode, pv, int64(opt.Samples+i))
		if err != nil {
			return nil, fmt.Errorf("sta: corner %s: %w", name, err)
		}
		out.Corners = append(out.Corners, CornerResult{Name: name, Multiplier: cornerMults[i], Result: res})
	}

	out.Stats.Workers = workers
	out.Stats.Levels = len(p.levelIdx)
	out.Stats.GatesEvaluated = int(gatesEvaluated.Load())
	out.Stats.Evaluations = int(evaluations.Load())
	out.Stats.ProximityEvals = int(proximityEvals.Load())
	out.Stats.SingleArcEvals = int(singleArcEvals.Load())
	out.Stats.GatesScheduled = int(gatesScheduled.Load())
	out.Stats.PulsesFiltered = int(pulsesFiltered.Load())
	out.Stats.PulsesDegraded = int(pulsesDegraded.Load())
	out.Stats.PulsesUnjudged = int(pulsesUnjudged.Load())
	out.Stats.Phases.Add(obs.PhaseMC, time.Since(mcStart))
	out.Stats.Wall = time.Since(wallStart)
	return out, nil
}

// AnalyzeMC is the circuit-level entry point: compile (memoized) and run.
// Compile time is charged to the result's PhaseCompile bucket, mirroring
// AnalyzeOpts.
func (c *Circuit) AnalyzeMC(events []PIEvent, mode Mode, opt MCOptions) (*MCResult, error) {
	compileStart := time.Now()
	p, fresh, err := c.compileTimed(opt.Trace)
	if err != nil {
		return nil, err
	}
	compileWall := time.Since(compileStart)
	res, err := p.AnalyzeMC(context.Background(), events, mode, opt)
	if err != nil {
		return nil, err
	}
	res.Stats.Phases.Add(obs.PhaseCompile, compileWall)
	if fresh {
		res.Stats.Phases.Add(obs.PhaseLevelize, p.levelizeWall)
	}
	res.Stats.Wall += compileWall
	return res, nil
}
