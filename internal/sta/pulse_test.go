package sta_test

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/macromodel"
	"repro/internal/sta"
	"repro/internal/waveform"
)

// pulsePair builds a lone nand2 over the synthetic library: inputs a (pin 0)
// and b (pin 1), output n1. A falling a unblocks the output (rising edge),
// a rising b blocks it (falling edge), so one vector carrying both produces
// an opposite-edge output pair — the engine's runt-pulse signature.
func pulsePair(t *testing.T) (c *sta.Circuit, a, b, out *sta.Net) {
	t.Helper()
	c = sta.NewCircuit(sta.SynthLibrary(2))
	a, b = c.Input("a"), c.Input("b")
	out, err := c.AddGate("g", "nand2", "n1", a, b)
	if err != nil {
		t.Fatal(err)
	}
	c.MarkOutput(out)
	return c, a, b, out
}

// pulseVector stimulates b rising at time 0 and a falling at time sep — the
// dip shape the nand's negative-going glitch model characterizes. sep is
// exactly the separation EvaluatePulse sees (falling input's crossing
// measured from the rising input's).
func pulseVector(a, b *sta.Net, ttFall, ttRise, sep float64) []sta.PIEvent {
	return []sta.PIEvent{
		{Net: b, Dir: waveform.Rising, TT: ttRise, Time: 0},
		{Net: a, Dir: waveform.Falling, TT: ttFall, Time: sep},
	}
}

// pulseMinSep reads the synthetic nand2's inertial delay for the (fall=0,
// rise=1) pair at the given transition times, straight from the same model
// the library calculators wrap.
func pulseMinSep(t *testing.T, ttFall, ttRise float64) float64 {
	t.Helper()
	m := macromodel.SynthModel("nand", 2)
	gm := m.Glitch(0, 1)
	if gm == nil {
		t.Fatal("synthetic nand2 carries no glitch model for pair (0,1)")
	}
	minSep, ok := gm.MinSeparation(ttFall, ttRise, m.Th)
	if !ok {
		t.Fatalf("synthetic glitch grid never completes a transition (minSep=%g)", minSep)
	}
	return minSep
}

const (
	pulseTTFall = 300e-12
	pulseTTRise = 300e-12
)

func TestPulseFilterAbsorbs(t *testing.T) {
	c, a, b, out := pulsePair(t)
	minSep := pulseMinSep(t, pulseTTFall, pulseTTRise)
	evs := pulseVector(a, b, pulseTTFall, pulseTTRise, minSep-50e-12)

	// Without filtering the pair propagates as two full-swing arrivals.
	off, err := c.AnalyzeOpts(evs, sta.Proximity, sta.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, dir := range []waveform.Direction{waveform.Rising, waveform.Falling} {
		if _, ok := off.Arrival(out, dir); !ok {
			t.Fatalf("filtering off: expected %v arrival on %s", dir, out.Name)
		}
	}
	if off.Stats.PulsesFiltered != 0 || off.Stats.PulsesDegraded != 0 {
		t.Fatalf("filtering off: pulse counters moved (%d filtered, %d degraded)",
			off.Stats.PulsesFiltered, off.Stats.PulsesDegraded)
	}
	if _, ok := off.Pulse(out); ok {
		t.Fatal("filtering off: verdict recorded")
	}

	on, err := c.AnalyzeOpts(evs, sta.Proximity, sta.Options{PulseFiltering: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, dir := range []waveform.Direction{waveform.Rising, waveform.Falling} {
		if arr, ok := on.Arrival(out, dir); ok {
			t.Fatalf("runt pulse below inertial delay propagated a %v arrival (t=%g)", dir, arr.Time)
		}
	}
	if on.Stats.PulsesFiltered != 1 || on.Stats.PulsesDegraded != 0 {
		t.Fatalf("want 1 filtered / 0 degraded, got %d / %d",
			on.Stats.PulsesFiltered, on.Stats.PulsesDegraded)
	}
	pi, ok := on.Pulse(out)
	if !ok || !pi.Filtered {
		t.Fatalf("want filtered verdict on %s, got %+v (recorded=%v)", out.Name, pi, ok)
	}
	if pi.FallPin != 0 || pi.RisePin != 1 {
		t.Fatalf("verdict names pair (fall=%d, rise=%d), want (0, 1)", pi.FallPin, pi.RisePin)
	}
	if got := minSep - 50e-12; pi.Sep != got {
		t.Fatalf("verdict separation %g, want %g", pi.Sep, got)
	}
	if !pi.MinSepOK || pi.Sep >= pi.MinSep {
		t.Fatalf("filtered verdict not below its threshold: sep=%g minSep=%g ok=%v",
			pi.Sep, pi.MinSep, pi.MinSepOK)
	}
	if !on.PulseFiltering() || off.PulseFiltering() {
		t.Fatal("Result.PulseFiltering does not reflect the analysis options")
	}
}

func TestPulseFilterDegrades(t *testing.T) {
	c, a, b, out := pulsePair(t)
	minSep := pulseMinSep(t, pulseTTFall, pulseTTRise)
	evs := pulseVector(a, b, pulseTTFall, pulseTTRise, minSep+30e-12)

	off, err := c.AnalyzeOpts(evs, sta.Proximity, sta.Options{})
	if err != nil {
		t.Fatal(err)
	}
	on, err := c.AnalyzeOpts(evs, sta.Proximity, sta.Options{PulseFiltering: true})
	if err != nil {
		t.Fatal(err)
	}
	if on.Stats.PulsesFiltered != 0 || on.Stats.PulsesDegraded != 1 {
		t.Fatalf("want 0 filtered / 1 degraded, got %d / %d",
			on.Stats.PulsesFiltered, on.Stats.PulsesDegraded)
	}
	pi, ok := on.Pulse(out)
	if !ok || pi.Filtered {
		t.Fatalf("want degraded verdict, got %+v (recorded=%v)", pi, ok)
	}
	if !(pi.Factor > 1) || math.IsInf(pi.Factor, 1) || math.IsNaN(pi.Factor) {
		t.Fatalf("degradation factor %g not a finite value > 1", pi.Factor)
	}
	// Arrival times are untouched; the leading edge's transition time is
	// scaled by exactly the recorded factor, the trailing edge is identical.
	for _, dir := range []waveform.Direction{waveform.Rising, waveform.Falling} {
		want, okOff := off.Arrival(out, dir)
		got, okOn := on.Arrival(out, dir)
		if !okOff || !okOn {
			t.Fatalf("%v arrival missing (off=%v on=%v)", dir, okOff, okOn)
		}
		if got.Time != want.Time {
			t.Fatalf("%v arrival time moved: %g -> %g", dir, want.Time, got.Time)
		}
		wantTT := want.TT
		if dir == pi.LeadDir {
			wantTT = want.TT * pi.Factor
		}
		if got.TT != wantTT {
			t.Fatalf("%v transition time %g, want %g (factor %g on leading %v)",
				dir, got.TT, wantTT, pi.Factor, pi.LeadDir)
		}
	}
}

// TestPulseFilterPolarityMismatch flips the pair so the rising output edge
// leads: the nand's characterized glitch is a negative-going dip (falling
// edge first), so the filter must leave the mismatched pair untouched.
func TestPulseFilterPolarityMismatch(t *testing.T) {
	c, a, b, out := pulsePair(t)
	// a falls well before b rises: the output's rising edge leads by a wide
	// margin regardless of the two arcs' delay difference.
	evs := []sta.PIEvent{
		{Net: a, Dir: waveform.Falling, TT: pulseTTFall, Time: 0},
		{Net: b, Dir: waveform.Rising, TT: pulseTTRise, Time: 2e-9},
	}
	off, err := c.AnalyzeOpts(evs, sta.Proximity, sta.Options{})
	if err != nil {
		t.Fatal(err)
	}
	on, err := c.AnalyzeOpts(evs, sta.Proximity, sta.Options{PulseFiltering: true})
	if err != nil {
		t.Fatal(err)
	}
	ar, okr := on.Arrival(out, waveform.Rising)
	af, okf := on.Arrival(out, waveform.Falling)
	if !okr || !okf {
		t.Fatalf("mismatched-polarity pair lost arrivals (rise=%v fall=%v)", okr, okf)
	}
	if !(ar.Time < af.Time) {
		t.Fatalf("test premise broken: rising edge (%g) does not lead falling (%g)", ar.Time, af.Time)
	}
	if on.Stats.PulsesFiltered != 0 || on.Stats.PulsesDegraded != 0 {
		t.Fatalf("mismatched polarity judged: %d filtered, %d degraded",
			on.Stats.PulsesFiltered, on.Stats.PulsesDegraded)
	}
	if _, ok := on.Pulse(out); ok {
		t.Fatal("untouched pair left a verdict record")
	}
	for _, dir := range []waveform.Direction{waveform.Rising, waveform.Falling} {
		want, _ := off.Arrival(out, dir)
		got, _ := on.Arrival(out, dir)
		if got != want {
			t.Fatalf("%v arrival changed with filtering on: %+v -> %+v", dir, want, got)
		}
	}
}

// norPulsePair builds a lone nor2 over a synthetic positive-going library:
// a falling a (pin 0) unblocks the output (rising edge), a rising b (pin 1)
// blocks it (falling edge) — the bump shape the nor's glitch model
// characterizes, with the falling input LEADING the rising one.
func norPulsePair(t *testing.T) (c *sta.Circuit, a, b, out *sta.Net) {
	t.Helper()
	lib := sta.NewLibrary()
	lib.Add("nor2", core.NewCalculator(macromodel.SynthModel("nor", 2)))
	c = sta.NewCircuit(lib)
	a, b = c.Input("a"), c.Input("b")
	out, err := c.AddGate("g", "nor2", "n1", a, b)
	if err != nil {
		t.Fatal(err)
	}
	c.MarkOutput(out)
	return c, a, b, out
}

// norPulseVector stimulates a falling at time 0 and b rising at time width:
// the pair's raw separation is cross(fall) − cross(rise) = −width, and width
// is the pulse-width orientation the verdict judges in.
func norPulseVector(a, b *sta.Net, ttFall, ttRise, width float64) []sta.PIEvent {
	return []sta.PIEvent{
		{Net: a, Dir: waveform.Falling, TT: ttFall, Time: 0},
		{Net: b, Dir: waveform.Rising, TT: ttRise, Time: width},
	}
}

// norPulseMinWidth reads the synthetic nor2's inertial pulse width for the
// (fall=0, rise=1) pair straight from the model.
func norPulseMinWidth(t *testing.T, ttFall, ttRise float64) float64 {
	t.Helper()
	m := macromodel.SynthModel("nor", 2)
	gm := m.Glitch(0, 1)
	if gm == nil {
		t.Fatal("synthetic nor2 carries no glitch model for pair (0,1)")
	}
	minW, ok := gm.MinSeparation(ttFall, ttRise, m.Th)
	if !ok {
		t.Fatalf("synthetic nor glitch grid never completes a transition (minWidth=%g)", minW)
	}
	return minW
}

// TestPulseFilterNorJudges: the positive-going polarity end to end — a
// narrow NOR bump is absorbed, a wide one survives with a degraded leading
// rising edge. Before the width-oriented boundary this polarity filtered at
// EVERY separation (the bisection bracket assumed NAND orientation),
// silently dropping full-swing transitions.
func TestPulseFilterNorJudges(t *testing.T) {
	c, a, b, out := norPulsePair(t)
	minW := norPulseMinWidth(t, pulseTTFall, pulseTTRise)

	// Narrow bump: absorbed, nothing commits.
	on, err := c.AnalyzeOpts(norPulseVector(a, b, pulseTTFall, pulseTTRise, minW-50e-12),
		sta.Proximity, sta.Options{PulseFiltering: true})
	if err != nil {
		t.Fatal(err)
	}
	if on.Stats.PulsesFiltered != 1 || on.Stats.PulsesDegraded != 0 {
		t.Fatalf("narrow bump: want 1 filtered / 0 degraded, got %d / %d",
			on.Stats.PulsesFiltered, on.Stats.PulsesDegraded)
	}
	for _, dir := range []waveform.Direction{waveform.Rising, waveform.Falling} {
		if arr, ok := on.Arrival(out, dir); ok {
			t.Fatalf("narrow nor bump propagated a %v arrival (t=%g)", dir, arr.Time)
		}
	}
	pi, ok := on.Pulse(out)
	if !ok || !pi.Filtered {
		t.Fatalf("want filtered verdict on %s, got %+v (recorded=%v)", out.Name, pi, ok)
	}
	if pi.LeadDir != waveform.Rising {
		t.Fatalf("nor bump leading edge %v, want rising", pi.LeadDir)
	}
	if want := minW - 50e-12; pi.Sep != want {
		t.Fatalf("verdict width %g, want %g", pi.Sep, want)
	}
	if !pi.MinSepOK || pi.Sep >= pi.MinSep {
		t.Fatalf("filtered verdict not below its boundary: width=%g minWidth=%g ok=%v",
			pi.Sep, pi.MinSep, pi.MinSepOK)
	}
	// The filtered gate's evaluation work still counts.
	if on.Stats.GatesEvaluated != 1 || on.Stats.Evaluations != 2 {
		t.Fatalf("filtered gate dropped from eval counters: %d gates / %d evals, want 1 / 2",
			on.Stats.GatesEvaluated, on.Stats.Evaluations)
	}

	// Wide bump: survives, leading rising edge degraded by the swing deficit.
	off, err := c.AnalyzeOpts(norPulseVector(a, b, pulseTTFall, pulseTTRise, minW+30e-12),
		sta.Proximity, sta.Options{})
	if err != nil {
		t.Fatal(err)
	}
	on, err = c.AnalyzeOpts(norPulseVector(a, b, pulseTTFall, pulseTTRise, minW+30e-12),
		sta.Proximity, sta.Options{PulseFiltering: true})
	if err != nil {
		t.Fatal(err)
	}
	if on.Stats.PulsesFiltered != 0 || on.Stats.PulsesDegraded != 1 {
		t.Fatalf("wide bump: want 0 filtered / 1 degraded, got %d / %d",
			on.Stats.PulsesFiltered, on.Stats.PulsesDegraded)
	}
	pi, ok = on.Pulse(out)
	if !ok || pi.Filtered {
		t.Fatalf("want degraded verdict, got %+v (recorded=%v)", pi, ok)
	}
	if !(pi.Factor > 1) || math.IsInf(pi.Factor, 1) || math.IsNaN(pi.Factor) {
		t.Fatalf("degradation factor %g not a finite value > 1", pi.Factor)
	}
	for _, dir := range []waveform.Direction{waveform.Rising, waveform.Falling} {
		want, okOff := off.Arrival(out, dir)
		got, okOn := on.Arrival(out, dir)
		if !okOff || !okOn {
			t.Fatalf("%v arrival missing (off=%v on=%v)", dir, okOff, okOn)
		}
		wantTT := want.TT
		if dir == pi.LeadDir {
			wantTT = want.TT * pi.Factor
		}
		if got.Time != want.Time || got.TT != wantTT {
			t.Fatalf("%v arrival %+v, want t=%g tt=%g (factor %g on leading %v)",
				dir, got, want.Time, wantTT, pi.Factor, pi.LeadDir)
		}
	}
}

// TestPulseFilterNorPolarityMismatch: rising input well before the falling
// one puts the falling output edge in the lead — not the bump shape the
// nor's positive-going glitch characterizes, so the pair must pass
// untouched.
func TestPulseFilterNorPolarityMismatch(t *testing.T) {
	c, a, b, out := norPulsePair(t)
	evs := []sta.PIEvent{
		{Net: b, Dir: waveform.Rising, TT: pulseTTRise, Time: 0},
		{Net: a, Dir: waveform.Falling, TT: pulseTTFall, Time: 2e-9},
	}
	on, err := c.AnalyzeOpts(evs, sta.Proximity, sta.Options{PulseFiltering: true})
	if err != nil {
		t.Fatal(err)
	}
	ar, okr := on.Arrival(out, waveform.Rising)
	af, okf := on.Arrival(out, waveform.Falling)
	if !okr || !okf {
		t.Fatalf("mismatched-polarity pair lost arrivals (rise=%v fall=%v)", okr, okf)
	}
	if !(af.Time < ar.Time) {
		t.Fatalf("test premise broken: falling edge (%g) does not lead rising (%g)", af.Time, ar.Time)
	}
	if on.Stats.PulsesFiltered != 0 || on.Stats.PulsesDegraded != 0 {
		t.Fatalf("mismatched polarity judged: %d filtered, %d degraded",
			on.Stats.PulsesFiltered, on.Stats.PulsesDegraded)
	}
	if _, ok := on.Pulse(out); ok {
		t.Fatal("untouched pair left a verdict record")
	}
}

func TestPulseFilterBatchPropagates(t *testing.T) {
	c, a, b, _ := pulsePair(t)
	minSep := pulseMinSep(t, pulseTTFall, pulseTTRise)
	batch := [][]sta.PIEvent{
		pulseVector(a, b, pulseTTFall, pulseTTRise, minSep-50e-12),
		pulseVector(a, b, pulseTTFall, pulseTTRise, minSep+30e-12),
	}
	results, err := c.AnalyzeBatch(batch, sta.Proximity, sta.Options{PulseFiltering: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := results[0].Stats.PulsesFiltered; got != 1 {
		t.Errorf("batch vector 0: %d filtered, want 1 (PulseFiltering dropped on the per-vector options?)", got)
	}
	if got := results[1].Stats.PulsesDegraded; got != 1 {
		t.Errorf("batch vector 1: %d degraded, want 1", got)
	}
}

// TestPulseFilterDeltaMismatchRejected: pulse filtering is inherited from
// the baseline like the analysis mode — the delta option must agree in BOTH
// directions, because a delta cannot change the analysis semantics midway.
func TestPulseFilterDeltaMismatchRejected(t *testing.T) {
	c, a, b, _ := pulsePair(t)
	evs := pulseVector(a, b, pulseTTFall, pulseTTRise, 5e-9)
	base, err := c.AnalyzeOpts(evs, sta.Proximity, sta.Options{})
	if err != nil {
		t.Fatal(err)
	}
	d := sta.Delta{Set: []sta.PIEvent{{Net: a, Dir: waveform.Falling, TT: pulseTTFall, Time: 6e-9}}}
	if _, err := c.AnalyzeDelta(base, d, sta.Options{PulseFiltering: true}); err == nil ||
		!strings.Contains(err.Error(), "PulseFiltering") {
		t.Errorf("delta with PulseFiltering over an unfiltered baseline accepted (err=%v)", err)
	}
	filtered, err := c.AnalyzeOpts(evs, sta.Proximity, sta.Options{PulseFiltering: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.AnalyzeDelta(filtered, d, sta.Options{}); err == nil ||
		!strings.Contains(err.Error(), "PulseFiltering") {
		t.Errorf("unfiltered delta over a pulse-filtered baseline accepted (err=%v)", err)
	}
}

// TestPulseFilterMCSigmaZero: a sigma-0 filtered MC run must be bit-identical
// to the deterministic filtered Analyze — absorbed pairs absent from every
// sample's distributions, pulse counters summed across samples, and the
// glitch-criticality vote unanimous.
func TestPulseFilterMCSigmaZero(t *testing.T) {
	c, err := sta.SynthRandom(40, 400, 99)
	if err != nil {
		t.Fatal(err)
	}
	evs := runtPulseStimulus(c, 7)
	ref, err := c.AnalyzeOpts(evs, sta.Proximity, sta.Options{PulseFiltering: true})
	if err != nil {
		t.Fatal(err)
	}
	if ref.Stats.PulsesFiltered == 0 || ref.Stats.PulsesDegraded == 0 {
		t.Fatalf("stimulus judged %d filtered / %d degraded pulses — MC identity check is vacuous",
			ref.Stats.PulsesFiltered, ref.Stats.PulsesDegraded)
	}
	opt := sta.MCOptions{Samples: 3, Sigma: 0}
	opt.PulseFiltering = true
	opt.Workers = 2
	res, err := c.AnalyzeMC(evs, sta.Proximity, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.PulsesFiltered != 3*ref.Stats.PulsesFiltered ||
		res.Stats.PulsesDegraded != 3*ref.Stats.PulsesDegraded ||
		res.Stats.PulsesUnjudged != 3*ref.Stats.PulsesUnjudged {
		t.Fatalf("sigma-0 pulse counters %d/%d/%d, want 3x the deterministic %d/%d/%d",
			res.Stats.PulsesFiltered, res.Stats.PulsesDegraded, res.Stats.PulsesUnjudged,
			ref.Stats.PulsesFiltered, ref.Stats.PulsesDegraded, ref.Stats.PulsesUnjudged)
	}
	for _, od := range res.Outputs {
		a, ok := ref.Arrival(od.Net, od.Dir)
		if !ok {
			t.Fatalf("MC reports %s %v but filtered deterministic analysis has no arrival (absorbed pair leaked into a sample?)",
				od.Net.Name, od.Dir)
		}
		if od.Dist.N != 3 || od.Dist.Min != a.Time || od.Dist.Max != a.Time {
			t.Fatalf("%s %v: sigma-0 dist %+v != filtered deterministic arrival %v",
				od.Net.Name, od.Dir, od.Dist, a.Time)
		}
	}
	if len(res.GlitchCriticality) == 0 {
		t.Fatal("no glitch-criticality entries despite judged pulses")
	}
	absorbedGates, degradedGates := 0, 0
	for _, gc := range res.GlitchCriticality {
		// Every sample is identical, so each judged gate's vote is unanimous.
		switch {
		case gc.Absorbed == res.Samples && gc.Degraded == 0 && gc.PAbsorbed == 1:
			absorbedGates++
		case gc.Degraded == res.Samples && gc.Absorbed == 0 && gc.PDegraded == 1:
			degradedGates++
		default:
			t.Fatalf("sigma-0 glitch criticality for %s not unanimous: %+v", gc.Gate.Name, gc)
		}
	}
	if absorbedGates != ref.Stats.PulsesFiltered || degradedGates != ref.Stats.PulsesDegraded {
		t.Fatalf("glitch criticality covers %d absorbed / %d degraded gates, deterministic run judged %d / %d",
			absorbedGates, degradedGates, ref.Stats.PulsesFiltered, ref.Stats.PulsesDegraded)
	}
}

// TestPulseFilterMCWorkerInvariance: at fixed seed and nonzero sigma the
// glitch-criticality aggregate (and the summed pulse counters) must be
// bit-identical at every worker count — the votes are atomic accumulations
// of per-sample verdicts that are pure functions of (seed, sample, gate).
func TestPulseFilterMCWorkerInvariance(t *testing.T) {
	c, err := sta.SynthRandom(40, 400, 99)
	if err != nil {
		t.Fatal(err)
	}
	evs := runtPulseStimulus(c, 7)
	base := sta.MCOptions{Samples: 24, Seed: 1234, Sigma: 0.06}
	base.PulseFiltering = true
	base.Workers = 1
	ref, err := c.AnalyzeMC(evs, sta.Proximity, base)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Stats.PulsesFiltered == 0 || ref.Stats.PulsesDegraded == 0 {
		t.Fatalf("perturbed samples judged %d filtered / %d degraded pulses — invariance check is vacuous",
			ref.Stats.PulsesFiltered, ref.Stats.PulsesDegraded)
	}
	flips := 0
	for _, gc := range ref.GlitchCriticality {
		if n := gc.Absorbed + gc.Degraded; n > 0 && (gc.Absorbed < n || gc.Degraded < n) && n < ref.Samples {
			flips++
		}
		if gc.Absorbed > 0 && gc.Degraded > 0 {
			flips++ // variation moved the pair across the inertial boundary
		}
	}
	for _, workers := range []int{3, 5} {
		opt := base
		opt.Workers = workers
		got, err := c.AnalyzeMC(evs, sta.Proximity, opt)
		if err != nil {
			t.Fatal(err)
		}
		if got.Stats.PulsesFiltered != ref.Stats.PulsesFiltered ||
			got.Stats.PulsesDegraded != ref.Stats.PulsesDegraded ||
			got.Stats.PulsesUnjudged != ref.Stats.PulsesUnjudged {
			t.Fatalf("workers=%d: pulse counters %d/%d/%d, want %d/%d/%d", workers,
				got.Stats.PulsesFiltered, got.Stats.PulsesDegraded, got.Stats.PulsesUnjudged,
				ref.Stats.PulsesFiltered, ref.Stats.PulsesDegraded, ref.Stats.PulsesUnjudged)
		}
		if len(got.GlitchCriticality) != len(ref.GlitchCriticality) {
			t.Fatalf("workers=%d: %d glitch-criticality entries, want %d",
				workers, len(got.GlitchCriticality), len(ref.GlitchCriticality))
		}
		for i, gc := range got.GlitchCriticality {
			rg := ref.GlitchCriticality[i]
			if gc.Gate != rg.Gate || gc.Absorbed != rg.Absorbed || gc.Degraded != rg.Degraded ||
				gc.PAbsorbed != rg.PAbsorbed || gc.PDegraded != rg.PDegraded {
				t.Fatalf("workers=%d: glitch criticality %d differs: %+v vs %+v", workers, i, gc, rg)
			}
		}
	}
}

// TestPulseFilterUnjudgedChain: the multi-level chaining blind spot made
// observable. A degraded pulse survives the nand and arrives at a downstream
// inverter as an opposite-edge pair on its single input pin; Glitch(0, 0) is
// never characterized, so the pair propagates untouched — but now counted
// (Stats.PulsesUnjudged) and recorded, with Explain naming the pin pair.
func TestPulseFilterUnjudgedChain(t *testing.T) {
	c, a, b, out := pulsePair(t)
	out2, err := c.AddGate("g2", "inv", "n2", out)
	if err != nil {
		t.Fatal(err)
	}
	c.MarkOutput(out2)
	minSep := pulseMinSep(t, pulseTTFall, pulseTTRise)
	res, err := c.AnalyzeOpts(pulseVector(a, b, pulseTTFall, pulseTTRise, minSep+30e-12),
		sta.Proximity, sta.Options{PulseFiltering: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.PulsesDegraded != 1 || res.Stats.PulsesUnjudged != 1 {
		t.Fatalf("want 1 degraded (nand) + 1 unjudged (inv), got %d degraded / %d unjudged",
			res.Stats.PulsesDegraded, res.Stats.PulsesUnjudged)
	}
	pi, ok := res.Pulse(out2)
	if !ok || !pi.Unjudged {
		t.Fatalf("inverter output carries no unjudged record: %+v (recorded=%v)", pi, ok)
	}
	if pi.FallPin != 0 || pi.RisePin != 0 {
		t.Fatalf("unjudged record names pin pair (fall=%d, rise=%d), want the single pin (0, 0)", pi.FallPin, pi.RisePin)
	}
	if pi.Factor != 1 || pi.Filtered {
		t.Fatalf("unjudged record must be untouched (factor 1, not filtered): %+v", pi)
	}
	for _, dir := range []waveform.Direction{waveform.Rising, waveform.Falling} {
		if _, ok := res.Arrival(out2, dir); !ok {
			t.Fatalf("unjudged pair lost its %v arrival", dir)
		}
	}
	ne, err := sta.Explain(res, out2)
	if err != nil {
		t.Fatalf("explain of an unjudged output reported staleness: %v", err)
	}
	var sb strings.Builder
	ne.Format(&sb)
	if !strings.Contains(sb.String(), "runt pulse unjudged") || !strings.Contains(sb.String(), "fall pin 0, rise pin 0") {
		t.Errorf("unjudged report missing the blind-spot note:\n%s", sb.String())
	}
}

// TestBatchPerturbPropagates mirrors TestPulseFilterBatchPropagates for the
// perturbation hook: AnalyzeBatch used to rebuild the per-vector Options
// field-by-field and silently dropped Perturb, returning unperturbed results
// with no error.
func TestBatchPerturbPropagates(t *testing.T) {
	c, err := sta.SynthRandom(12, 60, 5)
	if err != nil {
		t.Fatal(err)
	}
	evs := sta.SynthEvents(c, 3)
	perturb := func(gi int32) float64 { return 1 + 0.01*float64(gi%7+1) }
	want, err := c.AnalyzeOpts(evs, sta.Proximity, sta.Options{Workers: 1, Perturb: perturb})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := c.AnalyzeOpts(evs, sta.Proximity, sta.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	results, err := c.AnalyzeBatch([][]sta.PIEvent{evs, evs}, sta.Proximity, sta.Options{Perturb: perturb})
	if err != nil {
		t.Fatal(err)
	}
	vacuous := true
	for _, name := range c.NetsByName() {
		n := c.Net(name)
		for _, dir := range []waveform.Direction{waveform.Rising, waveform.Falling} {
			wantA, okW := want.Arrival(n, dir)
			if pa, okP := plain.Arrival(n, dir); okP != okW || pa != wantA {
				vacuous = false
			}
			for vi, res := range results {
				got, okG := res.Arrival(n, dir)
				if okG != okW || got != wantA {
					t.Fatalf("batch vector %d: net %s %v: %+v (present=%v), want %+v (present=%v) — Perturb dropped on the per-vector options?",
						vi, name, dir, got, okG, wantA, okW)
				}
			}
		}
	}
	if vacuous {
		t.Fatal("perturbation changed nothing — the regression check is vacuous")
	}
}

// TestPulseFilterExplain checks the staleness carve-out and the rendered
// story: a degraded output explains without a spurious mismatch, a filtered
// one reports the absorbed pair instead of "no arrivals".
func TestPulseFilterExplain(t *testing.T) {
	c, a, b, out := pulsePair(t)
	minSep := pulseMinSep(t, pulseTTFall, pulseTTRise)

	degraded, err := c.AnalyzeOpts(pulseVector(a, b, pulseTTFall, pulseTTRise, minSep+30e-12),
		sta.Proximity, sta.Options{PulseFiltering: true})
	if err != nil {
		t.Fatal(err)
	}
	if degraded.Stats.PulsesDegraded != 1 {
		t.Fatalf("premise: want a degraded pulse, got %+v", degraded.Stats)
	}
	ne, err := sta.Explain(degraded, out)
	if err != nil {
		t.Fatalf("explain of a degraded output reported staleness: %v", err)
	}
	if ne.Pulse == nil || ne.Pulse.Filtered {
		t.Fatalf("explain carries no degraded verdict: %+v", ne.Pulse)
	}
	var sb strings.Builder
	ne.Format(&sb)
	if !strings.Contains(sb.String(), "runt pulse degraded") {
		t.Errorf("degraded report missing the pulse story:\n%s", sb.String())
	}
	if past := (ne.Pulse.Sep - ne.Pulse.MinSep) * 1e12; past <= 0 ||
		!strings.Contains(sb.String(), fmt.Sprintf("%.2fps past the pair's inertial delay", past)) {
		t.Errorf("degraded report does not state how far past the inertial delay (%.2fps):\n%s", past, sb.String())
	}

	filtered, err := c.AnalyzeOpts(pulseVector(a, b, pulseTTFall, pulseTTRise, minSep-50e-12),
		sta.Proximity, sta.Options{PulseFiltering: true})
	if err != nil {
		t.Fatal(err)
	}
	if filtered.Stats.PulsesFiltered != 1 {
		t.Fatalf("premise: want a filtered pulse, got %+v", filtered.Stats)
	}
	ne, err = sta.Explain(filtered, out)
	if err != nil {
		t.Fatal(err)
	}
	if ne.Pulse == nil || !ne.Pulse.Filtered {
		t.Fatalf("explain carries no filtered verdict: %+v", ne.Pulse)
	}
	if len(ne.Dirs) != 0 {
		t.Errorf("filtered output still explains %d directions", len(ne.Dirs))
	}
	sb.Reset()
	ne.Format(&sb)
	report := sb.String()
	if !strings.Contains(report, "runt pulse absorbed") {
		t.Errorf("filtered report missing the absorption story:\n%s", report)
	}
	// The pair is BELOW the inertial delay, so the distance must read as a
	// positive shortfall — the old "margin" (Sep − MinSep) printed negative.
	if short := (ne.Pulse.MinSep - ne.Pulse.Sep) * 1e12; short <= 0 ||
		!strings.Contains(report, fmt.Sprintf("shortfall %.2fps", short)) {
		t.Errorf("absorbed report missing positive shortfall %.2fps:\n%s", short, report)
	}
	if strings.Contains(report, "shortfall -") || strings.Contains(report, "margin") {
		t.Errorf("absorbed report still phrases the distance as a (negative) margin:\n%s", report)
	}
	if strings.Contains(report, "no arrivals in this analysis") {
		t.Errorf("filtered report claims no arrivals (the pulse was judged, not absent):\n%s", report)
	}
}

// TestPulseFilterSparseDenseIdentical runs a runt-pulse workload through
// both schedulers and both worker counts with filtering on: verdicts and
// arrivals must be bit-identical (the filter sits in the serial commit walk,
// which both paths share).
func TestPulseFilterSparseDenseIdentical(t *testing.T) {
	c, err := sta.SynthRandom(40, 400, 99)
	if err != nil {
		t.Fatal(err)
	}
	evs := runtPulseStimulus(c, 7)
	var ref *sta.Result
	for _, cfg := range []struct {
		name string
		opt  sta.Options
	}{
		{"sparse-serial", sta.Options{Workers: 1, PulseFiltering: true}},
		{"sparse-parallel", sta.Options{Workers: 4, PulseFiltering: true}},
		{"dense-serial", sta.Options{Workers: 1, Dense: true, PulseFiltering: true}},
		{"dense-parallel", sta.Options{Workers: 4, Dense: true, PulseFiltering: true}},
	} {
		res, err := c.AnalyzeOpts(evs, sta.Proximity, cfg.opt)
		if err != nil {
			t.Fatalf("%s: %v", cfg.name, err)
		}
		if ref == nil {
			ref = res
			if res.Stats.PulsesFiltered+res.Stats.PulsesDegraded == 0 {
				t.Fatal("stimulus produced no judged pulses — the identity check is vacuous")
			}
			continue
		}
		if res.Stats.PulsesFiltered != ref.Stats.PulsesFiltered ||
			res.Stats.PulsesDegraded != ref.Stats.PulsesDegraded {
			t.Errorf("%s: %d/%d pulses, want %d/%d", cfg.name,
				res.Stats.PulsesFiltered, res.Stats.PulsesDegraded,
				ref.Stats.PulsesFiltered, ref.Stats.PulsesDegraded)
		}
		for _, name := range c.NetsByName() {
			n := c.Net(name)
			for _, dir := range []waveform.Direction{waveform.Rising, waveform.Falling} {
				want, okW := ref.Arrival(n, dir)
				got, okG := res.Arrival(n, dir)
				if okW != okG || got != want {
					t.Fatalf("%s: net %s %v: %+v (present=%v), want %+v (present=%v)",
						cfg.name, name, dir, got, okG, want, okW)
				}
			}
		}
	}
}

// runtPulseStimulus builds a runt-heavy stimulus: one event per PI, with
// adjacent PIs alternating direction inside a tight arrival window, so
// reconvergent gates see opposite-edge pairs at characterized separations.
func runtPulseStimulus(c *sta.Circuit, seed int64) []sta.PIEvent {
	evs := sta.SynthEvents(c, seed)
	for i := range evs {
		// Compress arrivals into a tight window so opposite-edge pairs on
		// reconvergent outputs land within characterized separations.
		evs[i].Time = float64(i%5) * 40e-12
		if i%2 == 0 {
			evs[i].Dir = waveform.Rising
		} else {
			evs[i].Dir = waveform.Falling
		}
	}
	return evs
}
