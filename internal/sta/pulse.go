package sta

import (
	"math"

	"repro/internal/core"
	"repro/internal/waveform"
)

// PulseInfo records the Section-6 verdict applied to one gate output whose
// analysis produced BOTH transition directions — an opposite-edge pair, the
// engine's signature of a runt pulse. Judged pairs (absorbed or degraded)
// leave a record, as do pairs the library could not judge at all (no glitch
// model for the causing pin pair — Unjudged). Pairs a characterized model
// passes through untouched (full-swing, or polarity mismatch against the
// characterized glitch shape) do not.
type PulseInfo struct {
	// FallPin and RisePin are the causing input pins of the absorbed pair:
	// the falling input that produced the rising output edge and the rising
	// input that produced the falling output edge.
	FallPin int
	RisePin int
	// LeadDir is the direction of the leading (earlier) output edge.
	LeadDir waveform.Direction
	// Sep is the pair's output pulse width: the trailing (blocking) cause's
	// crossing measured from the leading (unblocking) cause's — fall − rise
	// for a negative-going dip, rise − fall for a positive-going bump.
	// MinSep is the pair's inertial delay at the observed transition times,
	// in the same orientation, so Sep − MinSep is the completion margin for
	// either polarity (+Inf with MinSepOK=false when no width in the
	// characterized range completes a transition).
	Sep      float64
	MinSep   float64
	MinSepOK bool
	// Extreme is the interpolated extreme output voltage (meaningful only
	// for surviving, degraded pulses).
	Extreme float64
	// Factor is the transition-time degradation applied to the leading
	// output edge (1 for filtered pulses — nothing propagated to degrade).
	Factor float64
	// Filtered reports the pulse was absorbed: neither output arrival
	// committed.
	Filtered bool
	// Unjudged reports the pair had the runt-pulse shape but no glitch
	// model exists for (FallPin, RisePin), so it propagated untouched with
	// Factor 1 and Sep holding the observed output pulse width. The
	// canonical producer is multi-level chaining: a surviving degraded
	// pulse arrives downstream as an opposite-edge pair on a single input
	// pin, and Glitch(p, p) is never characterized.
	Unjudged bool
}

// Pulse returns the Section-6 verdict recorded for a net's driving gate, if
// pulse filtering judged an opposite-edge pair there.
func (r *Result) Pulse(n *Net) (PulseInfo, bool) {
	if n == nil || r.pulses == nil {
		return PulseInfo{}, false
	}
	pi, ok := r.pulses[n.id]
	return pi, ok
}

// PulseFiltering reports whether this result was produced with
// Options.PulseFiltering enabled.
func (r *Result) PulseFiltering() bool { return r.pulseFiltering }

// applyPulseFilter judges one gate's freshly evaluated output pair against
// the Section-6 inertial-delay macromodel, mutating o in place: a filtered
// pulse clears both arrivals, a surviving-but-degraded pulse scales the
// leading edge's transition time. It runs at commit time — the gate's input
// arrivals are committed at earlier levels, so the pair's separation and
// transition times read directly from res, and the verdict is recorded on
// res for Stats and for Explain's filter-aware re-run.
func applyPulseFilter(g *Gate, o *gateEval, res *Result) {
	if !o.has[waveform.Rising] || !o.has[waveform.Falling] {
		return
	}
	ar := o.a[waveform.Rising]
	af := o.a[waveform.Falling]
	leadDir := waveform.Rising
	if af.Time <= ar.Time {
		leadDir = waveform.Falling
	}
	// All library gates invert: the rising output edge is caused by a
	// falling input, the falling output edge by a rising input.
	fallPin, risePin := ar.FromPin, af.FromPin
	m := g.Calc.Model
	gm := m.Glitch(fallPin, risePin)
	if gm == nil {
		// Pair not characterized: the pulse propagates untouched, but not
		// silently — count it and record the pin pair so Explain can name
		// the blind spot. Sep here is the observed output pulse width
		// (trailing edge minus leading edge); there is no model to supply a
		// MinSep, and Factor 1 keeps Explain's filter-aware re-run exact.
		res.Stats.PulsesUnjudged++
		res.setPulse(g.Out.id, PulseInfo{
			FallPin:  fallPin,
			RisePin:  risePin,
			LeadDir:  leadDir,
			Sep:      math.Abs(af.Time - ar.Time),
			Factor:   1,
			Unjudged: true,
		})
		return
	}
	// The characterized glitch has a polarity: a negative-going dip is an
	// output that falls first and recovers, so the falling edge must lead.
	if gm.NegativeGoing != (leadDir == waveform.Falling) {
		return
	}
	fallIn, okF := res.Arrival(g.In[fallPin], waveform.Falling)
	riseIn, okR := res.Arrival(g.In[risePin], waveform.Rising)
	if !okF || !okR {
		return // causing inputs not in the store (defensive; cannot judge)
	}
	v, ok := core.EvaluatePulse(m, fallPin, risePin, fallIn.TT, riseIn.TT, fallIn.Time-riseIn.Time)
	if !ok {
		return
	}
	switch {
	case v.Filtered:
		// Keep the pre-clear shape: delta re-analysis reconstructs the
		// absorbed gate's evaluation counters from it when an edit
		// resurrects or re-judges the pair.
		if res.pulseRaw == nil {
			res.pulseRaw = map[int32]dirArrivals{}
		}
		res.pulseRaw[g.Out.id] = dirArrivals{a: o.a, has: o.has}
		o.has[waveform.Rising] = false
		o.has[waveform.Falling] = false
		res.Stats.PulsesFiltered++
	case v.Factor > 1:
		o.a[leadDir].TT *= v.Factor
		res.Stats.PulsesDegraded++
	default:
		return // full-swing pulse: propagate untouched, no record
	}
	res.setPulse(g.Out.id, PulseInfo{
		FallPin:  fallPin,
		RisePin:  risePin,
		LeadDir:  leadDir,
		Sep:      v.Sep,
		MinSep:   v.MinSep,
		MinSepOK: v.MinSepOK,
		Extreme:  v.Extreme,
		Factor:   v.Factor,
		Filtered: v.Filtered,
	})
}

// setPulse records a verdict for an output net.
func (r *Result) setPulse(netID int32, pi PulseInfo) {
	if r.pulses == nil {
		r.pulses = map[int32]PulseInfo{}
	}
	r.pulses[netID] = pi
}

// dropPulse withdraws a previously recorded verdict for an output net,
// reversing its Stats contribution and clearing the absorbed pair's raw
// shape. The delta walk calls it before re-judging a re-evaluated gate, so
// applyPulseFilter can re-record from a clean slate; a gate whose verdict is
// unchanged nets out to zero.
func (r *Result) dropPulse(netID int32) {
	pi, ok := r.pulses[netID]
	if !ok {
		return
	}
	switch {
	case pi.Filtered:
		r.Stats.PulsesFiltered--
		delete(r.pulseRaw, netID)
	case pi.Unjudged:
		r.Stats.PulsesUnjudged--
	default:
		r.Stats.PulsesDegraded--
	}
	delete(r.pulses, netID)
}
