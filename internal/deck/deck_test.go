package deck_test

import (
	"math"
	"strings"
	"testing"

	"repro/internal/deck"
	"repro/internal/spice"
	"repro/internal/waveform"
)

const inverterDeck = `
* CMOS inverter step response
.title inverter
Vdd vdd 0 5
Vin in  0 PWL(0 0 0.5n 0 0.7n 5)
M1  out in vdd vdd pmos W=8u L=1u
M2  out in 0   0   nmos W=8u L=1u
C1  out 0 100f
.model nmos nmos KP=60u VTO=0.8 LAMBDA=0.05 GAMMA=0.4 PHI=0.65
.model pmos pmos KP=25u VTO=-0.9 LAMBDA=0.05 GAMMA=0.5 PHI=0.65
.tran 5n
.end
`

func TestValueSuffixes(t *testing.T) {
	cases := map[string]float64{
		"100f": 100e-15, "1.5n": 1.5e-9, "8u": 8e-6, "2k": 2e3,
		"3meg": 3e6, "5": 5, "1e-12": 1e-12, "-0.9": -0.9, "10m": 10e-3,
		"2g": 2e9,
	}
	for in, want := range cases {
		got, err := deck.Value(in)
		if err != nil {
			t.Errorf("Value(%q): %v", in, err)
			continue
		}
		if math.Abs(got-want) > 1e-12*math.Abs(want) {
			t.Errorf("Value(%q) = %g, want %g", in, got, want)
		}
	}
	for _, bad := range []string{"", "abc", "1.2.3n"} {
		if _, err := deck.Value(bad); err == nil {
			t.Errorf("Value(%q) accepted", bad)
		}
	}
}

func TestParseInverterDeckAndSimulate(t *testing.T) {
	d, err := deck.Parse(strings.NewReader(inverterDeck))
	if err != nil {
		t.Fatal(err)
	}
	if d.Title != "inverter" {
		t.Errorf("title = %q", d.Title)
	}
	if d.TranStop != 5e-9 {
		t.Errorf("tran stop = %g", d.TranStop)
	}
	if len(d.Circuit.MOSFETs) != 2 || len(d.Circuit.Capacitors) != 1 {
		t.Fatalf("parsed %d mosfets, %d caps", len(d.Circuit.MOSFETs), len(d.Circuit.Capacitors))
	}
	if _, ok := d.Sources["Vin"]; !ok {
		t.Error("source Vin not registered")
	}

	eng, err := spice.New(d.Circuit, spice.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Transient(spice.TranSpec{Stop: d.TranStop, Breakpoints: d.Breakpoints})
	if err != nil {
		t.Fatal(err)
	}
	out := res.TraceName("out")
	if out.V[0] < 4.9 {
		t.Errorf("inverter output should start high: %g", out.V[0])
	}
	if out.Final() > 0.1 {
		t.Errorf("inverter output should end low: %g", out.Final())
	}
	th := waveform.Thresholds{Vil: 1.5, Vih: 3.5, Vdd: 5}
	if _, err := th.OutputCross(out, waveform.Falling); err != nil {
		t.Errorf("no falling crossing: %v", err)
	}
}

func TestContinuationLines(t *testing.T) {
	src := `
Vdd vdd 0 5
Vin in 0 PWL(0 0
+ 1n 0 1.2n 5)
R1 in out 1k
C1 out 0 1p
.tran 4n
`
	d, err := deck.Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Breakpoints) != 3 {
		t.Errorf("PWL breakpoints = %v", d.Breakpoints)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"unknown card":      "X1 a b c\n",
		"bad model type":    ".model m1 diode IS=1\n",
		"missing model":     "M1 d g s b nosuch W=1u L=1u\n",
		"bad model param":   ".model n1 nmos FOO=1\n",
		"pwl odd values":    "Vin a 0 PWL(0 0 1n)\n",
		"non-ground source": "Vin a b 5\n",
		"short tran":        ".tran\n",
		"bad device param":  ".model n1 nmos KP=60u\nM1 d g s b n1 X=2\n",
		"bad value":         "R1 a b 1x2\n",
	}
	for name, src := range cases {
		if _, err := deck.Parse(strings.NewReader(src)); err == nil {
			t.Errorf("%s: accepted:\n%s", name, src)
		}
	}
}

func TestModelOrderIndependence(t *testing.T) {
	// Device line before its .model card must still resolve.
	src := `
Vdd vdd 0 5
M1 out vdd vdd vdd pmos W=2u L=1u
C1 out 0 1f
.model pmos pmos KP=25u VTO=-0.9
.tran 1n
`
	d, err := deck.Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.Circuit.MOSFETs[0].Model.KP-25e-6) > 1e-18 {
		t.Error("model card applied incorrectly")
	}
	if d.Circuit.MOSFETs[0].Type.String() != "pmos" {
		t.Error("model polarity not inferred")
	}
}
