// Package deck parses a SPICE-flavored circuit description into the
// simulator's netlist representation, so transistor-level experiments can be
// written as plain text decks instead of Go code:
//
//   - three-input NAND, inputs a,b falling
//     Vdd vdd 0 5
//     Va  a   0 PWL(0 5 1n 5 1.5n 0)
//     Vb  b   0 5
//     M1  out a vdd vdd pmos W=8u L=1u
//     M2  out a x1  0   nmos W=8u L=1u
//     C1  out 0 100f
//     .model nmos nmos KP=60u VTO=0.8 LAMBDA=0.05 GAMMA=0.4 PHI=0.65
//     .model pmos pmos KP=25u VTO=-0.9 LAMBDA=0.05 GAMMA=0.5 PHI=0.65
//     .tran 6n
//     .end
//
// Supported cards: V (DC and PWL sources), M (4-terminal MOSFETs), R, C,
// .model (level-1 parameters; LEVEL=2 selects the alpha-power model with
// ALPHA=), .tran, .title, .end. Node 0 is ground. Values accept the usual
// SPICE suffixes (f p n u m k meg g t, plus engineering exponents).
package deck

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/circuit"
	"repro/internal/device"
	"repro/internal/waveform"
)

// Deck is a parsed circuit plus its analysis directives.
type Deck struct {
	Title   string
	Circuit *circuit.Circuit
	// TranStop is the .tran stop time (0 when absent).
	TranStop float64
	// Sources maps source names (e.g. "Va") to the driven node, for
	// result reporting.
	Sources map[string]circuit.NodeID
	// Breakpoints collects PWL corner times for the transient engine.
	Breakpoints []float64
}

// Parse reads a deck.
func Parse(r io.Reader) (*Deck, error) {
	d := &Deck{Circuit: circuit.New(), Sources: map[string]circuit.NodeID{}}
	models := map[string]device.Params{}

	// First pass: collect lines (handling + continuations), find .model
	// cards so device lines can reference them regardless of order.
	var lines []string
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		raw := strings.TrimRight(sc.Text(), " \t\r")
		if raw == "" {
			continue
		}
		if strings.HasPrefix(raw, "+") && len(lines) > 0 {
			lines[len(lines)-1] += " " + strings.TrimPrefix(raw, "+")
			continue
		}
		lines = append(lines, raw)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	for n, line := range lines {
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if strings.HasPrefix(fields[0], "*") {
			continue
		}
		if strings.EqualFold(fields[0], ".model") {
			if err := parseModel(fields, models); err != nil {
				return nil, fmt.Errorf("deck: line %d: %w", n+1, err)
			}
		}
	}

	for n, line := range lines {
		fields := strings.Fields(line)
		if len(fields) == 0 || strings.HasPrefix(fields[0], "*") {
			continue
		}
		head := strings.ToUpper(fields[0])
		var err error
		switch {
		case head == ".MODEL":
			// handled in the first pass
		case head == ".TITLE":
			d.Title = strings.Join(fields[1:], " ")
		case head == ".TRAN":
			if len(fields) < 2 {
				err = fmt.Errorf(".tran needs a stop time")
			} else {
				// Accept ".tran stop" or ".tran step stop" (step ignored —
				// the engine is adaptive).
				d.TranStop, err = Value(fields[len(fields)-1])
			}
		case head == ".END":
			// done
		case strings.HasPrefix(head, "V"):
			err = d.parseSource(fields, line)
		case strings.HasPrefix(head, "M"):
			err = d.parseMOSFET(fields, models)
		case strings.HasPrefix(head, "R"):
			err = d.parseTwoTerminal(fields, 'R')
		case strings.HasPrefix(head, "C"):
			err = d.parseTwoTerminal(fields, 'C')
		default:
			err = fmt.Errorf("unsupported card %q", fields[0])
		}
		if err != nil {
			return nil, fmt.Errorf("deck: line %d: %w", n+1, err)
		}
	}
	sort.Float64s(d.Breakpoints)
	return d, nil
}

// parseModel handles .model NAME TYPE key=value...
func parseModel(fields []string, models map[string]device.Params) error {
	if len(fields) < 3 {
		return fmt.Errorf(".model needs a name and a type")
	}
	name := strings.ToLower(fields[1])
	p := device.Params{Kind: device.Level1, Phi: 0.6, Alpha: 2}
	typ := strings.ToLower(fields[2])
	if typ != "nmos" && typ != "pmos" {
		return fmt.Errorf("model type %q (want nmos or pmos)", fields[2])
	}
	for _, kv := range fields[3:] {
		parts := strings.SplitN(kv, "=", 2)
		if len(parts) != 2 {
			return fmt.Errorf("bad model parameter %q", kv)
		}
		v, err := Value(parts[1])
		if err != nil {
			return fmt.Errorf("model parameter %s: %w", parts[0], err)
		}
		switch strings.ToUpper(parts[0]) {
		case "KP":
			p.KP = v
		case "VTO", "VT0":
			p.Vt0 = v
		case "LAMBDA":
			p.Lambda = v
		case "GAMMA":
			p.Gamma = v
		case "PHI":
			p.Phi = v
		case "ALPHA":
			p.Alpha = v
		case "LEVEL":
			if v == 2 {
				p.Kind = device.AlphaPower
			}
		default:
			return fmt.Errorf("unknown model parameter %q", parts[0])
		}
	}
	models[name] = p
	return nil
}

// parseSource handles V<name> node 0 <dc | PWL(...)>.
func (d *Deck) parseSource(fields []string, line string) error {
	if len(fields) < 4 {
		return fmt.Errorf("source needs name, two nodes and a value")
	}
	if fields[2] != "0" {
		return fmt.Errorf("sources must be ground-referenced (got %q)", fields[2])
	}
	node := d.Circuit.Node(fields[1])
	rest := strings.Join(fields[3:], " ")
	if i := strings.Index(strings.ToUpper(rest), "PWL"); i >= 0 {
		open := strings.Index(rest, "(")
		close := strings.LastIndex(rest, ")")
		if open < 0 || close <= open {
			return fmt.Errorf("malformed PWL in %q", line)
		}
		nums := strings.FieldsFunc(rest[open+1:close], func(r rune) bool {
			return r == ' ' || r == ',' || r == '\t'
		})
		if len(nums) < 4 || len(nums)%2 != 0 {
			return fmt.Errorf("PWL needs an even number (>=4) of values")
		}
		var pts []waveform.Point
		for k := 0; k+1 < len(nums); k += 2 {
			t, err := Value(nums[k])
			if err != nil {
				return fmt.Errorf("PWL time %q: %w", nums[k], err)
			}
			v, err := Value(nums[k+1])
			if err != nil {
				return fmt.Errorf("PWL value %q: %w", nums[k+1], err)
			}
			pts = append(pts, waveform.Point{T: t, V: v})
			d.Breakpoints = append(d.Breakpoints, t)
		}
		w, err := waveform.NewPWL(pts...)
		if err != nil {
			return err
		}
		d.Circuit.Drive(node, w.Eval)
	} else {
		v, err := Value(fields[3])
		if err != nil {
			return fmt.Errorf("source value %q: %w", fields[3], err)
		}
		d.Circuit.Drive(node, circuit.DC(v))
	}
	d.Sources[fields[0]] = node
	return nil
}

// parseMOSFET handles M<name> d g s b model W=.. L=..
func (d *Deck) parseMOSFET(fields []string, models map[string]device.Params) error {
	if len(fields) < 6 {
		return fmt.Errorf("MOSFET needs four nodes and a model")
	}
	modelName := strings.ToLower(fields[5])
	params, ok := models[modelName]
	if !ok {
		return fmt.Errorf("unknown model %q", fields[5])
	}
	typ := device.NMOS
	if strings.HasPrefix(modelName, "p") || params.Vt0 < 0 {
		typ = device.PMOS
	}
	m := device.MOSFET{Name: fields[0], Type: typ, Model: params, W: 1e-6, L: 1e-6}
	for _, kv := range fields[6:] {
		parts := strings.SplitN(kv, "=", 2)
		if len(parts) != 2 {
			return fmt.Errorf("bad device parameter %q", kv)
		}
		v, err := Value(parts[1])
		if err != nil {
			return fmt.Errorf("device parameter %s: %w", parts[0], err)
		}
		switch strings.ToUpper(parts[0]) {
		case "W":
			m.W = v
		case "L":
			m.L = v
		default:
			return fmt.Errorf("unknown device parameter %q", parts[0])
		}
	}
	nd := d.Circuit.Node(fields[1])
	ng := d.Circuit.Node(fields[2])
	ns := d.Circuit.Node(fields[3])
	nb := d.Circuit.Node(fields[4])
	d.Circuit.AddMOSFET(m, nd, ng, ns, nb)
	return nil
}

// parseTwoTerminal handles R/C cards.
func (d *Deck) parseTwoTerminal(fields []string, kind byte) error {
	if len(fields) < 4 {
		return fmt.Errorf("%c element needs two nodes and a value", kind)
	}
	a := d.Circuit.Node(fields[1])
	b := d.Circuit.Node(fields[2])
	v, err := Value(fields[3])
	if err != nil {
		return fmt.Errorf("%s value %q: %w", fields[0], fields[3], err)
	}
	if kind == 'R' {
		d.Circuit.AddResistor(fields[0], a, b, v)
	} else {
		d.Circuit.AddCapacitor(fields[0], a, b, v)
	}
	return nil
}

// Value parses a SPICE number with optional scale suffix: 100f, 1.5n, 2k,
// 3meg, 8u, plus plain scientific notation.
func Value(s string) (float64, error) {
	s = strings.TrimSpace(strings.ToLower(s))
	if s == "" {
		return 0, fmt.Errorf("empty value")
	}
	scale := 1.0
	switch {
	case strings.HasSuffix(s, "meg"):
		scale, s = 1e6, s[:len(s)-3]
	case strings.HasSuffix(s, "mil"):
		scale, s = 25.4e-6, s[:len(s)-3]
	default:
		if n := len(s) - 1; n >= 0 {
			switch s[n] {
			case 'f':
				scale, s = 1e-15, s[:n]
			case 'p':
				scale, s = 1e-12, s[:n]
			case 'n':
				scale, s = 1e-9, s[:n]
			case 'u':
				scale, s = 1e-6, s[:n]
			case 'm':
				scale, s = 1e-3, s[:n]
			case 'k':
				scale, s = 1e3, s[:n]
			case 'g':
				scale, s = 1e9, s[:n]
			case 't':
				scale, s = 1e12, s[:n]
			}
		}
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad number %q", s)
	}
	return v * scale, nil
}
