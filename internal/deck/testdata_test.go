package deck_test

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/deck"
	"repro/internal/spice"
)

// TestShippedDecksSimulate guards the example decks under testdata/ at the
// repository root: they must parse and run end to end.
func TestShippedDecksSimulate(t *testing.T) {
	root := filepath.Join("..", "..", "testdata")
	entries, err := os.ReadDir(root)
	if err != nil {
		t.Skipf("no testdata directory: %v", err)
	}
	found := 0
	for _, e := range entries {
		if filepath.Ext(e.Name()) != ".sp" {
			continue
		}
		found++
		path := filepath.Join(root, e.Name())
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		d, err := deck.Parse(f)
		f.Close()
		if err != nil {
			t.Errorf("%s: parse: %v", e.Name(), err)
			continue
		}
		if d.TranStop <= 0 {
			t.Errorf("%s: no .tran", e.Name())
			continue
		}
		eng, err := spice.New(d.Circuit, spice.DefaultOptions())
		if err != nil {
			t.Errorf("%s: engine: %v", e.Name(), err)
			continue
		}
		if _, err := eng.Transient(spice.TranSpec{Stop: d.TranStop, Breakpoints: d.Breakpoints}); err != nil {
			t.Errorf("%s: transient: %v", e.Name(), err)
		}
	}
	if found == 0 {
		t.Error("no .sp decks shipped in testdata/")
	}
}
