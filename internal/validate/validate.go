// Package validate reproduces the paper's Section-5 experimental validation:
// random multi-input configurations are evaluated both by the proximity
// model and by full transistor-level simulation, and the percentage errors
// are summarized (Table 5-1) and binned (Figure 5-1).
package validate

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/macromodel"
	"repro/internal/stats"
	"repro/internal/waveform"
)

// Spec configures the random-configuration sweep. The defaults mirror the
// paper: 100 configurations of a 3-input NAND with falling inputs, input
// fall times uniform in [50 ps, 2000 ps] and separations (of each later pin
// from pin a) uniform in [-500 ps, +500 ps].
type Spec struct {
	Pins  int
	Dir   waveform.Direction
	TTLo  float64
	TTHi  float64
	SepLo float64
	SepHi float64
	N     int
	Seed  int64
}

// DefaultSpec mirrors the paper's validation setup.
func DefaultSpec() Spec {
	return Spec{
		Pins:  3,
		Dir:   waveform.Falling,
		TTLo:  50e-12,
		TTHi:  2000e-12,
		SepLo: -500e-12,
		SepHi: 500e-12,
		N:     100,
		Seed:  19951010, // the report's date; any fixed seed reproduces
	}
}

// Sample is one configuration with model and golden measurements.
type Sample struct {
	TTs  []float64 // per pin
	Seps []float64 // per pin, crossing time relative to pin 0

	ModelDelay, ActualDelay float64
	ModelTT, ActualTT       float64
	DelayErrPct, TTErrPct   float64
	Dominant                int
}

// Comparison aggregates a sweep.
type Comparison struct {
	Spec    Spec
	Samples []Sample
}

// DelayErrors returns the per-sample delay errors in percent.
func (c *Comparison) DelayErrors() []float64 {
	out := make([]float64, len(c.Samples))
	for i, s := range c.Samples {
		out[i] = s.DelayErrPct
	}
	return out
}

// TTErrors returns the per-sample output-transition-time errors in percent.
func (c *Comparison) TTErrors() []float64 {
	out := make([]float64, len(c.Samples))
	for i, s := range c.Samples {
		out[i] = s.TTErrPct
	}
	return out
}

// DelaySummary and TTSummary are the Table 5-1 columns.
func (c *Comparison) DelaySummary() stats.Summary { return stats.Summarize(c.DelayErrors()) }
func (c *Comparison) TTSummary() stats.Summary    { return stats.Summarize(c.TTErrors()) }

// Run executes the sweep: for each random configuration the proximity model
// (calc) and the transistor-level simulation (sim) measure delay — both
// relative to the model's dominant input — and output transition time.
func Run(calc *core.Calculator, sim *macromodel.GateSim, spec Spec) (*Comparison, error) {
	if spec.Pins < 2 || spec.Pins > sim.Cell.N() {
		return nil, fmt.Errorf("validate: pins=%d out of range for %d-input cell", spec.Pins, sim.Cell.N())
	}
	if spec.N < 1 {
		return nil, fmt.Errorf("validate: need at least one sample")
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	cmp := &Comparison{Spec: spec}

	for i := 0; i < spec.N; i++ {
		tts := make([]float64, spec.Pins)
		seps := make([]float64, spec.Pins)
		for p := range tts {
			tts[p] = spec.TTLo + rng.Float64()*(spec.TTHi-spec.TTLo)
			if p > 0 {
				seps[p] = spec.SepLo + rng.Float64()*(spec.SepHi-spec.SepLo)
			}
		}
		s, err := RunOne(calc, sim, spec.Dir, tts, seps)
		if err != nil {
			return nil, fmt.Errorf("validate: sample %d (tts=%v seps=%v): %w", i, tts, seps, err)
		}
		cmp.Samples = append(cmp.Samples, *s)
	}
	return cmp, nil
}

// RunOne evaluates a single configuration. tts[p] is pin p's transition
// time; seps[p] is pin p's measurement-crossing time relative to pin 0.
func RunOne(calc *core.Calculator, sim *macromodel.GateSim, dir waveform.Direction,
	tts, seps []float64) (*Sample, error) {
	if len(tts) != len(seps) {
		return nil, fmt.Errorf("validate: tts/seps length mismatch")
	}
	events := make([]core.InputEvent, len(tts))
	stims := make([]macromodel.PinStim, len(tts))
	for p := range tts {
		events[p] = core.InputEvent{Pin: p, Dir: dir, TT: tts[p], Cross: seps[p]}
		stims[p] = macromodel.PinStim{Pin: p, Dir: dir, TT: tts[p], Cross: seps[p]}
	}
	model, err := calc.Evaluate(events)
	if err != nil {
		return nil, fmt.Errorf("model: %w", err)
	}
	run, err := sim.Run(stims)
	if err != nil {
		return nil, fmt.Errorf("simulate: %w", err)
	}
	// Measure the golden delay from the SAME reference input the model
	// chose as dominant.
	domIdx := 0
	for k, e := range events {
		if e.Pin == model.Dominant {
			domIdx = k
		}
	}
	actualDelay, err := run.DelayFrom(domIdx)
	if err != nil {
		return nil, fmt.Errorf("golden delay: %w", err)
	}
	actualTT, err := run.OutputTT()
	if err != nil {
		return nil, fmt.Errorf("golden transition time: %w", err)
	}
	s := &Sample{
		TTs:         append([]float64(nil), tts...),
		Seps:        append([]float64(nil), seps...),
		ModelDelay:  model.Delay,
		ActualDelay: actualDelay,
		ModelTT:     model.OutTT,
		ActualTT:    actualTT,
		Dominant:    model.Dominant,
	}
	if actualDelay != 0 {
		s.DelayErrPct = (model.Delay - actualDelay) / actualDelay * 100
	}
	if actualTT != 0 {
		s.TTErrPct = (model.OutTT - actualTT) / actualTT * 100
	}
	return s, nil
}
