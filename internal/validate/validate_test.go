package validate_test

import (
	"math"
	"sync"
	"testing"

	"repro/internal/cells"
	"repro/internal/core"
	"repro/internal/macromodel"
	"repro/internal/spice"
	"repro/internal/validate"
	"repro/internal/vtc"
	"repro/internal/waveform"
)

var (
	rigOnce sync.Once
	rigSim  *macromodel.GateSim
	rigCalc *core.Calculator
	rigErr  error
)

func rig(t *testing.T) (*core.Calculator, *macromodel.GateSim) {
	t.Helper()
	rigOnce.Do(func() {
		cell := cells.MustNew(cells.Nand, 3, cells.DefaultProcess(), cells.DefaultGeometry())
		fam, err := vtc.Extract(cell, spice.DefaultOptions(), 0.02)
		if err != nil {
			rigErr = err
			return
		}
		rigSim = macromodel.NewGateSim(cell, spice.DefaultOptions(), fam.Thresholds)
		model, err := macromodel.CharacterizeGate(rigSim, macromodel.CoarseCharSpec())
		if err != nil {
			rigErr = err
			return
		}
		rigCalc = core.NewCalculator(model)
		rigErr = core.CalibrateCorrection(rigCalc, rigSim)
	})
	if rigErr != nil {
		t.Fatal(rigErr)
	}
	return rigCalc, rigSim
}

func TestSpecValidation(t *testing.T) {
	calc, sim := rig(t)
	spec := validate.DefaultSpec()
	spec.Pins = 9
	if _, err := validate.Run(calc, sim, spec); err == nil {
		t.Error("pins beyond the cell accepted")
	}
	spec = validate.DefaultSpec()
	spec.N = 0
	if _, err := validate.Run(calc, sim, spec); err == nil {
		t.Error("zero samples accepted")
	}
}

func TestDeterministicSeeding(t *testing.T) {
	calc, sim := rig(t)
	spec := validate.DefaultSpec()
	spec.N = 3
	a, err := validate.Run(calc, sim, spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := validate.Run(calc, sim, spec)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Samples {
		if a.Samples[i].DelayErrPct != b.Samples[i].DelayErrPct {
			t.Fatalf("same seed produced different sample %d", i)
		}
		for p := range a.Samples[i].TTs {
			if a.Samples[i].TTs[p] != b.Samples[i].TTs[p] {
				t.Fatalf("same seed produced different workload at sample %d", i)
			}
		}
	}
	spec.Seed++
	c, err := validate.Run(calc, sim, spec)
	if err != nil {
		t.Fatal(err)
	}
	if c.Samples[0].TTs[0] == a.Samples[0].TTs[0] {
		t.Error("different seed produced identical workload")
	}
}

func TestRunOneMeasuresBothSides(t *testing.T) {
	calc, sim := rig(t)
	s, err := validate.RunOne(calc, sim, waveform.Falling,
		[]float64{300e-12, 150e-12, 600e-12},
		[]float64{0, 100e-12, -80e-12})
	if err != nil {
		t.Fatal(err)
	}
	if s.ModelDelay <= 0 || s.ActualDelay <= 0 {
		t.Errorf("non-positive delays: model %g actual %g", s.ModelDelay, s.ActualDelay)
	}
	if s.ModelTT <= 0 || s.ActualTT <= 0 {
		t.Errorf("non-positive transition times")
	}
	wantErr := (s.ModelDelay - s.ActualDelay) / s.ActualDelay * 100
	if math.Abs(s.DelayErrPct-wantErr) > 1e-9 {
		t.Errorf("error computation inconsistent")
	}
	if s.Dominant < 0 || s.Dominant > 2 {
		t.Errorf("dominant pin %d out of range", s.Dominant)
	}
}

func TestRunOneLengthMismatch(t *testing.T) {
	calc, sim := rig(t)
	if _, err := validate.RunOne(calc, sim, waveform.Falling, []float64{1e-10}, []float64{0, 0}); err == nil {
		t.Error("mismatched slice lengths accepted")
	}
}

func TestComparisonAccessors(t *testing.T) {
	calc, sim := rig(t)
	spec := validate.DefaultSpec()
	spec.N = 4
	cmp, err := validate.Run(calc, sim, spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(cmp.DelayErrors()) != 4 || len(cmp.TTErrors()) != 4 {
		t.Error("error slices wrong length")
	}
	ds := cmp.DelaySummary()
	if ds.N != 4 {
		t.Errorf("summary N = %d", ds.N)
	}
	// Errors should be bounded sanely even on the coarse grid.
	if math.Abs(ds.Mean) > 25 {
		t.Errorf("coarse-grid mean delay error %.1f%% implausible", ds.Mean)
	}
}

// TestPositiveDelaysAcrossSweep: the Section-2 threshold policy guarantees
// positive model AND golden delays for every random configuration.
func TestPositiveDelaysAcrossSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep in -short mode")
	}
	calc, sim := rig(t)
	spec := validate.DefaultSpec()
	spec.N = 15
	cmp, err := validate.Run(calc, sim, spec)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range cmp.Samples {
		if s.ModelDelay <= 0 || s.ActualDelay <= 0 {
			t.Errorf("sample %d: negative delay (model %.1fps actual %.1fps) — threshold policy violated",
				i, s.ModelDelay*1e12, s.ActualDelay*1e12)
		}
	}
}
