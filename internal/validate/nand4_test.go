package validate_test

import (
	"testing"

	"repro/internal/cells"
	"repro/internal/core"
	"repro/internal/macromodel"
	"repro/internal/spice"
	"repro/internal/validate"
	"repro/internal/vtc"
	"repro/internal/waveform"
)

// TestNAND4FourInputProximity exercises Algorithm ProximityDelay with up to
// four inputs inside the window — the iterative composition beyond the
// paper's three-input validation.
func TestNAND4FourInputProximity(t *testing.T) {
	if testing.Short() {
		t.Skip("NAND4 sweep in -short mode")
	}
	cell := cells.MustNew(cells.Nand, 4, cells.DefaultProcess(), cells.DefaultGeometry())
	fam, err := vtc.Extract(cell, spice.DefaultOptions(), 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if len(fam.Curves) != 15 {
		t.Fatalf("NAND4 family has %d curves, want 15", len(fam.Curves))
	}
	sim := macromodel.NewGateSim(cell, spice.DefaultOptions(), fam.Thresholds)
	model, err := macromodel.CharacterizeGate(sim, macromodel.CoarseCharSpec())
	if err != nil {
		t.Fatal(err)
	}
	calc := &core.Calculator{Model: model, Dual: core.NewSimBackend(sim.Clone())}
	if err := core.CalibrateCorrection(calc, sim); err != nil {
		t.Fatal(err)
	}

	spec := validate.Spec{
		Pins:  4,
		Dir:   waveform.Falling,
		TTLo:  50e-12,
		TTHi:  1500e-12,
		SepLo: -300e-12,
		SepHi: 300e-12,
		N:     10,
		Seed:  4242,
	}
	cmp, err := validate.Run(calc, sim, spec)
	if err != nil {
		t.Fatal(err)
	}
	ds := cmp.DelaySummary()
	t.Logf("NAND4 falling: delay err mean=%.2f%% std=%.2f%% [%.2f, %.2f]",
		ds.Mean, ds.StdDev, ds.Min, ds.Max)
	if ds.Mean > 10 || ds.Mean < -10 {
		t.Errorf("NAND4 mean delay error %.2f%% too large", ds.Mean)
	}
	if ds.Max > 35 || ds.Min < -35 {
		t.Errorf("NAND4 delay error extremes out of range: [%.2f, %.2f]", ds.Min, ds.Max)
	}
	// At least one sample should genuinely use 3+ inputs in the window.
	deep := 0
	for _, s := range cmp.Samples {
		evs := make([]core.InputEvent, 4)
		for p := range evs {
			evs[p] = core.InputEvent{Pin: p, Dir: spec.Dir, TT: s.TTs[p], Cross: s.Seps[p]}
		}
		res, err := calc.Evaluate(evs)
		if err != nil {
			t.Fatal(err)
		}
		if res.UsedDelay >= 3 {
			deep++
		}
	}
	if deep == 0 {
		t.Error("no sample engaged three or more inputs — sweep does not exercise the iteration")
	}
}
