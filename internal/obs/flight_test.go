package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"
)

// wideEventFor derives a wide event whose fields are all functions of one
// integer, so a torn record (fields from two different writers) is
// detectable by re-deriving from the ID.
func wideEventFor(k int) WideEvent {
	return WideEvent{
		ID:             fmt.Sprintf("req-%08d", k),
		TraceID:        fmt.Sprintf("%032x", k),
		Endpoint:       fmt.Sprintf("ep-%d", k%5),
		Status:         200 + k%300,
		Wall:           time.Duration(k) * time.Microsecond,
		GatesEvaluated: k,
		Vectors:        k % 17,
	}
}

// checkConsistent reports whether ev's fields all derive from the same k.
// Errors go through t.Errorf (never FailNow), so it is safe from reader
// goroutines.
func checkConsistent(t *testing.T, ev WideEvent) bool {
	t.Helper()
	var k int
	if _, err := fmt.Sscanf(ev.ID, "req-%d", &k); err != nil {
		t.Errorf("unparseable event id %q", ev.ID)
		return false
	}
	want := wideEventFor(k)
	want.Seq = ev.Seq
	if ev != want {
		t.Errorf("torn wide event: got %+v, want %+v", ev, want)
		return false
	}
	return true
}

// TestFlightRecorderConcurrentWraparound races many writers around a tiny
// ring while readers snapshot continuously: no torn records, and sequence
// numbers stay unique and within range. Run under -race in CI.
func TestFlightRecorderConcurrentWraparound(t *testing.T) {
	const (
		ringSize  = 8 // tiny: every writer collides on wraparound constantly
		writers   = 8
		perWriter = 2000
	)
	f := NewFlightRecorder(ringSize)
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Concurrent readers: every snapshot must be internally consistent even
	// mid-race.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				seen := map[uint64]bool{}
				for _, ev := range f.Snapshot() {
					if !checkConsistent(t, ev) {
						return
					}
					if seen[ev.Seq] {
						t.Errorf("duplicate seq %d in one snapshot", ev.Seq)
						return
					}
					seen[ev.Seq] = true
				}
			}
		}()
	}
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				f.Record(wideEventFor(w*perWriter + i))
			}
		}(w)
	}
	// Release the readers once every write has landed, then join everyone.
	for f.cursor.Load() < uint64(writers*perWriter) {
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()

	if got := f.Len(); got != ringSize {
		t.Fatalf("Len() = %d, want full ring %d", got, ringSize)
	}
	snap := f.Snapshot()
	if len(snap) != ringSize {
		t.Fatalf("snapshot has %d events, want %d", len(snap), ringSize)
	}
	// Newest-first ordering with strictly decreasing seq; every slot's final
	// occupant must carry a seq from the final wraparound generation — a
	// stale writer that lost the race must not have clobbered a newer record.
	prev := snap[0].Seq
	for _, ev := range snap[1:] {
		if ev.Seq >= prev {
			t.Fatalf("snapshot not strictly newest-first: %d then %d", prev, ev.Seq)
		}
		prev = ev.Seq
	}
	// Every writer finished, so each slot must hold the largest seq that
	// mapped to it — one of the final ringSize sequence numbers. Anything
	// older means a stale writer clobbered a newer record.
	total := uint64(writers * perWriter)
	for _, ev := range snap {
		checkConsistent(t, ev)
		if ev.Seq <= total-uint64(ringSize) {
			t.Errorf("slot kept stale seq %d (total %d, ring %d): an old writer clobbered a newer record",
				ev.Seq, total, ringSize)
		}
	}
}

// TestFlightRecorderGet: id lookup returns the record, newest wins on a
// re-sent id, misses report false.
func TestFlightRecorderGet(t *testing.T) {
	f := NewFlightRecorder(4)
	f.Record(WideEvent{ID: "a", Status: 200})
	f.Record(WideEvent{ID: "b", Status: 404})
	f.Record(WideEvent{ID: "a", Status: 500}) // client re-sent the id

	ev, ok := f.Get("a")
	if !ok || ev.Status != 500 {
		t.Fatalf("Get(a) = %+v, %v; want newest (status 500)", ev, ok)
	}
	if _, ok := f.Get("nope"); ok {
		t.Fatal("Get(nope) reported a record")
	}
	if ev, ok := f.Get("b"); !ok || ev.Status != 404 {
		t.Fatalf("Get(b) = %+v, %v", ev, ok)
	}
}

// TestFlightRecorderNil: the disabled recorder no-ops everywhere.
func TestFlightRecorderNil(t *testing.T) {
	var f *FlightRecorder
	if seq := f.Record(WideEvent{ID: "x"}); seq != 0 {
		t.Fatalf("nil Record returned %d", seq)
	}
	if f.Len() != 0 || f.Cap() != 0 || f.Snapshot() != nil {
		t.Fatal("nil recorder not inert")
	}
	if _, ok := f.Get("x"); ok {
		t.Fatal("nil Get reported a record")
	}
}

// TestWideEventJSONRoundTrip: the marshal shape (wallMs + phasesMs map)
// restores losslessly, including the PhaseTimes that json:"-" hides from the
// default marshaler.
func TestWideEventJSONRoundTrip(t *testing.T) {
	ev := wideEventFor(42)
	ev.Seq = 7
	ev.AdmissionWait = 250 * time.Microsecond
	ev.Phases[PhaseEval] = 3 * time.Millisecond
	ev.Phases[PhaseSchedule] = 10 * time.Microsecond
	ev.TraceRetained = true
	ev.RetainReason = "slow"

	data, err := json.Marshal(ev)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(data, []byte(`"wallMs"`)) || !bytes.Contains(data, []byte(`"phasesMs"`)) {
		t.Fatalf("marshal missing wallMs/phasesMs: %s", data)
	}
	var back WideEvent
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back != ev {
		t.Fatalf("round trip:\n got %+v\nwant %+v", back, ev)
	}
}

// TestWideLog: one JSON line per event, parseable, in write order; nil log
// discards.
func TestWideLog(t *testing.T) {
	var buf bytes.Buffer
	l := NewWideLog(&buf)
	for k := 0; k < 3; k++ {
		ev := wideEventFor(k)
		if err := l.Write(&ev); err != nil {
			t.Fatal(err)
		}
	}
	sc := bufio.NewScanner(&buf)
	n := 0
	for sc.Scan() {
		var ev WideEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("line %d: %v", n, err)
		}
		checkConsistent(t, ev)
		n++
	}
	if n != 3 {
		t.Fatalf("wide log has %d lines, want 3", n)
	}
	if nl := NewWideLog(nil); nl != nil {
		t.Fatal("NewWideLog(nil) should return the nil discarding log")
	}
	var nilLog *WideLog
	ev := wideEventFor(0)
	if err := nilLog.Write(&ev); err != nil {
		t.Fatalf("nil wide log Write: %v", err)
	}
}

// TestBoundedTrace: the event cap drops beyond the limit and counts the
// drops; the trace id marker event makes artifacts self-identifying.
func TestBoundedTrace(t *testing.T) {
	tr := NewBoundedTrace(3)
	tr.SetTraceID("0af7651916cd43dd8448eb211c80319c")
	if got := tr.ID(); got != "0af7651916cd43dd8448eb211c80319c" {
		t.Fatalf("ID() = %q", got)
	}
	for i := 0; i < 5; i++ {
		tr.Begin(0, 0, "t", "span").End()
	}
	if tr.Dropped() != 3 { // 1 marker + 2 spans stored, 3 spans dropped
		t.Fatalf("Dropped() = %d, want 3", tr.Dropped())
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	evs, err := ValidateChromeTrace(buf.Bytes())
	if err != nil {
		t.Fatalf("bounded trace invalid: %v", err)
	}
	found := false
	for _, e := range evs {
		if e.Name == "trace_id" && e.Args["traceId"] == "0af7651916cd43dd8448eb211c80319c" {
			found = true
		}
	}
	if !found {
		t.Fatal("trace artifact does not carry its trace id marker")
	}
}
