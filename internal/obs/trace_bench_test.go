package obs

import (
	"fmt"
	"testing"
)

func BenchmarkTraceVectorShape(b *testing.B) {
	b.ReportAllocs()
	tr := NewBoundedTrace(8192)
	for i := 0; i < b.N; i++ {
		pid := int64(i % 32)
		tr.NameProcess(pid, fmt.Sprintf("vector %d", pid))
		tr.NameThread(pid, 0, "schedule")
		sp := tr.Begin(pid, 0, "sta", "analyze").Arg("mode", "prox").Arg("events", 4)
		c := tr.Begin(pid, 0, "sta", "cones")
		c.End()
		s := tr.Begin(pid, 0, "sta", "schedule")
		s.End()
		for li := 0; li < 3; li++ {
			name := fmt.Sprintf("level %d", li)
			l := tr.Begin(pid, 0, "sta", name).Arg("gates", 1)
			l.End()
			cm := tr.Begin(pid, 0, "sta", "commit")
			cm.End()
		}
		sp.End()
		if tr.Len() >= 8000 {
			tr = NewBoundedTrace(8192)
		}
	}
}
