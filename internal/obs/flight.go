// Flight recorder: the per-request wide-event ring that makes a single
// production request explainable after the fact.
//
// Aggregate telemetry (histograms, counters) answers "how is the service
// doing"; it cannot answer "request abc123 took 900ms at 02:14 — why?". The
// flight recorder answers that question by keeping, for the last N requests,
// one WideEvent each: identifiers (request id, W3C trace id), the endpoint
// and status, the full engine phase breakdown, and every workload counter
// the engine reported. The ring is fixed-size and lock-cheap — an atomic
// cursor claims a slot, a per-slot mutex serializes the (rare) same-slot
// collision under wraparound, and recording copies a flat struct into
// preallocated storage, so the hot path allocates nothing.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// WideEvent is one request's complete flight record: everything the service
// knew about the request when it finished, flattened into a single struct.
// It is the unit of the wide-event logging pattern — one record per request
// carrying all dimensions, so any slice (endpoint, status, phase, counter)
// can be queried after the fact without having pre-aggregated it.
//
// The struct is flat and pointer-light on purpose: recording it into the
// ring is a struct copy (string fields copy headers, not bytes), and a
// half-written record can be detected by the per-slot sequence discipline
// rather than by chasing pointers.
type WideEvent struct {
	// Seq is the recorder-assigned monotone sequence number (1-based).
	// Within one ring slot, successive occupants carry strictly increasing
	// Seq — the torn-write test's invariant.
	Seq uint64 `json:"seq"`
	// ID is the request id (X-Request-Id, honored or minted).
	ID string `json:"id"`
	// TraceID is the W3C trace-context trace id (32 lowercase hex) the
	// request carried or was minted; engine spans recorded for the request
	// carry the same id.
	TraceID string `json:"traceId,omitempty"`
	// Endpoint is the logical endpoint name ("analyze", "analyze:batch", …).
	Endpoint string `json:"endpoint"`
	Method   string `json:"method,omitempty"`
	Path     string `json:"path,omitempty"`
	Status   int    `json:"status"`
	// Start is when the request entered instrumentation.
	Start time.Time `json:"start"`
	// Wall is the full request latency.
	Wall time.Duration `json:"wallNs"`
	// AdmissionWait is time spent acquiring admission tokens before the
	// handler proper ran.
	AdmissionWait time.Duration `json:"admissionWaitNs"`

	// Netlist is the compiled-handle id the request named, when it named one.
	Netlist string `json:"netlist,omitempty"`
	// CacheHit reports whether the named netlist handle was resident (a miss
	// is a 404 — the client must re-upload).
	CacheHit bool `json:"cacheHit,omitempty"`

	// Phases is the engine's per-phase wall breakdown summed over every
	// analysis the request ran (batch requests fold all vectors in).
	Phases PhaseTimes `json:"-"`

	// Engine workload counters, summed across the request's analyses.
	Vectors          int `json:"vectors,omitempty"`
	GatesScheduled   int `json:"gatesScheduled,omitempty"`
	GatesEvaluated   int `json:"gatesEvaluated,omitempty"`
	GatesReused      int `json:"gatesReused,omitempty"`
	GatesReevaluated int `json:"gatesReevaluated,omitempty"`
	ProximityEvals   int `json:"proximityEvals,omitempty"`
	SingleArcEvals   int `json:"singleArcEvals,omitempty"`
	PulsesFiltered   int `json:"pulsesFiltered,omitempty"`
	PulsesDegraded   int `json:"pulsesDegraded,omitempty"`
	PulsesUnjudged   int `json:"pulsesUnjudged,omitempty"`
	MCSamples        int `json:"mcSamples,omitempty"`

	// TraceRetained reports that the request's full span trace was kept
	// (tail sampling: slow, errored, or explicitly flagged) and is servable
	// from the debug endpoint; RetainReason says which rule fired.
	TraceRetained bool   `json:"traceRetained,omitempty"`
	RetainReason  string `json:"retainReason,omitempty"`
	// TraceDropped counts span events the bounded per-request recorder had
	// to drop (0 = the retained trace is complete).
	TraceDropped int `json:"traceDropped,omitempty"`
	// Error is the leading bytes of a non-2xx response body — enough to
	// reconstruct what the client was told without scraping logs.
	Error string `json:"error,omitempty"`
}

// wideEventAlias avoids MarshalJSON recursion.
type wideEventAlias WideEvent

// MarshalJSON renders the event with the phase breakdown as a compact
// {"phase":ms} map (zero phases elided) and the durations additionally in
// milliseconds — the shape both the wide log and the debug endpoint serve.
func (ev WideEvent) MarshalJSON() ([]byte, error) {
	phases := map[string]float64{}
	for _, p := range Phases() {
		if d := ev.Phases[p]; d > 0 {
			phases[p.String()] = float64(d) / float64(time.Millisecond)
		}
	}
	return json.Marshal(struct {
		wideEventAlias
		WallMs          float64            `json:"wallMs"`
		AdmissionWaitMs float64            `json:"admissionWaitMs,omitempty"`
		PhasesMs        map[string]float64 `json:"phasesMs,omitempty"`
	}{
		wideEventAlias:  wideEventAlias(ev),
		WallMs:          float64(ev.Wall) / float64(time.Millisecond),
		AdmissionWaitMs: float64(ev.AdmissionWait) / float64(time.Millisecond),
		PhasesMs:        phases,
	})
}

// UnmarshalJSON restores an event from the MarshalJSON shape (the ring never
// round-trips through JSON; this exists for wide-log consumers and tests).
func (ev *WideEvent) UnmarshalJSON(data []byte) error {
	var aux struct {
		wideEventAlias
		PhasesMs map[string]float64 `json:"phasesMs"`
	}
	if err := json.Unmarshal(data, &aux); err != nil {
		return err
	}
	*ev = WideEvent(aux.wideEventAlias)
	for _, p := range Phases() {
		if ms, ok := aux.PhasesMs[p.String()]; ok {
			ev.Phases[p] = time.Duration(ms * float64(time.Millisecond))
		}
	}
	return nil
}

// FlightRecorder is the fixed-size wide-event ring. Writers never block each
// other except on the same slot under wraparound (ring-size writes apart);
// readers copy slots under the per-slot lock, so a snapshot never observes a
// torn record.
//
// A nil *FlightRecorder is the disabled recorder: Record and the query
// methods no-op, mirroring the nil *Trace convention.
type FlightRecorder struct {
	cursor atomic.Uint64
	slots  []flightSlot
}

type flightSlot struct {
	mu sync.Mutex
	ev WideEvent // ev.Seq == 0 marks a never-written slot
}

// DefaultFlightSize is the ring capacity when the caller does not choose one:
// enough to cover minutes of busy traffic without mattering for memory.
const DefaultFlightSize = 1024

// NewFlightRecorder builds a ring holding the last size wide events
// (size <= 0 picks DefaultFlightSize).
func NewFlightRecorder(size int) *FlightRecorder {
	if size <= 0 {
		size = DefaultFlightSize
	}
	return &FlightRecorder{slots: make([]flightSlot, size)}
}

// Cap returns the ring capacity.
func (f *FlightRecorder) Cap() int {
	if f == nil {
		return 0
	}
	return len(f.slots)
}

// Len returns how many events the ring currently holds.
func (f *FlightRecorder) Len() int {
	if f == nil {
		return 0
	}
	n := f.cursor.Load()
	if n > uint64(len(f.slots)) {
		return len(f.slots)
	}
	return int(n)
}

// Record assigns the event its sequence number and stores it, overwriting
// the oldest record once the ring is full. Returns the assigned sequence.
// Safe for any number of concurrent callers; a slower writer that lost the
// wraparound race never clobbers a newer record (Seq is compared under the
// slot lock), which keeps per-slot sequences strictly increasing.
func (f *FlightRecorder) Record(ev WideEvent) uint64 {
	if f == nil {
		return 0
	}
	seq := f.cursor.Add(1)
	ev.Seq = seq
	s := &f.slots[(seq-1)%uint64(len(f.slots))]
	s.mu.Lock()
	if ev.Seq > s.ev.Seq {
		s.ev = ev
	}
	s.mu.Unlock()
	return seq
}

// Snapshot copies every live record, newest first.
func (f *FlightRecorder) Snapshot() []WideEvent {
	if f == nil {
		return nil
	}
	out := make([]WideEvent, 0, len(f.slots))
	for i := range f.slots {
		s := &f.slots[i]
		s.mu.Lock()
		if s.ev.Seq != 0 {
			out = append(out, s.ev)
		}
		s.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq > out[j].Seq })
	return out
}

// Get returns the record for a request id, if the ring still holds it. When
// a client re-sent the same X-Request-Id, the newest record wins.
func (f *FlightRecorder) Get(id string) (WideEvent, bool) {
	if f == nil {
		return WideEvent{}, false
	}
	var best WideEvent
	for i := range f.slots {
		s := &f.slots[i]
		s.mu.Lock()
		if s.ev.Seq != 0 && s.ev.ID == id && s.ev.Seq > best.Seq {
			best = s.ev
		}
		s.mu.Unlock()
	}
	return best, best.Seq != 0
}

// ---- wide-event log ---------------------------------------------------------

// WideLog appends one JSON line per wide event to a writer (the -wide-log
// file): the durable, grep-able twin of the in-memory ring. A nil *WideLog
// discards, mirroring the nil-recorder convention.
type WideLog struct {
	mu sync.Mutex
	w  io.Writer
}

// NewWideLog wraps an append-only writer. The caller owns closing it.
func NewWideLog(w io.Writer) *WideLog {
	if w == nil {
		return nil
	}
	return &WideLog{w: w}
}

// Write appends one event as a single JSON line. Serialized under a mutex so
// concurrent requests never interleave bytes mid-line.
func (l *WideLog) Write(ev *WideEvent) error {
	if l == nil {
		return nil
	}
	data, err := json.Marshal(ev)
	if err != nil {
		return fmt.Errorf("obs: wide event marshal: %w", err)
	}
	data = append(data, '\n')
	l.mu.Lock()
	defer l.mu.Unlock()
	_, err = l.w.Write(data)
	return err
}
