package obs

import (
	"encoding/json"
	"fmt"
	"sort"
)

// ValidateChromeTrace decodes a Chrome trace_event JSON document and checks
// it is structurally sound: the wrapper object parses, every event carries a
// known phase type, complete events have non-negative timestamps and
// durations, and — per (pid, tid) row — complete events are properly nested
// (an event that starts inside another ends inside it too), which is the
// invariant trace viewers rely on to build flame-graph stacks. Returns the
// decoded events for further inspection.
func ValidateChromeTrace(data []byte) ([]TraceEvent, error) {
	var doc struct {
		TraceEvents []TraceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("obs: trace does not decode: %w", err)
	}
	byRow := map[[2]int64][]TraceEvent{}
	for i, e := range doc.TraceEvents {
		switch e.Ph {
		case "X", "i", "M", "B", "E", "C":
		default:
			return nil, fmt.Errorf("obs: event %d (%q): unknown phase type %q", i, e.Name, e.Ph)
		}
		if e.Name == "" {
			return nil, fmt.Errorf("obs: event %d has an empty name", i)
		}
		if e.Ph == "M" {
			continue
		}
		if e.TS < 0 {
			return nil, fmt.Errorf("obs: event %d (%q): negative timestamp %g", i, e.Name, e.TS)
		}
		if e.Ph == "X" {
			if e.Dur < 0 {
				return nil, fmt.Errorf("obs: event %d (%q): negative duration %g", i, e.Name, e.Dur)
			}
			byRow[[2]int64{e.PID, e.TID}] = append(byRow[[2]int64{e.PID, e.TID}], e)
		}
	}
	for row, evs := range byRow {
		if err := checkNesting(evs); err != nil {
			return nil, fmt.Errorf("obs: pid=%d tid=%d: %w", row[0], row[1], err)
		}
	}
	return doc.TraceEvents, nil
}

// checkNesting verifies that complete events on one row either nest or are
// disjoint — partial overlap would render as a corrupt stack. A small
// timestamp slop absorbs the microsecond rounding WriteJSON applies.
func checkNesting(evs []TraceEvent) error {
	const slop = 0.002 // µs; events are serialized with 3 decimal places
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].TS != evs[j].TS {
			return evs[i].TS < evs[j].TS
		}
		return evs[i].Dur > evs[j].Dur // outer span first at equal start
	})
	var stack []TraceEvent
	for _, e := range evs {
		for len(stack) > 0 && e.TS >= stack[len(stack)-1].TS+stack[len(stack)-1].Dur-slop {
			stack = stack[:len(stack)-1]
		}
		if len(stack) > 0 {
			outer := stack[len(stack)-1]
			if e.TS+e.Dur > outer.TS+outer.Dur+slop {
				return fmt.Errorf("event %q [%g,%g] partially overlaps %q [%g,%g]",
					e.Name, e.TS, e.TS+e.Dur, outer.Name, outer.TS, outer.TS+outer.Dur)
			}
		}
		stack = append(stack, e)
	}
	return nil
}
