// Package obs is the engine's zero-dependency observability layer: cheap
// always-on phase timers that extend sta.Result.Stats, and an opt-in span
// recorder that emits Chrome trace_event JSON (chrome://tracing, Perfetto).
//
// The design constraint is that the disabled path must cost nothing the hot
// path can feel: a nil *Trace is a valid, fully inert recorder — every
// method on it is a nil-check and a return — so the engine threads a
// possibly-nil *Trace through unconditionally and never branches on a
// separate "enabled" flag. Phase accounting (PhaseTimes) is a plain
// fixed-size array of duration accumulators with no locking; each analyze
// owns its own copy inside Result.Stats.
package obs

import (
	"fmt"
	"io"
	"strconv"
	"sync"
	"time"
)

// Phase identifies one accounting bucket of an analyze call. The buckets
// are disjoint wall-clock intervals, so for any single-threaded view their
// sum is bounded by the analyze wall time (asserted by the difftest stats
// oracle).
type Phase int

const (
	// PhaseCompile covers the Compile() call an analyze entry point makes:
	// ~zero when the memoized handle is reused, the full levelization cost
	// when the circuit changed.
	PhaseCompile Phase = iota
	// PhaseLevelize is the topological-sort portion inside a cold compile
	// (a sub-interval of PhaseCompile; excluded from Sum totals).
	PhaseLevelize
	// PhaseCones is time spent waiting for the per-PI fanout cone tables
	// (paid by the first sparse analyze on a handle, ~zero afterwards).
	PhaseCones
	// PhaseSchedule is the per-vector sparse schedule construction: cone
	// union, level bucketing, netlist-order sort.
	PhaseSchedule
	// PhaseSeed is stimulus validation and primary-input arrival seeding.
	PhaseSeed
	// PhaseEval is the per-level gate evaluation wall time, summed over
	// levels (the parallel region).
	PhaseEval
	// PhaseCommit is the serial netlist-order arrival commit, summed over
	// levels.
	PhaseCommit
	// PhaseGlitch is the Section-6 pulse-filtering work inside the commit
	// walk: detecting opposite-edge arrival pairs on a gate's output and
	// evaluating the inertial-delay macromodel. It is carved out of the
	// commit interval (PhaseCommit subtracts it), so the disjointness
	// invariant (Sum() <= Wall) holds. Zero unless Options.PulseFiltering
	// is on.
	PhaseGlitch
	// PhaseDelta is the event-driven delta re-analysis: baseline clone,
	// delta application, and the dirty-cone propagation walk. Only
	// AnalyzeDelta records it; full analyses report zero. It is a top-level
	// phase — delta analyses do not additionally record seed/eval/commit, so
	// the disjointness invariant (Sum() <= Wall) holds for them too.
	PhaseDelta
	// PhaseMC is the Monte-Carlo sample loop: the wall time AnalyzeMC spends
	// running perturbed samples and aggregating their arrivals. Like
	// PhaseDelta it is a top-level phase — the per-sample analyses' own
	// seed/eval/commit intervals are interior to it and are not additionally
	// recorded, so Sum() <= Wall still holds for MC results.
	PhaseMC

	NumPhases
)

var phaseNames = [NumPhases]string{
	"compile", "levelize", "cones", "schedule", "seed", "eval", "commit", "glitch", "delta", "mc",
}

func (p Phase) String() string {
	if p < 0 || p >= NumPhases {
		return "phase(" + strconv.Itoa(int(p)) + ")"
	}
	return phaseNames[p]
}

// Phases enumerates all phases in accounting order.
func Phases() []Phase {
	out := make([]Phase, NumPhases)
	for i := range out {
		out[i] = Phase(i)
	}
	return out
}

// PhaseTimes accumulates wall time per phase. The zero value is ready to
// use. It is not synchronized: each analyze owns one, and only the
// goroutine driving the level walk writes to it.
type PhaseTimes [NumPhases]time.Duration

// Add accumulates d into phase p (negative d is clamped to zero so clock
// weirdness can never make a phase run backwards).
func (pt *PhaseTimes) Add(p Phase, d time.Duration) {
	if d < 0 {
		d = 0
	}
	pt[p] += d
}

// Sum returns the total of the top-level phases. PhaseLevelize is excluded:
// it is a sub-interval of PhaseCompile and would double-count.
func (pt PhaseTimes) Sum() time.Duration {
	var s time.Duration
	for p := Phase(0); p < NumPhases; p++ {
		if p == PhaseLevelize {
			continue
		}
		s += pt[p]
	}
	return s
}

// ---- Chrome trace_event recorder -------------------------------------------

// TraceEvent is one record of the Chrome trace_event format (the "JSON
// Array Format" with an object wrapper). Complete events (ph "X") carry a
// duration; metadata events (ph "M") name processes and threads.
type TraceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"` // microseconds since trace start
	Dur  float64        `json:"dur,omitempty"`
	PID  int64          `json:"pid"`
	TID  int64          `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// Trace records spans for one logical operation (a request, a CLI run). A
// nil *Trace is the disabled recorder: every method no-ops, so callers
// thread it through without branching. A non-nil Trace is safe for
// concurrent use — worker goroutines record their spans under one mutex
// (contention is irrelevant: spans are per level, not per gate).
type Trace struct {
	mu     sync.Mutex
	t0     time.Time
	events []TraceEvent
}

// NewTrace starts an empty trace; its clock zero is now.
func NewTrace() *Trace { return &Trace{t0: time.Now()} }

// Enabled reports whether the recorder actually records.
func (t *Trace) Enabled() bool { return t != nil }

func (t *Trace) since(at time.Time) float64 {
	return float64(at.Sub(t.t0)) / float64(time.Microsecond)
}

// Span is an open interval created by Begin. End closes it and records a
// complete ("X") event. The zero Span (from a nil Trace) is inert.
type Span struct {
	tr    *Trace
	name  string
	cat   string
	pid   int64
	tid   int64
	start time.Time
	args  map[string]any
}

// Begin opens a span on (pid, tid). pid groups rows in the viewer (one
// vector per pid in a batch); tid separates concurrent workers within it.
func (t *Trace) Begin(pid, tid int64, cat, name string) Span {
	if t == nil {
		return Span{}
	}
	return Span{tr: t, name: name, cat: cat, pid: pid, tid: tid, start: time.Now()}
}

// Arg attaches a key/value shown in the viewer's detail pane. Returns the
// span for chaining.
func (s Span) Arg(key string, value any) Span {
	if s.tr == nil {
		return s
	}
	if s.args == nil {
		s.args = map[string]any{}
	}
	s.args[key] = value
	return s
}

// End closes the span and records it.
func (s Span) End() {
	if s.tr == nil {
		return
	}
	end := time.Now()
	s.tr.mu.Lock()
	s.tr.events = append(s.tr.events, TraceEvent{
		Name: s.name,
		Cat:  s.cat,
		Ph:   "X",
		TS:   s.tr.since(s.start),
		Dur:  float64(end.Sub(s.start)) / float64(time.Microsecond),
		PID:  s.pid,
		TID:  s.tid,
		Args: s.args,
	})
	s.tr.mu.Unlock()
}

// Instant records a zero-duration marker ("i" event, thread scope).
func (t *Trace) Instant(pid, tid int64, cat, name string, args map[string]any) {
	if t == nil {
		return
	}
	now := time.Now()
	t.mu.Lock()
	t.events = append(t.events, TraceEvent{
		Name: name, Cat: cat, Ph: "i", TS: t.since(now), PID: pid, TID: tid, Args: args,
	})
	t.mu.Unlock()
}

// NameProcess attaches a human-readable name to a pid row ("M" metadata).
func (t *Trace) NameProcess(pid int64, name string) {
	t.meta("process_name", pid, 0, name)
}

// NameThread attaches a human-readable name to a tid row within a pid.
func (t *Trace) NameThread(pid, tid int64, name string) {
	t.meta("thread_name", pid, tid, name)
}

func (t *Trace) meta(kind string, pid, tid int64, name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.events = append(t.events, TraceEvent{
		Name: kind, Ph: "M", PID: pid, TID: tid, Args: map[string]any{"name": name},
	})
	t.mu.Unlock()
}

// Events returns a snapshot copy of the recorded events (for validation).
func (t *Trace) Events() []TraceEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]TraceEvent(nil), t.events...)
}

// Len returns the number of recorded events.
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// WriteJSON emits the trace in the Chrome trace_event JSON Object Format:
// {"traceEvents":[...],"displayTimeUnit":"ns"} — the document format both
// chrome://tracing and Perfetto load directly.
func (t *Trace) WriteJSON(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, `{"traceEvents":[],"displayTimeUnit":"ns"}`)
		return err
	}
	t.mu.Lock()
	evs := append([]TraceEvent(nil), t.events...)
	t.mu.Unlock()
	return writeTraceJSON(w, evs)
}

// MarshalJSON renders the same document as WriteJSON, so a *Trace can be
// embedded directly into a JSON response (the /v1/analyze?trace=1 path).
func (t *Trace) MarshalJSON() ([]byte, error) {
	var b traceBuilder
	if err := t.WriteJSON(&b); err != nil {
		return nil, err
	}
	return b.buf, nil
}

type traceBuilder struct{ buf []byte }

func (b *traceBuilder) Write(p []byte) (int, error) {
	b.buf = append(b.buf, p...)
	return len(p), nil
}

func writeTraceJSON(w io.Writer, evs []TraceEvent) error {
	if _, err := io.WriteString(w, `{"traceEvents":[`); err != nil {
		return err
	}
	for i := range evs {
		if i > 0 {
			if _, err := io.WriteString(w, ","); err != nil {
				return err
			}
		}
		if err := writeEvent(w, &evs[i]); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, `],"displayTimeUnit":"ns"}`)
	return err
}

func writeEvent(w io.Writer, e *TraceEvent) error {
	// Hand-rolled for the fixed fields; args (rare) go through fmt with
	// %q/%v per value type. Keeps the hot serialization allocation-free
	// enough for inline trace responses.
	if _, err := fmt.Fprintf(w, `{"name":%q,"ph":%q,"ts":%s,"pid":%d,"tid":%d`,
		e.Name, e.Ph, formatFloat(e.TS), e.PID, e.TID); err != nil {
		return err
	}
	if e.Cat != "" {
		if _, err := fmt.Fprintf(w, `,"cat":%q`, e.Cat); err != nil {
			return err
		}
	}
	if e.Ph == "X" {
		if _, err := fmt.Fprintf(w, `,"dur":%s`, formatFloat(e.Dur)); err != nil {
			return err
		}
	}
	if e.Ph == "i" {
		// Instant events need a scope; "t" (thread) keeps them attached to
		// their row in the viewer.
		if _, err := io.WriteString(w, `,"s":"t"`); err != nil {
			return err
		}
	}
	if len(e.Args) > 0 {
		if _, err := io.WriteString(w, `,"args":{`); err != nil {
			return err
		}
		first := true
		for _, k := range sortedKeys(e.Args) {
			if !first {
				if _, err := io.WriteString(w, ","); err != nil {
					return err
				}
			}
			first = false
			if err := writeArg(w, k, e.Args[k]); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(w, "}"); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "}")
	return err
}

func writeArg(w io.Writer, k string, v any) error {
	switch x := v.(type) {
	case string:
		_, err := fmt.Fprintf(w, "%q:%q", k, x)
		return err
	case int:
		_, err := fmt.Fprintf(w, "%q:%d", k, x)
		return err
	case int64:
		_, err := fmt.Fprintf(w, "%q:%d", k, x)
		return err
	case float64:
		_, err := fmt.Fprintf(w, "%q:%s", k, formatFloat(x))
		return err
	case bool:
		_, err := fmt.Fprintf(w, "%q:%v", k, x)
		return err
	default:
		_, err := fmt.Fprintf(w, "%q:%q", k, fmt.Sprint(x))
		return err
	}
}

func formatFloat(f float64) string {
	return strconv.FormatFloat(f, 'f', 3, 64)
}

func sortedKeys(m map[string]any) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}
