// Package obs is the engine's zero-dependency observability layer: cheap
// always-on phase timers that extend sta.Result.Stats, and an opt-in span
// recorder that emits Chrome trace_event JSON (chrome://tracing, Perfetto).
//
// The design constraint is that the disabled path must cost nothing the hot
// path can feel: a nil *Trace is a valid, fully inert recorder — every
// method on it is a nil-check and a return — so the engine threads a
// possibly-nil *Trace through unconditionally and never branches on a
// separate "enabled" flag. Phase accounting (PhaseTimes) is a plain
// fixed-size array of duration accumulators with no locking; each analyze
// owns its own copy inside Result.Stats.
package obs

import (
	"fmt"
	"io"
	"strconv"
	"sync"
	"time"
)

// Phase identifies one accounting bucket of an analyze call. The buckets
// are disjoint wall-clock intervals, so for any single-threaded view their
// sum is bounded by the analyze wall time (asserted by the difftest stats
// oracle).
type Phase int

const (
	// PhaseCompile covers the Compile() call an analyze entry point makes:
	// ~zero when the memoized handle is reused, the full levelization cost
	// when the circuit changed.
	PhaseCompile Phase = iota
	// PhaseLevelize is the topological-sort portion inside a cold compile
	// (a sub-interval of PhaseCompile; excluded from Sum totals).
	PhaseLevelize
	// PhaseCones is time spent waiting for the per-PI fanout cone tables
	// (paid by the first sparse analyze on a handle, ~zero afterwards).
	PhaseCones
	// PhaseSchedule is the per-vector sparse schedule construction: cone
	// union, level bucketing, netlist-order sort.
	PhaseSchedule
	// PhaseSeed is stimulus validation and primary-input arrival seeding.
	PhaseSeed
	// PhaseEval is the per-level gate evaluation wall time, summed over
	// levels (the parallel region).
	PhaseEval
	// PhaseCommit is the serial netlist-order arrival commit, summed over
	// levels.
	PhaseCommit
	// PhaseGlitch is the Section-6 pulse-filtering work inside the commit
	// walk: detecting opposite-edge arrival pairs on a gate's output and
	// evaluating the inertial-delay macromodel. It is carved out of the
	// commit interval (PhaseCommit subtracts it), so the disjointness
	// invariant (Sum() <= Wall) holds. Zero unless Options.PulseFiltering
	// is on.
	PhaseGlitch
	// PhaseDelta is the event-driven delta re-analysis: baseline clone,
	// delta application, and the dirty-cone propagation walk. Only
	// AnalyzeDelta records it; full analyses report zero. It is a top-level
	// phase — delta analyses do not additionally record seed/eval/commit, so
	// the disjointness invariant (Sum() <= Wall) holds for them too.
	PhaseDelta
	// PhaseMC is the Monte-Carlo sample loop: the wall time AnalyzeMC spends
	// running perturbed samples and aggregating their arrivals. Like
	// PhaseDelta it is a top-level phase — the per-sample analyses' own
	// seed/eval/commit intervals are interior to it and are not additionally
	// recorded, so Sum() <= Wall still holds for MC results.
	PhaseMC

	NumPhases
)

var phaseNames = [NumPhases]string{
	"compile", "levelize", "cones", "schedule", "seed", "eval", "commit", "glitch", "delta", "mc",
}

func (p Phase) String() string {
	if p < 0 || p >= NumPhases {
		return "phase(" + strconv.Itoa(int(p)) + ")"
	}
	return phaseNames[p]
}

// Phases enumerates all phases in accounting order.
func Phases() []Phase {
	out := make([]Phase, NumPhases)
	for i := range out {
		out[i] = Phase(i)
	}
	return out
}

// PhaseTimes accumulates wall time per phase. The zero value is ready to
// use. It is not synchronized: each analyze owns one, and only the
// goroutine driving the level walk writes to it.
type PhaseTimes [NumPhases]time.Duration

// Add accumulates d into phase p (negative d is clamped to zero so clock
// weirdness can never make a phase run backwards).
func (pt *PhaseTimes) Add(p Phase, d time.Duration) {
	if d < 0 {
		d = 0
	}
	pt[p] += d
}

// Sum returns the total of the top-level phases. PhaseLevelize is excluded:
// it is a sub-interval of PhaseCompile and would double-count.
func (pt PhaseTimes) Sum() time.Duration {
	var s time.Duration
	for p := Phase(0); p < NumPhases; p++ {
		if p == PhaseLevelize {
			continue
		}
		s += pt[p]
	}
	return s
}

// ---- Chrome trace_event recorder -------------------------------------------

// TraceEvent is one record of the Chrome trace_event format (the "JSON
// Array Format" with an object wrapper). Complete events (ph "X") carry a
// duration; metadata events (ph "M") name processes and threads.
type TraceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"` // microseconds since trace start
	Dur  float64        `json:"dur,omitempty"`
	PID  int64          `json:"pid"`
	TID  int64          `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// maxRecArgs bounds the inline argument storage of a recorded event. Spans
// carry at most a handful of scalars (the widest today is three); anything
// beyond the bound is dropped rather than heap-spilled, because the hot
// path must not allocate — and the arrays ride inside every record, so the
// bound is also the record's footprint.
const maxRecArgs = 4

// traceRec is the internal, allocation-free representation of one event.
// It differs from TraceEvent only in how args are held: fixed inline arrays
// instead of a map, so recording a span costs a struct copy and nothing
// else. Records are materialized into TraceEvents (maps and all) only when
// a trace is actually read — which, under tail sampling, is the rare path.
type traceRec struct {
	name, cat, ph string
	ts, dur       float64
	pid, tid      int64
	nargs         int
	argk          [maxRecArgs]string
	argv          [maxRecArgs]any
}

// event materializes the wire-format TraceEvent (building the Args map).
func (r *traceRec) event() TraceEvent {
	e := TraceEvent{Name: r.name, Cat: r.cat, Ph: r.ph, TS: r.ts, Dur: r.dur, PID: r.pid, TID: r.tid}
	if r.nargs > 0 {
		e.Args = make(map[string]any, r.nargs)
		for i := 0; i < r.nargs; i++ {
			e.Args[r.argk[i]] = r.argv[i]
		}
	}
	return e
}

// Trace records spans for one logical operation (a request, a CLI run). A
// nil *Trace is the disabled recorder: every method no-ops, so callers
// thread it through without branching. A non-nil Trace is safe for
// concurrent use — worker goroutines record their spans under one mutex
// (contention is irrelevant: spans are per level, not per gate).
type Trace struct {
	mu   sync.Mutex
	t0   time.Time
	recs []traceRec
	// limit bounds the recorded events (0 = unlimited); beyond it new spans
	// are counted in dropped instead of stored, so an always-on per-request
	// recorder cannot grow without bound under a million-vector batch.
	limit   int
	dropped int
	// detail opts the trace into fine-grained spans (per level, per worker).
	// Passive tail-sampling recorders leave it off: they ride along on every
	// request, so they get the coarse per-vector phase spans only. Explicitly
	// requested traces (?trace=1, CLI -trace) turn it on.
	detail bool
	// traceID is the W3C trace id this recorder belongs to ("" when the
	// trace is not tied to a propagated request context).
	traceID string
}

// NewTrace starts an empty trace; its clock zero is now. Traces made for an
// explicit consumer default to full detail; use SetDetail(false) — or
// NewBoundedTrace, which defaults coarse — for always-on recorders.
func NewTrace() *Trace { return &Trace{t0: time.Now(), detail: true} }

// NewBoundedTrace starts a trace that stores at most limit events (<= 0
// behaves like NewTrace, minus the detail default). The bound is the
// tail-sampling safety valve: every request records spans, so the recorder
// must have a worst case. Bounded traces start coarse (no per-level/worker
// spans) because they are the always-on kind; SetDetail(true) upgrades one
// that a caller explicitly asked for.
func NewBoundedTrace(limit int) *Trace {
	t := NewTrace()
	t.limit = limit
	t.detail = false
	if limit > 0 {
		// Recycle record storage from traces that already came and went
		// (Release): in steady state an always-on per-request recorder
		// allocates nothing but the Trace header itself.
		if v := recsPool.Get(); v != nil {
			t.recs = (*v.(*[]traceRec))[:0]
		} else {
			// Pre-size for a typical coarse request (a few events per
			// vector) so the first uses don't churn through the
			// append-doubling sizes; bounded by limit so tiny caps stay
			// tiny.
			t.recs = make([]traceRec, 0, min(limit, 192))
		}
	}
	return t
}

// recsPool recycles record buffers between bounded traces. Entries are
// *[]traceRec (pointer, so Put doesn't allocate a slice-header box).
var recsPool sync.Pool

// Release returns the trace's record storage to the shared pool and leaves
// the trace empty. Call it when the trace is finished — after any
// serialization — and never touch the trace's events again afterwards. A
// post-Release append is safe (it starts a fresh buffer) but wasted.
func (t *Trace) Release() {
	if t == nil {
		return
	}
	t.mu.Lock()
	recs := t.recs
	t.recs = nil
	t.mu.Unlock()
	if cap(recs) == 0 {
		return
	}
	// Zero the used prefix so pooled buffers don't pin strings or boxed
	// values from dead requests.
	clear(recs[:len(recs)])
	empty := recs[:0]
	recsPool.Put(&empty)
}

// Enabled reports whether the recorder actually records.
func (t *Trace) Enabled() bool { return t != nil }

// SetDetail opts the trace in or out of fine-grained (per-level, per-worker)
// spans. Must be set before recording starts; not synchronized.
func (t *Trace) SetDetail(d bool) {
	if t != nil {
		t.detail = d
	}
}

// Detail reports whether producers should record fine-grained spans. A nil
// trace reports false, so `tr.Detail()` composes with the nil-no-op pattern.
func (t *Trace) Detail() bool { return t != nil && t.detail }

// SetTraceID ties the recorder to a propagated W3C trace id and records a
// marker event carrying it, so the serialized artifact is self-identifying:
// anyone holding the trace file can read which distributed trace it belongs
// to without the surrounding wide event. Like SetDetail, it must be called
// before recording starts (it is read without a lock on the hot path).
func (t *Trace) SetTraceID(id string) {
	if t == nil || id == "" {
		return
	}
	t.traceID = id
	t.Instant(0, 0, "meta", "trace_id", map[string]any{"traceId": id})
}

// ID returns the trace id set by SetTraceID ("" for an untied or nil trace).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.traceID
}

// Dropped reports how many events the bound discarded (0 = complete trace).
func (t *Trace) Dropped() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// appendLocked stores a record, enforcing the bound. Caller holds t.mu.
func (t *Trace) appendLocked(r traceRec) {
	if t.limit > 0 && len(t.recs) >= t.limit {
		t.dropped++
		return
	}
	t.recs = append(t.recs, r)
}

func (t *Trace) since(at time.Time) float64 {
	return float64(at.Sub(t.t0)) / float64(time.Microsecond)
}

// Span is an open interval created by Begin. End closes it and records a
// complete ("X") event. The zero Span (from a nil Trace) is inert. Args live
// in fixed inline arrays — recording a span never touches the heap (values
// that don't fit maxRecArgs are dropped, not spilled).
type Span struct {
	tr    *Trace
	name  string
	cat   string
	pid   int64
	tid   int64
	start time.Time
	nargs int
	argk  [maxRecArgs]string
	argv  [maxRecArgs]any
}

// Begin opens a span on (pid, tid). pid groups rows in the viewer (one
// vector per pid in a batch); tid separates concurrent workers within it.
func (t *Trace) Begin(pid, tid int64, cat, name string) Span {
	if t == nil {
		return Span{}
	}
	return Span{tr: t, name: name, cat: cat, pid: pid, tid: tid, start: time.Now()}
}

// Arg attaches a key/value shown in the viewer's detail pane. Returns the
// span for chaining.
func (s Span) Arg(key string, value any) Span {
	if s.tr == nil || s.nargs == maxRecArgs {
		return s
	}
	s.argk[s.nargs], s.argv[s.nargs] = key, value
	s.nargs++
	return s
}

// End closes the span and records it.
func (s Span) End() {
	if s.tr == nil {
		return
	}
	end := time.Now()
	s.tr.mu.Lock()
	s.tr.appendLocked(traceRec{
		name: s.name, cat: s.cat, ph: "X",
		ts:  s.tr.since(s.start),
		dur: float64(end.Sub(s.start)) / float64(time.Microsecond),
		pid: s.pid, tid: s.tid,
		nargs: s.nargs, argk: s.argk, argv: s.argv,
	})
	s.tr.mu.Unlock()
}

// Instant records a zero-duration marker ("i" event, thread scope).
func (t *Trace) Instant(pid, tid int64, cat, name string, args map[string]any) {
	if t == nil {
		return
	}
	now := time.Now()
	r := traceRec{name: name, cat: cat, ph: "i", ts: t.since(now), pid: pid, tid: tid}
	for k, v := range args {
		if r.nargs == maxRecArgs {
			break
		}
		r.argk[r.nargs], r.argv[r.nargs] = k, v
		r.nargs++
	}
	t.mu.Lock()
	t.appendLocked(r)
	t.mu.Unlock()
}

// NameProcess attaches a human-readable name to a pid row ("M" metadata).
func (t *Trace) NameProcess(pid int64, name string) {
	t.meta("process_name", pid, 0, name)
}

// NameThread attaches a human-readable name to a tid row within a pid.
func (t *Trace) NameThread(pid, tid int64, name string) {
	t.meta("thread_name", pid, tid, name)
}

// cachedNames precomputes "prefix N" row labels so the per-vector
// NameProcess call in a traced analyze costs a table lookup, not a Sprintf
// plus a fresh string. 512 covers any realistic batch/worker fan-out; the
// overflow falls back to formatting.
const cachedNameCount = 512

func cachedNames(prefix string) [cachedNameCount]string {
	var names [cachedNameCount]string
	for i := range names {
		names[i] = prefix + " " + strconv.Itoa(i)
	}
	return names
}

var (
	vectorNames = cachedNames("vector")
	workerNames = cachedNames("worker")
)

// VectorName returns the canonical viewer row label for vector i.
func VectorName(i int64) string {
	if i >= 0 && i < cachedNameCount {
		return vectorNames[i]
	}
	return fmt.Sprintf("vector %d", i)
}

// WorkerName returns the canonical viewer row label for worker i.
func WorkerName(i int64) string {
	if i >= 0 && i < cachedNameCount {
		return workerNames[i]
	}
	return fmt.Sprintf("worker %d", i)
}

func (t *Trace) meta(kind string, pid, tid int64, name string) {
	if t == nil {
		return
	}
	r := traceRec{name: kind, ph: "M", pid: pid, tid: tid, nargs: 1}
	r.argk[0], r.argv[0] = "name", name
	t.mu.Lock()
	t.appendLocked(r)
	t.mu.Unlock()
}

// Events materializes the recorded events (args maps built here, on the
// read path — never during recording).
func (t *Trace) Events() []TraceEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.recs) == 0 {
		return nil
	}
	evs := make([]TraceEvent, len(t.recs))
	for i := range t.recs {
		evs[i] = t.recs[i].event()
	}
	return evs
}

// Len returns the number of recorded events.
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.recs)
}

// WriteJSON emits the trace in the Chrome trace_event JSON Object Format:
// {"traceEvents":[...],"displayTimeUnit":"ns"} — the document format both
// chrome://tracing and Perfetto load directly.
func (t *Trace) WriteJSON(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, `{"traceEvents":[],"displayTimeUnit":"ns"}`)
		return err
	}
	return writeTraceJSON(w, t.Events())
}

// MarshalJSON renders the same document as WriteJSON, so a *Trace can be
// embedded directly into a JSON response (the /v1/analyze?trace=1 path).
func (t *Trace) MarshalJSON() ([]byte, error) {
	var b traceBuilder
	if err := t.WriteJSON(&b); err != nil {
		return nil, err
	}
	return b.buf, nil
}

type traceBuilder struct{ buf []byte }

func (b *traceBuilder) Write(p []byte) (int, error) {
	b.buf = append(b.buf, p...)
	return len(p), nil
}

func writeTraceJSON(w io.Writer, evs []TraceEvent) error {
	if _, err := io.WriteString(w, `{"traceEvents":[`); err != nil {
		return err
	}
	for i := range evs {
		if i > 0 {
			if _, err := io.WriteString(w, ","); err != nil {
				return err
			}
		}
		if err := writeEvent(w, &evs[i]); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, `],"displayTimeUnit":"ns"}`)
	return err
}

func writeEvent(w io.Writer, e *TraceEvent) error {
	// Hand-rolled for the fixed fields; args (rare) go through fmt with
	// %q/%v per value type. Keeps the hot serialization allocation-free
	// enough for inline trace responses.
	if _, err := fmt.Fprintf(w, `{"name":%q,"ph":%q,"ts":%s,"pid":%d,"tid":%d`,
		e.Name, e.Ph, formatFloat(e.TS), e.PID, e.TID); err != nil {
		return err
	}
	if e.Cat != "" {
		if _, err := fmt.Fprintf(w, `,"cat":%q`, e.Cat); err != nil {
			return err
		}
	}
	if e.Ph == "X" {
		if _, err := fmt.Fprintf(w, `,"dur":%s`, formatFloat(e.Dur)); err != nil {
			return err
		}
	}
	if e.Ph == "i" {
		// Instant events need a scope; "t" (thread) keeps them attached to
		// their row in the viewer.
		if _, err := io.WriteString(w, `,"s":"t"`); err != nil {
			return err
		}
	}
	if len(e.Args) > 0 {
		if _, err := io.WriteString(w, `,"args":{`); err != nil {
			return err
		}
		first := true
		for _, k := range sortedKeys(e.Args) {
			if !first {
				if _, err := io.WriteString(w, ","); err != nil {
					return err
				}
			}
			first = false
			if err := writeArg(w, k, e.Args[k]); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(w, "}"); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "}")
	return err
}

func writeArg(w io.Writer, k string, v any) error {
	switch x := v.(type) {
	case string:
		_, err := fmt.Fprintf(w, "%q:%q", k, x)
		return err
	case int:
		_, err := fmt.Fprintf(w, "%q:%d", k, x)
		return err
	case int64:
		_, err := fmt.Fprintf(w, "%q:%d", k, x)
		return err
	case float64:
		_, err := fmt.Fprintf(w, "%q:%s", k, formatFloat(x))
		return err
	case bool:
		_, err := fmt.Fprintf(w, "%q:%v", k, x)
		return err
	default:
		_, err := fmt.Fprintf(w, "%q:%q", k, fmt.Sprint(x))
		return err
	}
}

func formatFloat(f float64) string {
	return strconv.FormatFloat(f, 'f', 3, 64)
}

func sortedKeys(m map[string]any) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}
