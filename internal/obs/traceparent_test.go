package obs

import (
	"strings"
	"testing"
)

func TestParseTraceparentValid(t *testing.T) {
	tc, ok := ParseTraceparent("00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01")
	if !ok {
		t.Fatal("valid header rejected")
	}
	if tc.TraceID != "0af7651916cd43dd8448eb211c80319c" {
		t.Errorf("trace id %q", tc.TraceID)
	}
	if tc.SpanID != "b7ad6b7169203331" {
		t.Errorf("span id %q", tc.SpanID)
	}
	if !tc.Sampled {
		t.Error("sampled flag lost")
	}
	// Unsampled flag and surrounding whitespace.
	tc, ok = ParseTraceparent("  00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-00\t")
	if !ok || tc.Sampled {
		t.Errorf("unsampled parse = %+v, %v", tc, ok)
	}
	// Future version with trailing fields is accepted (forward compat).
	if _, ok := ParseTraceparent("cc-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01-extra"); !ok {
		t.Error("future-version header rejected")
	}
}

func TestParseTraceparentInvalid(t *testing.T) {
	bad := []string{
		"",
		"00",
		"00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331",      // missing flags
		"00-00000000000000000000000000000000-b7ad6b7169203331-01",   // all-zero trace id
		"00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01",   // all-zero span id
		"ff-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",   // version ff invalid
		"00-0AF7651916CD43DD8448EB211C80319C-b7ad6b7169203331-01",   // uppercase hex
		"00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01-x", // version 00 must be exactly 55 chars
		"0z-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",   // non-hex version
		"00_0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",   // wrong separator
	}
	for _, h := range bad {
		if _, ok := ParseTraceparent(h); ok {
			t.Errorf("accepted malformed header %q", h)
		}
	}
}

func TestTraceContextMintChildHeader(t *testing.T) {
	tc := NewTraceContext()
	if len(tc.TraceID) != 32 || len(tc.SpanID) != 16 || !tc.Sampled {
		t.Fatalf("minted context malformed: %+v", tc)
	}
	// Header round-trips through the parser.
	back, ok := ParseTraceparent(tc.Header())
	if !ok || back != tc {
		t.Fatalf("header %q did not round-trip: %+v, %v", tc.Header(), back, ok)
	}
	// Child keeps the trace id, changes the span id.
	child := tc.Child()
	if child.TraceID != tc.TraceID {
		t.Error("child changed the trace id")
	}
	if child.SpanID == tc.SpanID {
		t.Error("child kept the parent span id")
	}
	if !strings.HasPrefix(tc.Header(), "00-") {
		t.Errorf("header version: %q", tc.Header())
	}
	// Two mints never collide (probabilistically certain; a deterministic
	// failure here means the randomness is broken).
	if other := NewTraceContext(); other.TraceID == tc.TraceID {
		t.Error("two minted contexts share a trace id")
	}
}
