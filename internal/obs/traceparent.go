// W3C Trace Context (traceparent) support: parse what a caller sends, mint
// fresh contexts when it sends nothing, and derive child contexts so the
// service's own span id differs from its caller's while the trace id — the
// value every hop of a distributed request shares — propagates untouched.
// Zero-dependency by design, like the rest of the package: the header
// grammar is 55 fixed bytes, not worth a vendored SDK.
package obs

import (
	"crypto/rand"
	"encoding/hex"
	"strings"
)

// TraceContext is a parsed W3C traceparent header:
// version 00, a 16-byte trace id, an 8-byte parent span id, and the sampled
// flag. https://www.w3.org/TR/trace-context/
type TraceContext struct {
	TraceID string // 32 lowercase hex chars, not all zero
	SpanID  string // 16 lowercase hex chars, not all zero
	Sampled bool
}

// ParseTraceparent parses a traceparent header value. ok=false on any
// malformation — the caller should then mint a fresh context rather than
// propagate garbage. Per spec, an unknown version is accepted as long as the
// version-00 prefix fields parse (forward compatibility), but version "ff"
// is invalid.
func ParseTraceparent(h string) (TraceContext, bool) {
	h = strings.TrimSpace(h)
	if len(h) < 55 {
		return TraceContext{}, false
	}
	if h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return TraceContext{}, false
	}
	version, traceID, spanID, flags := h[0:2], h[3:35], h[36:52], h[53:55]
	if !isLowerHex(version) || version == "ff" {
		return TraceContext{}, false
	}
	if version == "00" && len(h) != 55 {
		return TraceContext{}, false
	}
	if !isLowerHex(traceID) || traceID == strings.Repeat("0", 32) {
		return TraceContext{}, false
	}
	if !isLowerHex(spanID) || spanID == strings.Repeat("0", 16) {
		return TraceContext{}, false
	}
	if !isLowerHex(flags) {
		return TraceContext{}, false
	}
	var f byte
	b, _ := hex.DecodeString(flags)
	f = b[0]
	return TraceContext{TraceID: traceID, SpanID: spanID, Sampled: f&0x01 != 0}, true
}

func isLowerHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return len(s) > 0
}

// NewTraceContext mints a fresh sampled context with random ids.
func NewTraceContext() TraceContext {
	return TraceContext{TraceID: randHex(16), SpanID: randHex(8), Sampled: true}
}

// Child derives the context this process should propagate downstream and
// stamp on its own spans: same trace id, fresh span id, same sampled flag.
func (tc TraceContext) Child() TraceContext {
	return TraceContext{TraceID: tc.TraceID, SpanID: randHex(8), Sampled: tc.Sampled}
}

// Header renders the context as a version-00 traceparent value.
func (tc TraceContext) Header() string {
	flags := "00"
	if tc.Sampled {
		flags = "01"
	}
	return "00-" + tc.TraceID + "-" + tc.SpanID + "-" + flags
}

// randHex returns 2n lowercase hex chars of cryptographic randomness.
// crypto/rand.Read never fails on the platforms we run on; a zero id would
// be invalid per spec, so the impossible error path flips one byte.
func randHex(n int) string {
	b := make([]byte, n)
	if _, err := rand.Read(b); err != nil || allZero(b) {
		b[0] = 1
	}
	return hex.EncodeToString(b)
}

func allZero(b []byte) bool {
	for _, x := range b {
		if x != 0 {
			return false
		}
	}
	return true
}
