package obs

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

// A nil trace must be fully inert: every method callable, zero recorded.
func TestNilTraceIsInert(t *testing.T) {
	var tr *Trace
	if tr.Enabled() {
		t.Fatal("nil trace reports enabled")
	}
	sp := tr.Begin(0, 0, "cat", "span").Arg("k", 1)
	sp.End()
	tr.Instant(0, 0, "cat", "marker", nil)
	tr.NameProcess(0, "p")
	tr.NameThread(0, 0, "t")
	if tr.Len() != 0 || tr.Events() != nil {
		t.Fatal("nil trace recorded something")
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ValidateChromeTrace(buf.Bytes()); err != nil {
		t.Fatalf("nil trace JSON invalid: %v", err)
	}
}

func TestTraceRoundTrip(t *testing.T) {
	tr := NewTrace()
	tr.NameProcess(1, "vector 1")
	tr.NameThread(1, 0, "worker 0")
	outer := tr.Begin(1, 0, "sta", "level 0").Arg("gates", 12)
	inner := tr.Begin(1, 0, "sta", "commit")
	time.Sleep(time.Millisecond)
	inner.End()
	outer.End()
	tr.Instant(1, 0, "sta", "done", map[string]any{"ok": true, "rate": 1.5, "mode": "prox"})

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	evs, err := ValidateChromeTrace(buf.Bytes())
	if err != nil {
		t.Fatalf("trace invalid: %v\n%s", err, buf.String())
	}
	if len(evs) != 5 {
		t.Fatalf("got %d events, want 5", len(evs))
	}
	// The inner span must lie inside the outer one.
	var lvl, commit *TraceEvent
	for i := range evs {
		switch evs[i].Name {
		case "level 0":
			lvl = &evs[i]
		case "commit":
			commit = &evs[i]
		}
	}
	if lvl == nil || commit == nil {
		t.Fatal("missing spans")
	}
	if commit.TS < lvl.TS || commit.TS+commit.Dur > lvl.TS+lvl.Dur+0.002 {
		t.Fatalf("commit [%g,%g] not nested in level [%g,%g]",
			commit.TS, commit.TS+commit.Dur, lvl.TS, lvl.TS+lvl.Dur)
	}
	if lvl.Args["gates"] != float64(12) {
		t.Fatalf("span arg lost: %v", lvl.Args)
	}
}

// MarshalJSON must produce the same document as WriteJSON so traces embed
// into service responses verbatim.
func TestTraceMarshalJSON(t *testing.T) {
	tr := NewTrace()
	tr.Begin(0, 0, "c", "s").End()
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	m, err := json.Marshal(tr)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), m) {
		t.Fatalf("MarshalJSON differs from WriteJSON:\n%s\n%s", buf.Bytes(), m)
	}
}

func TestValidateRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"not json":        `{"traceEvents":[`,
		"unknown phase":   `{"traceEvents":[{"name":"x","ph":"Z","ts":0,"pid":0,"tid":0}]}`,
		"empty name":      `{"traceEvents":[{"name":"","ph":"X","ts":0,"dur":1,"pid":0,"tid":0}]}`,
		"negative ts":     `{"traceEvents":[{"name":"x","ph":"X","ts":-1,"dur":1,"pid":0,"tid":0}]}`,
		"negative dur":    `{"traceEvents":[{"name":"x","ph":"X","ts":0,"dur":-1,"pid":0,"tid":0}]}`,
		"partial overlap": `{"traceEvents":[{"name":"a","ph":"X","ts":0,"dur":10,"pid":0,"tid":0},{"name":"b","ph":"X","ts":5,"dur":10,"pid":0,"tid":0}]}`,
	}
	for name, doc := range cases {
		if _, err := ValidateChromeTrace([]byte(doc)); err == nil {
			t.Errorf("%s: validator accepted malformed trace", name)
		}
	}
}

func TestPhaseTimes(t *testing.T) {
	var pt PhaseTimes
	pt.Add(PhaseEval, 5*time.Millisecond)
	pt.Add(PhaseEval, 3*time.Millisecond)
	pt.Add(PhaseCompile, 2*time.Millisecond)
	pt.Add(PhaseLevelize, time.Millisecond) // sub-interval of compile
	pt.Add(PhaseSeed, -time.Second)         // clamped
	if pt[PhaseEval] != 8*time.Millisecond {
		t.Fatalf("eval = %v", pt[PhaseEval])
	}
	if pt[PhaseSeed] != 0 {
		t.Fatalf("negative add not clamped: %v", pt[PhaseSeed])
	}
	if got := pt.Sum(); got != 10*time.Millisecond {
		t.Fatalf("Sum = %v, want 10ms (levelize excluded)", got)
	}
	for _, p := range Phases() {
		if p.String() == "" {
			t.Fatalf("phase %d has no name", p)
		}
	}
}
