package mna

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewMatrixZeroed(t *testing.T) {
	m := NewMatrix(3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if m.At(i, j) != 0 {
				t.Fatalf("element (%d,%d) = %g, want 0", i, j, m.At(i, j))
			}
		}
	}
	if m.N() != 3 {
		t.Errorf("N() = %d", m.N())
	}
}

func TestSetAddAt(t *testing.T) {
	m := NewMatrix(2)
	m.Set(0, 1, 2.5)
	m.Add(0, 1, 0.5)
	if got := m.At(0, 1); got != 3.0 {
		t.Errorf("At(0,1) = %g, want 3.0", got)
	}
	m.Zero()
	if got := m.At(0, 1); got != 0 {
		t.Errorf("after Zero, At(0,1) = %g", got)
	}
}

func TestCloneIndependent(t *testing.T) {
	m := NewMatrix(2)
	m.Set(0, 0, 1)
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 1 {
		t.Error("Clone shares storage with original")
	}
}

func TestSolveKnownSystem(t *testing.T) {
	// 2x + y = 5; x + 3y = 10 -> x = 1, y = 3.
	a := NewMatrix(2)
	a.Set(0, 0, 2)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, 3)
	x, err := SolveSystem(a, []float64{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Errorf("solution = %v, want [1 3]", x)
	}
}

func TestSolveRequiresPivoting(t *testing.T) {
	// Zero on the leading diagonal forces a row swap.
	a := NewMatrix(2)
	a.Set(0, 0, 0)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, 0)
	x, err := SolveSystem(a, []float64{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-3) > 1e-12 || math.Abs(x[1]-2) > 1e-12 {
		t.Errorf("solution = %v, want [3 2]", x)
	}
}

func TestSingularDetection(t *testing.T) {
	a := NewMatrix(2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 2)
	a.Set(1, 0, 2)
	a.Set(1, 1, 4)
	if _, err := Factor(a); err == nil {
		t.Error("expected ErrSingular for a rank-1 matrix")
	}
}

func TestDeterminant(t *testing.T) {
	a := NewMatrix(2)
	a.Set(0, 0, 3)
	a.Set(0, 1, 1)
	a.Set(1, 0, 2)
	a.Set(1, 1, 4)
	f, err := Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Det(); math.Abs(got-10) > 1e-12 {
		t.Errorf("Det = %g, want 10", got)
	}
}

func TestMulVec(t *testing.T) {
	a := NewMatrix(2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 2)
	a.Set(1, 0, 3)
	a.Set(1, 1, 4)
	y := make([]float64, 2)
	a.MulVec([]float64{1, 1}, y)
	if y[0] != 3 || y[1] != 7 {
		t.Errorf("MulVec = %v, want [3 7]", y)
	}
}

// TestSolveRandomProperty: for random diagonally dominant systems,
// Solve(Factor(A), A*x) recovers x.
func TestSolveRandomProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(8)
		a := NewMatrix(n)
		for i := 0; i < n; i++ {
			rowSum := 0.0
			for j := 0; j < n; j++ {
				v := r.NormFloat64()
				a.Set(i, j, v)
				rowSum += math.Abs(v)
			}
			// Diagonal dominance keeps the condition number in check.
			a.Add(i, i, rowSum+1)
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		b := make([]float64, n)
		a.MulVec(x, b)
		got, err := SolveSystem(a, b)
		if err != nil {
			return false
		}
		for i := range x {
			if math.Abs(got[i]-x[i]) > 1e-8*(1+math.Abs(x[i])) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rng}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// TestResidualProperty: the solver's residual A*x - b is tiny even for
// non-dominant random systems (when factorization succeeds).
func TestResidualProperty(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(6)
		a := NewMatrix(n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, r.NormFloat64())
			}
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = r.NormFloat64()
		}
		f, err := Factor(a)
		if err != nil {
			return true // singular draws are fine
		}
		x := make([]float64, n)
		f.Solve(b, x)
		res := make([]float64, n)
		a.MulVec(x, res)
		for i := range res {
			res[i] -= b[i]
		}
		scale := a.MaxAbs() * NormInf(x)
		return NormInf(res) <= 1e-9*(1+scale)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestNorms(t *testing.T) {
	v := []float64{3, -4}
	if got := Norm2(v); math.Abs(got-5) > 1e-12 {
		t.Errorf("Norm2 = %g, want 5", got)
	}
	if got := NormInf(v); got != 4 {
		t.Errorf("NormInf = %g, want 4", got)
	}
}

func TestSolveAliasing(t *testing.T) {
	a := NewMatrix(2)
	a.Set(0, 0, 2)
	a.Set(1, 1, 4)
	f, err := Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	b := []float64{2, 8}
	f.Solve(b, b) // x aliases b
	if math.Abs(b[0]-1) > 1e-12 || math.Abs(b[1]-2) > 1e-12 {
		t.Errorf("aliased solve = %v, want [1 2]", b)
	}
}
