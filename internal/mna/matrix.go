// Package mna provides the small dense linear-algebra kernel used by the
// nodal-analysis circuit solver. Circuit matrices in this project are tiny
// (a handful of unknown nodes per cell), so a dense LU factorization with
// partial pivoting is both simpler and faster than a sparse solver.
package mna

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a factorization encounters an (numerically)
// exactly singular pivot.
var ErrSingular = errors.New("mna: singular matrix")

// Matrix is a dense row-major square matrix.
type Matrix struct {
	n    int
	data []float64
}

// NewMatrix returns an n-by-n zero matrix.
func NewMatrix(n int) *Matrix {
	if n < 0 {
		panic("mna: negative dimension")
	}
	return &Matrix{n: n, data: make([]float64, n*n)}
}

// N returns the dimension of the matrix.
func (m *Matrix) N() int { return m.n }

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.data[i*m.n+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.data[i*m.n+j] = v }

// Add accumulates v into element (i, j). This is the "stamping" primitive
// used by device companion models.
func (m *Matrix) Add(i, j int, v float64) { m.data[i*m.n+j] += v }

// Zero resets every element to 0 while keeping the allocation.
func (m *Matrix) Zero() {
	for i := range m.data {
		m.data[i] = 0
	}
}

// Clone returns a deep copy of the matrix.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.n)
	copy(c.data, m.data)
	return c
}

// MulVec computes y = m*x. y must have length n and must not alias x.
func (m *Matrix) MulVec(x, y []float64) {
	if len(x) != m.n || len(y) != m.n {
		panic("mna: dimension mismatch in MulVec")
	}
	for i := 0; i < m.n; i++ {
		s := 0.0
		row := m.data[i*m.n : (i+1)*m.n]
		for j, xv := range x {
			s += row[j] * xv
		}
		y[i] = s
	}
}

// MaxAbs returns the largest absolute element, used for scaling heuristics.
func (m *Matrix) MaxAbs() float64 {
	max := 0.0
	for _, v := range m.data {
		if a := math.Abs(v); a > max {
			max = a
		}
	}
	return max
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	s := ""
	for i := 0; i < m.n; i++ {
		for j := 0; j < m.n; j++ {
			s += fmt.Sprintf("% .6e ", m.At(i, j))
		}
		s += "\n"
	}
	return s
}

// LU holds an LU factorization with partial pivoting (PA = LU).
type LU struct {
	n    int
	lu   []float64
	piv  []int
	sign int
}

// Factor computes the LU factorization of m in place of a private copy.
// It returns ErrSingular when a pivot is exactly zero; callers typically
// respond by adding gmin to the diagonal and retrying.
func Factor(m *Matrix) (*LU, error) {
	n := m.n
	f := &LU{n: n, lu: make([]float64, n*n), piv: make([]int, n), sign: 1}
	copy(f.lu, m.data)
	for i := range f.piv {
		f.piv[i] = i
	}
	for k := 0; k < n; k++ {
		// Partial pivoting: pick the row with the largest |a[i][k]|.
		p := k
		max := math.Abs(f.lu[k*n+k])
		for i := k + 1; i < n; i++ {
			if a := math.Abs(f.lu[i*n+k]); a > max {
				max = a
				p = i
			}
		}
		if max == 0 || math.IsNaN(max) {
			return nil, ErrSingular
		}
		if p != k {
			for j := 0; j < n; j++ {
				f.lu[p*n+j], f.lu[k*n+j] = f.lu[k*n+j], f.lu[p*n+j]
			}
			f.piv[p], f.piv[k] = f.piv[k], f.piv[p]
			f.sign = -f.sign
		}
		pivot := f.lu[k*n+k]
		for i := k + 1; i < n; i++ {
			l := f.lu[i*n+k] / pivot
			f.lu[i*n+k] = l
			if l == 0 {
				continue
			}
			for j := k + 1; j < n; j++ {
				f.lu[i*n+j] -= l * f.lu[k*n+j]
			}
		}
	}
	return f, nil
}

// Solve solves A x = b using the factorization, writing the result into x.
// b is not modified; x and b may alias.
func (f *LU) Solve(b, x []float64) {
	n := f.n
	if len(b) != n || len(x) != n {
		panic("mna: dimension mismatch in Solve")
	}
	// Apply permutation.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		y[i] = b[f.piv[i]]
	}
	// Forward substitution (L has unit diagonal).
	for i := 1; i < n; i++ {
		s := y[i]
		row := f.lu[i*n:]
		for j := 0; j < i; j++ {
			s -= row[j] * y[j]
		}
		y[i] = s
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		row := f.lu[i*n:]
		for j := i + 1; j < n; j++ {
			s -= row[j] * y[j]
		}
		y[i] = s / row[i]
	}
	copy(x, y)
}

// Det returns the determinant of the factored matrix.
func (f *LU) Det() float64 {
	d := float64(f.sign)
	for i := 0; i < f.n; i++ {
		d *= f.lu[i*f.n+i]
	}
	return d
}

// SolveSystem is a convenience wrapper: factor A and solve A x = b.
func SolveSystem(a *Matrix, b []float64) ([]float64, error) {
	f, err := Factor(a)
	if err != nil {
		return nil, err
	}
	x := make([]float64, len(b))
	f.Solve(b, x)
	return x, nil
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// NormInf returns the max-abs norm of v.
func NormInf(v []float64) float64 {
	m := 0.0
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}
