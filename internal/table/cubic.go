package table

// Cubic (tensor-product Hermite) interpolation. Multilinear interpolation
// of the proximity tables leaves percent-level kinks at grid lines; cubic
// interpolation with finite-difference slopes removes most of that error
// without refining the characterization grid. Evaluation degrades gracefully
// to linear behaviour at the grid edges (slopes are one-sided there) and
// clamps outside the grid like Eval.

// EvalCubic interpolates the table at the given coordinates using
// tensor-product cubic Hermite splines with non-uniform finite-difference
// slopes.
func (g *Grid) EvalCubic(coords ...float64) float64 {
	d := len(g.axes)
	if len(coords) != d {
		panic("table: eval rank mismatch")
	}
	idx := make([]int, d)
	return g.cubicAxis(0, idx, coords)
}

// cubicAxis recursively interpolates along axis k, with idx[0:k] fixed.
func (g *Grid) cubicAxis(k int, idx []int, coords []float64) float64 {
	ax := g.axes[k]
	n := len(ax)
	last := k == len(g.axes)-1

	sample := func(i int) float64 {
		idx[k] = i
		if last {
			return g.values[g.flat(idx)]
		}
		return g.cubicAxis(k+1, idx, coords)
	}

	x := coords[k]
	if n == 1 {
		return sample(0)
	}
	// Locate the cell (clamped).
	i, frac := g.locate(k, x)
	x1, x2 := ax[i], ax[i+1]
	h := x2 - x1
	y1 := sample(i)
	y2 := sample(i + 1)
	if frac <= 0 {
		return y1
	}
	if frac >= 1 {
		return y2
	}
	// Finite-difference slopes; one-sided at the edges.
	m1 := (y2 - y1) / h
	if i > 0 {
		x0 := ax[i-1]
		y0 := sample(i - 1)
		m1 = weightedSlope(x0, x1, x2, y0, y1, y2)
	}
	m2 := (y2 - y1) / h
	if i+2 < n {
		x3 := ax[i+2]
		y3 := sample(i + 2)
		m2 = weightedSlope(x1, x2, x3, y1, y2, y3)
	}
	// Cubic Hermite basis on [0,1].
	t := frac
	t2 := t * t
	t3 := t2 * t
	h00 := 2*t3 - 3*t2 + 1
	h10 := t3 - 2*t2 + t
	h01 := -2*t3 + 3*t2
	h11 := t3 - t2
	return h00*y1 + h10*h*m1 + h01*y2 + h11*h*m2
}

// weightedSlope estimates dy/dx at the middle point of three non-uniformly
// spaced samples (the classic three-point formula).
func weightedSlope(x0, x1, x2, y0, y1, y2 float64) float64 {
	h0 := x1 - x0
	h1 := x2 - x1
	return (y2*h0*h0 + y1*(h1*h1-h0*h0) - y0*h1*h1) / (h0 * h1 * (h0 + h1))
}
