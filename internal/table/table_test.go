package table

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(); err == nil {
		t.Error("zero axes accepted")
	}
	if _, err := New([]float64{}); err == nil {
		t.Error("empty axis accepted")
	}
	if _, err := New([]float64{1, 1}); err == nil {
		t.Error("non-increasing axis accepted")
	}
	if _, err := New([]float64{2, 1}); err == nil {
		t.Error("decreasing axis accepted")
	}
}

func TestSetAtRoundtrip(t *testing.T) {
	g, err := New([]float64{0, 1}, []float64{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	g.Set(7, 1, 2)
	if got := g.At(1, 2); got != 7 {
		t.Errorf("At = %g", got)
	}
	if g.Len() != 6 || g.Dims() != 2 {
		t.Errorf("Len=%d Dims=%d", g.Len(), g.Dims())
	}
}

func TestEvalExactAtNodes(t *testing.T) {
	g, _ := New([]float64{0, 1, 3}, []float64{-1, 2})
	err := g.Fill(func(c []float64) (float64, error) { return c[0]*10 + c[1], nil })
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{0, 1, 3} {
		for _, y := range []float64{-1, 2} {
			if got := g.Eval(x, y); math.Abs(got-(x*10+y)) > 1e-12 {
				t.Errorf("Eval(%g,%g) = %g, want %g", x, y, got, x*10+y)
			}
		}
	}
}

// TestMultilinearReproducesAffine: a multilinear interpolant is exact for
// affine functions everywhere inside the grid.
func TestMultilinearReproducesAffine(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		dims := 1 + r.Intn(3)
		axes := make([][]float64, dims)
		for d := range axes {
			n := 2 + r.Intn(4)
			ax := make([]float64, n)
			x := r.Float64()
			for i := range ax {
				ax[i] = x
				x += 0.1 + r.Float64()
			}
			axes[d] = ax
		}
		g, err := New(axes...)
		if err != nil {
			return false
		}
		coef := make([]float64, dims+1)
		for i := range coef {
			coef[i] = r.NormFloat64()
		}
		affine := func(c []float64) float64 {
			v := coef[0]
			for d := range c {
				v += coef[d+1] * c[d]
			}
			return v
		}
		if err := g.Fill(func(c []float64) (float64, error) { return affine(c), nil }); err != nil {
			return false
		}
		// Random interior points.
		pt := make([]float64, dims)
		for k := 0; k < 20; k++ {
			for d := range pt {
				ax := axes[d]
				pt[d] = ax[0] + r.Float64()*(ax[len(ax)-1]-ax[0])
			}
			if math.Abs(g.Eval(pt...)-affine(pt)) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestEvalClampsOutside(t *testing.T) {
	g, _ := New([]float64{0, 1})
	g.Set(2, 0)
	g.Set(8, 1)
	if got := g.Eval(-5); got != 2 {
		t.Errorf("clamped low = %g", got)
	}
	if got := g.Eval(99); got != 8 {
		t.Errorf("clamped high = %g", got)
	}
}

func TestSingletonAxis(t *testing.T) {
	g, _ := New([]float64{1}, []float64{0, 1})
	g.Set(3, 0, 0)
	g.Set(5, 0, 1)
	if got := g.Eval(42, 0.5); math.Abs(got-4) > 1e-12 {
		t.Errorf("singleton-axis eval = %g, want 4", got)
	}
}

func TestJSONRoundtrip(t *testing.T) {
	g, _ := New([]float64{0, 1}, []float64{0, 2, 4})
	if err := g.Fill(func(c []float64) (float64, error) { return c[0] + c[1]*c[1], nil }); err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	var back Grid
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Len() != g.Len() || back.Dims() != g.Dims() {
		t.Fatalf("shape lost: %d/%d", back.Len(), back.Dims())
	}
	for _, x := range []float64{0, 0.3, 1} {
		for _, y := range []float64{0, 1.7, 4} {
			if a, b := g.Eval(x, y), back.Eval(x, y); math.Abs(a-b) > 1e-12 {
				t.Errorf("roundtrip eval(%g,%g): %g vs %g", x, y, a, b)
			}
		}
	}
}

func TestJSONRejectsCorrupt(t *testing.T) {
	var g Grid
	if err := json.Unmarshal([]byte(`{"axes":[[0,1]],"values":[1,2,3]}`), &g); err == nil {
		t.Error("mismatched value count accepted")
	}
	if err := json.Unmarshal([]byte(`{"axes":[[1,0]],"values":[1,2]}`), &g); err == nil {
		t.Error("unsorted axis accepted")
	}
}

func TestFillErrorPropagates(t *testing.T) {
	g, _ := New([]float64{0, 1})
	err := g.Fill(func(c []float64) (float64, error) {
		if c[0] == 1 {
			return 0, errTest
		}
		return 1, nil
	})
	if err == nil {
		t.Error("fill error swallowed")
	}
}

var errTest = &testErr{}

type testErr struct{}

func (*testErr) Error() string { return "test error" }

func TestLinSpace(t *testing.T) {
	v := LinSpace(0, 1, 5)
	want := []float64{0, 0.25, 0.5, 0.75, 1}
	for i := range want {
		if math.Abs(v[i]-want[i]) > 1e-12 {
			t.Errorf("LinSpace[%d] = %g", i, v[i])
		}
	}
	if got := LinSpace(3, 9, 1); len(got) != 1 || got[0] != 3 {
		t.Errorf("LinSpace n=1 = %v", got)
	}
}

func TestLogSpace(t *testing.T) {
	v := LogSpace(1, 100, 3)
	want := []float64{1, 10, 100}
	for i := range want {
		if math.Abs(v[i]-want[i]) > 1e-9 {
			t.Errorf("LogSpace[%d] = %g, want %g", i, v[i], want[i])
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("LogSpace with lo<=0 should panic")
		}
	}()
	LogSpace(0, 1, 3)
}

func TestEvalRankMismatchPanics(t *testing.T) {
	g, _ := New([]float64{0, 1})
	defer func() {
		if recover() == nil {
			t.Error("rank mismatch should panic")
		}
	}()
	g.Eval(1, 2)
}
