package table

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEvalCubicExactAtNodes(t *testing.T) {
	g, _ := New([]float64{0, 1, 2.5, 4}, []float64{-1, 0, 2})
	if err := g.Fill(func(c []float64) (float64, error) {
		return math.Sin(c[0]) + c[1]*c[1], nil
	}); err != nil {
		t.Fatal(err)
	}
	for _, x := range g.Axis(0) {
		for _, y := range g.Axis(1) {
			want := math.Sin(x) + y*y
			if got := g.EvalCubic(x, y); math.Abs(got-want) > 1e-12 {
				t.Errorf("EvalCubic(%g,%g) = %g, want %g", x, y, got, want)
			}
		}
	}
}

// TestCubicReproducesCubics: 1-D cubic Hermite with three-point slopes is
// exact for quadratics (slopes exact), and clearly better than linear for
// smooth functions.
func TestCubicReproducesQuadratics(t *testing.T) {
	g, _ := New([]float64{0, 0.7, 1.5, 2.2, 3})
	f := func(x float64) float64 { return 2 + 3*x - 1.5*x*x }
	if err := g.Fill(func(c []float64) (float64, error) { return f(c[0]), nil }); err != nil {
		t.Fatal(err)
	}
	// Interior cells have two-sided slopes: exact for quadratics there.
	for _, x := range []float64{0.9, 1.2, 1.9} {
		if got := g.EvalCubic(x); math.Abs(got-f(x)) > 1e-9 {
			t.Errorf("EvalCubic(%g) = %g, want %g", x, got, f(x))
		}
	}
}

func TestCubicBeatsLinearOnSmoothData(t *testing.T) {
	ax := LinSpace(0, math.Pi, 8)
	g, _ := New(ax)
	if err := g.Fill(func(c []float64) (float64, error) { return math.Sin(c[0]), nil }); err != nil {
		t.Fatal(err)
	}
	var linErr, cubErr float64
	for x := 0.01; x < math.Pi; x += 0.01 {
		linErr += math.Abs(g.Eval(x) - math.Sin(x))
		cubErr += math.Abs(g.EvalCubic(x) - math.Sin(x))
	}
	if cubErr >= linErr/3 {
		t.Errorf("cubic total error %.4f not clearly better than linear %.4f", cubErr, linErr)
	}
}

func TestCubicClampsOutside(t *testing.T) {
	g, _ := New([]float64{0, 1, 2})
	g.Set(5, 0)
	g.Set(7, 1)
	g.Set(6, 2)
	if got := g.EvalCubic(-9); got != 5 {
		t.Errorf("low clamp = %g", got)
	}
	if got := g.EvalCubic(99); got != 6 {
		t.Errorf("high clamp = %g", got)
	}
}

func TestCubicSingletonAxis(t *testing.T) {
	g, _ := New([]float64{2}, []float64{0, 1})
	g.Set(3, 0, 0)
	g.Set(9, 0, 1)
	if got := g.EvalCubic(99, 0.5); math.Abs(got-6) > 1e-12 {
		t.Errorf("singleton cubic = %g, want 6", got)
	}
}

// TestCubicContinuityProperty: the interpolant is continuous across grid
// lines (left and right limits agree).
func TestCubicContinuityProperty(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 4 + r.Intn(4)
		ax := make([]float64, n)
		x := 0.0
		for i := range ax {
			x += 0.2 + r.Float64()
			ax[i] = x
		}
		g, err := New(ax)
		if err != nil {
			return false
		}
		if err := g.Fill(func(c []float64) (float64, error) { return r.NormFloat64(), nil }); err != nil {
			return false
		}
		const eps = 1e-9
		for i := 1; i < n-1; i++ {
			left := g.EvalCubic(ax[i] - eps)
			right := g.EvalCubic(ax[i] + eps)
			at := g.EvalCubic(ax[i])
			if math.Abs(left-at) > 1e-5 || math.Abs(right-at) > 1e-5 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestCubic2DMixed(t *testing.T) {
	// Affine functions are reproduced exactly in any dimension (slopes are
	// exact and Hermite reproduces linears).
	g, _ := New(LinSpace(0, 2, 4), LinSpace(-1, 1, 5))
	if err := g.Fill(func(c []float64) (float64, error) { return 3 + 2*c[0] - c[1], nil }); err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(7))
	for k := 0; k < 50; k++ {
		x := r.Float64() * 2
		y := -1 + 2*r.Float64()
		want := 3 + 2*x - y
		if got := g.EvalCubic(x, y); math.Abs(got-want) > 1e-9 {
			t.Fatalf("EvalCubic(%g,%g) = %g, want %g", x, y, got, want)
		}
	}
}
