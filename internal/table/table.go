// Package table implements regular-grid N-dimensional lookup tables with
// multilinear interpolation and clamped extrapolation. The paper's dual-input
// proximity macromodels D(2) and T(2) are three-argument functions of
// normalized temporal parameters; the practical storage for them (Section 4,
// Figure 4-2) is exactly this kind of table.
package table

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
)

// Grid is an N-dimensional table over a rectangular grid of sample points.
type Grid struct {
	axes   [][]float64
	values []float64
	stride []int
}

// New creates a grid over the given axes. Each axis must be strictly
// increasing and contain at least one point. Values are initialized to zero.
func New(axes ...[]float64) (*Grid, error) {
	if len(axes) == 0 {
		return nil, fmt.Errorf("table: need at least one axis")
	}
	total := 1
	cp := make([][]float64, len(axes))
	for d, ax := range axes {
		if len(ax) == 0 {
			return nil, fmt.Errorf("table: axis %d is empty", d)
		}
		for i := 1; i < len(ax); i++ {
			if ax[i] <= ax[i-1] {
				return nil, fmt.Errorf("table: axis %d must strictly increase (index %d: %g after %g)",
					d, i, ax[i], ax[i-1])
			}
		}
		cp[d] = append([]float64(nil), ax...)
		total *= len(ax)
	}
	g := &Grid{axes: cp, values: make([]float64, total)}
	g.buildStrides()
	return g, nil
}

// MustNew is New that panics on error, for callers with literal axes known
// to be valid (tests, synthetic models).
func MustNew(axes ...[]float64) *Grid {
	g, err := New(axes...)
	if err != nil {
		panic(err)
	}
	return g
}

func (g *Grid) buildStrides() {
	d := len(g.axes)
	g.stride = make([]int, d)
	s := 1
	for i := d - 1; i >= 0; i-- {
		g.stride[i] = s
		s *= len(g.axes[i])
	}
}

// Dims returns the number of axes.
func (g *Grid) Dims() int { return len(g.axes) }

// Axis returns a copy of axis d's sample coordinates.
func (g *Grid) Axis(d int) []float64 { return append([]float64(nil), g.axes[d]...) }

// Len returns the total number of stored samples.
func (g *Grid) Len() int { return len(g.values) }

// flat converts a multi-index to the flattened offset.
func (g *Grid) flat(idx []int) int {
	if len(idx) != len(g.axes) {
		panic(fmt.Sprintf("table: index rank %d, grid rank %d", len(idx), len(g.axes)))
	}
	off := 0
	for d, i := range idx {
		if i < 0 || i >= len(g.axes[d]) {
			panic(fmt.Sprintf("table: index %d out of range on axis %d (len %d)", i, d, len(g.axes[d])))
		}
		off += i * g.stride[d]
	}
	return off
}

// At returns the stored sample at a multi-index.
func (g *Grid) At(idx ...int) float64 { return g.values[g.flat(idx)] }

// Set stores a sample at a multi-index.
func (g *Grid) Set(v float64, idx ...int) { g.values[g.flat(idx)] = v }

// Fill evaluates f at every grid point and stores the result. The coords
// slice passed to f is reused; copy it if retained. Fill returns the first
// error from f and stops.
func (g *Grid) Fill(f func(coords []float64) (float64, error)) error {
	d := len(g.axes)
	idx := make([]int, d)
	coords := make([]float64, d)
	for {
		for k := 0; k < d; k++ {
			coords[k] = g.axes[k][idx[k]]
		}
		v, err := f(coords)
		if err != nil {
			return fmt.Errorf("table: fill at %v: %w", coords, err)
		}
		g.values[g.flat(idx)] = v
		// Advance the multi-index.
		k := d - 1
		for ; k >= 0; k-- {
			idx[k]++
			if idx[k] < len(g.axes[k]) {
				break
			}
			idx[k] = 0
		}
		if k < 0 {
			return nil
		}
	}
}

// locate finds the cell and interpolation fraction on axis d for coordinate
// x, clamping outside the axis range (constant extrapolation).
func (g *Grid) locate(d int, x float64) (i int, frac float64) {
	ax := g.axes[d]
	n := len(ax)
	if n == 1 {
		return 0, 0
	}
	if x <= ax[0] {
		return 0, 0
	}
	if x >= ax[n-1] {
		return n - 2, 1
	}
	i = sort.SearchFloat64s(ax, x)
	if ax[i] == x {
		if i == n-1 {
			return n - 2, 1
		}
		return i, 0
	}
	i--
	return i, (x - ax[i]) / (ax[i+1] - ax[i])
}

// Eval interpolates the table at the given coordinates (multilinear with
// clamped extrapolation). It performs no heap allocation for grids of rank
// ≤ 4 — Eval sits on the per-gate hot path of the proximity STA.
func (g *Grid) Eval(coords ...float64) float64 {
	d := len(g.axes)
	if len(coords) != d {
		panic(fmt.Sprintf("table: eval rank %d, grid rank %d", len(coords), d))
	}
	var baseArr [4]int
	var fracArr [4]float64
	var base []int
	var frac []float64
	if d <= len(baseArr) {
		base, frac = baseArr[:d], fracArr[:d]
	} else {
		base, frac = make([]int, d), make([]float64, d)
	}
	for k := 0; k < d; k++ {
		base[k], frac[k] = g.locate(k, coords[k])
	}
	// Sum over the 2^d corners of the containing cell.
	total := 0.0
	for corner := 0; corner < (1 << d); corner++ {
		w := 1.0
		off := 0
		for k := 0; k < d; k++ {
			i := base[k]
			if corner&(1<<k) != 0 {
				// High corner on axis k.
				if len(g.axes[k]) > 1 {
					i++
				}
				w *= frac[k]
			} else {
				w *= 1 - frac[k]
			}
			off += i * g.stride[k]
		}
		if w != 0 {
			total += w * g.values[off]
		}
	}
	return total
}

// gridJSON is the serialized form.
type gridJSON struct {
	Axes   [][]float64 `json:"axes"`
	Values []float64   `json:"values"`
}

// MarshalJSON serializes the grid.
func (g *Grid) MarshalJSON() ([]byte, error) {
	return json.Marshal(gridJSON{Axes: g.axes, Values: g.values})
}

// UnmarshalJSON restores a grid.
func (g *Grid) UnmarshalJSON(data []byte) error {
	var j gridJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	ng, err := New(j.Axes...)
	if err != nil {
		return err
	}
	if len(j.Values) != len(ng.values) {
		return fmt.Errorf("table: value count %d does not match axes (want %d)", len(j.Values), len(ng.values))
	}
	copy(ng.values, j.Values)
	*g = *ng
	return nil
}

// LinSpace returns n evenly spaced points over [lo, hi].
func LinSpace(lo, hi float64, n int) []float64 {
	if n < 1 {
		panic("table: LinSpace needs n >= 1")
	}
	if n == 1 {
		return []float64{lo}
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = lo + (hi-lo)*float64(i)/float64(n-1)
	}
	return out
}

// LogSpace returns n logarithmically spaced points over [lo, hi] (both > 0).
func LogSpace(lo, hi float64, n int) []float64 {
	if lo <= 0 || hi <= lo {
		panic("table: LogSpace needs 0 < lo < hi")
	}
	if n == 1 {
		return []float64{lo}
	}
	out := make([]float64, n)
	ratio := hi / lo
	for i := range out {
		out[i] = lo * math.Pow(ratio, float64(i)/float64(n-1))
	}
	out[n-1] = hi
	return out
}
