package core_test

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/waveform"
)

func TestEvaluateValidation(t *testing.T) {
	r := getRig(t)
	if _, err := r.calc.Evaluate(nil); err == nil {
		t.Error("empty event list accepted")
	}
	if _, err := r.calc.Evaluate([]core.InputEvent{
		{Pin: 0, Dir: waveform.Rising, TT: 1e-10},
		{Pin: 1, Dir: waveform.Falling, TT: 1e-10},
	}); err == nil {
		t.Error("mixed directions accepted")
	}
	if _, err := r.calc.Evaluate([]core.InputEvent{{Pin: 0, Dir: waveform.Rising, TT: 0}}); err == nil {
		t.Error("zero transition time accepted")
	}
	if _, err := r.calc.Evaluate([]core.InputEvent{{Pin: 42, Dir: waveform.Rising, TT: 1e-10}}); err == nil {
		t.Error("unknown pin accepted")
	}
}

func TestSingleEventMatchesSingleModel(t *testing.T) {
	r := getRig(t)
	tau := 400e-12
	res, err := r.calc.Evaluate([]core.InputEvent{{Pin: 1, Dir: waveform.Falling, TT: tau, Cross: 7e-12}})
	if err != nil {
		t.Fatal(err)
	}
	d, tt, err := r.calc.SingleDelay(1, waveform.Falling, tau)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Delay-d) > 1e-18 || math.Abs(res.OutTT-tt) > 1e-18 {
		t.Error("single-event evaluation should equal the single-input model")
	}
	if math.Abs(res.OutputCross-(7e-12+d)) > 1e-18 {
		t.Error("output crossing not referenced to the event time")
	}
	if res.UsedDelay != 1 || res.CorrectionApplied != 0 {
		t.Error("single event should use no proximity machinery")
	}
}

// TestFarInputIgnoredForDelay: an input outside the proximity window leaves
// the delay at the single-input value (the paper's window property).
func TestFarInputIgnoredForDelay(t *testing.T) {
	r := getRig(t)
	tau := 400e-12
	d1, _, _ := r.calc.SingleDelay(0, waveform.Falling, tau)
	res, err := r.calc.Evaluate([]core.InputEvent{
		{Pin: 0, Dir: waveform.Falling, TT: tau, Cross: 0},
		{Pin: 1, Dir: waveform.Falling, TT: 100e-12, Cross: d1 * 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.UsedDelay != 1 {
		t.Errorf("far input counted in the delay window (used=%d)", res.UsedDelay)
	}
	if math.Abs(res.Delay-d1) > 1e-15 {
		t.Errorf("far input changed the delay: %.2fps vs %.2fps", res.Delay*1e12, d1*1e12)
	}
}

// TestTTWindowWiderThanDelayWindow: an input beyond the delay window but
// inside Δ+τ still affects the transition time (paper Section 3).
func TestTTWindowWiderThanDelayWindow(t *testing.T) {
	r := getRig(t)
	tau := 400e-12
	d1, tt1, _ := r.calc.SingleDelay(0, waveform.Falling, tau)
	s := d1 + 0.3*tt1 // outside delay window, inside TT window
	res, err := r.calc.Evaluate([]core.InputEvent{
		{Pin: 0, Dir: waveform.Falling, TT: tau, Cross: 0},
		{Pin: 1, Dir: waveform.Falling, TT: 100e-12, Cross: s},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.UsedDelay != 1 {
		t.Errorf("input inside TT-only region counted for delay")
	}
	if res.UsedTT != 2 {
		t.Errorf("input inside TT window not counted for transition time (used=%d)", res.UsedTT)
	}
}

func TestWindows(t *testing.T) {
	r := getRig(t)
	d, err := r.calc.DelayWindow(0, waveform.Falling, 300e-12)
	if err != nil {
		t.Fatal(err)
	}
	tw, err := r.calc.TTWindow(0, waveform.Falling, 300e-12)
	if err != nil {
		t.Fatal(err)
	}
	if !(tw > d && d > 0) {
		t.Errorf("windows: delay %.1fps, tt %.1fps — want 0 < delay < tt", d*1e12, tw*1e12)
	}
}

// TestCorrectionImprovesStepCase: with the correction the simultaneous-step
// configuration is exact by construction; without it the error is larger.
func TestCorrectionImprovesStepCase(t *testing.T) {
	r := getRig(t)
	step := r.model.Singles[0].TauAxis[0]
	events := []core.InputEvent{
		{Pin: 0, Dir: waveform.Falling, TT: step, Cross: 0},
		{Pin: 1, Dir: waveform.Falling, TT: step, Cross: 0},
		{Pin: 2, Dir: waveform.Falling, TT: step, Cross: 0},
	}
	calc := &core.Calculator{Model: r.model, Dual: core.NewSimBackend(r.sim.Clone())}
	withCorr, err := calc.Evaluate(events)
	if err != nil {
		t.Fatal(err)
	}
	calc.DisableCorrection = true
	without, err := calc.Evaluate(events)
	if err != nil {
		t.Fatal(err)
	}
	if withCorr.CorrectionApplied == 0 {
		t.Error("correction not applied to the coincident step case")
	}
	if math.Abs(withCorr.Delay-without.Delay-withCorr.CorrectionApplied) > 1e-18 {
		t.Error("correction accounting inconsistent")
	}
}

// TestNaiveOrderingAblation: replacing dominance ordering with arrival
// ordering changes the answer on a crossover configuration (and the
// dominance answer is the accurate one — checked against simulation).
func TestNaiveOrderingAblation(t *testing.T) {
	r := getRig(t)
	// Slow early input, fast later input below the crossover boundary:
	// dominance picks the fast one, arrival order picks the slow one.
	events := []core.InputEvent{
		{Pin: 0, Dir: waveform.Falling, TT: 1000e-12, Cross: 0},
		{Pin: 1, Dir: waveform.Falling, TT: 100e-12, Cross: 50e-12},
	}
	dom, err := r.calc.Evaluate(events)
	if err != nil {
		t.Fatal(err)
	}
	naive := &core.Calculator{Model: r.model, NaiveOrdering: true}
	nv, err := naive.Evaluate(events)
	if err != nil {
		t.Fatal(err)
	}
	if dom.Dominant == nv.Dominant {
		t.Skip("configuration does not separate the orderings on this grid")
	}
	if dom.Dominant != 1 {
		t.Errorf("dominance ordering picked pin %d, want the fast later input", dom.Dominant)
	}
}

func TestStorageComplexity(t *testing.T) {
	costs := core.StorageComplexity(3, 10)
	if len(costs) != 3 {
		t.Fatalf("%d strategies", len(costs))
	}
	full, matrix, perRef := costs[0], costs[1], costs[2]
	// n=3, p=10: full = 3*10^5, matrix = 3*10 + 6*10^3, perRef = 3*10 + 3*10^3.
	if full.Entries != 3e5 {
		t.Errorf("full entries = %g", full.Entries)
	}
	if matrix.Entries != 30+6000 {
		t.Errorf("matrix entries = %g", matrix.Entries)
	}
	if perRef.Entries != 30+3000 {
		t.Errorf("per-ref entries = %g", perRef.Entries)
	}
	if !(perRef.Entries < matrix.Entries && matrix.Entries < full.Entries) {
		t.Error("expected per-ref < matrix < full")
	}
	if perRef.Tables != 6 {
		t.Errorf("per-ref tables = %d, want 2n = 6", perRef.Tables)
	}
}

// TestSimBackendCaching: repeated identical queries hit the cache (same
// result, no error) and are cheap.
func TestSimBackendCaching(t *testing.T) {
	r := getRig(t)
	be := core.NewSimBackend(r.sim.Clone())
	d1, _, _ := r.calc.SingleDelay(0, waveform.Falling, 300e-12)
	tt1 := 400e-12
	a1, b1, err := be.Ratios(0, 1, waveform.Falling, 300e-12, 200e-12, 50e-12, d1, tt1)
	if err != nil {
		t.Fatal(err)
	}
	a2, b2, err := be.Ratios(0, 1, waveform.Falling, 300e-12, 200e-12, 50e-12, d1, tt1)
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 || b1 != b2 {
		t.Error("cache returned different values")
	}
	if _, _, err := be.Ratios(0, 1, waveform.Falling, 300e-12, 200e-12, 0, 0, tt1); err == nil {
		t.Error("non-positive normalizer accepted")
	}
}

// TestInertialDelayRequiresGlitchModel: querying a pair that was never
// characterized returns a descriptive error.
func TestInertialDelayRequiresGlitchModel(t *testing.T) {
	r := getRig(t)
	if _, _, err := core.InertialDelay(r.model, 0, 1, 1e-10, 1e-10); err == nil {
		t.Error("missing glitch model not reported")
	}
}
