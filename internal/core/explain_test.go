package core_test

import (
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/macromodel"
	"repro/internal/waveform"
)

// EvaluateExplain must perform the identical arithmetic: bit-equal Result
// across a spread of event sets, including window-pruned and lapsed inputs.
func TestExplainBitIdenticalToEvaluate(t *testing.T) {
	calc := core.NewCalculator(macromodel.SynthModel("nand", 3))
	cases := [][]core.InputEvent{
		{{Pin: 0, Dir: waveform.Falling, TT: 300e-12, Cross: 0}},
		{
			{Pin: 0, Dir: waveform.Falling, TT: 300e-12, Cross: 0},
			{Pin: 1, Dir: waveform.Falling, TT: 250e-12, Cross: 20e-12},
			{Pin: 2, Dir: waveform.Falling, TT: 400e-12, Cross: 45e-12},
		},
		{ // far-out input: pruned by the first-cause delay window
			{Pin: 0, Dir: waveform.Falling, TT: 300e-12, Cross: 0},
			{Pin: 1, Dir: waveform.Falling, TT: 250e-12, Cross: 10e-9},
		},
		{ // rising inputs: last-cause ordering with a lapsed early input
			{Pin: 0, Dir: waveform.Rising, TT: 200e-12, Cross: 0},
			{Pin: 1, Dir: waveform.Rising, TT: 220e-12, Cross: -40e-9},
			{Pin: 2, Dir: waveform.Rising, TT: 180e-12, Cross: 30e-12},
		},
	}
	for i, evs := range cases {
		want, err := calc.Evaluate(evs)
		if err != nil {
			t.Fatalf("case %d: Evaluate: %v", i, err)
		}
		got, ex, err := calc.EvaluateExplain(evs)
		if err != nil {
			t.Fatalf("case %d: EvaluateExplain: %v", i, err)
		}
		if got.Delay != want.Delay || got.OutTT != want.OutTT ||
			got.OutputCross != want.OutputCross || got.Dominant != want.Dominant ||
			got.UsedDelay != want.UsedDelay || got.UsedTT != want.UsedTT ||
			got.CorrectionApplied != want.CorrectionApplied {
			t.Fatalf("case %d: explained result differs: got %+v want %+v", i, got, want)
		}
		if len(ex.Inputs) != len(evs) || len(ex.Order) != len(evs) {
			t.Fatalf("case %d: explain covers %d/%d inputs, %d order entries",
				i, len(ex.Inputs), len(evs), len(ex.Order))
		}
		// Every non-dominant input appears exactly once per pass.
		for pass, steps := range [][]core.AbsorbStep{ex.Delay, ex.TT} {
			seen := map[int]int{}
			for _, st := range steps {
				seen[st.Input]++
			}
			if len(seen) != len(evs)-1 {
				t.Fatalf("case %d pass %d: %d distinct inputs traced, want %d", i, pass, len(seen), len(evs)-1)
			}
			for in, n := range seen {
				if n != 1 {
					t.Fatalf("case %d pass %d: input %d traced %d times", i, pass, in, n)
				}
			}
		}
	}
}

// Hand-trace of the paper's §4 algorithm on a 3-input NAND with falling
// inputs (first-cause: parallel pull-up conduction):
//
//   - dominance order = ascending solo output crossing (cross + Δ(1));
//   - the second input is absorbed with s* = s + Δ(1) − Δ(1) = s and table
//     coordinates (τ_ref/Δ(1), τ_i/Δ(1), s*/Δ(1));
//   - an input whose separation exceeds the cumulative delay lies outside
//     the proximity window s > Δ⁽ⁱ⁻¹⁾ and must be pruned.
func TestExplainMatchesHandTraceNand(t *testing.T) {
	m := macromodel.SynthModel("nand", 3)
	calc := core.NewCalculator(m)
	if m.Causation(waveform.Falling) != macromodel.FirstCause {
		t.Fatal("nand falling inputs should be first-cause (parallel pull-up)")
	}

	evs := []core.InputEvent{
		{Pin: 0, Dir: waveform.Falling, TT: 300e-12, Cross: 30e-12},
		{Pin: 1, Dir: waveform.Falling, TT: 260e-12, Cross: 0},
		{Pin: 2, Dir: waveform.Falling, TT: 280e-12, Cross: 5e-9}, // way outside any window
	}
	// Hand-compute the solo crossings from the characterized singles.
	solo := make([]float64, len(evs))
	d1 := make([]float64, len(evs))
	for i, e := range evs {
		d, _, err := calc.SingleDelay(e.Pin, e.Dir, e.TT)
		if err != nil {
			t.Fatal(err)
		}
		d1[i] = d
		solo[i] = e.Cross + d
	}
	res, ex, err := calc.EvaluateExplain(evs)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Causation != macromodel.FirstCause {
		t.Fatalf("explain causation = %v", ex.Causation)
	}

	// Expected dominance order: ascending solo crossing.
	wantFirst := 0
	for i := range evs {
		if solo[i] < solo[wantFirst] {
			wantFirst = i
		}
	}
	if ex.Order[0] != wantFirst {
		t.Fatalf("dominant input index %d (solo %.3gps), hand-trace says %d",
			ex.Order[0], solo[ex.Order[0]]*1e12, wantFirst)
	}
	if res.Dominant != evs[wantFirst].Pin {
		t.Fatalf("Result.Dominant = pin %d, want %d", res.Dominant, evs[wantFirst].Pin)
	}
	for k := 1; k < len(ex.Order); k++ {
		if solo[ex.Order[k]] < solo[ex.Order[k-1]] {
			t.Fatalf("dominance order not ascending in solo crossing: %v", ex.Order)
		}
	}

	// The near input (index depends on solo order, but input 2 is 5ns out)
	// must be absorbed; input 2 must be window-pruned.
	var absorbed, pruned *core.AbsorbStep
	for i := range ex.Delay {
		st := &ex.Delay[i]
		if st.Input == 2 {
			pruned = st
		} else {
			absorbed = st
		}
	}
	if pruned == nil || !pruned.Pruned {
		t.Fatalf("input 2 (s=5ns) not pruned by the delay window: %+v", ex.Delay)
	}
	if pruned.S <= pruned.Window {
		t.Fatalf("pruned input has s=%.3g <= window=%.3g — prune was wrong", pruned.S, pruned.Window)
	}
	if absorbed == nil || absorbed.Pruned {
		t.Fatalf("near input not absorbed: %+v", ex.Delay)
	}

	// Hand-check the absorbed step's numbers: first absorption sees
	// cum = Δ(1)_ref, so s* = s, and the normalized coordinates are the
	// plain ratios against the dominant input's solo delay.
	ref := evs[wantFirst]
	refD1 := d1[wantFirst]
	s := evs[absorbed.Input].Cross - ref.Cross
	if absorbed.S != s {
		t.Fatalf("absorbed step S=%g, hand-trace %g", absorbed.S, s)
	}
	if math.Abs(absorbed.SStar-s) > 1e-18 {
		t.Fatalf("first absorption s*=%g, want s=%g (cum starts at the reference solo delay)", absorbed.SStar, s)
	}
	wantX1, wantX2, wantX3 := ref.TT/refD1, evs[absorbed.Input].TT/refD1, absorbed.SStar/refD1
	if absorbed.X1 != wantX1 || absorbed.X2 != wantX2 || absorbed.X3 != wantX3 {
		t.Fatalf("normalized lookup (%g,%g,%g), hand-trace (%g,%g,%g)",
			absorbed.X1, absorbed.X2, absorbed.X3, wantX1, wantX2, wantX3)
	}
	if absorbed.CumBefore != refD1 {
		t.Fatalf("cumBefore=%g, want the reference solo delay %g", absorbed.CumBefore, refD1)
	}
	wantCum := refD1 + refD1*(absorbed.DRatio-1)
	if math.Abs(absorbed.CumAfter-wantCum) > 1e-18 {
		t.Fatalf("cumAfter=%g, hand-trace %g", absorbed.CumAfter, wantCum)
	}

	// The rendered report names the dominant pin and the prune.
	var sb strings.Builder
	ex.Format(&sb)
	out := sb.String()
	for _, want := range []string{"dominant", "PRUNED", "first-cause"} {
		if !strings.Contains(out, want) {
			t.Fatalf("formatted explain missing %q:\n%s", want, out)
		}
	}
}

// Last-cause (rising NAND inputs): the LATEST solo crossing dominates and a
// long-lapsed early input is pruned with the lapse rule.
func TestExplainLastCauseLapse(t *testing.T) {
	m := macromodel.SynthModel("nand", 2)
	calc := core.NewCalculator(m)
	if m.Causation(waveform.Rising) != macromodel.LastCause {
		t.Fatal("nand rising inputs should be last-cause (series pull-down)")
	}
	evs := []core.InputEvent{
		{Pin: 0, Dir: waveform.Rising, TT: 200e-12, Cross: -50e-9}, // long gone
		{Pin: 1, Dir: waveform.Rising, TT: 220e-12, Cross: 0},
	}
	res, ex, err := calc.EvaluateExplain(evs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Dominant != 1 {
		t.Fatalf("last-cause dominant = pin %d, want the latest (pin 1)", res.Dominant)
	}
	if len(ex.Delay) != 1 || !ex.Delay[0].Pruned {
		t.Fatalf("early input not lapse-pruned: %+v", ex.Delay)
	}
	if !strings.Contains(ex.Delay[0].Reason, "lapsed") {
		t.Fatalf("prune reason %q does not name the lapse rule", ex.Delay[0].Reason)
	}
	if res.UsedDelay != 1 {
		t.Fatalf("UsedDelay = %d, want 1 (lapsed input must not contribute)", res.UsedDelay)
	}
}
