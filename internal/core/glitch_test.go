package core_test

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/macromodel"
	"repro/internal/table"
	"repro/internal/waveform"
)

// stuckGateModel is a two-input gate whose glitch extreme is pinned at v
// everywhere — between the thresholds, the output never completes a
// transition for any characterized separation.
func stuckGateModel(v float64) *macromodel.GateModel {
	g := table.MustNew(
		[]float64{50e-12, 2e-9},
		[]float64{50e-12, 2e-9},
		[]float64{-1e-9, 0, 1e-9},
	)
	g.Fill(func([]float64) (float64, error) { return v, nil })
	return &macromodel.GateModel{
		Kind:      "nand",
		NumInputs: 2,
		Th:        waveform.Thresholds{Vil: 1.35, Vih: 3.65, Vdd: 5},
		Glitches: []*macromodel.GlitchModel{
			{FallPin: 0, RisePin: 1, NegativeGoing: true, Extreme: g},
		},
	}
}

// TestInertialDelayNeverRecovers: the +Inf/false contract must pass through
// InertialDelay unchanged — a (0, false) here once read as "zero separation
// required" to callers that dropped ok.
func TestInertialDelayNeverRecovers(t *testing.T) {
	sep, ok, err := core.InertialDelay(stuckGateModel(3.0), 0, 1, 300e-12, 300e-12)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatalf("never-completing pair reported a boundary at %g", sep)
	}
	if !math.IsInf(sep, 1) {
		t.Fatalf("sep = %g with ok=false, want +Inf", sep)
	}
}

// TestEvaluatePulseVerdicts walks the three verdict classes off the
// synthetic nand2's real glitch grid: below the inertial delay filters, just
// above degrades with a finite factor > 1, and an uncharacterized pair
// reports no verdict at all.
func TestEvaluatePulseVerdicts(t *testing.T) {
	m := macromodel.SynthModel("nand", 2)
	gm := m.Glitch(0, 1)
	if gm == nil {
		t.Fatal("synthetic nand2 missing glitch pair (0,1)")
	}
	const ttF, ttR = 300e-12, 300e-12
	minSep, ok := gm.MinSeparation(ttF, ttR, m.Th)
	if !ok {
		t.Fatal("synthetic grid never completes")
	}

	v, ok := core.EvaluatePulse(m, 0, 1, ttF, ttR, minSep-40e-12)
	if !ok || !v.Filtered {
		t.Fatalf("below inertial delay: verdict %+v (ok=%v), want filtered", v, ok)
	}
	if v.MinSep != minSep {
		t.Fatalf("verdict minSep %g != model's %g", v.MinSep, minSep)
	}

	v, ok = core.EvaluatePulse(m, 0, 1, ttF, ttR, minSep+40e-12)
	if !ok || v.Filtered {
		t.Fatalf("above inertial delay: verdict %+v (ok=%v), want surviving", v, ok)
	}
	if !(v.Factor > 1) || math.IsInf(v.Factor, 1) || math.IsNaN(v.Factor) {
		t.Fatalf("surviving verdict factor %g, want finite > 1", v.Factor)
	}
	if !(v.Extreme > 0 && v.Extreme < m.Th.Vdd) {
		t.Fatalf("surviving verdict extreme %g outside (0, Vdd)", v.Extreme)
	}

	if _, ok := core.EvaluatePulse(m, 1, 0, ttF, ttR, 0); ok != (m.Glitch(1, 0) != nil) {
		t.Fatal("EvaluatePulse verdict presence disagrees with model lookup")
	}
	if _, ok := core.EvaluatePulse(m, 0, 0, ttF, ttR, 0); ok {
		t.Fatal("same-pin pair produced a verdict")
	}
}

// TestEvaluatePulseNorVerdicts: positive-going pairs judge on the mirrored
// side. A real NOR bump has the falling input LEADING the rising one, so
// sep = cross(fall) − cross(rise) is negative; the verdict compares the
// pulse width −sep against the inertial boundary. A wide bump survives, a
// narrow one filters, and a positive separation (no bump at all — the
// blocking rise came first) filters rather than passing as full swing.
func TestEvaluatePulseNorVerdicts(t *testing.T) {
	m := macromodel.SynthModel("nor", 2)
	gm := m.Glitch(0, 1)
	if gm == nil {
		t.Fatal("synthetic nor2 missing glitch pair (0,1)")
	}
	if gm.NegativeGoing {
		t.Fatal("synthetic nor2 glitch is not positive-going")
	}
	const ttF, ttR = 300e-12, 300e-12
	minWidth, ok := gm.MinSeparation(ttF, ttR, m.Th)
	if !ok || math.IsInf(minWidth, 0) || minWidth <= 0 {
		t.Fatalf("nor inertial width = (%g, %v), want a finite positive boundary", minWidth, ok)
	}

	v, ok := core.EvaluatePulse(m, 0, 1, ttF, ttR, -(minWidth + 40e-12))
	if !ok || v.Filtered {
		t.Fatalf("wide bump (width %g): verdict %+v (ok=%v), want surviving", minWidth+40e-12, v, ok)
	}
	if v.Sep != minWidth+40e-12 {
		t.Fatalf("verdict width %g, want %g (trailing minus leading cause)", v.Sep, minWidth+40e-12)
	}
	if !(v.Factor >= 1) || math.IsInf(v.Factor, 1) || math.IsNaN(v.Factor) {
		t.Fatalf("surviving verdict factor %g, want finite >= 1", v.Factor)
	}
	if !(v.Extreme >= m.Th.Vih) {
		t.Fatalf("surviving bump extreme %g below Vih %g", v.Extreme, m.Th.Vih)
	}

	v, ok = core.EvaluatePulse(m, 0, 1, ttF, ttR, -(minWidth - 40e-12))
	if !ok || !v.Filtered {
		t.Fatalf("narrow bump (width %g): verdict %+v (ok=%v), want filtered", minWidth-40e-12, v, ok)
	}
	if v.MinSep != minWidth {
		t.Fatalf("verdict minSep %g != model's %g", v.MinSep, minWidth)
	}

	// Rising input first: the output never leaves its rail, not a pulse that
	// should pass at "separation above the boundary".
	v, ok = core.EvaluatePulse(m, 0, 1, ttF, ttR, minWidth+200e-12)
	if !ok || !v.Filtered {
		t.Fatalf("rise-leads pair (sep %g): verdict %+v (ok=%v), want filtered", minWidth+200e-12, v, ok)
	}
}

// TestEvaluatePulseNaNSeparation: a NaN separation must filter, not pass —
// !(NaN >= minSep) is the guarded comparison.
func TestEvaluatePulseNaNSeparation(t *testing.T) {
	m := macromodel.SynthModel("nand", 2)
	v, ok := core.EvaluatePulse(m, 0, 1, 300e-12, 300e-12, math.NaN())
	if !ok || !v.Filtered {
		t.Fatalf("NaN separation verdict %+v (ok=%v), want filtered", v, ok)
	}
}

// TestEvaluatePulseNeverRecovers: with no boundary anywhere in range, every
// separation filters — +Inf minSep means every candidate is below it.
func TestEvaluatePulseNeverRecovers(t *testing.T) {
	m := stuckGateModel(3.0)
	for _, sep := range []float64{-1e-9, 0, 500e-12, 10e-9} {
		v, ok := core.EvaluatePulse(m, 0, 1, 300e-12, 300e-12, sep)
		if !ok || !v.Filtered {
			t.Fatalf("sep %g: verdict %+v (ok=%v), want filtered", sep, v, ok)
		}
	}
}
