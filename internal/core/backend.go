package core

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/macromodel"
	"repro/internal/waveform"
)

// SimBackend evaluates the dual-input proximity ratios by direct transient
// simulation, reproducing the paper's validation setup in which HSPICE
// itself served as the dual-input macromodel. It isolates the error of the
// compositional algorithm from table-interpolation error.
type SimBackend struct {
	Sim *macromodel.GateSim

	mu    sync.Mutex
	cache map[simKey][2]float64
}

type simKey struct {
	ref, other int
	dir        waveform.Direction
	tauRef     int64 // femtoseconds, rounded
	tauOther   int64
	sStar      int64
}

// NewSimBackend wraps a gate simulation harness.
func NewSimBackend(sim *macromodel.GateSim) *SimBackend {
	return &SimBackend{Sim: sim, cache: map[simKey][2]float64{}}
}

// Ratios implements DualBackend by simulation.
func (b *SimBackend) Ratios(ref, other int, dir waveform.Direction,
	tauRef, tauOther, sStar, d1, tt1 float64) (float64, float64, error) {
	if d1 <= 0 || tt1 <= 0 {
		return 0, 0, fmt.Errorf("core: sim backend needs positive normalizers (d1=%g tt1=%g)", d1, tt1)
	}
	key := simKey{ref, other, dir, fs(tauRef), fs(tauOther), fs(sStar)}
	b.mu.Lock()
	if v, ok := b.cache[key]; ok {
		b.mu.Unlock()
		return v[0], v[1], nil
	}
	b.mu.Unlock()

	d2, tt2, err := b.Sim.RunPair(ref, other, dir, tauRef, tauOther, sStar)
	if err != nil {
		return 0, 0, err
	}
	dr, tr := d2/d1, tt2/tt1
	b.mu.Lock()
	b.cache[key] = [2]float64{dr, tr}
	b.mu.Unlock()
	return dr, tr, nil
}

func fs(t float64) int64 { return int64(math.Round(t * 1e15)) }

// AnalyticBackend evaluates the dual-input proximity ratios from fitted
// closed-form polynomials (macromodel.FitGate) instead of interpolated
// tables — the paper's "closed form analytical forms do exist" variant.
type AnalyticBackend struct {
	Model *macromodel.AnalyticModel
}

// Ratios implements DualBackend over the analytic model.
func (b *AnalyticBackend) Ratios(ref, other int, dir waveform.Direction,
	tauRef, tauOther, sStar, d1, tt1 float64) (float64, float64, error) {
	am := b.Model.Dual(ref, other, dir)
	if am == nil {
		return 0, 0, fmt.Errorf("core: no analytic dual model for ref pin %d %v", ref, dir)
	}
	x1 := tauRef / d1
	x2 := tauOther / d1
	x3 := sStar / d1
	return am.EvalDelayRatio(x1, x2, x3), am.EvalTTRatio(x1, x2, x3), nil
}

// CalibrateCorrection measures the paper's Section-4 corrective term for
// each direction: the difference between the true (simulated) delay and the
// uncorrected algorithm's delay when a near-step signal is applied to ALL
// inputs simultaneously. The signed difference is stored on the model so
// Evaluate can apply it.
func CalibrateCorrection(calc *Calculator, sim *macromodel.GateSim, dirs ...waveform.Direction) error {
	if len(dirs) == 0 {
		dirs = []waveform.Direction{waveform.Rising, waveform.Falling}
	}
	n := calc.Model.NumInputs
	if n < 2 {
		return nil
	}
	// "Step" stimulus: the fastest characterized transition time.
	step := calc.Model.Singles[0].TauAxis[0]
	saved := calc.DisableCorrection
	calc.DisableCorrection = true
	defer func() { calc.DisableCorrection = saved }()

	for _, dir := range dirs {
		events := make([]InputEvent, n)
		stims := make([]macromodel.PinStim, n)
		for p := 0; p < n; p++ {
			events[p] = InputEvent{Pin: p, Dir: dir, TT: step, Cross: 0}
			stims[p] = macromodel.PinStim{Pin: p, Dir: dir, TT: step, Cross: 0}
		}
		model, err := calc.Evaluate(events)
		if err != nil {
			return fmt.Errorf("core: calibrate %v: evaluate: %w", dir, err)
		}
		res, err := sim.Run(stims)
		if err != nil {
			return fmt.Errorf("core: calibrate %v: simulate: %w", dir, err)
		}
		actualD, err := res.DelayFrom(0)
		if err != nil {
			return fmt.Errorf("core: calibrate %v: measure delay: %w", dir, err)
		}
		actualT, err := res.OutputTT()
		if err != nil {
			return fmt.Errorf("core: calibrate %v: measure transition: %w", dir, err)
		}
		calc.Model.SetCorrection(dir, macromodel.Correction{
			Delay: actualD - model.Delay,
			OutTT: actualT - model.OutTT,
		})
	}
	return nil
}

// MinPulseWidth returns the narrowest same-pin input pulse (leading edge
// firstDir) that still produces a complete output transition — the inertial
// pulse-filtering boundary of Section 6's closing remark. Requires a
// characterized pulse model for the pin.
func MinPulseWidth(m *macromodel.GateModel, pin int, firstDir waveform.Direction, ttFirst, ttSecond float64) (width float64, ok bool, err error) {
	pm := m.Pulse(pin, firstDir)
	if pm == nil {
		return 0, false, fmt.Errorf("core: no pulse model characterized for pin %d leading %v", pin, firstDir)
	}
	w, ok := pm.MinWidth(ttFirst, ttSecond, m.Th)
	return w, ok, nil
}

// InertialDelay returns the minimum output pulse width for which the gate
// still produces a complete output transition — the Section-6 inertial
// delay. The width is the trailing (blocking) cause's crossing measured
// from the leading (unblocking) cause's: fall − rise for negative-going
// (NAND-style) pairs, rise − fall for positive-going (NOR-style) ones; see
// GlitchModel.MinSeparation. It requires a characterized glitch model for
// the pair. When no width in the characterized range completes the
// transition, ok is false and sep is +Inf (never zero: "no usable
// separation" must not read as "zero separation required").
func InertialDelay(m *macromodel.GateModel, fallPin, risePin int, ttFall, ttRise float64) (sep float64, ok bool, err error) {
	if g := m.Glitch(fallPin, risePin); g != nil {
		s, ok := g.MinSeparation(ttFall, ttRise, m.Th)
		return s, ok, nil
	}
	return 0, false, fmt.Errorf("core: no glitch model characterized for pair (fall=%d, rise=%d)", fallPin, risePin)
}
