package core_test

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/macromodel"
	"repro/internal/waveform"
)

// TestEvaluateConcurrentReadOnly pins down the contract the parallel STA
// engine relies on: Calculator.Evaluate over the table backend reads only
// immutable characterized state, so one shared calculator may serve many
// goroutines and every result must be bit-identical to the serial answer.
// Run with -race (part of the tier-1 recipe in ROADMAP.md).
func TestEvaluateConcurrentReadOnly(t *testing.T) {
	calc := core.NewCalculator(macromodel.SynthModel("nand", 3))

	// A spread of event sets: varying proximity, order, and direction.
	cases := make([][]core.InputEvent, 0, 24)
	for i := 0; i < 24; i++ {
		dir := waveform.Falling
		if i%2 == 1 {
			dir = waveform.Rising
		}
		sep := float64(i-12) * 25e-12
		cases = append(cases, []core.InputEvent{
			{Pin: 0, Dir: dir, TT: 300e-12 + float64(i)*10e-12, Cross: 0},
			{Pin: 1, Dir: dir, TT: 500e-12, Cross: sep},
			{Pin: 2, Dir: dir, TT: 200e-12, Cross: -sep / 2},
		})
	}
	refs := make([]*core.Result, len(cases))
	for i, evs := range cases {
		r, err := calc.Evaluate(evs)
		if err != nil {
			t.Fatal(err)
		}
		refs[i] = r
	}

	const goroutines = 8
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for rep := 0; rep < 50; rep++ {
				i := (g + rep) % len(cases)
				r, err := calc.Evaluate(cases[i])
				if err != nil {
					errc <- err
					return
				}
				if r.Delay != refs[i].Delay || r.OutTT != refs[i].OutTT ||
					r.OutputCross != refs[i].OutputCross || r.Dominant != refs[i].Dominant ||
					r.UsedDelay != refs[i].UsedDelay || r.UsedTT != refs[i].UsedTT {
					t.Errorf("case %d: concurrent result diverges from serial reference", i)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}
