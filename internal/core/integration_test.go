package core_test

import (
	"math"
	"sync"
	"testing"

	"repro/internal/cells"
	"repro/internal/core"
	"repro/internal/macromodel"
	"repro/internal/spice"
	"repro/internal/validate"
	"repro/internal/vtc"
	"repro/internal/waveform"
)

// testRig lazily builds a coarsely characterized NAND3 shared by the
// integration tests (characterization is the expensive part).
type testRig struct {
	sim   *macromodel.GateSim
	model *macromodel.GateModel
	calc  *core.Calculator
}

var (
	rigOnce sync.Once
	rig     *testRig
	rigErr  error
)

func getRig(t *testing.T) *testRig {
	t.Helper()
	rigOnce.Do(func() {
		cell := cells.MustNew(cells.Nand, 3, cells.DefaultProcess(), cells.DefaultGeometry())
		fam, err := vtc.Extract(cell, spice.DefaultOptions(), 0.02)
		if err != nil {
			rigErr = err
			return
		}
		sim := macromodel.NewGateSim(cell, spice.DefaultOptions(), fam.Thresholds)
		model, err := macromodel.CharacterizeGate(sim, macromodel.CoarseCharSpec())
		if err != nil {
			rigErr = err
			return
		}
		calc := core.NewCalculator(model)
		if err := core.CalibrateCorrection(calc, sim); err != nil {
			rigErr = err
			return
		}
		rig = &testRig{sim: sim, model: model, calc: calc}
	})
	if rigErr != nil {
		t.Fatalf("rig: %v", rigErr)
	}
	return rig
}

// TestSingleInputModelMatchesSim spot-checks the interpolated single-input
// model against fresh simulations at off-grid transition times.
func TestSingleInputModelMatchesSim(t *testing.T) {
	r := getRig(t)
	for _, tau := range []float64{90e-12, 400e-12, 1.1e-9} {
		for _, dir := range []waveform.Direction{waveform.Rising, waveform.Falling} {
			m := r.model.Single(0, dir)
			want, wantTT, err := r.sim.RunSingle(0, dir, tau)
			if err != nil {
				t.Fatalf("sim single: %v", err)
			}
			got := m.DelayAt(tau)
			if e := math.Abs(got-want) / want; e > 0.06 {
				t.Errorf("single delay pin0 %v τ=%.0fps: model %.1fps sim %.1fps (err %.1f%%)",
					dir, tau*1e12, got*1e12, want*1e12, e*100)
			}
			gotTT := m.OutTTAt(tau)
			if e := math.Abs(gotTT-wantTT) / wantTT; e > 0.08 {
				t.Errorf("single outTT pin0 %v τ=%.0fps: model %.1fps sim %.1fps (err %.1f%%)",
					dir, tau*1e12, gotTT*1e12, wantTT*1e12, e*100)
			}
		}
	}
}

// TestProximityReducesRiseDelay reproduces the headline Fig. 1-2(a) shape
// through the model: for falling inputs on a NAND, delay decreases as the
// second input approaches the first.
func TestProximityReducesRiseDelay(t *testing.T) {
	r := getRig(t)
	delayAt := func(sep float64) float64 {
		res, err := r.calc.Evaluate([]core.InputEvent{
			{Pin: 0, Dir: waveform.Falling, TT: 500e-12, Cross: 0},
			{Pin: 1, Dir: waveform.Falling, TT: 100e-12, Cross: sep},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Delay
	}
	far := delayAt(5e-9)
	near := delayAt(0)
	if near >= far {
		t.Errorf("model should show proximity speedup: near=%.1fps far=%.1fps", near*1e12, far*1e12)
	}
}

// TestDominantInputSelection checks the Fig. 3-2 reasoning: with a slow
// early input and a fast later input, the fast one dominates until the
// separation exceeds Δa − Δb.
func TestDominantInputSelection(t *testing.T) {
	r := getRig(t)
	da := r.model.Single(0, waveform.Falling).DelayAt(1000e-12)
	db := r.model.Single(1, waveform.Falling).DelayAt(100e-12)
	if da <= db {
		t.Fatalf("test premise: slow input must have larger solo delay (da=%.1fps db=%.1fps)",
			da*1e12, db*1e12)
	}
	boundary := da - db
	eval := func(sep float64) int {
		res, err := r.calc.Evaluate([]core.InputEvent{
			{Pin: 0, Dir: waveform.Falling, TT: 1000e-12, Cross: 0},
			{Pin: 1, Dir: waveform.Falling, TT: 100e-12, Cross: sep},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Dominant
	}
	if got := eval(boundary * 0.8); got != 1 {
		t.Errorf("below boundary: dominant = pin %d, want 1 (the fast later input)", got)
	}
	if got := eval(boundary * 1.2); got != 0 {
		t.Errorf("above boundary: dominant = pin %d, want 0 (the early input)", got)
	}
}

// TestValidationAgainstSim is the coarse Table 5-1: random configurations
// evaluated by the table-backed model against golden simulation.
func TestValidationAgainstSim(t *testing.T) {
	if testing.Short() {
		t.Skip("validation sweep in -short mode")
	}
	r := getRig(t)
	spec := validate.DefaultSpec()
	spec.N = 12
	cmp, err := validate.Run(r.calc, r.sim, spec)
	if err != nil {
		t.Fatal(err)
	}
	ds := cmp.DelaySummary()
	ts := cmp.TTSummary()
	t.Logf("delay err%%: mean=%.2f std=%.2f min=%.2f max=%.2f", ds.Mean, ds.StdDev, ds.Min, ds.Max)
	t.Logf("rise  err%%: mean=%.2f std=%.2f min=%.2f max=%.2f", ts.Mean, ts.StdDev, ts.Min, ts.Max)
	if math.Abs(ds.Mean) > 8 {
		t.Errorf("mean delay error %.2f%% too large (paper: 1.4%%)", ds.Mean)
	}
	if math.Abs(ds.Max) > 30 || math.Abs(ds.Min) > 30 {
		t.Errorf("delay error extremes out of range: [%.2f, %.2f]", ds.Min, ds.Max)
	}
}

// TestSimBackendMatchesPaperMethodology runs the same validation with the
// paper's "HSPICE as the dual-input macromodel" backend, which should be at
// least as accurate as the table backend on the compositional cases.
func TestSimBackendMatchesPaperMethodology(t *testing.T) {
	if testing.Short() {
		t.Skip("validation sweep in -short mode")
	}
	r := getRig(t)
	calc := &core.Calculator{Model: r.model, Dual: core.NewSimBackend(r.sim.Clone())}
	spec := validate.DefaultSpec()
	spec.N = 8
	cmp, err := validate.Run(calc, r.sim, spec)
	if err != nil {
		t.Fatal(err)
	}
	ds := cmp.DelaySummary()
	t.Logf("sim-backend delay err%%: mean=%.2f std=%.2f min=%.2f max=%.2f",
		ds.Mean, ds.StdDev, ds.Min, ds.Max)
	if math.Abs(ds.Mean) > 8 {
		t.Errorf("sim-backend mean delay error %.2f%% too large", ds.Mean)
	}
}
