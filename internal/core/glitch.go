package core

import (
	"repro/internal/macromodel"
)

// PulseVerdict is the Section-6 inertial-delay judgment for one
// opposite-edge input pair observed on a gate: either the runt pulse is
// absorbed outright (separation below the pair's inertial delay) or it
// survives with a possibly degraded transition, scaled by the ratio of the
// full supply swing to the swing the extreme-voltage macromodel predicts.
type PulseVerdict struct {
	// Sep is the output pulse width the verdict was evaluated at: the
	// trailing (blocking) cause's threshold crossing measured from the
	// leading (unblocking) cause's — fall − rise for negative-going models,
	// rise − fall for positive-going ones.
	Sep float64
	// MinSep is the pair's inertial delay (minimum pulse width that still
	// completes a transition), in the same orientation as Sep so
	// Sep − MinSep is the completion margin for either polarity; +Inf with
	// MinSepOK=false when no width in the characterized range completes.
	MinSep   float64
	MinSepOK bool
	// Extreme is the interpolated extreme output voltage at Sep (only
	// meaningful when the pulse was not filtered).
	Extreme float64
	// Factor is the transition-time degradation: Vdd over the achieved
	// swing, clamped to >= 1. Exactly 1 means the pulse propagates
	// untouched.
	Factor float64
	// Filtered reports that the pulse is absorbed entirely: the output
	// never completes a transition at this separation.
	Filtered bool
}

// EvaluatePulse applies the Section-6 extreme-voltage-vs-separation
// macromodel to one opposite-edge pair: fallPin's input falls with
// transition time ttFall, risePin's rises with ttRise, separated by
// sep = cross(fall) − cross(rise). The verdict is judged in pulse-width
// terms (GlitchModel.MinSeparation): width = sep for a negative-going
// model, −sep for a positive-going one, so a NOR bump whose falling input
// leads (sep < 0) compares on the same side as a NAND dip. The bool result
// is false when the model has no glitch characterization for the ordered
// pair — the caller must then propagate the transitions untouched, not
// treat them as filtered.
func EvaluatePulse(m *macromodel.GateModel, fallPin, risePin int, ttFall, ttRise, sep float64) (PulseVerdict, bool) {
	g := m.Glitch(fallPin, risePin)
	if g == nil {
		return PulseVerdict{}, false
	}
	width := sep
	if !g.NegativeGoing {
		width = -sep
	}
	v := PulseVerdict{Sep: width, Factor: 1}
	v.MinSep, v.MinSepOK = g.MinSeparation(ttFall, ttRise, m.Th)
	// The comparison is written so a NaN separation filters too (a pulse we
	// cannot place in time is a pulse we cannot vouch for).
	if !v.MinSepOK || !(width >= v.MinSep) {
		v.Filtered = true
		return v, true
	}
	v.Extreme = g.ExtremeAt(ttFall, ttRise, sep)
	swing := v.Extreme
	if g.NegativeGoing {
		swing = m.Th.Vdd - v.Extreme
	}
	// Degrade the transition by the swing deficit; !(… > 1) also catches a
	// NaN ratio from a degenerate grid and leaves the pulse untouched.
	if f := m.Th.Vdd / swing; f > 1 {
		v.Factor = f
	}
	return v, true
}
